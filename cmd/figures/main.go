// Command figures regenerates every table and figure of the paper's
// evaluation (see the experiment index in DESIGN.md), rendering ASCII
// charts to stdout and, with -csv, writing the underlying series to CSV
// files for external plotting.
//
// Usage:
//
//	figures                 # all artifacts
//	figures -only fig6,fig9 # a subset
//	figures -csv out/       # also write CSV data
//	figures -scenario high-vol -only fig5  # under a named scenario's regime
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"repro/internal/figures"
	"repro/internal/plot"
	"repro/internal/qmc"
	"repro/internal/solvecache"
	"repro/internal/utility"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "figures:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("figures", flag.ContinueOnError)
	var (
		only     = fs.String("only", "", "comma-separated artifact IDs (default: all; see DESIGN.md)")
		csvDir   = fs.String("csv", "", "directory to write per-figure CSV files (optional)")
		width    = fs.Int("width", 72, "ASCII chart width")
		height   = fs.Int("height", 18, "ASCII chart height")
		workers  = fs.Int("workers", 0, "worker-pool size for grid scans (0 = all CPUs; output is identical for any value)")
		scen     = fs.String("scenario", "", "regenerate under a named scenario's parameters (see cmd/scenarios -list)")
		ciWidth  = fs.Float64("ci-width", 0, "montecarlo artifact: adaptive stop once the Wilson 95% half-width is <= this (0 = fixed runs)")
		chunk    = fs.Int("chunk", 0, "montecarlo artifact: engine chunk size (0 = default)")
		maxPaths = fs.Int("max-paths", 0, "montecarlo artifact: hard cap on adaptive sampling (0 = default runs)")
		sampler  = fs.String("sampler", "", `MC artifacts: sampling mode "pseudo", "antithetic", or "sobol" (default: per-artifact, see figures.Opts.Sampler)`)
		timing   = fs.Bool("timing", false, "print a per-artifact-group wall-time breakdown after generation")
		stats    = fs.Bool("cache-stats", false, "print solve-cache and quadrature-table hit/miss counters after generation")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *stats {
		defer solvecache.WriteStats(out)
	}

	// Validate the mode but pass the raw string through: the unset flag must
	// stay the zero Mode so each MC artifact keeps its own registry default
	// (an explicit "pseudo" overrides a sobol-defaulted artifact).
	if _, err := qmc.ParseMode(*sampler); err != nil {
		return err
	}
	start := time.Now()
	figs, timings, err := figures.GenerateTimed(utility.Default(), *only, figures.Opts{
		Workers:    *workers,
		Scenario:   *scen,
		MCCIWidth:  *ciWidth,
		MCChunk:    *chunk,
		MCMaxPaths: *maxPaths,
		Sampler:    qmc.Mode(*sampler),
	})
	if err != nil {
		return err
	}
	elapsed := time.Since(start)
	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			return fmt.Errorf("creating csv dir: %w", err)
		}
	}
	for _, f := range figs {
		body, err := f.Render(*width, *height)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "==== %s ====\n%s\n", f.ID, body)
		if *csvDir != "" && len(f.Series) > 0 {
			if err := writeCSV(filepath.Join(*csvDir, f.ID+".csv"), f.Series); err != nil {
				return err
			}
		}
	}
	if *timing {
		fmt.Fprintln(out, "timing (per artifact group):")
		for _, t := range timings {
			fmt.Fprintf(out, "  %-12s %8.1fms\n", t.ID, float64(t.Elapsed.Microseconds())/1000)
		}
		fmt.Fprintf(out, "  %-12s %8.1fms\n", "total", float64(elapsed.Microseconds())/1000)
	}
	fmt.Fprintf(out, "generated %d artifacts\n", len(figs))
	return nil
}

func writeCSV(path string, series []plot.Series) (err error) {
	file, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("creating %s: %w", path, err)
	}
	defer func() {
		if cerr := file.Close(); cerr != nil && err == nil {
			err = fmt.Errorf("closing %s: %w", path, cerr)
		}
	}()
	return plot.WriteCSV(file, series...)
}
