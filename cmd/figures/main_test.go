package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestGenerateSubsetWithCSV(t *testing.T) {
	dir := t.TempDir()
	var sb strings.Builder
	if err := run([]string{"-only", "fig5,fig9", "-csv", dir}, &sb); err != nil {
		t.Fatalf("run: %v", err)
	}
	out := sb.String()
	for _, want := range []string{"==== fig5 ====", "==== fig9 ====", "generated 2 artifacts"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
	for _, f := range []string{"fig5.csv", "fig9.csv"} {
		data, err := os.ReadFile(filepath.Join(dir, f))
		if err != nil {
			t.Fatalf("reading %s: %v", f, err)
		}
		if !strings.HasPrefix(string(data), "series,x,y\n") {
			t.Errorf("%s: missing csv header", f)
		}
	}
}

func TestTablesHaveNoCSV(t *testing.T) {
	dir := t.TempDir()
	var sb strings.Builder
	if err := run([]string{"-only", "tableIII", "-csv", dir}, &sb); err != nil {
		t.Fatalf("run: %v", err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Errorf("tables should not emit CSV, found %d files", len(entries))
	}
}

func TestUnknownFigureFails(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-only", "figNaN"}, &sb); err == nil {
		t.Error("unknown figure should fail")
	}
}

func TestBadFlag(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-bogus"}, &sb); err == nil {
		t.Error("unknown flag should fail")
	}
}

func TestScenarioFlag(t *testing.T) {
	var ref strings.Builder
	if err := run([]string{"-only", "fig5"}, &ref); err != nil {
		t.Fatalf("run: %v", err)
	}
	var got strings.Builder
	if err := run([]string{"-only", "fig5", "-scenario", "tableIII"}, &got); err != nil {
		t.Fatalf("run with -scenario: %v", err)
	}
	if got.String() != ref.String() {
		t.Error("tableIII scenario should reproduce the default artifact byte-for-byte")
	}
	var hv strings.Builder
	if err := run([]string{"-only", "fig5", "-scenario", "high-vol"}, &hv); err != nil {
		t.Fatalf("run with high-vol: %v", err)
	}
	if hv.String() == ref.String() {
		t.Error("high-vol artifact should differ from the Table III one")
	}
	if err := run([]string{"-scenario", "nope"}, &hv); err == nil {
		t.Error("unknown scenario accepted")
	}
}
