// Command swapsolve solves the HTLC atomic-swap game of arXiv:2011.11325
// for a given parameter set and prints the subgame-perfect thresholds, the
// feasible exchange-rate range (Eq. 29), the success rate (Eq. 31), and —
// with -q or -uncertain — the corresponding extension results.
//
// Usage:
//
//	swapsolve [-pstar 2.0] [-q 0.1] [-uncertain] [-budget 5] [model flags]
//	swapsolve -sweep 0.2:3.2:61 [-workers 8]   # parallel SR(P*) grid scan
//	swapsolve -scenario high-vol               # solve a named scenario
//	swapsolve -variant all                     # every registered variant game
//	swapsolve -scenario high-vol -variant packetized,repeated
//
// Model flags default to Table III (see -help). With -scenario, the named
// scenario (cmd/scenarios -list) supplies the parameter set, rate and
// deposit, and any explicitly set flag overrides that field. With -variant,
// the parameter set is solved through the internal/variant registry —
// analytic solves only; protocol simulation lives in swapsim — for the
// named variant games ("all" for every one). The -sweep grid scan runs
// through the internal/sweep worker pool; its output is identical for
// every -workers value.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/gbm"
	"repro/internal/mathx"
	"repro/internal/scenario"
	"repro/internal/solvecache"
	"repro/internal/sweep"
	"repro/internal/timeline"
	"repro/internal/utility"
	"repro/internal/variant"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "swapsolve:", err)
		os.Exit(1)
	}
}

func run(args []string, out *os.File) error {
	fs := flag.NewFlagSet("swapsolve", flag.ContinueOnError)
	var (
		pstar     = fs.Float64("pstar", 2.0, "agreed exchange rate P* (Token_a per Token_b)")
		q         = fs.Float64("q", 0, "per-agent collateral deposit Q (0 = basic game)")
		uncertain = fs.Bool("uncertain", false, "solve the uncertain-exchange-rate extension (§IV.B)")
		budget    = fs.Float64("budget", 0, "Bob's Token_b holdings cap for -uncertain (0 = unconstrained Eq. 44)")
		sweepSpec = fs.String("sweep", "", "sweep SR over a lo:hi:n exchange-rate grid instead of solving one rate")
		workers   = fs.Int("workers", 0, "worker-pool size for -sweep (0 = all CPUs)")
		scen      = fs.String("scenario", "", "start from a named scenario's parameters (explicit flags override)")
		variants  = fs.String("variant", "", `solve through the variant registry: "all" or a comma-separated key list`)
		packets   = fs.Int("packets", 0, "packet count for the packetized variant (0 = variant default)")
		rounds    = fs.Int("rounds", 0, "round count for the repeated variant (0 = variant default)")
		seed      = fs.Int64("seed", 1, "seed of the sampled variants (packetized, repeated)")

		alphaA = fs.Float64("alphaA", 0.3, "Alice's success premium")
		alphaB = fs.Float64("alphaB", 0.3, "Bob's success premium")
		rA     = fs.Float64("rA", 0.01, "Alice's hourly discount rate")
		rB     = fs.Float64("rB", 0.01, "Bob's hourly discount rate")
		tauA   = fs.Float64("tauA", 3, "Chain_a confirmation time (hours)")
		tauB   = fs.Float64("tauB", 4, "Chain_b confirmation time (hours)")
		epsB   = fs.Float64("epsB", 1, "Chain_b mempool discoverability lag (hours)")
		p0     = fs.Float64("p0", 2, "Token_b price at t0 (Token_a)")
		mu     = fs.Float64("mu", 0.002, "price drift per hour")
		sigma  = fs.Float64("sigma", 0.1, "price volatility per sqrt-hour")

		stats = fs.Bool("cache-stats", false, "print solve-cache and quadrature-table hit/miss counters before exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *stats {
		defer solvecache.WriteStats(out)
	}

	params := utility.Params{
		Alice:  utility.AgentParams{Alpha: *alphaA, R: *rA},
		Bob:    utility.AgentParams{Alpha: *alphaB, R: *rB},
		Chains: timeline.Chains{TauA: *tauA, TauB: *tauB, EpsB: *epsB},
		Price:  gbm.Process{Mu: *mu, Sigma: *sigma},
		P0:     *p0,
	}
	name := "cli"
	if *scen != "" {
		sc, err := scenario.Lookup(*scen)
		if err != nil {
			return err
		}
		name = sc.Name
		visited := map[string]bool{}
		fs.Visit(func(f *flag.Flag) { visited[f.Name] = true })
		params = overrideParams(sc.Params, params, visited)
		if !visited["pstar"] {
			*pstar = sc.PStar
		}
		if !visited["q"] {
			*q = sc.Collateral
		}
		if !visited["budget"] {
			*budget = sc.BobBudget
		}
		if !visited["seed"] {
			*seed = sc.Seed
		}
		if !visited["packets"] {
			*packets = sc.Packets
		}
		if !visited["rounds"] {
			*rounds = sc.Rounds
		}
	}

	if *variants != "" {
		sc := scenario.Scenario{
			Name:       name,
			Params:     params,
			PStar:      *pstar,
			Collateral: *q,
			BobBudget:  *budget,
			Seed:       *seed,
			Packets:    *packets,
			Rounds:     *rounds,
		}
		report, err := variant.Run(sc, variant.RunOpts{Variants: *variants, SkipMC: true})
		if err != nil {
			return err
		}
		_, err = fmt.Fprint(out, report.Render())
		return err
	}

	// Route through the shared solve cache: a -sweep re-solves one model's
	// cells, and repeated CLI invocations inside one process (tests) share
	// them.
	m, err := solvecache.SharedModel(params)
	if err != nil {
		return err
	}

	if *sweepSpec != "" {
		if *uncertain {
			return fmt.Errorf("-sweep supports the basic and collateral games only; drop -uncertain")
		}
		return solveSweep(out, m, *sweepSpec, *q, *workers)
	}
	if *uncertain {
		return solveUncertain(out, m, *pstar, *budget)
	}
	if *q > 0 {
		return solveCollateral(out, m, *pstar, *q)
	}
	return solveBasic(out, m, *pstar)
}

// overrideParams starts from a scenario's parameter set and applies every
// model flag the user set explicitly on top of it.
func overrideParams(base, flags utility.Params, visited map[string]bool) utility.Params {
	if visited["alphaA"] {
		base.Alice.Alpha = flags.Alice.Alpha
	}
	if visited["alphaB"] {
		base.Bob.Alpha = flags.Bob.Alpha
	}
	if visited["rA"] {
		base.Alice.R = flags.Alice.R
	}
	if visited["rB"] {
		base.Bob.R = flags.Bob.R
	}
	if visited["tauA"] {
		base.Chains.TauA = flags.Chains.TauA
	}
	if visited["tauB"] {
		base.Chains.TauB = flags.Chains.TauB
	}
	if visited["epsB"] {
		base.Chains.EpsB = flags.Chains.EpsB
	}
	if visited["p0"] {
		base.P0 = flags.P0
	}
	if visited["mu"] {
		base.Price.Mu = flags.Price.Mu
	}
	if visited["sigma"] {
		base.Price.Sigma = flags.Price.Sigma
	}
	return base
}

// parseGrid parses a "lo:hi:n" sweep specification into a grid of rates.
func parseGrid(spec string) ([]float64, error) {
	parts := strings.Split(spec, ":")
	if len(parts) != 3 {
		return nil, fmt.Errorf("sweep spec %q: want lo:hi:n", spec)
	}
	lo, err := strconv.ParseFloat(parts[0], 64)
	if err != nil {
		return nil, fmt.Errorf("sweep spec %q: %w", spec, err)
	}
	hi, err := strconv.ParseFloat(parts[1], 64)
	if err != nil {
		return nil, fmt.Errorf("sweep spec %q: %w", spec, err)
	}
	n, err := strconv.Atoi(parts[2])
	if err != nil {
		return nil, fmt.Errorf("sweep spec %q: %w", spec, err)
	}
	if n < 2 || hi <= lo || lo <= 0 {
		return nil, fmt.Errorf("sweep spec %q: need 0 < lo < hi and n >= 2", spec)
	}
	return mathx.LinSpace(lo, hi, n), nil
}

// solveSweep scans SR over an exchange-rate grid on the sweep worker pool
// and prints the SR-maximising rate.
func solveSweep(out *os.File, m *core.Model, spec string, q float64, workers int) error {
	grid, err := parseGrid(spec)
	if err != nil {
		return err
	}
	successRate := m.SuccessRate
	label := "basic"
	if q > 0 {
		col, err := m.Collateral(q)
		if err != nil {
			return err
		}
		successRate = col.SuccessRate
		label = fmt.Sprintf("collateral Q=%g", q)
	}
	srs, err := sweep.Over(context.Background(), workers, grid, func(_ int, pstar float64) (float64, error) {
		return successRate(pstar)
	})
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "SR(P*) sweep (%s game) over %d rates on %d workers\n",
		label, len(grid), sweep.Workers(workers))
	fmt.Fprintf(out, "  %-10s %s\n", "P*", "SR")
	best := 0
	for i, sr := range srs {
		fmt.Fprintf(out, "  %-10.4f %.4f\n", grid[i], sr)
		if sr > srs[best] {
			best = i
		}
	}
	fmt.Fprintf(out, "  best rate on grid: P* = %.4f (SR = %.4f)\n", grid[best], srs[best])
	return nil
}

func solveBasic(out *os.File, m *core.Model, pstar float64) error {
	cut, err := m.CutoffT3(pstar)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "basic HTLC swap game at P* = %g\n", pstar)
	fmt.Fprintf(out, "  Alice's t3 reveal cut-off P̄_t3 (Eq. 18): %.4f\n", cut)

	iv, ok, err := m.ContRangeT2(pstar)
	if err != nil {
		return err
	}
	if ok {
		fmt.Fprintf(out, "  Bob's t2 continuation range (Eq. 24):    (%.4f, %.4f)\n", iv.Lo, iv.Hi)
	} else {
		fmt.Fprintf(out, "  Bob's t2 continuation range (Eq. 24):    empty — B never locks\n")
	}

	rng, ok, err := m.FeasibleRateRange()
	if err != nil {
		return err
	}
	if ok {
		fmt.Fprintf(out, "  feasible exchange-rate range (Eq. 29):   (%.4f, %.4f)\n", rng.Lo, rng.Hi)
	} else {
		fmt.Fprintf(out, "  feasible exchange-rate range (Eq. 29):   empty — A never initiates\n")
	}

	sr, err := m.SuccessRate(pstar)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "  success rate SR(P*) (Eq. 31):            %.4f\n", sr)

	if opt, srOpt, err := m.OptimalRate(); err == nil {
		fmt.Fprintf(out, "  SR-maximising rate:                      %.4f (SR = %.4f)\n", opt, srOpt)
	}
	strat, err := m.Strategy(pstar)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "  Alice initiates at this rate:            %v\n", strat.AliceInitiates)
	return nil
}

func solveCollateral(out *os.File, m *core.Model, pstar, q float64) error {
	col, err := m.Collateral(q)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "collateral HTLC swap game at P* = %g, Q = %g\n", pstar, q)
	cut, err := col.CutoffT3(pstar)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "  Alice's t3 cut-off P̄_t3,c (Eq. 33):      %.4f\n", cut)
	set, err := col.ContSetT2(pstar)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "  Bob's t2 continuation set 𝒫_t2:          %v\n", set)
	fmt.Fprintf(out, "  Alice's engagement rates 𝒫^A:            %v\n", col.FeasibleRatesAlice())
	fmt.Fprintf(out, "  Bob's engagement rates 𝒫^B:              %v\n", col.FeasibleRatesBob())
	fmt.Fprintf(out, "  joint engagement (intersection):         %v\n", col.FeasibleRatesIntersection())
	sr, err := col.SuccessRate(pstar)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "  success rate SR_c(P*) (Eq. 40):          %.4f\n", sr)
	srBasic, err := m.SuccessRate(pstar)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "  improvement over Q=0:                    %+.4f\n", sr-srBasic)
	return nil
}

func solveUncertain(out *os.File, m *core.Model, aLock, budget float64) error {
	u := m.Uncertain()
	label := "unconstrained (printed Eq. 44)"
	if budget > 0 {
		var err error
		if u, err = m.UncertainWithBudget(budget); err != nil {
			return err
		}
		label = fmt.Sprintf("budget-capped at %g Token_b", budget)
	}
	fmt.Fprintf(out, "uncertain-exchange-rate game, Alice locks a = %g Token_a (%s)\n", aLock, label)
	for _, y := range []float64{0.5, 1, 2, 4, 8} {
		x, excess, err := u.OptimalLockB(y, aLock)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "  X*(P_t2=%g) = %.4f (Bob's excess utility %.4f)\n", y, x, excess)
	}
	ex, err := u.AliceExcessUtilityT1(aLock)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "  Alice's excess utility (Eq. 45):          %.4f\n", ex)
	sr, err := u.SuccessRate(aLock)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "  success rate SR_x (Eq. 46):               %.4f\n", sr)
	srBasic, err := m.SuccessRate(aLock)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "  basic-game SR at the same P*:             %.4f\n", srBasic)
	return nil
}
