package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// capture runs run() with stdout redirected to a temp file and returns the
// printed text.
func capture(t *testing.T, args []string) (string, error) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "out")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	runErr := run(args, f)
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return string(data), runErr
}

func TestBasicSolve(t *testing.T) {
	out, err := capture(t, []string{"-pstar", "2"})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	for _, want := range []string{"1.4811", "Eq. 29", "0.7143", "true"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestCollateralSolve(t *testing.T) {
	out, err := capture(t, []string{"-pstar", "2", "-q", "0.1"})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	for _, want := range []string{"Q = 0.1", "Eq. 40", "improvement over Q=0"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestUncertainSolve(t *testing.T) {
	out, err := capture(t, []string{"-uncertain", "-budget", "5", "-pstar", "4"})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	for _, want := range []string{"budget-capped", "Eq. 46", "X*(P_t2=2)"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// Unconstrained variant.
	out2, err := capture(t, []string{"-uncertain", "-pstar", "4"})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(out2, "unconstrained") {
		t.Errorf("output missing unconstrained label:\n%s", out2)
	}
}

func TestNonViableParameters(t *testing.T) {
	out, err := capture(t, []string{"-rA", "0.2", "-rB", "0.2"})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(out, "empty") {
		t.Errorf("expected empty ranges under extreme impatience:\n%s", out)
	}
}

func TestBadFlagsAndParams(t *testing.T) {
	if _, err := capture(t, []string{"-sigma", "0"}); err == nil {
		t.Error("sigma=0 should fail validation")
	}
	if _, err := capture(t, []string{"-not-a-flag"}); err == nil {
		t.Error("unknown flag should fail")
	}
	if _, err := capture(t, []string{"-pstar", "-1"}); err == nil {
		t.Error("negative rate should fail")
	}
}

func TestScenarioFlagLoadsPreset(t *testing.T) {
	ref, err := capture(t, []string{"-q", "0.5"})
	if err != nil {
		t.Fatal(err)
	}
	got, err := capture(t, []string{"-scenario", "deep-collateral"})
	if err != nil {
		t.Fatal(err)
	}
	if got != ref {
		t.Errorf("-scenario deep-collateral should match -q 0.5 at Table III params:\n got: %s\nwant: %s", got, ref)
	}
}

func TestScenarioFlagExplicitOverride(t *testing.T) {
	// An explicit -sigma on top of high-vol must override the preset's 0.2,
	// landing exactly on the Table III solution with the preset's Q=0.1.
	ref, err := capture(t, []string{"-sigma", "0.1", "-q", "0.1"})
	if err != nil {
		t.Fatal(err)
	}
	got, err := capture(t, []string{"-scenario", "high-vol", "-sigma", "0.1"})
	if err != nil {
		t.Fatal(err)
	}
	if got != ref {
		t.Errorf("explicit -sigma should override the scenario:\n got: %s\nwant: %s", got, ref)
	}
	plain, err := capture(t, []string{"-scenario", "high-vol"})
	if err != nil {
		t.Fatal(err)
	}
	if plain == ref {
		t.Error("high-vol without overrides should differ from Table III")
	}
}

func TestScenarioFlagUnknownName(t *testing.T) {
	if _, err := capture(t, []string{"-scenario", "nope"}); err == nil {
		t.Error("unknown scenario accepted")
	}
}

func TestVariantAllSolvesEveryGame(t *testing.T) {
	out, err := capture(t, []string{"-variant", "all", "-scenario", "tableIII"})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	for _, want := range []string{
		"variant basic", "variant collateral", "variant uncertain",
		"variant packetized", "variant repeated", "variant baseline",
		"SR(P*) (Eq. 31)", "expected fraction",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "Monte Carlo") {
		t.Errorf("-variant on swapsolve should skip the MC validations:\n%s", out)
	}
}

func TestVariantSubsetWithKnobs(t *testing.T) {
	out, err := capture(t, []string{"-variant", "packetized", "-packets", "2", "-seed", "5"})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	for _, want := range []string{"variant packetized", "packets n=2", "per-round exposure"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "variant basic") {
		t.Errorf("unselected variant ran:\n%s", out)
	}
}

func TestVariantUnknownKey(t *testing.T) {
	if _, err := capture(t, []string{"-variant", "nope"}); err == nil {
		t.Error("unknown variant key accepted")
	}
}
