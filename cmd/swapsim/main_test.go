package main

import (
	"strings"
	"testing"
)

func TestTraceRun(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-trace", "-seed", "7"}, &sb); err != nil {
		t.Fatalf("run: %v", err)
	}
	out := sb.String()
	for _, want := range []string{"stage:", "alice decisions:", "bob decisions:", "balances:"} {
		if !strings.Contains(out, want) {
			t.Errorf("trace missing %q:\n%s", want, out)
		}
	}
}

func TestMonteCarloRun(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-runs", "800", "-seed", "3", "-workers", "4"}, &sb); err != nil {
		t.Fatalf("run: %v", err)
	}
	out := sb.String()
	for _, want := range []string{"Monte Carlo success rate", "analytic success rate", "outcomes by stage:"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	if !strings.Contains(out, "violations:               0") {
		t.Errorf("expected zero violations:\n%s", out)
	}
}

func TestCollateralTrace(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-trace", "-q", "0.1", "-seed", "2"}, &sb); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(sb.String(), "collateral:") {
		t.Errorf("collateral line missing:\n%s", sb.String())
	}
}

func TestAtomicityViolationScenario(t *testing.T) {
	var sb strings.Builder
	err := run([]string{"-trace", "-seed", "7", "-haltb-from", "7.5", "-haltb-until", "40"}, &sb)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	out := sb.String()
	if !strings.Contains(out, "atomic=false") && !strings.Contains(out, "atomicity-violated") {
		t.Errorf("expected a violation trace:\n%s", out)
	}
}

func TestPacketizedMode(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-packets", "4", "-requote", "-continue", "-runs", "2000"}, &sb); err != nil {
		t.Fatalf("run: %v", err)
	}
	out := sb.String()
	for _, want := range []string{"packetized swap", "full completion", "per-round exposure: 0.5000"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	if err := run([]string{"-packets", "-3"}, &sb); err == nil {
		t.Error("negative packets should fail through single-shot path or validation")
	}
}

func TestBadFlags(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-bogus"}, &sb); err == nil {
		t.Error("unknown flag should fail")
	}
	if err := run([]string{"-pstar", "-2"}, &sb); err == nil {
		t.Error("negative rate should fail")
	}
	if err := run([]string{"-runs", "0"}, &sb); err == nil {
		t.Error("zero runs should fail")
	}
}

func TestScenarioFlag(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-scenario", "short-timelock", "-runs", "400"}, &sb); err != nil {
		t.Fatalf("run: %v", err)
	}
	out := sb.String()
	// The preset carries Q=0.1, so the simulation plays the collateral game
	// and agreement with its analytic SR must hold.
	if !strings.Contains(out, "agrees: true") {
		t.Errorf("scenario MC should agree with the analytic SR:\n%s", out)
	}
	if err := run([]string{"-scenario", "nope"}, &sb); err == nil {
		t.Error("unknown scenario accepted")
	}
}

func TestScenarioFlagNotInitiatedNote(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-scenario", "adversarial-premium", "-runs", "200"}, &sb); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(sb.String(), "A rationally stops at t1") {
		t.Errorf("expected the not-initiated note:\n%s", sb.String())
	}
}

func TestVariantMode(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-variant", "basic,baseline", "-scenario", "tableIII", "-runs", "800"}, &sb); err != nil {
		t.Fatalf("run: %v\n%s", err, sb.String())
	}
	out := sb.String()
	for _, want := range []string{
		"variant basic", "variant baseline",
		"Monte Carlo (basic", "Monte Carlo (one-sided protocol",
		"agrees: true",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestVariantModeRepeatedRounds(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-variant", "repeated", "-rounds", "80", "-runs", "400"}, &sb); err != nil {
		t.Fatalf("run: %v\n%s", err, sb.String())
	}
	if !strings.Contains(sb.String(), "engagement: 80 rounds") {
		t.Errorf("output missing the 80-round engagement header:\n%s", sb.String())
	}
}

func TestVariantModeUnknownKey(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-variant", "nope"}, &sb); err == nil {
		t.Error("unknown variant key accepted")
	}
}
