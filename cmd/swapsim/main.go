// Command swapsim executes atomic swaps on the simulated ledgers: a single
// traced run (-trace) or a Monte Carlo estimate of the success rate, which
// it compares against the analytic SR of the game solver. Failure injection
// flags reproduce the crash-induced atomicity violation discussed in §II.
//
// Usage:
//
//	swapsim -runs 50000 -pstar 2.0
//	swapsim -ci-width 0.005 -max-paths 200000   # adaptive precision
//	swapsim -trace -seed 7
//	swapsim -trace -haltb-from 7.5 -haltb-until 40   # atomicity violation
//	swapsim -scenario impatient-bob -runs 20000      # a named scenario's regime
//	swapsim -variant repeated -scenario tableIII     # a variant game + its MC validation
//
// With -variant, the run goes through the internal/variant registry: the
// named variant games are solved and — where the variant supports it —
// cross-validated against an independent Monte Carlo protocol run, exactly
// the per-cell check the scenario batch gates on.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/packetized"
	"repro/internal/qmc"
	"repro/internal/scenario"
	"repro/internal/swapsim"
	"repro/internal/utility"
	"repro/internal/variant"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "swapsim:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("swapsim", flag.ContinueOnError)
	var (
		pstar      = fs.Float64("pstar", 2.0, "agreed exchange rate P*")
		q          = fs.Float64("q", 0, "per-agent collateral deposit")
		runs       = fs.Int("runs", 20000, "Monte Carlo runs (the adaptive cap when -ci-width is set)")
		seed       = fs.Int64("seed", 1, "base random seed")
		workers    = fs.Int("workers", 8, "parallel workers (never affects the result)")
		ciWidth    = fs.Float64("ci-width", 0, "adaptive precision: stop once the Wilson 95% half-width is <= this (0 = fixed -runs)")
		chunk      = fs.Int("chunk", 0, "Monte Carlo engine chunk size (0 = default; results are bit-reproducible per seed+chunk)")
		maxPaths   = fs.Int("max-paths", 0, "hard cap on adaptive sampling (0 = -runs)")
		trace      = fs.Bool("trace", false, "run once and print the decision trace")
		haltBFrom  = fs.Float64("haltb-from", 0, "chain_b crash start (hours)")
		haltBUntil = fs.Float64("haltb-until", 0, "chain_b crash end (0 = no crash)")
		haltAFrom  = fs.Float64("halta-from", 0, "chain_a crash start (hours)")
		haltAUntil = fs.Float64("halta-until", 0, "chain_a crash end (0 = no crash)")
		packets    = fs.Int("packets", 0, "split the swap into n packets (companion protocol [20]; 0 = single shot)")
		requote    = fs.Bool("requote", false, "with -packets: re-quote the rate per packet")
		keepGoing  = fs.Bool("continue", false, "with -packets: continue after a failed packet instead of aborting")
		sampler    = fs.String("sampler", "", `sampling mode: "pseudo" (default), "antithetic", or "sobol"`)
		scen       = fs.String("scenario", "", "simulate under a named scenario's parameters, rate, deposit and seed (explicit flags override)")
		variants   = fs.String("variant", "", `simulate through the variant registry: "all" or a comma-separated key list`)
		rounds     = fs.Int("rounds", 0, "round count for the repeated variant (0 = variant default)")
		budget     = fs.Float64("budget", 0, "Bob's holdings cap for the uncertain variant (0 = unconstrained)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	params := utility.Default()
	name := "cli"
	if *scen != "" {
		sc, err := scenario.Lookup(*scen)
		if err != nil {
			return err
		}
		params = sc.Params
		name = sc.Name
		visited := map[string]bool{}
		fs.Visit(func(f *flag.Flag) { visited[f.Name] = true })
		if !visited["pstar"] {
			*pstar = sc.PStar
		}
		if !visited["q"] {
			*q = sc.Collateral
		}
		if !visited["seed"] {
			*seed = sc.Seed
		}
		if !visited["packets"] {
			*packets = sc.Packets
		}
		if !visited["rounds"] {
			*rounds = sc.Rounds
		}
		if !visited["budget"] {
			*budget = sc.BobBudget
		}
	}

	if *packets < 0 {
		return fmt.Errorf("swapsim: -packets must be >= 0, got %d", *packets)
	}
	mode, err := qmc.ParseMode(*sampler)
	if err != nil {
		return err
	}

	if *variants != "" {
		sc := scenario.Scenario{
			Name:       name,
			Params:     params,
			PStar:      *pstar,
			Collateral: *q,
			BobBudget:  *budget,
			MCRuns:     *runs,
			Seed:       *seed,
			Packets:    *packets,
			Rounds:     *rounds,
		}
		report, err := variant.Run(sc, variant.RunOpts{
			Variants:  *variants,
			CIWidth:   *ciWidth,
			ChunkSize: *chunk,
			MaxPaths:  *maxPaths,
			Sampler:   mode,
		})
		if err != nil {
			return err
		}
		if _, err := fmt.Fprint(out, report.Render()); err != nil {
			return err
		}
		if bad := report.Disagreements(); len(bad) > 0 {
			return fmt.Errorf("analytic solve outside the Monte Carlo Wilson interval for: %s",
				strings.Join(bad, ", "))
		}
		return nil
	}

	m, err := core.New(params)
	if err != nil {
		return err
	}
	if *packets > 0 {
		res, err := packetized.Run(packetized.Config{
			Params:               params,
			PStar:                *pstar,
			Packets:              *packets,
			Requote:              *requote,
			ContinueAfterFailure: *keepGoing,
			Runs:                 *runs,
			Seed:                 *seed,
		})
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "packetized swap: n=%d packets at P*=%g (requote=%v continue=%v, %d runs)\n",
			*packets, *pstar, *requote, *keepGoing, *runs)
		fmt.Fprintf(out, "  full completion:    %v\n", res.FullCompletion)
		fmt.Fprintf(out, "  expected fraction:  %.4f ± %.4f\n", res.ExpectedFraction, res.FractionStdErr)
		fmt.Fprintf(out, "  mean packets done:  %.2f\n", res.MeanPacketsDone)
		fmt.Fprintf(out, "  per-round exposure: %.4f TokenA (vs %.4f single-shot)\n", res.ExposurePerRound, *pstar)
		return nil
	}

	var strat core.Strategy
	var analytic float64
	if *q > 0 {
		col, err := m.Collateral(*q)
		if err != nil {
			return err
		}
		if strat, err = col.Strategy(*pstar); err != nil {
			return err
		}
		if analytic, err = col.SuccessRate(*pstar); err != nil {
			return err
		}
	} else {
		if strat, err = m.Strategy(*pstar); err != nil {
			return err
		}
		if analytic, err = m.SuccessRate(*pstar); err != nil {
			return err
		}
	}

	cfg := swapsim.Config{
		Params:     params,
		Strategy:   strat,
		Collateral: *q,
		Seed:       *seed,
		HaltA:      swapsim.HaltWindow{From: *haltAFrom, Until: *haltAUntil},
		HaltB:      swapsim.HaltWindow{From: *haltBFrom, Until: *haltBUntil},
		Sampler:    mode,
	}

	if *trace {
		outc, err := swapsim.Run(cfg)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "stage:    %s (success=%v, atomic=%v)\n", outc.Stage, outc.Success, outc.Atomic)
		fmt.Fprintf(out, "balances: Alice Δ(TokenA, TokenB) = (%+.4f, %+.4f)\n", outc.AliceDeltaA, outc.AliceDeltaB)
		fmt.Fprintf(out, "          Bob   Δ(TokenA, TokenB) = (%+.4f, %+.4f)\n", outc.BobDeltaA, outc.BobDeltaB)
		if *q > 0 {
			fmt.Fprintf(out, "collateral: Alice %+.4f, Bob %+.4f\n", outc.CollateralDeltaAlice, outc.CollateralDeltaBob)
		}
		fmt.Fprintf(out, "prices:   P_t2 = %.4f, P_t3 = %.4f\n", outc.PT2, outc.PT3)
		fmt.Fprintf(out, "finished at t = %.1fh\n", outc.EndTime)
		fmt.Fprintln(out, "alice decisions:")
		for _, d := range outc.AliceDecisions {
			fmt.Fprintf(out, "  %-3s t=%5.1f price=%.4f %-4s %s\n", d.Stage, d.Time, d.Price, d.Action, d.Reason)
		}
		fmt.Fprintln(out, "bob decisions:")
		for _, d := range outc.BobDecisions {
			fmt.Fprintf(out, "  %-3s t=%5.1f price=%.4f %-4s %s\n", d.Stage, d.Time, d.Price, d.Action, d.Reason)
		}
		return nil
	}

	res, err := swapsim.MonteCarlo(swapsim.MCConfig{
		Config:    cfg,
		Runs:      *runs,
		Workers:   *workers,
		CIWidth:   *ciWidth,
		ChunkSize: *chunk,
		MaxPaths:  *maxPaths,
	})
	if err != nil {
		return err
	}
	if res.Sampler.VarianceReduced() {
		fmt.Fprintf(out, "sampler:                  %s (estimator 95%% half-width %.4f)\n",
			res.Sampler, res.EstHalfWidth)
	}
	if *ciWidth > 0 {
		status := "cap reached"
		if res.Stopped {
			status = "target hit early"
		}
		fmt.Fprintf(out, "adaptive precision:       %d paths for CI half-width <= %g (%s)\n",
			res.Paths, *ciWidth, status)
	}
	if !strat.AliceInitiates {
		fmt.Fprintf(out, "note: A rationally stops at t1 under these parameters, so every run ends\n")
		fmt.Fprintf(out, "      not-initiated; the analytic SR below is conditional on initiation.\n")
	}
	fmt.Fprintf(out, "Monte Carlo success rate: %v\n", res.SuccessRate)
	fmt.Fprintf(out, "analytic success rate:    %.4f (agrees: %v)\n",
		analytic, analytic >= res.SuccessRate.Lo-0.01 && analytic <= res.SuccessRate.Hi+0.01)
	fmt.Fprintf(out, "mean completion time:     %.2fh\n", res.MeanDurationHours)
	fmt.Fprintf(out, "violations:               %d\n", res.Violations)
	stages := make([]string, 0, len(res.Stages))
	for s := range res.Stages {
		stages = append(stages, string(s))
	}
	sort.Strings(stages)
	fmt.Fprintln(out, "outcomes by stage:")
	for _, s := range stages {
		n := res.Stages[swapsim.Stage(s)]
		fmt.Fprintf(out, "  %-20s %7d (%.2f%%)\n", s, n, 100*float64(n)/float64(res.Paths))
	}
	return nil
}
