// Command scenarios drives the declarative scenario subsystem: it lists
// the registered presets and variant games, batch-runs any subset of the
// (scenario × variant) matrix through the internal/variant registry
// (solving each selected variant and validating analytic solves against
// Monte Carlo protocol runs), diffs two regimes variant by variant, and
// exports presets as JSON templates for user-defined scenarios.
//
// Usage:
//
//	scenarios -list
//	scenarios -run all [-runs 4000] [-workers 0]
//	scenarios -run all -variant all            # every registered variant
//	scenarios -run high-vol,impatient-bob -variant basic,packetized
//	scenarios -run all -ci-width 0.01 -max-paths 50000   # adaptive precision
//	scenarios -diff tableIII,high-vol [-variant all]
//	scenarios -export tableIII -o my.json   # template for custom scenarios
//	scenarios -file my.json                 # run a user-defined scenario
//
// The atlas subcommand sweeps a generated chain-pair universe (see
// internal/config) through the persistent content-addressed store and
// renders success-rate frontier artifacts. Only cells whose content key is
// absent from the store are solved, so a repeat run over an unchanged
// universe solves nothing and re-renders identical bytes:
//
//	scenarios atlas -store .atlas-store -out artifacts/atlas
//	scenarios atlas -store .atlas-store -out artifacts/atlas -max-solved 0  # warm gate
//	scenarios atlas -chains btc,evm -samples 64 -seed 7 -variant all
//
// Without -variant a scenario runs its own variant selection (the classic
// basic/collateral/uncertain trio when it names none). Batch runs
// parallelise across (scenario × variant) cells through the internal/sweep
// worker pool with reports in input order, identical for every -workers
// value. A batch exits non-zero if any variant's Monte Carlo validation
// disagrees with its analytic solve — the same regression gate CI applies.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/atlas"
	"repro/internal/config"
	"repro/internal/qmc"
	"repro/internal/scenario"
	"repro/internal/solvecache"
	"repro/internal/store"
	"repro/internal/variant"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "scenarios:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	if len(args) > 0 && args[0] == "atlas" {
		return runAtlas(args[1:], out)
	}
	fs := flag.NewFlagSet("scenarios", flag.ContinueOnError)
	var (
		list     = fs.Bool("list", false, "list the registered scenario presets and variant games")
		runSpec  = fs.String("run", "", `batch-run "all" or a comma-separated list of preset names`)
		file     = fs.String("file", "", "run a user-defined scenario from a JSON file")
		diff     = fs.String("diff", "", `diff two scenarios: "nameA,nameB"`)
		export   = fs.String("export", "", "write a preset as JSON (a template for -file scenarios)")
		outPath  = fs.String("o", "", "output path for -export (default: stdout)")
		variants = fs.String("variant", "", `variants to solve: "all", a comma-separated key list, or empty for each scenario's own selection`)
		runs     = fs.Int("runs", 0, "override every scenario's Monte Carlo run count (0 = per-scenario default)")
		workers  = fs.Int("workers", 0, "cross-cell worker-pool size (0 = all CPUs; output is identical for any value)")
		ciWidth  = fs.Float64("ci-width", 0, "adaptive Monte Carlo: stop once the Wilson 95% half-width is <= this (0 = fixed run count)")
		chunk    = fs.Int("chunk", 0, "Monte Carlo engine chunk size (0 = default)")
		maxPaths = fs.Int("max-paths", 0, "hard cap on adaptive sampling per scenario (0 = the run count)")
		sampler  = fs.String("sampler", "", `Monte Carlo sampling mode: "pseudo" (default), "antithetic", or "sobol"`)
		stats    = fs.Bool("cache-stats", false, "print solve-cache and quadrature-table hit/miss counters after the run")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *stats {
		defer solvecache.WriteStats(out)
	}
	mode, err := qmc.ParseMode(*sampler)
	if err != nil {
		return err
	}
	opts := variant.RunOpts{
		Runs: *runs, CIWidth: *ciWidth, ChunkSize: *chunk, MaxPaths: *maxPaths,
		Variants: *variants,
		Sampler:  mode,
	}

	switch {
	case *list:
		return runList(out)
	case *diff != "":
		return runDiff(out, *diff, opts)
	case *export != "":
		return runExport(out, *export, *outPath)
	case *file != "":
		sc, err := scenario.LoadFile(*file)
		if err != nil {
			return err
		}
		return runBatch(out, []scenario.Scenario{sc}, opts, *workers)
	case *runSpec != "":
		scs, err := selectScenarios(*runSpec)
		if err != nil {
			return err
		}
		return runBatch(out, scs, opts, *workers)
	default:
		return fmt.Errorf("nothing to do: pass -list, -run, -diff, -export or -file (see -help)")
	}
}

// runAtlas sweeps a generated universe through the content-addressed store
// and renders the frontier artifacts (scenarios atlas ...).
func runAtlas(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("scenarios atlas", flag.ContinueOnError)
	var (
		storeDir  = fs.String("store", "", "persistent cell-store directory (empty = uncached: every cell solves)")
		outDir    = fs.String("out", "", "artifact directory for atlas_cells.json and atlas_frontier.txt (empty = print the frontier)")
		chains    = fs.String("chains", "btc,ltc,doge,evm", "comma-separated chain profiles; every ordered pair becomes a swap direction")
		samples   = fs.Int("samples", 32, "Sobol samples per ordered chain pair")
		seed      = fs.Int64("seed", 1, "universe seed (scrambles sampling and seeds MC validation)")
		variants  = fs.String("variant", "basic", `variants solved per cell: "all" or a comma-separated key list`)
		runs      = fs.Int("runs", 0, "Monte Carlo run count per cell when -mc is set (0 = per-scenario default)")
		ciWidth   = fs.Float64("ci-width", 0, "adaptive Monte Carlo half-width target (0 = fixed run count)")
		maxPaths  = fs.Int("max-paths", 0, "hard cap on adaptive sampling per cell")
		mc        = fs.Bool("mc", false, "run each cell's Monte Carlo validation (default: analytic solves only)")
		workers   = fs.Int("workers", 0, "cross-cell worker-pool size (0 = all CPUs)")
		maxSolved = fs.Int("max-solved", -1, "fail if more than this many cells had to be solved (-1 = no gate; 0 gates a fully warm run)")
		stats     = fs.Bool("cache-stats", false, "print solve-cache and quadrature-table counters after the sweep")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *stats {
		defer solvecache.WriteStats(out)
	}
	opts := atlas.Options{
		Spec: config.UniverseSpec{
			Chains:  strings.Split(*chains, ","),
			Samples: *samples,
			Seed:    *seed,
			MCRuns:  *runs,
		},
		Variants: *variants,
		Runs:     *runs,
		CIWidth:  *ciWidth,
		MaxPaths: *maxPaths,
		SkipMC:   !*mc,
		Workers:  *workers,
	}
	if *storeDir != "" {
		s, err := store.Open(*storeDir)
		if err != nil {
			return err
		}
		opts.Store = s
	}
	res, err := atlas.Run(context.Background(), opts)
	if err != nil {
		return err
	}
	fmt.Fprintln(out, res.Summary())
	if opts.Store != nil {
		st := opts.Store.Stats()
		fmt.Fprintf(out, "store: %d hits, %d misses, %d corrupt, %d puts (%s)\n",
			st.Hits, st.Misses, st.Corrupt, st.Puts, opts.Store.Dir())
	}
	if *outDir != "" {
		if err := res.WriteArtifacts(*outDir); err != nil {
			return err
		}
		fmt.Fprintf(out, "artifacts written to %s\n", *outDir)
	} else {
		fmt.Fprint(out, res.Frontier())
	}
	if *maxSolved >= 0 && res.Solved > *maxSolved {
		return fmt.Errorf("atlas solved %d cells, gate allows %d (store not warm?)", res.Solved, *maxSolved)
	}
	return nil
}

// runList prints the preset table and the variant registry.
func runList(out io.Writer) error {
	reg := scenario.Registry()
	fmt.Fprintf(out, "%d registered scenario presets:\n", len(reg))
	for _, sc := range reg {
		fmt.Fprintf(out, "  %-20s P*=%-4g Q=%-4g budget=%-4g  %s\n",
			sc.Name, sc.PStar, sc.Collateral, sc.BobBudget, sc.Description)
	}
	keys := variant.Keys()
	fmt.Fprintf(out, "%d registered variant games (default: %s):\n",
		len(keys), strings.Join(variant.DefaultKeys(), ","))
	for _, key := range keys {
		g, err := variant.Lookup(key)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "  %-20s %s\n", key, g.Describe())
	}
	return nil
}

// selectScenarios resolves "all" or a comma-separated preset list.
func selectScenarios(spec string) ([]scenario.Scenario, error) {
	if spec == "all" {
		return scenario.Registry(), nil
	}
	var scs []scenario.Scenario
	for _, name := range strings.Split(spec, ",") {
		sc, err := scenario.Lookup(strings.TrimSpace(name))
		if err != nil {
			return nil, err
		}
		scs = append(scs, sc)
	}
	return scs, nil
}

// runBatch fans the (scenario × variant) matrix through the batch runner,
// prints every report plus the summary matrix, and fails if any variant's
// Monte Carlo validation disagrees with its analytic solve.
func runBatch(out io.Writer, scs []scenario.Scenario, opts variant.RunOpts, workers int) error {
	reports, err := variant.RunAll(context.Background(), scs, workers, opts)
	if err != nil {
		return err
	}
	var disagree []string
	cells := 0
	for i, r := range reports {
		if i > 0 {
			fmt.Fprintln(out)
		}
		fmt.Fprint(out, r.Render())
		cells += len(r.Reports)
		for _, key := range r.Disagreements() {
			disagree = append(disagree, r.Scenario.Name+"/"+key)
		}
	}
	fmt.Fprintf(out, "\nper-variant success metrics:\n%s", variant.Matrix(reports))
	fmt.Fprintf(out, "\n%d scenario(s) run across %d variant cell(s), %d disagreement(s)\n",
		len(reports), cells, len(disagree))
	if len(disagree) > 0 {
		return fmt.Errorf("analytic solve outside the Monte Carlo Wilson interval for: %s",
			strings.Join(disagree, ", "))
	}
	return nil
}

// runDiff solves both scenarios across the selected variants and prints
// the per-variant comparison.
func runDiff(out io.Writer, spec string, opts variant.RunOpts) error {
	names := strings.Split(spec, ",")
	if len(names) != 2 {
		return fmt.Errorf("-diff wants exactly two names, got %q", spec)
	}
	var reports [2]variant.ScenarioReport
	for i, name := range names {
		sc, err := scenario.Lookup(strings.TrimSpace(name))
		if err != nil {
			return err
		}
		if reports[i], err = variant.Run(sc, opts); err != nil {
			return err
		}
	}
	fmt.Fprint(out, variant.Diff(reports[0], reports[1], 1e-4))
	return nil
}

// runExport writes a preset as JSON to the output path (or stdout).
func runExport(out io.Writer, name, path string) error {
	sc, err := scenario.Lookup(name)
	if err != nil {
		return err
	}
	if path == "" {
		return sc.Save(out)
	}
	if err := sc.SaveFile(path); err != nil {
		return err
	}
	fmt.Fprintf(out, "wrote %s to %s\n", name, path)
	return nil
}
