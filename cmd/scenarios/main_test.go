package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestListShowsPresetsAndVariants(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-list"}, &sb); err != nil {
		t.Fatalf("run: %v", err)
	}
	out := sb.String()
	for _, want := range []string{
		"registered scenario presets", "tableIII", "high-vol", "low-vol",
		"fee-stress", "asymmetric-discount", "short-timelock", "deep-collateral",
		"uncertain-wide", "impatient-bob", "adversarial-premium",
		"registered variant games", "basic", "collateral", "uncertain",
		"packetized", "repeated", "baseline",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("list missing %q:\n%s", want, out)
		}
	}
}

func TestRunSubset(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-run", "tableIII,high-vol", "-runs", "400"}, &sb); err != nil {
		t.Fatalf("run: %v", err)
	}
	out := sb.String()
	for _, want := range []string{
		"scenario tableIII", "scenario high-vol",
		"variant basic", "variant collateral", "variant uncertain",
		"per-variant success metrics",
		"2 scenario(s) run across 6 variant cell(s), 0 disagreement(s)",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunVariantAll(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-run", "tableIII", "-variant", "all", "-runs", "400"}, &sb); err != nil {
		t.Fatalf("run: %v", err)
	}
	out := sb.String()
	for _, want := range []string{
		"variant basic", "variant collateral", "variant uncertain",
		"variant packetized", "variant repeated", "variant baseline",
		"1 scenario(s) run across 6 variant cell(s), 0 disagreement(s)",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunVariantSubsetAndCacheStats(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-run", "tableIII", "-variant", "basic,packetized", "-runs", "400", "-cache-stats"}, &sb); err != nil {
		t.Fatalf("run: %v", err)
	}
	out := sb.String()
	for _, want := range []string{
		"variant basic", "variant packetized",
		"1 scenario(s) run across 2 variant cell(s)",
		"solve cache:",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "variant collateral") {
		t.Errorf("-variant basic,packetized still ran collateral:\n%s", out)
	}
}

func TestRunAllAgrees(t *testing.T) {
	if testing.Short() {
		t.Skip("full batch is slow")
	}
	var sb strings.Builder
	// 1500 runs keeps the Wilson intervals wide enough that the fixed-seed
	// agreement checks clear on every (preset × variant) cell; the
	// acceptance-scale 4000-run batch is CI's `make scenarios` job.
	if err := run([]string{"-run", "all", "-variant", "all", "-runs", "1500"}, &sb); err != nil {
		t.Fatalf("run -run all -variant all: %v\n%s", err, sb.String())
	}
	if !strings.Contains(sb.String(), "10 scenario(s) run across 60 variant cell(s), 0 disagreement(s)") {
		t.Errorf("batch should report 60 agreeing cells:\n%s", sb.String())
	}
}

func TestDiffScenarios(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-diff", "tableIII,high-vol", "-runs", "200"}, &sb); err != nil {
		t.Fatalf("run: %v", err)
	}
	out := sb.String()
	for _, want := range []string{"diff tableIII -> high-vol", "param sigma: 0.1 -> 0.2", "basic sr", "->"} {
		if !strings.Contains(out, want) {
			t.Errorf("diff missing %q:\n%s", want, out)
		}
	}
}

func TestExportAndRunFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sc.json")
	var sb strings.Builder
	if err := run([]string{"-export", "short-timelock", "-o", path}, &sb); err != nil {
		t.Fatalf("export: %v", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"name": "short-timelock"`) {
		t.Errorf("exported JSON missing name:\n%s", data)
	}

	sb.Reset()
	if err := run([]string{"-file", path, "-runs", "300"}, &sb); err != nil {
		t.Fatalf("run -file: %v", err)
	}
	if !strings.Contains(sb.String(), "scenario short-timelock") {
		t.Errorf("file run missing scenario header:\n%s", sb.String())
	}
}

func TestExportToStdout(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-export", "tableIII"}, &sb); err != nil {
		t.Fatalf("export: %v", err)
	}
	if !strings.Contains(sb.String(), `"pstar": 2`) {
		t.Errorf("stdout export missing fields:\n%s", sb.String())
	}
}

func TestErrors(t *testing.T) {
	var sb strings.Builder
	cases := map[string][]string{
		"no action":       {},
		"unknown flag":    {"-bogus"},
		"unknown preset":  {"-run", "nope"},
		"unknown variant": {"-run", "tableIII", "-variant", "nope"},
		"unknown export":  {"-export", "nope"},
		"one-name diff":   {"-diff", "tableIII"},
		"unknown diff":    {"-diff", "tableIII,nope"},
		"missing file":    {"-file", filepath.Join(t.TempDir(), "missing.json")},
		"bad export path": {"-export", "tableIII", "-o", filepath.Join(t.TempDir(), "no", "dir.json")},
	}
	for name, args := range cases {
		if err := run(args, &sb); err == nil {
			t.Errorf("%s: run(%v) succeeded, want error", name, args)
		}
	}
}

func TestAtlasSubcommandIncremental(t *testing.T) {
	storeDir, outDir := t.TempDir(), t.TempDir()
	base := []string{"atlas", "-chains", "btc,evm", "-samples", "2", "-seed", "3", "-store", storeDir, "-out", outDir}
	var cold strings.Builder
	if err := run(base, &cold); err != nil {
		t.Fatalf("cold run: %v\n%s", err, cold.String())
	}
	if !strings.Contains(cold.String(), "solved 4, loaded 0") {
		t.Errorf("cold output lacks solved-4 marker:\n%s", cold.String())
	}
	for _, name := range []string{"atlas_cells.json", "atlas_frontier.txt"} {
		if _, err := os.Stat(filepath.Join(outDir, name)); err != nil {
			t.Errorf("artifact %s not written: %v", name, err)
		}
	}
	var warm strings.Builder
	if err := run(append(base, "-max-solved", "0"), &warm); err != nil {
		t.Fatalf("warm run: %v\n%s", err, warm.String())
	}
	if !strings.Contains(warm.String(), "solved 0, loaded 4") {
		t.Errorf("warm output lacks solved-0 marker:\n%s", warm.String())
	}
	// The warm gate must fail against a cold store.
	var sb strings.Builder
	err := run([]string{"atlas", "-chains", "btc,evm", "-samples", "2", "-seed", "3",
		"-store", t.TempDir(), "-max-solved", "0"}, &sb)
	if err == nil || !strings.Contains(err.Error(), "gate allows 0") {
		t.Errorf("cold store with -max-solved 0 returned %v, want gate failure", err)
	}
}

func TestAtlasRejectsBadSpec(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"atlas", "-chains", "btc"}, &sb); err == nil {
		t.Error("single-chain universe should be rejected")
	}
	if err := run([]string{"atlas", "-chains", "btc,nope", "-samples", "1"}, &sb); err == nil {
		t.Error("unknown chain should be rejected")
	}
}
