package main

import (
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/solvecache"
)

func TestRunRejectsUnknownFlag(t *testing.T) {
	if err := run([]string{"-bogus"}, io.Discard); err == nil {
		t.Fatal("unknown flag accepted")
	}
}

func TestRunRejectsBadFaultSpec(t *testing.T) {
	err := run([]string{"-fault", "nope"}, io.Discard)
	if err == nil || !strings.Contains(err.Error(), "-fault") {
		t.Fatalf("err = %v, want a -fault parse error", err)
	}
}

func TestRunRejectsUnusableStoreDir(t *testing.T) {
	// A regular file where the store directory should be: Open must fail
	// before the daemon ever listens.
	path := filepath.Join(t.TempDir(), "not-a-dir")
	if err := os.WriteFile(path, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	err := run([]string{"-store", path}, io.Discard)
	if err == nil || !strings.Contains(err.Error(), "-store") {
		t.Fatalf("err = %v, want a -store open error", err)
	}
}

func TestCacheMaxModelsFlagAdjustsBound(t *testing.T) {
	defer solvecache.SetMaxModels(solvecache.DefaultMaxModels)
	// The flag applies before the listener; a bad address after it makes
	// run return without blocking.
	err := run([]string{"-cache-max-models", "7", "-addr", "127.0.0.1:-1"}, io.Discard)
	if err == nil {
		t.Fatal("bad address accepted")
	}
	if got := solvecache.MaxModels(); got != 7 {
		t.Fatalf("MaxModels = %d after -cache-max-models 7", got)
	}
}
