// Command swapd is the long-running quote daemon over the solve/simulate
// core: a JSON-RPC 2.0 server (internal/rpc) that serves any cell of the
// (scenario × variant) matrix, streams Monte Carlo convergence snapshots
// over WebSocket, and mirrors cmd/scenarios' list/diff queries — the
// repository's batch CLIs, as a service.
//
// Usage:
//
//	swapd [-addr :8547] [-budget-ms 2000] [-max-budget-ms 60000]
//	      [-mc-workers 1] [-max-runs 1000000] [-quiet]
//	      [-max-inflight 64] [-queue-depth 64] [-queue-wait 25ms]
//	      [-ws-read-timeout 2m] [-ws-write-timeout 10s]
//	      [-store dir] [-resp-cache 1024] [-cache-max-models 512]
//	      [-fault key=prob[:delay],...] [-fault-seed 1]
//
// Endpoints:
//
//	POST /rpc      JSON-RPC 2.0: swap.solve, scenario.list, scenario.diff,
//	               swapd.stats
//	GET  /ws       the WebSocket channel: everything above, plus
//	               swap.simulate streams (swap.progress notifications)
//	               and swap.cancel
//	GET  /healthz  liveness (503 while draining)
//
// Concurrent identical swap.solve requests coalesce through a
// single-flight layer in front of the process-wide solve cache; repeat
// requests are answered from a serialized-response byte cache
// (-resp-cache entries, 0 disables), and -store points at a persistent
// content-addressed result store shared with `scenarios atlas`, so a
// restarted daemon starts warm. -cache-max-models bounds the shared
// solve-model cache (0 = default 512, negative = unbounded). Every
// request runs under a context budget (budgetMs per request, capped at
// -max-budget-ms). SIGINT/SIGTERM trigger a graceful shutdown: new
// requests are rejected with code -32000, in-flight solves drain, and
// streams end with a terminal error response.
//
// Expensive requests pass an admission controller (-max-inflight slots,
// a -queue-depth x -queue-wait wait queue); saturation sheds with code
// -32005 and a retryAfterMs hint, and /healthz degrades to 503 while
// shedding. The -fault flags arm the deterministic chaos injector
// (internal/fault) for harness runs — never in production.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/fault"
	"repro/internal/rpc"
	"repro/internal/solvecache"
	"repro/internal/store"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "swapd:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("swapd", flag.ContinueOnError)
	var (
		addr        = fs.String("addr", ":8547", "listen address (host:port)")
		budgetMs    = fs.Int("budget-ms", 2000, "default per-request time budget in milliseconds")
		maxBudgetMs = fs.Int("max-budget-ms", 60000, "cap on the budget a request may ask for")
		mcWorkers   = fs.Int("mc-workers", 1, "Monte Carlo workers per request (parallelism is spent across requests)")
		maxRuns     = fs.Int("max-runs", 1_000_000, "cap on the Monte Carlo runs/paths one request may demand")
		drainFor    = fs.Duration("drain-timeout", 30*time.Second, "how long shutdown waits for in-flight work")
		quiet       = fs.Bool("quiet", false, "suppress the per-lifecycle-event log lines")

		maxInflight    = fs.Int("max-inflight", 0, "cap on concurrent expensive requests (0 = default 64)")
		queueDepth     = fs.Int("queue-depth", 0, "cap on requests waiting for an admission slot (0 = default 64)")
		queueWait      = fs.Duration("queue-wait", 0, "longest a saturated request queues before being shed (0 = default 25ms)")
		wsReadTimeout  = fs.Duration("ws-read-timeout", 0, "per-frame WebSocket read deadline (0 = default 2m)")
		wsWriteTimeout = fs.Duration("ws-write-timeout", 0, "per-frame WebSocket write deadline (0 = default 10s)")
		faultSpec      = fs.String("fault", "", "arm the chaos injector: key=prob[:delay],... (see internal/fault; empty = off)")
		faultSeed      = fs.Int64("fault-seed", 1, "seed of the fault injector's deterministic draws")

		storeDir  = fs.String("store", "", "persistent solve-store directory (empty = no on-disk tier)")
		respCache = fs.Int("resp-cache", 1024, "serialized-response cache entries for swap.solve (0 = disabled)")
		maxModels = fs.Int("cache-max-models", 0, "bound on shared solve models (0 = default 512, negative = unbounded)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	injector, err := fault.NewFromSpec(*faultSeed, *faultSpec)
	if err != nil {
		return fmt.Errorf("-fault: %w", err)
	}
	var st *store.Store
	if *storeDir != "" {
		st, err = store.Open(*storeDir)
		if err != nil {
			return fmt.Errorf("-store: %w", err)
		}
	}
	if *maxModels != 0 {
		solvecache.SetMaxModels(*maxModels)
	}
	respSize := *respCache
	if respSize == 0 {
		respSize = -1 // Config treats 0 as "use the default"; the user said off.
	}
	logger := log.New(out, "swapd: ", log.LstdFlags)
	logf := logger.Printf
	if *quiet {
		logf = func(string, ...any) {}
	}

	srv := rpc.NewServer(rpc.Config{
		DefaultBudget:  time.Duration(*budgetMs) * time.Millisecond,
		MaxBudget:      time.Duration(*maxBudgetMs) * time.Millisecond,
		MCWorkers:      *mcWorkers,
		MaxRuns:        *maxRuns,
		MaxInflight:    *maxInflight,
		QueueDepth:     *queueDepth,
		QueueWait:      *queueWait,
		WSReadTimeout:  *wsReadTimeout,
		WSWriteTimeout: *wsWriteTimeout,
		Fault:          injector,
		Logf:           logf,
		Store:          st,
		RespCacheSize:  respSize,
	})
	httpSrv := &http.Server{Handler: srv.Handler()}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	logf("listening on %s (budget %dms, max budget %dms, mc workers %d)",
		ln.Addr(), *budgetMs, *maxBudgetMs, *mcWorkers)
	if st != nil {
		logf("solve store: %s (%d entries)", *storeDir, st.Len())
	}
	if injector.Enabled() {
		logf("CHAOS: fault injector armed (seed %d): %s", *faultSeed, *faultSpec)
	}

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case s := <-sig:
		logf("received %v, draining", s)
	case err := <-errc:
		return fmt.Errorf("serving: %w", err)
	}

	// Drain order: mark the RPC layer draining first (new requests get
	// CodeShuttingDown, streams get their terminal responses), then close
	// the HTTP listener.
	ctx, cancel := context.WithTimeout(context.Background(), *drainFor)
	defer cancel()
	drainErr := srv.Shutdown(ctx)
	if err := httpSrv.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		logf("http shutdown: %v", err)
	}
	<-errc // Serve has returned http.ErrServerClosed
	if drainErr != nil {
		return fmt.Errorf("draining: %w", drainErr)
	}
	logf("bye")
	return nil
}
