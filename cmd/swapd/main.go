// Command swapd is the long-running quote daemon over the solve/simulate
// core: a JSON-RPC 2.0 server (internal/rpc) that serves any cell of the
// (scenario × variant) matrix, streams Monte Carlo convergence snapshots
// over WebSocket, and mirrors cmd/scenarios' list/diff queries — the
// repository's batch CLIs, as a service.
//
// Usage:
//
//	swapd [-addr :8547] [-budget-ms 2000] [-max-budget-ms 60000]
//	      [-mc-workers 1] [-max-runs 1000000] [-quiet]
//
// Endpoints:
//
//	POST /rpc      JSON-RPC 2.0: swap.solve, scenario.list, scenario.diff,
//	               swapd.stats
//	GET  /ws       the WebSocket channel: everything above, plus
//	               swap.simulate streams (swap.progress notifications)
//	               and swap.cancel
//	GET  /healthz  liveness (503 while draining)
//
// Concurrent identical swap.solve requests coalesce through a
// single-flight layer in front of the process-wide solve cache; every
// request runs under a context budget (budgetMs per request, capped at
// -max-budget-ms). SIGINT/SIGTERM trigger a graceful shutdown: new
// requests are rejected with code -32000, in-flight solves drain, and
// streams end with a terminal error response.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/rpc"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "swapd:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("swapd", flag.ContinueOnError)
	var (
		addr        = fs.String("addr", ":8547", "listen address (host:port)")
		budgetMs    = fs.Int("budget-ms", 2000, "default per-request time budget in milliseconds")
		maxBudgetMs = fs.Int("max-budget-ms", 60000, "cap on the budget a request may ask for")
		mcWorkers   = fs.Int("mc-workers", 1, "Monte Carlo workers per request (parallelism is spent across requests)")
		maxRuns     = fs.Int("max-runs", 1_000_000, "cap on the Monte Carlo runs/paths one request may demand")
		drainFor    = fs.Duration("drain-timeout", 30*time.Second, "how long shutdown waits for in-flight work")
		quiet       = fs.Bool("quiet", false, "suppress the per-lifecycle-event log lines")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	logger := log.New(out, "swapd: ", log.LstdFlags)
	logf := logger.Printf
	if *quiet {
		logf = func(string, ...any) {}
	}

	srv := rpc.NewServer(rpc.Config{
		DefaultBudget: time.Duration(*budgetMs) * time.Millisecond,
		MaxBudget:     time.Duration(*maxBudgetMs) * time.Millisecond,
		MCWorkers:     *mcWorkers,
		MaxRuns:       *maxRuns,
		Logf:          logf,
	})
	httpSrv := &http.Server{Handler: srv.Handler()}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	logf("listening on %s (budget %dms, max budget %dms, mc workers %d)",
		ln.Addr(), *budgetMs, *maxBudgetMs, *mcWorkers)

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case s := <-sig:
		logf("received %v, draining", s)
	case err := <-errc:
		return fmt.Errorf("serving: %w", err)
	}

	// Drain order: mark the RPC layer draining first (new requests get
	// CodeShuttingDown, streams get their terminal responses), then close
	// the HTTP listener.
	ctx, cancel := context.WithTimeout(context.Background(), *drainFor)
	defer cancel()
	drainErr := srv.Shutdown(ctx)
	if err := httpSrv.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		logf("http shutdown: %v", err)
	}
	<-errc // Serve has returned http.ErrServerClosed
	if drainErr != nil {
		return fmt.Errorf("draining: %w", drainErr)
	}
	logf("bye")
	return nil
}
