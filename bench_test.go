// Benchmarks regenerating every paper artifact (one per table/figure, per
// the experiment index in DESIGN.md). Each iteration produces the complete
// data behind the artifact, so ns/op measures the cost of a full
// reproduction; run with
//
//	go test -bench=. -benchmem
package repro_test

import (
	"testing"

	"repro/internal/agent"
	"repro/internal/core"
	"repro/internal/figures"
	"repro/internal/swapsim"
	"repro/internal/timeline"
	"repro/internal/utility"
)

// benchGen runs a figure generator b.N times on a single worker, so ns/op
// tracks the sequential cost of the artifact (see the Sweep benchmarks for
// the parallel speedup).
func benchGen(b *testing.B, gen figures.Generator) {
	b.Helper()
	p := utility.Default()
	o := figures.Opts{Workers: 1}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		figs, err := gen(p, o)
		if err != nil {
			b.Fatal(err)
		}
		if len(figs) == 0 {
			b.Fatal("no figures generated")
		}
	}
}

// BenchmarkTableI_BalanceChange regenerates Table I: one honest protocol
// execution on the two simulated ledgers with balance verification.
func BenchmarkTableI_BalanceChange(b *testing.B) {
	benchGen(b, figures.TableI)
}

// BenchmarkTableIII_Defaults regenerates the Table III parameter listing.
func BenchmarkTableIII_Defaults(b *testing.B) {
	benchGen(b, figures.TableIII)
}

// BenchmarkFig2_Timeline regenerates the Fig. 2 timelines (Eqs. 12–13).
func BenchmarkFig2_Timeline(b *testing.B) {
	p := utility.Default()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := timeline.Idealized(p.Chains); err != nil {
			b.Fatal(err)
		}
		if _, err := timeline.WithWaits(p.Chains, 1, 2, 1, 0.5); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig3_UtilityT3 regenerates Alice's t3 utility panels (Eq. 14/16).
func BenchmarkFig3_UtilityT3(b *testing.B) {
	benchGen(b, figures.Fig3)
}

// BenchmarkFig4_UtilityT2 regenerates Bob's t2 utility panels (Eq. 21/23),
// including the root-finding for (P̲_t2, P̄_t2).
func BenchmarkFig4_UtilityT2(b *testing.B) {
	benchGen(b, figures.Fig4)
}

// BenchmarkFig5_UtilityT1 regenerates Alice's t1 utilities and the feasible
// range of Eq. 29.
func BenchmarkFig5_UtilityT1(b *testing.B) {
	benchGen(b, figures.Fig5)
}

// BenchmarkFig6_SuccessRateSweeps regenerates all eight sensitivity panels
// (8 parameters × 4 values × a 41-point SR curve).
func BenchmarkFig6_SuccessRateSweeps(b *testing.B) {
	benchGen(b, figures.Fig6)
}

// BenchmarkFig7_CollateralUtilityT2 regenerates the six collateral utility
// panels with their indifference points (Eq. 35).
func BenchmarkFig7_CollateralUtilityT2(b *testing.B) {
	benchGen(b, figures.Fig7)
}

// BenchmarkFig8_CollateralUtilityT1 regenerates the collateral t1 panels
// and engagement sets (Eqs. 36–39).
func BenchmarkFig8_CollateralUtilityT1(b *testing.B) {
	benchGen(b, figures.Fig8)
}

// BenchmarkFig9_CollateralSuccessRate regenerates SR(P*) for
// Q ∈ {0, 0.01, 0.1} (Eq. 40).
func BenchmarkFig9_CollateralSuccessRate(b *testing.B) {
	benchGen(b, figures.Fig9)
}

// BenchmarkFig10a_OptimalAmount regenerates B's best-response curves
// X*(P_t2) (Eq. 44, holdings-capped).
func BenchmarkFig10a_OptimalAmount(b *testing.B) {
	benchGen(b, func(p utility.Params, o figures.Opts) ([]figures.Figure, error) {
		return figures.Fig10a(p, figures.DefaultBobBudget, o)
	})
}

// BenchmarkFig10b_ExcessUtility regenerates A's excess-utility curve
// (Eq. 45) with its break-even range — each point contains a nested
// best-response optimisation per quadrature node.
func BenchmarkFig10b_ExcessUtility(b *testing.B) {
	benchGen(b, func(p utility.Params, o figures.Opts) ([]figures.Figure, error) {
		return figures.Fig10b(p, figures.DefaultBobBudget, o)
	})
}

// BenchmarkFig11_SRComparison regenerates the basic-vs-uncertain success
// rate comparison (Eq. 46).
func BenchmarkFig11_SRComparison(b *testing.B) {
	benchGen(b, func(p utility.Params, o figures.Opts) ([]figures.Figure, error) {
		return figures.Fig11(p, figures.DefaultBobBudget, o)
	})
}

// BenchmarkMC_ProtocolSuccessRate measures full protocol Monte Carlo on the
// ledger simulator (2000 swaps per iteration, 8 workers).
func BenchmarkMC_ProtocolSuccessRate(b *testing.B) {
	p := utility.Default()
	m, err := core.New(p)
	if err != nil {
		b.Fatal(err)
	}
	strat, err := m.Strategy(2.0)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := swapsim.MonteCarlo(swapsim.MCConfig{
			Config:  swapsim.Config{Params: p, Strategy: strat, Seed: int64(i)},
			Runs:    2000,
			Workers: 8,
		})
		if err != nil {
			b.Fatal(err)
		}
		if res.SuccessRate.N != 2000 {
			b.Fatal("short run")
		}
	}
}

// BenchmarkBaseline_InitiatorOption regenerates the related-work comparison
// (one-sided optionality vs the paper's two-sided game).
func BenchmarkBaseline_InitiatorOption(b *testing.B) {
	benchGen(b, figures.BaselineComparison)
}

// BenchmarkSolve_SingleRun measures one full basic-game solve (thresholds,
// feasible range, SR) — the unit of work behind every figure point.
func BenchmarkSolve_SingleRun(b *testing.B) {
	p := utility.Default()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m, err := core.New(p)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := m.SuccessRate(2.0); err != nil {
			b.Fatal(err)
		}
	}
}

// benchFig6Workers regenerates the heaviest grid sweep (Fig. 6: 32 solver
// curves × 41 SR evaluations) at a fixed worker count. Comparing the
// Workers1 and WorkersAll variants shows the sweep engine's speedup on a
// multi-core box; the output is bit-identical either way (pinned by
// figures.TestWorkerCountDoesNotChangeOutput).
func benchFig6Workers(b *testing.B, workers int) {
	b.Helper()
	p := utility.Default()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		figs, err := figures.Fig6(p, figures.Opts{Workers: workers})
		if err != nil {
			b.Fatal(err)
		}
		if len(figs) != 8 {
			b.Fatal("short Fig6")
		}
	}
}

// BenchmarkSweep_Fig6_Workers1 is the sequential baseline of the sweep.
func BenchmarkSweep_Fig6_Workers1(b *testing.B) { benchFig6Workers(b, 1) }

// BenchmarkSweep_Fig6_WorkersAll runs the same sweep on all CPUs.
func BenchmarkSweep_Fig6_WorkersAll(b *testing.B) { benchFig6Workers(b, 0) }

// benchMCWorkers measures the Monte Carlo driver at a fixed pool size.
func benchMCWorkers(b *testing.B, workers int) {
	b.Helper()
	p := utility.Default()
	m, err := core.New(p)
	if err != nil {
		b.Fatal(err)
	}
	strat, err := m.Strategy(2.0)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := swapsim.MonteCarlo(swapsim.MCConfig{
			Config:  swapsim.Config{Params: p, Strategy: strat, Seed: 42},
			Runs:    2000,
			Workers: workers,
		})
		if err != nil {
			b.Fatal(err)
		}
		if res.SuccessRate.N != 2000 {
			b.Fatal("short run")
		}
	}
}

// BenchmarkSweep_MC_Workers1 is the sequential Monte Carlo baseline.
func BenchmarkSweep_MC_Workers1(b *testing.B) { benchMCWorkers(b, 1) }

// BenchmarkSweep_MC_WorkersAll runs the same 2000 swaps on all CPUs.
func BenchmarkSweep_MC_WorkersAll(b *testing.B) { benchMCWorkers(b, 0) }

// BenchmarkProtocol_SingleSwap measures one honest swap on the ledger
// simulator end to end.
func BenchmarkProtocol_SingleSwap(b *testing.B) {
	p := utility.Default()
	strat := agent.HonestStrategy(2.0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		out, err := swapsim.Run(swapsim.Config{Params: p, Strategy: strat, Seed: int64(i)})
		if err != nil {
			b.Fatal(err)
		}
		if !out.Atomic {
			b.Fatal("non-atomic honest swap")
		}
	}
}
