// Monte Carlo engine benchmarks: the per-path cost of the legacy
// allocate-everything-per-run driver vs the reusable-state Runner, and the
// end-to-end throughput of the streaming engine in fixed-N and adaptive
// mode. `make bench-json` runs these and records the machine-readable
// BENCH_mc.json baseline that CI's regression gate checks (>2x allocs/op
// fails the build); paths/sec for the Table III preset is recorded in
// EXPERIMENTS.md.
package repro_test

import (
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/qmc"
	"repro/internal/swapsim"
	"repro/internal/sweep"
	"repro/internal/utility"
)

// mcBenchConfig solves the Table III strategy once and caches the
// simulator configuration every MC benchmark shares.
var mcBenchConfig = sync.OnceValues(func() (swapsim.Config, error) {
	m, err := core.New(utility.Default())
	if err != nil {
		return swapsim.Config{}, err
	}
	strat, err := m.Strategy(2.0)
	if err != nil {
		return swapsim.Config{}, err
	}
	return swapsim.Config{Params: utility.Default(), Strategy: strat, Seed: 1}, nil
})

func mcConfig(b *testing.B) swapsim.Config {
	b.Helper()
	cfg, err := mcBenchConfig()
	if err != nil {
		b.Fatal(err)
	}
	return cfg
}

// BenchmarkMC_PathLegacyAlloc is the pre-engine baseline: every path
// builds a fresh scheduler, two chains, price feed and agents
// (swapsim.Run), so allocs/op is the per-path allocation bill the
// streaming engine retires.
func BenchmarkMC_PathLegacyAlloc(b *testing.B) {
	cfg := mcConfig(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		run := cfg
		run.Seed = sweep.Seed(cfg.Seed, i)
		if _, err := swapsim.Run(run); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMC_PathReused runs the same paths on one reusable Runner —
// preallocated stack reset between paths — isolating the win the engine's
// per-worker state reuse delivers.
func BenchmarkMC_PathReused(b *testing.B) {
	runner, err := swapsim.NewRunner(mcConfig(b))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := runner.RunOutcome(sweep.Seed(1, i)); err != nil {
			b.Fatal(err)
		}
	}
}

// benchEngine measures end-to-end engine throughput: each iteration is a
// complete MonteCarlo estimate; paths/sec reports the aggregate sampling
// rate.
func benchEngine(b *testing.B, mcCfg swapsim.MCConfig) {
	b.Helper()
	mcCfg.Config = mcConfig(b)
	b.ReportAllocs()
	b.ResetTimer()
	paths := 0
	for i := 0; i < b.N; i++ {
		res, err := swapsim.MonteCarlo(mcCfg)
		if err != nil {
			b.Fatal(err)
		}
		paths += res.Paths
	}
	b.ReportMetric(float64(paths)/b.Elapsed().Seconds(), "paths/s")
}

// BenchmarkMC_EngineFixedN1Worker is the sequential engine throughput on
// the Table III preset (chunked, reused state, one worker).
func BenchmarkMC_EngineFixedN1Worker(b *testing.B) {
	benchEngine(b, swapsim.MCConfig{Runs: 2048, Workers: 1})
}

// BenchmarkMC_EngineFixedNAllWorkers adds the worker pool; output is
// bit-identical to the 1-worker run.
func BenchmarkMC_EngineFixedNAllWorkers(b *testing.B) {
	benchEngine(b, swapsim.MCConfig{Runs: 2048, Workers: 0})
}

// BenchmarkMC_EngineAdaptive measures adaptive-precision sampling: stop at
// a 0.02 Wilson half-width under a 20k cap.
func BenchmarkMC_EngineAdaptive(b *testing.B) {
	benchEngine(b, swapsim.MCConfig{Runs: 20000, Workers: 0, CIWidth: 0.02})
}

// convergenceConfig is the shared precision every convergence benchmark
// runs to: a 0.01 estimator half-width under a 200k cap, chunked so the
// adaptive stopper re-evaluates often enough to expose per-mode gains.
func convergenceConfig() swapsim.MCConfig {
	return swapsim.MCConfig{Runs: 200000, Workers: 0, CIWidth: 0.01, ChunkSize: 256}
}

// convergencePseudoPaths runs the pseudo sampler once to the shared
// precision target and caches the path count the variance-reduced modes
// are normalized against. The adaptive stop is deterministic per (seed,
// chunk) pair, so this is a constant of the preset, not a measurement.
var convergencePseudoPaths = sync.OnceValues(func() (int, error) {
	cfg, err := mcBenchConfig()
	if err != nil {
		return 0, err
	}
	mcCfg := convergenceConfig()
	mcCfg.Config = cfg
	res, err := swapsim.MonteCarlo(mcCfg)
	if err != nil {
		return 0, err
	}
	return res.Paths, nil
})

// benchConvergence measures precision-normalized throughput for one
// sampling mode: each iteration runs to the shared half-width target.
// Three metrics land in BENCH_mc.json:
//
//   - paths/s: raw sampling rate, as in the engine benchmarks.
//   - pathsratio: paths this mode needs / paths pseudo needs for the
//     same precision — the convergence figure of merit (< 1 means the
//     mode reaches the target with less work; deterministic per seed, so
//     `make bench-check` gates it with -max-paths-ratio).
//   - effpaths/s: pseudo-equivalent paths per second — the raw rate
//     divided by pathsratio, i.e. how fast a pseudo sampler would have
//     to run to match this mode's time-to-precision.
func benchConvergence(b *testing.B, mode qmc.Mode) {
	basePaths, err := convergencePseudoPaths()
	if err != nil {
		b.Fatal(err)
	}
	mcCfg := convergenceConfig()
	mcCfg.Config = mcConfig(b)
	mcCfg.Config.Sampler = mode
	b.ReportAllocs()
	b.ResetTimer()
	paths := 0
	modePaths := 0
	for i := 0; i < b.N; i++ {
		res, err := swapsim.MonteCarlo(mcCfg)
		if err != nil {
			b.Fatal(err)
		}
		paths += res.Paths
		modePaths = res.Paths
	}
	elapsed := b.Elapsed().Seconds()
	b.ReportMetric(float64(paths)/elapsed, "paths/s")
	b.ReportMetric(float64(basePaths)*float64(b.N)/elapsed, "effpaths/s")
	b.ReportMetric(float64(modePaths)/float64(basePaths), "pathsratio")
}

// BenchmarkMC_ConvergencePseudo is the convergence reference: pathsratio
// is 1 by construction and effpaths/s equals paths/s.
func BenchmarkMC_ConvergencePseudo(b *testing.B) {
	benchConvergence(b, qmc.ModePseudo)
}

// BenchmarkMC_ConvergenceAntithetic measures the antithetic pairs. On
// this workload the success region is band-shaped, the pair correlation
// is positive (~+0.29 at Table III) and the mode needs ~1.29x the pseudo
// paths — see DESIGN.md, "Sampling modes". The bench-check gate holds it
// under 1.5x so a regression to worse-than-structural cannot hide.
func BenchmarkMC_ConvergenceAntithetic(b *testing.B) {
	benchConvergence(b, qmc.ModeAntithetic)
}

// BenchmarkMC_ConvergenceSobol measures the scrambled-Sobol sequence,
// the mode that delivers the headline precision win (~0.17x the pseudo
// paths at Table III).
func BenchmarkMC_ConvergenceSobol(b *testing.B) {
	benchConvergence(b, qmc.ModeSobol)
}
