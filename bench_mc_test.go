// Monte Carlo engine benchmarks: the per-path cost of the legacy
// allocate-everything-per-run driver vs the reusable-state Runner, and the
// end-to-end throughput of the streaming engine in fixed-N and adaptive
// mode. `make bench-json` runs these and records the machine-readable
// BENCH_mc.json baseline that CI's regression gate checks (>2x allocs/op
// fails the build); paths/sec for the Table III preset is recorded in
// EXPERIMENTS.md.
package repro_test

import (
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/swapsim"
	"repro/internal/sweep"
	"repro/internal/utility"
)

// mcBenchConfig solves the Table III strategy once and caches the
// simulator configuration every MC benchmark shares.
var mcBenchConfig = sync.OnceValues(func() (swapsim.Config, error) {
	m, err := core.New(utility.Default())
	if err != nil {
		return swapsim.Config{}, err
	}
	strat, err := m.Strategy(2.0)
	if err != nil {
		return swapsim.Config{}, err
	}
	return swapsim.Config{Params: utility.Default(), Strategy: strat, Seed: 1}, nil
})

func mcConfig(b *testing.B) swapsim.Config {
	b.Helper()
	cfg, err := mcBenchConfig()
	if err != nil {
		b.Fatal(err)
	}
	return cfg
}

// BenchmarkMC_PathLegacyAlloc is the pre-engine baseline: every path
// builds a fresh scheduler, two chains, price feed and agents
// (swapsim.Run), so allocs/op is the per-path allocation bill the
// streaming engine retires.
func BenchmarkMC_PathLegacyAlloc(b *testing.B) {
	cfg := mcConfig(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		run := cfg
		run.Seed = sweep.Seed(cfg.Seed, i)
		if _, err := swapsim.Run(run); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMC_PathReused runs the same paths on one reusable Runner —
// preallocated stack reset between paths — isolating the win the engine's
// per-worker state reuse delivers.
func BenchmarkMC_PathReused(b *testing.B) {
	runner, err := swapsim.NewRunner(mcConfig(b))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := runner.RunOutcome(sweep.Seed(1, i)); err != nil {
			b.Fatal(err)
		}
	}
}

// benchEngine measures end-to-end engine throughput: each iteration is a
// complete MonteCarlo estimate; paths/sec reports the aggregate sampling
// rate.
func benchEngine(b *testing.B, mcCfg swapsim.MCConfig) {
	b.Helper()
	mcCfg.Config = mcConfig(b)
	b.ReportAllocs()
	b.ResetTimer()
	paths := 0
	for i := 0; i < b.N; i++ {
		res, err := swapsim.MonteCarlo(mcCfg)
		if err != nil {
			b.Fatal(err)
		}
		paths += res.Paths
	}
	b.ReportMetric(float64(paths)/b.Elapsed().Seconds(), "paths/s")
}

// BenchmarkMC_EngineFixedN1Worker is the sequential engine throughput on
// the Table III preset (chunked, reused state, one worker).
func BenchmarkMC_EngineFixedN1Worker(b *testing.B) {
	benchEngine(b, swapsim.MCConfig{Runs: 2048, Workers: 1})
}

// BenchmarkMC_EngineFixedNAllWorkers adds the worker pool; output is
// bit-identical to the 1-worker run.
func BenchmarkMC_EngineFixedNAllWorkers(b *testing.B) {
	benchEngine(b, swapsim.MCConfig{Runs: 2048, Workers: 0})
}

// BenchmarkMC_EngineAdaptive measures adaptive-precision sampling: stop at
// a 0.02 Wilson half-width under a 20k cap.
func BenchmarkMC_EngineAdaptive(b *testing.B) {
	benchEngine(b, swapsim.MCConfig{Runs: 20000, Workers: 0, CIWidth: 0.02})
}
