// Sensitivity: the motivating scenario of the paper's introduction —
// recurring swap failures under volatile prices. This example sweeps the
// volatility σ and the confirmation times, showing how the viable
// exchange-rate band shrinks and the achievable success rate falls, and
// renders a Fig. 6-style panel as an ASCII chart.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/mathx"
	"repro/internal/plot"
	"repro/internal/utility"
)

func main() {
	fmt.Println("How volatility kills atomic swaps (Table III defaults otherwise):")
	fmt.Println()
	for _, sigma := range []float64{0.05, 0.1, 0.15, 0.2, 0.3} {
		m, err := core.New(utility.Default().WithSigma(sigma))
		if err != nil {
			log.Fatal(err)
		}
		rng, viable, err := m.FeasibleRateRange()
		if err != nil {
			log.Fatal(err)
		}
		if !viable {
			fmt.Printf("  σ = %.2f: NO viable exchange rate — rational agents never even start\n", sigma)
			continue
		}
		opt, sr, err := m.OptimalRate()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  σ = %.2f: viable band (%.3f, %.3f), best SR %.1f%% at P* = %.3f\n",
			sigma, rng.Lo, rng.Hi, 100*sr, opt)
	}

	fmt.Println()
	fmt.Println("Slow chains hurt too (σ = 0.1, sweeping Chain_a confirmation τa):")
	for _, tauA := range []float64{1, 3, 5, 7, 12} {
		m, err := core.New(utility.Default().WithTauA(tauA))
		if err != nil {
			log.Fatal(err)
		}
		if _, sr, err := m.OptimalRate(); err == nil {
			fmt.Printf("  τa = %2.0fh: best SR %.1f%%\n", tauA, 100*sr)
		} else {
			fmt.Printf("  τa = %2.0fh: swap infeasible\n", tauA)
		}
	}

	// Render SR(P*) for two volatilities side by side.
	grid := mathx.LinSpace(0.5, 3.0, 50)
	var series []plot.Series
	for _, sigma := range []float64{0.05, 0.15} {
		m, err := core.New(utility.Default().WithSigma(sigma))
		if err != nil {
			log.Fatal(err)
		}
		ys := make([]float64, len(grid))
		for i, p := range grid {
			if ys[i], err = m.SuccessRate(p); err != nil {
				log.Fatal(err)
			}
		}
		series = append(series, plot.Series{Name: fmt.Sprintf("σ=%.2f", sigma), X: grid, Y: ys})
	}
	chart, err := plot.ASCII("Success rate vs exchange rate", "P*", "SR", 70, 16, series...)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Println(chart)
}
