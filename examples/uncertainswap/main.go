// Uncertainswap: the §IV.B extension — instead of fixing the exchange rate
// up front, Alice picks how much Token_a to commit and Bob best-responds
// with the amount of Token_b to lock after seeing the price at t2. This
// example traces Bob's best response across prices, finds Alice's optimal
// commitment under Bob's holdings budget, and shows the success-rate gain
// over the fixed-rate game (Figs. 10–11).
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/utility"
)

func main() {
	model, err := core.New(utility.Default())
	if err != nil {
		log.Fatal(err)
	}

	// Bob holds 5 Token_b (the budget reproducing Fig. 10a; see DESIGN.md).
	u, err := model.UncertainWithBudget(5)
	if err != nil {
		log.Fatal(err)
	}

	const aLock = 4.0 // Alice commits 4 Token_a
	fmt.Printf("Alice commits %.1f Token_a; Bob's best response X*(P_t2):\n", aLock)
	for _, price := range []float64{0.25, 0.5, 1, 2, 4, 8, 12} {
		x, excess, err := u.OptimalLockB(price, aLock)
		if err != nil {
			log.Fatal(err)
		}
		verdict := "locks"
		if x == 0 {
			verdict = "declines (even the full budget cannot deter Alice's withdrawal)"
		}
		fmt.Printf("  P_t2 = %5.2f → X* = %.3f, excess utility %.4f — Bob %s\n", price, x, excess, verdict)
	}

	aStar, exStar, err := u.OptimalLockA(14)
	if err != nil {
		log.Fatal(err)
	}
	rng, ok, err := u.BreakEvenRange(14)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nAlice's optimal commitment: a* = %.3f Token_a (excess utility %.4f)\n", aStar, exStar)
	if ok {
		fmt.Printf("Worthwhile commitments: a ∈ (%.3f, %.3f) (Fig. 10b's break-even range)\n", rng.Lo, rng.Hi)
	}

	srX, err := u.SuccessRate(aLock)
	if err != nil {
		log.Fatal(err)
	}
	srBasic, err := model.SuccessRate(aLock)
	if err != nil {
		log.Fatal(err)
	}
	_, srBest, err := model.OptimalRate()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nSuccess rates at P* = %.1f:\n", aLock)
	fmt.Printf("  fixed-rate game:            %.4f (fixed rates far from P0 rarely survive)\n", srBasic)
	fmt.Printf("  fixed-rate game, best P*:   %.4f\n", srBest)
	fmt.Printf("  uncertain-exchange game:    %.4f — dynamic amounts dominate (Fig. 11)\n", srX)

	// The unconstrained printed equations (Eq. 44) for comparison.
	free := model.Uncertain()
	srFree, err := free.SuccessRate(aLock)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  unconstrained Eq. 44:       %.4f (scale-invariant; see DESIGN.md deviation 6)\n", srFree)
}
