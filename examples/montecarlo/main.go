// Montecarlo: execute the full HTLC protocol on the simulated ledgers —
// two chains with confirmation lags and mempools, HTLC escrows, and
// strategy-driven agents — and verify that the empirical success rate
// matches the analytic SR of Eq. 31. Also demonstrates the crash-failure
// scenario in which HTLC atomicity genuinely breaks (§II, Zakhary et al.).
package main

import (
	"fmt"
	"log"

	"repro/internal/agent"
	"repro/internal/core"
	"repro/internal/swapsim"
	"repro/internal/utility"
)

func main() {
	params := utility.Default()
	model, err := core.New(params)
	if err != nil {
		log.Fatal(err)
	}
	const pstar = 2.0
	strat, err := model.Strategy(pstar)
	if err != nil {
		log.Fatal(err)
	}
	analytic, err := model.SuccessRate(pstar)
	if err != nil {
		log.Fatal(err)
	}

	res, err := swapsim.MonteCarlo(swapsim.MCConfig{
		Config:  swapsim.Config{Params: params, Strategy: strat, Seed: 1},
		Runs:    20000,
		Workers: 8,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("20000 protocol executions at P* = %.1f:\n", pstar)
	fmt.Printf("  empirical SR: %v\n", res.SuccessRate)
	fmt.Printf("  analytic SR:  %.4f (Eq. 31)\n", analytic)
	fmt.Printf("  outcomes: %v, atomicity violations: %d\n", res.Stages, res.Violations)

	// One fully traced honest run.
	out, err := swapsim.Run(swapsim.Config{Params: params, Strategy: agent.HonestStrategy(pstar), Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nHonest run (Table I verification): stage=%s\n", out.Stage)
	fmt.Printf("  Alice Δ = (%.0f TokenA, %+.0f TokenB), Bob Δ = (%+.0f TokenA, %.0f TokenB)\n",
		out.AliceDeltaA, out.AliceDeltaB, out.BobDeltaA, out.BobDeltaB)

	// The known HTLC weakness: chain_b crashes after Bob locks but before
	// Alice's claim confirms. Her secret still gossips through the mempool,
	// so Bob claims her Token_a while his own Token_b is refunded.
	bad, err := swapsim.Run(swapsim.Config{
		Params:   params,
		Strategy: agent.HonestStrategy(pstar),
		Seed:     7,
		HaltB:    swapsim.HaltWindow{From: 7.5, Until: 40},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nCrash injection on Chain_b during t ∈ [7.5, 40):\n")
	fmt.Printf("  stage=%s, atomic=%v\n", bad.Stage, bad.Atomic)
	fmt.Printf("  Alice Δ = (%.0f TokenA, %+.0f TokenB) — she loses everything\n", bad.AliceDeltaA, bad.AliceDeltaB)
	fmt.Printf("  Bob   Δ = (%+.0f TokenA, %+.0f TokenB) — he profits\n", bad.BobDeltaA, bad.BobDeltaB)
	fmt.Println("  (this is the crash-failure atomicity violation motivating AC3-style protocols)")
}
