// Quickstart: solve the HTLC atomic-swap game under the paper's Table III
// defaults and print everything a swap designer needs — the reveal cut-off,
// the responder's continuation range, the viable exchange-rate band, and
// the success rate at the fair rate.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/utility"
)

func main() {
	// Table III parameters: αA = αB = 0.3, rA = rB = 0.01/h, τa = 3h,
	// τb = 4h, εb = 1h, P0 = 2, µ = 0.002/h, σ = 0.1/√h.
	params := utility.Default()
	model, err := core.New(params)
	if err != nil {
		log.Fatal(err)
	}

	const pstar = 2.0 // the "fair" rate: P* equals the current price

	cutoff, err := model.CutoffT3(pstar)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("At P* = %.1f, Alice reveals the secret only if P_t3 > %.4f (Eq. 18).\n", pstar, cutoff)

	iv, ok, err := model.ContRangeT2(pstar)
	if err != nil {
		log.Fatal(err)
	}
	if ok {
		fmt.Printf("Bob locks his Token_b only if P_t2 ∈ (%.4f, %.4f) (Eq. 24).\n", iv.Lo, iv.Hi)
	}

	rng, ok, err := model.FeasibleRateRange()
	if err != nil {
		log.Fatal(err)
	}
	if ok {
		fmt.Printf("Alice initiates only for P* ∈ (%.4f, %.4f) — the paper's Eq. 29 ≈ (1.5, 2.5).\n", rng.Lo, rng.Hi)
	}

	sr, err := model.SuccessRate(pstar)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Probability the swap completes once initiated: %.1f%% (Eq. 31).\n", 100*sr)

	opt, srOpt, err := model.OptimalRate()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("The SR-maximising rate is P* = %.4f with SR = %.1f%%.\n", opt, 100*srOpt)

	// The same model yields executable threshold strategies for the
	// protocol simulator (see examples/montecarlo).
	strat, err := model.Strategy(pstar)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Strategy: initiate=%v, Bob's region=%v, Alice's cutoff=%.4f.\n",
		strat.AliceInitiates, strat.BobContT2, strat.AliceCutoffT3)
}
