// Calibration: the paper's first future-work direction (§V.B) —
// "simulation studies can be performed based on our model framework …
// using real market data". This example generates a synthetic hourly price
// series (standing in for exchange data, which the offline build cannot
// fetch), fits the GBM by maximum likelihood, and solves the swap game
// under the fitted dynamics.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/core"
	"repro/internal/gbm"
	"repro/internal/utility"
)

func main() {
	// A "market" with 3 months of hourly prices: µ = 0.0035/h, σ = 0.12/√h.
	truth := gbm.Process{Mu: 0.0035, Sigma: 0.12}
	rng := rand.New(rand.NewSource(99))
	series, err := truth.Path(rng, 2.0, 1.0, 24*90)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Synthetic market: %d hourly prices, first %.2f, last %.2f\n",
		len(series), series[0], series[len(series)-1])

	fitted, err := gbm.Calibrate(series, 1.0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("MLE fit: µ̂ = %.5f/h (true %.4f), σ̂ = %.5f/√h (true %.2f)\n",
		fitted.Mu, truth.Mu, fitted.Sigma, truth.Sigma)

	// Solve the swap game under the fitted dynamics, starting from the
	// latest observed price.
	params := utility.Default()
	params.Price = fitted
	params.P0 = series[len(series)-1]
	model, err := core.New(params)
	if err != nil {
		log.Fatal(err)
	}

	rng2, ok, err := model.FeasibleRateRange()
	if err != nil {
		log.Fatal(err)
	}
	if !ok {
		fmt.Println("Under the fitted dynamics no exchange rate is viable — do not swap.")
		return
	}
	opt, sr, err := model.OptimalRate()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Under fitted dynamics (P0 = %.3f):\n", params.P0)
	fmt.Printf("  viable band (%.3f, %.3f); quote P* = %.3f for the best SR = %.1f%%\n",
		rng2.Lo, rng2.Hi, opt, 100*sr)

	// Compare against the Table III assumption to show calibration matters.
	base, err := core.New(utility.Default().WithP0(params.P0))
	if err != nil {
		log.Fatal(err)
	}
	if _, srBase, err := base.OptimalRate(); err == nil {
		fmt.Printf("  (Table III dynamics would have promised SR = %.1f%%)\n", 100*srBase)
	}
}
