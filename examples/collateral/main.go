// Collateral: the §IV.A extension in action. An OTC desk wants its swaps
// to settle reliably; this example quantifies how much a symmetric
// collateral deposit (escrowed with the Oracle) buys in success rate, finds
// the deposit that maximises it, and verifies one collateralised run on the
// ledger simulator end to end.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/swapsim"
	"repro/internal/utility"
)

func main() {
	params := utility.Default()
	model, err := core.New(params)
	if err != nil {
		log.Fatal(err)
	}
	const pstar = 2.0

	fmt.Println("Success rate at the fair rate P* = 2.0 as collateral grows (Fig. 9):")
	for _, q := range []float64{0, 0.01, 0.05, 0.1, 0.25, 0.5} {
		col, err := model.Collateral(q)
		if err != nil {
			log.Fatal(err)
		}
		sr, err := col.SuccessRate(pstar)
		if err != nil {
			log.Fatal(err)
		}
		set, err := col.ContSetT2(pstar)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  Q = %-5.2f SR = %.4f   Bob's continuation set: %v\n", q, sr, set)
	}

	qOpt, srOpt, err := model.OptimalDeposit(pstar, 1.0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nDeposit maximising SR on [0, 1]: Q* = %.4f (SR = %.4f)\n", qOpt, srOpt)

	// Execute one collateralised swap on the simulated chains with the
	// rational thresholds, showing the Oracle settlement.
	col, err := model.Collateral(0.1)
	if err != nil {
		log.Fatal(err)
	}
	strat, err := col.Strategy(pstar)
	if err != nil {
		log.Fatal(err)
	}
	out, err := swapsim.Run(swapsim.Config{
		Params:     params,
		Strategy:   strat,
		Collateral: 0.1,
		Seed:       2024,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nOne simulated run with Q = 0.1: stage=%s, success=%v\n", out.Stage, out.Success)
	fmt.Printf("  token deltas: Alice (%.2f TokenA, %.2f TokenB), Bob (%.2f TokenA, %.2f TokenB)\n",
		out.AliceDeltaA, out.AliceDeltaB, out.BobDeltaA, out.BobDeltaB)
	fmt.Printf("  collateral settlement: Alice %+.2f, Bob %+.2f\n",
		out.CollateralDeltaAlice, out.CollateralDeltaBob)
}
