// Reputation: the paper's future-work directions in action (§V.B) —
// repeated swaps with endogenous reputation, and Bayesian uncertainty about
// the counterparty's success premium (announced in the contribution list,
// §I.B). A market maker repeatedly swaps with the same counterparty: honored
// deals rebuild trust, withdrawals burn it, and with no way to repair
// reputation a withdrawal spiral freezes the market.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/repeated"
	"repro/internal/utility"
)

func main() {
	// Part 1: repeated swaps under three reputation regimes.
	fmt.Println("Repeated swaps, 200 opportunities, 24h apart (SR-maximising quote each round):")
	regimes := []struct {
		name string
		cfg  repeated.Config
	}{
		{
			name: "static reputation (stage game repeated)",
			cfg: repeated.Config{
				Params: utility.Default(), Rounds: 200, GapHours: 24, Seed: 11,
			},
		},
		{
			name: "fragile trust (heavy loss, no recovery)",
			cfg: repeated.Config{
				Params: utility.Default(), Rounds: 200, GapHours: 24, Seed: 11,
				ReputationLoss: 0.2, AlphaMax: 0.6,
			},
		},
		{
			name: "forgiving market (loss + idle recovery)",
			cfg: repeated.Config{
				Params: utility.Default(), Rounds: 200, GapHours: 24, Seed: 11,
				ReputationLoss: 0.2, ReputationGain: 0.02, IdleRecovery: 0.15, AlphaMax: 0.6,
			},
		},
	}
	for _, reg := range regimes {
		res, err := repeated.Play(reg.cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-45s %s\n", reg.name+":", res.CooperationSummary())
	}

	// Part 2: what does not knowing your counterparty cost?
	fmt.Println("\nBayesian game: Alice is unsure how much Bob values completion (αB):")
	m, err := core.New(utility.Default())
	if err != nil {
		log.Fatal(err)
	}
	priors := []struct {
		name  string
		prior core.TypePrior
	}{
		{"known αB = 0.3", core.PointPrior(0.3)},
		{"αB ∈ {0.2, 0.4} equally likely", core.TypePrior{Values: []float64{0.2, 0.4}, Probs: []float64{0.5, 0.5}}},
		{"αB ∈ {0.05, 0.55} equally likely", core.TypePrior{Values: []float64{0.05, 0.55}, Probs: []float64{0.5, 0.5}}},
	}
	for _, p := range priors {
		b, err := m.Bayesian(core.PointPrior(0.3), p.prior)
		if err != nil {
			log.Fatal(err)
		}
		sr, ok, err := b.SuccessRate(2.0)
		if err != nil {
			log.Fatal(err)
		}
		if !ok {
			fmt.Printf("  %-35s swap never initiated\n", p.name+":")
			continue
		}
		fmt.Printf("  %-35s SR = %.4f (same mean premium)\n", p.name+":", sr)
	}
	fmt.Println("\nMean-preserving uncertainty about the counterparty lowers the success")
	fmt.Println("rate: low-premium types drop out entirely and cannot be priced back in.")
}
