// Allocation-regression pins for the amortized solve engine and the
// zero-alloc Monte Carlo hot path (testing.AllocsPerRun, so the numbers
// are exact and hardware-independent). The pins are ratcheted to the
// PR 4 numbers — RunOutcome dropped from 49 allocs/path to ≤2, a warm
// memoized solve to ≤3 — and exist to keep them there: loosen only with a
// benchmark justification in EXPERIMENTS.md.
package repro_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/swapsim"
	"repro/internal/sweep"
	"repro/internal/utility"
)

// TestRunOutcomeAllocs pins the per-path allocation budget of the reusable
// runner. Budget 2: the refund path's bound-method callback is the one
// remaining allocation; everything else (scheduler events, transactions,
// contracts, secrets, IDs, decision logs) is pooled.
func TestRunOutcomeAllocs(t *testing.T) {
	cfg := mcConfigT(t)
	runner, err := swapsim.NewRunner(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Warm the pools: the first paths grow event heaps, transaction arenas
	// and decision logs to steady state.
	for i := 0; i < 64; i++ {
		if _, err := runner.RunOutcome(sweep.Seed(1, i)); err != nil {
			t.Fatal(err)
		}
	}
	i := 0
	avg := testing.AllocsPerRun(200, func() {
		i++
		if _, err := runner.RunOutcome(sweep.Seed(1, i)); err != nil {
			t.Fatal(err)
		}
	})
	const budget = 2
	if avg > budget {
		t.Fatalf("RunOutcome allocates %.2f/op, budget %d (was 49 before the amortized engine)", avg, budget)
	}
}

// TestCachedSolveAllocs pins the allocation cost of a warm solve-cache
// hit: a repeated SuccessRate query must touch only the memo (the key
// boxing and lookup), not the root scans behind it.
func TestCachedSolveAllocs(t *testing.T) {
	m, err := core.New(utility.Default())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.SuccessRate(2.0); err != nil { // populate the cell
		t.Fatal(err)
	}
	avg := testing.AllocsPerRun(200, func() {
		if _, err := m.SuccessRate(2.0); err != nil {
			t.Fatal(err)
		}
	})
	const budget = 3
	if avg > budget {
		t.Fatalf("warm SuccessRate allocates %.2f/op, budget %d", avg, budget)
	}
}

// mcConfigT mirrors the benchmark helper for tests: the Table III strategy
// solved once.
func mcConfigT(t *testing.T) swapsim.Config {
	t.Helper()
	cfg, err := mcBenchConfig()
	if err != nil {
		t.Fatal(err)
	}
	return cfg
}
