// Solve-engine benchmarks: the amortized quadrature/constant/memo layers
// behind every analytic artifact. `make bench-json` runs these alongside the
// BenchmarkMC_* suite and records the machine-readable BENCH_solve.json
// baseline that CI's bench-solve-regression gate checks; the PR 3 -> PR 8
// wall-time trajectory is recorded in EXPERIMENTS.md.
package repro_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/figures"
	"repro/internal/scenario"
	"repro/internal/utility"
	"repro/internal/variant"
)

// BenchmarkFiguresFull regenerates all 18 artifact groups with production
// defaults — the end-to-end cost of a full paper reproduction. It runs
// first in this file so a -benchtime=1x pass measures it on cold
// process-wide caches, exactly like a fresh `cmd/figures` run, and reports
// the group count so a silently shrinking registry cannot fake a speedup.
// `make bench-check` gates its absolute wall time at 1.0s (benchmc
// -max-wall); the PR 4 -> PR 8 trajectory is in EXPERIMENTS.md.
func BenchmarkFiguresFull(b *testing.B) {
	p := utility.Default()
	b.ReportAllocs()
	b.ResetTimer()
	groups := 0
	for i := 0; i < b.N; i++ {
		figs, timings, err := figures.GenerateTimed(p, "", figures.Opts{})
		if err != nil {
			b.Fatal(err)
		}
		if len(figs) == 0 {
			b.Fatal("no figures")
		}
		groups = len(timings)
	}
	b.ReportMetric(float64(groups), "groups")
}

// BenchmarkSolve_ModelNew measures solver construction — with shared
// quadrature tables this is parameter validation plus the precomputed
// discount-factor family, not a Gauss–Legendre/Hermite Newton iteration.
func BenchmarkSolve_ModelNew(b *testing.B) {
	p := utility.Default()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := core.New(p); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSolve_ContSetCold measures B's t2 continuation-region scan on a
// fresh Model per iteration (no memo reuse): the per-cell cost of the
// hot root-finding primitive behind Eqs. 24/35.
func BenchmarkSolve_ContSetCold(b *testing.B) {
	p := utility.Default()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m, err := core.New(p)
		if err != nil {
			b.Fatal(err)
		}
		if _, _, err := m.ContRangeT2(2.0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSolve_ContSetWarm measures a memoized solve hit: the same cell
// re-queried on a warm Model — the path every cross-artifact re-solve now
// takes.
func BenchmarkSolve_ContSetWarm(b *testing.B) {
	m, err := core.New(utility.Default())
	if err != nil {
		b.Fatal(err)
	}
	if _, _, err := m.ContRangeT2(2.0); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := m.ContRangeT2(2.0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSolve_VariantMatrixAnalytic solves every registered variant of
// the Table III scenario without the Monte Carlo validations — the
// analytic (scenario × variant) cell cost the variant registry amortizes
// through the shared solve cache. The sampled variants (packetized,
// repeated) run their seeded experiments at a small fixed size so the
// gated allocs/op stay deterministic.
func BenchmarkSolve_VariantMatrixAnalytic(b *testing.B) {
	sc, err := scenario.Lookup("tableIII")
	if err != nil {
		b.Fatal(err)
	}
	sc.Rounds = 64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		row, err := variant.Run(sc, variant.RunOpts{Runs: 256, Variants: "all", SkipMC: true})
		if err != nil {
			b.Fatal(err)
		}
		if len(row.Reports) != len(variant.Keys()) {
			b.Fatalf("solved %d variants", len(row.Reports))
		}
	}
}

// BenchmarkSolve_VariantPacketized runs one full packetized cell — the
// seeded two-semantics experiment plus the n=1 cross-validation — the
// unit of work the scenario batch fans out per packetized preset.
func BenchmarkSolve_VariantPacketized(b *testing.B) {
	sc, err := scenario.Lookup("tableIII")
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := variant.Run(sc, variant.RunOpts{Runs: 256, Variants: "packetized"}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSolve_VariantRepeated runs one full repeated cell — a 64-round
// engagement through the process-wide quote memo plus its static-premia
// validation.
func BenchmarkSolve_VariantRepeated(b *testing.B) {
	sc, err := scenario.Lookup("tableIII")
	if err != nil {
		b.Fatal(err)
	}
	sc.Rounds = 64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := variant.Run(sc, variant.RunOpts{Variants: "repeated"}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSolve_ScenarioSolves runs the analytic half of a scenario report
// (thresholds, ranges, optimal rate, collateral and uncertain SRs) on a
// fresh Model each iteration — the unit of work the solve cache amortizes
// across the preset batch.
func BenchmarkSolve_ScenarioSolves(b *testing.B) {
	sc, err := scenario.Lookup("tableIII")
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m, err := core.New(sc.Params)
		if err != nil {
			b.Fatal(err)
		}
		if _, _, err := m.ContRangeT2(sc.PStar); err != nil {
			b.Fatal(err)
		}
		if _, err := m.SuccessRate(sc.PStar); err != nil {
			b.Fatal(err)
		}
		if _, _, err := m.OptimalRate(); err != nil {
			b.Fatal(err)
		}
	}
}
