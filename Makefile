# Local entry points matching the CI pipeline (.github/workflows/ci.yml):
# `make lint build race bench-smoke` is exactly what a PR must pass.

GO ?= go

.PHONY: all build test race bench bench-smoke lint figures clean

all: lint build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Full benchmark run (slow): every paper artifact plus the ablations.
bench:
	$(GO) test -bench=. -benchmem -run='^$$' .

# One iteration per benchmark — the CI regression smoke.
bench-smoke:
	$(GO) test -bench=. -benchtime=1x -run='^$$' .

lint:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:" >&2; echo "$$out" >&2; exit 1; fi
	$(GO) vet ./...

# Regenerate every paper artifact (ASCII to stdout, CSV under out/).
figures:
	$(GO) run ./cmd/figures -csv out

clean:
	rm -rf out
