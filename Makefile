# Local entry points matching the CI pipeline (.github/workflows/ci.yml):
# `make lint build race cover fuzz-smoke scenarios bench-smoke bench-check`
# is exactly what a PR must pass.

GO ?= go

# Coverage floors enforced by `make cover` and CI.
COVER_PKGS = repro/internal/scenario repro/internal/core repro/internal/mc \
	repro/internal/memo repro/internal/solvecache repro/internal/lazyrng \
	repro/internal/variant repro/internal/packetized repro/internal/repeated \
	repro/internal/baseline repro/internal/rpc repro/internal/qmc \
	repro/internal/fault repro/internal/store repro/internal/config \
	repro/internal/atlas
COVER_MIN  = 80

# Pinned static-analysis toolchain versions (CI installs exactly these;
# `make lint` runs the tools only when they are already on PATH).
STATICCHECK_VERSION = 2025.1.1
GOVULNCHECK_VERSION = v1.1.4

.PHONY: all build test race bench bench-smoke bench-json bench-rpc-json bench-check swapd-smoke chaos-smoke atlas-smoke pprof-smoke lint cover fuzz-smoke scenarios figures clean

all: lint build test

build:
	$(GO) build ./...

# -shuffle=on randomises test order every run, so inter-test state
# dependence cannot hide.
test:
	$(GO) test -shuffle=on ./...

race:
	$(GO) test -race -shuffle=on ./...

# Full benchmark run (slow): every paper artifact plus the ablations.
bench:
	$(GO) test -bench=. -benchmem -run='^$$' .

# One iteration per benchmark — the CI regression smoke.
bench-smoke:
	$(GO) test -bench=. -benchtime=1x -run='^$$' .

# Regenerate the benchmark baselines (commit the results; CI gates
# allocs/op against them): BENCH_mc.json for the Monte Carlo engine,
# BENCH_solve.json for the amortized solve engine.
bench-json:
	$(GO) test -bench='^BenchmarkMC_' -benchmem -run='^$$' . | $(GO) run ./tools/benchmc -o BENCH_mc.json
	$(GO) test -bench='^Benchmark(Solve_|FiguresFull)' -benchmem -benchtime=1x -run='^$$' . | $(GO) run ./tools/benchmc -o BENCH_solve.json \
		-note "Amortized solve engine baseline (cold process: BenchmarkFiguresFull runs first and populates the process-wide caches); regenerate with make bench-json, CI gates allocs/op at 2x and BenchmarkFiguresFull wall time at 1.0s via make bench-check."

# CI's bench-regression smoke (bench-mc-regression and
# bench-solve-regression jobs): a short run of both suites must stay
# within 2x of the committed baselines' allocs/op, reported in one merged
# table (wall-clock is not gated — allocs are hardware-independent). The
# MC suite runs 0.2s per benchmark — enough iterations that one-time pool
# warm-up amortizes to zero against the 1-alloc/path baseline — while the
# solve suite runs once so the process-wide caches are as cold as the
# baseline's. The convergence benchmarks' pathsratio is gated at 1.5x
# pseudo — antithetic's structural bound on this workload (see DESIGN.md,
# "Sampling modes"); sobol sits far below it. BenchmarkFiguresFull — the
# full 18-group artifact generation, first in the cold solve pass — is the
# one wall-clock gate: 1.0s absolute, the sub-second reproduction promise
# with wide headroom over the ~0.6s measured baseline.
bench-check:
	@set -e; tmp=$$(mktemp); trap 'rm -f '$$tmp EXIT; \
	$(GO) test -bench='^BenchmarkMC_' -benchmem -benchtime=0.2s -run='^$$' . > $$tmp; \
	$(GO) test -bench='^Benchmark(Solve_|FiguresFull)' -benchmem -benchtime=1x -run='^$$' . >> $$tmp; \
	$(GO) run ./tools/benchmc -against BENCH_mc.json,BENCH_solve.json -max-alloc-ratio 2 -max-paths-ratio 1.5 \
		-max-wall BenchmarkFiguresFull=1.0 < $$tmp
	@set -e; bindir=$$(mktemp -d); trap 'rm -rf '$$bindir EXIT; \
	$(GO) build -o $$bindir/swapd ./cmd/swapd; \
	$(GO) run ./tools/loadgen -spawn $$bindir/swapd -duration 5s -qps 1200 \
		-min-qps 500 -max-p99-ms 100 -require-coalesce -against BENCH_rpc.json; \
	$(GO) run ./tools/loadgen -spawn $$bindir/swapd -spawn-args "-resp-cache 16384" \
		-duration 4s -qps 400 -hot-frac 0.5 -hot-keys 8 -mc-runs 1000 -warm \
		-min-warm-hit 0.9 -warm-faster -against BENCH_rpc.json

# Regenerate the RPC-layer baseline (commit the result; see tools/loadgen).
# The hot-key + -warm run makes the artifact carry a cold row (results)
# and a warm row (warm): the same seeded stream replayed against the
# populated response cache. -resp-cache is sized above the stream's
# unique-key count so the replay measures hits, not LRU churn.
bench-rpc-json:
	@set -e; bindir=$$(mktemp -d); trap 'rm -rf '$$bindir EXIT; \
	$(GO) build -o $$bindir/swapd ./cmd/swapd; \
	$(GO) run ./tools/loadgen -spawn $$bindir/swapd -spawn-args "-resp-cache 16384" \
		-duration 10s -qps 800 -hot-frac 0.5 -hot-keys 8 -mc-runs 1000 -warm -o BENCH_rpc.json

# The quote daemon's acceptance gate (CI's swapd-smoke job): spawn swapd,
# drive it for 10s at 1200 QPS, and require >= 1000 sustained QPS, p99
# under 50ms, zero-ish errors and a non-zero coalescing hit rate.
swapd-smoke:
	@set -e; bindir=$$(mktemp -d); trap 'rm -rf '$$bindir EXIT; \
	$(GO) build -o $$bindir/swapd ./cmd/swapd; \
	$(GO) run ./tools/loadgen -spawn $$bindir/swapd -duration 10s -qps 1200 \
		-min-qps 1000 -max-p99-ms 50 -require-coalesce -against BENCH_rpc.json

# The chaos harness (CI's chaos-smoke job): build swapd with the race
# detector, record a fault-free digest run, then replay the same seeded
# request stream against a deliberately tiny admission controller with
# seeded faults (latency, injected errors, injected panics) and retrying
# clients. Gates: the daemon never crashes (loadgen fails if the child
# dies early or refuses to drain), shedding actually engages
# (-require-shed), goodput stays above a floor, p99 stays bounded, and
# every request that succeeded in both runs solved to byte-identical
# results (-digest-against) — faults may delay or shed work, never
# corrupt it.
chaos-smoke:
	@set -e; dir=$$(mktemp -d); trap 'rm -rf '$$dir EXIT; \
	$(GO) build -race -o $$dir/swapd ./cmd/swapd; \
	echo "chaos-smoke: fault-free digest run"; \
	$(GO) run ./tools/loadgen -spawn $$dir/swapd -duration 4s -qps 300 -seed 7 \
		-dup-every 20 -dup-burst 8 -mc-runs 5000 -workers 16 \
		-digest-out $$dir/digest.json -max-error-rate 0; \
	echo "chaos-smoke: seeded-fault run against a saturated daemon"; \
	$(GO) run ./tools/loadgen -spawn $$dir/swapd \
		-spawn-args "-max-inflight 4 -queue-depth 4 -queue-wait 5ms -fault-seed 42 -fault rpc.latency=0.05:5ms,rpc.error=0.03,rpc.panic=0.01" \
		-duration 6s -qps 300 -seed 7 -dup-every 20 -dup-burst 8 -mc-runs 5000 -workers 16 \
		-chaos -digest-against $$dir/digest.json \
		-require-shed -min-goodput 30 -max-p99-ms 5000 -max-error-rate 0.25

# The scenario-universe atlas's incrementality gate (CI's atlas-smoke
# job): sweep the default universe twice against one persistent store.
# The second sweep must load every cell from disk (-max-solved 0 fails
# the run if even one cell re-solves), produce byte-identical artifacts,
# and finish at least 10x faster than the cold sweep — the whole point
# of content-addressed results.
atlas-smoke:
	@set -e; dir=$$(mktemp -d); trap 'rm -rf '$$dir EXIT; \
	$(GO) build -o $$dir/scenarios ./cmd/scenarios; \
	echo "atlas-smoke: cold sweep"; \
	start=$$(date +%s%N); \
	$$dir/scenarios atlas -store $$dir/store -out $$dir/cold; \
	cold_ms=$$(( ($$(date +%s%N) - start) / 1000000 )); \
	echo "atlas-smoke: warm sweep (must solve 0 cells)"; \
	start=$$(date +%s%N); \
	$$dir/scenarios atlas -store $$dir/store -out $$dir/warm -max-solved 0; \
	warm_ms=$$(( ($$(date +%s%N) - start) / 1000000 )); \
	cmp $$dir/cold/atlas_cells.json $$dir/warm/atlas_cells.json; \
	cmp $$dir/cold/atlas_frontier.txt $$dir/warm/atlas_frontier.txt; \
	echo "atlas-smoke: cold $${cold_ms}ms, warm $${warm_ms}ms"; \
	if [ $$(( warm_ms * 10 )) -gt $$cold_ms ]; then \
		echo "atlas-smoke: warm sweep is not 10x faster than cold" >&2; exit 1; fi

# Profiling smoke: run one solve benchmark under -cpuprofile and assert
# the profile came out non-empty, so the profiling workflow every perf PR
# leans on cannot silently rot (CI runs this in bench-solve-regression).
pprof-smoke:
	$(GO) test -bench='^BenchmarkSolve_ScenarioSolves$$' -benchtime=1x -run='^$$' -cpuprofile /tmp/solve.prof .
	@test -s /tmp/solve.prof || { echo "pprof-smoke: empty cpu profile" >&2; exit 1; }
	$(GO) tool pprof -top -nodecount=3 /tmp/solve.prof >/dev/null
	@echo "pprof-smoke: profile ok"

# gofmt + vet always run; staticcheck and govulncheck run when installed
# (CI's lint-static job installs the pinned versions above and runs them
# unconditionally, so a missing local install cannot hide a finding).
lint:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:" >&2; echo "$$out" >&2; exit 1; fi
	$(GO) vet ./...
	@if command -v staticcheck >/dev/null 2>&1; then staticcheck -checks=SA ./...; \
		else echo "lint: staticcheck not on PATH, skipped (CI runs $(STATICCHECK_VERSION))"; fi
	@if command -v govulncheck >/dev/null 2>&1; then govulncheck ./...; \
		else echo "lint: govulncheck not on PATH, skipped (CI runs $(GOVULNCHECK_VERSION))"; fi

# Per-package coverage, failing when a gated package drops below COVER_MIN%.
# go test's status is checked before the gate so a red suite cannot hide
# behind a green coverage line.
cover:
	@$(GO) test -coverprofile=cover.out ./... > cover.txt; \
		status=$$?; cat cover.txt; \
		if [ $$status -ne 0 ]; then exit $$status; fi
	@for pkg in $(COVER_PKGS); do \
		pct=$$(awk -v p="$$pkg" '$$1 == "ok" && $$2 == p { for (i = 1; i <= NF; i++) if ($$i ~ /%$$/) { gsub(/%/, "", $$i); print $$i } }' cover.txt); \
		if [ -z "$$pct" ]; then echo "no coverage line for $$pkg" >&2; exit 1; fi; \
		if awk -v pct="$$pct" -v min=$(COVER_MIN) 'BEGIN { exit !(pct < min) }'; then \
			echo "coverage gate: $$pkg at $$pct% is below $(COVER_MIN)%" >&2; exit 1; fi; \
		echo "coverage gate: $$pkg $$pct% >= $(COVER_MIN)%"; \
	done

# 10-second smoke of each fuzz target (also run by CI).
fuzz-smoke:
	$(GO) test -fuzz=FuzzLognormal -fuzztime=10s -run='^$$' ./internal/dist
	$(GO) test -fuzz=FuzzScenarioJSON -fuzztime=10s -run='^$$' ./internal/scenario
	$(GO) test -fuzz=FuzzRPCRequest -fuzztime=10s -run='^$$' ./internal/rpc
	$(GO) test -fuzz=FuzzWSFrame -fuzztime=10s -run='^$$' ./internal/rpc
	$(GO) test -fuzz=FuzzSobol -fuzztime=10s -run='^$$' ./internal/qmc

# Batch-run every scenario preset across every registered variant (fails
# when any variant's MC validation disagrees with its analytic solve).
scenarios:
	$(GO) run ./cmd/scenarios -run all -variant all

# Regenerate every paper artifact (ASCII to stdout, CSV under out/).
figures:
	$(GO) run ./cmd/figures -csv out

# Remove every local build artifact .gitignore shields from commits:
# generated figures, coverage output, compiled test binaries and profiles.
clean:
	rm -rf out cover.out cover.txt *.test *.prof *.pprof profile.out bench.out
