// Package repro is a from-scratch Go reproduction of "A Game-Theoretic
// Analysis of Cross-Chain Atomic Swaps with HTLCs" (Xu, Ackerer,
// Dubovitskaya; ICDCS 2021, arXiv:2011.11325).
//
// The library lives under internal/: the backward-induction solvers
// (internal/core), the probability and numerical substrates (internal/dist,
// internal/gbm, internal/mathx), the parameter-sweep engine
// (internal/sweep), the protocol substrate (internal/sim, internal/chain,
// internal/htlc, internal/oracle, internal/agent, internal/swapsim), an
// independent grid-DP game engine (internal/game), the related-work
// baseline (internal/baseline), the experiment harness
// (internal/figures, internal/plot, internal/stats), and the declarative
// scenario registry and batch runner (internal/scenario).
//
// Executables are under cmd/ (swapsolve, figures, swapsim, scenarios) and runnable
// examples under examples/. bench_test.go in this directory regenerates
// each paper artifact as a testing.B benchmark; see DESIGN.md for the
// experiment index and EXPERIMENTS.md for measured-vs-paper results.
package repro
