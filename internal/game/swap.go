package game

import (
	"fmt"
	"math"

	"repro/internal/dist"
	"repro/internal/utility"
)

// SwapGame builds the basic HTLC swap game of §III as a three-stage game
// instance (t1 → t2 → t3; t4 is folded into the t3 cont payoffs because B
// claims with certainty, §III.E.1). The leaf payoffs are written directly
// from Eqs. 14–17, 22 and 27–28 — deliberately *not* shared with
// internal/core, so that solving this instance on a grid independently
// validates the closed-form backward induction.
func SwapGame(p utility.Params, pstar float64) (*Game, error) {
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("game: %w", err)
	}
	if pstar <= 0 || math.IsNaN(pstar) || math.IsInf(pstar, 0) {
		return nil, fmt.Errorf("%w: pstar=%g", ErrBadGame, pstar)
	}
	a, b, c, pr := p.Alice, p.Bob, p.Chains, p.Price
	stages := []Stage{
		{
			Name:    "t1",
			Decider: PlayerA,
			// Eq. 27/28: keep the original tokens.
			StopA:     func(x float64) float64 { return pstar },
			StopB:     func(x float64) float64 { return x },
			Horizon:   c.TauA,
			DiscountA: math.Exp(-a.R * c.TauA),
			DiscountB: math.Exp(-b.R * c.TauA),
		},
		{
			Name:    "t2",
			Decider: PlayerB,
			// Eq. 22: A's refund lands at t8 = t2 + τb + εb + 2τa;
			// Eq. 23: B keeps his Token_b.
			StopA:     func(x float64) float64 { return pstar * math.Exp(-a.R*(c.TauB+c.EpsB+2*c.TauA)) },
			StopB:     func(x float64) float64 { return x },
			Horizon:   c.TauB,
			DiscountA: math.Exp(-a.R * c.TauB),
			DiscountB: math.Exp(-b.R * c.TauB),
		},
		{
			Name:    "t3",
			Decider: PlayerA,
			// Eq. 16/17: refunds at t8 and t7.
			StopA: func(x float64) float64 { return pstar * math.Exp(-a.R*(c.EpsB+2*c.TauA)) },
			StopB: func(x float64) float64 { return x * math.Exp(2*(pr.Mu-b.R)*c.TauB) },
			// Eq. 14/15: swap completes; receipts at t5 and t6.
			ContA: func(x float64) float64 {
				return (1 + a.Alpha) * x * math.Exp((pr.Mu-a.R)*c.TauB)
			},
			ContB: func(x float64) float64 {
				return (1 + b.Alpha) * pstar * math.Exp(-b.R*(c.EpsB+c.TauA))
			},
		},
	}
	return &Game{
		Stages: stages,
		Kernel: func(x, dt float64) dist.LogNormal {
			l, err := pr.Transition(x, dt)
			if err != nil {
				// Grid points and horizons are validated positive.
				panic(err)
			}
			return l
		},
	}, nil
}

// HonestResponderGame is the related-work baseline (Han et al.'s American-
// option view, §II): only the initiator holds optionality. B's t2 step is
// automatic — he locks whenever A initiated — so the only strategic node is
// A's reveal decision at t3. Comparing its success rate against the full
// game isolates how much failure risk B's rationality adds.
func HonestResponderGame(p utility.Params, pstar float64) (*Game, error) {
	g, err := SwapGame(p, pstar)
	if err != nil {
		return nil, err
	}
	g.Stages[1].Decider = Auto
	return g, nil
}

// DefaultGrid builds a log-spaced state grid covering ±width standard
// deviations of the price at the game's end horizon, which is where the
// transition kernels need support.
func DefaultGrid(p utility.Params, n int, width float64) []float64 {
	horizon := p.Chains.TauA + p.Chains.TauB
	spread := p.Price.Sigma * math.Sqrt(horizon) * width
	centre := math.Log(p.P0) + (p.Price.Mu-p.Price.Sigma*p.Price.Sigma/2)*horizon
	lo := math.Exp(centre - spread)
	hi := math.Exp(centre + spread)
	grid := make([]float64, n)
	for i := range grid {
		grid[i] = lo * math.Pow(hi/lo, float64(i)/float64(n-1))
	}
	return grid
}
