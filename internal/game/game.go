// Package game is a generic finite-stage, two-player, continuous-state game
// engine solved by backward induction on a discretised state grid. The state
// is one-dimensional (the Token_b price) and evolves between stages under a
// caller-supplied Markov kernel (the GBM transition law).
//
// Each stage has a decider choosing from {cont, stop}: stop ends the game
// with state-dependent terminal payoffs; cont either ends the game at the
// final stage or hands the (transitioned, discounted) state to the next
// stage. Stages may also be automatic (no decision — the protocol step
// always proceeds), which expresses related-work baselines such as the
// honest-responder model.
//
// The engine exists as an *independent numerical check* of the closed-form
// solver in internal/core: the two share only the leaf payoff definitions,
// so agreement of thresholds and value functions validates the entire
// backward-induction chain (see the cross-check tests and DESIGN.md §7).
package game

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/dist"
	"repro/internal/mathx"
)

// Errors returned by the engine.
var (
	// ErrBadGame reports an invalid game specification.
	ErrBadGame = errors.New("game: invalid specification")
	// ErrBadGrid reports an unusable state grid.
	ErrBadGrid = errors.New("game: invalid grid")
)

// Player identifies a decision maker.
type Player int

const (
	// PlayerA is the swap initiator (Alice).
	PlayerA Player = iota + 1
	// PlayerB is the responder (Bob).
	PlayerB
	// Auto marks a stage with no decision: the game always continues.
	Auto
)

// String names the player.
func (p Player) String() string {
	switch p {
	case PlayerA:
		return "A"
	case PlayerB:
		return "B"
	case Auto:
		return "auto"
	default:
		return fmt.Sprintf("Player(%d)", int(p))
	}
}

// Payoff maps the stage state to a terminal present value.
type Payoff func(x float64) float64

// Stage is one decision point.
type Stage struct {
	// Name labels the stage ("t2").
	Name string
	// Decider chooses cont/stop (or Auto for protocol-forced continuation).
	Decider Player
	// StopA and StopB are terminal payoffs if the decider stops. They are
	// required unless Decider == Auto.
	StopA, StopB Payoff
	// ContA and ContB are terminal payoffs when the game continues out of
	// the final stage; intermediate stages leave them nil.
	ContA, ContB Payoff
	// Horizon is the time to the next stage (ignored on the final stage).
	Horizon float64
	// DiscountA and DiscountB multiply next-stage values (e^{−r·Horizon});
	// ignored on the final stage.
	DiscountA, DiscountB float64
}

// Game is an ordered list of stages over a shared transition kernel.
type Game struct {
	// Stages in temporal order (earliest first).
	Stages []Stage
	// Kernel returns the law of the next state given the current state and
	// elapsed time.
	Kernel func(x, dt float64) dist.LogNormal
}

// Validate checks the specification.
func (g *Game) Validate() error {
	if len(g.Stages) == 0 {
		return fmt.Errorf("%w: no stages", ErrBadGame)
	}
	if g.Kernel == nil {
		return fmt.Errorf("%w: nil kernel", ErrBadGame)
	}
	for i, st := range g.Stages {
		last := i == len(g.Stages)-1
		if st.Decider != PlayerA && st.Decider != PlayerB && st.Decider != Auto {
			return fmt.Errorf("%w: stage %q decider %v", ErrBadGame, st.Name, st.Decider)
		}
		if st.Decider != Auto && (st.StopA == nil || st.StopB == nil) {
			return fmt.Errorf("%w: stage %q missing stop payoffs", ErrBadGame, st.Name)
		}
		if last {
			if st.ContA == nil || st.ContB == nil {
				return fmt.Errorf("%w: final stage %q missing cont payoffs", ErrBadGame, st.Name)
			}
		} else {
			if st.Horizon <= 0 {
				return fmt.Errorf("%w: stage %q horizon %g", ErrBadGame, st.Name, st.Horizon)
			}
			if st.DiscountA <= 0 || st.DiscountA > 1 || st.DiscountB <= 0 || st.DiscountB > 1 {
				return fmt.Errorf("%w: stage %q discounts (%g, %g)", ErrBadGame, st.Name, st.DiscountA, st.DiscountB)
			}
		}
	}
	return nil
}

// StageSolution holds the solved values and policy on the grid.
type StageSolution struct {
	// Name echoes the stage name.
	Name string
	// ValueA and ValueB are the stage value functions on the grid
	// (after the decider's optimal choice).
	ValueA, ValueB []float64
	// ContValueA and ContValueB are the values of choosing cont.
	ContValueA, ContValueB []float64
	// PolicyCont reports whether the decider continues at each grid point.
	PolicyCont []bool
}

// Solution is the solved game.
type Solution struct {
	// Grid is the state grid shared by all stages.
	Grid []float64
	// Stages are ordered like Game.Stages.
	Stages []StageSolution
}

// Solve runs backward induction on the supplied state grid. Value functions
// are represented as piecewise-linear interpolants on the grid, and the
// inter-stage expectations E[V(X')] are evaluated *exactly* for that
// representation through truncated lognormal segment moments — Gaussian
// quadrature would converge slowly across the jump discontinuities that
// optimal policies induce (B's t3 value jumps at A's reveal cut-off).
// The grid must be positive and strictly increasing.
func (g *Game) Solve(grid []float64) (*Solution, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	if len(grid) < 4 {
		return nil, fmt.Errorf("%w: need >= 4 points, got %d", ErrBadGrid, len(grid))
	}
	for i, x := range grid {
		if x <= 0 {
			return nil, fmt.Errorf("%w: grid[%d] = %g must be > 0", ErrBadGrid, i, x)
		}
		if i > 0 && x <= grid[i-1] {
			return nil, fmt.Errorf("%w: grid not strictly increasing at %d", ErrBadGrid, i)
		}
	}

	sol := &Solution{Grid: grid, Stages: make([]StageSolution, len(g.Stages))}
	n := len(grid)

	// nextA/nextB hold the value functions of the following stage.
	var nextA, nextB []float64
	for k := len(g.Stages) - 1; k >= 0; k-- {
		st := g.Stages[k]
		last := k == len(g.Stages)-1
		ss := StageSolution{
			Name:       st.Name,
			ValueA:     make([]float64, n),
			ValueB:     make([]float64, n),
			ContValueA: make([]float64, n),
			ContValueB: make([]float64, n),
			PolicyCont: make([]bool, n),
		}
		for i, x := range grid {
			var contA, contB float64
			if last {
				contA, contB = st.ContA(x), st.ContB(x)
			} else {
				law := g.Kernel(x, st.Horizon)
				eA, eB := expectPair(grid, nextA, nextB, law)
				contA = st.DiscountA * eA
				contB = st.DiscountB * eB
			}
			ss.ContValueA[i], ss.ContValueB[i] = contA, contB

			cont := true
			if st.Decider == PlayerA {
				cont = contA > st.StopA(x)
			} else if st.Decider == PlayerB {
				cont = contB > st.StopB(x)
			}
			ss.PolicyCont[i] = cont
			if cont {
				ss.ValueA[i], ss.ValueB[i] = contA, contB
			} else {
				ss.ValueA[i], ss.ValueB[i] = st.StopA(x), st.StopB(x)
			}
		}
		sol.Stages[k] = ss
		nextA, nextB = ss.ValueA, ss.ValueB
	}
	return sol, nil
}

// expectPair computes E[V_A(X)] and E[V_B(X)] for X ~ law, where V_A and
// V_B are the piecewise-linear interpolants of vA and vB on the grid with
// linear tail extrapolation. On each segment V(x) = a·x + b, so the segment
// contribution is a·(PE(hi) − PE(lo)) + b·(CDF(hi) − CDF(lo)) with PE the
// lower partial expectation — exact for the interpolant, jumps included.
func expectPair(grid, vA, vB []float64, law dist.LogNormal) (ea, eb float64) {
	n := len(grid)
	mean := law.Mean()
	prevCDF := law.CDF(grid[0])
	prevPE := law.PartialExpectationBelow(grid[0])

	// Lower tail: extend the first segment's line to (0, grid[0]].
	aA, bA := lineThrough(grid[0], vA[0], grid[1], vA[1])
	aB, bB := lineThrough(grid[0], vB[0], grid[1], vB[1])
	ea += aA*prevPE + bA*prevCDF
	eb += aB*prevPE + bB*prevCDF

	for j := 0; j+1 < n; j++ {
		cdf := law.CDF(grid[j+1])
		pe := law.PartialExpectationBelow(grid[j+1])
		dCDF, dPE := cdf-prevCDF, pe-prevPE
		aA, bA = lineThrough(grid[j], vA[j], grid[j+1], vA[j+1])
		aB, bB = lineThrough(grid[j], vB[j], grid[j+1], vB[j+1])
		ea += aA*dPE + bA*dCDF
		eb += aB*dPE + bB*dCDF
		prevCDF, prevPE = cdf, pe
	}

	// Upper tail: extend the last segment's line beyond grid[n-1].
	tailPE := mean - prevPE
	tailProb := 1 - prevCDF
	aA, bA = lineThrough(grid[n-2], vA[n-2], grid[n-1], vA[n-1])
	aB, bB = lineThrough(grid[n-2], vB[n-2], grid[n-1], vB[n-1])
	ea += aA*tailPE + bA*tailProb
	eb += aB*tailPE + bB*tailProb
	return ea, eb
}

// lineThrough returns slope and intercept of the line through two points.
func lineThrough(x0, v0, x1, v1 float64) (slope, intercept float64) {
	slope = (v1 - v0) / (x1 - x0)
	return slope, v0 - slope*x0
}

// interp linearly interpolates v (defined on the sorted grid) at y,
// extrapolating linearly from the boundary segments. Linear extrapolation
// matters because several payoffs grow linearly in the price.
func interp(grid, v []float64, y float64) float64 {
	n := len(grid)
	switch {
	case y <= grid[0]:
		return extrapolate(grid[0], v[0], grid[1], v[1], y)
	case y >= grid[n-1]:
		return extrapolate(grid[n-2], v[n-2], grid[n-1], v[n-1], y)
	}
	i := sort.SearchFloat64s(grid, y)
	// grid[i-1] < y <= grid[i]
	x0, x1 := grid[i-1], grid[i]
	w := (y - x0) / (x1 - x0)
	return v[i-1]*(1-w) + v[i]*w
}

func extrapolate(x0, v0, x1, v1, y float64) float64 {
	slope := (v1 - v0) / (x1 - x0)
	return v0 + slope*(y-x0)
}

// ContRegion extracts, for the stage with the given name, the set of grid
// points where the decider continues, expressed as an interval set over the
// state (using midpoints between grid neighbours as interval edges).
func (s *Solution) ContRegion(stage string) (mathx.IntervalSet, error) {
	for _, ss := range s.Stages {
		if ss.Name != stage {
			continue
		}
		var ivs []mathx.Interval
		var start float64
		open := false
		for i, cont := range ss.PolicyCont {
			switch {
			case cont && !open:
				start = edgeBelow(s.Grid, i)
				open = true
			case !cont && open:
				ivs = append(ivs, mathx.Interval{Lo: start, Hi: edgeBelow(s.Grid, i)})
				open = false
			}
		}
		if open {
			ivs = append(ivs, mathx.Interval{Lo: start, Hi: s.Grid[len(s.Grid)-1]})
		}
		return mathx.NewIntervalSet(ivs...), nil
	}
	return mathx.IntervalSet{}, fmt.Errorf("%w: unknown stage %q", ErrBadGame, stage)
}

// edgeBelow returns the midpoint between grid[i-1] and grid[i] (or grid[0]).
func edgeBelow(grid []float64, i int) float64 {
	if i == 0 {
		return grid[0]
	}
	return 0.5 * (grid[i-1] + grid[i])
}

// StageByName returns the solved stage.
func (s *Solution) StageByName(name string) (StageSolution, error) {
	for _, ss := range s.Stages {
		if ss.Name == name {
			return ss, nil
		}
	}
	return StageSolution{}, fmt.Errorf("%w: unknown stage %q", ErrBadGame, name)
}
