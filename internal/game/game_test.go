package game

import (
	"errors"
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/utility"
)

func kernel(x, dt float64) dist.LogNormal {
	return dist.LogNormal{Mu: math.Log(x) - 0.005*dt, Sigma: 0.1 * math.Sqrt(dt)}
}

func TestValidate(t *testing.T) {
	valid := func() *Game {
		return &Game{
			Stages: []Stage{
				{
					Name: "d", Decider: PlayerA,
					StopA: func(x float64) float64 { return 1 },
					StopB: func(x float64) float64 { return x },
					ContA: func(x float64) float64 { return x },
					ContB: func(x float64) float64 { return 1 },
				},
			},
			Kernel: kernel,
		}
	}
	if err := valid().Validate(); err != nil {
		t.Fatalf("valid game rejected: %v", err)
	}
	tests := []struct {
		name   string
		mutate func(*Game)
	}{
		{"noStages", func(g *Game) { g.Stages = nil }},
		{"nilKernel", func(g *Game) { g.Kernel = nil }},
		{"badDecider", func(g *Game) { g.Stages[0].Decider = Player(9) }},
		{"missingStop", func(g *Game) { g.Stages[0].StopA = nil }},
		{"missingCont", func(g *Game) { g.Stages[0].ContA = nil }},
		{"badHorizon", func(g *Game) {
			g.Stages = append([]Stage{{
				Name: "first", Decider: PlayerB,
				StopA: func(x float64) float64 { return 1 },
				StopB: func(x float64) float64 { return x },
				// Horizon zero.
				DiscountA: 0.9, DiscountB: 0.9,
			}}, g.Stages...)
		}},
		{"badDiscount", func(g *Game) {
			g.Stages = append([]Stage{{
				Name: "first", Decider: PlayerB,
				StopA:   func(x float64) float64 { return 1 },
				StopB:   func(x float64) float64 { return x },
				Horizon: 1, DiscountA: 1.5, DiscountB: 0.9,
			}}, g.Stages...)
		}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			g := valid()
			tt.mutate(g)
			if err := g.Validate(); !errors.Is(err, ErrBadGame) {
				t.Errorf("err = %v, want ErrBadGame", err)
			}
		})
	}
}

func TestSolveGridValidation(t *testing.T) {
	g, err := SwapGame(utility.Default(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.Solve([]float64{1, 2}); !errors.Is(err, ErrBadGrid) {
		t.Errorf("short grid err = %v", err)
	}
	if _, err := g.Solve([]float64{-1, 1, 2, 3}); !errors.Is(err, ErrBadGrid) {
		t.Errorf("negative grid err = %v", err)
	}
	if _, err := g.Solve([]float64{1, 1, 2, 3}); !errors.Is(err, ErrBadGrid) {
		t.Errorf("non-increasing grid err = %v", err)
	}
}

func TestPlayerString(t *testing.T) {
	if PlayerA.String() != "A" || PlayerB.String() != "B" || Auto.String() != "auto" ||
		Player(7).String() != "Player(7)" {
		t.Error("Player.String mismatch")
	}
}

func TestInterp(t *testing.T) {
	grid := []float64{1, 2, 4}
	v := []float64{10, 20, 40}
	tests := []struct {
		y, want float64
	}{
		{1, 10}, {2, 20}, {4, 40}, {1.5, 15}, {3, 30},
		{0.5, 5}, // linear extrapolation below
		{5, 50},  // linear extrapolation above
	}
	for _, tt := range tests {
		if got := interp(grid, v, tt.y); math.Abs(got-tt.want) > 1e-12 {
			t.Errorf("interp(%v) = %v, want %v", tt.y, got, tt.want)
		}
	}
}

// TestGridSolutionMatchesClosedForm is the repository's key cross-check:
// the generic grid DP and internal/core share only the paper's equations,
// so agreement validates both backward inductions end to end.
func TestGridSolutionMatchesClosedForm(t *testing.T) {
	params := utility.Default()
	const pstar = 2.0
	m, err := core.New(params)
	if err != nil {
		t.Fatal(err)
	}
	g, err := SwapGame(params, pstar)
	if err != nil {
		t.Fatal(err)
	}
	grid := DefaultGrid(params, 1200, 10)
	sol, err := g.Solve(grid)
	if err != nil {
		t.Fatal(err)
	}

	// 1. The t3 policy threshold matches P̄_t3 (Eq. 18).
	t3, err := sol.StageByName("t3")
	if err != nil {
		t.Fatal(err)
	}
	cut, err := m.CutoffT3(pstar)
	if err != nil {
		t.Fatal(err)
	}
	var gridCut float64
	for i, cont := range t3.PolicyCont {
		if cont {
			gridCut = grid[i]
			break
		}
	}
	if math.Abs(gridCut-cut)/cut > 0.02 {
		t.Errorf("grid t3 threshold %.4f vs closed form %.4f", gridCut, cut)
	}

	// 2. The t2 continuation region matches (P̲_t2, P̄_t2) (Eq. 24).
	region, err := sol.ContRegion("t2")
	if err != nil {
		t.Fatal(err)
	}
	iv, ok, err := m.ContRangeT2(pstar)
	if err != nil || !ok {
		t.Fatalf("closed-form range: %v ok=%v", err, ok)
	}
	bounds := region.Bounds()
	if math.Abs(bounds.Lo-iv.Lo)/iv.Lo > 0.02 {
		t.Errorf("grid P̲_t2 = %.4f vs closed form %.4f", bounds.Lo, iv.Lo)
	}
	if math.Abs(bounds.Hi-iv.Hi)/iv.Hi > 0.02 {
		t.Errorf("grid P̄_t2 = %.4f vs closed form %.4f", bounds.Hi, iv.Hi)
	}

	// 3. Stage-2 cont values match U^{A,B}_t2(cont) on interior points.
	t2, err := sol.StageByName("t2")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < len(grid); i += 97 {
		x := grid[i]
		if x < 0.5 || x > 4 {
			continue
		}
		wantA, err := m.AliceUtilityT2(core.Cont, x, pstar)
		if err != nil {
			t.Fatal(err)
		}
		wantB, err := m.BobUtilityT2(core.Cont, x, pstar)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(t2.ContValueA[i]-wantA)/wantA > 0.005 {
			t.Errorf("x=%.3f: grid U^A_t2 = %.5f vs closed form %.5f", x, t2.ContValueA[i], wantA)
		}
		if math.Abs(t2.ContValueB[i]-wantB)/wantB > 0.005 {
			t.Errorf("x=%.3f: grid U^B_t2 = %.5f vs closed form %.5f", x, t2.ContValueB[i], wantB)
		}
	}

	// 4. Stage-1 cont value at P0 matches U^A_t1(cont) and the initiation
	// policy agrees.
	t1, err := sol.StageByName("t1")
	if err != nil {
		t.Fatal(err)
	}
	wantA1, err := m.AliceUtilityT1(core.Cont, pstar)
	if err != nil {
		t.Fatal(err)
	}
	gotA1 := interp(grid, t1.ContValueA, params.P0)
	if math.Abs(gotA1-wantA1)/wantA1 > 0.005 {
		t.Errorf("grid U^A_t1(cont) = %.5f vs closed form %.5f", gotA1, wantA1)
	}
	strat, err := m.Strategy(pstar)
	if err != nil {
		t.Fatal(err)
	}
	if gridInit := gotA1 > pstar; gridInit != strat.AliceInitiates {
		t.Errorf("grid initiation %v vs closed form %v", gridInit, strat.AliceInitiates)
	}
}

func TestHonestResponderRaisesContinuation(t *testing.T) {
	// With B forced honest, the t2 stage always continues, so the game's
	// t1 value for A can only improve.
	params := utility.Default()
	const pstar = 2.0
	gFull, err := SwapGame(params, pstar)
	if err != nil {
		t.Fatal(err)
	}
	gBase, err := HonestResponderGame(params, pstar)
	if err != nil {
		t.Fatal(err)
	}
	grid := DefaultGrid(params, 600, 8)
	solFull, err := gFull.Solve(grid)
	if err != nil {
		t.Fatal(err)
	}
	solBase, err := gBase.Solve(grid)
	if err != nil {
		t.Fatal(err)
	}
	t2, err := solBase.StageByName("t2")
	if err != nil {
		t.Fatal(err)
	}
	for i, cont := range t2.PolicyCont {
		if !cont {
			t.Fatalf("auto stage must always continue (grid point %d)", i)
		}
	}
	full1, err := solFull.StageByName("t1")
	if err != nil {
		t.Fatal(err)
	}
	base1, err := solBase.StageByName("t1")
	if err != nil {
		t.Fatal(err)
	}
	vFull := interp(grid, full1.ContValueA, params.P0)
	vBase := interp(grid, base1.ContValueA, params.P0)
	if vBase < vFull-1e-9 {
		t.Errorf("honest responder lowers A's value: %v < %v", vBase, vFull)
	}
}

func TestContRegionUnknownStage(t *testing.T) {
	g, err := SwapGame(utility.Default(), 2)
	if err != nil {
		t.Fatal(err)
	}
	sol, err := g.Solve(DefaultGrid(utility.Default(), 100, 6))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sol.ContRegion("nope"); !errors.Is(err, ErrBadGame) {
		t.Errorf("unknown stage err = %v", err)
	}
	if _, err := sol.StageByName("nope"); !errors.Is(err, ErrBadGame) {
		t.Errorf("unknown stage err = %v", err)
	}
}

func TestSwapGameValidation(t *testing.T) {
	if _, err := SwapGame(utility.Default(), -1); !errors.Is(err, ErrBadGame) {
		t.Errorf("bad pstar err = %v", err)
	}
	bad := utility.Default()
	bad.P0 = 0
	if _, err := SwapGame(bad, 2); err == nil {
		t.Error("bad params should fail")
	}
}

func TestDefaultGrid(t *testing.T) {
	grid := DefaultGrid(utility.Default(), 100, 8)
	if len(grid) != 100 {
		t.Fatalf("len = %d", len(grid))
	}
	for i := 1; i < len(grid); i++ {
		if grid[i] <= grid[i-1] {
			t.Fatalf("grid not increasing at %d", i)
		}
	}
	if grid[0] >= 2 || grid[len(grid)-1] <= 2 {
		t.Errorf("grid [%v, %v] should straddle P0 = 2", grid[0], grid[len(grid)-1])
	}
}

func TestGridPolicySuccessRateMatchesClosedForm(t *testing.T) {
	// Third way to compute SR: take the DP's *policies* (t2 continuation
	// region and t3 threshold from the grid) and integrate the success
	// probability over the transition law. Must agree with Eq. 31.
	params := utility.Default()
	const pstar = 2.0
	m, err := core.New(params)
	if err != nil {
		t.Fatal(err)
	}
	want, err := m.SuccessRate(pstar)
	if err != nil {
		t.Fatal(err)
	}
	g, err := SwapGame(params, pstar)
	if err != nil {
		t.Fatal(err)
	}
	grid := DefaultGrid(params, 1200, 10)
	sol, err := g.Solve(grid)
	if err != nil {
		t.Fatal(err)
	}
	region, err := sol.ContRegion("t2")
	if err != nil {
		t.Fatal(err)
	}
	t3, err := sol.StageByName("t3")
	if err != nil {
		t.Fatal(err)
	}
	var cutoff float64
	for i, cont := range t3.PolicyCont {
		if cont {
			cutoff = grid[i]
			break
		}
	}
	// Integrate P(t2 in region) × P(t3 > cutoff | t2) with the closed-form
	// lognormal transitions, trapezoid over the region.
	trans1, err := params.Price.Transition(params.P0, params.Chains.TauA)
	if err != nil {
		t.Fatal(err)
	}
	var sr float64
	for _, iv := range region.Intervals() {
		const steps = 400
		h := (iv.Hi - iv.Lo) / steps
		for j := 0; j <= steps; j++ {
			y := iv.Lo + float64(j)*h
			trans2, err := params.Price.Transition(y, params.Chains.TauB)
			if err != nil {
				t.Fatal(err)
			}
			w := h
			if j == 0 || j == steps {
				w = h / 2
			}
			sr += w * trans1.PDF(y) * trans2.TailProb(cutoff)
		}
	}
	if math.Abs(sr-want) > 0.01 {
		t.Errorf("DP-policy SR %.4f vs closed form %.4f", sr, want)
	}
}
