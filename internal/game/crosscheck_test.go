package game

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/scenario"
	"repro/internal/solvecache"
	"repro/internal/utility"
)

// crossCheck solves the same basic game with the closed-form solver
// (internal/core) and the grid DP, and requires the thresholds, B's t2
// continuation region and the success rate to agree. The two solvers share
// only the paper's equations, so agreement off the Table III point validates
// both backward inductions across the whole parameter region the scenario
// registry and the random draws span.
func crossCheck(t *testing.T, p utility.Params, pstar float64) {
	t.Helper()
	// Route through the shared solve cache, as every production consumer
	// does: preset cells solved here are shared with the scenario batch.
	m, err := solvecache.SharedModel(p)
	if err != nil {
		t.Fatalf("solvecache.SharedModel: %v", err)
	}
	g, err := SwapGame(p, pstar)
	if err != nil {
		t.Fatalf("SwapGame: %v", err)
	}
	grid := DefaultGrid(p, 900, 10)
	sol, err := g.Solve(grid)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	// Grid resolution: log-spaced points are relTol apart; thresholds can
	// only be located to that resolution.
	relTol := 3 * math.Log(grid[len(grid)-1]/grid[0]) / float64(len(grid)-1)

	// 1. A's t3 reveal cut-off (Eq. 18) vs the first grid point whose t3
	// policy is cont.
	cut, err := m.CutoffT3(pstar)
	if err != nil {
		t.Fatalf("CutoffT3: %v", err)
	}
	t3, err := sol.StageByName("t3")
	if err != nil {
		t.Fatal(err)
	}
	gridCut := math.NaN()
	for i, cont := range t3.PolicyCont {
		if cont {
			gridCut = grid[i]
			break
		}
	}
	if cut > grid[0]*(1+relTol) && cut < grid[len(grid)-1]*(1-relTol) {
		if math.IsNaN(gridCut) || math.Abs(gridCut-cut)/cut > relTol {
			t.Errorf("t3 cut-off: grid %.5f vs closed form %.5f (tol %.2f%%)", gridCut, cut, 100*relTol)
		}
	}

	// 2. B's t2 continuation region (Eq. 24) vs the grid policy region.
	iv, ok, err := m.ContRangeT2(pstar)
	if err != nil {
		t.Fatalf("ContRangeT2: %v", err)
	}
	region, err := sol.ContRegion("t2")
	if err != nil {
		t.Fatal(err)
	}
	tr, err := p.Price.Transition(p.P0, p.Chains.TauA)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		// Closed form says B never locks: the grid region must carry almost
		// no probability mass at t2.
		var mass float64
		for _, riv := range region.Intervals() {
			mass += tr.CDF(riv.Hi) - tr.CDF(riv.Lo)
		}
		if mass > 0.02 {
			t.Errorf("closed form says empty t2 region, grid region %v carries mass %.4f", region, mass)
		}
		return
	}
	if region.Empty() {
		t.Fatalf("closed-form t2 region %v, grid region empty", iv)
	}
	bounds := region.Bounds()
	if math.Abs(bounds.Lo-iv.Lo)/iv.Lo > relTol {
		t.Errorf("t2 region lo: grid %.5f vs closed form %.5f", bounds.Lo, iv.Lo)
	}
	if math.Abs(bounds.Hi-iv.Hi)/iv.Hi > relTol {
		t.Errorf("t2 region hi: grid %.5f vs closed form %.5f", bounds.Hi, iv.Hi)
	}

	// 3. SR(P*) (Eq. 31) vs an independent trapezoidal integral of the grid
	// policies: P(B conts at t2, A conts at t3 | P0).
	sr, err := m.SuccessRate(pstar)
	if err != nil {
		t.Fatalf("SuccessRate: %v", err)
	}
	t2, err := sol.StageByName("t2")
	if err != nil {
		t.Fatal(err)
	}
	var gridSR float64
	for i, cont := range t2.PolicyCont {
		if !cont {
			continue
		}
		var dx float64
		switch {
		case i == 0:
			dx = (grid[1] - grid[0]) / 2
		case i == len(grid)-1:
			dx = (grid[i] - grid[i-1]) / 2
		default:
			dx = (grid[i+1] - grid[i-1]) / 2
		}
		law, err := p.Price.Transition(grid[i], p.Chains.TauB)
		if err != nil {
			t.Fatal(err)
		}
		gridSR += tr.PDF(grid[i]) * law.TailProb(cut) * dx
	}
	if math.Abs(gridSR-sr) > 0.02 {
		t.Errorf("SR: grid %.4f vs closed form %.4f", gridSR, sr)
	}

	// 4. A's t1 initiation value at P0 (Eq. 25) within quadrature error.
	t1, err := sol.StageByName("t1")
	if err != nil {
		t.Fatal(err)
	}
	wantA1, err := m.AliceUtilityT1(core.Cont, pstar)
	if err != nil {
		t.Fatal(err)
	}
	gotA1 := interp(grid, t1.ContValueA, p.P0)
	if math.Abs(gotA1-wantA1)/wantA1 > 0.01 {
		t.Errorf("U^A_t1(cont): grid %.5f vs closed form %.5f", gotA1, wantA1)
	}
}

// TestCrossSolverAgreementAcrossPresets runs the cross-check at every
// scenario preset — the paper's Table III point plus nine regimes off it.
func TestCrossSolverAgreementAcrossPresets(t *testing.T) {
	for _, sc := range scenario.Registry() {
		t.Run(sc.Name, func(t *testing.T) {
			t.Parallel()
			crossCheck(t, sc.Params, sc.PStar)
		})
	}
}

// TestCrossSolverAgreementRandomized repeats the cross-check on seeded
// random perturbations of Table III, quick.Check style: the draws cover
// asymmetric preferences, drifts of either sign, and off-fair rates.
func TestCrossSolverAgreementRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	uniform := func(lo, hi float64) float64 { return lo + (hi-lo)*rng.Float64() }
	for i := 0; i < 8; i++ {
		p := utility.Default()
		p.Alice.Alpha = uniform(0.1, 0.5)
		p.Bob.Alpha = uniform(0.1, 0.5)
		p.Alice.R = uniform(0.004, 0.025)
		p.Bob.R = uniform(0.004, 0.025)
		p.Chains.TauA = uniform(2, 4)
		p.Chains.TauB = uniform(2.5, 5)
		p.Chains.EpsB = 0.4 * p.Chains.TauB
		p.Price.Mu = uniform(-0.003, 0.004)
		p.Price.Sigma = uniform(0.07, 0.16)
		pstar := uniform(1.7, 2.4)
		name := fmt.Sprintf("draw%d-sigma%.3f-pstar%.2f", i, p.Price.Sigma, pstar)
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			crossCheck(t, p, pstar)
		})
	}
}
