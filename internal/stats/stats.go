// Package stats provides the small statistical toolkit used to report
// Monte Carlo results: batch and streaming (Welford) moment summaries,
// binomial proportion confidence intervals (Wilson score), and
// fixed-width histograms.
package stats

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// ErrBadInput reports invalid inputs to a statistics routine.
var ErrBadInput = errors.New("stats: invalid input")

// Summary holds moment statistics of a sample.
type Summary struct {
	// N is the sample size.
	N int
	// Mean is the sample mean.
	Mean float64
	// Var is the unbiased sample variance (zero for N < 2).
	Var float64
	// SD is the sample standard deviation.
	SD float64
	// StdErr is the standard error of the mean.
	StdErr float64
	// Min and Max are the sample extremes.
	Min, Max float64
}

// Summarize computes moment statistics of xs.
func Summarize(xs []float64) (Summary, error) {
	if len(xs) == 0 {
		return Summary{}, fmt.Errorf("%w: empty sample", ErrBadInput)
	}
	s := Summary{N: len(xs), Min: xs[0], Max: xs[0]}
	var sum float64
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(s.N)
	if s.N > 1 {
		var ss float64
		for _, x := range xs {
			d := x - s.Mean
			ss += d * d
		}
		s.Var = ss / float64(s.N-1)
		s.SD = math.Sqrt(s.Var)
		s.StdErr = s.SD / math.Sqrt(float64(s.N))
	}
	return s, nil
}

// Welford is an online mean/variance accumulator (Welford's algorithm),
// mergeable across shards with the standard parallel combine — the
// streaming counterpart of Summarize, used by the Monte Carlo engine
// (internal/mc) to fold per-chunk moments in chunk order.
type Welford struct {
	// N is the number of observations.
	N int
	// Mean is the running mean.
	Mean float64
	// M2 is the running sum of squared deviations from the mean.
	M2 float64
}

// Add folds one observation into the accumulator.
func (w *Welford) Add(x float64) {
	w.N++
	delta := x - w.Mean
	w.Mean += delta / float64(w.N)
	w.M2 += delta * (x - w.Mean)
}

// Merge folds another accumulator in (Chan et al. parallel combine).
// Merging is associative up to floating-point rounding; callers that need
// a reproducible float result must fix the merge order.
func (w *Welford) Merge(o Welford) {
	switch {
	case o.N == 0:
		return
	case w.N == 0:
		*w = o
		return
	}
	n := w.N + o.N
	delta := o.Mean - w.Mean
	w.Mean += delta * float64(o.N) / float64(n)
	w.M2 += o.M2 + delta*delta*float64(w.N)*float64(o.N)/float64(n)
	w.N = n
}

// Var returns the unbiased sample variance (zero for N < 2).
func (w Welford) Var() float64 {
	if w.N < 2 {
		return 0
	}
	return w.M2 / float64(w.N-1)
}

// SD returns the sample standard deviation.
func (w Welford) SD() float64 { return math.Sqrt(w.Var()) }

// Proportion is a binomial success-rate estimate with a Wilson score
// confidence interval.
type Proportion struct {
	// Successes and N are the raw counts.
	Successes, N int
	// P is the point estimate Successes/N.
	P float64
	// Lo and Hi bound the 95% Wilson score interval.
	Lo, Hi float64
}

// NewProportion computes the Wilson 95% interval for successes out of n.
func NewProportion(successes, n int) (Proportion, error) {
	if n <= 0 || successes < 0 || successes > n {
		return Proportion{}, fmt.Errorf("%w: %d successes out of %d", ErrBadInput, successes, n)
	}
	const z = 1.959963984540054 // 97.5th percentile of the standard normal
	p := float64(successes) / float64(n)
	nf := float64(n)
	denom := 1 + z*z/nf
	centre := (p + z*z/(2*nf)) / denom
	half := z * math.Sqrt(p*(1-p)/nf+z*z/(4*nf*nf)) / denom
	return Proportion{
		Successes: successes,
		N:         n,
		P:         p,
		Lo:        math.Max(0, centre-half),
		Hi:        math.Min(1, centre+half),
	}, nil
}

// Contains reports whether the interval covers the value.
func (p Proportion) Contains(v float64) bool { return v >= p.Lo && v <= p.Hi }

// String formats the estimate as "p [lo, hi] (k/n)".
func (p Proportion) String() string {
	return fmt.Sprintf("%.4f [%.4f, %.4f] (%d/%d)", p.P, p.Lo, p.Hi, p.Successes, p.N)
}

// Histogram is a fixed-width histogram over [Lo, Hi); samples outside the
// range accrue to the boundary bins.
type Histogram struct {
	// Lo and Hi delimit the binned range.
	Lo, Hi float64
	// Counts holds the per-bin tallies.
	Counts []int
	// Total is the number of observations added.
	Total int
}

// NewHistogram creates a histogram with bins equal-width bins on [lo, hi).
func NewHistogram(lo, hi float64, bins int) (*Histogram, error) {
	if bins <= 0 || hi <= lo {
		return nil, fmt.Errorf("%w: histogram(lo=%g, hi=%g, bins=%d)", ErrBadInput, lo, hi, bins)
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]int, bins)}, nil
}

// Add records one observation.
func (h *Histogram) Add(x float64) {
	i := int(float64(len(h.Counts)) * (x - h.Lo) / (h.Hi - h.Lo))
	if i < 0 {
		i = 0
	}
	if i >= len(h.Counts) {
		i = len(h.Counts) - 1
	}
	h.Counts[i]++
	h.Total++
}

// Quantile returns the q-quantile (0 <= q <= 1) approximated from bin
// midpoints, using the same nearest-rank estimator as Quantiles: the value
// is the midpoint of the bin holding the ceil(q·Total)-th observation
// (clamped to the first). A fractional target with a float cumulative sum
// would be vacuously satisfied by an empty leading bin at q=0.
func (h *Histogram) Quantile(q float64) (float64, error) {
	if q < 0 || q > 1 || h.Total == 0 {
		return 0, fmt.Errorf("%w: quantile(%g) of %d samples", ErrBadInput, q, h.Total)
	}
	target := int(math.Ceil(q * float64(h.Total)))
	if target < 1 {
		target = 1
	}
	cum := 0
	width := (h.Hi - h.Lo) / float64(len(h.Counts))
	for i, c := range h.Counts {
		cum += c
		if cum >= target {
			return h.Lo + (float64(i)+0.5)*width, nil
		}
	}
	return h.Hi, nil
}

// Quantiles returns the q-quantiles of a raw sample (type 1 estimator,
// sorting a copy of xs).
func Quantiles(xs []float64, qs ...float64) ([]float64, error) {
	if len(xs) == 0 {
		return nil, fmt.Errorf("%w: empty sample", ErrBadInput)
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	out := make([]float64, len(qs))
	for i, q := range qs {
		if q < 0 || q > 1 {
			return nil, fmt.Errorf("%w: quantile %g", ErrBadInput, q)
		}
		idx := int(math.Ceil(q*float64(len(sorted)))) - 1
		if idx < 0 {
			idx = 0
		}
		out[i] = sorted[idx]
	}
	return out, nil
}
