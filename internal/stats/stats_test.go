package stats

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestSummarize(t *testing.T) {
	s, err := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if err != nil {
		t.Fatalf("Summarize: %v", err)
	}
	if s.N != 8 {
		t.Errorf("N = %d, want 8", s.N)
	}
	if !almostEqual(s.Mean, 5, 1e-12) {
		t.Errorf("Mean = %v, want 5", s.Mean)
	}
	if !almostEqual(s.Var, 32.0/7, 1e-12) {
		t.Errorf("Var = %v, want %v", s.Var, 32.0/7)
	}
	if s.Min != 2 || s.Max != 9 {
		t.Errorf("Min/Max = %v/%v, want 2/9", s.Min, s.Max)
	}
	if !almostEqual(s.StdErr, s.SD/math.Sqrt(8), 1e-12) {
		t.Errorf("StdErr = %v", s.StdErr)
	}
}

func TestSummarizeSingleAndEmpty(t *testing.T) {
	s, err := Summarize([]float64{3})
	if err != nil {
		t.Fatalf("Summarize: %v", err)
	}
	if s.Mean != 3 || s.Var != 0 || s.SD != 0 {
		t.Errorf("single-sample summary = %+v", s)
	}
	if _, err := Summarize(nil); !errors.Is(err, ErrBadInput) {
		t.Errorf("empty err = %v, want ErrBadInput", err)
	}
}

func TestNewProportion(t *testing.T) {
	p, err := NewProportion(714, 1000)
	if err != nil {
		t.Fatalf("NewProportion: %v", err)
	}
	if !almostEqual(p.P, 0.714, 1e-12) {
		t.Errorf("P = %v", p.P)
	}
	if !(p.Lo < 0.714 && 0.714 < p.Hi) {
		t.Errorf("interval [%v, %v] does not contain the point estimate", p.Lo, p.Hi)
	}
	// Wilson 95% width for n=1000, p≈0.71 is about ±0.028.
	if p.Hi-p.Lo < 0.04 || p.Hi-p.Lo > 0.07 {
		t.Errorf("interval width = %v, want ≈ 0.056", p.Hi-p.Lo)
	}
	if !p.Contains(0.72) || p.Contains(0.9) {
		t.Error("Contains misbehaves")
	}
	if p.String() == "" {
		t.Error("empty String()")
	}
}

func TestNewProportionEdges(t *testing.T) {
	p0, err := NewProportion(0, 50)
	if err != nil {
		t.Fatal(err)
	}
	if p0.Lo != 0 || p0.P != 0 {
		t.Errorf("zero-successes: %+v", p0)
	}
	p1, err := NewProportion(50, 50)
	if err != nil {
		t.Fatal(err)
	}
	if p1.Hi != 1 || p1.P != 1 {
		t.Errorf("all-successes: %+v", p1)
	}
	for _, bad := range [][2]int{{-1, 10}, {11, 10}, {0, 0}} {
		if _, err := NewProportion(bad[0], bad[1]); !errors.Is(err, ErrBadInput) {
			t.Errorf("NewProportion(%v) err = %v", bad, err)
		}
	}
}

func TestProportionCoverageProperty(t *testing.T) {
	// Wilson intervals for the same p narrow as n grows.
	err := quick.Check(func(seed uint8) bool {
		n1 := 100 + int(seed)
		n2 := n1 * 10
		k1 := n1 * 7 / 10
		k2 := n2 * 7 / 10
		p1, err1 := NewProportion(k1, n1)
		p2, err2 := NewProportion(k2, n2)
		return err1 == nil && err2 == nil && (p2.Hi-p2.Lo) < (p1.Hi-p1.Lo)
	}, &quick.Config{MaxCount: 50})
	if err != nil {
		t.Error(err)
	}
}

func TestHistogram(t *testing.T) {
	h, err := NewHistogram(0, 10, 10)
	if err != nil {
		t.Fatalf("NewHistogram: %v", err)
	}
	for _, x := range []float64{0.5, 1.5, 1.6, 9.9, -5, 15} {
		h.Add(x)
	}
	if h.Total != 6 {
		t.Errorf("Total = %d, want 6", h.Total)
	}
	if h.Counts[0] != 2 { // 0.5 and clamped -5
		t.Errorf("Counts[0] = %d, want 2", h.Counts[0])
	}
	if h.Counts[1] != 2 {
		t.Errorf("Counts[1] = %d, want 2", h.Counts[1])
	}
	if h.Counts[9] != 2 { // 9.9 and clamped 15
		t.Errorf("Counts[9] = %d, want 2", h.Counts[9])
	}
	q, err := h.Quantile(0.5)
	if err != nil {
		t.Fatal(err)
	}
	if q < 0 || q > 10 {
		t.Errorf("Quantile(0.5) = %v", q)
	}
	if _, err := h.Quantile(-0.1); !errors.Is(err, ErrBadInput) {
		t.Errorf("bad quantile err = %v", err)
	}
	if _, err := NewHistogram(1, 0, 5); !errors.Is(err, ErrBadInput) {
		t.Errorf("inverted range err = %v", err)
	}
	if _, err := NewHistogram(0, 1, 0); !errors.Is(err, ErrBadInput) {
		t.Errorf("zero bins err = %v", err)
	}
}

func TestHistogramQuantileNearestRank(t *testing.T) {
	// A single sample in the last bin: every quantile, including q=0, must
	// land on that bin's midpoint. The former float-cumulative implementation
	// satisfied cum >= target vacuously at q=0 and returned the midpoint of
	// the empty leading bin (0.5).
	h, err := NewHistogram(0, 10, 10)
	if err != nil {
		t.Fatalf("NewHistogram: %v", err)
	}
	h.Add(9.2)
	for _, q := range []float64{0, 0.25, 0.5, 1} {
		got, err := h.Quantile(q)
		if err != nil {
			t.Fatalf("Quantile(%g): %v", q, err)
		}
		if got != 9.5 {
			t.Errorf("Quantile(%g) = %v, want 9.5 (midpoint of the only occupied bin)", q, got)
		}
	}

	// Occupied first and last bins with empty interior: q=0 picks the first
	// sample's bin, q=1 the last's, matching the nearest-rank Quantiles
	// estimator on raw samples.
	h2, err := NewHistogram(0, 10, 10)
	if err != nil {
		t.Fatalf("NewHistogram: %v", err)
	}
	for _, x := range []float64{0.3, 0.4, 9.8} {
		h2.Add(x)
	}
	cases := []struct{ q, want float64 }{
		{0, 0.5},    // 1st of 3 samples → bin [0,1)
		{0.5, 0.5},  // ceil(1.5)=2nd sample → still bin [0,1)
		{0.67, 9.5}, // ceil(2.01)=3rd sample → bin [9,10)
		{1, 9.5},    // last sample's bin, not h.Hi
	}
	for _, c := range cases {
		got, err := h2.Quantile(c.q)
		if err != nil {
			t.Fatalf("Quantile(%g): %v", c.q, err)
		}
		if got != c.want {
			t.Errorf("Quantile(%g) = %v, want %v", c.q, got, c.want)
		}
	}

	// Empty histogram still errors.
	h3, err := NewHistogram(0, 1, 4)
	if err != nil {
		t.Fatalf("NewHistogram: %v", err)
	}
	if _, err := h3.Quantile(0.5); !errors.Is(err, ErrBadInput) {
		t.Errorf("empty histogram err = %v", err)
	}
}

func TestQuantiles(t *testing.T) {
	xs := []float64{5, 1, 4, 2, 3}
	qs, err := Quantiles(xs, 0, 0.5, 1)
	if err != nil {
		t.Fatalf("Quantiles: %v", err)
	}
	if qs[0] != 1 || qs[1] != 3 || qs[2] != 5 {
		t.Errorf("Quantiles = %v, want [1 3 5]", qs)
	}
	// Input must not be mutated.
	if xs[0] != 5 {
		t.Error("Quantiles sorted the caller's slice")
	}
	if _, err := Quantiles(nil, 0.5); !errors.Is(err, ErrBadInput) {
		t.Errorf("empty err = %v", err)
	}
	if _, err := Quantiles(xs, 1.5); !errors.Is(err, ErrBadInput) {
		t.Errorf("out-of-range q err = %v", err)
	}
}

func TestWelfordMatchesBatchMoments(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	xs := make([]float64, 1000)
	var w Welford
	for i := range xs {
		xs[i] = rng.NormFloat64()*3 + 5
		w.Add(xs[i])
	}
	want, err := Summarize(xs)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(w.Mean-want.Mean) > 1e-12 {
		t.Errorf("mean %v, want %v", w.Mean, want.Mean)
	}
	if w.N != want.N {
		t.Errorf("n %d, want %d", w.N, want.N)
	}
	if math.Abs(w.Var()-want.Var) > 1e-9 {
		t.Errorf("var %v, want %v", w.Var(), want.Var)
	}
	if math.Abs(w.SD()-want.SD) > 1e-9 {
		t.Errorf("sd %v, want %v", w.SD(), want.SD)
	}
}

func TestWelfordMergeMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	var whole Welford
	var parts []Welford
	part := Welford{}
	for i := 0; i < 500; i++ {
		x := rng.ExpFloat64()
		whole.Add(x)
		part.Add(x)
		if (i+1)%37 == 0 {
			parts = append(parts, part)
			part = Welford{}
		}
	}
	parts = append(parts, part)
	var merged Welford
	for _, p := range parts {
		merged.Merge(p)
	}
	if merged.N != whole.N {
		t.Fatalf("merged N %d, want %d", merged.N, whole.N)
	}
	if math.Abs(merged.Mean-whole.Mean) > 1e-12 || math.Abs(merged.Var()-whole.Var()) > 1e-9 {
		t.Errorf("merged (%v, %v), sequential (%v, %v)", merged.Mean, merged.Var(), whole.Mean, whole.Var())
	}
	// Merging into/from empty accumulators is the identity.
	var empty Welford
	before := merged
	merged.Merge(empty)
	if merged != before {
		t.Error("merging an empty accumulator changed the state")
	}
	empty.Merge(before)
	if empty != before {
		t.Error("merging into an empty accumulator did not copy")
	}
	if (Welford{N: 1, Mean: 3}).Var() != 0 {
		t.Error("variance of a single observation should be 0")
	}
}
