package variant

import (
	"testing"

	"repro/internal/scenario"
)

// crosscheckRuns sizes the per-preset Monte Carlo cross-checks: large
// enough for a ±2% Wilson interval, small enough to keep the preset loop
// interactive.
const crosscheckRuns = 4000

// TestPacketizedReducesToBasicAcrossPresets cross-checks the packetized
// engine against the closed-form solver on every preset through the n=1
// reduction: one forced-initiation packet is exactly the basic game
// conditioned on initiation, so the sampled completion probability must
// cover SR(P*) of Eq. 31. The engines share only the GBM law and the
// threshold strategies, so agreement validates the packet loop's
// sampling, not just its bookkeeping.
func TestPacketizedReducesToBasicAcrossPresets(t *testing.T) {
	g, err := Lookup("packetized")
	if err != nil {
		t.Fatal(err)
	}
	v := g.(MCValidator)
	for _, sc := range scenario.Registry() {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			t.Parallel()
			ctx := &Context{Opts: RunOpts{Runs: crosscheckRuns}}
			check, err := v.MCValidate(ctx, sc, Report{})
			if err != nil {
				t.Fatal(err)
			}
			if check == nil {
				t.Fatal("packetized validation should always apply")
			}
			if !check.Agrees {
				t.Errorf("analytic SR %.4f outside sampled interval [%.4f, %.4f]",
					check.Analytic, check.SR.Lo, check.SR.Hi)
			}
		})
	}
}

// TestPacketizedFailureSemanticsAcrossPresets pins the structural
// relations of the packetized report on every preset: per-round exposure
// is the notional over n, the completed fraction is a probability, and
// continuing after a failure can only complete more of the notional than
// aborting (up to Monte Carlo noise).
func TestPacketizedFailureSemanticsAcrossPresets(t *testing.T) {
	g, err := Lookup("packetized")
	if err != nil {
		t.Fatal(err)
	}
	for _, sc := range scenario.Registry() {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			t.Parallel()
			sc.Packets = 4
			r, err := g.Solve(&Context{Opts: RunOpts{Runs: crosscheckRuns}}, sc)
			if err != nil {
				t.Fatal(err)
			}
			exposure, _ := r.Value("exposurePerRound")
			if want := sc.PStar / 4; exposure != want {
				t.Errorf("exposure per round = %v, want %v", exposure, want)
			}
			abortFrac := r.SR
			contFrac, _ := r.Value("continueFraction")
			if abortFrac < 0 || abortFrac > 1 || contFrac < 0 || contFrac > 1 {
				t.Errorf("fractions out of range: abort %v, continue %v", abortFrac, contFrac)
			}
			if contFrac < abortFrac-0.02 {
				t.Errorf("continue-after-failure fraction %.4f should not trail abort %.4f", contFrac, abortFrac)
			}
			full, _ := r.Value("fullCompletion")
			if full > abortFrac+0.02 {
				t.Errorf("full completion %.4f cannot exceed the expected fraction %.4f", full, abortFrac)
			}
		})
	}
}

// TestRepeatedMatchesAnalyticAcrossPresets cross-checks the repeated
// engagement against the quote solver on every preset: with static premia
// every initiated round is an independent draw of the re-quoted stage
// game, whose success probability is the analytic SR at the SR-maximising
// rate (price-level invariant by scale invariance). Presets with no
// viable quote must report a frozen market and skip the check.
func TestRepeatedMatchesAnalyticAcrossPresets(t *testing.T) {
	g, err := Lookup("repeated")
	if err != nil {
		t.Fatal(err)
	}
	v := g.(MCValidator)
	for _, sc := range scenario.Registry() {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			t.Parallel()
			// Long engagements tighten the Wilson interval to ±~2%.
			sc.Rounds = 2000
			ctx := &Context{}
			r, err := g.Solve(ctx, sc)
			if err != nil {
				t.Fatal(err)
			}
			r.Key = "repeated"
			check, err := v.MCValidate(ctx, sc, r)
			if err != nil {
				t.Fatal(err)
			}
			quotes, _ := r.Value("quotes")
			if quotes == 0 {
				if check != nil {
					t.Errorf("frozen market still produced a check: %+v", check)
				}
				if r.SR != 0 {
					t.Errorf("frozen market reports SR %v", r.SR)
				}
				return
			}
			if check == nil {
				t.Fatal("quoted engagement should validate")
			}
			if !check.Agrees {
				t.Errorf("analytic per-round SR %.4f outside sampled interval [%.4f, %.4f]",
					check.Analytic, check.SR.Lo, check.SR.Hi)
			}
			initiations, _ := r.Value("initiations")
			if initiations != quotes {
				t.Errorf("every quoted round initiates at the optimal rate: quotes %v, initiations %v", quotes, initiations)
			}
		})
	}
}

// TestBaselineBoundsBasicAcrossPresets pins the paper's §VI comparison on
// every preset: the one-sided SR (B assumed honest) bounds the two-sided
// SR from above, the gap is non-negative, the abandonment option cannot
// hurt, and the direct protocol sampler agrees with the closed form.
func TestBaselineBoundsBasicAcrossPresets(t *testing.T) {
	g, err := Lookup("baseline")
	if err != nil {
		t.Fatal(err)
	}
	v := g.(MCValidator)
	for _, sc := range scenario.Registry() {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			t.Parallel()
			ctx := &Context{Opts: RunOpts{Runs: crosscheckRuns}}
			r, err := g.Solve(ctx, sc)
			if err != nil {
				t.Fatal(err)
			}
			if gap, _ := r.Value("twoSidedGap"); gap < -1e-12 {
				t.Errorf("one-sided SR must bound the two-sided SR from above, gap %v", gap)
			}
			if premium, _ := r.Value("optionPremium"); premium < -1e-9 {
				t.Errorf("abandonment-option premium %v must be non-negative", premium)
			}
			check, err := v.MCValidate(ctx, sc, r)
			if err != nil {
				t.Fatal(err)
			}
			if check == nil || !check.Agrees {
				t.Errorf("one-sided sampler disagrees with the closed form: %+v", check)
			}
		})
	}
}
