package variant

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/scenario"
	"repro/internal/store"
)

func testScenario(t *testing.T) scenario.Scenario {
	t.Helper()
	sc, err := scenario.Lookup("tableIII")
	if err != nil {
		t.Fatal(err)
	}
	sc.MCRuns = 400
	return sc
}

func TestCellKeySensitivity(t *testing.T) {
	sc := testScenario(t)
	base := RunOpts{Runs: 400}
	k0, err := CellKey(sc, "basic", base)
	if err != nil {
		t.Fatal(err)
	}
	changed := []struct {
		name string
		sc   scenario.Scenario
		key  string
		opts RunOpts
	}{
		{"variant", sc, "collateral", base},
		{"runs", sc, "basic", RunOpts{Runs: 500}},
		{"ciWidth", sc, "basic", RunOpts{Runs: 400, CIWidth: 0.01}},
		{"chunk", sc, "basic", RunOpts{Runs: 400, ChunkSize: 64}},
		{"maxPaths", sc, "basic", RunOpts{Runs: 400, MaxPaths: 1000}},
		{"sampler", sc, "basic", RunOpts{Runs: 400, Sampler: "sobol"}},
		{"skipMC", sc, "basic", RunOpts{Runs: 400, SkipMC: true}},
	}
	scMut := sc
	scMut.Params.Price.Sigma += 1e-9
	changed = append(changed, struct {
		name string
		sc   scenario.Scenario
		key  string
		opts RunOpts
	}{"params", scMut, "basic", base})
	for _, c := range changed {
		k, err := CellKey(c.sc, c.key, c.opts)
		if err != nil {
			t.Fatal(err)
		}
		if k == k0 {
			t.Errorf("changing %s did not change the cell key", c.name)
		}
	}
	// Worker count and variant selection must NOT change the key: results
	// are bit-reproducible at any worker count, and Variants selects cells
	// rather than parameterizing one.
	same := []RunOpts{
		{Runs: 400, MCWorkers: 8},
		{Runs: 400, Variants: "all"},
	}
	for i, opts := range same {
		k, err := CellKey(sc, "basic", opts)
		if err != nil {
			t.Fatal(err)
		}
		if k != k0 {
			t.Errorf("neutral opts %d changed the cell key", i)
		}
	}
}

func TestRunReadsThroughStore(t *testing.T) {
	sc := testScenario(t)
	s, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	opts := RunOpts{Runs: 400, Variants: "basic,collateral", Store: s}
	cold, err := Run(sc, opts)
	if err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Puts != 2 || st.Hits != 0 {
		t.Fatalf("cold run stats = %+v, want 2 puts, 0 hits", st)
	}
	warm, err := Run(sc, opts)
	if err != nil {
		t.Fatal(err)
	}
	st = s.Stats()
	if st.Hits != 2 || st.Puts != 2 {
		t.Fatalf("warm run stats = %+v, want 2 hits and no new puts", st)
	}
	if !reflect.DeepEqual(cold, warm) {
		t.Fatal("warm (loaded) reports differ from cold (solved) reports")
	}
	// The loaded report round-trips to identical JSON — the atlas's
	// byte-identical artifact guarantee rests on this.
	jc, _ := json.Marshal(cold)
	jw, _ := json.Marshal(warm)
	if string(jc) != string(jw) {
		t.Fatal("cold and warm reports marshal differently")
	}
}

func TestRunAllReadsThroughStore(t *testing.T) {
	sc := testScenario(t)
	s, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	opts := RunOpts{Runs: 400, Variants: "basic", Store: s}
	scs := []scenario.Scenario{sc}
	cold, err := RunAll(context.Background(), scs, 2, opts)
	if err != nil {
		t.Fatal(err)
	}
	warm, err := RunAll(context.Background(), scs, 2, opts)
	if err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.Hits != 1 || st.Puts != 1 {
		t.Fatalf("stats = %+v, want exactly 1 put (cold) and 1 hit (warm)", st)
	}
	if !reflect.DeepEqual(cold, warm) {
		t.Fatal("RunAll warm reports differ from cold")
	}
}

func TestCorruptStoreEntryResolves(t *testing.T) {
	sc := testScenario(t)
	dir := t.TempDir()
	s, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	opts := RunOpts{Runs: 400, Variants: "basic", Store: s, SkipMC: true}
	cold, err := Run(sc, opts)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a byte in every stored entry; the runner must fall back to a
	// fresh solve (corruption-as-miss) and still return the same report.
	n := 0
	filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return nil
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		data[len(data)-1] ^= 0x01
		n++
		return os.WriteFile(path, data, 0o644)
	})
	if n == 0 {
		t.Fatal("no store entries written")
	}
	again, err := Run(sc, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cold, again) {
		t.Fatal("re-solve after corruption produced a different report")
	}
	if st := s.Stats(); st.Corrupt == 0 {
		t.Fatal("corruption not counted")
	}
}
