package variant

import (
	"context"
	"reflect"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/scenario"
	"repro/internal/utility"
)

// testRuns keeps the per-test Monte Carlo small; the acceptance-scale run
// lives in cmd/scenarios and the CI batch.
const testRuns = 600

func mustLookup(t *testing.T, name string) scenario.Scenario {
	t.Helper()
	sc, err := scenario.Lookup(name)
	if err != nil {
		t.Fatal(err)
	}
	return sc
}

func mustReport(t *testing.T, sr ScenarioReport, key string) Report {
	t.Helper()
	r, ok := sr.Report(key)
	if !ok {
		t.Fatalf("row for %q has no %q report (have %d reports)", sr.Scenario.Name, key, len(sr.Reports))
	}
	return r
}

func TestRunTableIIIMatchesCoreSolver(t *testing.T) {
	sc := mustLookup(t, "tableIII")
	row, err := Run(sc, RunOpts{Runs: testRuns})
	if err != nil {
		t.Fatal(err)
	}
	if len(row.Reports) != 3 {
		t.Fatalf("default selection solved %d variants, want the trio", len(row.Reports))
	}

	m, err := core.New(utility.Default())
	if err != nil {
		t.Fatal(err)
	}
	basic := mustReport(t, row, "basic")
	cut, err := m.CutoffT3(2.0)
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := basic.Value("cutoffT3"); got != cut {
		t.Errorf("cutoffT3 = %v, want %v", got, cut)
	}
	sr, err := m.SuccessRate(2.0)
	if err != nil {
		t.Fatal(err)
	}
	if basic.SR != sr {
		t.Errorf("basic SR = %v, want %v", basic.SR, sr)
	}
	if init, _ := basic.Value("aliceInitiates"); init != 1 {
		t.Errorf("Table III point should be fully viable: %+v", basic.Values)
	}
	// The fair rate sits inside the paper's (1.5, 2.5) feasible range.
	lo, okLo := basic.Value("feasibleLo")
	hi, okHi := basic.Value("feasibleHi")
	if !okLo || !okHi || lo > 2 || hi < 2 {
		t.Errorf("feasible range [%v, %v] should contain the fair rate", lo, hi)
	}

	col := mustReport(t, row, "collateral")
	cm, err := m.Collateral(0.1)
	if err != nil {
		t.Fatal(err)
	}
	wantCol, err := cm.SuccessRate(2.0)
	if err != nil {
		t.Fatal(err)
	}
	if col.SR != wantCol {
		t.Errorf("collateral SR = %v, want %v", col.SR, wantCol)
	}

	unc := mustReport(t, row, "uncertain")
	if unc.MC != nil {
		t.Error("uncertain variant has no protocol simulator, MC should be nil")
	}
	for _, key := range []string{"basic", "collateral"} {
		r := mustReport(t, row, key)
		if r.MC == nil {
			t.Fatalf("%s: MC validation missing", key)
		}
		if !r.MC.Agrees {
			t.Errorf("%s: analytic %.4f outside MC interval [%.4f, %.4f]",
				key, r.MC.Analytic, r.MC.SR.Lo, r.MC.SR.Hi)
		}
		if r.MC.Stages == nil || r.MC.MeanDurationHours <= 0 {
			t.Errorf("%s: MC aggregates missing: %+v", key, r.MC)
		}
	}
}

func TestRunRejectsInvalidScenarioAndUnknownVariant(t *testing.T) {
	if _, err := Run(scenario.Scenario{}, RunOpts{}); err == nil {
		t.Error("invalid scenario accepted")
	}
	sc := mustLookup(t, "tableIII")
	if _, err := Run(sc, RunOpts{Variants: "nope"}); err == nil {
		t.Error("unknown variant accepted")
	}
	if _, err := RunAll(context.Background(), []scenario.Scenario{{}}, 1, RunOpts{}); err == nil {
		t.Error("RunAll accepted an invalid scenario")
	}
	if _, err := RunAll(context.Background(), []scenario.Scenario{sc}, 1, RunOpts{Variants: "nope"}); err == nil {
		t.Error("RunAll accepted an unknown variant")
	}
}

func TestRunAllOrderedAndWorkerIndependent(t *testing.T) {
	if testing.Short() {
		t.Skip("batch Monte Carlo is slow")
	}
	scs := scenario.Registry()[:3]
	ref, err := RunAll(context.Background(), scs, 1, RunOpts{Runs: testRuns, Variants: "all"})
	if err != nil {
		t.Fatal(err)
	}
	if len(ref) != len(scs) {
		t.Fatalf("got %d rows, want %d", len(ref), len(scs))
	}
	for i, row := range ref {
		if row.Scenario.Name != scs[i].Name {
			t.Errorf("row %d is %q, want %q (ordered output)", i, row.Scenario.Name, scs[i].Name)
		}
		if len(row.Reports) != len(Keys()) {
			t.Errorf("row %d solved %d variants, want %d", i, len(row.Reports), len(Keys()))
		}
	}
	got, err := RunAll(context.Background(), scs, 4, RunOpts{Runs: testRuns, Variants: "all"})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, ref) {
		t.Error("reports differ between 1 and 4 workers")
	}
}

func TestEveryPresetAgreesAcrossAllVariants(t *testing.T) {
	if testing.Short() {
		t.Skip("batch Monte Carlo is slow")
	}
	reports, err := RunAll(context.Background(), scenario.Registry(), 0, RunOpts{Runs: 1500, Variants: "all"})
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range reports {
		for _, r := range row.Reports {
			if !r.MCAgrees() {
				t.Errorf("%s/%s: analytic %.4f outside MC interval [%.4f, %.4f]",
					row.Scenario.Name, r.Key, r.MC.Analytic, r.MC.SR.Lo, r.MC.SR.Hi)
			}
		}
	}
}

func TestScenarioVariantSelectionHonoured(t *testing.T) {
	sc := mustLookup(t, "tableIII")
	sc.Variants = []string{"baseline", "uncertain"}
	row, err := Run(sc, RunOpts{Runs: testRuns})
	if err != nil {
		t.Fatal(err)
	}
	if len(row.Reports) != 2 || row.Reports[0].Key != "baseline" || row.Reports[1].Key != "uncertain" {
		t.Errorf("scenario selection not honoured: %+v", row.Reports)
	}
}

func TestSkipMCSuppressesValidation(t *testing.T) {
	sc := mustLookup(t, "tableIII")
	row, err := Run(sc, RunOpts{Runs: testRuns, Variants: "basic", SkipMC: true})
	if err != nil {
		t.Fatal(err)
	}
	if r := mustReport(t, row, "basic"); r.MC != nil {
		t.Errorf("SkipMC still ran the validation: %+v", r.MC)
	}
}

func TestRenderMentionsEveryHeadline(t *testing.T) {
	sc := mustLookup(t, "tableIII")
	sc.Packets, sc.Rounds = 4, 100
	row, err := Run(sc, RunOpts{Runs: 200, Variants: "all"})
	if err != nil {
		t.Fatal(err)
	}
	out := row.Render()
	for _, want := range []string{
		"scenario tableIII", "packets=4", "rounds=100",
		"variant basic", "cut-off", "continuation range", "feasible",
		"variant collateral", "SR_c", "variant uncertain", "SR_x",
		"variant packetized", "expected fraction", "per-round exposure",
		"variant repeated", "rounds quoted/initiated/succeeded",
		"variant baseline", "one-sided SR", "rational-withdrawal risk",
		"Wilson 95%", "agrees",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestDiffReportsPerVariantColumns(t *testing.T) {
	ra, err := Run(mustLookup(t, "tableIII"), RunOpts{Runs: 200, Variants: "basic,repeated"})
	if err != nil {
		t.Fatal(err)
	}
	rb, err := Run(mustLookup(t, "high-vol"), RunOpts{Runs: 200, Variants: "basic,repeated"})
	if err != nil {
		t.Fatal(err)
	}
	out := Diff(ra, rb, 1e-6)
	for _, want := range []string{"param sigma", "basic sr", "repeated sr", "->"} {
		if !strings.Contains(out, want) {
			t.Errorf("diff missing %q:\n%s", want, out)
		}
	}
	self := Diff(ra, ra, 1e-6)
	if !strings.Contains(self, "no differences") {
		t.Errorf("self diff should be empty:\n%s", self)
	}
}

func TestRunOptsAdaptivePrecisionKnobs(t *testing.T) {
	sc := mustLookup(t, "tableIII")
	get := func(opts RunOpts) *MCCheck {
		t.Helper()
		opts.Variants = "basic"
		row, err := Run(sc, opts)
		if err != nil {
			t.Fatal(err)
		}
		r := mustReport(t, row, "basic")
		if r.MC == nil {
			t.Fatal("basic variant did not validate")
		}
		return r.MC
	}
	// Default: the fixed run count is honoured exactly.
	fixed := get(RunOpts{Runs: testRuns})
	if fixed.Runs != testRuns || fixed.Stopped {
		t.Errorf("fixed mode ran %d paths (stopped=%v), want exactly %d",
			fixed.Runs, fixed.Stopped, testRuns)
	}
	// A loose CI target stops well before a large cap, at a chunk boundary.
	adaptive := get(RunOpts{Runs: 50000, CIWidth: 0.05, ChunkSize: 128})
	if !adaptive.Stopped {
		t.Fatal("loose CI target did not stop early")
	}
	if adaptive.Runs >= 50000 || adaptive.Runs%128 != 0 {
		t.Errorf("adaptive ran %d paths, want a chunk-aligned early stop", adaptive.Runs)
	}
	if half := (adaptive.SR.Hi - adaptive.SR.Lo) / 2; half > 0.05 {
		t.Errorf("half-width at stop %g, want <= 0.05", half)
	}
	// MaxPaths caps adaptive sampling below the run count.
	capped := get(RunOpts{Runs: 50000, CIWidth: 1e-9, ChunkSize: 128, MaxPaths: 256})
	if capped.Runs != 256 || capped.Stopped {
		t.Errorf("capped run executed %d paths (stopped=%v), want 256 at the cap",
			capped.Runs, capped.Stopped)
	}
	// The adaptive estimate agrees with the fixed one to CI precision.
	if diff := adaptive.SR.P - fixed.SR.P; diff > 0.1 || diff < -0.1 {
		t.Errorf("adaptive SR %.4f far from fixed SR %.4f", adaptive.SR.P, fixed.SR.P)
	}
}
