package variant

import (
	"fmt"

	"repro/internal/scenario"
)

// uncertainGame is the §IV.B extension: A commits an amount instead of a
// rate, and B chooses how much to lock against it after observing P_t2.
type uncertainGame struct{}

func (uncertainGame) Key() string { return "uncertain" }

func (uncertainGame) Describe() string {
	return "the §IV.B uncertain-exchange-rate extension: B sizes his lock after observing P_t2"
}

// Solve reports SR_x of Eq. 46 with A committing PStar Token_a under the
// scenario's Bob budget. There is no protocol-level simulator for the
// continuous lock-sizing stage, so this variant carries no MC validation;
// its cross-check is the budget monotonicity the core tests pin.
func (uncertainGame) Solve(ctx *Context, sc scenario.Scenario) (Report, error) {
	m, err := ctx.Model(sc.Params)
	if err != nil {
		return Report{}, err
	}
	u := m.Uncertain()
	budgetNote := "unconstrained (printed Eq. 44)"
	if sc.BobBudget > 0 {
		if u, err = m.UncertainWithBudget(sc.BobBudget); err != nil {
			return Report{}, err
		}
		budgetNote = fmt.Sprintf("budget-capped at %g Token_b", sc.BobBudget)
	}
	sr, err := u.SuccessRate(sc.PStar)
	if err != nil {
		return Report{}, err
	}
	excess, err := u.AliceExcessUtilityT1(sc.PStar)
	if err != nil {
		return Report{}, err
	}
	return Report{
		SR:      sr,
		SRLabel: "uncertain SR_x (Eq. 46)",
		Values: []Value{
			{"sr", sr},
			{"aliceExcess", excess},
			{"budget", sc.BobBudget},
		},
		Lines: []string{
			fmt.Sprintf("Alice locks a = %g Token_a (%s)", sc.PStar, budgetNote),
			fmt.Sprintf("Alice's excess utility (Eq. 45):          %.4f", excess),
			fmt.Sprintf("uncertain SR_x (Eq. 46):                  %.4f", sr),
		},
	}, nil
}
