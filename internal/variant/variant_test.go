package variant

import (
	"errors"
	"reflect"
	"strings"
	"testing"

	"repro/internal/scenario"
	"repro/internal/stats"
)

func TestRegistryOrderAndLookup(t *testing.T) {
	want := []string{"basic", "collateral", "uncertain", "packetized", "repeated", "baseline"}
	if got := Keys(); !reflect.DeepEqual(got, want) {
		t.Fatalf("Keys() = %v, want %v", got, want)
	}
	for _, key := range want {
		g, err := Lookup(key)
		if err != nil {
			t.Fatalf("Lookup(%q): %v", key, err)
		}
		if g.Key() != key {
			t.Errorf("Lookup(%q).Key() = %q", key, g.Key())
		}
		if g.Describe() == "" {
			t.Errorf("variant %q has no description", key)
		}
	}
	if _, err := Lookup("nope"); !errors.Is(err, ErrUnknown) {
		t.Errorf("Lookup(nope) err = %v, want ErrUnknown", err)
	}
}

func TestDefaultKeysAreTheClassicTrio(t *testing.T) {
	if got := DefaultKeys(); !reflect.DeepEqual(got, []string{"basic", "collateral", "uncertain"}) {
		t.Errorf("DefaultKeys() = %v", got)
	}
}

func TestResolve(t *testing.T) {
	plain := scenario.Scenario{Name: "x"}
	withSel := scenario.Scenario{Name: "x", Variants: []string{"repeated", "basic"}}
	keysOf := func(games []Game) []string {
		out := make([]string, len(games))
		for i, g := range games {
			out[i] = g.Key()
		}
		return out
	}

	games, err := Resolve("", plain)
	if err != nil {
		t.Fatal(err)
	}
	if got := keysOf(games); !reflect.DeepEqual(got, DefaultKeys()) {
		t.Errorf(`Resolve("") = %v, want the default trio`, got)
	}

	games, err = Resolve("", withSel)
	if err != nil {
		t.Fatal(err)
	}
	if got := keysOf(games); !reflect.DeepEqual(got, []string{"repeated", "basic"}) {
		t.Errorf("Resolve honours scenario selection: got %v", got)
	}

	games, err = Resolve("all", plain)
	if err != nil {
		t.Fatal(err)
	}
	if got := keysOf(games); !reflect.DeepEqual(got, Keys()) {
		t.Errorf(`Resolve("all") = %v, want every key`, got)
	}

	games, err = Resolve("baseline, packetized", plain)
	if err != nil {
		t.Fatal(err)
	}
	if got := keysOf(games); !reflect.DeepEqual(got, []string{"baseline", "packetized"}) {
		t.Errorf("Resolve comma list = %v", got)
	}

	if _, err := Resolve("nope", plain); !errors.Is(err, ErrUnknown) {
		t.Errorf("Resolve(nope) err = %v, want ErrUnknown", err)
	}
	if _, err := Resolve("", scenario.Scenario{Name: "x", Variants: []string{"nope"}}); !errors.Is(err, ErrUnknown) {
		t.Errorf("Resolve of a scenario with an unknown key err = %v, want ErrUnknown", err)
	}
}

// dummyGame lets the registration tests exercise Register without
// disturbing the built-ins.
type dummyGame struct{ key string }

func (d dummyGame) Key() string      { return d.key }
func (d dummyGame) Describe() string { return "test-only" }
func (d dummyGame) Solve(*Context, scenario.Scenario) (Report, error) {
	return Report{}, nil
}

func TestRegisterRejectsDuplicateAndInvalidKeys(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: Register did not panic", name)
			}
		}()
		fn()
	}
	mustPanic("duplicate", func() { Register(dummyGame{key: "basic"}) })
	mustPanic("empty", func() { Register(dummyGame{key: ""}) })
	mustPanic("comma", func() { Register(dummyGame{key: "a,b"}) })
}

func TestReportValueAndMCAgrees(t *testing.T) {
	r := Report{Values: []Value{{"sr", 0.5}, {"packets", 4}}}
	if v, ok := r.Value("packets"); !ok || v != 4 {
		t.Errorf("Value(packets) = %v, %v", v, ok)
	}
	if _, ok := r.Value("missing"); ok {
		t.Error("Value(missing) reported present")
	}
	if !r.MCAgrees() {
		t.Error("nil MC should agree vacuously")
	}
	r.MC = &MCCheck{Agrees: false}
	if r.MCAgrees() {
		t.Error("failed check should not agree")
	}
}

func TestNewMCCheckAgreementSlack(t *testing.T) {
	prop, err := stats.NewProportion(50, 100)
	if err != nil {
		t.Fatal(err)
	}
	in := newMCCheck("g", prop.Lo-agreeSlack/2, prop, 100, 7)
	if !in.Agrees {
		t.Errorf("analytic just inside the slack should agree: %+v", in)
	}
	out := newMCCheck("g", prop.Hi+2*agreeSlack, prop, 100, 7)
	if out.Agrees {
		t.Errorf("analytic far outside the interval should disagree: %+v", out)
	}
	if out.Game != "g" || out.Runs != 100 || out.Seed != 7 {
		t.Errorf("check metadata not carried: %+v", out)
	}
}

func TestScenarioReportHelpers(t *testing.T) {
	sr := ScenarioReport{Reports: []Report{
		{Key: "basic", MC: &MCCheck{Agrees: true}},
		{Key: "packetized", MC: &MCCheck{Agrees: false}},
		{Key: "uncertain"},
	}}
	if sr.MCAgrees() {
		t.Error("a failing cell should fail the row")
	}
	if got := sr.Disagreements(); !reflect.DeepEqual(got, []string{"packetized"}) {
		t.Errorf("Disagreements() = %v", got)
	}
	if _, ok := sr.Report("basic"); !ok {
		t.Error("Report(basic) missing")
	}
	if _, ok := sr.Report("nope"); ok {
		t.Error("Report(nope) present")
	}
}

func TestMatrixColumns(t *testing.T) {
	reports := []ScenarioReport{
		{Scenario: scenario.Scenario{Name: "a"}, Reports: []Report{{Key: "basic", SR: 0.5}, {Key: "repeated", SR: 0.25}}},
		{Scenario: scenario.Scenario{Name: "b"}, Reports: []Report{{Key: "basic", SR: 0.75}}},
	}
	out := Matrix(reports)
	for _, want := range []string{"scenario", "basic", "repeated", "0.5000", "0.2500", "0.7500", "-"} {
		if !strings.Contains(out, want) {
			t.Errorf("matrix missing %q:\n%s", want, out)
		}
	}
	if Matrix(nil) != "" {
		t.Error("empty matrix should render empty")
	}
}
