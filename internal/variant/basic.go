package variant

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/mathx"
	"repro/internal/scenario"
	"repro/internal/swapsim"
)

// basicGame is the paper's §III game: both agents strategic, one
// all-or-nothing HTLC swap at the agreed rate.
type basicGame struct{}

func (basicGame) Key() string { return "basic" }

func (basicGame) Describe() string {
	return "the paper's §III basic game: thresholds, feasible range and SR(P*)"
}

func (basicGame) Solve(ctx *Context, sc scenario.Scenario) (Report, error) {
	m, err := ctx.Model(sc.Params)
	if err != nil {
		return Report{}, err
	}
	cutoff, err := m.CutoffT3(sc.PStar)
	if err != nil {
		return Report{}, err
	}
	contT2, contOK, err := m.ContRangeT2(sc.PStar)
	if err != nil {
		return Report{}, err
	}
	feasible, feasibleOK, err := m.FeasibleRateRange()
	if err != nil {
		return Report{}, err
	}
	sr, err := m.SuccessRate(sc.PStar)
	if err != nil {
		return Report{}, err
	}
	strat, err := m.Strategy(sc.PStar)
	if err != nil {
		return Report{}, err
	}
	r := Report{
		SR:      sr,
		SRLabel: "basic SR(P*) (Eq. 31)",
		Values: []Value{
			{"sr", sr},
			{"cutoffT3", cutoff},
			{"aliceInitiates", boolVal(strat.AliceInitiates)},
		},
		Lines: []string{
			fmt.Sprintf("Alice's t3 reveal cut-off P̄_t3 (Eq. 18):  %.4f", cutoff),
			fmt.Sprintf("Bob's t2 continuation range (Eq. 24):     %s", fmtInterval(contT2, contOK)),
			fmt.Sprintf("feasible exchange-rate range (Eq. 30):    %s", fmtInterval(feasible, feasibleOK)),
			fmt.Sprintf("Alice initiates at P*=%g:                 %v", sc.PStar, strat.AliceInitiates),
			fmt.Sprintf("basic SR(P*) (Eq. 31):                    %.4f", sr),
		},
	}
	if contOK {
		r.Values = append(r.Values, Value{"t2Lo", contT2.Lo}, Value{"t2Hi", contT2.Hi})
	}
	if feasibleOK {
		r.Values = append(r.Values, Value{"feasibleLo", feasible.Lo}, Value{"feasibleHi", feasible.Hi})
		optRate, optSR, err := m.OptimalRate()
		if err != nil {
			return Report{}, err
		}
		r.Values = append(r.Values, Value{"optimalRate", optRate}, Value{"optimalSR", optSR})
		r.Lines = append(r.Lines,
			fmt.Sprintf("SR-maximising rate:                       %.4f (SR = %.4f)", optRate, optSR))
	}
	return r, nil
}

// MCValidate runs the protocol simulation with the basic-game threshold
// strategies. Eq. 31's SR conditions on the swap being initiated, so the
// simulated strategy initiates unconditionally; the solved report records
// whether A rationally would.
func (basicGame) MCValidate(ctx *Context, sc scenario.Scenario, r Report) (*MCCheck, error) {
	m, err := ctx.Model(sc.Params)
	if err != nil {
		return nil, err
	}
	strat, err := m.Strategy(sc.PStar)
	if err != nil {
		return nil, err
	}
	return simulateCheck(ctx, sc, "basic", strat, 0, r.SR)
}

// simulateCheck runs the swapsim Monte Carlo engine under the batch knobs
// and packages the agreement check — the shared protocol-level validation
// of the basic and collateral variants.
func simulateCheck(ctx *Context, sc scenario.Scenario, game string, strat core.Strategy, collateral, analytic float64) (*MCCheck, error) {
	strat.AliceInitiates = true
	res, err := swapsim.MonteCarlo(swapsim.MCConfig{
		Config: swapsim.Config{
			Params:     sc.Params,
			Strategy:   strat,
			Collateral: collateral,
			Seed:       sc.Seed,
			Sampler:    ctx.Opts.Sampler,
		},
		Runs:      ctx.Runs(sc),
		Workers:   ctx.Opts.MCWorkers,
		CIWidth:   ctx.Opts.CIWidth,
		ChunkSize: ctx.Opts.ChunkSize,
		MaxPaths:  ctx.Opts.MaxPaths,
	})
	if err != nil {
		return nil, err
	}
	check := newMCCheck(game, analytic, res.SuccessRate, res.Paths, sc.Seed)
	check.Stopped = res.Stopped
	check.Stages = res.Stages
	check.MeanDurationHours = res.MeanDurationHours
	check.Sampler = res.Sampler
	return check, nil
}

// fmtInterval renders an interval, or a fixed marker for an empty region.
func fmtInterval(iv mathx.Interval, ok bool) string {
	if !ok {
		return "empty"
	}
	return fmt.Sprintf("(%.4f, %.4f)", iv.Lo, iv.Hi)
}

func boolVal(b bool) float64 {
	if b {
		return 1
	}
	return 0
}
