package variant

import (
	"fmt"

	"repro/internal/packetized"
	"repro/internal/scenario"
	"repro/internal/sweep"
)

// DefaultPackets is the packet count solved when a scenario leaves the
// knob at zero — enough splitting for the exposure reduction to show
// without drowning the per-round success signal.
const DefaultPackets = 4

// Seed shards decorrelating the sampled variants' RNG streams from each
// other and from the swapsim engine's own per-path streams.
const (
	seedShardPacketized         = 101
	seedShardPacketizedValidate = 102
	seedShardRepeated           = 103
	seedShardBaselineValidate   = 104
)

// packetizedGame is the companion-work comparator ([20] in §II): the trade
// splits into n equal packets, each its own HTLC round.
type packetizedGame struct{}

func (packetizedGame) Key() string { return "packetized" }

func (packetizedGame) Describe() string {
	return "the companion protocol [20]: n packetized HTLC rounds bound per-round exposure"
}

// packets resolves the scenario's packet count.
func (packetizedGame) packets(sc scenario.Scenario) int {
	if sc.Packets > 0 {
		return sc.Packets
	}
	return DefaultPackets
}

// Solve runs the packetized Monte Carlo experiment in both failure
// semantics (deterministic in the scenario seed): abort-on-failure, the
// trust-is-broken reading, and continue-after-failure, the companion
// protocol's case. The headline metric is the abort-mode expected
// completed fraction of the notional.
func (g packetizedGame) Solve(ctx *Context, sc scenario.Scenario) (Report, error) {
	n := g.packets(sc)
	cfg := packetized.Config{
		Params:  sc.Params,
		PStar:   sc.PStar,
		Packets: n,
		Runs:    ctx.Runs(sc),
		Seed:    sweep.Seed(sc.Seed, seedShardPacketized),
	}
	abort, err := packetized.Run(cfg)
	if err != nil {
		return Report{}, err
	}
	cfg.ContinueAfterFailure = true
	cont, err := packetized.Run(cfg)
	if err != nil {
		return Report{}, err
	}
	return Report{
		SR:      abort.ExpectedFraction,
		SRLabel: "expected completed fraction (abort-on-failure)",
		Values: []Value{
			{"sr", abort.ExpectedFraction},
			{"packets", float64(n)},
			{"fullCompletion", abort.FullCompletion.P},
			{"meanPacketsDone", abort.MeanPacketsDone},
			{"continueFraction", cont.ExpectedFraction},
			{"exposurePerRound", abort.ExposurePerRound},
		},
		Lines: []string{
			fmt.Sprintf("packets n=%d at P*=%g (%d runs)", n, sc.PStar, cfg.Runs),
			fmt.Sprintf("expected fraction (abort on failure):     %.4f ± %.4f", abort.ExpectedFraction, abort.FractionStdErr),
			fmt.Sprintf("full completion (abort on failure):       %v", abort.FullCompletion),
			fmt.Sprintf("mean packets done:                        %.2f of %d", abort.MeanPacketsDone, n),
			fmt.Sprintf("expected fraction (continue after fail):  %.4f ± %.4f", cont.ExpectedFraction, cont.FractionStdErr),
			fmt.Sprintf("per-round exposure:                       %.4f Token_a (vs %.4f single-shot)", abort.ExposurePerRound, sc.PStar),
		},
	}, nil
}

// MCValidate cross-checks the packetized engine against the analytic
// solver through the n=1 reduction: a single forced-initiation packet is
// exactly the basic game conditioned on initiation, so its full-completion
// proportion must cover SR(P*) of Eq. 31. The reduction exercises the same
// per-packet sampling loop every n runs through.
func (packetizedGame) MCValidate(ctx *Context, sc scenario.Scenario, _ Report) (*MCCheck, error) {
	m, err := ctx.Model(sc.Params)
	if err != nil {
		return nil, err
	}
	analytic, err := m.SuccessRate(sc.PStar)
	if err != nil {
		return nil, err
	}
	runs := ctx.Runs(sc)
	seed := sweep.Seed(sc.Seed, seedShardPacketizedValidate)
	res, err := packetized.Run(packetized.Config{
		Params:        sc.Params,
		PStar:         sc.PStar,
		Packets:       1,
		ForceInitiate: true,
		Runs:          runs,
		Seed:          seed,
	})
	if err != nil {
		return nil, err
	}
	return newMCCheck("packetized n=1 ≡ basic", analytic, res.FullCompletion, runs, seed), nil
}
