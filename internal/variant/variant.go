// Package variant promotes every game in the repository to a first-class,
// uniformly addressable variant. A Game is one solvable model of the
// atomic-swap interaction — the paper's §III basic game, the §IV.A
// collateral and §IV.B uncertain-rate extensions, the packetized-payments
// comparator of the authors' companion work (arXiv:2103.02056), the
// repeated-engagement extension of §V.B (arXiv:2211.15804) and the
// one-sided initiator-optionality baseline the paper argues against — and
// the process-wide registry makes each reachable by key from the scenario
// batch runner, the CLIs' -variant flags, the golden suite and the bench
// gates, instead of only the hand-wired trio of earlier revisions.
//
// Every variant's expensive solves route through internal/solvecache (and,
// for the repeated game's quote solver, internal/memo), so a (scenario ×
// variant) batch shares one model per distinct parameter set. Variants
// that can be cross-validated implement MCValidator: an independent Monte
// Carlo protocol run whose Wilson interval must contain the analytic
// solve, the same regression gate the basic game has carried since the
// scenario subsystem landed.
package variant

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/core"
	"repro/internal/qmc"
	"repro/internal/scenario"
	"repro/internal/solvecache"
	"repro/internal/stats"
	"repro/internal/swapsim"
	"repro/internal/utility"
)

// Errors returned by the package.
var (
	// ErrUnknown reports a lookup for an unregistered variant key.
	ErrUnknown = errors.New("variant: unknown variant")
)

// agreeSlack is the repository's customary tolerance around the Monte
// Carlo Wilson interval when checking the analytic solve.
const agreeSlack = 0.01

// Game is one first-class variant of the swap game. Implementations must
// be stateless (or internally synchronised): the batch runner solves
// (scenario × variant) cells concurrently through the sweep pool.
type Game interface {
	// Key is the stable registry identifier ("basic", "packetized", …).
	Key() string
	// Describe says in one line what regime the variant models.
	Describe() string
	// Solve produces the variant's report for one scenario. Analytic
	// solves must route through ctx's shared solve cache; inherently
	// sampled games (packetized, repeated) must be deterministic in the
	// scenario's seed.
	Solve(ctx *Context, sc scenario.Scenario) (Report, error)
}

// MCValidator is the optional interface of variants that can validate
// their solved report against an independent Monte Carlo protocol run. A
// nil check (with nil error) means the validation does not apply under
// this scenario (e.g. a repeated engagement that never quotes).
type MCValidator interface {
	MCValidate(ctx *Context, sc scenario.Scenario, r Report) (*MCCheck, error)
}

// Context carries the shared solve machinery of one (scenario × variant)
// cell: the Monte Carlo knobs of the batch run plus access to the
// process-wide solve cache. A zero Context is valid and uses the default
// run options.
type Context struct {
	// Opts are the batch runner's Monte Carlo knobs.
	Opts RunOpts
}

// Model returns the process-wide shared solver for the parameter set.
func (c *Context) Model(p utility.Params) (*core.Model, error) {
	return solvecache.SharedModel(p)
}

// Runs resolves a scenario's Monte Carlo run count under the batch
// options (the override, the scenario's own setting, or the default).
func (c *Context) Runs(sc scenario.Scenario) int {
	if c.Opts.Runs > 0 {
		return c.Opts.Runs
	}
	return sc.Runs()
}

// Value is one named, diffable quantity of a variant report.
type Value struct {
	// Name is the machine-readable key ("sr", "cutoffT3").
	Name string
	// V is the value.
	V float64
}

// Report is the solved summary of one (scenario × variant) cell.
type Report struct {
	// Key and Desc echo the variant the report came from.
	Key, Desc string
	// SR is the variant's headline success metric; SRLabel says what it
	// measures ("SR(P*) (Eq. 31)", "expected completed fraction", …).
	SR      float64
	SRLabel string
	// Values lists the diffable quantities in render order; the headline
	// SR is always present under the name "sr".
	Values []Value
	// Lines are the rendered detail lines (unindented; Render indents).
	Lines []string
	// MC is the Monte Carlo validation, nil when the variant has none or
	// it did not apply under this scenario.
	MC *MCCheck
}

// Value returns the named quantity and whether the report carries it.
func (r Report) Value(name string) (float64, bool) {
	for _, v := range r.Values {
		if v.Name == name {
			return v.V, true
		}
	}
	return 0, false
}

// MCAgrees reports the acceptance check: the validation ran and its
// Wilson interval (with the customary slack) contains the analytic value,
// or no validation applies (vacuously true).
func (r Report) MCAgrees() bool {
	return r.MC == nil || r.MC.Agrees
}

// MCCheck is one Monte Carlo validation of an analytic solve.
type MCCheck struct {
	// Game names the protocol experiment that was simulated.
	Game string
	// Runs is the number of protocol executions; Stopped reports an
	// adaptive early stop (RunOpts.CIWidth).
	Runs    int
	Stopped bool
	// Seed is the RNG seed the simulation ran under.
	Seed int64
	// SR is the empirical success proportion with its Wilson 95%
	// interval; Analytic is the solved value it validates.
	SR       stats.Proportion
	Analytic float64
	// Agrees reports Analytic ∈ [SR.Lo−slack, SR.Hi+slack].
	Agrees bool
	// Stages counts simulated outcomes by end stage (nil for samplers
	// without stage detail) and MeanDurationHours averages completion
	// time (0 when not tracked).
	Stages            map[swapsim.Stage]int
	MeanDurationHours float64
	// Sampler is the sampling mode the validation ran under; the zero
	// value is the pseudo default (bespoke closed-form validations always
	// report it).
	Sampler qmc.Mode
}

// newMCCheck assembles a check, computing the agreement flag.
func newMCCheck(game string, analytic float64, sr stats.Proportion, runs int, seed int64) *MCCheck {
	return &MCCheck{
		Game:     game,
		Runs:     runs,
		Seed:     seed,
		SR:       sr,
		Analytic: analytic,
		Agrees:   analytic >= sr.Lo-agreeSlack && analytic <= sr.Hi+agreeSlack,
	}
}

// registry is the process-wide variant registry. Registration happens in
// this package's init for the built-in variants; tests may register
// additional variants.
var registry = struct {
	mu    sync.RWMutex
	games map[string]Game
	order []string
}{games: map[string]Game{}}

// Register adds a variant to the process-wide registry. It panics on an
// empty or duplicate key — registration is a program-shape invariant, not
// a runtime condition.
func Register(g Game) {
	key := g.Key()
	if key == "" || strings.ContainsAny(key, ", \t\n") {
		panic(fmt.Sprintf("variant: invalid key %q", key))
	}
	registry.mu.Lock()
	defer registry.mu.Unlock()
	if _, dup := registry.games[key]; dup {
		panic(fmt.Sprintf("variant: duplicate key %q", key))
	}
	registry.games[key] = g
	registry.order = append(registry.order, key)
}

// Lookup returns the registered variant with the given key.
func Lookup(key string) (Game, error) {
	registry.mu.RLock()
	defer registry.mu.RUnlock()
	if g, ok := registry.games[key]; ok {
		return g, nil
	}
	known := append([]string(nil), registry.order...)
	sort.Strings(known)
	return nil, fmt.Errorf("%w: %q (have %s)", ErrUnknown, key, strings.Join(known, ", "))
}

// Keys lists the registered variant keys in registration order.
func Keys() []string {
	registry.mu.RLock()
	defer registry.mu.RUnlock()
	return append([]string(nil), registry.order...)
}

// DefaultKeys is the variant set solved when a scenario selects none: the
// basic game and the paper's two §IV extensions — the trio the scenario
// batch has always solved.
func DefaultKeys() []string {
	return []string{"basic", "collateral", "uncertain"}
}

// Resolve expands a variant specification into games: "" selects the
// scenario's own Variants (or DefaultKeys when it has none), "all" every
// registered variant, and otherwise a comma-separated key list.
func Resolve(spec string, sc scenario.Scenario) ([]Game, error) {
	var keys []string
	switch spec {
	case "":
		keys = sc.Variants
		if len(keys) == 0 {
			keys = DefaultKeys()
		}
	case "all":
		keys = Keys()
	default:
		for _, k := range strings.Split(spec, ",") {
			keys = append(keys, strings.TrimSpace(k))
		}
	}
	games := make([]Game, len(keys))
	for i, k := range keys {
		g, err := Lookup(k)
		if err != nil {
			return nil, err
		}
		games[i] = g
	}
	return games, nil
}

func init() {
	// Canonical registration order: the paper's games first, then the
	// related-work comparators, then the baseline the paper argues
	// against. List/summary columns follow this order.
	Register(basicGame{})
	Register(collateralGame{})
	Register(uncertainGame{})
	Register(packetizedGame{})
	Register(repeatedGame{})
	Register(baselineGame{})
}
