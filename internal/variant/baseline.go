package variant

import (
	"fmt"

	"repro/internal/baseline"
	"repro/internal/scenario"
	"repro/internal/sweep"
)

// baselineGame is the related-work comparator the paper argues against
// (§II, §VI): only the initiator is strategic; B follows the protocol
// whenever the swap reaches him. Its one-sided SR bounds the two-sided SR
// from above, and the gap is B's rational-withdrawal risk — the
// comparison column the variant matrix carries.
type baselineGame struct{}

func (baselineGame) Key() string { return "baseline" }

func (baselineGame) Describe() string {
	return "the one-sided initiator-optionality baseline: B never withdraws"
}

func (baselineGame) Solve(ctx *Context, sc scenario.Scenario) (Report, error) {
	bl, err := baseline.New(sc.Params)
	if err != nil {
		return Report{}, err
	}
	oneSided, err := bl.SuccessRate(sc.PStar)
	if err != nil {
		return Report{}, err
	}
	optVal, err := bl.OptionValue(sc.PStar)
	if err != nil {
		return Report{}, err
	}
	premium, err := bl.OptionPremium(sc.PStar)
	if err != nil {
		return Report{}, err
	}
	m, err := ctx.Model(sc.Params)
	if err != nil {
		return Report{}, err
	}
	srBasic, err := m.SuccessRate(sc.PStar)
	if err != nil {
		return Report{}, err
	}
	return Report{
		SR:      oneSided,
		SRLabel: "one-sided SR (B always locks)",
		Values: []Value{
			{"sr", oneSided},
			{"twoSidedGap", oneSided - srBasic},
			{"optionValue", optVal},
			{"optionPremium", premium},
		},
		Lines: []string{
			fmt.Sprintf("one-sided SR (B always locks):            %.4f", oneSided),
			fmt.Sprintf("two-sided SR(P*) (Eq. 31):                %.4f", srBasic),
			fmt.Sprintf("B's rational-withdrawal risk (gap):       %.4f", oneSided-srBasic),
			fmt.Sprintf("A's option value at t1:                   %.4f", optVal),
			fmt.Sprintf("A's abandonment-option premium:           %.4f", premium),
		},
	}, nil
}

// MCValidate samples the one-sided protocol directly: B locks
// unconditionally, the price walks both confirmation legs, success iff
// P_t3 clears A's cut-off. The sampler and the closed-form tail
// probability share only the GBM law.
func (baselineGame) MCValidate(ctx *Context, sc scenario.Scenario, r Report) (*MCCheck, error) {
	bl, err := baseline.New(sc.Params)
	if err != nil {
		return nil, err
	}
	runs := ctx.Runs(sc)
	seed := sweep.Seed(sc.Seed, seedShardBaselineValidate)
	prop, err := bl.SimulateSR(sc.PStar, runs, seed)
	if err != nil {
		return nil, err
	}
	return newMCCheck("one-sided protocol", r.SR, prop, runs, seed), nil
}
