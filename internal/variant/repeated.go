package variant

import (
	"fmt"

	"repro/internal/repeated"
	"repro/internal/scenario"
	"repro/internal/stats"
	"repro/internal/sweep"
)

// DefaultRounds is the engagement length solved when a scenario leaves
// the knob at zero: long enough for a Wilson interval tight enough to
// catch a broken quote solver, short enough to stay interactive.
const DefaultRounds = 200

// repeatedGameGap is the market time between consecutive opportunities,
// matching the figures' repeated-game regimes (one opportunity per day).
const repeatedGameGap = 24.0

// repeatedGame is the §V.B repeated-engagement extension: the same two
// agents trade round after round, re-quoting the SR-maximising rate at
// the prevailing price. The scenario variant plays the static-reputation
// regime — premia fixed at the scenario's, every round an independent
// draw of the re-quoted stage game — which is the regime an analytic
// validation exists for; the reputation dynamics stay reachable through
// the figures and examples.
type repeatedGame struct{}

func (repeatedGame) Key() string { return "repeated" }

func (repeatedGame) Describe() string {
	return "the §V.B repeated engagement: per-round re-quoting at the SR-maximising rate"
}

// rounds resolves the scenario's engagement length.
func (repeatedGame) rounds(sc scenario.Scenario) int {
	if sc.Rounds > 0 {
		return sc.Rounds
	}
	return DefaultRounds
}

func (g repeatedGame) Solve(ctx *Context, sc scenario.Scenario) (Report, error) {
	rounds := g.rounds(sc)
	res, err := repeated.Play(repeated.Config{
		Params:   sc.Params,
		Rounds:   rounds,
		GapHours: repeatedGameGap,
		Seed:     sweep.Seed(sc.Seed, seedShardRepeated),
	})
	if err != nil {
		return Report{}, err
	}
	pstarOpt, srOpt, viable, err := repeated.QuoteAt(sc.Params, sc.Params.Alice.Alpha, sc.Params.Bob.Alpha)
	if err != nil {
		return Report{}, err
	}
	r := Report{
		SR:      res.SuccessRate(),
		SRLabel: "per-initiation success rate",
		Values: []Value{
			{"sr", res.SuccessRate()},
			{"rounds", float64(rounds)},
			{"quotes", float64(res.Quotes)},
			{"initiations", float64(res.Initiations)},
			{"successes", float64(res.Successes)},
		},
		Lines: []string{
			fmt.Sprintf("engagement: %d rounds, one opportunity per %.0fh, static premia", rounds, repeatedGameGap),
		},
	}
	if viable {
		r.Values = append(r.Values, Value{"quotedRate", pstarOpt}, Value{"quotedSR", srOpt})
		r.Lines = append(r.Lines,
			fmt.Sprintf("quoted SR-maximising rate at P0:          %.4f (per-round SR %.4f)", pstarOpt, srOpt))
	} else {
		r.Lines = append(r.Lines, "no viable exchange rate: the market never opens")
	}
	r.Lines = append(r.Lines,
		fmt.Sprintf("rounds quoted/initiated/succeeded:        %d / %d / %d", res.Quotes, res.Initiations, res.Successes),
		fmt.Sprintf("success rate over initiations:            %.4f", res.SuccessRate()))
	return r, nil
}

// MCValidate checks the engagement's empirical success proportion against
// the quote solver's analytic per-round SR. With static premia every
// initiated round is an independent Bernoulli draw at the re-quoted
// optimal rate, whose success probability is price-level invariant by the
// game's scale invariance — so the Wilson interval over initiations must
// cover the analytic value. A scenario with no viable quote has nothing
// to validate (nil check).
func (g repeatedGame) MCValidate(ctx *Context, sc scenario.Scenario, r Report) (*MCCheck, error) {
	_, srOpt, viable, err := repeated.QuoteAt(sc.Params, sc.Params.Alice.Alpha, sc.Params.Bob.Alpha)
	if err != nil {
		return nil, err
	}
	initiations, _ := r.Value("initiations")
	successes, _ := r.Value("successes")
	if !viable || initiations == 0 {
		return nil, nil
	}
	prop, err := stats.NewProportion(int(successes), int(initiations))
	if err != nil {
		return nil, err
	}
	return newMCCheck("repeated (static premia)", srOpt, prop, int(initiations), sweep.Seed(sc.Seed, seedShardRepeated)), nil
}
