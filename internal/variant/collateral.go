package variant

import (
	"fmt"

	"repro/internal/scenario"
)

// collateralGame is the §IV.A extension: both agents escrow a deposit Q
// that is forfeited by a mid-protocol withdrawal.
type collateralGame struct{}

func (collateralGame) Key() string { return "collateral" }

func (collateralGame) Describe() string {
	return "the §IV.A collateral extension: per-agent deposits pin both continuations"
}

func (collateralGame) Solve(ctx *Context, sc scenario.Scenario) (Report, error) {
	m, err := ctx.Model(sc.Params)
	if err != nil {
		return Report{}, err
	}
	// A zero deposit degenerates to the basic game, exactly as the
	// pre-variant batch runner reported it.
	if sc.Collateral == 0 {
		sr, err := m.SuccessRate(sc.PStar)
		if err != nil {
			return Report{}, err
		}
		return Report{
			SR:      sr,
			SRLabel: "collateral SR_c(P*) (Eq. 40)",
			Values:  []Value{{"sr", sr}, {"q", 0}},
			Lines: []string{
				fmt.Sprintf("collateral SR_c(P*) at Q=0 (Eq. 40):      %.4f (degenerates to the basic game)", sr),
			},
		}, nil
	}
	col, err := m.Collateral(sc.Collateral)
	if err != nil {
		return Report{}, err
	}
	cutoff, err := col.CutoffT3(sc.PStar)
	if err != nil {
		return Report{}, err
	}
	set, err := col.ContSetT2(sc.PStar)
	if err != nil {
		return Report{}, err
	}
	sr, err := col.SuccessRate(sc.PStar)
	if err != nil {
		return Report{}, err
	}
	srBasic, err := m.SuccessRate(sc.PStar)
	if err != nil {
		return Report{}, err
	}
	return Report{
		SR:      sr,
		SRLabel: "collateral SR_c(P*) (Eq. 40)",
		Values: []Value{
			{"sr", sr},
			{"q", sc.Collateral},
			{"cutoffT3", cutoff},
			{"gainOverBasic", sr - srBasic},
		},
		Lines: []string{
			fmt.Sprintf("Alice's t3 cut-off P̄_t3,c (Eq. 33):       %.4f", cutoff),
			fmt.Sprintf("Bob's t2 continuation set 𝒫_t2:           %v", set),
			fmt.Sprintf("collateral SR_c(P*) at Q=%g (Eq. 40):     %.4f", sc.Collateral, sr),
			fmt.Sprintf("improvement over Q=0:                     %+.4f", sr-srBasic),
		},
	}, nil
}

// MCValidate simulates the protocol with the collateral-game strategies
// and the deposit escrowed on both legs.
func (collateralGame) MCValidate(ctx *Context, sc scenario.Scenario, r Report) (*MCCheck, error) {
	m, err := ctx.Model(sc.Params)
	if err != nil {
		return nil, err
	}
	if sc.Collateral == 0 {
		strat, err := m.Strategy(sc.PStar)
		if err != nil {
			return nil, err
		}
		return simulateCheck(ctx, sc, "collateral (Q=0, basic)", strat, 0, r.SR)
	}
	col, err := m.Collateral(sc.Collateral)
	if err != nil {
		return nil, err
	}
	strat, err := col.Strategy(sc.PStar)
	if err != nil {
		return nil, err
	}
	return simulateCheck(ctx, sc, "collateral", strat, sc.Collateral, r.SR)
}
