package variant

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/scenario"
)

// update regenerates the golden variant reports instead of diffing:
//
//	go test ./internal/variant -run TestGoldenVariantReports -update
var update = flag.Bool("update", false, "rewrite the golden report files under testdata/golden")

// goldenRuns keeps the pinned Monte Carlo small and fast; the reports are
// bit-reproducible for a fixed (seed, run-count) pair at any worker
// count. 1200 runs is the smallest round count at which every pinned
// validation agrees on every preset — the golden suite must never
// enshrine a statistically unlucky seed as expected output.
const goldenRuns = 1200

// TestGoldenVariantReports pins the newly promoted packetized and
// repeated variants byte-for-byte on every registry preset — the same
// regression net internal/figures casts over the artifact groups. The
// rendered report covers the solve values, the seeded sampling and the
// Monte Carlo cross-validation, so a drift in any layer (scenario knobs,
// quote memoization, solve cache, packet loop, RNG decorrelation) fails
// here first. Intentional changes are re-pinned with -update.
func TestGoldenVariantReports(t *testing.T) {
	for _, sc := range scenario.Registry() {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			t.Parallel()
			row, err := Run(sc, RunOpts{Runs: goldenRuns, Variants: "packetized,repeated"})
			if err != nil {
				t.Fatal(err)
			}
			// A golden file must pin healthy output: every validation that
			// ran at the pinned size has to agree, or -update would
			// enshrine a failing batch as the expected state.
			if !row.MCAgrees() {
				t.Fatalf("pinned run disagrees for %v; raise goldenRuns", row.Disagreements())
			}
			got := []byte(row.Render())
			path := filepath.Join("testdata", "golden", sc.Name+".golden")
			if *update {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, got, 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden file (run with -update to pin): %v", err)
			}
			if !bytes.Equal(got, want) {
				t.Errorf("report drifted from %s:\n--- got ---\n%s\n--- want ---\n%s", path, got, want)
			}
		})
	}
}
