package variant

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/qmc"
	"repro/internal/scenario"
	"repro/internal/store"
	"repro/internal/swapsim"
	"repro/internal/sweep"
)

// RunOpts configures a batch run across the (scenario × variant) matrix.
type RunOpts struct {
	// Runs overrides every scenario's Monte Carlo run count (0 keeps each
	// scenario's own setting — MCRuns, or scenario.DefaultMCRuns). It is
	// the fixed sample size, and the default adaptive cap.
	Runs int
	// MCWorkers bounds the concurrency of the inner Monte Carlo of a
	// single cell. RunAll parallelises across cells and pins this to 1;
	// Run on its own uses all CPUs when 0.
	MCWorkers int
	// CIWidth, when > 0, switches the swapsim validations to adaptive
	// precision: sampling stops once the Wilson 95% half-width of the
	// success rate is <= CIWidth, capped at MaxPaths (or the run count).
	CIWidth float64
	// ChunkSize is the streaming engine's chunk size (0 = the engine
	// default); results are bit-reproducible per (seed, chunk-size) pair.
	ChunkSize int
	// MaxPaths overrides the adaptive hard cap when > 0.
	MaxPaths int
	// Sampler selects how the protocol simulations draw price increments
	// (see internal/qmc): "" or "pseudo" keeps the golden default stream;
	// "antithetic" and "sobol" are the variance-reduced modes. It applies
	// to the swapsim-backed validations (basic, collateral); the variant
	// games with bespoke closed-form samplers ignore it.
	Sampler qmc.Mode
	// Variants overrides every scenario's variant selection: "" defers to
	// the scenario (or the default trio), "all" solves every registered
	// variant, otherwise a comma-separated key list.
	Variants string
	// SkipMC skips the Monte Carlo validations (analytic solves only) —
	// the mode cmd/swapsolve's -variant runs in.
	SkipMC bool
	// Store, when non-nil, is the persistent content-addressed L2 the
	// runner reads each cell through: a cell whose CellKey is present is
	// loaded instead of solved, and every freshly solved cell is written
	// back. Excluded from serialization — the store is plumbing, not part
	// of any cell's solve input.
	Store *store.Store `json:"-"`
}

// cellSchema versions the serialized Report payload stored under a cell
// key. Bump it whenever the Report schema (or anything influencing a solve
// that is not captured in cellKeyMaterial) changes shape or meaning: old
// entries then read as misses and re-solve, instead of decoding into a
// struct they no longer match.
const cellSchema = 1

// cellKeyMaterial is the complete solve input of one (scenario × variant)
// cell, in canonical field order. MCWorkers is deliberately absent —
// results are bit-reproducible per (seed, chunk) at any worker count — and
// so is Variants, which selects cells but does not parameterize one.
type cellKeyMaterial struct {
	Schema   int               `json:"schema"`
	Scenario scenario.Scenario `json:"scenario"`
	Variant  string            `json:"variant"`
	Runs     int               `json:"runs"`
	CIWidth  float64           `json:"ciWidth"`
	Chunk    int               `json:"chunk"`
	MaxPaths int               `json:"maxPaths"`
	Sampler  qmc.Mode          `json:"sampler"`
	SkipMC   bool              `json:"skipMC"`
}

// CellKey returns the canonical content key of one (scenario × variant)
// cell under the given run options: the store.Key of everything that
// determines the cell's Report. Two invocations produce the same key iff
// they would produce the same report, so a key lookup can never serve a
// stale result — a changed input is a different key.
func CellKey(sc scenario.Scenario, variantKey string, opts RunOpts) (string, error) {
	return store.Key(cellKeyMaterial{
		Schema:   cellSchema,
		Scenario: sc,
		Variant:  variantKey,
		Runs:     opts.Runs,
		CIWidth:  opts.CIWidth,
		Chunk:    opts.ChunkSize,
		MaxPaths: opts.MaxPaths,
		Sampler:  opts.Sampler,
		SkipMC:   opts.SkipMC,
	})
}

// ScenarioReport is the solved (scenario × variant) row of one scenario:
// one report per selected variant, in selection order.
type ScenarioReport struct {
	// Scenario echoes the definition the reports were produced from.
	Scenario scenario.Scenario
	// Reports holds one entry per selected variant.
	Reports []Report
}

// MCAgrees reports whether every variant's Monte Carlo validation agrees
// with its analytic solve (variants without a validation pass vacuously).
func (sr ScenarioReport) MCAgrees() bool {
	for _, r := range sr.Reports {
		if !r.MCAgrees() {
			return false
		}
	}
	return true
}

// Disagreements lists the keys of variants whose validation failed.
func (sr ScenarioReport) Disagreements() []string {
	var out []string
	for _, r := range sr.Reports {
		if !r.MCAgrees() {
			out = append(out, r.Key)
		}
	}
	return out
}

// Report returns the report for the given variant key.
func (sr ScenarioReport) Report(key string) (Report, bool) {
	for _, r := range sr.Reports {
		if r.Key == key {
			return r, true
		}
	}
	return Report{}, false
}

// runCell produces one (scenario × variant) cell's report, reading through
// the persistent store when RunOpts.Store is set: a present, decodable
// entry is returned without solving; otherwise the cell is solved and the
// report written back (best effort — a failed Put costs nothing but the
// amortization).
func runCell(g Game, sc scenario.Scenario, opts RunOpts) (Report, error) {
	if opts.Store == nil {
		return solveCell(g, sc, opts)
	}
	key, err := CellKey(sc, g.Key(), opts)
	if err != nil {
		// Unkeyable cell (cannot happen for validated scenarios, but a
		// keying failure must never fail the run): solve uncached.
		return solveCell(g, sc, opts)
	}
	if data, ok := opts.Store.Get(key); ok {
		var r Report
		if err := json.Unmarshal(data, &r); err == nil {
			return r, nil
		}
		// Undecodable payload under a valid key (schema drift without a
		// cellSchema bump): fall through, re-solve, overwrite.
	}
	r, err := solveCell(g, sc, opts)
	if err != nil {
		return r, err
	}
	if data, err := json.Marshal(r); err == nil {
		opts.Store.Put(key, data)
	}
	return r, nil
}

// solveCell solves one (scenario × variant) cell: the analytic solve, then
// the variant's Monte Carlo validation when it has one.
func solveCell(g Game, sc scenario.Scenario, opts RunOpts) (Report, error) {
	ctx := &Context{Opts: opts}
	r, err := g.Solve(ctx, sc)
	if err != nil {
		return Report{}, fmt.Errorf("scenario %q: variant %q: %w", sc.Name, g.Key(), err)
	}
	r.Key, r.Desc = g.Key(), g.Describe()
	if v, ok := g.(MCValidator); ok && !opts.SkipMC {
		check, err := v.MCValidate(ctx, sc, r)
		if err != nil {
			return Report{}, fmt.Errorf("scenario %q: variant %q: MC validation: %w", sc.Name, g.Key(), err)
		}
		r.MC = check
	}
	return r, nil
}

// Run solves one scenario across its selected variants sequentially.
func Run(sc scenario.Scenario, opts RunOpts) (ScenarioReport, error) {
	if err := sc.Validate(); err != nil {
		return ScenarioReport{}, err
	}
	games, err := Resolve(opts.Variants, sc)
	if err != nil {
		return ScenarioReport{}, fmt.Errorf("scenario %q: %w", sc.Name, err)
	}
	out := ScenarioReport{Scenario: sc, Reports: make([]Report, len(games))}
	for i, g := range games {
		if out.Reports[i], err = runCell(g, sc, opts); err != nil {
			return ScenarioReport{}, err
		}
	}
	return out, nil
}

// cell is one (scenario × variant) unit of the batch fan-out.
type cell struct {
	scenarioIdx int
	reportIdx   int
	game        Game
}

// RunAll fans the full (scenario × variant) matrix through the sweep
// worker pool — cross-cell parallelism with reports returned in input
// order, bit-identical for any worker count. Each cell's inner Monte
// Carlo runs single-worker; the parallelism budget is spent across cells.
func RunAll(ctx context.Context, scs []scenario.Scenario, workers int, opts RunOpts) ([]ScenarioReport, error) {
	opts.MCWorkers = 1
	out := make([]ScenarioReport, len(scs))
	var cells []cell
	for i, sc := range scs {
		if err := sc.Validate(); err != nil {
			return nil, err
		}
		games, err := Resolve(opts.Variants, sc)
		if err != nil {
			return nil, fmt.Errorf("scenario %q: %w", sc.Name, err)
		}
		out[i] = ScenarioReport{Scenario: sc, Reports: make([]Report, len(games))}
		for j, g := range games {
			cells = append(cells, cell{scenarioIdx: i, reportIdx: j, game: g})
		}
	}
	reports, err := sweep.Map(ctx, len(cells), workers, func(i int) (Report, error) {
		c := cells[i]
		return runCell(c.game, scs[c.scenarioIdx], opts)
	})
	if err != nil {
		return nil, err
	}
	for i, r := range reports {
		c := cells[i]
		out[c.scenarioIdx].Reports[c.reportIdx] = r
	}
	return out, nil
}

// renderMC writes the validation block of one report.
func renderMC(b *strings.Builder, mc *MCCheck) {
	stopNote := ""
	if mc.Stopped {
		stopNote = ", adaptive early stop"
	}
	// The sampler note appears only for the variance-reduced modes, so
	// default-mode renders stay byte-identical to the committed goldens.
	samplerNote := ""
	if mc.Sampler.VarianceReduced() {
		samplerNote = ", sampler " + string(mc.Sampler)
	}
	fmt.Fprintf(b, "  Monte Carlo (%s, %d runs, seed %d%s%s):\n", mc.Game, mc.Runs, mc.Seed, samplerNote, stopNote)
	fmt.Fprintf(b, "    simulated SR: %.4f, Wilson 95%% [%.4f, %.4f], analytic %.4f, agrees: %v\n",
		mc.SR.P, mc.SR.Lo, mc.SR.Hi, mc.Analytic, mc.Agrees)
	if mc.Stages != nil {
		fmt.Fprintf(b, "    mean completion %.2fh; outcomes:", mc.MeanDurationHours)
		stages := make([]string, 0, len(mc.Stages))
		for s := range mc.Stages {
			stages = append(stages, string(s))
		}
		sort.Strings(stages)
		for _, s := range stages {
			fmt.Fprintf(b, " %s=%d", s, mc.Stages[swapsim.Stage(s)])
		}
		b.WriteString("\n")
	}
}

// Render produces the human-readable per-scenario block used by
// cmd/scenarios: the scenario header once, then one section per variant.
func (sr ScenarioReport) Render() string {
	var b strings.Builder
	sc := sr.Scenario
	fmt.Fprintf(&b, "scenario %s — %s\n", sc.Name, sc.Description)
	fmt.Fprintf(&b, "  params: αA=%g rA=%g | αB=%g rB=%g | τa=%gh τb=%gh εb=%gh | µ=%g σ=%g P0=%g\n",
		sc.Params.Alice.Alpha, sc.Params.Alice.R, sc.Params.Bob.Alpha, sc.Params.Bob.R,
		sc.Params.Chains.TauA, sc.Params.Chains.TauB, sc.Params.Chains.EpsB,
		sc.Params.Price.Mu, sc.Params.Price.Sigma, sc.Params.P0)
	fmt.Fprintf(&b, "  knobs:  P*=%g Q=%g budget=%g", sc.PStar, sc.Collateral, sc.BobBudget)
	if sc.Packets > 0 {
		fmt.Fprintf(&b, " packets=%d", sc.Packets)
	}
	if sc.Rounds > 0 {
		fmt.Fprintf(&b, " rounds=%d", sc.Rounds)
	}
	b.WriteString("\n")
	for _, r := range sr.Reports {
		fmt.Fprintf(&b, " variant %s — %s\n", r.Key, r.Desc)
		for _, line := range r.Lines {
			fmt.Fprintf(&b, "  %s\n", line)
		}
		if r.MC != nil {
			renderMC(&b, r.MC)
		}
	}
	return b.String()
}

// Matrix renders the per-variant summary columns of a batch: one row per
// scenario, one column per variant that appears in any report, cells
// holding the variant's headline success metric.
func Matrix(reports []ScenarioReport) string {
	var keys []string
	seen := map[string]bool{}
	for _, sr := range reports {
		for _, r := range sr.Reports {
			if !seen[r.Key] {
				seen[r.Key] = true
				keys = append(keys, r.Key)
			}
		}
	}
	if len(keys) == 0 {
		return ""
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-20s", "scenario")
	for _, k := range keys {
		fmt.Fprintf(&b, " %12s", k)
	}
	b.WriteString("\n")
	for _, sr := range reports {
		fmt.Fprintf(&b, "%-20s", sr.Scenario.Name)
		for _, k := range keys {
			if r, ok := sr.Report(k); ok {
				fmt.Fprintf(&b, " %12.4f", r.SR)
			} else {
				fmt.Fprintf(&b, " %12s", "-")
			}
		}
		b.WriteString("\n")
	}
	return b.String()
}

// Diff compares two scenario rows: parameter differences first, then —
// per variant present in both — every named value that moved by more than
// eps, one per-variant column block at a time.
func Diff(a, b ScenarioReport, eps float64) string {
	var out strings.Builder
	fmt.Fprintf(&out, "diff %s -> %s\n", a.Scenario.Name, b.Scenario.Name)
	lines := 0
	for _, d := range scenario.DiffParams(a.Scenario, b.Scenario) {
		fmt.Fprintf(&out, "  param %s\n", d)
		lines++
	}
	for _, ra := range a.Reports {
		rb, ok := b.Report(ra.Key)
		if !ok {
			continue
		}
		for _, va := range ra.Values {
			vb, ok := rb.Value(va.Name)
			if !ok {
				// Conditional values (feasible/continuation bounds, quoted
				// rates) vanish when the region empties or the market
				// freezes — the most decision-relevant difference between
				// two regimes, so it must not drop out of the diff.
				fmt.Fprintf(&out, "  %s %s: %.4f -> absent\n", ra.Key, va.Name, va.V)
				lines++
				continue
			}
			if math.Abs(va.V-vb) > eps {
				fmt.Fprintf(&out, "  %s %s: %.4f -> %.4f (Δ %+.4f)\n", ra.Key, va.Name, va.V, vb, vb-va.V)
				lines++
			}
		}
		for _, vb := range rb.Values {
			if _, ok := ra.Value(vb.Name); !ok {
				fmt.Fprintf(&out, "  %s %s: absent -> %.4f\n", ra.Key, vb.Name, vb.V)
				lines++
			}
		}
		if ma, mb := ra.MC, rb.MC; ma != nil && mb != nil && math.Abs(ma.SR.P-mb.SR.P) > eps {
			fmt.Fprintf(&out, "  %s MC SR: %.4f -> %.4f (Δ %+.4f)\n", ra.Key, ma.SR.P, mb.SR.P, mb.SR.P-ma.SR.P)
			lines++
		}
	}
	if lines == 0 {
		out.WriteString("  no differences above eps\n")
	}
	return out.String()
}
