// Package fault is the deterministic fault-injection substrate of the
// quote daemon's chaos harness. An Injector holds a set of rules, each
// keyed to one registered injection point in the RPC server or the
// WebSocket I/O path ("rpc.latency", "ws.frame.drop", …); at each point
// the server asks the injector whether the fault fires. Decisions are
// seeded: a per-key counter indexes into a SplitMix64 stream, so two runs
// that visit a point the same number of times draw the same fire/no-fire
// sequence regardless of wall clock or goroutine identity.
//
// The nil *Injector is the production default: every method on a nil
// receiver is a no-op, so the hot path pays one pointer test and nothing
// else when no faults are configured.
package fault

import (
	"fmt"
	"sort"
	"strings"
	"sync/atomic"
	"time"
)

// Registered injection-point keys. The key names the site and the fault it
// arms there; Parse rejects anything not in this registry so a typo in a
// -fault spec fails at startup instead of silently injecting nothing.
const (
	// KeyRPCLatency delays an admitted request before dispatch (the rule's
	// duration argument sets the delay).
	KeyRPCLatency = "rpc.latency"
	// KeyRPCError replaces the handler's result with a -32603 error.
	KeyRPCError = "rpc.error"
	// KeyRPCPanic panics inside the handler, exercising panic isolation.
	KeyRPCPanic = "rpc.panic"
	// KeyWSReadStall stalls the WebSocket read loop after a message
	// arrives (duration argument), simulating a stalled reader.
	KeyWSReadStall = "ws.read.stall"
	// KeyWSFrameDrop discards an inbound WebSocket message after
	// reassembly, simulating a lost frame.
	KeyWSFrameDrop = "ws.frame.drop"
	// KeyWSFrameTruncate truncates an inbound WebSocket message before
	// parsing, simulating a corrupted frame.
	KeyWSFrameTruncate = "ws.frame.truncate"
	// KeyWSWriteError fails a WebSocket frame write, simulating a broken
	// or stalled peer mid-stream.
	KeyWSWriteError = "ws.write.error"
)

// registry maps every legal key to its site description (surfaced by
// Describe and the DESIGN.md fault table).
var registry = map[string]string{
	KeyRPCLatency:      "delay before dispatching an admitted request",
	KeyRPCError:        "replace the handler result with a -32603 error",
	KeyRPCPanic:        "panic inside the request handler",
	KeyWSReadStall:     "stall the WebSocket read loop after a message",
	KeyWSFrameDrop:     "drop an inbound WebSocket message",
	KeyWSFrameTruncate: "truncate an inbound WebSocket message",
	KeyWSWriteError:    "fail a WebSocket frame write",
}

// Keys returns the registered injection-point keys, sorted.
func Keys() []string {
	out := make([]string, 0, len(registry))
	for k := range registry {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Describe returns a key's site description ("" for unknown keys).
func Describe(key string) string { return registry[key] }

// Rule arms one injection point: the fault fires with probability Prob on
// each visit, and Delay parameterises the duration-typed faults (latency,
// stall).
type Rule struct {
	Key   string
	Prob  float64
	Delay time.Duration
}

// point is the per-key runtime state: the rule plus the deterministic
// draw counter and the fired tally.
type point struct {
	rule    Rule
	keyHash uint64
	seq     atomic.Uint64
	fired   atomic.Uint64
}

// Injector decides, deterministically per (seed, key, visit index),
// whether a registered fault fires. The zero-size nil injector disables
// everything.
type Injector struct {
	seed   uint64
	points map[string]*point
}

// New builds an injector from a seed and a rule set. Rules must name
// registered keys, probabilities must lie in [0, 1], and delays must be
// non-negative; duplicate keys are rejected (one rule per point keeps the
// draw sequence unambiguous).
func New(seed int64, rules []Rule) (*Injector, error) {
	in := &Injector{seed: uint64(seed), points: make(map[string]*point, len(rules))}
	for _, r := range rules {
		if _, ok := registry[r.Key]; !ok {
			return nil, fmt.Errorf("fault: unknown injection point %q (known: %s)",
				r.Key, strings.Join(Keys(), ", "))
		}
		if r.Prob < 0 || r.Prob > 1 || r.Prob != r.Prob {
			return nil, fmt.Errorf("fault: %s: probability %v outside [0, 1]", r.Key, r.Prob)
		}
		if r.Delay < 0 {
			return nil, fmt.Errorf("fault: %s: negative delay %v", r.Key, r.Delay)
		}
		if _, dup := in.points[r.Key]; dup {
			return nil, fmt.Errorf("fault: duplicate rule for %q", r.Key)
		}
		in.points[r.Key] = &point{rule: r, keyHash: fnv1a(r.Key)}
	}
	return in, nil
}

// Parse reads the -fault flag grammar: comma-separated "key=prob" or
// "key=prob:delay" entries, e.g.
//
//	rpc.latency=0.05:5ms,rpc.error=0.03,rpc.panic=0.01
//
// An empty spec yields no rules (and New of no rules injects nothing).
func Parse(spec string) ([]Rule, error) {
	var rules []Rule
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		key, rest, found := strings.Cut(part, "=")
		if !found {
			return nil, fmt.Errorf("fault: entry %q: want key=prob[:delay]", part)
		}
		r := Rule{Key: strings.TrimSpace(key)}
		probStr, delayStr, hasDelay := strings.Cut(rest, ":")
		if _, err := fmt.Sscanf(strings.TrimSpace(probStr), "%g", &r.Prob); err != nil {
			return nil, fmt.Errorf("fault: entry %q: bad probability %q", part, probStr)
		}
		if hasDelay {
			d, err := time.ParseDuration(strings.TrimSpace(delayStr))
			if err != nil {
				return nil, fmt.Errorf("fault: entry %q: bad delay %q: %v", part, delayStr, err)
			}
			r.Delay = d
		}
		rules = append(rules, r)
	}
	return rules, nil
}

// NewFromSpec is New over Parse — the one-call form the CLI flag uses.
func NewFromSpec(seed int64, spec string) (*Injector, error) {
	rules, err := Parse(spec)
	if err != nil {
		return nil, err
	}
	return New(seed, rules)
}

// Fire reports whether key's fault fires at this visit. Unarmed keys and
// the nil injector never fire.
func (in *Injector) Fire(key string) bool {
	if in == nil {
		return false
	}
	p, ok := in.points[key]
	if !ok || p.rule.Prob == 0 {
		return false
	}
	n := p.seq.Add(1) - 1
	// The draw is indexed by (seed, key, visit): deterministic under any
	// goroutine interleaving that preserves per-key visit counts.
	u := float64(splitmix64(in.seed^p.keyHash+n*0x9e3779b97f4a7c15)>>11) / (1 << 53)
	if u >= p.rule.Prob {
		return false
	}
	p.fired.Add(1)
	return true
}

// Delay reports whether key's fault fires, and if so for how long — the
// duration-typed points (latency, stall).
func (in *Injector) Delay(key string) (time.Duration, bool) {
	if !in.Fire(key) {
		return 0, false
	}
	return in.points[key].rule.Delay, true
}

// Counts snapshots the per-key fired tallies (keys that never fired are
// omitted). Nil injectors report nil.
func (in *Injector) Counts() map[string]uint64 {
	if in == nil {
		return nil
	}
	var out map[string]uint64
	for key, p := range in.points {
		if n := p.fired.Load(); n > 0 {
			if out == nil {
				out = make(map[string]uint64)
			}
			out[key] = n
		}
	}
	return out
}

// Enabled reports whether any rule is armed (false for nil injectors).
func (in *Injector) Enabled() bool { return in != nil && len(in.points) > 0 }

// splitmix64 is the SplitMix64 finalizer: a bijective mix whose outputs
// pass statistical tests even on sequential inputs.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// fnv1a hashes a key into the draw stream's offset (FNV-1a 64).
func fnv1a(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}
