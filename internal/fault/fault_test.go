package fault

import (
	"math"
	"strings"
	"testing"
	"time"
)

// TestNilInjectorIsInert checks the production default: every method on a
// nil injector no-ops.
func TestNilInjectorIsInert(t *testing.T) {
	var in *Injector
	if in.Fire(KeyRPCError) {
		t.Error("nil injector fired")
	}
	if d, ok := in.Delay(KeyRPCLatency); ok || d != 0 {
		t.Errorf("nil injector delayed: %v %v", d, ok)
	}
	if in.Counts() != nil {
		t.Error("nil injector reported counts")
	}
	if in.Enabled() {
		t.Error("nil injector enabled")
	}
}

// TestParseGrammar walks the -fault spec grammar.
func TestParseGrammar(t *testing.T) {
	rules, err := Parse(" rpc.latency=0.05:5ms, rpc.error=0.5 ,,ws.frame.drop=1")
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	want := []Rule{
		{Key: KeyRPCLatency, Prob: 0.05, Delay: 5 * time.Millisecond},
		{Key: KeyRPCError, Prob: 0.5},
		{Key: KeyWSFrameDrop, Prob: 1},
	}
	if len(rules) != len(want) {
		t.Fatalf("rules = %+v, want %+v", rules, want)
	}
	for i := range want {
		if rules[i] != want[i] {
			t.Errorf("rule %d = %+v, want %+v", i, rules[i], want[i])
		}
	}
	if r, err := Parse(""); err != nil || r != nil {
		t.Errorf("empty spec = %v, %v; want no rules, no error", r, err)
	}

	for _, bad := range []string{
		"rpc.latency",                 // no '='
		"rpc.latency=zebra",           // bad probability
		"rpc.latency=0.1:mghz",        // bad delay
		"nope.where=0.1",              // unregistered key (caught by New)
		"rpc.error=1.5",               // probability out of range (caught by New)
		"rpc.latency=0.1:-5ms",        // negative delay (caught by New)
		"rpc.error=0.1,rpc.error=0.2", // duplicate key (caught by New)
	} {
		rules, perr := Parse(bad)
		if perr == nil {
			_, perr = New(1, rules)
		}
		if perr == nil {
			t.Errorf("spec %q: want an error", bad)
		}
	}
}

// TestDeterminism checks the core contract: the same (seed, key, visit
// index) draws the same decision, and different seeds draw different
// sequences.
func TestDeterminism(t *testing.T) {
	const n = 2000
	mk := func(seed int64) []bool {
		in, err := NewFromSpec(seed, "rpc.error=0.3")
		if err != nil {
			t.Fatalf("NewFromSpec: %v", err)
		}
		out := make([]bool, n)
		for i := range out {
			out[i] = in.Fire(KeyRPCError)
		}
		return out
	}
	a, b, c := mk(42), mk(42), mk(43)
	same, diff := true, false
	for i := range a {
		same = same && a[i] == b[i]
		diff = diff || a[i] != c[i]
	}
	if !same {
		t.Error("same seed drew different sequences")
	}
	if !diff {
		t.Error("different seeds drew identical sequences")
	}
}

// TestFireRate checks the empirical rate tracks the configured
// probability, and that counts tally fires.
func TestFireRate(t *testing.T) {
	in, err := New(7, []Rule{{Key: KeyRPCError, Prob: 0.25}, {Key: KeyRPCPanic, Prob: 0}})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	const n = 20000
	fired := 0
	for i := 0; i < n; i++ {
		if in.Fire(KeyRPCError) {
			fired++
		}
		if in.Fire(KeyRPCPanic) {
			t.Fatal("probability-0 rule fired")
		}
		if in.Fire(KeyWSFrameDrop) {
			t.Fatal("unarmed key fired")
		}
	}
	if rate := float64(fired) / n; math.Abs(rate-0.25) > 0.02 {
		t.Errorf("fire rate = %.3f, want 0.25 +/- 0.02", rate)
	}
	counts := in.Counts()
	if counts[KeyRPCError] != uint64(fired) {
		t.Errorf("counts = %v, want %s=%d", counts, KeyRPCError, fired)
	}
	if _, ok := counts[KeyRPCPanic]; ok {
		t.Errorf("counts = %v; never-fired key present", counts)
	}
	if !in.Enabled() {
		t.Error("armed injector not enabled")
	}
}

// TestDelay checks the duration-typed points return their configured
// delay exactly when they fire.
func TestDelay(t *testing.T) {
	in, err := NewFromSpec(1, "ws.read.stall=1:25ms")
	if err != nil {
		t.Fatalf("NewFromSpec: %v", err)
	}
	d, ok := in.Delay(KeyWSReadStall)
	if !ok || d != 25*time.Millisecond {
		t.Errorf("Delay = %v, %v; want 25ms, true", d, ok)
	}
	if _, ok := in.Delay(KeyRPCLatency); ok {
		t.Error("unarmed delay fired")
	}
}

// TestRegistry checks the key registry surface the docs and the spec
// validation lean on.
func TestRegistry(t *testing.T) {
	keys := Keys()
	if len(keys) != 7 {
		t.Fatalf("Keys() = %v, want 7 registered points", keys)
	}
	for i := 1; i < len(keys); i++ {
		if keys[i-1] >= keys[i] {
			t.Fatalf("Keys() not sorted: %v", keys)
		}
	}
	for _, k := range keys {
		if Describe(k) == "" {
			t.Errorf("key %q has no description", k)
		}
	}
	if Describe("no.such.point") != "" {
		t.Error("unknown key has a description")
	}
	for _, k := range []string{KeyRPCLatency, KeyRPCError, KeyRPCPanic,
		KeyWSReadStall, KeyWSFrameDrop, KeyWSFrameTruncate, KeyWSWriteError} {
		if !strings.Contains(strings.Join(keys, " "), k) {
			t.Errorf("constant %q missing from registry", k)
		}
	}
}
