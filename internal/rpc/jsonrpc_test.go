package rpc

import (
	"encoding/json"
	"strings"
	"testing"
)

// TestParseRequestTable drives the envelope parser across the
// valid/invalid boundary.
func TestParseRequestTable(t *testing.T) {
	cases := []struct {
		name     string
		in       string
		wantCode int // 0 = success
		method   string
		notif    bool
	}{
		{name: "minimal", in: `{"jsonrpc":"2.0","id":1,"method":"scenario.list"}`, method: "scenario.list"},
		{name: "string id", in: `{"jsonrpc":"2.0","id":"a-7","method":"swap.solve","params":{}}`, method: "swap.solve"},
		{name: "null id is notification", in: `{"jsonrpc":"2.0","id":null,"method":"ping"}`, method: "ping", notif: true},
		{name: "absent id is notification", in: `{"jsonrpc":"2.0","method":"ping"}`, method: "ping", notif: true},
		{name: "array params", in: `{"jsonrpc":"2.0","id":2,"method":"m","params":[1,2]}`, method: "m"},
		{name: "surrounding whitespace", in: "\n\t {\"jsonrpc\":\"2.0\",\"id\":3,\"method\":\"m\"} \n", method: "m"},
		{name: "not json", in: `solve please`, wantCode: CodeParseError},
		{name: "empty", in: ``, wantCode: CodeParseError},
		{name: "trailing data", in: `{"jsonrpc":"2.0","id":1,"method":"m"}{"x":1}`, wantCode: CodeParseError},
		{name: "unknown field", in: `{"jsonrpc":"2.0","id":1,"method":"m","extra":true}`, wantCode: CodeParseError},
		{name: "batch rejected", in: `[{"jsonrpc":"2.0","id":1,"method":"m"}]`, wantCode: CodeInvalidRequest},
		{name: "batch after whitespace", in: "  [1,2]", wantCode: CodeInvalidRequest},
		{name: "wrong version", in: `{"jsonrpc":"1.0","id":1,"method":"m"}`, wantCode: CodeInvalidRequest},
		{name: "missing version", in: `{"id":1,"method":"m"}`, wantCode: CodeInvalidRequest},
		{name: "empty method", in: `{"jsonrpc":"2.0","id":1,"method":""}`, wantCode: CodeInvalidRequest},
		{name: "object id", in: `{"jsonrpc":"2.0","id":{"k":1},"method":"m"}`, wantCode: CodeInvalidRequest},
		{name: "array id", in: `{"jsonrpc":"2.0","id":[1],"method":"m"}`, wantCode: CodeInvalidRequest},
		{name: "scalar params", in: `{"jsonrpc":"2.0","id":1,"method":"m","params":7}`, wantCode: CodeInvalidParams},
		{name: "string params", in: `{"jsonrpc":"2.0","id":1,"method":"m","params":"x"}`, wantCode: CodeInvalidParams},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			req, rerr := ParseRequest([]byte(tc.in))
			if tc.wantCode != 0 {
				if rerr == nil {
					t.Fatalf("ParseRequest(%q): want error code %d, got success %+v", tc.in, tc.wantCode, req)
				}
				if rerr.Code != tc.wantCode {
					t.Fatalf("ParseRequest(%q): code = %d, want %d (%s)", tc.in, rerr.Code, tc.wantCode, rerr.Message)
				}
				return
			}
			if rerr != nil {
				t.Fatalf("ParseRequest(%q): unexpected error %v", tc.in, rerr)
			}
			if req.Method != tc.method {
				t.Errorf("method = %q, want %q", req.Method, tc.method)
			}
			if req.IsNotification() != tc.notif {
				t.Errorf("IsNotification() = %v, want %v", req.IsNotification(), tc.notif)
			}
		})
	}
}

// TestRequestRoundTrip checks that a parsed request re-marshals to an
// equivalent envelope (the ID and params survive byte-for-byte).
func TestRequestRoundTrip(t *testing.T) {
	in := `{"jsonrpc":"2.0","id":"q-42","method":"swap.solve","params":{"scenario":"\"table3\"","mc":true}}`
	req, rerr := ParseRequest([]byte(in))
	if rerr != nil {
		t.Fatalf("ParseRequest: %v", rerr)
	}
	out, err := json.Marshal(req)
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	again, rerr := ParseRequest(out)
	if rerr != nil {
		t.Fatalf("re-parse: %v", rerr)
	}
	if string(again.ID) != string(req.ID) || again.Method != req.Method || string(again.Params) != string(req.Params) {
		t.Fatalf("round trip drifted: %+v vs %+v", again, req)
	}
}

// TestResponseEncoding pins the response wire shape: success carries
// result and no error, failure carries error and no result, and an absent
// ID normalises to JSON null.
func TestResponseEncoding(t *testing.T) {
	ok := NewResponse(json.RawMessage("7"), map[string]int{"n": 3})
	data, err := json.Marshal(ok)
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	want := `{"jsonrpc":"2.0","id":7,"result":{"n":3}}`
	if string(data) != want {
		t.Errorf("success response = %s, want %s", data, want)
	}

	fail := NewErrorResponse(nil, Errorf(CodeMethodNotFound, "unknown method %q", "x"))
	data, err = json.Marshal(fail)
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	if !strings.Contains(string(data), `"id":null`) {
		t.Errorf("error response did not normalise absent id to null: %s", data)
	}
	if strings.Contains(string(data), `"result"`) {
		t.Errorf("error response carries a result: %s", data)
	}

	// Unencodable results degrade to an internal error, not a panic.
	bad := NewResponse(json.RawMessage("1"), map[string]any{"f": func() {}})
	if bad.Error == nil || bad.Error.Code != CodeInternalError {
		t.Errorf("unencodable result: got %+v, want internal error", bad)
	}
}

// TestErrorImplementsError checks the error plumbing used by asRPCError.
func TestErrorImplementsError(t *testing.T) {
	var err error = Errorf(CodeBudgetExceeded, "too slow")
	if got := err.Error(); !strings.Contains(got, "-32001") || !strings.Contains(got, "too slow") {
		t.Errorf("Error() = %q", got)
	}
}

// FuzzRPCRequest fuzzes the envelope parser: it must never panic, and any
// accepted request must satisfy its own invariants and re-parse after a
// marshal round trip.
func FuzzRPCRequest(f *testing.F) {
	f.Add([]byte(`{"jsonrpc":"2.0","id":1,"method":"swap.solve","params":{"scenario":"\"table3\""}}`))
	f.Add([]byte(`{"jsonrpc":"2.0","method":"ping"}`))
	f.Add([]byte(`[{"jsonrpc":"2.0","id":1,"method":"m"}]`))
	f.Add([]byte(`{"jsonrpc":"1.0"}`))
	f.Add([]byte(`{`))
	f.Add([]byte(` {"jsonrpc":"2.0","id":"x","method":"scenario.diff","params":[1]} `))
	f.Fuzz(func(t *testing.T, data []byte) {
		req, rerr := ParseRequest(data)
		if rerr != nil {
			return
		}
		if req.JSONRPC != Version {
			t.Fatalf("accepted request with version %q", req.JSONRPC)
		}
		if req.Method == "" {
			t.Fatal("accepted request with empty method")
		}
		out, err := json.Marshal(req)
		if err != nil {
			t.Fatalf("accepted request does not re-marshal: %v", err)
		}
		if _, rerr := ParseRequest(out); rerr != nil {
			t.Fatalf("accepted request does not re-parse: %v\nin:  %q\nout: %q", rerr, data, out)
		}
	})
}
