package rpc

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"testing"
	"time"
)

// wsMsg is the client-side demultiplexer: a WebSocket frame is either a
// response (ID set) or a swap.progress notification (Method set).
type wsMsg struct {
	JSONRPC string          `json:"jsonrpc"`
	ID      json.RawMessage `json:"id,omitempty"`
	Method  string          `json:"method,omitempty"`
	Params  json.RawMessage `json:"params,omitempty"`
	Result  json.RawMessage `json:"result,omitempty"`
	Error   *Error          `json:"error,omitempty"`
}

func (m wsMsg) isResponse() bool { return m.Method == "" }

// dialTest opens a WebSocket client against the test server.
func dialTest(t *testing.T, httpURL string) *WSConn {
	t.Helper()
	conn, err := DialWS("ws"+strings.TrimPrefix(httpURL, "http")+"/ws", 5*time.Second)
	if err != nil {
		t.Fatalf("DialWS: %v", err)
	}
	t.Cleanup(func() { conn.Close() })
	return conn
}

// readMsg reads one frame with a test deadline (the read itself has no
// timeout; the cleanup closing the connection unblocks a stuck reader).
func readMsg(t *testing.T, conn *WSConn) wsMsg {
	t.Helper()
	type read struct {
		data []byte
		err  error
	}
	ch := make(chan read, 1)
	go func() {
		data, err := conn.ReadMessage()
		ch <- read{data, err}
	}()
	select {
	case r := <-ch:
		if r.err != nil {
			t.Fatalf("ReadMessage: %v", r.err)
		}
		var m wsMsg
		if err := json.Unmarshal(r.data, &m); err != nil {
			t.Fatalf("decoding frame %q: %v", r.data, err)
		}
		return m
	case <-time.After(10 * time.Second):
		t.Fatal("timed out waiting for a frame")
	}
	panic("unreachable")
}

// TestWSSolve runs a request/response method over the WebSocket channel.
func TestWSSolve(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	conn := dialTest(t, ts.URL)
	if err := conn.WriteMessage([]byte(rpcCall(1, "swap.solve", `{"scenario":"tableIII"}`))); err != nil {
		t.Fatalf("write: %v", err)
	}
	m := readMsg(t, conn)
	if !m.isResponse() || m.Error != nil {
		t.Fatalf("frame = %+v, want success response", m)
	}
	var res SolveResult
	if err := json.Unmarshal(m.Result, &res); err != nil {
		t.Fatalf("decoding result: %v", err)
	}
	if res.Scenario != "tableIII" || len(res.Variants) == 0 {
		t.Fatalf("result = %+v", res)
	}
}

// TestWSSimulateStream runs a full stream: progress notifications with
// monotonically growing merged prefixes, then the terminal response.
func TestWSSimulateStream(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	conn := dialTest(t, ts.URL)
	if err := conn.WriteMessage([]byte(rpcCall(7, "swap.simulate",
		`{"scenario":"tableIII","runs":2000,"chunk":250,"everyPaths":250,"budgetMs":30000}`))); err != nil {
		t.Fatalf("write: %v", err)
	}
	var (
		snapshots int
		lastPaths int
		final     *SimulateResult
	)
	for final == nil {
		m := readMsg(t, conn)
		if m.isResponse() {
			if string(m.ID) != "7" {
				t.Fatalf("terminal response id = %s, want 7", m.ID)
			}
			if m.Error != nil {
				t.Fatalf("stream failed: %+v", m.Error)
			}
			final = new(SimulateResult)
			if err := json.Unmarshal(m.Result, final); err != nil {
				t.Fatalf("decoding result: %v", err)
			}
			continue
		}
		if m.Method != "swap.progress" {
			t.Fatalf("unexpected notification %q", m.Method)
		}
		var ev ProgressEvent
		if err := json.Unmarshal(m.Params, &ev); err != nil {
			t.Fatalf("decoding progress: %v", err)
		}
		if string(ev.ID) != "7" {
			t.Fatalf("progress id = %s, want 7", ev.ID)
		}
		if ev.Paths <= lastPaths {
			t.Fatalf("progress went backwards: %d after %d", ev.Paths, lastPaths)
		}
		if ev.Successes < 0 || ev.Successes > ev.Paths {
			t.Fatalf("successes = %d of %d paths", ev.Successes, ev.Paths)
		}
		lastPaths = ev.Paths
		snapshots++
	}
	if snapshots < 4 {
		t.Errorf("snapshots = %d, want >= 4 (2000 paths / 250 everyPaths)", snapshots)
	}
	if final.Paths != 2000 || final.Scenario != "tableIII" || final.Variant != "basic" {
		t.Errorf("final = %+v", final)
	}
	if final.Snapshots != snapshots {
		t.Errorf("final.Snapshots = %d, client saw %d", final.Snapshots, snapshots)
	}
	if final.SR < 0 || final.SR > 1 || final.Lo > final.SR || final.Hi < final.SR {
		t.Errorf("interval ordering broken: %+v", final)
	}
	if n := s.stats.streamsActive.Load(); n != 0 {
		t.Errorf("active streams after completion = %d", n)
	}
}

// TestWSSimulateCancelMidRun cancels a long stream after the first
// snapshot and checks the terminal error is CodeCanceled.
func TestWSSimulateCancelMidRun(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	conn := dialTest(t, ts.URL)
	if err := conn.WriteMessage([]byte(rpcCall(9, "swap.simulate",
		`{"scenario":"tableIII","runs":500000,"chunk":200,"everyPaths":200,"budgetMs":60000}`))); err != nil {
		t.Fatalf("write: %v", err)
	}
	// Wait for proof the stream is producing, then cancel it.
	first := readMsg(t, conn)
	if first.isResponse() {
		t.Fatalf("stream ended before cancellation: %+v", first)
	}
	if err := conn.WriteMessage([]byte(rpcCall(10, "swap.cancel", `{"id":9}`))); err != nil {
		t.Fatalf("write cancel: %v", err)
	}
	var sawCancelAck, sawTerminal bool
	for !sawCancelAck || !sawTerminal {
		m := readMsg(t, conn)
		switch {
		case !m.isResponse(): // late progress frames may interleave
		case string(m.ID) == "10":
			var ack struct {
				Canceled bool `json:"canceled"`
			}
			if err := json.Unmarshal(m.Result, &ack); err != nil || !ack.Canceled {
				t.Fatalf("cancel ack = %+v (%v), want canceled:true", m, err)
			}
			sawCancelAck = true
		case string(m.ID) == "9":
			if m.Error == nil || m.Error.Code != CodeCanceled {
				t.Fatalf("terminal frame = %+v, want code %d", m, CodeCanceled)
			}
			sawTerminal = true
		default:
			t.Fatalf("unexpected frame %+v", m)
		}
	}
	// Cancelling a dead stream reports canceled:false.
	if err := conn.WriteMessage([]byte(rpcCall(11, "swap.cancel", `{"id":9}`))); err != nil {
		t.Fatalf("write: %v", err)
	}
	for {
		m := readMsg(t, conn)
		if !m.isResponse() || string(m.ID) != "11" {
			continue
		}
		var ack struct {
			Canceled bool `json:"canceled"`
		}
		if err := json.Unmarshal(m.Result, &ack); err != nil || ack.Canceled {
			t.Fatalf("second cancel = %+v (%v), want canceled:false", m, err)
		}
		return
	}
}

// TestWSSimulateRequiresID checks that a simulate notification (no stream
// handle) is rejected.
func TestWSSimulateRequiresID(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	conn := dialTest(t, ts.URL)
	if err := conn.WriteMessage([]byte(`{"jsonrpc":"2.0","method":"swap.simulate","params":{"scenario":"tableIII"}}`)); err != nil {
		t.Fatalf("write: %v", err)
	}
	m := readMsg(t, conn)
	if m.Error == nil || m.Error.Code != CodeInvalidRequest {
		t.Fatalf("frame = %+v, want invalid request", m)
	}
}

// TestWSDuplicateStreamID checks that a second stream reusing a live
// stream's ID is rejected while the first keeps running.
func TestWSDuplicateStreamID(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	conn := dialTest(t, ts.URL)
	start := rpcCall(5, "swap.simulate",
		`{"scenario":"tableIII","runs":500000,"chunk":200,"everyPaths":200,"budgetMs":60000}`)
	if err := conn.WriteMessage([]byte(start)); err != nil {
		t.Fatalf("write: %v", err)
	}
	first := readMsg(t, conn) // stream is live once progress flows
	if first.isResponse() {
		t.Fatalf("stream ended immediately: %+v", first)
	}
	if err := conn.WriteMessage([]byte(start)); err != nil {
		t.Fatalf("write duplicate: %v", err)
	}
	for {
		m := readMsg(t, conn)
		if !m.isResponse() {
			continue // first stream's progress
		}
		if m.Error == nil || m.Error.Code != CodeInvalidRequest {
			t.Fatalf("duplicate response = %+v, want invalid request", m)
		}
		break
	}
	// Clean up the long stream.
	conn.WriteMessage([]byte(rpcCall(6, "swap.cancel", `{"id":5}`)))
}

// TestWSShutdownDrainsStreams starts a long stream, shuts the server
// down, and checks the client receives a CodeShuttingDown terminal
// response before the connection dies — the graceful-drain contract.
func TestWSShutdownDrainsStreams(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	conn := dialTest(t, ts.URL)
	if err := conn.WriteMessage([]byte(rpcCall(3, "swap.simulate",
		`{"scenario":"tableIII","runs":500000,"chunk":200,"everyPaths":200,"budgetMs":60000}`))); err != nil {
		t.Fatalf("write: %v", err)
	}
	first := readMsg(t, conn)
	if first.isResponse() {
		t.Fatalf("stream ended before shutdown: %+v", first)
	}

	shutdownErr := make(chan error, 1)
	go func() { shutdownErr <- s.Shutdown(contextWithTimeout(t, 10*time.Second)) }()

	for {
		m := readMsg(t, conn)
		if !m.isResponse() {
			continue // progress raced the cancellation
		}
		if string(m.ID) != "3" {
			t.Fatalf("unexpected response %+v", m)
		}
		if m.Error == nil || m.Error.Code != CodeShuttingDown {
			t.Fatalf("terminal frame = %+v, want code %d", m, CodeShuttingDown)
		}
		break
	}
	select {
	case err := <-shutdownErr:
		if err != nil {
			t.Fatalf("shutdown: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("shutdown did not return")
	}
	if n := s.stats.streamsActive.Load(); n != 0 {
		t.Errorf("active streams after shutdown = %d", n)
	}
}

// TestWSBadFramesAndUpgrade covers the handshake edges: /ws without an
// upgrade, and malformed JSON over an established socket.
func TestWSBadFramesAndUpgrade(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	resp, err := http.Get(ts.URL + "/ws")
	if err != nil {
		t.Fatalf("GET /ws: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest && resp.StatusCode != http.StatusUpgradeRequired {
		t.Errorf("plain GET /ws status = %d, want 400/426", resp.StatusCode)
	}

	conn := dialTest(t, ts.URL)
	if err := conn.WriteMessage([]byte(`{not json`)); err != nil {
		t.Fatalf("write: %v", err)
	}
	m := readMsg(t, conn)
	if m.Error == nil || m.Error.Code != CodeParseError {
		t.Fatalf("frame = %+v, want parse error", m)
	}
	// The connection survives a bad frame.
	if err := conn.WriteMessage([]byte(rpcCall(2, "scenario.list", ""))); err != nil {
		t.Fatalf("write after bad frame: %v", err)
	}
	m = readMsg(t, conn)
	if m.Error != nil || !m.isResponse() {
		t.Fatalf("frame = %+v, want scenario.list response", m)
	}
}

// TestWSStreamBudget checks a stream that outlives its budget ends with
// CodeBudgetExceeded.
func TestWSStreamBudget(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	conn := dialTest(t, ts.URL)
	if err := conn.WriteMessage([]byte(rpcCall(4, "swap.simulate",
		`{"scenario":"tableIII","runs":1000000,"chunk":200,"everyPaths":1000000,"budgetMs":100}`))); err != nil {
		t.Fatalf("write: %v", err)
	}
	for {
		m := readMsg(t, conn)
		if !m.isResponse() {
			continue
		}
		if m.Error == nil || m.Error.Code != CodeBudgetExceeded {
			t.Fatalf("terminal frame = %+v, want code %d", m, CodeBudgetExceeded)
		}
		return
	}
}

// TestWSConnCloseCancelsStreams checks that dropping the connection kills
// its streams server-side.
func TestWSConnCloseCancelsStreams(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	conn := dialTest(t, ts.URL)
	if err := conn.WriteMessage([]byte(rpcCall(8, "swap.simulate",
		`{"scenario":"tableIII","runs":500000,"chunk":200,"everyPaths":200,"budgetMs":60000}`))); err != nil {
		t.Fatalf("write: %v", err)
	}
	first := readMsg(t, conn)
	if first.isResponse() {
		t.Fatalf("stream ended immediately: %+v", first)
	}
	conn.Close()
	waitFor(t, func() bool { return s.stats.streamsActive.Load() == 0 },
		fmt.Sprintf("stream survived its connection: %d active", s.stats.streamsActive.Load()))
}
