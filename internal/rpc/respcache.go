package rpc

import (
	"container/list"
	"sync"
)

// respCache is the daemon-local serialized-response byte cache in front of
// the solve path: canonical solve key → the already-marshaled variants
// block of the response. A hit skips admission, the solver *and* the
// per-report marshal — the daemon answers a repeat quote with stored
// bytes. It complements, not duplicates, the other tiers: single-flight
// collapses only concurrent repeats, solvecache amortizes models but still
// re-runs the per-variant assembly and marshal, and the persistent store
// amortizes across processes but costs a disk read and decode per hit.
//
// Entries can never go stale — the key hashes every solve input — so
// eviction is purely a memory bound: least-recently-used, because quote
// traffic is hot-key skewed (the whole reason the cache exists).
type respCache struct {
	mu    sync.Mutex
	max   int
	bytes int64
	ll    *list.List // front = most recently used
	items map[string]*list.Element

	hits, misses, evictions uint64
}

// respEntry is one cached response body.
type respEntry struct {
	key string
	val solveValue
}

// newRespCache builds a cache bounded to max entries; max <= 0 disables
// caching (every get misses, puts are dropped).
func newRespCache(max int) *respCache {
	c := &respCache{max: max}
	if max > 0 {
		c.ll = list.New()
		c.items = make(map[string]*list.Element, max)
	}
	return c
}

// get returns the cached response under key, marking it most recently
// used.
func (c *respCache) get(key string) (solveValue, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.items == nil {
		c.misses++
		return solveValue{}, false
	}
	el, ok := c.items[key]
	if !ok {
		c.misses++
		return solveValue{}, false
	}
	c.hits++
	c.ll.MoveToFront(el)
	return el.Value.(*respEntry).val, true
}

// put stores a response under key, evicting the least recently used
// entries beyond the bound.
func (c *respCache) put(key string, val solveValue) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.items == nil {
		return
	}
	if el, ok := c.items[key]; ok {
		ent := el.Value.(*respEntry)
		c.bytes += int64(len(val.Variants)) - int64(len(ent.val.Variants))
		ent.val = val
		c.ll.MoveToFront(el)
		return
	}
	c.items[key] = c.ll.PushFront(&respEntry{key: key, val: val})
	c.bytes += int64(len(val.Variants))
	for c.ll.Len() > c.max {
		back := c.ll.Back()
		ent := back.Value.(*respEntry)
		c.ll.Remove(back)
		delete(c.items, ent.key)
		c.bytes -= int64(len(ent.val.Variants))
		c.evictions++
	}
}

// respCacheStats is the cache's swapd.stats block.
type respCacheStats struct {
	// Entries and Bytes describe the current contents; MaxEntries the
	// configured bound (0 = disabled).
	Entries    int   `json:"entries"`
	MaxEntries int   `json:"maxEntries"`
	Bytes      int64 `json:"bytes"`
	// Hits, Misses and Evictions are cumulative.
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Evictions uint64 `json:"evictions"`
}

// stats snapshots the cache.
func (c *respCache) stats() respCacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := respCacheStats{
		MaxEntries: c.max,
		Bytes:      c.bytes,
		Hits:       c.hits,
		Misses:     c.misses,
		Evictions:  c.evictions,
	}
	if st.MaxEntries < 0 {
		st.MaxEntries = 0
	}
	if c.ll != nil {
		st.Entries = c.ll.Len()
	}
	return st
}
