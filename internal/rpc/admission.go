package rpc

import (
	"context"
	"sync/atomic"
	"time"
)

// admission is the server's load-shedding front door: a bounded in-flight
// semaphore with a short, deadline-aware wait queue. A request that finds
// a free slot is admitted immediately; when the semaphore is saturated it
// may queue — but only up to queueDepth deep and only for queueWait (or
// its own context deadline, whichever is sooner). Anything beyond that is
// shed with CodeOverloaded and a retryAfterMs hint, so overload degrades
// into fast, explicit rejections instead of unbounded queueing: the
// service-layer analogue of the game's timeout discipline, where refusing
// to wait indefinitely is what keeps outcomes correct under adversarial
// delay.
//
// Only the expensive methods pass through admission (swap.solve,
// scenario.diff, swap.simulate streams — which hold their slot for the
// stream's lifetime). scenario.list, swapd.stats and /healthz stay
// exempt: observability must keep answering precisely when the daemon is
// shedding.
type admission struct {
	sem        chan struct{}
	queueDepth int64
	queueWait  time.Duration
	shedWindow time.Duration

	queued   atomic.Int64 // requests waiting for a slot right now
	admitted atomic.Uint64
	enqueued atomic.Uint64 // admissions that had to queue first
	shed     atomic.Uint64
	lastShed atomic.Int64 // UnixNano of the most recent shed, 0 = never
}

// newAdmission sizes the controller; the Config defaults flow in here.
func newAdmission(maxInflight, queueDepth int, queueWait, shedWindow time.Duration) *admission {
	return &admission{
		sem:        make(chan struct{}, maxInflight),
		queueDepth: int64(queueDepth),
		queueWait:  queueWait,
		shedWindow: shedWindow,
	}
}

// acquire claims an in-flight slot, queueing briefly when saturated. A nil
// return is an admission and must be paired with release; otherwise the
// returned error is the CodeOverloaded shed response.
func (a *admission) acquire(ctx context.Context) *Error {
	select {
	case a.sem <- struct{}{}:
		a.admitted.Add(1)
		return nil
	default:
	}
	// Saturated: take a queue slot if one is free.
	if a.queued.Add(1) > a.queueDepth {
		a.queued.Add(-1)
		return a.reject()
	}
	defer a.queued.Add(-1)
	a.enqueued.Add(1)
	wait := a.queueWait
	// Deadline-aware: never queue past the request's own deadline — the
	// caller would only discard the slot it waited for.
	if deadline, ok := ctx.Deadline(); ok {
		if until := time.Until(deadline); until < wait {
			wait = until
		}
	}
	timer := time.NewTimer(wait)
	defer timer.Stop()
	select {
	case a.sem <- struct{}{}:
		a.admitted.Add(1)
		return nil
	case <-timer.C:
		return a.reject()
	case <-ctx.Done():
		return a.reject()
	}
}

// release returns an admitted request's slot.
func (a *admission) release() { <-a.sem }

// reject records a shed and builds the CodeOverloaded response. The
// retryAfterMs hint tells well-behaved clients when a retry has a chance:
// one full queue wait from now, after the currently queued requests have
// either been admitted or shed.
func (a *admission) reject() *Error {
	a.shed.Add(1)
	a.lastShed.Store(time.Now().UnixNano())
	rerr := Errorf(CodeOverloaded, "overloaded: %d in flight and %d queued; retry after %dms",
		len(a.sem), a.queued.Load(), a.retryAfterMs())
	rerr.Data = map[string]any{"retryAfterMs": a.retryAfterMs()}
	return rerr
}

// retryAfterMs is the shed responses' backoff hint in milliseconds.
func (a *admission) retryAfterMs() int {
	ms := int(a.queueWait / time.Millisecond)
	if ms < 1 {
		ms = 1
	}
	return ms
}

// overloaded reports whether a shed happened within the shed window — the
// condition under which /healthz degrades to 503 so load balancers steer
// traffic away while the daemon recovers.
func (a *admission) overloaded() bool {
	last := a.lastShed.Load()
	return last != 0 && time.Since(time.Unix(0, last)) < a.shedWindow
}

// admissionStats snapshots the controller for swapd.stats.
type admissionStats struct {
	MaxInflight int    `json:"maxInflight"`
	InFlight    int    `json:"inFlight"`
	Queued      int64  `json:"queued"`
	Admitted    uint64 `json:"admitted"`
	QueuedTotal uint64 `json:"queuedTotal"`
	Shed        uint64 `json:"shed"`
	Overloaded  bool   `json:"overloaded"`
}

func (a *admission) stats() admissionStats {
	return admissionStats{
		MaxInflight: cap(a.sem),
		InFlight:    len(a.sem),
		Queued:      a.queued.Load(),
		Admitted:    a.admitted.Load(),
		QueuedTotal: a.enqueued.Load(),
		Shed:        a.shed.Load(),
		Overloaded:  a.overloaded(),
	}
}
