package rpc

import (
	"context"
	"encoding/json"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/fault"
)

// mustInjector builds a fault injector or fails the test.
func mustInjector(t *testing.T, seed int64, spec string) *fault.Injector {
	t.Helper()
	in, err := fault.NewFromSpec(seed, spec)
	if err != nil {
		t.Fatalf("NewFromSpec(%q): %v", spec, err)
	}
	return in
}

// TestSolvePanicIsolated checks panic isolation on the solve path: a
// panicking solve yields -32603 for its requester, bumps the recovered
// counter, and leaves the daemon serving.
func TestSolvePanicIsolated(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	s.solve = func(req resolvedSolve) (solveValue, error) { panic("boom") }

	resp, status := post(t, ts.URL, rpcCall(1, "swap.solve", solveParams(0)))
	if status != http.StatusOK {
		t.Errorf("status = %d, want 200 (the error is JSON-RPC level)", status)
	}
	if resp.Error == nil || resp.Error.Code != CodeInternalError {
		t.Fatalf("error = %+v, want %d", resp.Error, CodeInternalError)
	}
	if !strings.Contains(resp.Error.Message, "panicked") {
		t.Errorf("message = %q, want it to name the panic", resp.Error.Message)
	}
	if n := s.stats.panics.Load(); n != 1 {
		t.Errorf("panics recovered = %d, want 1", n)
	}

	// The daemon survived: an honest solve still works.
	s.solve = s.solveCell
	if resp, _ := post(t, ts.URL, rpcCall(2, "swap.solve", `{"scenario":"tableIII"}`)); resp.Error != nil {
		t.Errorf("solve after recovered panic: %+v", resp.Error)
	}
}

// TestSolvePanicSettlesWaiters checks the coalescing contract under a
// leader panic: the waiter is settled with ErrFlightPanicked, mapped to
// its own -32603 — never left hanging, never a dead daemon.
func TestSolvePanicSettlesWaiters(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	entered := make(chan struct{}, 2)
	release := make(chan struct{})
	s.solve = func(req resolvedSolve) (solveValue, error) {
		entered <- struct{}{}
		<-release
		panic("boom")
	}

	params := `{"scenario":"tableIII","budgetMs":10000}`
	responses := make(chan Response, 2)
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, _ := post(t, ts.URL, rpcCall(i+1, "swap.solve", params))
			responses <- resp
		}()
	}
	<-entered // the leader is inside the solve
	// The second request joins the leader's flight as a waiter.
	waitFor(t, func() bool { return s.flight.Stats().Waiters >= 1 }, "waiter never coalesced")
	close(release) // leader panics; Flight settles the waiter, then re-raises
	wg.Wait()
	close(responses)

	for resp := range responses {
		if resp.Error == nil || resp.Error.Code != CodeInternalError {
			t.Errorf("response = %+v, want %d for both leader and waiter", resp.Error, CodeInternalError)
		}
	}
	if n := s.stats.panics.Load(); n != 1 {
		t.Errorf("panics recovered = %d, want 1 (one leader panic)", n)
	}
}

// TestStreamPanicIsolated checks a panicking stream body becomes its
// terminal -32603, releases its admission slot, and leaves the
// connection serving.
func TestStreamPanicIsolated(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	s.stream = func(ctx context.Context, cancel context.CancelFunc, sess *wsSession, id json.RawMessage, cfg simulateConfig) {
		panic("boom")
	}
	conn := dialTest(t, ts.URL)
	if err := conn.WriteMessage([]byte(rpcCall(1, "swap.simulate", `{"scenario":"tableIII"}`))); err != nil {
		t.Fatalf("write: %v", err)
	}
	m := readMsg(t, conn)
	if m.Error == nil || m.Error.Code != CodeInternalError {
		t.Fatalf("terminal frame = %+v, want -32603", m)
	}
	if !strings.Contains(m.Error.Message, "stream panicked") {
		t.Errorf("message = %q, want the stream panic named", m.Error.Message)
	}
	if n := s.stats.panics.Load(); n != 1 {
		t.Errorf("panics recovered = %d, want 1", n)
	}
	waitFor(t, func() bool { return s.stats.streamsActive.Load() == 0 }, "panicked stream still active")
	if st := s.adm.stats(); st.InFlight != 0 {
		t.Errorf("admission inFlight = %d after stream panic, want 0", st.InFlight)
	}
	// The connection survives: a real (short) stream completes after it.
	s.stream = s.runStream
	if err := conn.WriteMessage([]byte(rpcCall(2, "swap.simulate",
		`{"scenario":"tableIII","runs":500,"budgetMs":30000}`))); err != nil {
		t.Fatalf("write after panic: %v", err)
	}
	for {
		m = readMsg(t, conn)
		if m.isResponse() && string(m.ID) == "2" {
			break
		}
	}
	if m.Error != nil {
		t.Fatalf("stream after recovered panic: %+v", m.Error)
	}
}

// TestWSInjectedPanic drives the call-path panic fault over the
// WebSocket channel: the panic becomes -32603 and both connection and
// daemon keep serving.
func TestWSInjectedPanic(t *testing.T) {
	s, ts := newTestServer(t, Config{Fault: mustInjector(t, 3, "rpc.panic=1")})
	conn := dialTest(t, ts.URL)
	if err := conn.WriteMessage([]byte(rpcCall(1, "swap.solve", `{"scenario":"tableIII"}`))); err != nil {
		t.Fatalf("write: %v", err)
	}
	m := readMsg(t, conn)
	if m.Error == nil || m.Error.Code != CodeInternalError {
		t.Fatalf("frame = %+v, want injected-panic -32603", m)
	}
	if n := s.stats.panics.Load(); n < 1 {
		t.Errorf("panics recovered = %d, want >= 1", n)
	}
	// The connection and daemon survive the recovered panic: the next call
	// still gets a response (another injected panic at probability 1, but
	// answered — never a dead connection).
	if err := conn.WriteMessage([]byte(rpcCall(2, "swapd.stats", ""))); err != nil {
		t.Fatalf("write after panic: %v", err)
	}
	for {
		m = readMsg(t, conn)
		if m.isResponse() && string(m.ID) == "2" {
			break
		}
	}
	if n := s.stats.panics.Load(); n < 2 {
		t.Errorf("panics recovered = %d, want >= 2 (the daemon kept answering)", n)
	}
}

// TestInjectedErrorAndLatency checks the rpc.error and rpc.latency fault
// points: the error surfaces as -32603 naming the injection, the latency
// stretches the request, and swapd.stats tallies both by registry key.
func TestInjectedErrorAndLatency(t *testing.T) {
	s, ts := newTestServer(t, Config{
		Fault: mustInjector(t, 5, "rpc.error=1,rpc.latency=1:50ms"),
	})
	start := time.Now()
	resp, _ := post(t, ts.URL, rpcCall(1, "swap.solve", `{"scenario":"tableIII"}`))
	if resp.Error == nil || resp.Error.Code != CodeInternalError {
		t.Fatalf("error = %+v, want injected -32603", resp.Error)
	}
	if !strings.Contains(resp.Error.Message, "injected fault") {
		t.Errorf("message = %q, want the injection named", resp.Error.Message)
	}
	if elapsed := time.Since(start); elapsed < 40*time.Millisecond {
		t.Errorf("request took %v, want >= ~50ms injected latency", elapsed)
	}
	counts := s.cfg.Fault.Counts()
	if counts[fault.KeyRPCError] < 1 || counts[fault.KeyRPCLatency] < 1 {
		t.Errorf("fault counts = %v, want both points fired", counts)
	}
}

// TestWSSlowLorisClosed checks the read deadline: a peer that starts a
// frame and stalls is disconnected once the read timeout passes, instead
// of holding the read loop (and the connection slot) forever.
func TestWSSlowLorisClosed(t *testing.T) {
	s, ts := newTestServer(t, Config{WSReadTimeout: 150 * time.Millisecond})
	conn := dialTest(t, ts.URL)

	// A whole request inside the window still answers.
	if err := conn.WriteMessage([]byte(rpcCall(1, "scenario.list", ""))); err != nil {
		t.Fatalf("write: %v", err)
	}
	if m := readMsg(t, conn); m.Error != nil {
		t.Fatalf("scenario.list = %+v", m.Error)
	}

	// Now drip one header byte and stall: the server must cut us off.
	if _, err := conn.conn.Write([]byte{0x81}); err != nil {
		t.Fatalf("raw write: %v", err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := conn.ReadMessage()
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("read returned a message from a half-sent frame")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("server kept a stalled connection past its read timeout")
	}
	waitFor(t, func() bool {
		s.connMu.Lock()
		defer s.connMu.Unlock()
		return len(s.conns) == 0
	}, "stalled connection never left the registry")
}

// TestWSWriteFaultCancelsStream checks the stalled-writer contract via
// the ws.write.error fault: when progress writes fail, the stream is
// cancelled rather than left blocking the engine, the failure is
// counted, and the admission slot comes back.
func TestWSWriteFaultCancelsStream(t *testing.T) {
	s, ts := newTestServer(t, Config{Fault: mustInjector(t, 9, "ws.write.error=1")})
	conn := dialTest(t, ts.URL)
	if err := conn.WriteMessage([]byte(rpcCall(1, "swap.simulate",
		`{"scenario":"tableIII","runs":500000,"chunk":200,"everyPaths":200,"budgetMs":60000}`))); err != nil {
		t.Fatalf("write: %v", err)
	}
	// Every server write fails (including the terminal response), so the
	// contract is observed server-side: the write failure is tallied, the
	// stream dies promptly, and its slot is released.
	waitFor(t, func() bool { return s.stats.wsWriteFailures.Load() >= 1 }, "write failure never tallied")
	waitFor(t, func() bool { return s.stats.streamsActive.Load() == 0 }, "stream outlived its dead writer")
	waitFor(t, func() bool { return s.adm.stats().InFlight == 0 }, "admission slot leaked")
}

// TestWSFrameDropFault checks dropped inbound frames vanish without a
// dispatch: the injector tallies the drop and no request is recorded.
func TestWSFrameDropFault(t *testing.T) {
	s, ts := newTestServer(t, Config{Fault: mustInjector(t, 11, "ws.frame.drop=1")})
	conn := dialTest(t, ts.URL)
	if err := conn.WriteMessage([]byte(rpcCall(1, "scenario.list", ""))); err != nil {
		t.Fatalf("write: %v", err)
	}
	waitFor(t, func() bool { return s.cfg.Fault.Counts()[fault.KeyWSFrameDrop] >= 1 },
		"drop point never fired")
	if n := s.stats.requests.Load(); n != 0 {
		t.Errorf("requests = %d, want 0 (the frame was dropped before dispatch)", n)
	}
}

// TestWSFrameTruncateFault checks truncated inbound frames surface as
// parse errors — corruption degrades to a JSON-RPC error, not a wedged
// connection.
func TestWSFrameTruncateFault(t *testing.T) {
	_, ts := newTestServer(t, Config{Fault: mustInjector(t, 13, "ws.frame.truncate=1")})
	conn := dialTest(t, ts.URL)
	if err := conn.WriteMessage([]byte(rpcCall(1, "scenario.list", ""))); err != nil {
		t.Fatalf("write: %v", err)
	}
	m := readMsg(t, conn)
	if m.Error == nil || m.Error.Code != CodeParseError {
		t.Fatalf("frame = %+v, want parse error from the truncated request", m)
	}
}

// TestWSReadStallFault checks the ws.read.stall point delays dispatch
// without breaking it.
func TestWSReadStallFault(t *testing.T) {
	s, ts := newTestServer(t, Config{Fault: mustInjector(t, 17, "ws.read.stall=1:30ms")})
	conn := dialTest(t, ts.URL)
	start := time.Now()
	if err := conn.WriteMessage([]byte(rpcCall(1, "scenario.list", ""))); err != nil {
		t.Fatalf("write: %v", err)
	}
	m := readMsg(t, conn)
	if m.Error != nil {
		t.Fatalf("scenario.list through a stalled read = %+v", m.Error)
	}
	if elapsed := time.Since(start); elapsed < 25*time.Millisecond {
		t.Errorf("response in %v, want >= ~30ms injected stall", elapsed)
	}
	if s.cfg.Fault.Counts()[fault.KeyWSReadStall] < 1 {
		t.Error("stall point never tallied")
	}
}
