package rpc

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math"
	"time"

	"repro/internal/qmc"
	"repro/internal/scenario"
	"repro/internal/solvecache"
	"repro/internal/variant"
)

// SolveParams are the parameters of swap.solve.
type SolveParams struct {
	// Scenario is a preset name (JSON string) or an inline Scenario
	// object (the cmd/scenarios -file schema).
	Scenario json.RawMessage `json:"scenario"`
	// Variant selects the cells: "" solves the scenario's own selection
	// (or the default trio), "all" every registered variant, otherwise a
	// comma-separated key list — the CLIs' -variant grammar.
	Variant string `json:"variant,omitempty"`
	// MC enables the per-variant Monte Carlo validation (off by default:
	// a quote needs the analytic solve; the simulation surface is
	// swap.simulate).
	MC bool `json:"mc,omitempty"`
	// Runs, CIWidth, Chunk and MaxPaths are the batch runner's Monte
	// Carlo knobs, meaningful with MC.
	Runs     int     `json:"runs,omitempty"`
	CIWidth  float64 `json:"ciWidth,omitempty"`
	Chunk    int     `json:"chunk,omitempty"`
	MaxPaths int     `json:"maxPaths,omitempty"`
	// Sampler selects the validation's sampling mode: "" or "pseudo"
	// (default), "antithetic", or "sobol" (see internal/qmc). Requests
	// with different samplers never coalesce.
	Sampler string `json:"sampler,omitempty"`
	// BudgetMs overrides the server's default request budget.
	BudgetMs int `json:"budgetMs,omitempty"`
}

// ReportJSON is one solved (scenario × variant) cell on the wire.
type ReportJSON struct {
	Key     string             `json:"key"`
	Desc    string             `json:"desc"`
	SR      float64            `json:"sr"`
	SRLabel string             `json:"srLabel"`
	Values  map[string]float64 `json:"values"`
	Lines   []string           `json:"lines"`
	MC      *MCCheckJSON       `json:"mc,omitempty"`
}

// MCCheckJSON is a variant's Monte Carlo validation on the wire.
type MCCheckJSON struct {
	Game              string         `json:"game"`
	Runs              int            `json:"runs"`
	Stopped           bool           `json:"stopped,omitempty"`
	Seed              int64          `json:"seed"`
	SR                float64        `json:"sr"`
	Lo                float64        `json:"lo"`
	Hi                float64        `json:"hi"`
	Analytic          float64        `json:"analytic"`
	Agrees            bool           `json:"agrees"`
	Stages            map[string]int `json:"stages,omitempty"`
	MeanDurationHours float64        `json:"meanDurationHours,omitempty"`
	// Sampler names the validation's sampling mode; omitted for the
	// pseudo default, so historical responses are unchanged.
	Sampler string `json:"sampler,omitempty"`
}

// SolveResult is swap.solve's result as a client decodes it. The server
// side responds with solveResultWire — identical JSON, with the variants
// block carried as preserialized bytes so cached responses skip the
// marshal; the two must stay field-compatible (see TestSolveResultWire).
type SolveResult struct {
	// Scenario echoes the solved scenario's name.
	Scenario string `json:"scenario"`
	// Variants holds one report per solved cell, in selection order.
	Variants []ReportJSON `json:"variants"`
	// Coalesced reports that this response was served from another
	// request's in-flight computation (single-flight dedup).
	Coalesced bool `json:"coalesced"`
	// Cached reports that this response was served from the daemon's
	// serialized-response cache without solving.
	Cached bool `json:"cached,omitempty"`
	// ElapsedUs is the request's server-side latency in microseconds.
	ElapsedUs int64 `json:"elapsedUs"`
}

// solveResultWire is the server-side form of SolveResult: the variants
// block is the bytes marshaled once at solve time (and served verbatim on
// every response-cache hit thereafter).
type solveResultWire struct {
	Scenario  string          `json:"scenario"`
	Variants  json.RawMessage `json:"variants"`
	Coalesced bool            `json:"coalesced"`
	Cached    bool            `json:"cached,omitempty"`
	ElapsedUs int64           `json:"elapsedUs"`
}

// resolvedSolve is a fully resolved solve request: the scenario, the
// variant keys, and the run options — everything the cell key hashes.
type resolvedSolve struct {
	sc   scenario.Scenario
	keys []string
	opts variant.RunOpts
}

// solveValue is the shared (coalesceable, cacheable) part of a solve
// response: the scenario name and the variants block already marshaled.
type solveValue struct {
	Scenario string
	Variants json.RawMessage
}

// decodeParams decodes a params object strictly (unknown fields are
// CodeInvalidParams, so typos fail loudly instead of being ignored).
func decodeParams(raw json.RawMessage, into any) *Error {
	if len(raw) == 0 {
		return Errorf(CodeInvalidParams, "missing params")
	}
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	if err := dec.Decode(into); err != nil {
		return Errorf(CodeInvalidParams, "decoding params: %v", err)
	}
	return nil
}

// resolveScenario turns the scenario parameter — a preset name or an
// inline definition — into a validated Scenario.
func resolveScenario(raw json.RawMessage) (scenario.Scenario, *Error) {
	if len(raw) == 0 {
		return scenario.Scenario{}, Errorf(CodeInvalidParams, "missing scenario")
	}
	var name string
	if err := json.Unmarshal(raw, &name); err == nil {
		sc, err := scenario.Lookup(name)
		if err != nil {
			return scenario.Scenario{}, Errorf(CodeInvalidParams, "%v", err)
		}
		return sc, nil
	}
	sc, err := scenario.Load(bytes.NewReader(raw))
	if err != nil {
		return scenario.Scenario{}, Errorf(CodeInvalidParams, "inline scenario: %v", err)
	}
	return sc, nil
}

// resolveSolve validates and resolves swap.solve parameters.
func (s *Server) resolveSolve(p SolveParams) (resolvedSolve, *Error) {
	sc, rerr := resolveScenario(p.Scenario)
	if rerr != nil {
		return resolvedSolve{}, rerr
	}
	games, err := variant.Resolve(p.Variant, sc)
	if err != nil {
		return resolvedSolve{}, Errorf(CodeInvalidParams, "%v", err)
	}
	keys := make([]string, len(games))
	for i, g := range games {
		keys[i] = g.Key()
	}
	if p.Runs < 0 || p.Runs > s.cfg.MaxRuns || p.MaxPaths < 0 || p.MaxPaths > s.cfg.MaxRuns {
		return resolvedSolve{}, Errorf(CodeInvalidParams,
			"runs/maxPaths must be in [0, %d]", s.cfg.MaxRuns)
	}
	if p.CIWidth < 0 || math.IsNaN(p.CIWidth) {
		return resolvedSolve{}, Errorf(CodeInvalidParams, "ciWidth must be >= 0")
	}
	if p.Chunk < 0 {
		return resolvedSolve{}, Errorf(CodeInvalidParams, "chunk must be >= 0")
	}
	sampler, err := qmc.ParseMode(p.Sampler)
	if err != nil {
		return resolvedSolve{}, Errorf(CodeInvalidParams, "%v", err)
	}
	opts := variant.RunOpts{
		Runs: p.Runs, CIWidth: p.CIWidth, ChunkSize: p.Chunk, MaxPaths: p.MaxPaths,
		MCWorkers: s.cfg.MCWorkers,
		SkipMC:    !p.MC,
		Sampler:   sampler,
		// The persistent store rides along unserialized (json:"-"), so the
		// canonical solve key below is unchanged by its presence.
		Store: s.cfg.Store,
	}
	return resolvedSolve{sc: sc, keys: keys, opts: opts}, nil
}

// solveKey is the single-flight key of a resolved solve: a canonical JSON
// encoding of everything that determines the answer. Two requests
// coalesce exactly when the underlying computation would be identical.
func solveKey(r resolvedSolve) string {
	key, err := json.Marshal(struct {
		Sc   scenario.Scenario
		Keys []string
		Opts variant.RunOpts
	}{r.sc, r.keys, r.opts})
	if err != nil {
		// Scenario and RunOpts are plain data; encoding cannot fail. Fall
		// back to an uncoalesceable key rather than wrongly sharing.
		return fmt.Sprintf("unkeyed-%p", &r)
	}
	return string(key)
}

// solveCell computes one coalesced solve: the (scenario × variant) row
// through the variant registry, models shared via solvecache.
func (s *Server) solveCell(req resolvedSolve) (solveValue, error) {
	opts := req.opts
	opts.Variants = "" // the scenario below carries the resolved keys
	sc := req.sc
	sc.Variants = req.keys
	row, err := variant.Run(sc, opts)
	if err != nil {
		return solveValue{}, err
	}
	reports := make([]ReportJSON, len(row.Reports))
	for i, r := range row.Reports {
		reports[i] = reportJSON(r)
	}
	data, err := json.Marshal(reports)
	if err != nil {
		return solveValue{}, err
	}
	return solveValue{Scenario: sc.Name, Variants: data}, nil
}

// reportJSON converts a variant report to its wire form.
func reportJSON(r variant.Report) ReportJSON {
	out := ReportJSON{
		Key: r.Key, Desc: r.Desc, SR: r.SR, SRLabel: r.SRLabel,
		Values: make(map[string]float64, len(r.Values)),
		Lines:  r.Lines,
	}
	for _, v := range r.Values {
		out.Values[v.Name] = v.V
	}
	if mc := r.MC; mc != nil {
		check := &MCCheckJSON{
			Game: mc.Game, Runs: mc.Runs, Stopped: mc.Stopped, Seed: mc.Seed,
			SR: mc.SR.P, Lo: mc.SR.Lo, Hi: mc.SR.Hi,
			Analytic: mc.Analytic, Agrees: mc.Agrees,
			MeanDurationHours: mc.MeanDurationHours,
		}
		if mc.Sampler.VarianceReduced() {
			check.Sampler = string(mc.Sampler)
		}
		if mc.Stages != nil {
			check.Stages = make(map[string]int, len(mc.Stages))
			for stage, n := range mc.Stages {
				check.Stages[string(stage)] = n
			}
		}
		out.MC = check
	}
	return out
}

// handleSolve serves swap.solve: resolve, hit the serialized-response
// cache, else admit, coalesce, solve, respond. The requester waits under
// its budget; the leader's computation runs to completion regardless,
// because its result serves every waiter. Admission control and fault
// injection run here rather than in call(): a response-cache hit answers
// from memory and must not burn an admission slot.
func (s *Server) handleSolve(ctx context.Context, raw json.RawMessage) (any, *Error) {
	start := time.Now()
	var p SolveParams
	if rerr := decodeParams(raw, &p); rerr != nil {
		return nil, rerr
	}
	req, rerr := s.resolveSolve(p)
	if rerr != nil {
		return nil, rerr
	}
	key := solveKey(req)
	if val, ok := s.resp.get(key); ok {
		return solveResultWire{
			Scenario:  val.Scenario,
			Variants:  val.Variants,
			Cached:    true,
			ElapsedUs: time.Since(start).Microseconds(),
		}, nil
	}
	ctx, cancel := context.WithTimeout(ctx, s.budget(p.BudgetMs))
	defer cancel()
	if rerr := s.adm.acquire(ctx); rerr != nil {
		return nil, rerr
	}
	defer s.adm.release()
	// Faults fire while the admission slot is held, so injected latency
	// creates genuine in-flight pressure.
	if rerr := s.injectFaults(ctx); rerr != nil {
		return nil, rerr
	}

	type outcome struct {
		val    solveValue
		shared bool
		err    error
	}
	ch := make(chan outcome, 1)
	s.inflight.Add(1)
	go func() {
		defer s.inflight.Done()
		// A solve panic must not kill the daemon: Flight settles its
		// waiters (they see ErrFlightPanicked) and re-raises on the
		// leader, whose requester gets the recover below.
		defer func() {
			if r := recover(); r != nil {
				s.stats.panics.Add(1)
				s.cfg.Logf("rpc: solve panicked (recovered): %v", r)
				ch <- outcome{err: Errorf(CodeInternalError, "internal error: solve panicked")}
			}
		}()
		// Waiters select on baseCtx (so shutdown unblocks them); the
		// requester's own deadline is enforced by the select below.
		val, shared, err := s.flight.Do(s.baseCtx, key, func() (solveValue, error) {
			return s.solve(req)
		})
		ch <- outcome{val, shared, err}
	}()
	select {
	case o := <-ch:
		if o.err != nil {
			return nil, s.asRPCError(o.err)
		}
		s.resp.put(key, o.val)
		return solveResultWire{
			Scenario:  o.val.Scenario,
			Variants:  o.val.Variants,
			Coalesced: o.shared,
			ElapsedUs: time.Since(start).Microseconds(),
		}, nil
	case <-ctx.Done():
		return nil, s.asRPCError(ctx.Err())
	}
}

// ListResult is scenario.list's result.
type ListResult struct {
	// Presets are the registered scenarios in registry order.
	Presets []PresetJSON `json:"presets"`
	// Variants are the registered variant games in registration order.
	Variants []VariantJSON `json:"variants"`
	// Default is the variant selection of scenarios that name none.
	Default []string `json:"default"`
}

// PresetJSON is one scenario preset on the wire.
type PresetJSON struct {
	Name        string   `json:"name"`
	Description string   `json:"description"`
	PStar       float64  `json:"pstar"`
	Collateral  float64  `json:"collateral"`
	BobBudget   float64  `json:"bobBudget"`
	Variants    []string `json:"variants,omitempty"`
}

// VariantJSON is one registered variant game on the wire.
type VariantJSON struct {
	Key  string `json:"key"`
	Desc string `json:"desc"`
}

// handleList serves scenario.list.
func (s *Server) handleList() (any, *Error) {
	reg := scenario.Registry()
	out := ListResult{
		Presets:  make([]PresetJSON, len(reg)),
		Default:  variant.DefaultKeys(),
		Variants: make([]VariantJSON, 0, len(variant.Keys())),
	}
	for i, sc := range reg {
		out.Presets[i] = PresetJSON{
			Name: sc.Name, Description: sc.Description,
			PStar: sc.PStar, Collateral: sc.Collateral, BobBudget: sc.BobBudget,
			Variants: sc.Variants,
		}
	}
	for _, key := range variant.Keys() {
		g, err := variant.Lookup(key)
		if err != nil {
			return nil, Errorf(CodeInternalError, "%v", err)
		}
		out.Variants = append(out.Variants, VariantJSON{Key: key, Desc: g.Describe()})
	}
	return out, nil
}

// DiffParams are the parameters of scenario.diff.
type DiffParams struct {
	// A and B are the two scenarios (preset names or inline objects).
	A json.RawMessage `json:"a"`
	B json.RawMessage `json:"b"`
	// Variant is the CLI -variant grammar; "" uses each scenario's own
	// selection.
	Variant string `json:"variant,omitempty"`
	// Eps is the report-value threshold (default 1e-4).
	Eps float64 `json:"eps,omitempty"`
	// MC enables Monte Carlo validation on both solves.
	MC bool `json:"mc,omitempty"`
	// Runs sizes the validation; BudgetMs bounds the request.
	Runs     int `json:"runs,omitempty"`
	BudgetMs int `json:"budgetMs,omitempty"`
}

// DiffResult is scenario.diff's result.
type DiffResult struct {
	A string `json:"a"`
	B string `json:"b"`
	// Params lists the parameter-level differences ("sigma: 0.1 -> 0.2").
	Params []string `json:"params"`
	// Text is the rendered per-variant diff (cmd/scenarios -diff).
	Text string `json:"text"`
}

// handleDiff serves scenario.diff: solve both rows, diff them. Diffs are
// rare operator queries; they run outside the single-flight layer.
func (s *Server) handleDiff(ctx context.Context, raw json.RawMessage) (any, *Error) {
	var p DiffParams
	if rerr := decodeParams(raw, &p); rerr != nil {
		return nil, rerr
	}
	if p.Runs < 0 || p.Runs > s.cfg.MaxRuns {
		return nil, Errorf(CodeInvalidParams, "runs must be in [0, %d]", s.cfg.MaxRuns)
	}
	eps := p.Eps
	if eps == 0 {
		eps = 1e-4
	}
	if eps < 0 {
		return nil, Errorf(CodeInvalidParams, "eps must be >= 0")
	}
	ctx, cancel := context.WithTimeout(ctx, s.budget(p.BudgetMs))
	defer cancel()
	opts := variant.RunOpts{
		Runs: p.Runs, MCWorkers: s.cfg.MCWorkers, SkipMC: !p.MC,
		Variants: p.Variant,
	}
	var rows [2]variant.ScenarioReport
	for i, raw := range []json.RawMessage{p.A, p.B} {
		sc, rerr := resolveScenario(raw)
		if rerr != nil {
			return nil, rerr
		}
		row, err := variant.Run(sc, opts)
		if err != nil {
			return nil, s.asRPCError(err)
		}
		rows[i] = row
		if err := ctx.Err(); err != nil {
			return nil, s.asRPCError(err)
		}
	}
	return DiffResult{
		A:      rows[0].Scenario.Name,
		B:      rows[1].Scenario.Name,
		Params: scenario.DiffParams(rows[0].Scenario, rows[1].Scenario),
		Text:   variant.Diff(rows[0], rows[1], eps),
	}, nil
}

// StatsResult is swapd.stats' result: the daemon's observable counters.
type StatsResult struct {
	UptimeMs int64 `json:"uptimeMs"`
	Draining bool  `json:"draining"`
	Requests struct {
		Total    uint64            `json:"total"`
		Errors   uint64            `json:"errors"`
		ByMethod map[string]uint64 `json:"byMethod"`
		// PanicsRecovered counts handler panics converted to -32603
		// responses instead of crashing the daemon.
		PanicsRecovered uint64 `json:"panicsRecovered"`
	} `json:"requests"`
	// Admission is the load-shedding front door's state and tallies.
	Admission  admissionStats `json:"admission"`
	Coalescing struct {
		Leaders  uint64  `json:"leaders"`
		Waiters  uint64  `json:"waiters"`
		HitRate  float64 `json:"hitRate"`
		InFlight int     `json:"inFlight"`
	} `json:"coalescing"`
	Streams struct {
		Started   uint64 `json:"started"`
		Active    int64  `json:"active"`
		Snapshots uint64 `json:"snapshots"`
		// WriteFailures counts streams cancelled after a progress write
		// failed or timed out; WatchdogCloses counts connections
		// force-closed after a stream outlived its budget by more than the
		// grace period.
		WriteFailures  uint64 `json:"writeFailures"`
		WatchdogCloses uint64 `json:"watchdogCloses"`
	} `json:"streams"`
	// Faults tallies injected faults by registry key (absent when no
	// injector is armed — the production default).
	Faults     map[string]uint64 `json:"faults,omitempty"`
	SolveCache struct {
		Models      int    `json:"models"`
		Limit       int    `json:"limit"`
		ModelHits   uint64 `json:"modelHits"`
		ModelMisses uint64 `json:"modelMisses"`
		Bypassed    uint64 `json:"bypassed"`
		Evicted     uint64 `json:"evicted"`
		SolveHits   uint64 `json:"solveHits"`
		SolveMisses uint64 `json:"solveMisses"`
	} `json:"solveCache"`
	// RespCache is the serialized-response byte cache in front of the
	// solve path (hits skip admission, solve and marshal).
	RespCache respCacheStats `json:"respCache"`
	// Store reports the persistent content-addressed store, when one is
	// configured.
	Store *StoreStatsJSON `json:"store,omitempty"`
}

// StoreStatsJSON is the persistent store's swapd.stats block.
type StoreStatsJSON struct {
	Dir       string `json:"dir"`
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Corrupt   uint64 `json:"corrupt"`
	Puts      uint64 `json:"puts"`
	PutErrors uint64 `json:"putErrors"`
}

// handleStats serves swapd.stats.
func (s *Server) handleStats() (any, *Error) {
	var out StatsResult
	out.UptimeMs = time.Since(s.stats.start).Milliseconds()
	out.Draining = s.draining.Load()
	out.Requests.Total = s.stats.requests.Load()
	out.Requests.Errors = s.stats.errors.Load()
	out.Requests.PanicsRecovered = s.stats.panics.Load()
	out.Admission = s.adm.stats()
	out.Faults = s.cfg.Fault.Counts()
	out.Requests.ByMethod = make(map[string]uint64)
	s.stats.methodMu.Lock()
	for m, n := range s.stats.byMethod {
		out.Requests.ByMethod[m] = n
	}
	s.stats.methodMu.Unlock()
	fs := s.flight.Stats()
	out.Coalescing.Leaders = fs.Leaders
	out.Coalescing.Waiters = fs.Waiters
	out.Coalescing.HitRate = fs.HitRate()
	out.Coalescing.InFlight = s.flight.InFlight()
	out.Streams.Started = s.stats.streamsStarted.Load()
	out.Streams.Active = s.stats.streamsActive.Load()
	out.Streams.Snapshots = s.stats.snapshots.Load()
	out.Streams.WriteFailures = s.stats.wsWriteFailures.Load()
	out.Streams.WatchdogCloses = s.stats.watchdogCloses.Load()
	cs := solvecache.ReadStats()
	out.SolveCache.Models = cs.Models
	out.SolveCache.Limit = cs.Limit
	out.SolveCache.ModelHits = cs.ModelHits
	out.SolveCache.ModelMisses = cs.ModelMisses
	out.SolveCache.Bypassed = cs.Bypassed
	out.SolveCache.Evicted = cs.Evicted
	out.SolveCache.SolveHits = cs.SolveHits
	out.SolveCache.SolveMisses = cs.SolveMisses
	out.RespCache = s.resp.stats()
	if s.cfg.Store != nil {
		st := s.cfg.Store.Stats()
		out.Store = &StoreStatsJSON{
			Dir:       s.cfg.Store.Dir(),
			Hits:      st.Hits,
			Misses:    st.Misses,
			Corrupt:   st.Corrupt,
			Puts:      st.Puts,
			PutErrors: st.PutErrors,
		}
	}
	return out, nil
}
