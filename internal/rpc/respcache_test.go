package rpc

import (
	"encoding/json"
	"net/http"
	"reflect"
	"testing"

	"repro/internal/store"
)

func TestRespCacheLRU(t *testing.T) {
	c := newRespCache(2)
	val := func(s string) solveValue {
		return solveValue{Scenario: s, Variants: json.RawMessage(`[{"key":"` + s + `"}]`)}
	}
	if _, ok := c.get("a"); ok {
		t.Fatal("hit on an empty cache")
	}
	c.put("a", val("a"))
	c.put("b", val("b"))
	if v, ok := c.get("a"); !ok || v.Scenario != "a" {
		t.Fatal("a not served back")
	}
	// a is now most recent; inserting c must evict b.
	c.put("c", val("c"))
	if _, ok := c.get("b"); ok {
		t.Fatal("LRU victim b still cached")
	}
	if _, ok := c.get("a"); !ok {
		t.Fatal("recently used a was evicted")
	}
	st := c.stats()
	if st.Entries != 2 || st.Evictions != 1 {
		t.Fatalf("stats = %+v, want 2 entries, 1 eviction", st)
	}
	if st.Bytes != int64(len(val("a").Variants)+len(val("c").Variants)) {
		t.Fatalf("bytes = %d, want exact payload accounting", st.Bytes)
	}
	// Overwrite adjusts byte accounting instead of double counting.
	c.put("a", solveValue{Scenario: "a", Variants: json.RawMessage(`[]`)})
	if st := c.stats(); st.Bytes != int64(2+len(val("c").Variants)) {
		t.Fatalf("bytes after overwrite = %d", st.Bytes)
	}
}

func TestRespCacheDisabled(t *testing.T) {
	c := newRespCache(-1)
	c.put("a", solveValue{Scenario: "a"})
	if _, ok := c.get("a"); ok {
		t.Fatal("disabled cache served a hit")
	}
	if st := c.stats(); st.MaxEntries != 0 || st.Entries != 0 || st.Misses != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestSolveResultWire pins the field compatibility between the server's
// preserialized response form and the client-facing SolveResult.
func TestSolveResultWire(t *testing.T) {
	wire := solveResultWire{
		Scenario:  "tableIII",
		Variants:  json.RawMessage(`[{"key":"basic","desc":"d","sr":0.5,"srLabel":"l","values":{"sr":0.5},"lines":["x"]}]`),
		Coalesced: true,
		Cached:    true,
		ElapsedUs: 7,
	}
	data, err := json.Marshal(wire)
	if err != nil {
		t.Fatal(err)
	}
	var res SolveResult
	if err := json.Unmarshal(data, &res); err != nil {
		t.Fatal(err)
	}
	if res.Scenario != "tableIII" || !res.Coalesced || !res.Cached || res.ElapsedUs != 7 {
		t.Fatalf("decoded %+v", res)
	}
	if len(res.Variants) != 1 || res.Variants[0].Key != "basic" || res.Variants[0].SR != 0.5 {
		t.Fatalf("variants decoded as %+v", res.Variants)
	}
	// Same JSON field set both ways (wire must never grow a field the
	// client type cannot see, or vice versa).
	var wireMap, resMap map[string]any
	resData, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(data, &wireMap); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(resData, &resMap); err != nil {
		t.Fatal(err)
	}
	wk := make([]string, 0)
	for k := range wireMap {
		wk = append(wk, k)
	}
	for _, k := range wk {
		if _, ok := resMap[k]; !ok {
			t.Errorf("wire field %q missing from SolveResult", k)
		}
	}
	if len(wireMap) != len(resMap) {
		t.Errorf("field sets differ: wire %d, client %d", len(wireMap), len(resMap))
	}
}

// TestRepeatSolveServedFromResponseCache pins the warm path: an identical
// repeat request is answered from cached bytes (cached:true, identical
// variants block) without consuming an admission slot, and the counters
// surface in swapd.stats.
func TestRepeatSolveServedFromResponseCache(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	body := rpcCall(1, "swap.solve", `{"scenario":"tableIII","variant":"basic"}`)
	resp, status := post(t, ts.URL, body)
	if status != http.StatusOK || resp.Error != nil {
		t.Fatalf("cold solve: status=%d error=%+v", status, resp.Error)
	}
	var cold SolveResult
	if err := json.Unmarshal(resp.Result, &cold); err != nil {
		t.Fatal(err)
	}
	if cold.Cached {
		t.Fatal("first request reported cached")
	}
	admitted := s.adm.stats().Admitted

	resp, _ = post(t, ts.URL, body)
	if resp.Error != nil {
		t.Fatalf("warm solve: %+v", resp.Error)
	}
	var warm SolveResult
	if err := json.Unmarshal(resp.Result, &warm); err != nil {
		t.Fatal(err)
	}
	if !warm.Cached {
		t.Fatal("repeat request not served from the response cache")
	}
	if !reflect.DeepEqual(cold.Variants, warm.Variants) {
		t.Fatal("cached variants differ from the solved ones")
	}
	if got := s.adm.stats().Admitted; got != admitted {
		t.Errorf("cache hit consumed an admission slot (admitted %d -> %d)", admitted, got)
	}
	if st := s.resp.stats(); st.Hits != 1 || st.Entries != 1 {
		t.Errorf("resp cache stats = %+v, want 1 hit, 1 entry", st)
	}
	// A different request must not hit the cache.
	resp, _ = post(t, ts.URL, rpcCall(2, "swap.solve", `{"scenario":"high-vol","variant":"basic"}`))
	if resp.Error != nil {
		t.Fatalf("distinct solve: %+v", resp.Error)
	}
	var other SolveResult
	if err := json.Unmarshal(resp.Result, &other); err != nil {
		t.Fatal(err)
	}
	if other.Cached {
		t.Error("distinct request wrongly served from cache")
	}
}

// TestSolveReadsThroughStore pins the cross-restart warm path: a fresh
// daemon pointed at a populated store dir answers from disk instead of
// re-solving, and swapd.stats carries the store counters.
func TestSolveReadsThroughStore(t *testing.T) {
	dir := t.TempDir()
	s1, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	_, ts1 := newTestServer(t, Config{Store: s1})
	body := rpcCall(1, "swap.solve", `{"scenario":"tableIII","variant":"basic"}`)
	resp, _ := post(t, ts1.URL, body)
	if resp.Error != nil {
		t.Fatalf("cold solve: %+v", resp.Error)
	}
	var cold SolveResult
	if err := json.Unmarshal(resp.Result, &cold); err != nil {
		t.Fatal(err)
	}
	if st := s1.Stats(); st.Puts == 0 {
		t.Fatalf("store stats after cold solve = %+v, want puts > 0", st)
	}

	// "Restart": a new server over a new handle to the same directory. Its
	// response cache is empty, so the request walks down to the store tier.
	s2, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	_, ts2 := newTestServer(t, Config{Store: s2})
	resp, _ = post(t, ts2.URL, body)
	if resp.Error != nil {
		t.Fatalf("warm solve: %+v", resp.Error)
	}
	var warm SolveResult
	if err := json.Unmarshal(resp.Result, &warm); err != nil {
		t.Fatal(err)
	}
	if warm.Cached {
		t.Error("store-served solve flagged as response-cache hit")
	}
	if !reflect.DeepEqual(cold.Variants, warm.Variants) {
		t.Fatal("store-served variants differ from the solved ones")
	}
	if st := s2.Stats(); st.Hits == 0 || st.Puts != 0 {
		t.Fatalf("warm store stats = %+v, want hits > 0 and no puts", st)
	}

	statsResp, _ := post(t, ts2.URL, rpcCall(2, "swapd.stats", ""))
	var st StatsResult
	if err := json.Unmarshal(statsResp.Result, &st); err != nil {
		t.Fatal(err)
	}
	if st.Store == nil || st.Store.Hits == 0 || st.Store.Dir != dir {
		t.Fatalf("swapd.stats store block = %+v", st.Store)
	}
}

// TestStatsCarriesCacheAndStoreBlocks exercises swapd.stats' new blocks.
func TestStatsCarriesCacheAndStoreBlocks(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, _ := post(t, ts.URL, rpcCall(1, "swapd.stats", ""))
	if resp.Error != nil {
		t.Fatalf("stats: %+v", resp.Error)
	}
	var st StatsResult
	if err := json.Unmarshal(resp.Result, &st); err != nil {
		t.Fatal(err)
	}
	if st.RespCache.MaxEntries != 1024 {
		t.Errorf("respCache.maxEntries = %d, want the 1024 default", st.RespCache.MaxEntries)
	}
	if st.Store != nil {
		t.Error("store block present without a configured store")
	}
	if st.SolveCache.Limit == 0 {
		t.Error("solveCache.limit missing")
	}
}
