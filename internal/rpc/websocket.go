package rpc

// A minimal RFC 6455 WebSocket implementation over the standard library —
// the repository bakes in no third-party modules, and the subscription
// channel needs only text messages, ping/pong keepalive and close
// handshakes. The server side upgrades a hijacked HTTP connection; the
// client side (used by the tests and tools/loadgen) dials ws:// URLs.
// Fragmented messages are reassembled; extensions and subprotocols are
// deliberately not negotiated.

import (
	"bufio"
	"crypto/rand"
	"crypto/sha1"
	"encoding/base64"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/url"
	"strings"
	"sync"
	"time"

	"repro/internal/fault"
)

// wsGUID is the key-hashing constant of RFC 6455 §1.3.
const wsGUID = "258EAFA5-E914-47DA-95CA-C5AB0DC85B11"

// wsMaxMessage bounds a reassembled message; larger payloads fail the read
// (a request or a progress snapshot is a few hundred bytes — a megabyte is
// already adversarial).
const wsMaxMessage = 1 << 20

// WebSocket opcodes (RFC 6455 §5.2).
const (
	opContinuation = 0x0
	opText         = 0x1
	opBinary       = 0x2
	opClose        = 0x8
	opPing         = 0x9
	opPong         = 0xA
)

// ErrWSClosed reports a read on a connection whose peer completed the
// close handshake.
var ErrWSClosed = errors.New("rpc: websocket closed")

// WSConn is one WebSocket connection. Reads must come from a single
// goroutine; writes are internally serialised so handler and stream
// goroutines can interleave messages safely.
type WSConn struct {
	conn   net.Conn
	br     *bufio.Reader
	client bool // client connections mask their frames

	// readTimeout, when > 0, bounds each inbound frame: the idle wait for
	// its first byte and the read of its payload share one deadline, so a
	// slow-loris peer drip-feeding bytes cannot hold the read loop past
	// it. writeTimeout, when > 0, bounds each outbound frame write, so a
	// stalled reader blocks a writer for at most that long. The server
	// sets both from its Config; client connections leave them zero.
	readTimeout  time.Duration
	writeTimeout time.Duration

	// fault, when non-nil, arms the WebSocket write fault (server side
	// only; the read-side faults live in the server's read loop).
	fault *fault.Injector

	wmu    sync.Mutex
	closed bool
}

// Upgrade performs the server side of the WebSocket handshake, hijacking
// the HTTP connection. On failure it writes the HTTP error itself and
// returns the reason.
func Upgrade(w http.ResponseWriter, r *http.Request) (*WSConn, error) {
	fail := func(status int, format string, args ...any) (*WSConn, error) {
		err := fmt.Errorf(format, args...)
		http.Error(w, err.Error(), status)
		return nil, err
	}
	if r.Method != http.MethodGet {
		return fail(http.StatusMethodNotAllowed, "websocket: method %s, want GET", r.Method)
	}
	if !headerContainsToken(r.Header, "Connection", "upgrade") || !headerContainsToken(r.Header, "Upgrade", "websocket") {
		return fail(http.StatusBadRequest, "websocket: not an upgrade request")
	}
	if v := r.Header.Get("Sec-WebSocket-Version"); v != "13" {
		return fail(http.StatusBadRequest, "websocket: unsupported version %q", v)
	}
	key := r.Header.Get("Sec-WebSocket-Key")
	if key == "" {
		return fail(http.StatusBadRequest, "websocket: missing Sec-WebSocket-Key")
	}
	hj, ok := w.(http.Hijacker)
	if !ok {
		return fail(http.StatusInternalServerError, "websocket: response writer cannot hijack")
	}
	conn, brw, err := hj.Hijack()
	if err != nil {
		return nil, fmt.Errorf("websocket: hijack: %w", err)
	}
	resp := "HTTP/1.1 101 Switching Protocols\r\n" +
		"Upgrade: websocket\r\n" +
		"Connection: Upgrade\r\n" +
		"Sec-WebSocket-Accept: " + acceptKey(key) + "\r\n\r\n"
	if _, err := brw.WriteString(resp); err != nil {
		conn.Close()
		return nil, fmt.Errorf("websocket: handshake write: %w", err)
	}
	if err := brw.Flush(); err != nil {
		conn.Close()
		return nil, fmt.Errorf("websocket: handshake flush: %w", err)
	}
	return &WSConn{conn: conn, br: brw.Reader}, nil
}

// DialWS opens a client WebSocket connection to a ws:// URL.
func DialWS(rawURL string, timeout time.Duration) (*WSConn, error) {
	u, err := url.Parse(rawURL)
	if err != nil {
		return nil, fmt.Errorf("websocket: %w", err)
	}
	if u.Scheme != "ws" {
		return nil, fmt.Errorf("websocket: unsupported scheme %q (only ws://)", u.Scheme)
	}
	host := u.Host
	if u.Port() == "" {
		host = net.JoinHostPort(u.Hostname(), "80")
	}
	conn, err := net.DialTimeout("tcp", host, timeout)
	if err != nil {
		return nil, fmt.Errorf("websocket: dial: %w", err)
	}
	if timeout > 0 {
		conn.SetDeadline(time.Now().Add(timeout))
		defer conn.SetDeadline(time.Time{})
	}
	nonce := make([]byte, 16)
	if _, err := rand.Read(nonce); err != nil {
		conn.Close()
		return nil, fmt.Errorf("websocket: nonce: %w", err)
	}
	key := base64.StdEncoding.EncodeToString(nonce)
	path := u.RequestURI()
	req := "GET " + path + " HTTP/1.1\r\n" +
		"Host: " + u.Host + "\r\n" +
		"Upgrade: websocket\r\n" +
		"Connection: Upgrade\r\n" +
		"Sec-WebSocket-Key: " + key + "\r\n" +
		"Sec-WebSocket-Version: 13\r\n\r\n"
	if _, err := conn.Write([]byte(req)); err != nil {
		conn.Close()
		return nil, fmt.Errorf("websocket: handshake write: %w", err)
	}
	br := bufio.NewReader(conn)
	resp, err := http.ReadResponse(br, &http.Request{Method: http.MethodGet, URL: u})
	if err != nil {
		conn.Close()
		return nil, fmt.Errorf("websocket: handshake read: %w", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusSwitchingProtocols {
		conn.Close()
		return nil, fmt.Errorf("websocket: handshake rejected: %s", resp.Status)
	}
	if got := resp.Header.Get("Sec-WebSocket-Accept"); got != acceptKey(key) {
		conn.Close()
		return nil, fmt.Errorf("websocket: bad Sec-WebSocket-Accept %q", got)
	}
	return &WSConn{conn: conn, br: br, client: true}, nil
}

// acceptKey computes the RFC 6455 accept token for a handshake key.
func acceptKey(key string) string {
	h := sha1.Sum([]byte(key + wsGUID))
	return base64.StdEncoding.EncodeToString(h[:])
}

// headerContainsToken reports whether a comma-separated header contains a
// token, case-insensitively ("Connection: keep-alive, Upgrade").
func headerContainsToken(h http.Header, name, token string) bool {
	for _, v := range h.Values(name) {
		for _, part := range strings.Split(v, ",") {
			if strings.EqualFold(strings.TrimSpace(part), token) {
				return true
			}
		}
	}
	return false
}

// ReadMessage returns the next text or binary message, reassembling
// fragments and transparently answering pings. It returns ErrWSClosed
// after the peer's close frame.
func (c *WSConn) ReadMessage() ([]byte, error) {
	var message []byte
	inFragment := false
	for {
		fin, opcode, payload, err := c.readFrame()
		if err != nil {
			return nil, err
		}
		switch opcode {
		case opPing:
			if err := c.writeFrame(opPong, payload); err != nil {
				return nil, err
			}
		case opPong:
			// Unsolicited pongs are legal keepalive; ignore.
		case opClose:
			// Echo the close handshake (ignoring errors: the peer may
			// already be gone) and surface the closure.
			c.writeFrame(opClose, payload)
			return nil, ErrWSClosed
		case opText, opBinary:
			if inFragment {
				return nil, errors.New("rpc: websocket: new data frame inside fragmented message")
			}
			message = append(message, payload...)
			if fin {
				return message, nil
			}
			inFragment = true
		case opContinuation:
			if !inFragment {
				return nil, errors.New("rpc: websocket: continuation without initial frame")
			}
			if len(message)+len(payload) > wsMaxMessage {
				return nil, errors.New("rpc: websocket: message too large")
			}
			message = append(message, payload...)
			if fin {
				return message, nil
			}
		default:
			return nil, fmt.Errorf("rpc: websocket: unsupported opcode %#x", opcode)
		}
	}
}

// WriteMessage sends one text message. It is safe for concurrent use.
func (c *WSConn) WriteMessage(payload []byte) error {
	return c.writeFrame(opText, payload)
}

// WriteJSON sends one JSON-encoded text message.
func (c *WSConn) WriteJSON(v any) error {
	data, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("rpc: websocket: encoding: %w", err)
	}
	return c.WriteMessage(data)
}

// Close sends a close frame (best-effort) and closes the connection.
func (c *WSConn) Close() error {
	c.wmu.Lock()
	if !c.closed {
		c.closed = true
		c.conn.SetWriteDeadline(time.Now().Add(time.Second))
		c.writeFrameLocked(opClose, nil)
	}
	c.wmu.Unlock()
	return c.conn.Close()
}

// readFrame reads one frame, unmasking client frames server-side. With a
// read timeout set, the whole frame — idle gap, header and payload — must
// arrive within one deadline.
func (c *WSConn) readFrame() (fin bool, opcode byte, payload []byte, err error) {
	if c.readTimeout > 0 {
		if err := c.conn.SetReadDeadline(time.Now().Add(c.readTimeout)); err != nil {
			return false, 0, nil, err
		}
	}
	var hdr [2]byte
	if _, err := io.ReadFull(c.br, hdr[:]); err != nil {
		return false, 0, nil, err
	}
	fin = hdr[0]&0x80 != 0
	if hdr[0]&0x70 != 0 {
		return false, 0, nil, errors.New("rpc: websocket: reserved bits set (extensions not negotiated)")
	}
	opcode = hdr[0] & 0x0F
	masked := hdr[1]&0x80 != 0
	length := uint64(hdr[1] & 0x7F)
	switch length {
	case 126:
		var ext [2]byte
		if _, err := io.ReadFull(c.br, ext[:]); err != nil {
			return false, 0, nil, err
		}
		length = uint64(binary.BigEndian.Uint16(ext[:]))
	case 127:
		var ext [8]byte
		if _, err := io.ReadFull(c.br, ext[:]); err != nil {
			return false, 0, nil, err
		}
		length = binary.BigEndian.Uint64(ext[:])
	}
	if length > wsMaxMessage {
		return false, 0, nil, fmt.Errorf("rpc: websocket: frame of %d bytes exceeds limit", length)
	}
	// RFC 6455 §5.1: client frames must be masked, server frames must not.
	if !c.client && !masked {
		return false, 0, nil, errors.New("rpc: websocket: unmasked client frame")
	}
	if c.client && masked {
		return false, 0, nil, errors.New("rpc: websocket: masked server frame")
	}
	var maskKey [4]byte
	if masked {
		if _, err := io.ReadFull(c.br, maskKey[:]); err != nil {
			return false, 0, nil, err
		}
	}
	payload = make([]byte, length)
	if _, err := io.ReadFull(c.br, payload); err != nil {
		return false, 0, nil, err
	}
	if masked {
		for i := range payload {
			payload[i] ^= maskKey[i%4]
		}
	}
	return fin, opcode, payload, nil
}

// writeFrame serialises one unfragmented frame under the write lock.
func (c *WSConn) writeFrame(opcode byte, payload []byte) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	if c.closed {
		return ErrWSClosed
	}
	return c.writeFrameLocked(opcode, payload)
}

func (c *WSConn) writeFrameLocked(opcode byte, payload []byte) error {
	if c.fault.Fire(fault.KeyWSWriteError) {
		return errors.New("rpc: websocket: injected fault: " + fault.KeyWSWriteError)
	}
	if c.writeTimeout > 0 {
		if err := c.conn.SetWriteDeadline(time.Now().Add(c.writeTimeout)); err != nil {
			return err
		}
	}
	header := make([]byte, 0, 14)
	header = append(header, 0x80|opcode)
	maskBit := byte(0)
	if c.client {
		maskBit = 0x80
	}
	switch {
	case len(payload) < 126:
		header = append(header, maskBit|byte(len(payload)))
	case len(payload) <= 0xFFFF:
		header = append(header, maskBit|126, byte(len(payload)>>8), byte(len(payload)))
	default:
		header = append(header, maskBit|127)
		var ext [8]byte
		binary.BigEndian.PutUint64(ext[:], uint64(len(payload)))
		header = append(header, ext[:]...)
	}
	body := payload
	if c.client {
		var maskKey [4]byte
		if _, err := rand.Read(maskKey[:]); err != nil {
			return fmt.Errorf("rpc: websocket: mask: %w", err)
		}
		header = append(header, maskKey[:]...)
		body = make([]byte, len(payload))
		for i, b := range payload {
			body[i] = b ^ maskKey[i%4]
		}
	}
	if _, err := c.conn.Write(append(header, body...)); err != nil {
		return err
	}
	return nil
}
