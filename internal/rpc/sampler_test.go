package rpc

import (
	"encoding/json"
	"net/http"
	"testing"
)

// TestSolveSamplerParam pins the sampler parameter end to end: a sobol
// solve succeeds and its MC check names the mode, the pseudo default
// omits the field (historical responses unchanged), an unknown mode is
// CodeInvalidParams, and requests with different samplers never share a
// single-flight key.
func TestSolveSamplerParam(t *testing.T) {
	s, ts := newTestServer(t, Config{})

	resp, status := post(t, ts.URL, rpcCall(1, "swap.solve",
		`{"scenario":"tableIII","variant":"basic","mc":true,"runs":400,"sampler":"sobol"}`))
	if status != http.StatusOK || resp.Error != nil {
		t.Fatalf("sobol solve failed: status=%d error=%+v", status, resp.Error)
	}
	var res SolveResult
	if err := json.Unmarshal(resp.Result, &res); err != nil {
		t.Fatalf("decoding result: %v", err)
	}
	if len(res.Variants) != 1 || res.Variants[0].MC == nil {
		t.Fatalf("result = %+v, want one variant with an MC check", res)
	}
	if got := res.Variants[0].MC.Sampler; got != "sobol" {
		t.Errorf("MC check sampler = %q, want sobol", got)
	}

	resp, _ = post(t, ts.URL, rpcCall(2, "swap.solve",
		`{"scenario":"tableIII","variant":"basic","mc":true,"runs":400}`))
	if resp.Error != nil {
		t.Fatalf("default solve failed: %+v", resp.Error)
	}
	res = SolveResult{} // Unmarshal merges into existing slice elements
	if err := json.Unmarshal(resp.Result, &res); err != nil {
		t.Fatalf("decoding result: %v", err)
	}
	if got := res.Variants[0].MC.Sampler; got != "" {
		t.Errorf("pseudo MC check sampler = %q, want omitted", got)
	}

	resp, _ = post(t, ts.URL, rpcCall(3, "swap.solve",
		`{"scenario":"tableIII","sampler":"halton"}`))
	if resp.Error == nil || resp.Error.Code != CodeInvalidParams {
		t.Fatalf("unknown sampler: error = %+v, want CodeInvalidParams", resp.Error)
	}

	key := func(sampler string) string {
		req, rerr := s.resolveSolve(SolveParams{
			Scenario: json.RawMessage(`"tableIII"`),
			Variant:  "basic", MC: true, Runs: 400, Sampler: sampler,
		})
		if rerr != nil {
			t.Fatalf("resolve sampler=%q: %+v", sampler, rerr)
		}
		return solveKey(req)
	}
	if key("pseudo") != key("") {
		t.Error("explicit pseudo and the default must coalesce")
	}
	if key("sobol") == key("pseudo") || key("antithetic") == key("pseudo") || key("sobol") == key("antithetic") {
		t.Error("different samplers must not share a single-flight key")
	}
}

// TestWSSimulateSampler streams a sobol simulation: the terminal result
// names the mode and carries the estimator half-width the adaptive
// stopper uses; an unknown mode fails before the stream starts.
func TestWSSimulateSampler(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	conn := dialTest(t, ts.URL)
	if err := conn.WriteMessage([]byte(rpcCall(11, "swap.simulate",
		`{"scenario":"tableIII","runs":2000,"chunk":250,"sampler":"sobol","budgetMs":30000}`))); err != nil {
		t.Fatalf("write: %v", err)
	}
	var final *SimulateResult
	for final == nil {
		m := readMsg(t, conn)
		if !m.isResponse() {
			continue
		}
		if m.Error != nil {
			t.Fatalf("stream failed: %+v", m.Error)
		}
		final = new(SimulateResult)
		if err := json.Unmarshal(m.Result, final); err != nil {
			t.Fatalf("decoding result: %v", err)
		}
	}
	if final.Sampler != "sobol" {
		t.Errorf("final sampler = %q, want sobol", final.Sampler)
	}
	if final.Paths != 2000 {
		t.Errorf("paths = %d, want 2000", final.Paths)
	}
	if final.EstHalfWidth <= 0 || final.EstHalfWidth >= 1 {
		t.Errorf("estimator half-width = %v, want in (0, 1)", final.EstHalfWidth)
	}

	if err := conn.WriteMessage([]byte(rpcCall(12, "swap.simulate",
		`{"scenario":"tableIII","runs":100,"sampler":"halton"}`))); err != nil {
		t.Fatalf("write: %v", err)
	}
	m := readMsg(t, conn)
	if m.Error == nil || m.Error.Code != CodeInvalidParams {
		t.Fatalf("unknown sampler: frame = %+v, want CodeInvalidParams", m)
	}
}
