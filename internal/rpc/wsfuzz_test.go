package rpc

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"net"
	"testing"
	"time"
)

// byteConn is a net.Conn whose read side replays a fixed byte stream and
// whose write side discards — the harness FuzzWSFrame feeds raw frame
// bytes through.
type byteConn struct {
	r *bytes.Reader
}

func (c *byteConn) Read(p []byte) (int, error)         { return c.r.Read(p) }
func (c *byteConn) Write(p []byte) (int, error)        { return len(p), nil }
func (c *byteConn) Close() error                       { return nil }
func (c *byteConn) LocalAddr() net.Addr                { return &net.TCPAddr{} }
func (c *byteConn) RemoteAddr() net.Addr               { return &net.TCPAddr{} }
func (c *byteConn) SetDeadline(t time.Time) error      { return nil }
func (c *byteConn) SetReadDeadline(t time.Time) error  { return nil }
func (c *byteConn) SetWriteDeadline(t time.Time) error { return nil }

// maskFrame builds one masked client frame for the seed corpus.
func maskFrame(fin bool, opcode byte, payload []byte) []byte {
	var b []byte
	first := opcode
	if fin {
		first |= 0x80
	}
	b = append(b, first)
	switch {
	case len(payload) < 126:
		b = append(b, 0x80|byte(len(payload)))
	case len(payload) <= 0xFFFF:
		b = append(b, 0x80|126, byte(len(payload)>>8), byte(len(payload)))
	default:
		var ext [8]byte
		binary.BigEndian.PutUint64(ext[:], uint64(len(payload)))
		b = append(b, 0x80|127)
		b = append(b, ext[:]...)
	}
	key := [4]byte{0x12, 0x34, 0x56, 0x78}
	b = append(b, key[:]...)
	for i, p := range payload {
		b = append(b, p^key[i%4])
	}
	return b
}

// FuzzWSFrame feeds arbitrary bytes through the server-side WebSocket
// frame reader: whatever the wire carries, ReadMessage must return data
// or an error — never panic, never allocate past the message cap.
func FuzzWSFrame(f *testing.F) {
	f.Add(maskFrame(true, opText, []byte(`{"jsonrpc":"2.0","id":1,"method":"scenario.list"}`)))
	f.Add(maskFrame(true, opBinary, []byte{0x00, 0xFF}))
	f.Add(maskFrame(true, opPing, []byte("ping")))
	f.Add(maskFrame(true, opClose, nil))
	// A fragmented message: text start + continuation finish.
	f.Add(append(maskFrame(false, opText, []byte("hel")), maskFrame(true, opContinuation, []byte("lo"))...))
	// Protocol violations: unmasked client frame, reserved bits, a frame
	// whose declared length exceeds the cap, a bare continuation, and a
	// truncated header.
	f.Add([]byte{0x81, 0x05, 'h', 'e', 'l', 'l', 'o'})
	f.Add([]byte{0xF1, 0x80, 0x12, 0x34, 0x56, 0x78})
	f.Add([]byte{0x81, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF})
	f.Add(maskFrame(true, opContinuation, []byte("orphan")))
	f.Add([]byte{0x81})

	f.Fuzz(func(t *testing.T, data []byte) {
		conn := &WSConn{
			conn:        &byteConn{r: bytes.NewReader(data)},
			br:          bufio.NewReader(bytes.NewReader(data)),
			readTimeout: time.Second,
		}
		// Drain a bounded number of messages; a close frame, a protocol
		// error, or stream exhaustion all end the loop.
		for i := 0; i < 16; i++ {
			msg, err := conn.ReadMessage()
			if err != nil {
				return
			}
			if len(msg) > wsMaxMessage {
				t.Fatalf("message of %d bytes escaped the %d cap", len(msg), wsMaxMessage)
			}
		}
	})
}
