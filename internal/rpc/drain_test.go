package rpc

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"
)

// newDrainTestServer exposes an already-built Server over httptest;
// Close is called explicitly by the test (for the goroutine accounting)
// and again, idempotently, by the cleanup.
func newDrainTestServer(t *testing.T, s *Server) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return ts
}

// TestGracefulDrainUnderLoad is the drain contract under concurrent
// load: with several live WebSocket streams and a POST burst in flight,
// Shutdown must hand every request a terminal response — a result,
// CodeShuttingDown, or CodeCanceled — and leave no goroutines behind.
func TestGracefulDrainUnderLoad(t *testing.T) {
	base := runtime.NumGoroutine()

	s := NewServer(Config{})
	ts := newDrainTestServer(t, s)
	// A slow solve keeps POSTs genuinely in flight across the drain.
	s.solve = func(req resolvedSolve) (solveValue, error) {
		time.Sleep(50 * time.Millisecond)
		return solveValue{Scenario: req.sc.Name}, nil
	}

	// Several live streams, each proven producing before the drain.
	const streams = 4
	conns := make([]*WSConn, streams)
	for i := range conns {
		conn, err := DialWS("ws"+strings.TrimPrefix(ts.URL, "http")+"/ws", 5*time.Second)
		if err != nil {
			t.Fatalf("DialWS: %v", err)
		}
		conns[i] = conn
		if err := conn.WriteMessage([]byte(rpcCall(1, "swap.simulate",
			`{"scenario":"tableIII","runs":500000,"chunk":200,"everyPaths":200,"budgetMs":60000}`))); err != nil {
			t.Fatalf("write: %v", err)
		}
		if first := readMsg(t, conn); first.isResponse() {
			t.Fatalf("stream %d ended before the drain: %+v", i, first)
		}
	}

	// A POST burst racing the shutdown, on a dedicated transport so its
	// connections can be torn down for the goroutine accounting.
	tr := &http.Transport{}
	client := &http.Client{Transport: tr, Timeout: 10 * time.Second}
	const posts = 16
	type postResult struct {
		resp Response
		err  error
	}
	results := make(chan postResult, posts)
	var wg sync.WaitGroup
	for i := 0; i < posts; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			body := rpcCall(i+1, "swap.solve", solveParams(i))
			httpResp, err := client.Post(ts.URL+"/rpc", "application/json", strings.NewReader(body))
			if err != nil {
				results <- postResult{err: err}
				return
			}
			defer httpResp.Body.Close()
			data, err := io.ReadAll(httpResp.Body)
			if err != nil {
				results <- postResult{err: err}
				return
			}
			var r Response
			if err := json.Unmarshal(data, &r); err != nil {
				results <- postResult{err: fmt.Errorf("decoding %q: %w", data, err)}
				return
			}
			results <- postResult{resp: r}
		}()
	}

	// Let part of the burst get in flight, then drain.
	time.Sleep(20 * time.Millisecond)
	shutdownErr := make(chan error, 1)
	go func() { shutdownErr <- s.Shutdown(contextWithTimeout(t, 15*time.Second)) }()

	// Every stream receives a terminal response before its connection dies.
	for i, conn := range conns {
		for {
			m := readMsg(t, conn)
			if !m.isResponse() {
				continue // progress racing the cancellation
			}
			if m.Error == nil || m.Error.Code != CodeShuttingDown {
				t.Errorf("stream %d terminal = %+v, want code %d", i, m, CodeShuttingDown)
			}
			break
		}
	}

	// Every POST receives a terminal response: a result, or an explicit
	// shutdown/cancellation error — never a hung or dropped connection.
	wg.Wait()
	close(results)
	var ok, refused int
	for r := range results {
		switch {
		case r.err != nil:
			t.Errorf("POST under drain failed at the transport level: %v", r.err)
		case r.resp.Error == nil:
			ok++
		case r.resp.Error.Code == CodeShuttingDown || r.resp.Error.Code == CodeCanceled:
			refused++
		default:
			t.Errorf("POST under drain = %+v, want result or shutdown error", r.resp.Error)
		}
	}
	if ok+refused != posts {
		t.Errorf("terminal responses = %d ok + %d refused, want %d total", ok, refused, posts)
	}

	select {
	case err := <-shutdownErr:
		if err != nil {
			t.Fatalf("shutdown: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("shutdown did not return")
	}
	if n := s.stats.streamsActive.Load(); n != 0 {
		t.Errorf("active streams after drain = %d", n)
	}

	// Goroutine hygiene: tear down the clients and the listener, then the
	// count must return to (about) the pre-server baseline.
	for _, conn := range conns {
		conn.Close()
	}
	tr.CloseIdleConnections()
	ts.Close()
	waitFor(t, func() bool { return runtime.NumGoroutine() <= base+5 },
		fmt.Sprintf("goroutines leaked: %d now vs %d at baseline", runtime.NumGoroutine(), base))
}
