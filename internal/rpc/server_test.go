package rpc

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/scenario"
)

// contextWithTimeout builds a test-scoped context.
func contextWithTimeout(t *testing.T, d time.Duration) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), d)
	t.Cleanup(cancel)
	return ctx
}

// newTestServer spins up a Server behind httptest.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := NewServer(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

// post sends one JSON-RPC request over HTTP and decodes the response.
func post(t *testing.T, url, body string) (Response, int) {
	t.Helper()
	resp, err := http.Post(url+"/rpc", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST: %v", err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("reading response: %v", err)
	}
	if resp.StatusCode == http.StatusNoContent {
		return Response{}, resp.StatusCode
	}
	var r Response
	if err := json.Unmarshal(data, &r); err != nil {
		t.Fatalf("decoding response %q: %v", data, err)
	}
	return r, resp.StatusCode
}

// rpcCall builds a request envelope with an object params payload.
func rpcCall(id int, method, params string) string {
	if params == "" {
		return fmt.Sprintf(`{"jsonrpc":"2.0","id":%d,"method":%q}`, id, method)
	}
	return fmt.Sprintf(`{"jsonrpc":"2.0","id":%d,"method":%q,"params":%s}`, id, method, params)
}

// TestSolvePreset solves a preset end to end over HTTP.
func TestSolvePreset(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, status := post(t, ts.URL, rpcCall(1, "swap.solve", `{"scenario":"tableIII"}`))
	if status != http.StatusOK || resp.Error != nil {
		t.Fatalf("solve failed: status=%d error=%+v", status, resp.Error)
	}
	var res SolveResult
	if err := json.Unmarshal(resp.Result, &res); err != nil {
		t.Fatalf("decoding result: %v", err)
	}
	if res.Scenario != "tableIII" {
		t.Errorf("scenario = %q, want tableIII", res.Scenario)
	}
	if len(res.Variants) == 0 {
		t.Fatal("no variants solved")
	}
	for _, v := range res.Variants {
		if v.SR < 0 || v.SR > 1 {
			t.Errorf("variant %s: SR = %v out of [0,1]", v.Key, v.SR)
		}
		if v.MC != nil {
			t.Errorf("variant %s: MC check present without mc:true", v.Key)
		}
	}
}

// TestSolveInlineScenario solves an inline scenario definition, with MC
// validation on a named variant.
func TestSolveInlineScenario(t *testing.T) {
	sc, err := scenario.Lookup("tableIII")
	if err != nil {
		t.Fatalf("lookup: %v", err)
	}
	sc.Name = "inline-test"
	sc.MCRuns = 400
	sc.Variants = nil
	inline, err := json.Marshal(sc)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	_, ts := newTestServer(t, Config{})
	resp, _ := post(t, ts.URL, rpcCall(1, "swap.solve",
		`{"scenario":`+string(inline)+`,"variant":"basic","mc":true}`))
	if resp.Error != nil {
		t.Fatalf("solve failed: %+v", resp.Error)
	}
	var res SolveResult
	if err := json.Unmarshal(resp.Result, &res); err != nil {
		t.Fatalf("decoding result: %v", err)
	}
	if len(res.Variants) != 1 || res.Variants[0].Key != "basic" {
		t.Fatalf("variants = %+v, want exactly [basic]", res.Variants)
	}
	mc := res.Variants[0].MC
	if mc == nil {
		t.Fatal("mc:true produced no Monte Carlo check")
	}
	if mc.Runs != 400 {
		t.Errorf("mc.Runs = %d, want 400", mc.Runs)
	}
	if !mc.Agrees {
		t.Errorf("Monte Carlo disagrees with analytic SR: %+v", mc)
	}
}

// TestHTTPErrorSurface walks the error taxonomy over HTTP.
func TestHTTPErrorSurface(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	cases := []struct {
		name     string
		body     string
		wantCode int
	}{
		{"unknown method", rpcCall(1, "swap.frobnicate", ""), CodeMethodNotFound},
		{"bad json", `{"jsonrpc":`, CodeParseError},
		{"batch", `[` + rpcCall(1, "scenario.list", "") + `]`, CodeInvalidRequest},
		{"missing params", rpcCall(1, "swap.solve", ""), CodeInvalidParams},
		{"unknown preset", rpcCall(1, "swap.solve", `{"scenario":"no-such"}`), CodeInvalidParams},
		{"param typo", rpcCall(1, "swap.solve", `{"scenario":"tableIII","runz":9}`), CodeInvalidParams},
		{"bad variant", rpcCall(1, "swap.solve", `{"scenario":"tableIII","variant":"bogus"}`), CodeInvalidParams},
		{"negative runs", rpcCall(1, "swap.solve", `{"scenario":"tableIII","runs":-1}`), CodeInvalidParams},
		{"runs over cap", rpcCall(1, "swap.solve", `{"scenario":"tableIII","runs":2000000}`), CodeInvalidParams},
		{"simulate over http", rpcCall(1, "swap.simulate", `{"scenario":"tableIII"}`), CodeInvalidRequest},
		{"cancel over http", rpcCall(1, "swap.cancel", `{"id":1}`), CodeInvalidRequest},
		{"inline scenario invalid", rpcCall(1, "swap.solve", `{"scenario":{"name":"x","params":{},"pstar":-2}}`), CodeInvalidParams},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, _ := post(t, ts.URL, tc.body)
			if resp.Error == nil {
				t.Fatalf("want error code %d, got success", tc.wantCode)
			}
			if resp.Error.Code != tc.wantCode {
				t.Fatalf("code = %d (%s), want %d", resp.Error.Code, resp.Error.Message, tc.wantCode)
			}
		})
	}

	// Non-POST is rejected at the HTTP layer.
	get, err := http.Get(ts.URL + "/rpc")
	if err != nil {
		t.Fatalf("GET: %v", err)
	}
	get.Body.Close()
	if get.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /rpc status = %d, want 405", get.StatusCode)
	}
}

// TestNotificationGetsNoBody checks that notifications return 204 with no
// response envelope.
func TestNotificationGetsNoBody(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	_, status := post(t, ts.URL, `{"jsonrpc":"2.0","method":"scenario.list"}`)
	if status != http.StatusNoContent {
		t.Fatalf("notification status = %d, want 204", status)
	}
}

// TestScenarioList mirrors cmd/scenarios' listing.
func TestScenarioList(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, _ := post(t, ts.URL, rpcCall(1, "scenario.list", ""))
	if resp.Error != nil {
		t.Fatalf("list failed: %+v", resp.Error)
	}
	var res ListResult
	if err := json.Unmarshal(resp.Result, &res); err != nil {
		t.Fatalf("decoding result: %v", err)
	}
	if len(res.Presets) < 10 {
		t.Errorf("presets = %d, want >= 10", len(res.Presets))
	}
	if len(res.Variants) < 5 {
		t.Errorf("variants = %d, want >= 5", len(res.Variants))
	}
	if len(res.Default) == 0 {
		t.Error("empty default variant selection")
	}
	if res.Presets[0].Name != "tableIII" {
		t.Errorf("first preset = %q, want tableIII", res.Presets[0].Name)
	}
}

// TestScenarioDiff mirrors cmd/scenarios -diff.
func TestScenarioDiff(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, _ := post(t, ts.URL, rpcCall(1, "scenario.diff",
		`{"a":"tableIII","b":"high-vol","variant":"basic"}`))
	if resp.Error != nil {
		t.Fatalf("diff failed: %+v", resp.Error)
	}
	var res DiffResult
	if err := json.Unmarshal(resp.Result, &res); err != nil {
		t.Fatalf("decoding result: %v", err)
	}
	if res.A != "tableIII" || res.B != "high-vol" {
		t.Errorf("diff names = %q/%q", res.A, res.B)
	}
	if len(res.Params) == 0 {
		t.Error("no parameter differences between tableIII and high-vol")
	}
	if res.Text == "" {
		t.Error("empty rendered diff")
	}
}

// TestSolveCoalescing fires N concurrent identical solves through a
// gated solve seam and checks exactly one underlying computation runs,
// with every other response marked Coalesced. Run under -race.
func TestSolveCoalescing(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	var calls atomic.Int32
	gate := make(chan struct{})
	realSolve := s.solve
	s.solve = func(req resolvedSolve) (solveValue, error) {
		calls.Add(1)
		<-gate
		return realSolve(req)
	}

	const n = 16
	results := make([]SolveResult, n)
	errs := make([]error, n)
	var wg sync.WaitGroup

	// Establish the leader first so no goroutine can arrive after the
	// flight settles.
	wg.Add(1)
	go func() {
		defer wg.Done()
		results[0], errs[0] = solveOnce(ts.URL)
	}()
	waitFor(t, func() bool { return calls.Load() == 1 }, "leader did not start")

	for i := 1; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = solveOnce(ts.URL)
		}(i)
	}
	// Release the computation only once all waiters joined the flight.
	waitFor(t, func() bool { return s.flight.Stats().Waiters == n-1 }, "waiters did not join")
	close(gate)
	wg.Wait()

	if got := calls.Load(); got != 1 {
		t.Fatalf("underlying solves = %d, want 1", got)
	}
	coalesced := 0
	for i := range results {
		if errs[i] != nil {
			t.Fatalf("request %d failed: %v", i, errs[i])
		}
		if results[i].Scenario != "tableIII" {
			t.Fatalf("request %d solved %q", i, results[i].Scenario)
		}
		if results[i].Coalesced {
			coalesced++
		}
	}
	if coalesced != n-1 {
		t.Errorf("coalesced responses = %d, want %d", coalesced, n-1)
	}

	// The flight is empty again and stats agree.
	if got := s.flight.InFlight(); got != 0 {
		t.Errorf("in-flight after drain = %d, want 0", got)
	}
	fs := s.flight.Stats()
	if fs.Leaders != 1 || fs.Waiters != n-1 {
		t.Errorf("flight stats = %+v, want 1 leader / %d waiters", fs, n-1)
	}
}

// solveOnce posts one tableIII solve outside the testing.T plumbing (for
// use from goroutines).
func solveOnce(url string) (SolveResult, error) {
	body := rpcCall(1, "swap.solve", `{"scenario":"tableIII","budgetMs":30000}`)
	resp, err := http.Post(url+"/rpc", "application/json", strings.NewReader(body))
	if err != nil {
		return SolveResult{}, err
	}
	defer resp.Body.Close()
	var r Response
	if err := json.NewDecoder(resp.Body).Decode(&r); err != nil {
		return SolveResult{}, err
	}
	if r.Error != nil {
		return SolveResult{}, r.Error
	}
	var res SolveResult
	if err := json.Unmarshal(r.Result, &res); err != nil {
		return SolveResult{}, err
	}
	return res, nil
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, cond func() bool, msg string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal(msg)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestSolveBudgetExceeded checks that a request outliving its budget gets
// CodeBudgetExceeded while the leader's computation still completes.
func TestSolveBudgetExceeded(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	gate := make(chan struct{})
	realSolve := s.solve
	s.solve = func(req resolvedSolve) (solveValue, error) {
		<-gate
		return realSolve(req)
	}
	resp, _ := post(t, ts.URL, rpcCall(1, "swap.solve", `{"scenario":"tableIII","budgetMs":30}`))
	if resp.Error == nil || resp.Error.Code != CodeBudgetExceeded {
		t.Fatalf("error = %+v, want code %d", resp.Error, CodeBudgetExceeded)
	}
	close(gate)
	// The detached leader still finishes; Shutdown waits for it.
	if err := s.Shutdown(contextWithTimeout(t, 5*time.Second)); err != nil {
		t.Fatalf("shutdown did not drain the detached solve: %v", err)
	}
}

// TestShutdownRejectsNewRequests checks the draining behaviour: 503 +
// CodeShuttingDown on /rpc, 503 on /healthz, and Shutdown drains
// in-flight work.
func TestShutdownRejectsNewRequests(t *testing.T) {
	s, ts := newTestServer(t, Config{})

	hz, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatalf("healthz: %v", err)
	}
	hz.Body.Close()
	if hz.StatusCode != http.StatusOK {
		t.Fatalf("healthz before shutdown = %d", hz.StatusCode)
	}

	if err := s.Shutdown(contextWithTimeout(t, 5*time.Second)); err != nil {
		t.Fatalf("shutdown: %v", err)
	}

	resp, status := post(t, ts.URL, rpcCall(1, "scenario.list", ""))
	if status != http.StatusServiceUnavailable {
		t.Errorf("post-shutdown status = %d, want 503", status)
	}
	if resp.Error == nil || resp.Error.Code != CodeShuttingDown {
		t.Errorf("post-shutdown error = %+v, want code %d", resp.Error, CodeShuttingDown)
	}

	hz, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatalf("healthz: %v", err)
	}
	hz.Body.Close()
	if hz.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("healthz after shutdown = %d, want 503", hz.StatusCode)
	}
}

// TestStatsCounters checks swapd.stats reflects traffic.
func TestStatsCounters(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	post(t, ts.URL, rpcCall(1, "scenario.list", ""))
	post(t, ts.URL, rpcCall(2, "swap.nope", ""))
	resp, _ := post(t, ts.URL, rpcCall(3, "swapd.stats", ""))
	if resp.Error != nil {
		t.Fatalf("stats failed: %+v", resp.Error)
	}
	var res StatsResult
	if err := json.Unmarshal(resp.Result, &res); err != nil {
		t.Fatalf("decoding result: %v", err)
	}
	if res.Requests.Total < 3 {
		t.Errorf("total requests = %d, want >= 3", res.Requests.Total)
	}
	if res.Requests.Errors < 1 {
		t.Errorf("errors = %d, want >= 1", res.Requests.Errors)
	}
	if res.Requests.ByMethod["scenario.list"] < 1 {
		t.Errorf("byMethod = %+v, missing scenario.list", res.Requests.ByMethod)
	}
	if res.Draining {
		t.Error("draining reported on a live server")
	}
}

// TestOversizedBody checks the request size cap: an oversized POST is
// detected (not silently truncated and mis-parsed) and rejected with
// 413 + -32600 naming the limit.
func TestOversizedBody(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	big := bytes.Repeat([]byte("x"), wsMaxMessage+2)
	resp, err := http.Post(ts.URL+"/rpc", "application/json", bytes.NewReader(big))
	if err != nil {
		t.Fatalf("POST: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("status = %d, want 413", resp.StatusCode)
	}
	var r Response
	if err := json.NewDecoder(resp.Body).Decode(&r); err != nil {
		t.Fatalf("decoding: %v", err)
	}
	if r.Error == nil || r.Error.Code != CodeInvalidRequest {
		t.Fatalf("error = %+v, want invalid request (too large)", r.Error)
	}
	if !strings.Contains(r.Error.Message, "request too large") {
		t.Errorf("message = %q, want it to name the size cap", r.Error.Message)
	}

	// A body exactly at the cap still parses (as garbage JSON here, but
	// through the normal parse path, not the size rejection).
	exact := bytes.Repeat([]byte("x"), wsMaxMessage)
	resp2, err := http.Post(ts.URL+"/rpc", "application/json", bytes.NewReader(exact))
	if err != nil {
		t.Fatalf("POST: %v", err)
	}
	defer resp2.Body.Close()
	var r2 Response
	if err := json.NewDecoder(resp2.Body).Decode(&r2); err != nil {
		t.Fatalf("decoding: %v", err)
	}
	if r2.Error == nil || r2.Error.Code != CodeParseError {
		t.Fatalf("at-cap error = %+v, want parse error", r2.Error)
	}
}
