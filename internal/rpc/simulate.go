package rpc

import (
	"context"
	"encoding/json"
	"math"
	"net/http"
	"sync"
	"time"

	"repro/internal/fault"
	"repro/internal/mc"
	"repro/internal/qmc"
	"repro/internal/solvecache"
	"repro/internal/swapsim"
)

// SimulateParams are the parameters of swap.simulate (WebSocket only).
type SimulateParams struct {
	// Scenario is a preset name or inline Scenario object.
	Scenario json.RawMessage `json:"scenario"`
	// Variant selects the simulated protocol: "basic" (default) or
	// "collateral" (which stakes the scenario's deposit Q).
	Variant string `json:"variant,omitempty"`
	// Runs is the fixed sample size — and the adaptive cap (default: the
	// scenario's own Monte Carlo run count).
	Runs int `json:"runs,omitempty"`
	// CIWidth, when > 0, streams until the Wilson 95% half-width of the
	// success rate reaches it (the adaptive stopper), capped at
	// MaxPaths/Runs.
	CIWidth float64 `json:"ciWidth,omitempty"`
	// Chunk is the engine chunk size (0 = default); MaxPaths overrides
	// the adaptive cap.
	Chunk    int `json:"chunk,omitempty"`
	MaxPaths int `json:"maxPaths,omitempty"`
	// EveryPaths throttles the stream: one progress notification per at
	// least this many merged paths (default 512; 1 streams every chunk).
	EveryPaths int `json:"everyPaths,omitempty"`
	// Sampler selects the sampling mode: "" or "pseudo" (default),
	// "antithetic", or "sobol" (see internal/qmc). In the variance-reduced
	// modes the streamed halfWidth is the sampler-aware estimator
	// interval the adaptive stopper watches, not the Wilson width.
	Sampler string `json:"sampler,omitempty"`
	// BudgetMs overrides the server's default request budget.
	BudgetMs int `json:"budgetMs,omitempty"`
}

// ProgressEvent is one swap.progress notification: a merged-prefix
// convergence snapshot of the running simulation.
type ProgressEvent struct {
	// ID echoes the originating swap.simulate request's ID.
	ID json.RawMessage `json:"id"`
	// Paths and Successes count the merged prefix; Chunks the merged
	// chunks.
	Paths     int `json:"paths"`
	Successes int `json:"successes"`
	Chunks    int `json:"chunks"`
	// SR is the running success rate with its Wilson 95% interval.
	SR float64 `json:"sr"`
	Lo float64 `json:"lo"`
	Hi float64 `json:"hi"`
	// HalfWidth is the interval half-width the adaptive stopper watches.
	HalfWidth float64 `json:"halfWidth"`
	// Stopped reports the adaptive stopper fired at this snapshot.
	Stopped bool `json:"stopped,omitempty"`
}

// SimulateResult is the terminal response of a completed stream.
type SimulateResult struct {
	Scenario string  `json:"scenario"`
	Variant  string  `json:"variant"`
	Paths    int     `json:"paths"`
	SR       float64 `json:"sr"`
	Lo       float64 `json:"lo"`
	Hi       float64 `json:"hi"`
	// Sampler names the run's sampling mode; omitted for the pseudo
	// default. EstHalfWidth accompanies it: the sampler-aware estimator
	// half-width the adaptive stopper compared against ciWidth.
	Sampler      string  `json:"sampler,omitempty"`
	EstHalfWidth float64 `json:"estHalfWidth,omitempty"`
	// Stopped reports an adaptive early stop; Violations counts
	// non-atomic outcomes (zero without failure injection).
	Stopped    bool           `json:"stopped"`
	Violations int            `json:"violations"`
	Stages     map[string]int `json:"stages"`
	// MeanDurationHours averages simulated completion time; Snapshots is
	// the number of progress notifications the stream sent.
	MeanDurationHours float64 `json:"meanDurationHours"`
	Snapshots         int     `json:"snapshots"`
	ElapsedUs         int64   `json:"elapsedUs"`
}

// CancelParams are the parameters of swap.cancel.
type CancelParams struct {
	// ID is the request ID of the stream to cancel.
	ID json.RawMessage `json:"id"`
}

// wsSession is the per-connection state of the WebSocket channel: the
// connection plus the cancel functions of its live streams, keyed by the
// originating request ID's raw JSON.
type wsSession struct {
	conn *WSConn

	mu      sync.Mutex
	streams map[string]context.CancelFunc
}

// cancelStream cancels one stream by ID, reporting whether it was live.
func (ws *wsSession) cancelStream(id string) bool {
	ws.mu.Lock()
	cancel, ok := ws.streams[id]
	ws.mu.Unlock()
	if ok {
		cancel()
	}
	return ok
}

// cancelAll cancels every live stream (connection teardown).
func (ws *wsSession) cancelAll() {
	ws.mu.Lock()
	cancels := make([]context.CancelFunc, 0, len(ws.streams))
	for _, c := range ws.streams {
		cancels = append(cancels, c)
	}
	ws.mu.Unlock()
	for _, c := range cancels {
		c()
	}
}

// handleWS serves the WebSocket channel: every request/response method
// plus swap.simulate streams and swap.cancel.
func (s *Server) handleWS(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	conn, err := Upgrade(w, r)
	if err != nil {
		return // Upgrade already wrote the HTTP error
	}
	// Deadline hygiene: every inbound frame must complete within the read
	// timeout (slow-loris guard), every outbound frame within the write
	// timeout (stalled-reader guard).
	conn.readTimeout = s.cfg.WSReadTimeout
	conn.writeTimeout = s.cfg.WSWriteTimeout
	conn.fault = s.cfg.Fault
	s.connMu.Lock()
	s.conns[conn] = struct{}{}
	s.connMu.Unlock()
	sess := &wsSession{conn: conn, streams: make(map[string]context.CancelFunc)}
	defer func() {
		sess.cancelAll()
		s.connMu.Lock()
		delete(s.conns, conn)
		s.connMu.Unlock()
		conn.Close()
	}()
	for {
		msg, err := conn.ReadMessage()
		if err != nil {
			return // closed or broken connection; deferred cleanup cancels streams
		}
		// Read-side fault points: a stalled reader, a lost frame, a
		// corrupted frame. Truncation feeds the parse-error path below.
		if d, ok := s.cfg.Fault.Delay(fault.KeyWSReadStall); ok {
			sleepCtx(s.baseCtx, d)
		}
		if s.cfg.Fault.Fire(fault.KeyWSFrameDrop) {
			continue
		}
		if s.cfg.Fault.Fire(fault.KeyWSFrameTruncate) {
			msg = msg[:len(msg)/2]
		}
		req, rerr := ParseRequest(msg)
		if rerr != nil {
			s.stats.errors.Add(1)
			conn.WriteJSON(NewErrorResponse(req.ID, rerr))
			continue
		}
		if s.draining.Load() {
			conn.WriteJSON(NewErrorResponse(req.ID, Errorf(CodeShuttingDown, "server is shutting down")))
			continue
		}
		switch req.Method {
		case "swap.simulate":
			s.startStream(sess, req)
		case "swap.cancel":
			s.stats.record(req.Method)
			var p CancelParams
			if rerr := decodeParams(req.Params, &p); rerr != nil {
				conn.WriteJSON(NewErrorResponse(req.ID, rerr))
				continue
			}
			found := sess.cancelStream(string(p.ID))
			if !req.IsNotification() {
				conn.WriteJSON(NewResponse(req.ID, map[string]bool{"canceled": found}))
			}
		default:
			// Request/response methods share the HTTP dispatch path. Run
			// them off the read loop so a slow solve cannot delay cancels.
			s.inflight.Add(1)
			go func(req Request) {
				defer s.inflight.Done()
				if resp, ok := s.dispatch(s.baseCtx, req, true); ok {
					conn.WriteJSON(resp)
				}
			}(req)
		}
	}
}

// startStream validates a swap.simulate request and launches its stream
// goroutine.
func (s *Server) startStream(sess *wsSession, req Request) {
	conn := sess.conn
	s.stats.record(req.Method)
	if req.IsNotification() {
		s.stats.errors.Add(1)
		conn.WriteJSON(NewErrorResponse(nil, Errorf(CodeInvalidRequest, "swap.simulate requires an id (the stream handle)")))
		return
	}
	var p SimulateParams
	if rerr := decodeParams(req.Params, &p); rerr != nil {
		s.stats.errors.Add(1)
		conn.WriteJSON(NewErrorResponse(req.ID, rerr))
		return
	}
	cfg, rerr := s.resolveSimulate(p)
	if rerr != nil {
		s.stats.errors.Add(1)
		conn.WriteJSON(NewErrorResponse(req.ID, rerr))
		return
	}
	// A stream is in-flight Monte Carlo work for its whole lifetime, so it
	// holds an admission slot for its whole lifetime; saturation sheds it
	// here with CodeOverloaded before any engine state is built. The
	// bounded queue wait is the longest this can block the read loop.
	if rerr := s.adm.acquire(s.baseCtx); rerr != nil {
		s.stats.errors.Add(1)
		conn.WriteJSON(NewErrorResponse(req.ID, rerr))
		return
	}
	id := string(req.ID)
	ctx, cancel := context.WithTimeout(s.baseCtx, s.budget(p.BudgetMs))
	sess.mu.Lock()
	if _, dup := sess.streams[id]; dup {
		sess.mu.Unlock()
		cancel()
		s.adm.release()
		s.stats.errors.Add(1)
		conn.WriteJSON(NewErrorResponse(req.ID, Errorf(CodeInvalidRequest, "a stream with id %s is already running", id)))
		return
	}
	sess.streams[id] = cancel
	sess.mu.Unlock()

	s.stats.streamsStarted.Add(1)
	s.stats.streamsActive.Add(1)
	s.inflight.Add(1)
	streamDone := make(chan struct{})
	// Watchdog: a stream that outlives its budget by more than the grace
	// period has a wedged connection (the terminal write should complete
	// within the write timeout); force-close it so the goroutine and the
	// admission slot cannot leak behind a peer that never reads.
	go func() {
		select {
		case <-streamDone:
			return
		case <-ctx.Done():
		}
		grace := time.NewTimer(s.cfg.WatchdogGrace)
		defer grace.Stop()
		select {
		case <-streamDone:
		case <-grace.C:
			s.stats.watchdogCloses.Add(1)
			s.cfg.Logf("rpc: watchdog force-closing connection of stream %s", id)
			conn.Close()
		}
	}()
	go func() {
		defer func() {
			close(streamDone)
			sess.mu.Lock()
			delete(sess.streams, id)
			sess.mu.Unlock()
			cancel()
			s.adm.release()
			s.stats.streamsActive.Add(-1)
			s.inflight.Done()
		}()
		// Panic isolation: a stream panic becomes its terminal error
		// response, never a dead daemon.
		defer func() {
			if r := recover(); r != nil {
				s.stats.panics.Add(1)
				s.cfg.Logf("rpc: stream %s panicked (recovered): %v", id, r)
				conn.WriteJSON(NewErrorResponse(req.ID,
					Errorf(CodeInternalError, "internal error: stream panicked")))
			}
		}()
		s.stream(ctx, cancel, sess, req.ID, cfg)
	}()
}

// simulateConfig is a resolved swap.simulate request.
type simulateConfig struct {
	scenarioName string
	variantKey   string
	everyPaths   int
	mcc          swapsim.MCConfig
}

// resolveSimulate validates simulate parameters and builds the Monte
// Carlo configuration: the scenario's solved threshold strategy (via the
// shared model cache) driving the protocol simulator.
func (s *Server) resolveSimulate(p SimulateParams) (simulateConfig, *Error) {
	sc, rerr := resolveScenario(p.Scenario)
	if rerr != nil {
		return simulateConfig{}, rerr
	}
	key := p.Variant
	if key == "" {
		key = "basic"
	}
	collateral := 0.0
	switch key {
	case "basic":
	case "collateral":
		collateral = sc.Collateral
	default:
		return simulateConfig{}, Errorf(CodeInvalidParams,
			"simulate variant %q: the protocol simulator plays \"basic\" or \"collateral\"", key)
	}
	runs := p.Runs
	if runs == 0 {
		runs = sc.Runs()
	}
	if runs < 0 || runs > s.cfg.MaxRuns || p.MaxPaths < 0 || p.MaxPaths > s.cfg.MaxRuns {
		return simulateConfig{}, Errorf(CodeInvalidParams, "runs/maxPaths must be in [0, %d]", s.cfg.MaxRuns)
	}
	if p.CIWidth < 0 || math.IsNaN(p.CIWidth) {
		return simulateConfig{}, Errorf(CodeInvalidParams, "ciWidth must be >= 0")
	}
	if p.Chunk < 0 || p.EveryPaths < 0 {
		return simulateConfig{}, Errorf(CodeInvalidParams, "chunk and everyPaths must be >= 0")
	}
	sampler, err := qmc.ParseMode(p.Sampler)
	if err != nil {
		return simulateConfig{}, Errorf(CodeInvalidParams, "%v", err)
	}
	m, err := solvecache.SharedModel(sc.Params)
	if err != nil {
		return simulateConfig{}, Errorf(CodeInvalidParams, "scenario %q: %v", sc.Name, err)
	}
	strat, err := m.Strategy(sc.PStar)
	if err != nil {
		return simulateConfig{}, Errorf(CodeInternalError, "solving strategy: %v", err)
	}
	// The stream estimates SR conditional on initiation, like every MC
	// validation in the repository (Eq. 31 conditions on the swap
	// starting).
	strat.AliceInitiates = true
	every := p.EveryPaths
	if every == 0 {
		every = 512
	}
	return simulateConfig{
		scenarioName: sc.Name,
		variantKey:   key,
		everyPaths:   every,
		mcc: swapsim.MCConfig{
			Config: swapsim.Config{
				Params: sc.Params, Strategy: strat, Collateral: collateral, Seed: sc.Seed,
				Sampler: sampler,
			},
			Runs: runs, Workers: s.cfg.MCWorkers,
			CIWidth: p.CIWidth, ChunkSize: p.Chunk, MaxPaths: p.MaxPaths,
		},
	}, nil
}

// runStream executes one simulate stream: progress notifications while
// the engine runs, then the terminal response (result, budget error, or
// cancellation). cancel aborts the engine when the peer stops reading: a
// progress write that fails or times out cancels the stream instead of
// blocking the Monte Carlo engine behind a dead connection.
func (s *Server) runStream(ctx context.Context, cancel context.CancelFunc, sess *wsSession, id json.RawMessage, cfg simulateConfig) {
	start := time.Now()
	conn := sess.conn
	snapshots := 0
	lastSent := 0
	writeFailed := false
	cfg.mcc.OnProgress = func(p mc.Progress) {
		if writeFailed || (p.Paths-lastSent < cfg.everyPaths && !p.Stopped) {
			return
		}
		lastSent = p.Paths
		snapshots++
		s.stats.snapshots.Add(1)
		err := conn.WriteJSON(Notification{
			JSONRPC: Version,
			Method:  "swap.progress",
			Params: ProgressEvent{
				ID: id, Paths: p.Paths, Successes: p.Successes, Chunks: p.Chunks,
				SR: p.SuccessRate.P, Lo: p.SuccessRate.Lo, Hi: p.SuccessRate.Hi,
				HalfWidth: p.HalfWidth(), Stopped: p.Stopped,
			},
		})
		if err != nil {
			// OnProgress runs between engine waves on one goroutine, so
			// plain variables suffice; the cancel bites at the next wave.
			writeFailed = true
			s.stats.wsWriteFailures.Add(1)
			s.cfg.Logf("rpc: stream %s progress write failed, cancelling: %v", id, err)
			cancel()
		}
	}
	res, err := swapsim.MonteCarloCtx(ctx, cfg.mcc)
	if err != nil {
		s.stats.errors.Add(1)
		conn.WriteJSON(NewErrorResponse(id, s.asRPCError(err)))
		return
	}
	stages := make(map[string]int, len(res.Stages))
	for stage, n := range res.Stages {
		stages[string(stage)] = n
	}
	out := SimulateResult{
		Scenario: cfg.scenarioName, Variant: cfg.variantKey,
		Paths: res.Paths, SR: res.SuccessRate.P, Lo: res.SuccessRate.Lo, Hi: res.SuccessRate.Hi,
		Stopped: res.Stopped, Violations: res.Violations, Stages: stages,
		MeanDurationHours: res.MeanDurationHours,
		Snapshots:         snapshots, ElapsedUs: time.Since(start).Microseconds(),
	}
	if res.Sampler.VarianceReduced() {
		out.Sampler = string(res.Sampler)
		out.EstHalfWidth = res.EstHalfWidth
	}
	conn.WriteJSON(NewResponse(id, out))
}
