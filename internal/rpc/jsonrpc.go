// Package rpc is the repository's quote-service layer: a JSON-RPC 2.0
// server over HTTP with a WebSocket subscription channel, exposing the
// solve/simulate core behind cmd/swapd. It serves solve requests for any
// (scenario × variant) cell of the registry, streams Monte Carlo
// convergence snapshots over WebSocket until the adaptive stopper fires or
// the client cancels, and mirrors cmd/scenarios' list/diff queries —
// everything the one-shot CLIs compute, as a long-running daemon.
//
// Concurrent identical solve requests coalesce through a
// solvecache.Flight single-flight layer in front of the process-wide
// model cache, every request runs under a context budget, and shutdown is
// graceful: in-flight requests drain, streams are cancelled with a
// terminal error response, new requests are rejected. See DESIGN.md ("RPC
// surface") for the layout and the budget/coalescing rules.
package rpc

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
)

// Version is the JSON-RPC protocol version the server speaks.
const Version = "2.0"

// JSON-RPC 2.0 error codes: the spec's reserved codes first, then the
// server-defined range (-32000 to -32099).
const (
	// CodeParseError reports unparseable request bytes.
	CodeParseError = -32700
	// CodeInvalidRequest reports a structurally invalid request envelope.
	CodeInvalidRequest = -32600
	// CodeMethodNotFound reports an unknown method.
	CodeMethodNotFound = -32601
	// CodeInvalidParams reports malformed or out-of-range parameters.
	CodeInvalidParams = -32602
	// CodeInternalError reports a server-side failure.
	CodeInternalError = -32603
	// CodeShuttingDown rejects requests arriving while the server drains.
	CodeShuttingDown = -32000
	// CodeBudgetExceeded reports a request that outlived its time budget.
	CodeBudgetExceeded = -32001
	// CodeCanceled reports a client- or server-cancelled stream.
	CodeCanceled = -32002
	// CodeOverloaded sheds a request the admission controller could not
	// seat: the in-flight semaphore and its wait queue are both full. The
	// error's Data carries a retryAfterMs hint; over HTTP the response
	// additionally arrives as 503 with a Retry-After header. See DESIGN.md
	// ("Robustness") for the client contract.
	CodeOverloaded = -32005
)

// Request is one JSON-RPC 2.0 request or notification.
type Request struct {
	// JSONRPC must be "2.0".
	JSONRPC string `json:"jsonrpc"`
	// ID correlates the response; requests without an ID (or with a JSON
	// null) are notifications and get no response.
	ID json.RawMessage `json:"id,omitempty"`
	// Method names the procedure ("swap.solve", "scenario.list", …).
	Method string `json:"method"`
	// Params is the procedure's parameter object, left raw for the
	// handler to decode.
	Params json.RawMessage `json:"params,omitempty"`
}

// IsNotification reports whether the request carries no usable ID.
func (r Request) IsNotification() bool {
	return len(r.ID) == 0 || string(r.ID) == "null"
}

// Validate checks the envelope's structural invariants: the version tag,
// a non-empty method, an ID that is a string, number or null, and params
// that are an object or array when present.
func (r Request) Validate() *Error {
	if r.JSONRPC != Version {
		return Errorf(CodeInvalidRequest, "jsonrpc must be %q, got %q", Version, r.JSONRPC)
	}
	if r.Method == "" {
		return Errorf(CodeInvalidRequest, "empty method")
	}
	if len(r.ID) > 0 {
		var id any
		if err := json.Unmarshal(r.ID, &id); err != nil {
			return Errorf(CodeInvalidRequest, "malformed id")
		}
		switch id.(type) {
		case string, float64, nil:
		default:
			return Errorf(CodeInvalidRequest, "id must be a string, number or null")
		}
	}
	if len(r.Params) > 0 {
		switch r.Params[0] {
		case '{', '[':
		default:
			return Errorf(CodeInvalidParams, "params must be an object or array")
		}
	}
	return nil
}

// ParseRequest decodes and validates one request envelope. Batch requests
// (JSON arrays) are deliberately not supported: the single-flight layer
// coalesces duplicate load server-side, which removes the main reason to
// batch, and rejecting arrays keeps the cancellation story per-request.
func ParseRequest(data []byte) (Request, *Error) {
	for _, b := range data {
		switch b {
		case ' ', '\t', '\r', '\n':
			continue
		case '[':
			return Request{}, Errorf(CodeInvalidRequest, "batch requests are not supported")
		}
		break
	}
	var req Request
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		return Request{}, Errorf(CodeParseError, "parse error: %v", err)
	}
	if err := dec.Decode(new(json.RawMessage)); err != io.EOF {
		return Request{}, Errorf(CodeParseError, "trailing data after request")
	}
	if rerr := req.Validate(); rerr != nil {
		return Request{}, rerr
	}
	return req, nil
}

// Response is one JSON-RPC 2.0 response.
type Response struct {
	// JSONRPC is always "2.0".
	JSONRPC string `json:"jsonrpc"`
	// ID echoes the request's ID (null for requests whose ID could not be
	// read).
	ID json.RawMessage `json:"id"`
	// Result carries the method result; exactly one of Result and Error
	// is set.
	Result json.RawMessage `json:"result,omitempty"`
	// Error carries the failure, nil on success.
	Error *Error `json:"error,omitempty"`
}

// Notification is one server-to-client stream message (a JSON-RPC request
// without an ID): the swap.simulate progress channel.
type Notification struct {
	// JSONRPC is always "2.0".
	JSONRPC string `json:"jsonrpc"`
	// Method names the stream ("swap.progress").
	Method string `json:"method"`
	// Params is the stream payload.
	Params any `json:"params,omitempty"`
}

// Error is a JSON-RPC 2.0 error object. It implements error so handlers
// can return it through ordinary error plumbing.
type Error struct {
	// Code is one of the Code* constants.
	Code int `json:"code"`
	// Message is a one-line human-readable summary.
	Message string `json:"message"`
	// Data carries optional structured detail.
	Data any `json:"data,omitempty"`
}

// Error implements the error interface.
func (e *Error) Error() string {
	return fmt.Sprintf("jsonrpc %d: %s", e.Code, e.Message)
}

// Errorf builds an Error from a format string.
func Errorf(code int, format string, args ...any) *Error {
	return &Error{Code: code, Message: fmt.Sprintf(format, args...)}
}

// NewResponse builds a success response, encoding result as JSON. An
// encoding failure degrades to an internal error response — it cannot be
// reported any other way at this layer.
func NewResponse(id json.RawMessage, result any) Response {
	raw, err := json.Marshal(result)
	if err != nil {
		return NewErrorResponse(id, Errorf(CodeInternalError, "encoding result: %v", err))
	}
	return Response{JSONRPC: Version, ID: normalizeID(id), Result: raw}
}

// NewErrorResponse builds an error response.
func NewErrorResponse(id json.RawMessage, rerr *Error) Response {
	return Response{JSONRPC: Version, ID: normalizeID(id), Error: rerr}
}

// normalizeID substitutes the JSON null ID the spec requires when the
// request's ID was absent or unreadable.
func normalizeID(id json.RawMessage) json.RawMessage {
	if len(id) == 0 {
		return json.RawMessage("null")
	}
	return id
}
