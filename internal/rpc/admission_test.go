package rpc

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestAdmissionQueueFull drives the controller directly through its three
// outcomes: immediate admit, queue-then-admit, and the two shed paths
// (queue full, queue wait expired).
func TestAdmissionQueueFull(t *testing.T) {
	a := newAdmission(1, 1, time.Second, 100*time.Millisecond)
	ctx := context.Background()

	if err := a.acquire(ctx); err != nil {
		t.Fatalf("first acquire shed: %+v", err)
	}

	// Saturate the queue: a second acquirer waits for the slot.
	queuedDone := make(chan *Error, 1)
	go func() { queuedDone <- a.acquire(ctx) }()
	waitFor(t, func() bool { return a.queued.Load() == 1 }, "second acquire never queued")

	// Queue full: a third acquirer is shed immediately, not after queueWait.
	start := time.Now()
	rerr := a.acquire(ctx)
	if rerr == nil {
		t.Fatal("third acquire admitted past a full queue")
	}
	if rerr.Code != CodeOverloaded {
		t.Errorf("shed code = %d, want %d", rerr.Code, CodeOverloaded)
	}
	if elapsed := time.Since(start); elapsed > 500*time.Millisecond {
		t.Errorf("queue-full shed took %v, want immediate", elapsed)
	}
	data, ok := rerr.Data.(map[string]any)
	if !ok {
		t.Fatalf("shed Data = %#v, want a retryAfterMs object", rerr.Data)
	}
	if ms, _ := data["retryAfterMs"].(int); ms != 1000 {
		t.Errorf("retryAfterMs = %v, want 1000 (the queue wait)", data["retryAfterMs"])
	}
	if !a.overloaded() {
		t.Error("overloaded() = false right after a shed")
	}

	// Releasing the slot admits the queued waiter.
	a.release()
	select {
	case err := <-queuedDone:
		if err != nil {
			t.Fatalf("queued acquire shed after release: %+v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("queued acquire never admitted")
	}
	a.release()

	st := a.stats()
	if st.Admitted != 2 || st.QueuedTotal != 1 || st.Shed != 1 {
		t.Errorf("stats = %+v, want admitted=2 queuedTotal=1 shed=1", st)
	}

	// The health degradation clears one shed window after the last shed.
	waitFor(t, func() bool { return !a.overloaded() }, "overloaded() never cleared")
}

// TestAdmissionDeadlineAware checks a queued request never waits past its
// own context deadline: with a 10s queue wait but a ~10ms deadline, the
// shed arrives promptly.
func TestAdmissionDeadlineAware(t *testing.T) {
	a := newAdmission(1, 4, 10*time.Second, time.Second)
	if err := a.acquire(context.Background()); err != nil {
		t.Fatalf("first acquire shed: %+v", err)
	}
	defer a.release()

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	start := time.Now()
	rerr := a.acquire(ctx)
	if rerr == nil {
		t.Fatal("acquire admitted on a saturated controller")
	}
	if rerr.Code != CodeOverloaded {
		t.Errorf("shed code = %d, want %d", rerr.Code, CodeOverloaded)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("deadline-bounded queue wait took %v, want ~10ms", elapsed)
	}
}

// blockSolve gates the solve seam: each call parks on the returned
// channel until it is closed, so tests control slot occupancy exactly.
func blockSolve(s *Server) (started chan struct{}, unblock chan struct{}) {
	started = make(chan struct{}, 16)
	unblock = make(chan struct{})
	s.solve = func(req resolvedSolve) (solveValue, error) {
		started <- struct{}{}
		<-unblock
		return solveValue{Scenario: req.sc.Name}, nil
	}
	return started, unblock
}

// solveParams builds swap.solve params whose single-flight keys differ by
// n, so concurrent test requests never coalesce into one computation.
func solveParams(n int) string {
	return fmt.Sprintf(`{"scenario":"tableIII","runs":%d}`, n+1)
}

// TestOverloadSheds exercises the full server path under saturation: the
// shed response carries -32005 with a retryAfterMs hint, HTTP surfaces
// 503 + Retry-After, /healthz degrades while shedding and recovers after
// the shed window, the exempt methods keep answering, and swapd.stats
// tallies it all.
func TestOverloadSheds(t *testing.T) {
	s, ts := newTestServer(t, Config{
		MaxInflight: 1,
		QueueDepth:  1,
		QueueWait:   5 * time.Millisecond,
		ShedWindow:  300 * time.Millisecond,
	})
	started, unblock := blockSolve(s)

	// Occupy the only slot.
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		resp, status := post(t, ts.URL, rpcCall(1, "swap.solve", solveParams(0)))
		if status != http.StatusOK || resp.Error != nil {
			t.Errorf("occupying solve failed: status=%d error=%+v", status, resp.Error)
		}
	}()
	<-started

	// A second solve queues for 5ms, then is shed.
	httpResp, err := http.Post(ts.URL+"/rpc", "application/json",
		strings.NewReader(rpcCall(2, "swap.solve", solveParams(1))))
	if err != nil {
		t.Fatalf("POST: %v", err)
	}
	if httpResp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("shed status = %d, want 503", httpResp.StatusCode)
	}
	if httpResp.Header.Get("Retry-After") == "" {
		t.Error("shed response missing Retry-After header")
	}
	var shedResp Response
	if err := json.NewDecoder(httpResp.Body).Decode(&shedResp); err != nil {
		t.Fatalf("decoding shed response: %v", err)
	}
	httpResp.Body.Close()
	if shedResp.Error == nil || shedResp.Error.Code != CodeOverloaded {
		t.Fatalf("shed error = %+v, want %d", shedResp.Error, CodeOverloaded)
	}
	data, ok := shedResp.Error.Data.(map[string]any)
	if !ok {
		t.Fatalf("shed Data = %#v, want an object", shedResp.Error.Data)
	}
	if ms, _ := data["retryAfterMs"].(float64); ms < 1 {
		t.Errorf("retryAfterMs = %v, want >= 1", data["retryAfterMs"])
	}

	// /healthz degrades to 503 while the daemon sheds.
	hs, body := healthz(t, ts.URL)
	if hs != http.StatusServiceUnavailable {
		t.Errorf("healthz while shedding = %d %q, want 503 overloaded", hs, body)
	}

	// The exempt observability methods keep answering at full saturation.
	if resp, status := post(t, ts.URL, rpcCall(3, "scenario.list", "")); status != http.StatusOK || resp.Error != nil {
		t.Errorf("scenario.list under overload: status=%d error=%+v", status, resp.Error)
	}
	resp, status := post(t, ts.URL, rpcCall(4, "swapd.stats", ""))
	if status != http.StatusOK || resp.Error != nil {
		t.Fatalf("swapd.stats under overload: status=%d error=%+v", status, resp.Error)
	}
	var stats StatsResult
	if err := json.Unmarshal(resp.Result, &stats); err != nil {
		t.Fatalf("decoding stats: %v", err)
	}
	if stats.Admission.Shed < 1 {
		t.Errorf("stats.admission.shed = %d, want >= 1", stats.Admission.Shed)
	}
	if stats.Admission.MaxInflight != 1 || stats.Admission.InFlight != 1 {
		t.Errorf("stats.admission = %+v, want maxInflight=1 inFlight=1", stats.Admission)
	}
	if !stats.Admission.Overloaded {
		t.Error("stats.admission.overloaded = false while shedding")
	}

	// Drain the occupier and wait out the shed window: health recovers.
	close(unblock)
	wg.Wait()
	waitFor(t, func() bool {
		hs, _ := healthz(t, ts.URL)
		return hs == http.StatusOK
	}, "healthz never recovered after the shed window")
}

// TestQueuedThenAdmitted checks the queue is a real wait, not a reject:
// with a generous queue wait, a saturated request parks, is admitted when
// the slot frees, and completes successfully with no shed recorded.
func TestQueuedThenAdmitted(t *testing.T) {
	s, ts := newTestServer(t, Config{
		MaxInflight: 1,
		QueueDepth:  4,
		QueueWait:   5 * time.Second,
	})
	started, unblock := blockSolve(s)

	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, status := post(t, ts.URL, rpcCall(i+1, "swap.solve", solveParams(i)))
			if status != http.StatusOK || resp.Error != nil {
				t.Errorf("solve %d: status=%d error=%+v", i, status, resp.Error)
			}
		}()
	}
	// One solve holds the slot; the other is queued, not started.
	<-started
	waitFor(t, func() bool { return s.adm.queued.Load() == 1 }, "second solve never queued")

	close(unblock)
	<-started // the queued solve is admitted once the slot frees
	wg.Wait()

	st := s.adm.stats()
	if st.Shed != 0 {
		t.Errorf("shed = %d, want 0", st.Shed)
	}
	if st.QueuedTotal < 1 {
		t.Errorf("queuedTotal = %d, want >= 1", st.QueuedTotal)
	}
	if st.Admitted != 2 {
		t.Errorf("admitted = %d, want 2", st.Admitted)
	}
	if st.InFlight != 0 {
		t.Errorf("inFlight = %d after completion, want 0", st.InFlight)
	}
}

// healthz fetches /healthz and returns the status and body.
func healthz(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url + "/healthz")
	if err != nil {
		t.Fatalf("GET /healthz: %v", err)
	}
	defer resp.Body.Close()
	var buf [64]byte
	n, _ := resp.Body.Read(buf[:])
	return resp.StatusCode, string(buf[:n])
}
