package rpc

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/fault"
	"repro/internal/solvecache"
	"repro/internal/store"
)

// Config parameterises a Server. The zero value selects the defaults.
type Config struct {
	// DefaultBudget is the per-request time budget applied when a request
	// names none (default 2s). Every request runs under a context
	// deadline: solves return CodeBudgetExceeded when it passes, streams
	// end with a terminal error response.
	DefaultBudget time.Duration
	// MaxBudget caps the budget a request may ask for (default 60s).
	MaxBudget time.Duration
	// MCWorkers bounds the concurrency of one request's Monte Carlo
	// (default 1: the daemon spends its parallelism across requests, the
	// same choice the batch runner makes across cells).
	MCWorkers int
	// MaxRuns caps the Monte Carlo run/path count a single request may
	// demand (default 1e6), so one client cannot monopolise the process.
	MaxRuns int
	// MaxInflight bounds the expensive requests (swap.solve,
	// scenario.diff, swap.simulate streams) running concurrently (default
	// 64). Beyond it, requests queue briefly and are then shed with
	// CodeOverloaded — see admission.
	MaxInflight int
	// QueueDepth bounds how many saturated requests may wait for a slot
	// (default 64); QueueWait bounds how long (default 25ms). Both small
	// by design: under overload the daemon prefers fast explicit sheds
	// over deep queues.
	QueueDepth int
	QueueWait  time.Duration
	// ShedWindow is how long /healthz stays 503 after a shed (default 1s),
	// so load balancers steer away while the daemon recovers.
	ShedWindow time.Duration
	// WSReadTimeout bounds each inbound WebSocket frame: a frame (and the
	// idle gap before it) must complete within it or the connection is
	// closed — the slow-loris guard (default 2m; keep it above MaxBudget
	// so streaming clients idle-reading progress are not cut off).
	WSReadTimeout time.Duration
	// WSWriteTimeout bounds each outbound WebSocket frame write, so a
	// stalled reader blocks a progress write for at most this long before
	// the stream is cancelled (default 10s).
	WSWriteTimeout time.Duration
	// WatchdogGrace is how long past its budget a stream may linger before
	// its connection is force-closed (default 5s).
	WatchdogGrace time.Duration
	// Store, when non-nil, is the persistent content-addressed result
	// store the solve path reads through (variant.RunOpts.Store): a
	// restarted daemon sharing a store directory serves warm quotes from
	// its first request.
	Store *store.Store
	// RespCacheSize bounds the serialized-response byte cache for
	// swap.solve, in entries (default 1024; negative disables). A hit
	// skips admission, solve and marshal — see respCache.
	RespCacheSize int
	// Fault is the chaos harness's injector; nil (the default) injects
	// nothing. See internal/fault for the registry keys.
	Fault *fault.Injector
	// Logf, when non-nil, receives one line per lifecycle event.
	Logf func(format string, args ...any)
}

// withDefaults resolves the zero fields.
func (c Config) withDefaults() Config {
	if c.DefaultBudget <= 0 {
		c.DefaultBudget = 2 * time.Second
	}
	if c.MaxBudget <= 0 {
		c.MaxBudget = 60 * time.Second
	}
	if c.MCWorkers <= 0 {
		c.MCWorkers = 1
	}
	if c.MaxRuns <= 0 {
		c.MaxRuns = 1_000_000
	}
	if c.MaxInflight <= 0 {
		c.MaxInflight = 64
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.QueueWait <= 0 {
		c.QueueWait = 25 * time.Millisecond
	}
	if c.ShedWindow <= 0 {
		c.ShedWindow = time.Second
	}
	if c.WSReadTimeout <= 0 {
		c.WSReadTimeout = 2 * time.Minute
	}
	if c.WSWriteTimeout <= 0 {
		c.WSWriteTimeout = 10 * time.Second
	}
	if c.WatchdogGrace <= 0 {
		c.WatchdogGrace = 5 * time.Second
	}
	if c.RespCacheSize == 0 {
		c.RespCacheSize = 1024
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	return c
}

// Server is the JSON-RPC quote service over the solve/simulate core: HTTP
// POST /rpc for request/response methods, GET /ws for the WebSocket
// channel (everything HTTP serves, plus swap.simulate streams), GET
// /healthz for liveness.
type Server struct {
	cfg Config

	// baseCtx parents every stream; Shutdown cancels it to drain them.
	baseCtx    context.Context
	cancelBase context.CancelFunc
	draining   atomic.Bool
	// inflight counts requests and streams that must drain on shutdown.
	inflight sync.WaitGroup

	// flight coalesces concurrent identical solve requests in front of
	// the process-wide solvecache (see solveKey).
	flight solvecache.Flight[string, solveValue]

	// resp is the serialized-response byte cache for swap.solve, keyed by
	// the same canonical solve key the single-flight layer uses.
	resp *respCache

	// solve computes one coalesced solve cell; a test seam, defaulting to
	// the real variant-registry solve.
	solve func(req resolvedSolve) (solveValue, error)

	// stream runs one simulate stream body; a test seam, defaulting to
	// runStream.
	stream func(ctx context.Context, cancel context.CancelFunc, sess *wsSession, id json.RawMessage, cfg simulateConfig)

	// adm is the admission controller in front of the expensive methods.
	adm *admission

	// conns tracks live WebSocket connections for shutdown.
	connMu sync.Mutex
	conns  map[*WSConn]struct{}

	stats serverStats
}

// serverStats aggregates the daemon's observable counters.
type serverStats struct {
	start          time.Time
	requests       atomic.Uint64
	errors         atomic.Uint64
	streamsStarted atomic.Uint64
	streamsActive  atomic.Int64
	snapshots      atomic.Uint64
	// panics counts handler panics converted to CodeInternalError
	// responses instead of killing the daemon.
	panics atomic.Uint64
	// wsWriteFailures counts streams cancelled because a progress write
	// failed or timed out; watchdogCloses counts connections force-closed
	// after their stream outlived its budget past the grace period.
	wsWriteFailures atomic.Uint64
	watchdogCloses  atomic.Uint64

	methodMu sync.Mutex
	byMethod map[string]uint64
}

func (s *serverStats) record(method string) {
	s.requests.Add(1)
	s.methodMu.Lock()
	s.byMethod[method]++
	s.methodMu.Unlock()
}

// NewServer builds a Server; Handler exposes it, Shutdown drains it.
func NewServer(cfg Config) *Server {
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:        cfg.withDefaults(),
		baseCtx:    ctx,
		cancelBase: cancel,
		conns:      make(map[*WSConn]struct{}),
		stats:      serverStats{start: time.Now(), byMethod: make(map[string]uint64)},
	}
	s.adm = newAdmission(s.cfg.MaxInflight, s.cfg.QueueDepth, s.cfg.QueueWait, s.cfg.ShedWindow)
	s.resp = newRespCache(s.cfg.RespCacheSize)
	s.solve = s.solveCell
	s.stream = s.runStream
	return s
}

// Handler returns the daemon's HTTP surface.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/rpc", s.handleHTTP)
	mux.HandleFunc("/ws", s.handleWS)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		switch {
		case s.draining.Load():
			http.Error(w, "draining", http.StatusServiceUnavailable)
		case s.adm.overloaded():
			// Degraded while shedding: load balancers steer away until a
			// full shed window passes without a rejection.
			w.Header().Set("Retry-After", retryAfterSeconds(s.adm.retryAfterMs()))
			http.Error(w, "overloaded", http.StatusServiceUnavailable)
		default:
			io.WriteString(w, "ok\n")
		}
	})
	return mux
}

// Shutdown drains the server: new requests are rejected with
// CodeShuttingDown, streams are cancelled (each sends a terminal error
// response before its goroutine exits), in-flight solves run to
// completion, and WebSocket connections are closed. It returns ctx's
// error if draining outlives it.
func (s *Server) Shutdown(ctx context.Context) error {
	s.draining.Store(true)
	s.cancelBase()
	done := make(chan struct{})
	go func() {
		s.inflight.Wait()
		close(done)
	}()
	var err error
	select {
	case <-done:
	case <-ctx.Done():
		err = fmt.Errorf("rpc: shutdown: %w", ctx.Err())
	}
	s.connMu.Lock()
	for c := range s.conns {
		c.Close()
	}
	s.conns = make(map[*WSConn]struct{})
	s.connMu.Unlock()
	s.cfg.Logf("rpc: shutdown complete (drained=%v)", err == nil)
	return err
}

// budget resolves a request's time budget from its budgetMs parameter.
func (s *Server) budget(budgetMs int) time.Duration {
	b := s.cfg.DefaultBudget
	if budgetMs > 0 {
		b = time.Duration(budgetMs) * time.Millisecond
	}
	if b > s.cfg.MaxBudget {
		b = s.cfg.MaxBudget
	}
	return b
}

// handleHTTP serves one JSON-RPC request over plain HTTP.
func (s *Server) handleHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	// Read one byte past the cap so truncation is detectable: a body of
	// exactly wsMaxMessage+1 read bytes means the client sent more than
	// the cap, which is a size rejection (413), not a parse error.
	body, err := io.ReadAll(io.LimitReader(r.Body, wsMaxMessage+1))
	if err != nil {
		s.stats.errors.Add(1)
		writeHTTPResponse(w, http.StatusBadRequest,
			NewErrorResponse(nil, Errorf(CodeParseError, "unreadable body: %v", err)))
		return
	}
	if len(body) > wsMaxMessage {
		s.stats.errors.Add(1)
		writeHTTPResponse(w, http.StatusRequestEntityTooLarge,
			NewErrorResponse(nil, Errorf(CodeInvalidRequest,
				"request too large: body exceeds %d bytes", wsMaxMessage)))
		return
	}
	req, rerr := ParseRequest(body)
	if rerr != nil {
		s.stats.errors.Add(1)
		writeHTTPResponse(w, http.StatusBadRequest, NewErrorResponse(req.ID, rerr))
		return
	}
	if s.draining.Load() {
		writeHTTPResponse(w, http.StatusServiceUnavailable,
			NewErrorResponse(req.ID, Errorf(CodeShuttingDown, "server is shutting down")))
		return
	}
	s.inflight.Add(1)
	defer s.inflight.Done()
	resp, ok := s.dispatch(r.Context(), req, false)
	if !ok { // notification: no response body
		w.WriteHeader(http.StatusNoContent)
		return
	}
	status := http.StatusOK
	if resp.Error != nil && resp.Error.Code == CodeOverloaded {
		// Shed responses surface at the HTTP layer too, so plain HTTP
		// clients and proxies can back off without parsing JSON-RPC.
		status = http.StatusServiceUnavailable
		w.Header().Set("Retry-After", retryAfterSeconds(s.adm.retryAfterMs()))
	}
	writeHTTPResponse(w, status, resp)
}

// retryAfterSeconds renders a Retry-After header value (whole seconds,
// rounded up, at least 1).
func retryAfterSeconds(ms int) string {
	secs := (ms + 999) / 1000
	if secs < 1 {
		secs = 1
	}
	return fmt.Sprintf("%d", secs)
}

// writeHTTPResponse encodes one JSON-RPC response over HTTP.
func writeHTTPResponse(w http.ResponseWriter, status int, resp Response) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	data, err := json.Marshal(resp)
	if err != nil {
		return
	}
	w.Write(data)
}

// dispatch routes one parsed request to its method handler. ok is false
// for notifications (no response is due). ws reports whether the request
// arrived over the WebSocket channel (where swap.simulate is legal).
func (s *Server) dispatch(ctx context.Context, req Request, ws bool) (Response, bool) {
	s.stats.record(req.Method)
	result, rerr := s.call(ctx, req)
	if req.IsNotification() {
		return Response{}, false
	}
	if rerr != nil {
		s.stats.errors.Add(1)
		return NewErrorResponse(req.ID, rerr), true
	}
	return NewResponse(req.ID, result), true
}

// call runs one method handler under the robustness envelope: admission
// control for the expensive methods, fault injection when armed, and a
// recover that converts a handler panic into CodeInternalError — the
// daemon never dies for one request.
func (s *Server) call(ctx context.Context, req Request) (result any, rerr *Error) {
	defer func() {
		if r := recover(); r != nil {
			s.stats.panics.Add(1)
			s.cfg.Logf("rpc: %s handler panicked (recovered): %v", req.Method, r)
			result, rerr = nil, Errorf(CodeInternalError, "internal error: %s handler panicked", req.Method)
		}
	}()
	// swap.solve runs its own admission + fault sequence inside
	// handleSolve, after the response-cache lookup: a cached repeat quote
	// must not burn an admission slot (or an injected fault) on work the
	// daemon is not doing.
	if req.Method != "swap.solve" {
		if req.Method == "scenario.diff" {
			if rerr := s.adm.acquire(ctx); rerr != nil {
				return nil, rerr
			}
			defer s.adm.release()
		}
		// Faults fire while the admission slot is held, so injected
		// latency creates genuine in-flight pressure.
		if rerr := s.injectFaults(ctx); rerr != nil {
			return nil, rerr
		}
	}
	switch req.Method {
	case "swap.solve":
		result, rerr = s.handleSolve(ctx, req.Params)
	case "scenario.list":
		result, rerr = s.handleList()
	case "scenario.diff":
		result, rerr = s.handleDiff(ctx, req.Params)
	case "swapd.stats":
		result, rerr = s.handleStats()
	case "swap.simulate":
		rerr = Errorf(CodeInvalidRequest, "swap.simulate streams over the WebSocket channel: connect to /ws")
	case "swap.cancel":
		rerr = Errorf(CodeInvalidRequest, "swap.cancel applies to WebSocket streams: connect to /ws")
	default:
		rerr = Errorf(CodeMethodNotFound, "unknown method %q", req.Method)
	}
	return result, rerr
}

// injectFaults fires the armed RPC faults (latency, error, panic), in
// that order. It returns the injected error, if any.
func (s *Server) injectFaults(ctx context.Context) *Error {
	if d, ok := s.cfg.Fault.Delay(fault.KeyRPCLatency); ok {
		sleepCtx(ctx, d)
	}
	if s.cfg.Fault.Fire(fault.KeyRPCError) {
		return Errorf(CodeInternalError, "injected fault: %s", fault.KeyRPCError)
	}
	if s.cfg.Fault.Fire(fault.KeyRPCPanic) {
		panic("injected fault: " + fault.KeyRPCPanic)
	}
	return nil
}

// sleepCtx sleeps for d or until ctx is done, whichever comes first.
func sleepCtx(ctx context.Context, d time.Duration) {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
	case <-ctx.Done():
	}
}

// asRPCError maps a handler error onto a JSON-RPC error object,
// classifying context errors as budget/cancellation outcomes.
func (s *Server) asRPCError(err error) *Error {
	var rerr *Error
	switch {
	case errors.As(err, &rerr):
		return rerr
	case errors.Is(err, solvecache.ErrFlightPanicked):
		// The coalesced leader panicked; waiters get the same isolation
		// contract the leader's own requester does.
		return Errorf(CodeInternalError, "internal error: coalesced computation panicked")
	case errors.Is(err, context.DeadlineExceeded):
		return Errorf(CodeBudgetExceeded, "request budget exceeded")
	case errors.Is(err, context.Canceled):
		if s.draining.Load() {
			return Errorf(CodeShuttingDown, "server is shutting down")
		}
		return Errorf(CodeCanceled, "request cancelled")
	default:
		return Errorf(CodeInternalError, "%v", err)
	}
}
