package memo

import (
	"sync"
	"sync/atomic"
	"testing"
)

func TestDoComputesOncePerKey(t *testing.T) {
	var m Map[int, int]
	calls := 0
	for i := 0; i < 5; i++ {
		got := m.Do(7, func() int { calls++; return 42 })
		if got != 42 {
			t.Fatalf("Do(7) = %d, want 42", got)
		}
	}
	if calls != 1 {
		t.Fatalf("compute ran %d times, want 1", calls)
	}
	if got := m.Do(8, func() int { return 43 }); got != 43 {
		t.Fatalf("Do(8) = %d, want 43", got)
	}
	hits, misses := m.Stats()
	if hits != 4 || misses != 2 {
		t.Fatalf("Stats() = (%d, %d), want (4, 2)", hits, misses)
	}
	if n := m.Len(); n != 2 {
		t.Fatalf("Len() = %d, want 2", n)
	}
}

func TestGetDoesNotCompute(t *testing.T) {
	var m Map[string, float64]
	if _, ok := m.Get("missing"); ok {
		t.Fatal("Get on empty map reported a value")
	}
	m.Do("k", func() float64 { return 1.5 })
	v, ok := m.Get("k")
	if !ok || v != 1.5 {
		t.Fatalf("Get(k) = (%g, %v), want (1.5, true)", v, ok)
	}
}

// TestConcurrentDoSharesOneComputation hammers one key from many
// goroutines: the compute function must run exactly once and every caller
// must observe its value (run with -race in CI).
func TestConcurrentDoSharesOneComputation(t *testing.T) {
	var m Map[int, *int]
	var calls atomic.Int32
	var wg sync.WaitGroup
	start := make(chan struct{})
	results := make([]*int, 64)
	for i := range results {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			results[i] = m.Do(1, func() *int {
				calls.Add(1)
				v := 99
				return &v
			})
		}(i)
	}
	close(start)
	wg.Wait()
	if got := calls.Load(); got != 1 {
		t.Fatalf("compute ran %d times, want 1", got)
	}
	for i, r := range results {
		if r != results[0] {
			t.Fatalf("caller %d saw a different pointer", i)
		}
		if *r != 99 {
			t.Fatalf("caller %d saw value %d", i, *r)
		}
	}
}

// TestConcurrentDistinctKeys checks independent keys do not serialise or
// cross results.
// TestInFlightEntryVisibility covers the in-flight branches: while a first
// computation runs, Get reports the key absent and Range skips it; a
// concurrent Do blocks until the winner finishes and returns its value.
func TestInFlightEntryVisibility(t *testing.T) {
	var m Map[int, int]
	started := make(chan struct{})
	release := make(chan struct{})
	go m.Do(1, func() int {
		close(started)
		<-release
		return 10
	})
	<-started
	if _, ok := m.Get(1); ok {
		t.Error("Get returned an in-flight entry")
	}
	seen := 0
	m.Range(func(int, int) bool { seen++; return true })
	if seen != 0 {
		t.Errorf("Range visited %d in-flight entries", seen)
	}
	done := make(chan int)
	go func() { done <- m.Do(1, func() int { t.Error("second compute ran"); return -1 }) }()
	close(release)
	if got := <-done; got != 10 {
		t.Errorf("waiter saw %d, want 10", got)
	}
	if v, ok := m.Get(1); !ok || v != 10 {
		t.Errorf("Get after completion = (%d, %v)", v, ok)
	}
}

// TestPanicPropagatesAndPoisons pins the failure mode a deadlock review
// found: a panicking compute must re-panic in the caller AND in every
// waiter (never block them), and later lookups must not silently read a
// zero value.
func TestPanicPropagatesAndPoisons(t *testing.T) {
	var m Map[int, int]
	mustPanic := func(name string) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s did not panic", name)
			}
		}()
		m.Do(1, func() int { panic("boom") })
	}
	mustPanic("first Do")
	// The key is poisoned: a second Do re-panics instead of blocking or
	// recomputing, and Get reports the key absent.
	mustPanic("second Do")
	if _, ok := m.Get(1); ok {
		t.Fatal("Get returned a value for a poisoned key")
	}
	// Concurrent waiters during the panic also re-panic rather than hang.
	var m2 Map[int, int]
	started := make(chan struct{})
	release := make(chan struct{})
	waiterDone := make(chan any, 1)
	go func() {
		defer func() { waiterDone <- recover() }()
		<-started
		m2.Do(7, func() int { t.Error("waiter recomputed"); return 0 })
	}()
	go func() {
		defer func() { recover() }()
		m2.Do(7, func() int { close(started); <-release; panic("late boom") })
	}()
	<-started
	close(release)
	if r := <-waiterDone; r == nil {
		t.Fatal("waiter did not observe the panic")
	}
}

func TestRangeStopsEarly(t *testing.T) {
	var m Map[int, int]
	for k := 0; k < 10; k++ {
		m.Do(k, func() int { return k })
	}
	visited := 0
	m.Range(func(int, int) bool { visited++; return false })
	if visited != 1 {
		t.Errorf("Range visited %d entries after returning false, want 1", visited)
	}
}

func TestConcurrentDistinctKeys(t *testing.T) {
	var m Map[int, int]
	var wg sync.WaitGroup
	for k := 0; k < 32; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			for rep := 0; rep < 10; rep++ {
				if got := m.Do(k, func() int { return k * k }); got != k*k {
					t.Errorf("Do(%d) = %d, want %d", k, got, k*k)
				}
			}
		}(k)
	}
	wg.Wait()
	if n := m.Len(); n != 32 {
		t.Fatalf("Len() = %d, want 32", n)
	}
}
