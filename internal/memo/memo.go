// Package memo provides the small concurrency-safe memoization primitive
// under the repository's amortized solve engine: a generic map from a
// comparable key to a compute-once value, with lock-free reads on the hit
// path and hit/miss counters for cache introspection.
//
// It is a leaf package (no repro imports) so that both the numeric layers
// (internal/mathx quadrature tables) and the solver layers (internal/core
// per-model solve memos, internal/solvecache cross-artifact model cache)
// can share one implementation.
package memo

import (
	"sync"
	"sync/atomic"
)

// Map memoizes a pure function of K. The zero value is ready to use.
//
// Reads of already-computed entries are lock-free (sync.Map fast path).
// Concurrent first requests for the same key share one computation: losers
// block until the winner's value is stored, so side-effect-free compute
// functions run exactly once per key. Values must be treated as immutable
// by callers — they are returned by reference to every future caller.
type Map[K comparable, V any] struct {
	m      sync.Map // K -> *entry[V]
	hits   atomic.Uint64
	misses atomic.Uint64
}

// entry is a compute-once cell: done is closed after val (or panicked) is
// set, which publishes it to waiters (channel close is a happens-before
// edge). A compute that panicked records the panic value so waiters
// re-panic instead of blocking forever or silently reading a zero value.
type entry[V any] struct {
	done     chan struct{}
	val      V
	panicked any
}

// await blocks until the entry is computed and returns its value,
// re-raising the computing goroutine's panic if it had one.
func (e *entry[V]) await() V {
	<-e.done
	if e.panicked != nil {
		panic(e.panicked)
	}
	return e.val
}

// Do returns the memoized value for key, computing it with compute on the
// first request. compute must be a pure function of key: the value is
// stored forever and shared with every later caller. If compute panics,
// the panic propagates to the caller and to every waiter on the same key
// (the entry stays poisoned: later calls re-panic rather than re-compute,
// matching sync.Once semantics).
func (c *Map[K, V]) Do(key K, compute func() V) V {
	if e, ok := c.m.Load(key); ok {
		c.hits.Add(1)
		return e.(*entry[V]).await()
	}
	fresh := &entry[V]{done: make(chan struct{})}
	e, loaded := c.m.LoadOrStore(key, fresh)
	ent := e.(*entry[V])
	if loaded {
		c.hits.Add(1)
		return ent.await()
	}
	c.misses.Add(1)
	defer func() {
		if r := recover(); r != nil {
			ent.panicked = r
			close(ent.done)
			panic(r)
		}
		close(ent.done)
	}()
	ent.val = compute()
	return ent.val
}

// Get returns the memoized value without computing, and whether it exists.
// An entry whose first computation is still in flight reports false.
func (c *Map[K, V]) Get(key K) (V, bool) {
	var zero V
	e, ok := c.m.Load(key)
	if !ok {
		return zero, false
	}
	ent := e.(*entry[V])
	select {
	case <-ent.done:
		if ent.panicked != nil {
			return zero, false // poisoned by a panicking compute
		}
		return ent.val, true
	default:
		return zero, false
	}
}

// Range calls fn for every completed entry (in-flight computations are
// skipped) until fn returns false. Like sync.Map.Range, it does not
// represent a consistent snapshot.
func (c *Map[K, V]) Range(fn func(key K, val V) bool) {
	c.m.Range(func(k, e any) bool {
		ent := e.(*entry[V])
		select {
		case <-ent.done:
			return fn(k.(K), ent.val)
		default:
			return true
		}
	})
}

// Delete removes the entry for key, if any. Waiters already blocked on the
// entry's first computation are unaffected (they hold the entry and still
// receive its value); a Do racing the delete may recompute, which is
// harmless duplicate work for pure compute functions. Intended for callers
// that bound a Map's size by evicting entries.
func (c *Map[K, V]) Delete(key K) {
	c.m.Delete(key)
}

// Len reports the number of cached entries (including in-flight ones).
func (c *Map[K, V]) Len() int {
	n := 0
	c.m.Range(func(_, _ any) bool { n++; return true })
	return n
}

// Stats returns the cumulative hit and miss counts.
func (c *Map[K, V]) Stats() (hits, misses uint64) {
	return c.hits.Load(), c.misses.Load()
}
