// Package oracle implements the trusted collateral escrow of §IV.A: before
// the swap both agents deposit Q Token_a with a smart contract on Chain_a;
// an Oracle that observes both chains releases each deposit when the owner
// has fulfilled their obligations and forfeits it to the counterparty on a
// stop. The paper notes no such Oracle service exists in production
// ("this setup is theoretical"); here it is an omniscient observer of the
// simulated ledgers, applying §IV.A's rules verbatim:
//
//   - t3 (B's lock deadline): B's HTLC confirmed on Chain_b → release B's
//     deposit (received at t3+τa). B stopped → both deposits, 2Q, to A.
//   - t4 (A's reveal deadline, t3+εb): secret visible in Chain_b's mempool →
//     release A's deposit (received at t4+τa). A stopped → her deposit to B.
//   - A never initiated: both deposits returned at t2.
package oracle

import (
	"errors"
	"fmt"

	"repro/internal/chain"
	"repro/internal/htlc"
	"repro/internal/sim"
	"repro/internal/timeline"
)

// Errors returned by the oracle.
var (
	// ErrBadConfig reports invalid construction parameters.
	ErrBadConfig = errors.New("oracle: invalid configuration")
	// ErrDeposit reports a failed deposit collection.
	ErrDeposit = errors.New("oracle: deposit failed")
)

// EscrowAccount is the Chain_a account holding the deposits.
const EscrowAccount = "oracle-escrow"

// Oracle watches both chains and settles the collateral.
type Oracle struct {
	sched  *sim.Scheduler
	chainA *chain.Chain
	chainB *chain.Chain
	tl     timeline.Timeline
	q      float64
	alice  string
	bob    string

	secretSeenAt float64 // 0 = not seen
	settledA     bool
	settledB     bool
	log          []string
	noLog        bool

	// Built once so per-path re-arming captures no closures (the chains'
	// observer lists are cleared on every reset).
	onSecretFn    chain.SecretObserver
	aliceLivePred func(*htlc.Contract) bool
	bobLivePred   func(*htlc.Contract) bool
}

// Scheduler-call adapters (see sim.Scheduler.ScheduleCall): package-level
// functions so arming the three settlement checks allocates nothing.
func checkInitiationCall(o, _ any)  { o.(*Oracle).checkInitiation() }
func checkBobLockCall(o, _ any)     { o.(*Oracle).checkBobLock() }
func checkAliceRevealCall(o, _ any) { o.(*Oracle).checkAliceReveal() }

// New creates the oracle. q is the per-agent deposit in Token_a.
func New(sched *sim.Scheduler, chainA, chainB *chain.Chain, tl timeline.Timeline, q float64, alice, bob string) (*Oracle, error) {
	switch {
	case sched == nil || chainA == nil || chainB == nil:
		return nil, fmt.Errorf("%w: nil component", ErrBadConfig)
	case q <= 0:
		return nil, fmt.Errorf("%w: deposit q=%g must be > 0", ErrBadConfig, q)
	case alice == "" || bob == "" || alice == bob:
		return nil, fmt.Errorf("%w: parties %q/%q", ErrBadConfig, alice, bob)
	}
	o := &Oracle{
		sched:  sched,
		chainA: chainA,
		chainB: chainB,
		tl:     tl,
		q:      q,
		alice:  alice,
		bob:    bob,
	}
	o.onSecretFn = func(contractID string, secret htlc.Secret) {
		if o.secretSeenAt == 0 {
			o.secretSeenAt = o.sched.Now()
		}
	}
	o.aliceLivePred = func(c *htlc.Contract) bool { return c.Recipient == o.bob }
	o.bobLivePred = func(c *htlc.Contract) bool { return c.Recipient == o.alice }
	return o, nil
}

// SetLogging toggles the settlement log (on by default). Formatting one
// line per release dominates the oracle's per-path allocation cost;
// throughput-oriented callers (the Monte Carlo runner) turn it off.
func (o *Oracle) SetLogging(on bool) { o.noLog = !on }

// Reset clears the oracle's per-run settlement state (secret sighting,
// settlement flags, log) so it can be re-armed with CollectDeposits on a
// reset chain pair, keeping the log capacity.
func (o *Oracle) Reset() {
	o.secretSeenAt = 0
	o.settledA, o.settledB = false, false
	o.log = o.log[:0]
}

// Log returns the oracle's settlement decisions in order.
func (o *Oracle) Log() []string {
	out := make([]string, len(o.log))
	copy(out, o.log)
	return out
}

// CollectDeposits debits Q from each agent into the escrow account
// immediately (the paper's assumption 1: deposits are in place before the
// swap starts) and arms the settlement checks.
func (o *Oracle) CollectDeposits() error {
	for _, acct := range []string{o.alice, o.bob} {
		if o.chainA.Balance(acct) < o.q {
			return fmt.Errorf("%w: %s has %g, needs %g", ErrDeposit, acct, o.chainA.Balance(acct), o.q)
		}
	}
	// Deposits are modelled as instantaneous at t0: the smart contract
	// already holds the allowance (§IV.A assumption 1).
	if err := o.debit(o.alice); err != nil {
		return err
	}
	if err := o.debit(o.bob); err != nil {
		return err
	}
	o.chainB.WatchSecrets(o.onSecretFn)
	if err := o.sched.ScheduleCall(o.tl.T2, sim.PriorityDefault, "oracle-check-initiation", checkInitiationCall, o, nil); err != nil {
		return fmt.Errorf("oracle: arming t2 check: %w", err)
	}
	if err := o.sched.ScheduleCall(o.tl.T3, sim.PriorityDefault, "oracle-check-bob", checkBobLockCall, o, nil); err != nil {
		return fmt.Errorf("oracle: arming t3 check: %w", err)
	}
	if err := o.sched.ScheduleCall(o.tl.T4, sim.PriorityDefault, "oracle-check-alice", checkAliceRevealCall, o, nil); err != nil {
		return fmt.Errorf("oracle: arming t4 check: %w", err)
	}
	return nil
}

func (o *Oracle) debit(acct string) error {
	// Direct balance manipulation models the pre-approved allowance pull;
	// Mint(-) is not available, so transfer instantly via the chain's
	// bookkeeping primitives.
	if o.chainA.Balance(acct) < o.q {
		return fmt.Errorf("%w: %s", ErrDeposit, acct)
	}
	if err := o.chainA.Mint(EscrowAccount, o.q); err != nil {
		return fmt.Errorf("oracle: escrow credit: %w", err)
	}
	if err := o.chainA.Burn(acct, o.q); err != nil {
		return fmt.Errorf("oracle: deposit debit: %w", err)
	}
	return nil
}

// release pays amount from escrow to acct via an on-chain transfer, which
// confirms τa later — matching the paper's receipt delays (t3+τa, t4+τa).
func (o *Oracle) release(acct string, amount float64, why string) {
	if amount <= 0 {
		return
	}
	if _, err := o.chainA.SubmitTransfer(EscrowAccount, acct, amount); err != nil {
		if !o.noLog {
			o.log = append(o.log, fmt.Sprintf("%.2f release to %s FAILED: %v", o.sched.Now(), acct, err))
		}
		return
	}
	if !o.noLog {
		o.log = append(o.log, fmt.Sprintf("%.2f release %g to %s (%s)", o.sched.Now(), amount, acct, why))
	}
}

// aliceInitiated reports whether Alice's HTLC is live on Chain_a.
func (o *Oracle) aliceInitiated() bool {
	_, ok := o.chainA.FindContract(o.aliceLivePred)
	return ok
}

// bobLocked reports whether Bob's HTLC is live on Chain_b.
func (o *Oracle) bobLocked() bool {
	_, ok := o.chainB.FindContract(o.bobLivePred)
	return ok
}

// checkInitiation returns both deposits if the swap never started
// (Eqs. 38–39: on a t1 stop each agent keeps token and deposit).
func (o *Oracle) checkInitiation() {
	if o.aliceInitiated() {
		return
	}
	o.settledA, o.settledB = true, true
	o.release(o.alice, o.q, "no swap: deposit returned")
	o.release(o.bob, o.q, "no swap: deposit returned")
}

// checkBobLock settles B's deposit at t3: released if he locked, forfeited
// to A (together with A's own deposit exposure staying armed) otherwise.
func (o *Oracle) checkBobLock() {
	if o.settledB {
		return
	}
	o.settledB = true
	if o.bobLocked() {
		o.release(o.bob, o.q, "B fulfilled: HTLC on chain_b confirmed")
		return
	}
	// B stopped at t2: both deposits to A (§IV.A.3 stop branch).
	o.settledA = true
	o.release(o.alice, 2*o.q, "B stopped: both deposits to A")
}

// checkAliceReveal settles A's deposit at t4 = t3+εb: released if the
// secret is visible in Chain_b's mempool, forfeited to B otherwise.
func (o *Oracle) checkAliceReveal() {
	if o.settledA {
		return
	}
	o.settledA = true
	if o.secretSeenAt > 0 && o.secretSeenAt <= o.tl.T4 {
		o.release(o.alice, o.q, "A fulfilled: secret revealed")
		return
	}
	o.release(o.bob, o.q, "A stopped: deposit to B")
}
