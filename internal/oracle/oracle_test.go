package oracle

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/chain"
	"repro/internal/htlc"
	"repro/internal/sim"
	"repro/internal/timeline"
)

type fixture struct {
	sched  *sim.Scheduler
	chainA *chain.Chain
	chainB *chain.Chain
	tl     timeline.Timeline
	orc    *Oracle
}

func newFixture(t *testing.T, q float64) *fixture {
	t.Helper()
	sched := sim.NewScheduler()
	tl, err := timeline.Idealized(timeline.Chains{TauA: 3, TauB: 4, EpsB: 1})
	if err != nil {
		t.Fatal(err)
	}
	ca, err := chain.New(chain.Config{Name: "chain_a", Asset: "TokenA", Tau: 3, Eps: 0}, sched)
	if err != nil {
		t.Fatal(err)
	}
	cb, err := chain.New(chain.Config{Name: "chain_b", Asset: "TokenB", Tau: 4, Eps: 1}, sched)
	if err != nil {
		t.Fatal(err)
	}
	if err := ca.Mint("alice", 10); err != nil {
		t.Fatal(err)
	}
	if err := ca.Mint("bob", 10); err != nil {
		t.Fatal(err)
	}
	if err := cb.Mint("bob", 2); err != nil {
		t.Fatal(err)
	}
	orc, err := New(sched, ca, cb, tl, q, "alice", "bob")
	if err != nil {
		t.Fatal(err)
	}
	return &fixture{sched: sched, chainA: ca, chainB: cb, tl: tl, orc: orc}
}

func TestNewValidation(t *testing.T) {
	f := newFixture(t, 0.1)
	tests := []struct {
		name string
		make func() (*Oracle, error)
	}{
		{"nilSched", func() (*Oracle, error) { return New(nil, f.chainA, f.chainB, f.tl, 0.1, "a", "b") }},
		{"nilChain", func() (*Oracle, error) { return New(f.sched, nil, f.chainB, f.tl, 0.1, "a", "b") }},
		{"zeroQ", func() (*Oracle, error) { return New(f.sched, f.chainA, f.chainB, f.tl, 0, "a", "b") }},
		{"sameParty", func() (*Oracle, error) { return New(f.sched, f.chainA, f.chainB, f.tl, 0.1, "a", "a") }},
		{"emptyParty", func() (*Oracle, error) { return New(f.sched, f.chainA, f.chainB, f.tl, 0.1, "", "b") }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := tt.make(); !errors.Is(err, ErrBadConfig) {
				t.Errorf("err = %v, want ErrBadConfig", err)
			}
		})
	}
}

func TestCollectDepositsDebitsBoth(t *testing.T) {
	f := newFixture(t, 0.5)
	if err := f.orc.CollectDeposits(); err != nil {
		t.Fatalf("CollectDeposits: %v", err)
	}
	if got := f.chainA.Balance("alice"); got != 9.5 {
		t.Errorf("alice balance = %v, want 9.5", got)
	}
	if got := f.chainA.Balance("bob"); got != 9.5 {
		t.Errorf("bob balance = %v, want 9.5", got)
	}
	if got := f.chainA.Balance(EscrowAccount); got != 1.0 {
		t.Errorf("escrow = %v, want 1.0", got)
	}
}

func TestCollectDepositsInsufficientFunds(t *testing.T) {
	f := newFixture(t, 100)
	if err := f.orc.CollectDeposits(); !errors.Is(err, ErrDeposit) {
		t.Errorf("err = %v, want ErrDeposit", err)
	}
}

func TestNoSwapReturnsBothDeposits(t *testing.T) {
	f := newFixture(t, 0.5)
	if err := f.orc.CollectDeposits(); err != nil {
		t.Fatal(err)
	}
	f.sched.Run()
	// Nothing happened on-chain: both deposits returned at t2, received τa
	// later.
	if got := f.chainA.Balance("alice"); got != 10 {
		t.Errorf("alice balance = %v, want 10", got)
	}
	if got := f.chainA.Balance("bob"); got != 10 {
		t.Errorf("bob balance = %v, want 10", got)
	}
	if got := f.chainA.Balance(EscrowAccount); got != 0 {
		t.Errorf("escrow = %v, want 0", got)
	}
}

// runSwap drives the chains through the protocol steps directly (without
// the agent package, to isolate oracle behaviour).
func runSwap(t *testing.T, f *fixture, bobLocks, aliceReveals bool) {
	t.Helper()
	secret, hash, err := htlc.NewSecret(nil)
	if err != nil {
		t.Fatal(err)
	}
	// t1 = 0: Alice locks on chain_a.
	if _, _, err := f.chainA.SubmitLock("alice", "bob", 2, hash, f.tl.TA); err != nil {
		t.Fatal(err)
	}
	if bobLocks {
		if err := f.sched.Schedule(f.tl.T2, "bob-lock", func() {
			if _, ctID, err := f.chainB.SubmitLock("bob", "alice", 1, hash, f.tl.TB); err != nil {
				t.Errorf("bob lock: %v", err)
			} else if aliceReveals {
				if err := f.sched.Schedule(f.tl.T3, "alice-claim", func() {
					if _, err := f.chainB.SubmitClaim(ctID, secret); err != nil {
						t.Errorf("alice claim: %v", err)
					}
				}); err != nil {
					t.Error(err)
				}
			}
		}); err != nil {
			t.Fatal(err)
		}
	}
	f.sched.Run()
}

func TestSuccessfulSwapReturnsDeposits(t *testing.T) {
	f := newFixture(t, 0.5)
	if err := f.orc.CollectDeposits(); err != nil {
		t.Fatal(err)
	}
	runSwap(t, f, true, true)
	// Both fulfilled: each gets their own deposit back.
	// Alice: 10 − 0.5 (deposit) − 2 (locked) + 0.5 (returned) = 8.
	if got := f.chainA.Balance("alice"); got != 8 {
		t.Errorf("alice TokenA = %v, want 8", got)
	}
	// Bob: 10 − 0.5 + 0.5 = 10 … but he also claimed? (no claim in this
	// fixture: Alice revealed, Bob's chain_a claim is out of oracle scope).
	if got := f.chainA.Balance("bob"); got != 10 {
		t.Errorf("bob TokenA = %v, want 10", got)
	}
	if got := f.chainA.Balance(EscrowAccount); got != 0 {
		t.Errorf("escrow = %v, want 0", got)
	}
	log := strings.Join(f.orc.Log(), "\n")
	if !strings.Contains(log, "B fulfilled") || !strings.Contains(log, "A fulfilled") {
		t.Errorf("oracle log missing releases:\n%s", log)
	}
}

func TestBobStopForfeitsDepositToAlice(t *testing.T) {
	f := newFixture(t, 0.5)
	if err := f.orc.CollectDeposits(); err != nil {
		t.Fatal(err)
	}
	runSwap(t, f, false, false)
	// B never locked: A receives both deposits (2Q = 1.0) at t3+τa. Her own
	// 2 TokenA stay escrowed here because runSwap does not exercise the
	// HTLC refund path (covered by TestRefundsCompleteTheUnwind):
	// 10 − 0.5 (deposit) − 2 (locked) + 1.0 (both deposits) = 8.5.
	if got := f.chainA.Balance("alice"); got != 8.5 {
		t.Errorf("alice TokenA = %v, want 8.5", got)
	}
	if got := f.chainA.Balance("bob"); got != 9.5 {
		t.Errorf("bob TokenA = %v, want 9.5 (deposit forfeited)", got)
	}
	log := strings.Join(f.orc.Log(), "\n")
	if !strings.Contains(log, "B stopped") {
		t.Errorf("oracle log missing B-stop branch:\n%s", log)
	}
}

func TestAliceStopForfeitsDepositToBob(t *testing.T) {
	f := newFixture(t, 0.5)
	if err := f.orc.CollectDeposits(); err != nil {
		t.Fatal(err)
	}
	runSwap(t, f, true, false)
	// B fulfilled (deposit back); A never revealed (deposit to B). Her
	// locked 2 TokenA stay escrowed (no refund step in this fixture):
	// 10 − 0.5 (deposit) − 2 (locked) = 7.5.
	if got := f.chainA.Balance("alice"); got != 7.5 {
		t.Errorf("alice TokenA = %v, want 7.5", got)
	}
	// Bob: 10 − 0.5 + 0.5 (own back) + 0.5 (Alice's) = 10.5; his Token_b is
	// refunded on chain_b at t7.
	if got := f.chainA.Balance("bob"); got != 10.5 {
		t.Errorf("bob TokenA = %v, want 10.5", got)
	}
	log := strings.Join(f.orc.Log(), "\n")
	if !strings.Contains(log, "A stopped") {
		t.Errorf("oracle log missing A-stop branch:\n%s", log)
	}
}

func TestRefundsCompleteTheUnwind(t *testing.T) {
	// Companion to TestBobStopForfeits…: Alice's escrowed 2 TokenA are
	// refunded via the HTLC path at t8; schedule that refund explicitly.
	f := newFixture(t, 0.5)
	if err := f.orc.CollectDeposits(); err != nil {
		t.Fatal(err)
	}
	secret, hash, err := htlc.NewSecret(nil)
	if err != nil {
		t.Fatal(err)
	}
	_ = secret
	_, ctID, err := f.chainA.SubmitLock("alice", "bob", 2, hash, f.tl.TA)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.sched.Schedule(f.tl.TA, "alice-refund", func() {
		if _, err := f.chainA.SubmitRefund(ctID); err != nil {
			t.Errorf("refund: %v", err)
		}
	}); err != nil {
		t.Fatal(err)
	}
	f.sched.Run()
	if got := f.chainA.Balance("alice"); got != 10.5 {
		t.Errorf("alice TokenA = %v, want 10.5 (refund + both deposits)", got)
	}
}

func TestResetReArmsAcrossRuns(t *testing.T) {
	// First run: no swap happens, so both deposits come back at t2.
	f := newFixture(t, 0.5)
	if err := f.orc.CollectDeposits(); err != nil {
		t.Fatal(err)
	}
	f.sched.Run()
	if len(f.orc.Log()) == 0 {
		t.Fatal("first run settled nothing")
	}
	aliceAfterFirst := f.chainA.Balance("alice")

	// Reset the whole stack and replay: the reused oracle must settle the
	// second run exactly like the first.
	f.sched.Reset()
	f.chainA.Reset()
	f.chainB.Reset()
	if err := f.chainA.Mint("alice", 10); err != nil {
		t.Fatal(err)
	}
	if err := f.chainA.Mint("bob", 10); err != nil {
		t.Fatal(err)
	}
	f.orc.Reset()
	if len(f.orc.Log()) != 0 {
		t.Errorf("Reset left a settlement log: %v", f.orc.Log())
	}
	if err := f.orc.CollectDeposits(); err != nil {
		t.Fatalf("CollectDeposits after reset: %v", err)
	}
	f.sched.Run()
	if got := f.chainA.Balance("alice"); got != aliceAfterFirst {
		t.Errorf("second run left alice with %g, first run %g", got, aliceAfterFirst)
	}
	if len(f.orc.Log()) == 0 {
		t.Error("reused oracle settled nothing on the second run")
	}
}
