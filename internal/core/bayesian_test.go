package core

import (
	"errors"
	"math"
	"testing"
)

func TestTypePriorValidate(t *testing.T) {
	tests := []struct {
		name    string
		prior   TypePrior
		wantErr bool
	}{
		{"point", PointPrior(0.3), false},
		{"twoPoint", TypePrior{Values: []float64{0.1, 0.5}, Probs: []float64{0.5, 0.5}}, false},
		{"empty", TypePrior{}, true},
		{"lengthMismatch", TypePrior{Values: []float64{0.3}, Probs: []float64{0.5, 0.5}}, true},
		{"negativePremium", TypePrior{Values: []float64{-0.1}, Probs: []float64{1}}, true},
		{"probsDontSum", TypePrior{Values: []float64{0.1, 0.5}, Probs: []float64{0.5, 0.2}}, true},
		{"negativeProb", TypePrior{Values: []float64{0.1, 0.5}, Probs: []float64{-0.5, 1.5}}, true},
		{"nanValue", TypePrior{Values: []float64{math.NaN()}, Probs: []float64{1}}, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := tt.prior.Validate()
			if (err != nil) != tt.wantErr {
				t.Errorf("Validate() = %v, wantErr %v", err, tt.wantErr)
			}
		})
	}
}

func TestTypePriorMean(t *testing.T) {
	tp := TypePrior{Values: []float64{0.1, 0.5}, Probs: []float64{0.25, 0.75}}
	if got := tp.Mean(); math.Abs(got-0.4) > 1e-15 {
		t.Errorf("Mean = %v, want 0.4", got)
	}
}

func TestBayesianConstruction(t *testing.T) {
	m := newDefaultModel(t)
	if _, err := m.Bayesian(TypePrior{}, PointPrior(0.3)); !errors.Is(err, ErrBadParam) {
		t.Errorf("bad priorA err = %v", err)
	}
	if _, err := m.Bayesian(PointPrior(0.3), TypePrior{}); !errors.Is(err, ErrBadParam) {
		t.Errorf("bad priorB err = %v", err)
	}
	if _, err := m.Bayesian(PointPrior(0.3), PointPrior(0.3)); err != nil {
		t.Errorf("valid priors err = %v", err)
	}
}

func TestBayesianDegeneratePriorsReproduceBasicGame(t *testing.T) {
	// Point priors at the Table III premia must reproduce the
	// complete-information solution exactly.
	m := newDefaultModel(t)
	b, err := m.Bayesian(PointPrior(0.3), PointPrior(0.3))
	if err != nil {
		t.Fatal(err)
	}
	const pstar = 2.0

	cut, err := b.CutoffT3(0.3, pstar)
	if err != nil {
		t.Fatal(err)
	}
	wantCut, _ := m.CutoffT3(pstar)
	if !almostEqual(cut, wantCut, 1e-12) {
		t.Errorf("cutoff %v, want %v", cut, wantCut)
	}

	set, err := b.ContSetT2(0.3, pstar)
	if err != nil {
		t.Fatal(err)
	}
	iv, ok, _ := m.ContRangeT2(pstar)
	if !ok {
		t.Fatal("basic range missing")
	}
	bounds := set.Bounds()
	if !almostEqual(bounds.Lo, iv.Lo, 1e-6) || !almostEqual(bounds.Hi, iv.Hi, 1e-6) {
		t.Errorf("region %v, want %v", bounds, iv)
	}

	sr, ok, err := b.SuccessRate(pstar)
	if err != nil || !ok {
		t.Fatalf("SuccessRate: %v ok=%v", err, ok)
	}
	wantSR, _ := m.SuccessRate(pstar)
	if !almostEqual(sr, wantSR, 1e-9) {
		t.Errorf("SR %v, want %v", sr, wantSR)
	}

	init, err := b.AliceInitiates(0.3, pstar)
	if err != nil {
		t.Fatal(err)
	}
	strat, _ := m.Strategy(pstar)
	if init != strat.AliceInitiates {
		t.Errorf("initiation %v, want %v", init, strat.AliceInitiates)
	}
}

func TestBayesianRegionMonotoneInOwnPremium(t *testing.T) {
	// A more eager B (higher own αB) continues on a weakly larger region,
	// whatever his belief about A.
	m := newDefaultModel(t)
	priorA := TypePrior{Values: []float64{0.15, 0.45}, Probs: []float64{0.5, 0.5}}
	b, err := m.Bayesian(priorA, PointPrior(0.3))
	if err != nil {
		t.Fatal(err)
	}
	var prevLen float64
	for i, alphaB := range []float64{0.15, 0.3, 0.45} {
		set, err := b.ContSetT2(alphaB, 2.0)
		if err != nil {
			t.Fatal(err)
		}
		l := set.TotalLen()
		if i > 0 && l < prevLen-1e-9 {
			t.Errorf("region length shrank with αB: %v then %v", prevLen, l)
		}
		prevLen = l
	}
}

func TestBayesianUncertaintyAboutBobLowersSR(t *testing.T) {
	// A mean-preserving spread over αB that puts mass on a type who never
	// locks must lower the success rate versus the point prior at the mean:
	// the low-α type contributes zero success.
	m := newDefaultModel(t)
	const pstar = 2.0
	point, err := m.Bayesian(PointPrior(0.3), PointPrior(0.3))
	if err != nil {
		t.Fatal(err)
	}
	srPoint, ok, err := point.SuccessRate(pstar)
	if err != nil || !ok {
		t.Fatal(err)
	}
	// αB ∈ {0.05, 0.55}: the low type's continuation region is empty
	// (§III.E.3), the high type's is wide; mean preserved at 0.3.
	spread, err := m.Bayesian(PointPrior(0.3),
		TypePrior{Values: []float64{0.05, 0.55}, Probs: []float64{0.5, 0.5}})
	if err != nil {
		t.Fatal(err)
	}
	srSpread, ok, err := spread.SuccessRate(pstar)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("spread prior: nobody initiates")
	}
	if srSpread >= srPoint {
		t.Errorf("spread SR %v should be below point SR %v", srSpread, srPoint)
	}
	if srSpread <= 0 || srSpread >= 1 {
		t.Errorf("spread SR %v out of (0,1)", srSpread)
	}
}

func TestBayesianTypeDependentInitiation(t *testing.T) {
	// At a rate favourable to B, a low-premium A stays out while a
	// high-premium A initiates — initiation is genuinely type-dependent.
	m := newDefaultModel(t)
	b, err := m.Bayesian(
		TypePrior{Values: []float64{0.05, 0.6}, Probs: []float64{0.5, 0.5}},
		PointPrior(0.3),
	)
	if err != nil {
		t.Fatal(err)
	}
	const pstar = 1.9
	lowInit, err := b.AliceInitiates(0.05, pstar)
	if err != nil {
		t.Fatal(err)
	}
	highInit, err := b.AliceInitiates(0.6, pstar)
	if err != nil {
		t.Fatal(err)
	}
	if lowInit {
		t.Error("low-premium A should not initiate at 1.9")
	}
	if !highInit {
		t.Error("high-premium A should initiate at 1.9")
	}
	// SR conditions on the initiating types only.
	sr, ok, err := b.SuccessRate(pstar)
	if err != nil {
		t.Fatal(err)
	}
	if !ok || sr <= 0 {
		t.Errorf("SR = %v ok=%v, want positive conditional SR", sr, ok)
	}
}

func TestBayesianNoInitiation(t *testing.T) {
	// With hopeless premia on both sides nobody initiates.
	m := newDefaultModel(t)
	b, err := m.Bayesian(PointPrior(0.01), PointPrior(0.01))
	if err != nil {
		t.Fatal(err)
	}
	_, ok, err := b.SuccessRate(2.0)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("expected no initiation with tiny premia")
	}
}

func TestBayesianArgumentValidation(t *testing.T) {
	m := newDefaultModel(t)
	b, err := m.Bayesian(PointPrior(0.3), PointPrior(0.3))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.CutoffT3(-0.1, 2); !errors.Is(err, ErrBadParam) {
		t.Errorf("negative type err = %v", err)
	}
	if _, err := b.CutoffT3(0.3, 0); !errors.Is(err, ErrBadParam) {
		t.Errorf("bad rate err = %v", err)
	}
	if _, err := b.ContSetT2(math.NaN(), 2); !errors.Is(err, ErrBadParam) {
		t.Errorf("NaN type err = %v", err)
	}
	if _, err := b.AliceInitiates(-1, 2); !errors.Is(err, ErrBadParam) {
		t.Errorf("bad type err = %v", err)
	}
	if _, _, err := b.SuccessRate(-2); !errors.Is(err, ErrBadParam) {
		t.Errorf("bad rate err = %v", err)
	}
}
