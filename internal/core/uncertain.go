package core

import (
	"fmt"
	"math"

	"repro/internal/dist"
	"repro/internal/mathx"
)

// Uncertain solves the uncertain-exchange-rate extension of §IV.B: A locks
// an amount a of Token_a at t1 (written P* in the paper), B responds at t2
// with an amount X ≥ 0 of Token_b that maximises his excess utility
// (Eq. 44), so the realised exchange rate a/X is uncertain at the outset.
//
// The printed objective (Eq. 43) is homogeneous of degree one in (X, a), so
// its unconstrained maximiser grows like 1/P_t2 as the price falls and A's
// excess utility (Eq. 45) is exactly linear in a — shapes incompatible with
// the humps of Figs. 10a/10b. Those figures are reproduced by the
// economically natural constraint that B cannot lock more Token_b than he
// owns: construct with Model.UncertainWithBudget to cap X at B's holdings
// (Fig. 10a's axis suggests a budget of 5). Model.Uncertain leaves X
// unconstrained, following the printed equations literally. See DESIGN.md.
type Uncertain struct {
	m *Model
	// budget caps B's lockable amount; +Inf when unconstrained.
	budget float64
}

// Uncertain returns the solver for the uncertain-exchange-rate game with an
// unconstrained best response for B (the printed Eq. 44).
func (m *Model) Uncertain() *Uncertain {
	return &Uncertain{m: m, budget: math.Inf(1)}
}

// UncertainWithBudget returns the solver with B's lockable amount capped at
// budget Token_b (B's holdings).
func (m *Model) UncertainWithBudget(budget float64) (*Uncertain, error) {
	if budget <= 0 || math.IsNaN(budget) {
		return nil, fmt.Errorf("%w: budget=%g must be > 0", ErrBadParam, budget)
	}
	return &Uncertain{m: m, budget: budget}, nil
}

// Budget returns B's lockable budget (+Inf when unconstrained).
func (u *Uncertain) Budget() float64 { return u.budget }

// CutoffT3 returns P̄_t3,x(X) of Eq. 41: the basic cut-off for a locked
// amount a, scaled by 1/X. It is +Inf at X = 0 (nothing to unlock, A never
// reveals).
func (u *Uncertain) CutoffT3(xLock, aLock float64) (float64, error) {
	if err := checkRate(aLock); err != nil {
		return 0, err
	}
	if xLock < 0 || math.IsNaN(xLock) {
		return 0, fmt.Errorf("%w: X=%g must be >= 0", ErrBadParam, xLock)
	}
	if xLock == 0 {
		return math.Inf(1), nil
	}
	return u.m.cutoffT3(aLock, 0) / xLock, nil
}

// xEval bundles the parts of the §IV.B stage utilities that are constant
// across B's response search at one t2 price: the unscaled cut-off, A's
// refund, and the transition law out of y. The best-response optimisation
// (Eq. 44) evaluates Eq. 43 at ~160 candidate amounts per price point;
// before the hoist each evaluation rebuilt the transition and the cut-off
// from scratch. Every field stores the bit-exact value of the
// subexpression it replaces.
type xEval struct {
	u     *Uncertain
	aLock float64
	y     float64
	pbar0 float64        // cutoffT3(aLock, 0), before the 1/X scaling
	ref   float64        // aLock·exp(−rA(εb+2τa)), A's refund
	tr    dist.LogNormal // transition(y, τb)
}

// newXEval hoists the X-independent parts of Eqs. 41–43.
func (u *Uncertain) newXEval(y, aLock float64) xEval {
	return xEval{
		u:     u,
		aLock: aLock,
		y:     y,
		pbar0: u.m.cutoffT3(aLock, 0),
		ref:   aLock * u.m.k.refundT3,
		tr:    u.m.transitionTauBAtLog(math.Log(y)),
	}
}

// aliceT2 is U^A_t2,x(X) of Eq. 42: X units of the t3 cont utility above
// the scaled cut-off, plus the refund below it.
func (e *xEval) aliceT2(xLock float64) float64 {
	m := e.u.m
	if xLock <= 0 {
		// B locked nothing; A's only outcome is the refund one stage later.
		return m.k.discATauB * e.ref
	}
	pbar := e.pbar0 / xLock
	logPbar := math.Log(pbar)
	cont := xLock * (1 + m.params.Alice.Alpha) * m.k.growthA * e.tr.PartialExpectationAboveAtLog(pbar, logPbar)
	stop := e.tr.CDFAtLog(pbar, logPbar) * e.ref
	return m.k.discATauB * (cont + stop)
}

// bobT2 is U^B_t2,x(X) of Eq. 43: B's expected gross utility from locking
// X, net of the value X·y he surrenders by committing the tokens. It is
// zero at X = 0 (locking nothing is equivalent to stop).
func (e *xEval) bobT2(xLock float64) float64 {
	if xLock <= 0 {
		return 0
	}
	m := e.u.m
	pbar := e.pbar0 / xLock
	logPbar := math.Log(pbar)
	gross := e.tr.TailProbAtLog(pbar, logPbar)*(1+m.params.Bob.Alpha)*e.aLock*m.k.bankB +
		xLock*m.k.growth2B*e.tr.PartialExpectationBelowAtLog(pbar, logPbar)
	return m.k.discBTauB*gross - xLock*e.y
}

// optimal solves Eq. 44 at this price point: X*(P_t2) = argmax_{X≥0}
// U^B_t2,x(X). The search runs over log X — the objective's scale is set by
// P̄_t3/y, which spans orders of magnitude across the P_t2 axis of
// Fig. 10a — and X = 0 is compared explicitly (B locks nothing and
// effectively stops).
func (e *xEval) optimal() (xStar, val float64) {
	// Beyond X ≈ 50·P̄_t3/y the success probability has saturated and the
	// marginal locked token is pure loss; below the grid floor the utility
	// is O(X) small. The budget caps the search when finite.
	xMax := 50*e.pbar0/e.y + 10
	if xMax > 1e9 {
		xMax = 1e9
	}
	if xMax > e.u.budget {
		xMax = e.u.budget
	}
	obj := func(lx float64) float64 { return e.bobT2(math.Exp(lx)) }
	lArg, lVal := mathx.GridMax(obj, math.Log(xMax)-25, math.Log(xMax), 160, 1e-10)
	if lVal <= 0 {
		return 0, 0
	}
	return math.Exp(lArg), lVal
}

// AliceUtilityT2 evaluates Eq. 42 with argument checks.
func (u *Uncertain) AliceUtilityT2(xLock, pT2, aLock float64) (float64, error) {
	if err := u.checkLock(xLock); err != nil {
		return 0, err
	}
	if err := checkPrice(pT2); err != nil {
		return 0, err
	}
	if err := checkRate(aLock); err != nil {
		return 0, err
	}
	e := u.newXEval(pT2, aLock)
	return e.aliceT2(xLock), nil
}

// BobExcessUtilityT2 evaluates Eq. 43 with argument checks.
func (u *Uncertain) BobExcessUtilityT2(xLock, pT2, aLock float64) (float64, error) {
	if err := u.checkLock(xLock); err != nil {
		return 0, err
	}
	if err := checkPrice(pT2); err != nil {
		return 0, err
	}
	if err := checkRate(aLock); err != nil {
		return 0, err
	}
	e := u.newXEval(pT2, aLock)
	return e.bobT2(xLock), nil
}

func (u *Uncertain) checkLock(xLock float64) error {
	if xLock < 0 || math.IsNaN(xLock) || math.IsInf(xLock, 0) {
		return fmt.Errorf("%w: X=%g must be >= 0 and finite", ErrBadParam, xLock)
	}
	return nil
}

// OptimalLockB returns X*(P_t2) of Eq. 44 together with B's excess utility
// at the optimum. X* = 0 means B declines to lock (stop).
func (u *Uncertain) OptimalLockB(pT2, aLock float64) (xStar, excess float64, err error) {
	if err := checkPrice(pT2); err != nil {
		return 0, 0, err
	}
	if err := checkRate(aLock); err != nil {
		return 0, 0, err
	}
	e := u.newXEval(pT2, aLock)
	xStar, excess = e.optimal()
	return xStar, excess, nil
}

// AliceExcessUtilityT1 evaluates Eq. 45: the expectation over P_t2 of A's
// t2 position under B's best response, discounted to t1, minus the amount a
// she surrenders by locking. The expectation uses Gauss–Hermite quadrature
// with the inner optimisation evaluated at each node.
func (u *Uncertain) AliceExcessUtilityT1(aLock float64) (float64, error) {
	if err := checkRate(aLock); err != nil {
		return 0, err
	}
	return u.aliceExcessT1(aLock), nil
}

// aliceExcessT1 is memoized per (a, budget) on the Model: the Fig. 10b
// curve, its break-even scan and the optimal-commitment search revisit the
// same amounts.
func (u *Uncertain) aliceExcessT1(aLock float64) float64 {
	return u.m.solve.excessT1.Do(solveKey{aLock, u.budget}, func() float64 {
		c := u.m.params.Chains
		tr := u.m.transition(u.m.params.P0, c.TauA)
		exp := u.m.gh.ExpectLogNormal(func(y float64) float64 {
			e := u.newXEval(y, aLock)
			xStar, _ := e.optimal()
			return e.aliceT2(xStar)
		}, tr.Mu, tr.Sigma)
		return u.m.k.discATauA*exp - aLock
	})
}

// SuccessRate evaluates Eq. 46: the probability that B locks a positive X*
// and A subsequently reveals, under B's best response at every t2 price.
// Memoized per (a, budget) on the Model.
func (u *Uncertain) SuccessRate(aLock float64) (float64, error) {
	if err := checkRate(aLock); err != nil {
		return 0, err
	}
	sr := u.m.solve.uncertSR.Do(solveKey{aLock, u.budget}, func() float64 {
		c := u.m.params.Chains
		tr := u.m.transition(u.m.params.P0, c.TauA)
		sr := u.m.gh.ExpectLogNormal(func(y float64) float64 {
			e := u.newXEval(y, aLock)
			xStar, _ := e.optimal()
			if xStar <= 0 {
				return 0
			}
			return e.tr.TailProb(e.pbar0 / xStar)
		}, tr.Mu, tr.Sigma)
		return mathx.Clamp(sr, 0, 1)
	})
	return sr, nil
}

// OptimalLockA maximises A's excess utility (Eq. 45) over the committed
// amount a ∈ (0, aMax]: the upper dashed marker P̄* of Fig. 10b.
func (u *Uncertain) OptimalLockA(aMax float64) (aStar, excess float64, err error) {
	if aMax <= 0 || math.IsNaN(aMax) || math.IsInf(aMax, 0) {
		return 0, 0, fmt.Errorf("%w: aMax=%g must be > 0", ErrBadParam, aMax)
	}
	arg, val := mathx.GridMax(func(a float64) float64 {
		if a <= 0 {
			return math.Inf(-1)
		}
		return u.aliceExcessT1(a)
	}, aMax/200, aMax, 48, 1e-6)
	return arg, val, nil
}

// BreakEvenRange returns the interval of committed amounts with
// non-negative excess utility for A — its lower end is the paper's P̲*
// ("lowest possible amount A needs to enter for a non-negative excess
// utility", §IV.B.4) and its upper end the largest worthwhile commitment.
// ok is false when A's excess utility is negative everywhere.
func (u *Uncertain) BreakEvenRange(aMax float64) (mathx.Interval, bool, error) {
	if aMax <= 0 || math.IsNaN(aMax) || math.IsInf(aMax, 0) {
		return mathx.Interval{}, false, fmt.Errorf("%w: aMax=%g must be > 0", ErrBadParam, aMax)
	}
	diff := func(a float64) float64 { return u.aliceExcessT1(a) }
	lo, hi := aMax/500, aMax
	roots := mathx.FindAllRoots(diff, lo, hi, 60, 1e-6)
	set := mathx.FromSignChanges(diff, lo, hi, roots)
	if set.Empty() {
		return mathx.Interval{Lo: 1, Hi: 0}, false, nil
	}
	return set.Bounds(), true, nil
}
