package core

import (
	"fmt"
	"math"

	"repro/internal/mathx"
	"repro/internal/memo"
)

// TypePrior is a discrete prior over a counterparty's success premium —
// the "uncertainty in counterparties' success premium" the paper's
// contribution list announces (§I.B) and lists as a model extension
// (§V.B: "success premium as a random variable"). Each agent knows their
// own premium; the prior captures their belief about the other side.
type TypePrior struct {
	// Values are the possible premium values (each ≥ 0).
	Values []float64
	// Probs are the corresponding probabilities (sum to 1).
	Probs []float64
}

// Validate checks the prior.
func (tp TypePrior) Validate() error {
	if len(tp.Values) == 0 || len(tp.Values) != len(tp.Probs) {
		return fmt.Errorf("%w: prior with %d values / %d probs", ErrBadParam, len(tp.Values), len(tp.Probs))
	}
	var sum float64
	for i, v := range tp.Values {
		if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("%w: premium value %g", ErrBadParam, v)
		}
		p := tp.Probs[i]
		if p < 0 || p > 1 || math.IsNaN(p) {
			return fmt.Errorf("%w: probability %g", ErrBadParam, p)
		}
		sum += p
	}
	if math.Abs(sum-1) > 1e-9 {
		return fmt.Errorf("%w: probabilities sum to %g", ErrBadParam, sum)
	}
	return nil
}

// Mean returns the prior mean premium.
func (tp TypePrior) Mean() float64 {
	var m float64
	for i, v := range tp.Values {
		m += v * tp.Probs[i]
	}
	return m
}

// PointPrior is the degenerate prior concentrated on one value.
func PointPrior(alpha float64) TypePrior {
	return TypePrior{Values: []float64{alpha}, Probs: []float64{1}}
}

// Bayesian solves the incomplete-information variant of the basic game:
// Assumption 7's common knowledge of (r, α) is relaxed to discrete priors
// over the counterparties' success premia. Each agent knows their own type;
// decisions average over the other side's types:
//
//   - at t3, an A of type αA uses the complete-information cut-off for her
//     own type (her problem does not involve B's type);
//   - at t2, a B of type αB weighs the reveal probability over A's types,
//     since the cut-off he faces is type-dependent;
//   - at t1, an A of type αA weighs B's continuation region over B's types.
//
// Construct with Model.Bayesian. The base model's point premia are ignored;
// its r, chain and price parameters are shared by all types.
type Bayesian struct {
	m      *Model
	priorA TypePrior
	priorB TypePrior
	// typed memoizes the per-type model clones so each (αA, αB) pair gets
	// one solve memo shared across the stage computations.
	typed memo.Map[[2]float64, *Model]
}

// Bayesian returns the incomplete-information solver for the given priors
// over αA and αB.
func (m *Model) Bayesian(priorA, priorB TypePrior) (*Bayesian, error) {
	if err := priorA.Validate(); err != nil {
		return nil, fmt.Errorf("prior over alphaA: %w", err)
	}
	if err := priorB.Validate(); err != nil {
		return nil, fmt.Errorf("prior over alphaB: %w", err)
	}
	return &Bayesian{m: m, priorA: priorA, priorB: priorB}, nil
}

// typedModel returns a copy of the base model with the premia replaced,
// memoized per type pair. The clone keeps the shared quadrature tables and
// the discount constants (none depend on the premia) but gets its own solve
// memo, since its parameter set differs from the base model's.
func (b *Bayesian) typedModel(alphaA, alphaB float64) *Model {
	return b.typed.Do([2]float64{alphaA, alphaB}, func() *Model {
		p := b.m.params
		p.Alice.Alpha = alphaA
		p.Bob.Alpha = alphaB
		clone := *b.m
		clone.params = p
		clone.solve = &solveMemo{}
		return &clone
	})
}

// CutoffT3 returns the t3 cut-off for an A of type alphaA (Eq. 18 with her
// own premium).
func (b *Bayesian) CutoffT3(alphaA, pstar float64) (float64, error) {
	if err := checkRate(pstar); err != nil {
		return 0, err
	}
	if alphaA < 0 || math.IsNaN(alphaA) {
		return 0, fmt.Errorf("%w: alphaA=%g", ErrBadParam, alphaA)
	}
	return b.typedModel(alphaA, 0).cutoffT3(pstar, 0), nil
}

// bobContT2 is a type-αB B's t2 cont utility, averaging the reveal branch
// over A's types.
func (b *Bayesian) bobContT2(alphaB, y, pstar float64) float64 {
	var u float64
	for i, alphaA := range b.priorA.Values {
		u += b.priorA.Probs[i] * b.typedModel(alphaA, alphaB).bobContT2(y, pstar, 0)
	}
	return u
}

// ContSetT2 returns the continuation region of a B of type alphaB, given
// his prior over A's premium.
func (b *Bayesian) ContSetT2(alphaB, pstar float64) (mathx.IntervalSet, error) {
	if err := checkRate(pstar); err != nil {
		return mathx.IntervalSet{}, err
	}
	if alphaB < 0 || math.IsNaN(alphaB) {
		return mathx.IntervalSet{}, fmt.Errorf("%w: alphaB=%g", ErrBadParam, alphaB)
	}
	diff := func(y float64) float64 { return b.bobContT2(alphaB, y, pstar) - y }
	ref := b.typedModel(b.priorA.Mean(), alphaB)
	pbar := ref.cutoffT3(pstar, 0)
	growth := math.Exp(2 * math.Max(ref.params.Price.Mu-ref.params.Bob.R, 0) * ref.params.Chains.TauB)
	hi := 4*((1+alphaB)*pstar+growth*pbar+1) + 2*ref.params.P0
	lo := 1e-7 * math.Min(ref.params.P0, pstar)
	logRoots := mathx.FindAllRoots(func(u float64) float64 { return diff(math.Exp(u)) },
		math.Log(lo), math.Log(hi), b.m.scanN, b.m.tol)
	roots := make([]float64, len(logRoots))
	for i, u := range logRoots {
		roots[i] = math.Exp(u)
	}
	return mathx.FromSignChanges(diff, lo, hi, roots), nil
}

// aliceContT1 is a type-αA A's t1 cont utility, averaging over B's types'
// continuation regions.
func (b *Bayesian) aliceContT1(alphaA, pstar float64) (float64, error) {
	ch := b.m.params.Chains
	var total float64
	for j, alphaB := range b.priorB.Values {
		set, err := b.ContSetT2(alphaB, pstar)
		if err != nil {
			return 0, err
		}
		typed := b.typedModel(alphaA, alphaB)
		tr := typed.transition(typed.params.P0, ch.TauA)
		var contPart, prob float64
		for _, iv := range set.Intervals() {
			contPart += typed.gl.Integrate(func(y float64) float64 {
				return tr.PDF(y) * typed.aliceContT2(y, pstar, 0)
			}, iv.Lo, iv.Hi)
			prob += tr.CDF(iv.Hi) - tr.CDF(iv.Lo)
		}
		stopPart := (1 - prob) * typed.aliceStopT2(pstar)
		total += b.priorB.Probs[j] * math.Exp(-typed.params.Alice.R*ch.TauA) * (contPart + stopPart)
	}
	return total, nil
}

// AliceInitiates reports whether an A of type alphaA starts the swap at the
// given rate under her prior over B.
func (b *Bayesian) AliceInitiates(alphaA, pstar float64) (bool, error) {
	if err := checkRate(pstar); err != nil {
		return false, err
	}
	if alphaA < 0 || math.IsNaN(alphaA) {
		return false, fmt.Errorf("%w: alphaA=%g", ErrBadParam, alphaA)
	}
	u, err := b.aliceContT1(alphaA, pstar)
	if err != nil {
		return false, err
	}
	return u > pstar, nil
}

// SuccessRate returns the ex-ante success probability conditional on
// initiation: the type-weighted probability that an initiating A-type meets
// a continuing B-type and then reveals. ok is false when no A-type
// initiates.
func (b *Bayesian) SuccessRate(pstar float64) (sr float64, ok bool, err error) {
	if err := checkRate(pstar); err != nil {
		return 0, false, err
	}
	ch := b.m.params.Chains
	// Pre-compute B-type regions once.
	sets := make([]mathx.IntervalSet, len(b.priorB.Values))
	for j, alphaB := range b.priorB.Values {
		if sets[j], err = b.ContSetT2(alphaB, pstar); err != nil {
			return 0, false, err
		}
	}
	var srSum, initMass float64
	for i, alphaA := range b.priorA.Values {
		init, err := b.AliceInitiates(alphaA, pstar)
		if err != nil {
			return 0, false, err
		}
		if !init {
			continue
		}
		initMass += b.priorA.Probs[i]
		typed := b.typedModel(alphaA, 0)
		cut := typed.cutoffT3(pstar, 0)
		tr := typed.transition(typed.params.P0, ch.TauA)
		for j := range b.priorB.Values {
			var s float64
			for _, iv := range sets[j].Intervals() {
				s += typed.gl.Integrate(func(y float64) float64 {
					return tr.PDF(y) * typed.transition(y, ch.TauB).TailProb(cut)
				}, iv.Lo, iv.Hi)
			}
			srSum += b.priorA.Probs[i] * b.priorB.Probs[j] * s
		}
	}
	if initMass == 0 {
		return 0, false, nil
	}
	return mathx.Clamp(srSum/initMass, 0, 1), true, nil
}
