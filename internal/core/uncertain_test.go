package core

import (
	"errors"
	"math"
	"testing"
)

func TestUncertainConstruction(t *testing.T) {
	m := newDefaultModel(t)
	u := m.Uncertain()
	if !math.IsInf(u.Budget(), 1) {
		t.Errorf("unconstrained budget = %v, want +Inf", u.Budget())
	}
	ub, err := m.UncertainWithBudget(5)
	if err != nil {
		t.Fatalf("UncertainWithBudget: %v", err)
	}
	if ub.Budget() != 5 {
		t.Errorf("budget = %v, want 5", ub.Budget())
	}
	for _, b := range []float64{0, -1, math.NaN()} {
		if _, err := m.UncertainWithBudget(b); !errors.Is(err, ErrBadParam) {
			t.Errorf("UncertainWithBudget(%v) err = %v, want ErrBadParam", b, err)
		}
	}
}

func TestUncertainCutoffT3(t *testing.T) {
	// Eq. 41: P̄_t3,x(X) = P̄_t3/X, with P̄_t3,x(0) = ∞.
	m := newDefaultModel(t)
	u := m.Uncertain()
	base, _ := m.CutoffT3(4)
	tests := []struct {
		x    float64
		want float64
	}{
		{1, base},
		{2, base / 2},
		{0.5, base * 2},
	}
	for _, tt := range tests {
		got, err := u.CutoffT3(tt.x, 4)
		if err != nil {
			t.Fatalf("CutoffT3(%v, 4): %v", tt.x, err)
		}
		if !almostEqual(got, tt.want, 1e-12) {
			t.Errorf("CutoffT3(%v, 4) = %v, want %v", tt.x, got, tt.want)
		}
	}
	inf, err := u.CutoffT3(0, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(inf, 1) {
		t.Errorf("CutoffT3(0, 4) = %v, want +Inf", inf)
	}
	if _, err := u.CutoffT3(-1, 4); !errors.Is(err, ErrBadParam) {
		t.Errorf("negative X err = %v, want ErrBadParam", err)
	}
	if _, err := u.CutoffT3(1, 0); !errors.Is(err, ErrBadParam) {
		t.Errorf("zero amount err = %v, want ErrBadParam", err)
	}
}

func TestUncertainBobUtilityZeroLock(t *testing.T) {
	// Locking X = 0 is equivalent to stop: zero excess utility.
	m := newDefaultModel(t)
	u := m.Uncertain()
	got, err := u.BobExcessUtilityT2(0, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	if got != 0 {
		t.Errorf("BobExcessUtilityT2(0) = %v, want 0", got)
	}
}

func TestOptimalLockBIsOptimal(t *testing.T) {
	// The reported X* must (weakly) dominate a probe grid of alternatives.
	m := newDefaultModel(t)
	u := m.Uncertain()
	for _, y := range []float64{0.5, 1, 2, 4, 8} {
		xStar, val, err := u.OptimalLockB(y, 4)
		if err != nil {
			t.Fatalf("OptimalLockB(%v, 4): %v", y, err)
		}
		atStar, _ := u.BobExcessUtilityT2(xStar, y, 4)
		if !almostEqual(val, atStar, 1e-9) {
			t.Errorf("reported value %v != utility at X* %v", val, atStar)
		}
		for _, x := range []float64{0, 0.1, 0.5, 1, 2, 5, 10, 20} {
			alt, _ := u.BobExcessUtilityT2(x, y, 4)
			if alt > val+1e-6 {
				t.Errorf("y=%v: X=%v gives %v > optimum %v at X*=%v", y, x, alt, val, xStar)
			}
		}
	}
}

func TestUncertainHomogeneity(t *testing.T) {
	// Eq. 43 is homogeneous of degree 1 in (X, a): X*(y, λa) = λX*(y, a)
	// and B's optimal value scales by λ. This is the structural fact behind
	// DESIGN.md deviation 6.
	m := newDefaultModel(t)
	u := m.Uncertain()
	const y, a, lambda = 2.0, 4.0, 2.5
	x1, v1, err := u.OptimalLockB(y, a)
	if err != nil {
		t.Fatal(err)
	}
	x2, v2, err := u.OptimalLockB(y, lambda*a)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(x2, lambda*x1, 1e-3*x2) {
		t.Errorf("X*(λa) = %v, want λ·X*(a) = %v", x2, lambda*x1)
	}
	if !almostEqual(v2, lambda*v1, 1e-3*v2) {
		t.Errorf("val(λa) = %v, want λ·val(a) = %v", v2, lambda*v1)
	}
	// A's excess utility is linear in a for the unconstrained game.
	e1, err := u.AliceExcessUtilityT1(1)
	if err != nil {
		t.Fatal(err)
	}
	e4, err := u.AliceExcessUtilityT1(4)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(e4, 4*e1, 1e-3*math.Abs(e4)+1e-9) {
		t.Errorf("excess(4) = %v, want 4·excess(1) = %v", e4, 4*e1)
	}
}

func TestUncertainSuccessRateScaleInvariant(t *testing.T) {
	// Under the unconstrained best response, SR_x does not depend on a.
	m := newDefaultModel(t)
	u := m.Uncertain()
	sr1, err := u.SuccessRate(1)
	if err != nil {
		t.Fatal(err)
	}
	sr4, err := u.SuccessRate(4)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(sr1, sr4, 1e-3) {
		t.Errorf("SR_x(1) = %v != SR_x(4) = %v; expected scale invariance", sr1, sr4)
	}
	if sr1 <= 0 || sr1 >= 1 {
		t.Errorf("SR_x = %v, want in (0,1)", sr1)
	}
}

func TestUncertainBoostsSuccessRate(t *testing.T) {
	// Fig. 11 / §V.A: dynamic amounts raise the success rate above the
	// basic game's optimum.
	m := newDefaultModel(t)
	u := m.Uncertain()
	srX, err := u.SuccessRate(2)
	if err != nil {
		t.Fatal(err)
	}
	_, srBasic, err := m.OptimalRate()
	if err != nil {
		t.Fatal(err)
	}
	if srX <= srBasic {
		t.Errorf("SR_x = %v, want > basic optimum %v", srX, srBasic)
	}
}

func TestBudgetCapRespected(t *testing.T) {
	m := newDefaultModel(t)
	u, err := m.UncertainWithBudget(5)
	if err != nil {
		t.Fatal(err)
	}
	for _, y := range []float64{0.3, 0.5, 1, 2, 4} {
		x, _, err := u.OptimalLockB(y, 8.91)
		if err != nil {
			t.Fatal(err)
		}
		if x > 5+1e-9 {
			t.Errorf("X*(%v) = %v exceeds budget 5", y, x)
		}
	}
}

func TestBudgetHumpShape(t *testing.T) {
	// Fig. 10a: with a budget, X* is zero at very low prices (even the whole
	// budget cannot deter A's withdrawal profitably), rises, then declines
	// like 1/P_t2.
	m := newDefaultModel(t)
	u, err := m.UncertainWithBudget(5)
	if err != nil {
		t.Fatal(err)
	}
	const a = 8.91
	xLow, _, err := u.OptimalLockB(0.25, a)
	if err != nil {
		t.Fatal(err)
	}
	if xLow != 0 {
		t.Errorf("X*(0.25) = %v, want 0 at very low price", xLow)
	}
	xMid, _, err := u.OptimalLockB(2, a)
	if err != nil {
		t.Fatal(err)
	}
	if xMid <= 1 {
		t.Errorf("X*(2) = %v, want substantially positive", xMid)
	}
	xHigh, _, err := u.OptimalLockB(8, a)
	if err != nil {
		t.Fatal(err)
	}
	if !(xHigh < xMid && xHigh > 0) {
		t.Errorf("X*(8) = %v, want in (0, X*(2)=%v)", xHigh, xMid)
	}
}

func TestBudgetCreatesInteriorOptimumForAlice(t *testing.T) {
	// Fig. 10b: with a budget the excess utility has an interior maximum
	// and an upper break-even point.
	m := newDefaultModel(t)
	u, err := m.UncertainWithBudget(5)
	if err != nil {
		t.Fatal(err)
	}
	aStar, exStar, err := u.OptimalLockA(14)
	if err != nil {
		t.Fatalf("OptimalLockA: %v", err)
	}
	if aStar <= 1 || aStar >= 13.5 {
		t.Errorf("a* = %v, want interior of (1, 13.5)", aStar)
	}
	if exStar <= 0 {
		t.Errorf("optimal excess = %v, want > 0", exStar)
	}
	rng, ok, err := u.BreakEvenRange(14)
	if err != nil {
		t.Fatalf("BreakEvenRange: %v", err)
	}
	if !ok {
		t.Fatal("no break-even range")
	}
	if rng.Hi >= 14-1e-9 {
		t.Errorf("upper break-even = %v, want interior (excess goes negative)", rng.Hi)
	}
	// Outside the upper break-even the excess utility is negative.
	ex, err := u.AliceExcessUtilityT1(rng.Hi * 1.1)
	if err != nil {
		t.Fatal(err)
	}
	if ex >= 0 {
		t.Errorf("excess(%v) = %v, want < 0 beyond break-even", rng.Hi*1.1, ex)
	}
}

func TestBudgetSuccessRateDeclinesPastBudget(t *testing.T) {
	// Once a outgrows what B can match, the capped SR_x falls below the
	// unconstrained (scale-invariant) level.
	m := newDefaultModel(t)
	uCap, err := m.UncertainWithBudget(5)
	if err != nil {
		t.Fatal(err)
	}
	srSmall, err := uCap.SuccessRate(2)
	if err != nil {
		t.Fatal(err)
	}
	srLarge, err := uCap.SuccessRate(12)
	if err != nil {
		t.Fatal(err)
	}
	if srLarge >= srSmall {
		t.Errorf("SR_x(12) = %v, want < SR_x(2) = %v under budget", srLarge, srSmall)
	}
}

func TestUncertainValidation(t *testing.T) {
	m := newDefaultModel(t)
	u := m.Uncertain()
	cases := []func() (float64, error){
		func() (float64, error) { return u.AliceUtilityT2(-1, 2, 4) },
		func() (float64, error) { return u.AliceUtilityT2(1, -2, 4) },
		func() (float64, error) { return u.AliceUtilityT2(1, 2, 0) },
		func() (float64, error) { return u.BobExcessUtilityT2(math.Inf(1), 2, 4) },
		func() (float64, error) { return u.BobExcessUtilityT2(1, 0, 4) },
		func() (float64, error) { return u.AliceExcessUtilityT1(-1) },
		func() (float64, error) { return u.SuccessRate(0) },
	}
	for i, f := range cases {
		if _, err := f(); !errors.Is(err, ErrBadParam) {
			t.Errorf("case %d: err = %v, want ErrBadParam", i, err)
		}
	}
	if _, _, err := u.OptimalLockB(0, 4); !errors.Is(err, ErrBadParam) {
		t.Errorf("OptimalLockB bad price err = %v", err)
	}
	if _, _, err := u.OptimalLockB(2, -4); !errors.Is(err, ErrBadParam) {
		t.Errorf("OptimalLockB bad amount err = %v", err)
	}
	if _, _, err := u.OptimalLockA(0); !errors.Is(err, ErrBadParam) {
		t.Errorf("OptimalLockA bad aMax err = %v", err)
	}
	if _, _, err := u.BreakEvenRange(-2); !errors.Is(err, ErrBadParam) {
		t.Errorf("BreakEvenRange bad aMax err = %v", err)
	}
}

func TestUncertainAliceT2ZeroLockIsDiscountedRefund(t *testing.T) {
	// If B locks nothing, A's utility is her refund discounted one stage.
	m := newDefaultModel(t)
	u := m.Uncertain()
	got, err := u.AliceUtilityT2(0, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	p := m.Params()
	want := math.Exp(-p.Alice.R*p.Chains.TauB) *
		4 * math.Exp(-p.Alice.R*(p.Chains.EpsB+2*p.Chains.TauA))
	if !almostEqual(got, want, 1e-12) {
		t.Errorf("AliceUtilityT2(0) = %v, want %v", got, want)
	}
}

func TestOptimalLockAIncreasesWithRisingDrift(t *testing.T) {
	// A mild sanity cross-check: a strongly positive drift makes Token_b
	// more attractive for A, raising her willingness to commit.
	mLow, err := New(newDefaultModel(t).Params().WithMu(-0.01))
	if err != nil {
		t.Fatal(err)
	}
	mHigh, err := New(newDefaultModel(t).Params().WithMu(0.01))
	if err != nil {
		t.Fatal(err)
	}
	uLow, err := mLow.UncertainWithBudget(5)
	if err != nil {
		t.Fatal(err)
	}
	uHigh, err := mHigh.UncertainWithBudget(5)
	if err != nil {
		t.Fatal(err)
	}
	exLow, err := uLow.AliceExcessUtilityT1(4)
	if err != nil {
		t.Fatal(err)
	}
	exHigh, err := uHigh.AliceExcessUtilityT1(4)
	if err != nil {
		t.Fatal(err)
	}
	if exHigh <= exLow {
		t.Errorf("excess with µ=0.01 (%v) should exceed µ=-0.01 (%v)", exHigh, exLow)
	}
}
