package core_test

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/utility"
)

// ExampleModel_SuccessRate reproduces the headline numbers of the paper at
// Table III defaults: the Eq. 18 cut-off, the Eq. 24 continuation range,
// the Eq. 29 feasible band and the Eq. 31 success rate.
func ExampleModel_SuccessRate() {
	m, err := core.New(utility.Default())
	if err != nil {
		log.Fatal(err)
	}
	cut, err := m.CutoffT3(2.0)
	if err != nil {
		log.Fatal(err)
	}
	iv, _, err := m.ContRangeT2(2.0)
	if err != nil {
		log.Fatal(err)
	}
	rng, _, err := m.FeasibleRateRange()
	if err != nil {
		log.Fatal(err)
	}
	sr, err := m.SuccessRate(2.0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cutoff %.4f\n", cut)
	fmt.Printf("t2 range (%.3f, %.3f)\n", iv.Lo, iv.Hi)
	fmt.Printf("feasible rates (%.2f, %.2f)\n", rng.Lo, rng.Hi)
	fmt.Printf("SR %.4f\n", sr)
	// Output:
	// cutoff 1.4811
	// t2 range (1.182, 2.389)
	// feasible rates (1.53, 2.53)
	// SR 0.7143
}

// ExampleCollateral_SuccessRate shows the §IV.A result: a symmetric deposit
// escrowed with the Oracle raises the success rate.
func ExampleCollateral_SuccessRate() {
	m, err := core.New(utility.Default())
	if err != nil {
		log.Fatal(err)
	}
	for _, q := range []float64{0, 0.1} {
		col, err := m.Collateral(q)
		if err != nil {
			log.Fatal(err)
		}
		sr, err := col.SuccessRate(2.0)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("Q=%.1f SR=%.4f\n", q, sr)
	}
	// Output:
	// Q=0.0 SR=0.7143
	// Q=0.1 SR=0.8018
}

// ExampleUncertain_SuccessRate shows the §IV.B result: letting Bob choose
// the amount to lock beats any fixed exchange rate.
func ExampleUncertain_SuccessRate() {
	m, err := core.New(utility.Default())
	if err != nil {
		log.Fatal(err)
	}
	u := m.Uncertain()
	srX, err := u.SuccessRate(2.0)
	if err != nil {
		log.Fatal(err)
	}
	_, srBest, err := m.OptimalRate()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("uncertain-exchange SR %.3f > best fixed-rate SR %.3f: %v\n",
		srX, srBest, srX > srBest)
	// Output:
	// uncertain-exchange SR 0.794 > best fixed-rate SR 0.722: true
}

// ExampleModel_Bayesian shows the incomplete-information extension: not
// knowing the counterparty's success premium costs success probability at
// the fair rate even when the mean premium is unchanged.
func ExampleModel_Bayesian() {
	m, err := core.New(utility.Default())
	if err != nil {
		log.Fatal(err)
	}
	b, err := m.Bayesian(
		core.PointPrior(0.3),
		core.TypePrior{Values: []float64{0.05, 0.55}, Probs: []float64{0.5, 0.5}},
	)
	if err != nil {
		log.Fatal(err)
	}
	sr, ok, err := b.SuccessRate(2.0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("uncertain counterparty: SR %.4f (initiated: %v)\n", sr, ok)
	// Output:
	// uncertain counterparty: SR 0.5156 (initiated: true)
}
