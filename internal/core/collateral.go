package core

import (
	"fmt"
	"math"

	"repro/internal/mathx"
)

// Collateral solves the escrowed-collateral extension of §IV.A: before the
// swap, both agents deposit Q Token_a with a trusted smart contract wired to
// an Oracle; deposits are returned as obligations are fulfilled and
// forfeited to the counterparty on a stop (assumptions 1–4 of §IV.A).
// Construct with Model.Collateral.
type Collateral struct {
	m *Model
	q float64
}

// Collateral returns a solver for the collateral game with deposit q ≥ 0
// Token_a per agent. q = 0 degenerates to the basic game.
func (m *Model) Collateral(q float64) (*Collateral, error) {
	if q < 0 || math.IsNaN(q) || math.IsInf(q, 0) {
		return nil, fmt.Errorf("%w: collateral Q=%g must be >= 0", ErrBadParam, q)
	}
	return &Collateral{m: m, q: q}, nil
}

// Q returns the per-agent collateral deposit.
func (c *Collateral) Q() float64 { return c.q }

// CutoffT3 returns P̄_t3,c of Eq. 33: the t3 cut-off lowered by the deposit
// A would forfeit, clamped at zero (with enough collateral A always
// continues).
func (c *Collateral) CutoffT3(pstar float64) (float64, error) {
	if err := checkRate(pstar); err != nil {
		return 0, err
	}
	return c.m.cutoffT3(pstar, c.q), nil
}

// AliceUtilityT2 evaluates U^A_t2,c (Eq. 34) for cont; the stop utility is
// the basic-game Eq. 22 (B walking away still triggers A's refund path; A
// additionally receives both deposits, which is accounted at t1 via Eq. 36).
func (c *Collateral) AliceUtilityT2(action Action, pT2, pstar float64) (float64, error) {
	if err := checkPrice(pT2); err != nil {
		return 0, err
	}
	if err := checkRate(pstar); err != nil {
		return 0, err
	}
	switch action {
	case Cont:
		return c.m.aliceContT2(pT2, pstar, c.q), nil
	case Stop:
		return c.m.aliceStopT2(pstar), nil
	default:
		return 0, fmt.Errorf("%w: action %v", ErrBadParam, action)
	}
}

// BobUtilityT2 evaluates U^B_t2,c (Eq. 35) for cont and Eq. 23 for stop
// (stopping forfeits B's deposit, so his utility is just the token he
// keeps).
func (c *Collateral) BobUtilityT2(action Action, pT2, pstar float64) (float64, error) {
	if err := checkPrice(pT2); err != nil {
		return 0, err
	}
	if err := checkRate(pstar); err != nil {
		return 0, err
	}
	switch action {
	case Cont:
		return c.m.bobContT2(pT2, pstar, c.q), nil
	case Stop:
		return c.m.bobStopT2(pT2), nil
	default:
		return 0, fmt.Errorf("%w: action %v", ErrBadParam, action)
	}
}

// ContSetT2 returns 𝒫_t2 of §IV.A.3: the set of t2 prices at which B
// prefers cont. Unlike the basic game it can be a union of intervals —
// Fig. 7 shows parameterisations with one and with three indifference
// points.
func (c *Collateral) ContSetT2(pstar float64) (mathx.IntervalSet, error) {
	if err := checkRate(pstar); err != nil {
		return mathx.IntervalSet{}, err
	}
	return c.m.contSetT2(pstar, c.q), nil
}

// aliceContT1 is U^A_t1,c(cont) of Eq. 36: A's expected t2 position, where
// on B's stop region A recovers her refund plus both deposits
// (2Q at t3, received τa later). Memoized per (P*, Q) on the Model.
func (c *Collateral) aliceContT1(pstar float64) float64 {
	m := c.m
	return m.solve.aliceT1.Do(solveKey{pstar, c.q}, func() float64 {
		e := m.newT2Eval(pstar, c.q)
		set := m.contSetT2(pstar, c.q)
		tr := m.transitionTauA(m.params.P0)
		// Stack-backed scratch for the default 64-point rule; larger orders
		// spill to the heap.
		var arr [64]float64
		buf := arr[:0]
		if n := m.gl.N(); n > len(arr) {
			buf = make([]float64, 0, n)
		}
		var contPart, prob float64
		for _, iv := range set.Intervals() {
			nodes := m.gl.MapNodes(buf[:0], iv.Lo, iv.Hi)
			for i, y := range nodes {
				logy := math.Log(y)
				nodes[i] = tr.PDFAtLog(y, logy) * e.aliceCont(logy)
			}
			contPart += m.gl.IntegrateMapped(nodes, iv.Lo, iv.Hi)
			prob += tr.CDF(iv.Hi) - tr.CDF(iv.Lo)
		}
		stopVal := m.aliceStopT2(pstar) + 2*c.q*m.k.collStopA
		return m.k.discATauA * (contPart + (1-prob)*stopVal)
	})
}

// bobContT1 is U^B_t1,c(cont) of Eq. 37 (discounted at rB; see DESIGN.md
// deviation 3): B's expected t2 position over both regions. Memoized per
// (P*, Q) on the Model.
func (c *Collateral) bobContT1(pstar float64) float64 {
	m := c.m
	return m.solve.bobT1.Do(solveKey{pstar, c.q}, func() float64 {
		e := m.newT2Eval(pstar, c.q)
		set := m.contSetT2(pstar, c.q)
		tr := m.transitionTauA(m.params.P0)
		// Stack-backed scratch for the default 64-point rule; larger orders
		// spill to the heap.
		var arr [64]float64
		buf := arr[:0]
		if n := m.gl.N(); n > len(arr) {
			buf = make([]float64, 0, n)
		}
		var contPart, peInside float64
		for _, iv := range set.Intervals() {
			nodes := m.gl.MapNodes(buf[:0], iv.Lo, iv.Hi)
			for i, y := range nodes {
				logy := math.Log(y)
				nodes[i] = tr.PDFAtLog(y, logy) * e.bobCont(logy)
			}
			contPart += m.gl.IntegrateMapped(nodes, iv.Lo, iv.Hi)
			peInside += tr.PartialExpectationBelow(iv.Hi) - tr.PartialExpectationBelow(iv.Lo)
		}
		stopPart := tr.Mean() - peInside
		return m.k.discBTauA * (contPart + stopPart)
	})
}

// AliceUtilityT1 evaluates U^A_t1,c (Eqs. 36 and 38). Stopping keeps the
// original tokens and the deposit: P* + Q.
func (c *Collateral) AliceUtilityT1(action Action, pstar float64) (float64, error) {
	if err := checkRate(pstar); err != nil {
		return 0, err
	}
	switch action {
	case Cont:
		return c.aliceContT1(pstar), nil
	case Stop:
		return pstar + c.q, nil
	default:
		return 0, fmt.Errorf("%w: action %v", ErrBadParam, action)
	}
}

// BobUtilityT1 evaluates U^B_t1,c (Eqs. 37 and 39).
func (c *Collateral) BobUtilityT1(action Action, pstar float64) (float64, error) {
	if err := checkRate(pstar); err != nil {
		return 0, err
	}
	switch action {
	case Cont:
		return c.bobContT1(pstar), nil
	case Stop:
		return c.m.params.P0 + c.q, nil
	default:
		return 0, fmt.Errorf("%w: action %v", ErrBadParam, action)
	}
}

// feasibleSet scans P* for the region where diff > 0.
func (c *Collateral) feasibleSet(diff mathx.Func1) mathx.IntervalSet {
	lo, hi := 1e-3, c.m.rateScanBound()+2*c.q
	roots := mathx.FindAllRoots(diff, lo, hi, c.m.scanN/2, c.m.tol)
	return mathx.FromSignChanges(diff, lo, hi, roots)
}

// FeasibleRatesAlice returns 𝒫^A: exchange rates at which A prefers to
// engage at t1 (U^A_t1,c(cont) > P* + Q). Memoized per Q on the Model.
func (c *Collateral) FeasibleRatesAlice() mathx.IntervalSet {
	res := c.m.solve.ranges.Do(rangeKind{kind: 'A', q: c.q}, func() rangeResult {
		set := c.feasibleSet(func(p float64) float64 { return c.aliceContT1(p) - (p + c.q) })
		return rangeResult{set: set, ok: !set.Empty()}
	})
	return res.set
}

// FeasibleRatesBob returns 𝒫^B: exchange rates at which B prefers to engage
// at t1 (U^B_t1,c(cont) > P_t1 + Q). Memoized per Q on the Model.
func (c *Collateral) FeasibleRatesBob() mathx.IntervalSet {
	res := c.m.solve.ranges.Do(rangeKind{kind: 'B', q: c.q}, func() rangeResult {
		set := c.feasibleSet(func(p float64) float64 { return c.bobContT1(p) - (c.m.params.P0 + c.q) })
		return rangeResult{set: set, ok: !set.Empty()}
	})
	return res.set
}

// FeasibleRatesIntersection returns 𝒫^A ∩ 𝒫^B: rates at which the
// simultaneous engagement of §IV.A.4 actually happens (both agents prefer
// cont). The paper's text states the union; see DESIGN.md deviation 4.
func (c *Collateral) FeasibleRatesIntersection() mathx.IntervalSet {
	return c.FeasibleRatesAlice().Intersect(c.FeasibleRatesBob())
}

// FeasibleRatesUnion returns 𝒫^A ∪ 𝒫^B as printed in §IV.A.4, exposed for
// comparability with the paper.
func (c *Collateral) FeasibleRatesUnion() mathx.IntervalSet {
	return c.FeasibleRatesAlice().Union(c.FeasibleRatesBob())
}

// SuccessRate evaluates SR(P*) of Eq. 40 for the collateral game.
func (c *Collateral) SuccessRate(pstar float64) (float64, error) {
	if err := checkRate(pstar); err != nil {
		return 0, err
	}
	return c.m.successRate(pstar, c.q), nil
}

// Strategy returns the threshold strategies of the collateral game for the
// protocol simulator.
func (c *Collateral) Strategy(pstar float64) (Strategy, error) {
	if err := checkRate(pstar); err != nil {
		return Strategy{}, err
	}
	engageA := c.aliceContT1(pstar) > pstar+c.q
	engageB := c.bobContT1(pstar) > c.m.params.P0+c.q
	return Strategy{
		PStar:          pstar,
		AliceInitiates: engageA && engageB,
		BobContT2:      c.m.contSetT2(pstar, c.q),
		AliceCutoffT3:  c.m.cutoffT3(pstar, c.q),
	}, nil
}

// OptimalDeposit searches [0, qMax] for the deposit that maximises the
// success rate at the given exchange rate — the "optimal level of
// collateral" question raised in §II and §V.A. It returns the optimal Q and
// the achieved success rate.
func (m *Model) OptimalDeposit(pstar, qMax float64) (q, sr float64, err error) {
	if err := checkRate(pstar); err != nil {
		return 0, 0, err
	}
	if qMax <= 0 || math.IsNaN(qMax) || math.IsInf(qMax, 0) {
		return 0, 0, fmt.Errorf("%w: qMax=%g must be > 0", ErrBadParam, qMax)
	}
	arg, val := mathx.GridMax(func(q float64) float64 {
		return m.successRate(pstar, q)
	}, 0, qMax, 40, 1e-6)
	return arg, val, nil
}
