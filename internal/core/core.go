// Package core implements the paper's primary contribution: backward
// induction over the HTLC atomic-swap game of Xu, Ackerer and Dubovitskaya
// (arXiv:2011.11325, ICDCS 2021).
//
// Three solvers are provided:
//
//   - Model: the basic game of §III — stage utilities at t3/t2/t1
//     (Eqs. 14–28), the cut-off price P̄_t3 (Eq. 18), the continuation range
//     (P̲_t2, P̄_t2) (Eq. 24), the feasible exchange-rate range (P̲*, P̄*)
//     (Eqs. 29–30), and the success rate SR(P*) (Eq. 31).
//   - Collateral: the escrowed-collateral extension of §IV.A (Eqs. 32–40),
//     where the t2 continuation region 𝒫_t2 may be a union of intervals.
//   - Uncertain: the uncertain-exchange-rate extension of §IV.B
//     (Eqs. 41–46), where B picks the amount X* to lock and A picks the
//     amount P* to commit.
//
// The stage integrals are evaluated in closed form through the truncated
// lognormal moments of internal/dist wherever the integrand is affine in the
// future price, and by Gauss–Legendre or Gauss–Hermite quadrature otherwise.
package core

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/dist"
	"repro/internal/mathx"
	"repro/internal/utility"
)

// Errors returned by the solvers.
var (
	// ErrBadParam reports an invalid model parameter or argument.
	ErrBadParam = errors.New("core: invalid parameter")
	// ErrNotViable reports that no viable configuration exists (for example
	// OptimalRate when no exchange rate makes A initiate).
	ErrNotViable = errors.New("core: no viable configuration")
)

// Action is a decision in the two-element action set {cont, stop} of §III.C.
type Action int

const (
	// Stop withdraws from the swap at the current decision point.
	Stop Action = iota + 1
	// Cont continues the protocol at the current decision point.
	Cont
)

// String returns the paper's name for the action.
func (a Action) String() string {
	switch a {
	case Stop:
		return "stop"
	case Cont:
		return "cont"
	default:
		return fmt.Sprintf("Action(%d)", int(a))
	}
}

// Model solves the basic swap game for a fixed parameter set.
// Construct with New; the zero value is not usable.
type Model struct {
	params utility.Params
	gl     *mathx.GaussLegendre
	gh     *mathx.GaussHermite
	scanN  int
	tol    float64
}

// Option configures a Model.
type Option func(*Model)

// WithQuadOrder sets the Gauss–Legendre order used for the finite-interval
// stage integrals (default 64).
func WithQuadOrder(n int) Option {
	return func(m *Model) {
		m.gl = mathx.MustGaussLegendre(n)
	}
}

// WithHermiteOrder sets the Gauss–Hermite order used for full-line
// expectations in the uncertain-amount extension (default 48).
func WithHermiteOrder(n int) Option {
	return func(m *Model) {
		m.gh = mathx.MustGaussHermite(n)
	}
}

// WithScanPoints sets the number of panels used when scanning for utility
// crossings (default 600).
func WithScanPoints(n int) Option {
	return func(m *Model) {
		m.scanN = n
	}
}

// New validates the parameters and returns a solver.
func New(p utility.Params, opts ...Option) (*Model, error) {
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	m := &Model{
		params: p,
		gl:     mathx.MustGaussLegendre(64),
		gh:     mathx.MustGaussHermite(48),
		scanN:  600,
		tol:    1e-11,
	}
	for _, opt := range opts {
		opt(m)
	}
	return m, nil
}

// Params returns the model's parameter set.
func (m *Model) Params() utility.Params { return m.params }

// transition returns the lognormal law of the price tau hours ahead of
// price p. p and tau are validated by construction at every call site.
func (m *Model) transition(p, tau float64) dist.LogNormal {
	l, err := m.params.Price.Transition(p, tau)
	if err != nil {
		// Unreachable for validated prices; fail loudly in development.
		panic(err)
	}
	return l
}

// checkRate validates an exchange-rate (or locked-amount) argument.
func checkRate(pstar float64) error {
	if pstar <= 0 || math.IsNaN(pstar) || math.IsInf(pstar, 0) {
		return fmt.Errorf("%w: exchange rate P*=%g must be > 0", ErrBadParam, pstar)
	}
	return nil
}

// checkPrice validates a price argument.
func checkPrice(p float64) error {
	if p <= 0 || math.IsNaN(p) || math.IsInf(p, 0) {
		return fmt.Errorf("%w: price %g must be > 0", ErrBadParam, p)
	}
	return nil
}
