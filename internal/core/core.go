// Package core implements the paper's primary contribution: backward
// induction over the HTLC atomic-swap game of Xu, Ackerer and Dubovitskaya
// (arXiv:2011.11325, ICDCS 2021).
//
// Three solvers are provided:
//
//   - Model: the basic game of §III — stage utilities at t3/t2/t1
//     (Eqs. 14–28), the cut-off price P̄_t3 (Eq. 18), the continuation range
//     (P̲_t2, P̄_t2) (Eq. 24), the feasible exchange-rate range (P̲*, P̄*)
//     (Eqs. 29–30), and the success rate SR(P*) (Eq. 31).
//   - Collateral: the escrowed-collateral extension of §IV.A (Eqs. 32–40),
//     where the t2 continuation region 𝒫_t2 may be a union of intervals.
//   - Uncertain: the uncertain-exchange-rate extension of §IV.B
//     (Eqs. 41–46), where B picks the amount X* to lock and A picks the
//     amount P* to commit.
//
// The stage integrals are evaluated in closed form through the truncated
// lognormal moments of internal/dist wherever the integrand is affine in the
// future price, and by Gauss–Legendre or Gauss–Hermite quadrature otherwise.
package core

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/dist"
	"repro/internal/mathx"
	"repro/internal/memo"
	"repro/internal/utility"
)

// Errors returned by the solvers.
var (
	// ErrBadParam reports an invalid model parameter or argument.
	ErrBadParam = errors.New("core: invalid parameter")
	// ErrNotViable reports that no viable configuration exists (for example
	// OptimalRate when no exchange rate makes A initiate).
	ErrNotViable = errors.New("core: no viable configuration")
)

// Action is a decision in the two-element action set {cont, stop} of §III.C.
type Action int

const (
	// Stop withdraws from the swap at the current decision point.
	Stop Action = iota + 1
	// Cont continues the protocol at the current decision point.
	Cont
)

// String returns the paper's name for the action.
func (a Action) String() string {
	switch a {
	case Stop:
		return "stop"
	case Cont:
		return "cont"
	default:
		return fmt.Sprintf("Action(%d)", int(a))
	}
}

// Model solves the basic swap game for a fixed parameter set.
// Construct with New; the zero value is not usable.
//
// A Model is safe for concurrent use: its parameters, quadrature tables and
// precomputed constants are immutable after New, and the solve memo behind
// the expensive entry points (ContRangeT2, SuccessRate, FeasibleRateRange,
// OptimalRate, …) is concurrency-safe. Repeated solves of the same cell —
// the same (query, collateral) under this Model's parameters and quadrature
// options — are computed once and shared.
type Model struct {
	params utility.Params
	gl     *mathx.GaussLegendre
	gh     *mathx.GaussHermite
	scanN  int
	tol    float64

	// k holds the parameter-only discount/transition constants of
	// Eqs. 14–46, precomputed once at New (see consts).
	k consts

	// solve memoizes the solve cells; held by pointer so that a Model is
	// never copied with live memo state (see Bayesian.typedModel).
	solve *solveMemo
}

// consts is the precomputed `exp((r−µ)τ)` discount-factor family of the
// stage utilities, plus the lognormal transition constants for the two
// decision horizons. Every field stores the bit-exact value of the
// subexpression it replaces (same math.Exp/math.Sqrt argument expressions
// as the original equations), so routing through consts cannot move any
// result by even one ULP. None of the fields depend on the premia α, which
// is what allows Bayesian's typed clones to share them.
type consts struct {
	// Alice's discount family.
	refundT3    float64 // exp(−rA(εb+2τa)): t8 refund seen from t3 (Eq. 16)
	qReturnA    float64 // exp(−rA(εb+τa)): A's returned deposit (Eq. 33/34)
	cutoffScale float64 // exp((rA−µ)τb): the cut-off scale of Eq. 18
	growthA     float64 // exp((µ−rA)τb): A's t3 cont growth (Eq. 14)
	discATauB   float64 // exp(−rA·τb): one-stage discount at t2 (Eq. 20)
	stopT2A     float64 // exp(−rA(τb+εb+2τa)): t8 refund seen from t2 (Eq. 22)
	discATauA   float64 // exp(−rA·τa): one-stage discount at t1 (Eq. 25)
	collStopA   float64 // exp(−rA(τb+τa)): forfeited deposits at t1 (Eq. 36)
	// Bob's discount family.
	bankB     float64 // exp(−rB(εb+τa)): B banks Token_a at t6 (Eq. 15)
	growth2B  float64 // exp(2(µ−rB)τb): B's two-stage growth (Eq. 17)
	discBTauA float64 // exp(−rB·τa): one-stage discount at t1 (Eq. 26)
	discBTauB float64 // exp(−rB·τb): one-stage discount at t2 (Eq. 21)
	// Lognormal transition constants: transition(p, τ) is
	// LogNormal{Mu: log(p) + drift, Sigma: sig} for each horizon.
	driftTauA, sigTauA float64
	driftTauB, sigTauB float64
}

// computeConsts evaluates the discount family for a validated parameter
// set, preserving the exact argument expressions of the stage utilities.
func computeConsts(p utility.Params) consts {
	a, b, c, pr := p.Alice, p.Bob, p.Chains, p.Price
	return consts{
		refundT3:    math.Exp(-a.R * (c.EpsB + 2*c.TauA)),
		qReturnA:    math.Exp(-a.R * (c.EpsB + c.TauA)),
		cutoffScale: math.Exp((a.R - pr.Mu) * c.TauB),
		growthA:     math.Exp((pr.Mu - a.R) * c.TauB),
		discATauB:   math.Exp(-a.R * c.TauB),
		stopT2A:     math.Exp(-a.R * (c.TauB + c.EpsB + 2*c.TauA)),
		discATauA:   math.Exp(-a.R * c.TauA),
		collStopA:   math.Exp(-a.R * (c.TauB + c.TauA)),
		bankB:       math.Exp(-b.R * (c.EpsB + c.TauA)),
		growth2B:    math.Exp(2 * (pr.Mu - b.R) * c.TauB),
		discBTauA:   math.Exp(-b.R * c.TauA),
		discBTauB:   math.Exp(-b.R * c.TauB),
		driftTauA:   (pr.Mu - pr.Sigma*pr.Sigma/2) * c.TauA,
		sigTauA:     pr.Sigma * math.Sqrt(c.TauA),
		driftTauB:   (pr.Mu - pr.Sigma*pr.Sigma/2) * c.TauB,
		sigTauB:     pr.Sigma * math.Sqrt(c.TauB),
	}
}

// solveKey identifies one solve cell under a fixed Model: the query value
// (an exchange rate, a price, or a locked amount) and the second knob of
// the extension in play (collateral Q, or B's budget for the uncertain
// game; 0 when unused).
type solveKey struct {
	x, q float64
}

// rangeKind enumerates the memoized range/optimum computations.
type rangeKind struct {
	kind byte // 'F' feasible basic, 'A'/'B' collateral engagement, 'O' optimal rate
	q    float64
}

// rangeResult is a memoized interval-set-valued solve with its viability
// flag (used by FeasibleRateRange and the collateral engagement sets).
type rangeResult struct {
	set mathx.IntervalSet
	ok  bool
}

// optResult is a memoized optimum (OptimalRate).
type optResult struct {
	arg, val float64
	ok       bool
}

// solveMemo is the Model's concurrency-safe solve cache. Every entry is a
// pure function of (Model parameters, quadrature options, key), so sharing
// across goroutines and artifacts cannot change any result.
type solveMemo struct {
	contSet  memo.Map[solveKey, mathx.IntervalSet] // contSetT2(pstar, q)
	aliceT1  memo.Map[solveKey, float64]           // aliceContT1(pstar, q)
	bobT1    memo.Map[solveKey, float64]           // bobContT1(pstar, q)
	sr       memo.Map[solveKey, float64]           // successRate(pstar, q)
	ranges   memo.Map[rangeKind, rangeResult]      // feasible/engagement sets
	optimal  memo.Map[rangeKind, optResult]        // OptimalRate
	uncertSR memo.Map[solveKey, float64]           // Uncertain.SuccessRate(a, budget)
	excessT1 memo.Map[solveKey, float64]           // Uncertain.aliceExcessT1(a, budget)
}

// MemoStats reports the Model's cumulative solve-cache hits and misses
// across all memoized entry points.
func (m *Model) MemoStats() (hits, misses uint64) {
	add := func(h, mi uint64) { hits += h; misses += mi }
	add(m.solve.contSet.Stats())
	add(m.solve.aliceT1.Stats())
	add(m.solve.bobT1.Stats())
	add(m.solve.sr.Stats())
	add(m.solve.ranges.Stats())
	add(m.solve.optimal.Stats())
	add(m.solve.uncertSR.Stats())
	add(m.solve.excessT1.Stats())
	return
}

// Option configures a Model.
type Option func(*Model)

// WithQuadOrder sets the Gauss–Legendre order used for the finite-interval
// stage integrals (default 64). The node table comes from the process-wide
// shared cache.
func WithQuadOrder(n int) Option {
	return func(m *Model) {
		m.gl = mathx.SharedGaussLegendre(n)
	}
}

// WithHermiteOrder sets the Gauss–Hermite order used for full-line
// expectations in the uncertain-amount extension (default 48). The node
// table comes from the process-wide shared cache.
func WithHermiteOrder(n int) Option {
	return func(m *Model) {
		m.gh = mathx.SharedGaussHermite(n)
	}
}

// WithScanPoints sets the number of panels used when scanning for utility
// crossings (default 600).
func WithScanPoints(n int) Option {
	return func(m *Model) {
		m.scanN = n
	}
}

// New validates the parameters and returns a solver.
func New(p utility.Params, opts ...Option) (*Model, error) {
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	m := &Model{
		params: p,
		gl:     mathx.SharedGaussLegendre(64),
		gh:     mathx.SharedGaussHermite(48),
		scanN:  600,
		tol:    1e-11,
		k:      computeConsts(p),
		solve:  &solveMemo{},
	}
	for _, opt := range opts {
		opt(m)
	}
	return m, nil
}

// Params returns the model's parameter set.
func (m *Model) Params() utility.Params { return m.params }

// transition returns the lognormal law of the price tau hours ahead of
// price p. p and tau are validated by construction at every call site.
func (m *Model) transition(p, tau float64) dist.LogNormal {
	l, err := m.params.Price.Transition(p, tau)
	if err != nil {
		// Unreachable for validated prices; fail loudly in development.
		panic(err)
	}
	return l
}

// transitionTauA is transition(p, Chains.TauA) through the precomputed
// drift/volatility constants — bit-identical to the validated path for
// p > 0, which every call site guarantees.
func (m *Model) transitionTauA(p float64) dist.LogNormal {
	return dist.LogNormal{Mu: math.Log(p) + m.k.driftTauA, Sigma: m.k.sigTauA}
}

// transitionTauBAtLog is transition(p, Chains.TauB) for a caller that has
// already computed logp = math.Log(p); see transitionTauA.
func (m *Model) transitionTauBAtLog(logp float64) dist.LogNormal {
	return dist.LogNormal{Mu: logp + m.k.driftTauB, Sigma: m.k.sigTauB}
}

// checkRate validates an exchange-rate (or locked-amount) argument.
func checkRate(pstar float64) error {
	if pstar <= 0 || math.IsNaN(pstar) || math.IsInf(pstar, 0) {
		return fmt.Errorf("%w: exchange rate P*=%g must be > 0", ErrBadParam, pstar)
	}
	return nil
}

// checkPrice validates a price argument.
func checkPrice(p float64) error {
	if p <= 0 || math.IsNaN(p) || math.IsInf(p, 0) {
		return fmt.Errorf("%w: price %g must be > 0", ErrBadParam, p)
	}
	return nil
}
