package core

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/gbm"
	"repro/internal/mathx"
	"repro/internal/timeline"
	"repro/internal/utility"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func newDefaultModel(t *testing.T) *Model {
	t.Helper()
	m, err := New(utility.Default())
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return m
}

func TestNewValidatesParams(t *testing.T) {
	bad := utility.Default()
	bad.P0 = -1
	if _, err := New(bad); err == nil {
		t.Error("New with bad params should fail")
	}
	if m, err := New(utility.Default(), WithQuadOrder(32), WithHermiteOrder(16), WithScanPoints(200)); err != nil || m == nil {
		t.Errorf("New with options failed: %v", err)
	}
}

func TestActionString(t *testing.T) {
	tests := []struct {
		a    Action
		want string
	}{
		{Stop, "stop"},
		{Cont, "cont"},
		{Action(0), "Action(0)"},
	}
	for _, tt := range tests {
		if got := tt.a.String(); got != tt.want {
			t.Errorf("String() = %q, want %q", got, tt.want)
		}
	}
}

func TestCutoffT3MatchesEq18(t *testing.T) {
	// Eq. 18: P̄_t3 = e^{(rA−µ)τb − rA(εb+2τa)} · P*/(1+αA).
	m := newDefaultModel(t)
	tests := []struct {
		pstar float64
		want  float64
	}{
		{2, math.Exp((0.01-0.002)*4-0.01*7) * 2 / 1.3},
		{1.6, math.Exp((0.01-0.002)*4-0.01*7) * 1.6 / 1.3},
		{2.4, math.Exp((0.01-0.002)*4-0.01*7) * 2.4 / 1.3},
	}
	for _, tt := range tests {
		got, err := m.CutoffT3(tt.pstar)
		if err != nil {
			t.Fatalf("CutoffT3(%v): %v", tt.pstar, err)
		}
		if !almostEqual(got, tt.want, 1e-12) {
			t.Errorf("CutoffT3(%v) = %.10f, want %.10f", tt.pstar, got, tt.want)
		}
	}
	// Reference value used throughout the paper's discussion: ≈ 1.481 at P*=2.
	got, err := m.CutoffT3(2)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(got, 1.4811, 5e-4) {
		t.Errorf("CutoffT3(2) = %.4f, want ≈ 1.4811", got)
	}
}

func TestCutoffT3IncreasesWithRate(t *testing.T) {
	// "Clearly, P̄_t3 increases with P*" (§III.E.2).
	m := newDefaultModel(t)
	err := quick.Check(func(a, b float64) bool {
		p1 := 0.1 + math.Mod(math.Abs(a), 10)
		p2 := p1 + 0.1 + math.Mod(math.Abs(b), 10)
		c1, err1 := m.CutoffT3(p1)
		c2, err2 := m.CutoffT3(p2)
		return err1 == nil && err2 == nil && c1 < c2
	}, &quick.Config{MaxCount: 200})
	if err != nil {
		t.Error(err)
	}
}

func TestCutoffT3Errors(t *testing.T) {
	m := newDefaultModel(t)
	for _, p := range []float64{0, -1, math.NaN(), math.Inf(1)} {
		if _, err := m.CutoffT3(p); !errors.Is(err, ErrBadParam) {
			t.Errorf("CutoffT3(%v) err = %v, want ErrBadParam", p, err)
		}
	}
}

func TestAliceUtilityT3Shapes(t *testing.T) {
	// Fig. 3: cont is linear increasing in P_t3, stop is flat; they cross at
	// the cut-off.
	m := newDefaultModel(t)
	const pstar = 2.0
	cut, err := m.CutoffT3(pstar)
	if err != nil {
		t.Fatal(err)
	}
	uContLo, _ := m.AliceUtilityT3(Cont, cut/2, pstar)
	uContAt, _ := m.AliceUtilityT3(Cont, cut, pstar)
	uContHi, _ := m.AliceUtilityT3(Cont, cut*2, pstar)
	uStop, _ := m.AliceUtilityT3(Stop, cut, pstar)
	if !(uContLo < uContAt && uContAt < uContHi) {
		t.Errorf("cont utility not increasing: %v %v %v", uContLo, uContAt, uContHi)
	}
	if !almostEqual(uContAt, uStop, 1e-10) {
		t.Errorf("indifference at cut-off: cont=%v stop=%v", uContAt, uStop)
	}
	if uContLo >= uStop || uContHi <= uStop {
		t.Error("cut-off does not separate cont/stop preference")
	}
	// Stop utility equals Eq. 16 exactly.
	wantStop := pstar * math.Exp(-0.01*(1+6))
	if !almostEqual(uStop, wantStop, 1e-12) {
		t.Errorf("stop = %.12f, want %.12f", uStop, wantStop)
	}
}

func TestBobUtilityT3Values(t *testing.T) {
	m := newDefaultModel(t)
	const pstar, x = 2.0, 1.7
	// Eq. 15: (1+αB)·P*·e^{−rB(εb+τa)}.
	uCont, err := m.BobUtilityT3(Cont, x, pstar)
	if err != nil {
		t.Fatal(err)
	}
	if want := 1.3 * 2 * math.Exp(-0.01*4); !almostEqual(uCont, want, 1e-12) {
		t.Errorf("cont = %.12f, want %.12f", uCont, want)
	}
	// Eq. 17: x·e^{2(µ−rB)τb}.
	uStop, err := m.BobUtilityT3(Stop, x, pstar)
	if err != nil {
		t.Fatal(err)
	}
	if want := x * math.Exp(2*(0.002-0.01)*4); !almostEqual(uStop, want, 1e-12) {
		t.Errorf("stop = %.12f, want %.12f", uStop, want)
	}
}

func TestUtilityArgumentValidation(t *testing.T) {
	m := newDefaultModel(t)
	calls := []struct {
		name string
		f    func() (float64, error)
	}{
		{"AliceT3BadPrice", func() (float64, error) { return m.AliceUtilityT3(Cont, -1, 2) }},
		{"AliceT3BadRate", func() (float64, error) { return m.AliceUtilityT3(Cont, 1, 0) }},
		{"AliceT3BadAction", func() (float64, error) { return m.AliceUtilityT3(Action(9), 1, 2) }},
		{"BobT3BadPrice", func() (float64, error) { return m.BobUtilityT3(Stop, 0, 2) }},
		{"BobT3BadAction", func() (float64, error) { return m.BobUtilityT3(Action(0), 1, 2) }},
		{"AliceT2BadPrice", func() (float64, error) { return m.AliceUtilityT2(Cont, math.NaN(), 2) }},
		{"AliceT2BadAction", func() (float64, error) { return m.AliceUtilityT2(Action(3), 1, 2) }},
		{"BobT2BadRate", func() (float64, error) { return m.BobUtilityT2(Cont, 1, math.Inf(1)) }},
		{"BobT2BadAction", func() (float64, error) { return m.BobUtilityT2(Action(7), 1, 2) }},
		{"AliceT1BadRate", func() (float64, error) { return m.AliceUtilityT1(Cont, -2) }},
		{"AliceT1BadAction", func() (float64, error) { return m.AliceUtilityT1(Action(5), 2) }},
		{"BobT1BadRate", func() (float64, error) { return m.BobUtilityT1(Stop, 0) }},
		{"BobT1BadAction", func() (float64, error) { return m.BobUtilityT1(Action(4), 2) }},
		{"SuccessRateBadRate", func() (float64, error) { return m.SuccessRate(-1) }},
	}
	for _, c := range calls {
		t.Run(c.name, func(t *testing.T) {
			if _, err := c.f(); !errors.Is(err, ErrBadParam) {
				t.Errorf("err = %v, want ErrBadParam", err)
			}
		})
	}
}

func TestBobUtilityT2MatchesQuadrature(t *testing.T) {
	// The closed-form U^B_t2(cont) must equal the direct numerical
	// evaluation of Eq. 21.
	m := newDefaultModel(t)
	gl := mathx.MustGaussLegendre(128)
	const pstar = 2.0
	cut, _ := m.CutoffT3(pstar)
	p := m.Params()
	tauB := p.Chains.TauB
	for _, y := range []float64{0.8, 1.5, 2.0, 2.8} {
		tr := m.transition(y, tauB)
		contT3, _ := m.BobUtilityT3(Cont, 1, pstar) // constant in price
		integral := gl.IntegratePanels(func(x float64) float64 {
			stopT3, _ := m.BobUtilityT3(Stop, x, pstar)
			return tr.PDF(x) * stopT3
		}, 1e-9, cut, 16)
		want := math.Exp(-p.Bob.R*tauB) * (tr.TailProb(cut)*contT3 + integral)
		got, err := m.BobUtilityT2(Cont, y, pstar)
		if err != nil {
			t.Fatal(err)
		}
		if !almostEqual(got, want, 1e-8) {
			t.Errorf("y=%v: closed form %.10f, quadrature %.10f", y, got, want)
		}
	}
}

func TestAliceUtilityT2MatchesQuadrature(t *testing.T) {
	// Closed-form U^A_t2(cont) vs direct Eq. 20.
	m := newDefaultModel(t)
	gl := mathx.MustGaussLegendre(128)
	const pstar = 2.0
	cut, _ := m.CutoffT3(pstar)
	p := m.Params()
	tauB := p.Chains.TauB
	for _, y := range []float64{0.9, 2.0, 3.1} {
		tr := m.transition(y, tauB)
		stopT3, _ := m.AliceUtilityT3(Stop, 1, pstar)
		integral := gl.IntegratePanels(func(x float64) float64 {
			contT3, _ := m.AliceUtilityT3(Cont, x, pstar)
			return tr.PDF(x) * contT3
		}, cut, cut+40, 64)
		want := math.Exp(-p.Alice.R*tauB) * (integral + tr.CDF(cut)*stopT3)
		got, err := m.AliceUtilityT2(Cont, y, pstar)
		if err != nil {
			t.Fatal(err)
		}
		if !almostEqual(got, want, 1e-6) {
			t.Errorf("y=%v: closed form %.10f, quadrature %.10f", y, got, want)
		}
	}
}

func TestContRangeT2DefaultParameters(t *testing.T) {
	// Fig. 4: a non-degenerate range exists for P* ∈ {1.6, 2, 2.4}, and it
	// "expands and shifts to the higher end with larger P*".
	m := newDefaultModel(t)
	var prev mathx.Interval
	for i, pstar := range []float64{1.6, 2.0, 2.4} {
		iv, ok, err := m.ContRangeT2(pstar)
		if err != nil {
			t.Fatalf("ContRangeT2(%v): %v", pstar, err)
		}
		if !ok {
			t.Fatalf("ContRangeT2(%v): no range", pstar)
		}
		if iv.Lo <= 0 || iv.Hi <= iv.Lo {
			t.Errorf("ContRangeT2(%v) = %v: malformed", pstar, iv)
		}
		if i > 0 {
			if iv.Lo <= prev.Lo || iv.Hi <= prev.Hi {
				t.Errorf("range must shift up with P*: %v then %v", prev, iv)
			}
			if iv.Len() <= prev.Len() {
				t.Errorf("range must expand with P*: %v then %v", prev, iv)
			}
		}
		prev = iv
	}
}

func TestContRangeT2Indifference(t *testing.T) {
	// At the bounds P̲_t2 and P̄_t2, B is indifferent: U^B_t2(cont) = P_t2.
	m := newDefaultModel(t)
	iv, ok, err := m.ContRangeT2(2)
	if err != nil || !ok {
		t.Fatalf("ContRangeT2: %v ok=%v", err, ok)
	}
	for _, y := range []float64{iv.Lo, iv.Hi} {
		cont, _ := m.BobUtilityT2(Cont, y, 2)
		stop, _ := m.BobUtilityT2(Stop, y, 2)
		if !almostEqual(cont, stop, 1e-6) {
			t.Errorf("at y=%v: cont=%v stop=%v, want indifference", y, cont, stop)
		}
	}
	// Strictly inside, cont must win; outside, stop must win.
	mid := math.Sqrt(iv.Lo * iv.Hi)
	cont, _ := m.BobUtilityT2(Cont, mid, 2)
	if cont <= mid {
		t.Errorf("inside range cont=%v <= stop=%v", cont, mid)
	}
	for _, y := range []float64{iv.Lo * 0.5, iv.Hi * 1.5} {
		cont, _ := m.BobUtilityT2(Cont, y, 2)
		if cont > y {
			t.Errorf("outside range at y=%v: cont=%v should not exceed stop", y, cont)
		}
	}
}

func TestContRangeT2VanishesForSmallAlphaB(t *testing.T) {
	// §III.E.3: "When αB is sufficiently small, U^B_t2(cont) < U^B_t2(stop)
	// for all P_t2 > 0, and the swap always fails."
	params := utility.Default().WithBobAlpha(0.001)
	m, err := New(params)
	if err != nil {
		t.Fatal(err)
	}
	_, ok, err := m.ContRangeT2(2)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("expected empty continuation range for tiny αB")
	}
	sr, err := m.SuccessRate(2)
	if err != nil {
		t.Fatal(err)
	}
	if sr != 0 {
		t.Errorf("SR = %v, want 0 for tiny αB", sr)
	}
}

func TestFeasibleRateRangeMatchesEq29(t *testing.T) {
	// Eq. 29: (P̲*, P̄*) ≈ (1.5, 2.5) under Table III.
	m := newDefaultModel(t)
	rng, ok, err := m.FeasibleRateRange()
	if err != nil {
		t.Fatalf("FeasibleRateRange: %v", err)
	}
	if !ok {
		t.Fatal("no feasible range under default parameters")
	}
	if rng.Lo < 1.40 || rng.Lo > 1.65 {
		t.Errorf("P̲* = %.4f, want ≈ 1.5", rng.Lo)
	}
	if rng.Hi < 2.40 || rng.Hi > 2.65 {
		t.Errorf("P̄* = %.4f, want ≈ 2.5", rng.Hi)
	}
}

func TestAliceUtilityT1Indifference(t *testing.T) {
	// At the feasible-range boundary, U^A_t1(cont) = P* (Fig. 5).
	m := newDefaultModel(t)
	rng, ok, err := m.FeasibleRateRange()
	if err != nil || !ok {
		t.Fatalf("FeasibleRateRange: %v ok=%v", err, ok)
	}
	for _, p := range []float64{rng.Lo, rng.Hi} {
		cont, _ := m.AliceUtilityT1(Cont, p)
		if !almostEqual(cont, p, 1e-5) {
			t.Errorf("at P*=%v: cont=%v, want ≈ P*", p, cont)
		}
	}
	mid := 0.5 * (rng.Lo + rng.Hi)
	cont, _ := m.AliceUtilityT1(Cont, mid)
	if cont <= mid {
		t.Errorf("inside range: cont=%v <= stop=%v", cont, mid)
	}
	stop, _ := m.AliceUtilityT1(Stop, mid)
	if stop != mid {
		t.Errorf("stop = %v, want P* = %v", stop, mid)
	}
}

func TestBobUtilityT1(t *testing.T) {
	m := newDefaultModel(t)
	stop, err := m.BobUtilityT1(Stop, 2)
	if err != nil {
		t.Fatal(err)
	}
	if stop != 2 {
		t.Errorf("stop = %v, want P0 = 2", stop)
	}
	// At a fair-ish rate B's cont utility must beat holding Token_b.
	cont, err := m.BobUtilityT1(Cont, 2)
	if err != nil {
		t.Fatal(err)
	}
	if cont <= stop {
		t.Errorf("cont = %v should exceed stop = %v at P*=2", cont, stop)
	}
}

func TestSuccessRateShape(t *testing.T) {
	// §III.F: "the SR(P*) curve is always concave, with the SR-maximising
	// point residing between P̲* and P̄*."
	m := newDefaultModel(t)
	rng, ok, err := m.FeasibleRateRange()
	if err != nil || !ok {
		t.Fatal("no feasible range")
	}
	grid := mathx.LinSpace(rng.Lo, rng.Hi, 21)
	srs := make([]float64, len(grid))
	for i, p := range grid {
		sr, err := m.SuccessRate(p)
		if err != nil {
			t.Fatalf("SuccessRate(%v): %v", p, err)
		}
		if sr < 0 || sr > 1 {
			t.Fatalf("SR(%v) = %v out of [0,1]", p, sr)
		}
		srs[i] = sr
	}
	// Concavity: second differences non-positive (tolerance for quadrature).
	for i := 1; i+1 < len(srs); i++ {
		dd := srs[i+1] - 2*srs[i] + srs[i-1]
		if dd > 1e-4 {
			t.Errorf("SR not concave at %v: second difference %v", grid[i], dd)
		}
	}
	opt, srOpt, err := m.OptimalRate()
	if err != nil {
		t.Fatalf("OptimalRate: %v", err)
	}
	if opt <= rng.Lo || opt >= rng.Hi {
		t.Errorf("optimal rate %v outside feasible range %v", opt, rng)
	}
	for _, sr := range srs {
		if sr > srOpt+1e-6 {
			t.Errorf("grid SR %v exceeds reported optimum %v", sr, srOpt)
		}
	}
}

func TestSuccessRateSensitivities(t *testing.T) {
	// Fig. 6 directional claims, evaluated at the default-optimal rate.
	base := newDefaultModel(t)
	opt, srBase, err := base.OptimalRate()
	if err != nil {
		t.Fatalf("OptimalRate: %v", err)
	}
	mk := func(p utility.Params) *Model {
		m, err := New(p)
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		return m
	}
	sr := func(m *Model, pstar float64) float64 {
		v, err := m.SuccessRate(pstar)
		if err != nil {
			t.Fatalf("SuccessRate: %v", err)
		}
		return v
	}
	t.Run("alphaARaisesSR", func(t *testing.T) {
		if got := sr(mk(utility.Default().WithAliceAlpha(0.4)), opt); got <= srBase {
			t.Errorf("SR with αA=0.4 = %v, want > %v", got, srBase)
		}
	})
	t.Run("alphaBRaisesSR", func(t *testing.T) {
		if got := sr(mk(utility.Default().WithBobAlpha(0.4)), opt); got <= srBase {
			t.Errorf("SR with αB=0.4 = %v, want > %v", got, srBase)
		}
	})
	t.Run("muRaisesSR", func(t *testing.T) {
		if got := sr(mk(utility.Default().WithMu(0.004)), opt); got <= srBase {
			t.Errorf("SR with µ=0.004 = %v, want > %v", got, srBase)
		}
	})
	t.Run("sigmaLowersMaxSR", func(t *testing.T) {
		// σ=0.2 leaves no t1-viable rate at all (a □-marked value in
		// Fig. 6), so compare the unconditional maximum of the SR curve.
		m := mk(utility.Default().WithSigma(0.2))
		maxSR := 0.0
		for _, p := range mathx.LinSpace(0.5, 4, 36) {
			if got := sr(m, p); got > maxSR {
				maxSR = got
			}
		}
		if maxSR >= srBase {
			t.Errorf("max SR with σ=0.2 = %v, want < %v", maxSR, srBase)
		}
	})
	t.Run("shorterTauARaisesMaxSR", func(t *testing.T) {
		m := mk(utility.Default().WithTauA(1))
		_, srOpt, err := m.OptimalRate()
		if err != nil {
			t.Fatalf("OptimalRate: %v", err)
		}
		if srOpt <= srBase {
			t.Errorf("max SR with τa=1 = %v, want > %v", srOpt, srBase)
		}
	})
	t.Run("higherRNarrowsFeasibleRange", func(t *testing.T) {
		baseRng, ok, _ := base.FeasibleRateRange()
		if !ok {
			t.Fatal("no base range")
		}
		m := mk(utility.Default().WithAliceR(0.02).WithBobR(0.02))
		rng, ok, err := m.FeasibleRateRange()
		if err != nil {
			t.Fatal(err)
		}
		if ok && rng.Len() >= baseRng.Len() {
			t.Errorf("range with r=0.02 = %v, want narrower than %v", rng, baseRng)
		}
	})
}

func TestSuccessRateMatchesThresholdMonteCarlo(t *testing.T) {
	// Independent validation of Eq. 31: simulate the threshold strategies
	// over the GBM transition and compare the empirical rate.
	m := newDefaultModel(t)
	const pstar = 2.0
	strat, err := m.Strategy(pstar)
	if err != nil {
		t.Fatal(err)
	}
	analytic, err := m.SuccessRate(pstar)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2024))
	p := m.Params()
	const n = 400000
	success := 0
	for i := 0; i < n; i++ {
		pT2 := p.Price.Step(rng, p.P0, p.Chains.TauA)
		if !strat.BobContT2.Contains(pT2) {
			continue
		}
		pT3 := p.Price.Step(rng, pT2, p.Chains.TauB)
		if pT3 > strat.AliceCutoffT3 {
			success++
		}
	}
	got := float64(success) / n
	if !almostEqual(got, analytic, 0.005) {
		t.Errorf("Monte Carlo SR = %.4f, analytic = %.4f", got, analytic)
	}
}

func TestStrategy(t *testing.T) {
	m := newDefaultModel(t)
	rng, ok, err := m.FeasibleRateRange()
	if err != nil || !ok {
		t.Fatal("no feasible range")
	}
	tests := []struct {
		pstar        float64
		wantInitiate bool
	}{
		{0.5 * (rng.Lo + rng.Hi), true},
		{rng.Lo * 0.5, false},
		{rng.Hi * 1.5, false},
	}
	for _, tt := range tests {
		s, err := m.Strategy(tt.pstar)
		if err != nil {
			t.Fatalf("Strategy(%v): %v", tt.pstar, err)
		}
		if s.AliceInitiates != tt.wantInitiate {
			t.Errorf("Strategy(%v).AliceInitiates = %v, want %v", tt.pstar, s.AliceInitiates, tt.wantInitiate)
		}
		if s.PStar != tt.pstar {
			t.Errorf("PStar = %v, want %v", s.PStar, tt.pstar)
		}
	}
	if _, err := m.Strategy(-1); !errors.Is(err, ErrBadParam) {
		t.Errorf("Strategy(-1) err = %v, want ErrBadParam", err)
	}
}

func TestOptimalRateNotViable(t *testing.T) {
	// Exceedingly high discount rates make every exchange rate infeasible
	// (§III.F.2).
	params := utility.Default().WithAliceR(0.2).WithBobR(0.2)
	m, err := New(params)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := m.OptimalRate(); !errors.Is(err, ErrNotViable) {
		t.Errorf("err = %v, want ErrNotViable", err)
	}
}

func TestScaleInvariance(t *testing.T) {
	// The game is homogeneous in the price level: multiplying P0 and P* by
	// λ scales every threshold by λ and leaves SR and the initiation
	// decision unchanged. The repeated-game engine's strategy cache relies
	// on this property.
	base := newDefaultModel(t)
	const lambda = 3.7
	scaled, err := New(utility.Default().WithP0(2 * lambda))
	if err != nil {
		t.Fatal(err)
	}
	for _, pstar := range []float64{1.7, 2.0, 2.3} {
		cut1, err := base.CutoffT3(pstar)
		if err != nil {
			t.Fatal(err)
		}
		cut2, err := scaled.CutoffT3(pstar * lambda)
		if err != nil {
			t.Fatal(err)
		}
		if !almostEqual(cut2, lambda*cut1, 1e-9*cut2) {
			t.Errorf("cutoff not scale-invariant: %v vs λ·%v", cut2, cut1)
		}
		iv1, ok1, err := base.ContRangeT2(pstar)
		if err != nil {
			t.Fatal(err)
		}
		iv2, ok2, err := scaled.ContRangeT2(pstar * lambda)
		if err != nil {
			t.Fatal(err)
		}
		if ok1 != ok2 {
			t.Fatalf("viability differs under scaling")
		}
		if ok1 {
			if !almostEqual(iv2.Lo, lambda*iv1.Lo, 1e-5*iv2.Lo) ||
				!almostEqual(iv2.Hi, lambda*iv1.Hi, 1e-5*iv2.Hi) {
				t.Errorf("region not scale-invariant: %v vs λ·%v", iv2, iv1)
			}
		}
		sr1, err := base.SuccessRate(pstar)
		if err != nil {
			t.Fatal(err)
		}
		sr2, err := scaled.SuccessRate(pstar * lambda)
		if err != nil {
			t.Fatal(err)
		}
		if !almostEqual(sr1, sr2, 1e-7) {
			t.Errorf("SR not scale-invariant: %v vs %v", sr1, sr2)
		}
	}
	// The optimal rate scales too.
	p1, s1, err := base.OptimalRate()
	if err != nil {
		t.Fatal(err)
	}
	p2, s2, err := scaled.OptimalRate()
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(p2, lambda*p1, 1e-3*p2) || !almostEqual(s1, s2, 1e-5) {
		t.Errorf("optimal rate not scale-invariant: (%v, %v) vs (λ·%v, %v)", p2, s2, p1, s1)
	}
}

func TestRandomParameterCrossValidation(t *testing.T) {
	// For randomised (seeded) parameter sets, the analytic SR must match a
	// threshold Monte Carlo over the same GBM transitions, and the solved
	// thresholds must be internally consistent. This is the solver's
	// safety net away from Table III.
	rng := rand.New(rand.NewSource(20260610))
	for trial := 0; trial < 6; trial++ {
		params := utility.Params{
			Alice: utility.AgentParams{
				Alpha: 0.15 + 0.4*rng.Float64(),
				R:     0.004 + 0.012*rng.Float64(),
			},
			Bob: utility.AgentParams{
				Alpha: 0.15 + 0.4*rng.Float64(),
				R:     0.004 + 0.012*rng.Float64(),
			},
			Chains: timeline.Chains{
				TauA: 1 + 4*rng.Float64(),
				TauB: 2 + 4*rng.Float64(),
				EpsB: 0.5,
			},
			Price: gbm.Process{
				Mu:    -0.003 + 0.006*rng.Float64(),
				Sigma: 0.06 + 0.08*rng.Float64(),
			},
			P0: 0.5 + 3*rng.Float64(),
		}
		m, err := New(params)
		if err != nil {
			t.Fatalf("trial %d: New: %v", trial, err)
		}
		pstar := params.P0 * (0.9 + 0.2*rng.Float64())
		strat, err := m.Strategy(pstar)
		if err != nil {
			t.Fatalf("trial %d: Strategy: %v", trial, err)
		}
		analytic, err := m.SuccessRate(pstar)
		if err != nil {
			t.Fatalf("trial %d: SuccessRate: %v", trial, err)
		}
		if analytic < 0 || analytic > 1 {
			t.Fatalf("trial %d: SR = %v out of [0,1]", trial, analytic)
		}
		// Threshold self-consistency: region endpoints are indifference
		// points of Bob's stage problem.
		for _, iv := range strat.BobContT2.Intervals() {
			for _, y := range []float64{iv.Lo, iv.Hi} {
				if y < 1e-4 { // scan floor, not an indifference point
					continue
				}
				cont, err := m.BobUtilityT2(Cont, y, pstar)
				if err != nil {
					t.Fatal(err)
				}
				if !almostEqual(cont, y, 1e-4*(1+y)) {
					t.Errorf("trial %d: endpoint %v not indifferent (cont=%v)", trial, y, cont)
				}
			}
		}
		// Monte Carlo over the transition thresholds.
		const n = 120000
		success := 0
		for i := 0; i < n; i++ {
			pT2 := params.Price.Step(rng, params.P0, params.Chains.TauA)
			if !strat.BobContT2.Contains(pT2) {
				continue
			}
			pT3 := params.Price.Step(rng, pT2, params.Chains.TauB)
			if pT3 > strat.AliceCutoffT3 {
				success++
			}
		}
		mc := float64(success) / n
		if math.Abs(mc-analytic) > 0.01 {
			t.Errorf("trial %d (params %+v, P*=%.3f): MC SR %.4f vs analytic %.4f",
				trial, params, pstar, mc, analytic)
		}
	}
}
