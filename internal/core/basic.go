package core

import (
	"fmt"
	"math"

	"repro/internal/mathx"
)

// cutoffT3 returns the t3 cut-off price P̄_t3 of Eq. 18, generalised with a
// collateral amount q (Eq. 33, §IV.A.2). q = 0 recovers the basic game. The
// cut-off is clamped at zero: with enough collateral at stake A continues at
// any price.
func (m *Model) cutoffT3(pstar, q float64) float64 {
	net := pstar*m.k.refundT3 - q*m.k.qReturnA
	if net <= 0 {
		return 0
	}
	return m.k.cutoffScale * net / (1 + m.params.Alice.Alpha)
}

// CutoffT3 returns the cut-off price P̄_t3 of Eq. 18: A continues at t3 when
// P_t3 exceeds it and stops otherwise (Eq. 19).
func (m *Model) CutoffT3(pstar float64) (float64, error) {
	if err := checkRate(pstar); err != nil {
		return 0, err
	}
	return m.cutoffT3(pstar, 0), nil
}

// ---- Stage t3 (Eqs. 14–17) ----

// aliceContT3 is U^A_t3(cont) as a function of the t3 price x (Eq. 14):
// (1+αA)·E(x,τb)·e^{−rA·τb}.
func (m *Model) aliceContT3(x float64) float64 {
	return (1 + m.params.Alice.Alpha) * x * m.k.growthA
}

// aliceStopT3 is U^A_t3(stop) (Eq. 16): the refund P* received at t8.
func (m *Model) aliceStopT3(pstar float64) float64 {
	return pstar * m.k.refundT3
}

// bobContT3 is U^B_t3(cont) (Eq. 15): B banks P* Token_a at t6.
func (m *Model) bobContT3(pstar float64) float64 {
	return (1 + m.params.Bob.Alpha) * pstar * m.k.bankB
}

// bobStopT3 is U^B_t3(stop) as a function of the t3 price x (Eq. 17):
// B's Token_b returns at t7 = t3 + 2τb.
func (m *Model) bobStopT3(x float64) float64 {
	return x * m.k.growth2B
}

// AliceUtilityT3 evaluates U^A_t3 (Eqs. 14 and 16) at t3 price pT3 for the
// given action. pT3 only affects the cont branch but is validated for both.
func (m *Model) AliceUtilityT3(action Action, pT3, pstar float64) (float64, error) {
	if err := checkPrice(pT3); err != nil {
		return 0, err
	}
	if err := checkRate(pstar); err != nil {
		return 0, err
	}
	switch action {
	case Cont:
		return m.aliceContT3(pT3), nil
	case Stop:
		return m.aliceStopT3(pstar), nil
	default:
		return 0, fmt.Errorf("%w: action %v", ErrBadParam, action)
	}
}

// BobUtilityT3 evaluates U^B_t3 (Eqs. 15 and 17) at t3 price pT3. The cont
// branch reflects that B claims with certainty once the secret is revealed
// (§III.E.1).
func (m *Model) BobUtilityT3(action Action, pT3, pstar float64) (float64, error) {
	if err := checkPrice(pT3); err != nil {
		return 0, err
	}
	if err := checkRate(pstar); err != nil {
		return 0, err
	}
	switch action {
	case Cont:
		return m.bobContT3(pstar), nil
	case Stop:
		return m.bobStopT3(pT3), nil
	default:
		return 0, fmt.Errorf("%w: action %v", ErrBadParam, action)
	}
}

// ---- Stage t2 (Eqs. 20–23), generalised with collateral q ----

// t2Eval bundles every part of the t2 stage utilities that is constant in
// the t2 price y: the cut-off P̄_t3 and its logarithm, the t3 continuation
// and stop values, and the premium-weighted coefficients. One t2Eval is
// built per (P*, Q) solve and reused across the hundreds of price points a
// root scan or stage integral evaluates, replacing the per-point
// recomputation of Eqs. 15–18. Every field stores the bit-exact value of
// the subexpression it replaces, so evaluation through a t2Eval returns
// the same floats as the original per-point formulas.
type t2Eval struct {
	m        *Model
	pstar, q float64
	pbar     float64 // cutoffT3(pstar, q)
	logPbar  float64 // math.Log(pbar)

	aliceStop3 float64 // aliceStopT3(pstar)
	bobCont3   float64 // bobContT3(pstar)
	contCoefA  float64 // (1+αA)·exp((µ−rA)τb), A's t3 cont coefficient
	qReturn    float64 // q·exp(−rA(εb+τa)), A's returned deposit
	qDiscB     float64 // q·exp(−rB·τa), B's own released deposit
	qBank      float64 // q·exp(−rB(εb+τa)), A's forfeited deposit to B
}

// newT2Eval hoists the y-independent parts of Eqs. 20–24 (33–35 with q>0).
func (m *Model) newT2Eval(pstar, q float64) t2Eval {
	pbar := m.cutoffT3(pstar, q)
	return t2Eval{
		m:          m,
		pstar:      pstar,
		q:          q,
		pbar:       pbar,
		logPbar:    math.Log(pbar),
		aliceStop3: m.aliceStopT3(pstar),
		bobCont3:   m.bobContT3(pstar),
		contCoefA:  (1 + m.params.Alice.Alpha) * m.k.growthA,
		qReturn:    q * m.k.qReturnA,
		qDiscB:     q * m.k.discBTauA,
		qBank:      q * m.k.bankB,
	}
}

// aliceCont is U^A_t2(cont) at t2 price y with logy = math.Log(y)
// (Eq. 20; Eq. 34 when q > 0): the success branch integrates A's t3 cont
// utility above the cut-off in closed form via the truncated lognormal
// moment; with collateral, A's returned deposit rides on the same branch.
func (e *t2Eval) aliceCont(logy float64) float64 {
	tr := e.m.transitionTauBAtLog(logy)
	cont := e.contCoefA * tr.PartialExpectationAboveAtLog(e.pbar, e.logPbar)
	if e.qReturn != 0 {
		// The deposit term vanishes exactly in the basic game; skipping it
		// skips one erfc without moving the sum (adding +0 is exact).
		cont += e.qReturn * tr.TailProbAtLog(e.pbar, e.logPbar)
	}
	stop := tr.CDFAtLog(e.pbar, e.logPbar) * e.aliceStop3
	return e.m.k.discATauB * (cont + stop)
}

// bobCont is U^B_t2(cont) at t2 price y with logy = math.Log(y)
// (Eq. 21; Eq. 35 when q > 0). With collateral, B's own deposit is released
// at t3 and received at t3+τa, and A's forfeited deposit accrues to B on
// the branch where A stops.
func (e *t2Eval) bobCont(logy float64) float64 {
	tr := e.m.transitionTauBAtLog(logy)
	val := e.qDiscB +
		tr.TailProbAtLog(e.pbar, e.logPbar)*e.bobCont3 +
		e.m.k.growth2B*tr.PartialExpectationBelowAtLog(e.pbar, e.logPbar)
	if e.qBank != 0 {
		// Forfeited-deposit term: exactly zero in the basic game, so the
		// hottest scan of the solve engine skips one of its three erfc
		// evaluations (adding +0 is exact; every term is non-negative).
		val += e.qBank * tr.CDFAtLog(e.pbar, e.logPbar)
	}
	return e.m.k.discBTauB * val
}

// succ is the success probability of the t3 subgame seen from t2 price y
// (the inner factor of Eq. 31): P[P_t3 > P̄_t3 | P_t2 = y].
func (e *t2Eval) succ(logy float64) float64 {
	return e.m.transitionTauBAtLog(logy).TailProbAtLog(e.pbar, e.logPbar)
}

// aliceContT2 is U^A_t2(cont) at t2 price y (Eq. 20; Eq. 34 when q > 0).
func (m *Model) aliceContT2(y, pstar, q float64) float64 {
	e := m.newT2Eval(pstar, q)
	return e.aliceCont(math.Log(y))
}

// aliceStopT2 is U^A_t2(stop) (Eq. 22): A's refund arrives at
// t8 = t2 + τb + εb + 2τa after B walks away.
func (m *Model) aliceStopT2(pstar float64) float64 {
	return pstar * m.k.stopT2A
}

// bobContT2 is U^B_t2(cont) at t2 price y (Eq. 21; Eq. 35 when q > 0).
func (m *Model) bobContT2(y, pstar, q float64) float64 {
	e := m.newT2Eval(pstar, q)
	return e.bobCont(math.Log(y))
}

// bobStopT2 is U^B_t2(stop) (Eq. 23): B simply keeps his Token_b (and, with
// collateral, forfeits the deposit — Eq. 23 is reused unchanged in §IV.A.3).
func (m *Model) bobStopT2(y float64) float64 { return y }

// AliceUtilityT2 evaluates U^A_t2 (Eqs. 20 and 22) at t2 price pT2.
func (m *Model) AliceUtilityT2(action Action, pT2, pstar float64) (float64, error) {
	if err := checkPrice(pT2); err != nil {
		return 0, err
	}
	if err := checkRate(pstar); err != nil {
		return 0, err
	}
	switch action {
	case Cont:
		return m.aliceContT2(pT2, pstar, 0), nil
	case Stop:
		return m.aliceStopT2(pstar), nil
	default:
		return 0, fmt.Errorf("%w: action %v", ErrBadParam, action)
	}
}

// BobUtilityT2 evaluates U^B_t2 (Eqs. 21 and 23) at t2 price pT2.
func (m *Model) BobUtilityT2(action Action, pT2, pstar float64) (float64, error) {
	if err := checkPrice(pT2); err != nil {
		return 0, err
	}
	if err := checkRate(pstar); err != nil {
		return 0, err
	}
	switch action {
	case Cont:
		return m.bobContT2(pT2, pstar, 0), nil
	case Stop:
		return m.bobStopT2(pT2), nil
	default:
		return 0, fmt.Errorf("%w: action %v", ErrBadParam, action)
	}
}

// contSetT2 computes B's continuation region at t2,
// {y > 0 : U^B_t2(cont)(y) > U^B_t2(stop)(y)}, as a union of intervals.
// In the basic game (q = 0) this is the single interval (P̲_t2, P̄_t2] of
// Eq. 24; with collateral the difference can have one or three roots
// (Fig. 7), hence the general interval-set machinery. The scan happens in
// log-price space, matching the lognormal geometry of the transition law.
//
// The scan is the solve engine's hottest primitive, so the result is
// memoized per (P*, Q) — ContRangeT2, SuccessRate and Strategy at the same
// rate share one scan.
func (m *Model) contSetT2(pstar, q float64) mathx.IntervalSet {
	return m.solve.contSet.Do(solveKey{pstar, q}, func() mathx.IntervalSet {
		return m.contSetT2Scan(pstar, q)
	})
}

// unitContSetT2 is the memoized unit-rate scan behind contSetT2Probe. It
// shares the contSet memo's {1, 0} cell, so an exact solve at P* = 1 and
// the probe path agree bit for bit.
func (m *Model) unitContSetT2() mathx.IntervalSet {
	return m.solve.contSet.Do(solveKey{1, 0}, func() mathx.IntervalSet {
		return m.contSetT2Scan(1, 0)
	})
}

// contSetT2Probe returns the basic game's continuation region via the
// price-scale invariance of the t2 subgame: with q = 0 every term of
// U^B_t2(cont) − U^B_t2(stop) is 1-homogeneous in (P*, y) — P̄_t3 ∝ P*,
// bobContT3 ∝ P*, and the truncated lognormal moment ∝ y — so the region
// at any rate is the unit-rate region scaled by P*. One 600-point root
// scan per Model serves every probe, where the exact path pays one scan
// per rate.
//
// The scaled endpoints agree with contSetT2's direct scan only to root
// tolerance (~1e-11 relative), so this path is reserved for interior
// probe evaluations — feasibility root-finding and optimum bracketing —
// whose results are reported at far coarser precision. Anything memoized
// or printed keeps the exact per-rate scan.
func (m *Model) contSetT2Probe(pstar float64) mathx.IntervalSet {
	unit := m.unitContSetT2()
	if pstar == 1 {
		return unit
	}
	return unit.Scale(pstar)
}

// contSetT2Scan is the uncached scan behind contSetT2.
func (m *Model) contSetT2Scan(pstar, q float64) mathx.IntervalSet {
	e := m.newT2Eval(pstar, q)
	diff := func(y float64) float64 { return e.bobCont(math.Log(y)) - y }
	b := m.params.Bob
	pbar := e.pbar
	// Upper bound: U^B_t2(cont) ≤ q + (1+αB)P* + e^{2(µ−rB)τb}·P̄_t3 up to
	// discount factors ≤ e^{|µ|τ}, so cont < stop surely beyond a small
	// multiple of that bound.
	growth := math.Exp(2 * math.Max(m.params.Price.Mu-b.R, 0) * m.params.Chains.TauB)
	hi := 4*((1+b.Alpha)*pstar+growth*pbar+q+1) + 2*m.params.P0
	lo := 1e-7 * math.Min(m.params.P0, pstar)
	logDiff := func(u float64) float64 { return diff(math.Exp(u)) }
	logRoots := mathx.FindAllRoots(logDiff, math.Log(lo), math.Log(hi), m.scanN, m.tol)
	roots := make([]float64, len(logRoots))
	for i, u := range logRoots {
		roots[i] = math.Exp(u)
	}
	return mathx.FromSignChanges(diff, lo, hi, roots)
}

// ContRangeT2 returns the continuation range (P̲_t2, P̄_t2) of Eq. 24: B
// writes his HTLC at t2 only when the observed price lies inside it. ok is
// false when B never continues (for instance when αB is too small,
// §III.E.3). In the basic game the region is a single interval; its bounds
// are returned.
func (m *Model) ContRangeT2(pstar float64) (mathx.Interval, bool, error) {
	if err := checkRate(pstar); err != nil {
		return mathx.Interval{}, false, err
	}
	set := m.contSetT2(pstar, 0)
	if set.Empty() {
		return mathx.Interval{Lo: 1, Hi: 0}, false, nil
	}
	return set.Bounds(), true, nil
}

// ---- Stage t1 (Eqs. 25–28) ----

// aliceContT1 is U^A_t1(cont) (Eq. 25): the discounted expectation of A's
// t2 position over B's continuation region, plus her refund on the stop
// region. The q generalisation implements Eq. 36 excluding the collateral
// constant in the stop branch, which Collateral.aliceContT1 adds.
// Memoized per P* so Strategy and the figure curves reuse the feasibility
// scan's evaluations.
func (m *Model) aliceContT1(pstar float64) float64 {
	return m.solve.aliceT1.Do(solveKey{pstar, 0}, func() float64 {
		return m.aliceContT1Integrate(pstar)
	})
}

func (m *Model) aliceContT1Integrate(pstar float64) float64 {
	return m.aliceContT1Over(pstar, m.contSetT2(pstar, 0))
}

// aliceContT1Probe is aliceContT1 evaluated over the scale-invariant probe
// region instead of a fresh per-rate scan — the cheap evaluation behind the
// feasibility scan's several hundred rate probes. It writes no memo cell:
// probe values differ from the exact path at root tolerance and must never
// be served to an exact query.
func (m *Model) aliceContT1Probe(pstar float64) float64 {
	return m.aliceContT1Over(pstar, m.contSetT2Probe(pstar))
}

// aliceContT1Over integrates Eq. 25 over a given t2 continuation region;
// the exact and probe paths share it so they differ only in the region.
func (m *Model) aliceContT1Over(pstar float64, set mathx.IntervalSet) float64 {
	e := m.newT2Eval(pstar, 0)
	tr := m.transitionTauA(m.params.P0)
	// Stack-backed scratch for the default 64-point rule; larger orders
	// spill to the heap.
	var arr [64]float64
	buf := arr[:0]
	if n := m.gl.N(); n > len(arr) {
		buf = make([]float64, 0, n)
	}
	var contPart, prob float64
	for _, iv := range set.Intervals() {
		// Scratch-free quadrature: evaluate the integrand over the mapped
		// nodes in place; IntegrateMapped reproduces Integrate bit for bit.
		nodes := m.gl.MapNodes(buf[:0], iv.Lo, iv.Hi)
		for i, y := range nodes {
			logy := math.Log(y)
			nodes[i] = tr.PDFAtLog(y, logy) * e.aliceCont(logy)
		}
		contPart += m.gl.IntegrateMapped(nodes, iv.Lo, iv.Hi)
		prob += tr.CDF(iv.Hi) - tr.CDF(iv.Lo)
	}
	stopPart := (1 - prob) * m.aliceStopT2(pstar)
	return m.k.discATauA * (contPart + stopPart)
}

// bobContT1 is U^B_t1(cont) (Eq. 26, with the upper stop region restored —
// see DESIGN.md deviation 1): B's expected t2 position whether or not he
// ends up continuing. Memoized per P*, like aliceContT1.
func (m *Model) bobContT1(pstar float64) float64 {
	return m.solve.bobT1.Do(solveKey{pstar, 0}, func() float64 {
		return m.bobContT1Integrate(pstar)
	})
}

func (m *Model) bobContT1Integrate(pstar float64) float64 {
	e := m.newT2Eval(pstar, 0)
	set := m.contSetT2(pstar, 0)
	tr := m.transitionTauA(m.params.P0)
	// Stack-backed scratch for the default 64-point rule; larger orders
	// spill to the heap.
	var arr [64]float64
	buf := arr[:0]
	if n := m.gl.N(); n > len(arr) {
		buf = make([]float64, 0, n)
	}
	var contPart, peInside float64
	for _, iv := range set.Intervals() {
		nodes := m.gl.MapNodes(buf[:0], iv.Lo, iv.Hi)
		for i, y := range nodes {
			logy := math.Log(y)
			nodes[i] = tr.PDFAtLog(y, logy) * e.bobCont(logy)
		}
		contPart += m.gl.IntegrateMapped(nodes, iv.Lo, iv.Hi)
		peInside += tr.PartialExpectationBelow(iv.Hi) - tr.PartialExpectationBelow(iv.Lo)
	}
	// On the stop region B's utility is the price itself (Eq. 23), so the
	// stop contribution is the complementary partial expectation.
	stopPart := tr.Mean() - peInside
	return m.k.discBTauA * (contPart + stopPart)
}

// AliceUtilityT1 evaluates U^A_t1 (Eqs. 25 and 27).
func (m *Model) AliceUtilityT1(action Action, pstar float64) (float64, error) {
	if err := checkRate(pstar); err != nil {
		return 0, err
	}
	switch action {
	case Cont:
		return m.aliceContT1(pstar), nil
	case Stop:
		return pstar, nil
	default:
		return 0, fmt.Errorf("%w: action %v", ErrBadParam, action)
	}
}

// BobUtilityT1 evaluates U^B_t1 (Eqs. 26 and 28).
func (m *Model) BobUtilityT1(action Action, pstar float64) (float64, error) {
	if err := checkRate(pstar); err != nil {
		return 0, err
	}
	switch action {
	case Cont:
		return m.bobContT1(pstar), nil
	case Stop:
		return m.params.P0, nil
	default:
		return 0, fmt.Errorf("%w: action %v", ErrBadParam, action)
	}
}

// rateScanBound returns the upper end of the exchange-rate scan: beyond it
// A's cont utility (bounded by the discounted, premium-weighted expected
// token value) cannot reach P*.
func (m *Model) rateScanBound() float64 {
	a, c, pr := m.params.Alice, m.params.Chains, m.params.Price
	horizon := c.TauA + 2*c.TauB + c.EpsB + 2*c.TauA
	return 5*(1+a.Alpha)*m.params.P0*math.Exp(math.Max(pr.Mu, 0)*horizon) + 2
}

// FeasibleRateRange returns the exchange-rate range (P̲*, P̄*) of Eq. 30
// within which A initiates the swap at t1; with Table III parameters this is
// the paper's Eq. 29, approximately (1.5, 2.5). ok is false when no rate is
// viable (for instance under an exceedingly high discount rate, §III.F.2).
// The scan — several hundred full t1 solves — is memoized on the Model. Each
// probe uses the scale-invariant t2 region (contSetT2Probe), so the whole
// scan costs one unit-rate root scan plus cheap quadratures; the boundary
// rates it reports are accurate to root tolerance either way.
func (m *Model) FeasibleRateRange() (mathx.Interval, bool, error) {
	res := m.solve.ranges.Do(rangeKind{kind: 'F'}, func() rangeResult {
		diff := func(pstar float64) float64 { return m.aliceContT1Probe(pstar) - pstar }
		lo, hi := 1e-3, m.rateScanBound()
		roots := mathx.FindAllRoots(diff, lo, hi, m.scanN/2, m.tol)
		set := mathx.FromSignChanges(diff, lo, hi, roots)
		return rangeResult{set: set, ok: !set.Empty()}
	})
	if !res.ok {
		return mathx.Interval{Lo: 1, Hi: 0}, false, nil
	}
	return res.set.Bounds(), true, nil
}

// SuccessRate evaluates SR(P*) of Eq. 31: the probability, at initiation,
// that B continues at t2 and A then continues at t3. It returns 0 when B's
// continuation region is empty. The rate is a conditional probability given
// initiation; whether A would rationally initiate is a separate check via
// FeasibleRateRange.
func (m *Model) SuccessRate(pstar float64) (float64, error) {
	if err := checkRate(pstar); err != nil {
		return 0, err
	}
	return m.successRate(pstar, 0), nil
}

func (m *Model) successRate(pstar, q float64) float64 {
	return m.solve.sr.Do(solveKey{pstar, q}, func() float64 {
		return m.successRateIntegrate(pstar, q)
	})
}

func (m *Model) successRateIntegrate(pstar, q float64) float64 {
	return m.successRateOver(pstar, q, m.contSetT2(pstar, q))
}

// successRateProbe is SR(P*) over the scale-invariant probe region — the
// cheap evaluation behind OptimalRate's grid search. Unmemoized: probe
// values agree with the exact path only to root tolerance.
func (m *Model) successRateProbe(pstar float64) float64 {
	return m.successRateOver(pstar, 0, m.contSetT2Probe(pstar))
}

// successRateOver integrates Eq. 31 over a given t2 continuation region;
// the exact and probe paths share it so they differ only in the region.
func (m *Model) successRateOver(pstar, q float64, set mathx.IntervalSet) float64 {
	if set.Empty() {
		return 0
	}
	e := m.newT2Eval(pstar, q)
	tr := m.transitionTauA(m.params.P0)
	// Stack-backed scratch for the default 64-point rule; larger orders
	// spill to the heap.
	var arr [64]float64
	buf := arr[:0]
	if n := m.gl.N(); n > len(arr) {
		buf = make([]float64, 0, n)
	}
	var sr float64
	for _, iv := range set.Intervals() {
		nodes := m.gl.MapNodes(buf[:0], iv.Lo, iv.Hi)
		for i, y := range nodes {
			logy := math.Log(y)
			nodes[i] = tr.PDFAtLog(y, logy) * e.succ(logy)
		}
		sr += m.gl.IntegrateMapped(nodes, iv.Lo, iv.Hi)
	}
	return mathx.Clamp(sr, 0, 1)
}

// OptimalRate returns the exchange rate maximising SR(P*) over the feasible
// range (the concave optimum of §III.F), along with the achieved success
// rate. It returns ErrNotViable when no rate is feasible at t1. The search
// is memoized on the Model.
func (m *Model) OptimalRate() (pstar, sr float64, err error) {
	res := m.solve.optimal.Do(rangeKind{kind: 'O'}, func() optResult {
		rng, ok, err := m.FeasibleRateRange()
		if err != nil || !ok {
			return optResult{ok: false}
		}
		// Bracket the optimum with cheap probe evaluations, then report
		// the achieved SR from the exact memoized path so callers printing
		// the value see the same bits as a direct SuccessRate(arg) call.
		arg, _ := mathx.GridMax(m.successRateProbe, rng.Lo, rng.Hi, 64, 1e-9)
		return optResult{arg: arg, val: m.successRate(arg, 0), ok: true}
	})
	if !res.ok {
		return 0, 0, fmt.Errorf("%w: no feasible exchange rate at t1", ErrNotViable)
	}
	return res.arg, res.val, nil
}

// Strategy summarises the subgame-perfect strategies for a given exchange
// rate, in the threshold form used by the protocol simulator:
// A initiates iff AliceInitiates; B continues at t2 iff P_t2 ∈ BobContT2;
// A reveals at t3 iff P_t3 > AliceCutoffT3; B always claims at t4.
type Strategy struct {
	// PStar is the agreed exchange rate the strategy was solved for.
	PStar float64
	// AliceInitiates reports whether cont is optimal for A at t1.
	AliceInitiates bool
	// BobContT2 is B's continuation region at t2.
	BobContT2 mathx.IntervalSet
	// AliceCutoffT3 is the cut-off price P̄_t3 of Eq. 18.
	AliceCutoffT3 float64
}

// Strategy solves the game at the given exchange rate and returns the
// subgame-perfect threshold strategies. With the solve memo, the t1 value
// and the continuation region are shared with any earlier solve at the
// same rate (ContRangeT2, SuccessRate, the feasibility scan).
func (m *Model) Strategy(pstar float64) (Strategy, error) {
	if err := checkRate(pstar); err != nil {
		return Strategy{}, err
	}
	return Strategy{
		PStar:          pstar,
		AliceInitiates: m.aliceContT1(pstar) > pstar,
		BobContT2:      m.contSetT2(pstar, 0),
		AliceCutoffT3:  m.cutoffT3(pstar, 0),
	}, nil
}
