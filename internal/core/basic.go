package core

import (
	"fmt"
	"math"

	"repro/internal/mathx"
)

// cutoffT3 returns the t3 cut-off price P̄_t3 of Eq. 18, generalised with a
// collateral amount q (Eq. 33, §IV.A.2). q = 0 recovers the basic game. The
// cut-off is clamped at zero: with enough collateral at stake A continues at
// any price.
func (m *Model) cutoffT3(pstar, q float64) float64 {
	a, c, pr := m.params.Alice, m.params.Chains, m.params.Price
	net := pstar*math.Exp(-a.R*(c.EpsB+2*c.TauA)) - q*math.Exp(-a.R*(c.EpsB+c.TauA))
	if net <= 0 {
		return 0
	}
	return math.Exp((a.R-pr.Mu)*c.TauB) * net / (1 + a.Alpha)
}

// CutoffT3 returns the cut-off price P̄_t3 of Eq. 18: A continues at t3 when
// P_t3 exceeds it and stops otherwise (Eq. 19).
func (m *Model) CutoffT3(pstar float64) (float64, error) {
	if err := checkRate(pstar); err != nil {
		return 0, err
	}
	return m.cutoffT3(pstar, 0), nil
}

// ---- Stage t3 (Eqs. 14–17) ----

// aliceContT3 is U^A_t3(cont) as a function of the t3 price x (Eq. 14):
// (1+αA)·E(x,τb)·e^{−rA·τb}.
func (m *Model) aliceContT3(x float64) float64 {
	a, c, pr := m.params.Alice, m.params.Chains, m.params.Price
	return (1 + a.Alpha) * x * math.Exp((pr.Mu-a.R)*c.TauB)
}

// aliceStopT3 is U^A_t3(stop) (Eq. 16): the refund P* received at t8.
func (m *Model) aliceStopT3(pstar float64) float64 {
	a, c := m.params.Alice, m.params.Chains
	return pstar * math.Exp(-a.R*(c.EpsB+2*c.TauA))
}

// bobContT3 is U^B_t3(cont) (Eq. 15): B banks P* Token_a at t6.
func (m *Model) bobContT3(pstar float64) float64 {
	b, c := m.params.Bob, m.params.Chains
	return (1 + b.Alpha) * pstar * math.Exp(-b.R*(c.EpsB+c.TauA))
}

// bobStopT3 is U^B_t3(stop) as a function of the t3 price x (Eq. 17):
// B's Token_b returns at t7 = t3 + 2τb.
func (m *Model) bobStopT3(x float64) float64 {
	b, c, pr := m.params.Bob, m.params.Chains, m.params.Price
	return x * math.Exp(2*(pr.Mu-b.R)*c.TauB)
}

// AliceUtilityT3 evaluates U^A_t3 (Eqs. 14 and 16) at t3 price pT3 for the
// given action. pT3 only affects the cont branch but is validated for both.
func (m *Model) AliceUtilityT3(action Action, pT3, pstar float64) (float64, error) {
	if err := checkPrice(pT3); err != nil {
		return 0, err
	}
	if err := checkRate(pstar); err != nil {
		return 0, err
	}
	switch action {
	case Cont:
		return m.aliceContT3(pT3), nil
	case Stop:
		return m.aliceStopT3(pstar), nil
	default:
		return 0, fmt.Errorf("%w: action %v", ErrBadParam, action)
	}
}

// BobUtilityT3 evaluates U^B_t3 (Eqs. 15 and 17) at t3 price pT3. The cont
// branch reflects that B claims with certainty once the secret is revealed
// (§III.E.1).
func (m *Model) BobUtilityT3(action Action, pT3, pstar float64) (float64, error) {
	if err := checkPrice(pT3); err != nil {
		return 0, err
	}
	if err := checkRate(pstar); err != nil {
		return 0, err
	}
	switch action {
	case Cont:
		return m.bobContT3(pstar), nil
	case Stop:
		return m.bobStopT3(pT3), nil
	default:
		return 0, fmt.Errorf("%w: action %v", ErrBadParam, action)
	}
}

// ---- Stage t2 (Eqs. 20–23), generalised with collateral q ----

// aliceContT2 is U^A_t2(cont) at t2 price y (Eq. 20; Eq. 34 when q > 0).
// The success branch integrates A's t3 cont utility above the cut-off in
// closed form via the truncated lognormal moment; with collateral, A's
// returned deposit q·e^{−rA(εb+τa)} rides on the same branch.
func (m *Model) aliceContT2(y, pstar, q float64) float64 {
	a, c, pr := m.params.Alice, m.params.Chains, m.params.Price
	pbar := m.cutoffT3(pstar, q)
	tr := m.transition(y, c.TauB)
	cont := (1+a.Alpha)*math.Exp((pr.Mu-a.R)*c.TauB)*tr.PartialExpectationAbove(pbar) +
		q*math.Exp(-a.R*(c.EpsB+c.TauA))*tr.TailProb(pbar)
	stop := tr.CDF(pbar) * m.aliceStopT3(pstar)
	return math.Exp(-a.R*c.TauB) * (cont + stop)
}

// aliceStopT2 is U^A_t2(stop) (Eq. 22): A's refund arrives at
// t8 = t2 + τb + εb + 2τa after B walks away.
func (m *Model) aliceStopT2(pstar float64) float64 {
	a, c := m.params.Alice, m.params.Chains
	return pstar * math.Exp(-a.R*(c.TauB+c.EpsB+2*c.TauA))
}

// bobContT2 is U^B_t2(cont) at t2 price y (Eq. 21; Eq. 35 when q > 0).
// With collateral, B's own deposit is released at t3 and received at t3+τa,
// and A's forfeited deposit accrues to B on the branch where A stops.
func (m *Model) bobContT2(y, pstar, q float64) float64 {
	b, c, pr := m.params.Bob, m.params.Chains, m.params.Price
	pbar := m.cutoffT3(pstar, q)
	tr := m.transition(y, c.TauB)
	val := q*math.Exp(-b.R*c.TauA) +
		tr.TailProb(pbar)*m.bobContT3(pstar) +
		math.Exp(2*(pr.Mu-b.R)*c.TauB)*tr.PartialExpectationBelow(pbar) +
		q*math.Exp(-b.R*(c.EpsB+c.TauA))*tr.CDF(pbar)
	return math.Exp(-b.R*c.TauB) * val
}

// bobStopT2 is U^B_t2(stop) (Eq. 23): B simply keeps his Token_b (and, with
// collateral, forfeits the deposit — Eq. 23 is reused unchanged in §IV.A.3).
func (m *Model) bobStopT2(y float64) float64 { return y }

// AliceUtilityT2 evaluates U^A_t2 (Eqs. 20 and 22) at t2 price pT2.
func (m *Model) AliceUtilityT2(action Action, pT2, pstar float64) (float64, error) {
	if err := checkPrice(pT2); err != nil {
		return 0, err
	}
	if err := checkRate(pstar); err != nil {
		return 0, err
	}
	switch action {
	case Cont:
		return m.aliceContT2(pT2, pstar, 0), nil
	case Stop:
		return m.aliceStopT2(pstar), nil
	default:
		return 0, fmt.Errorf("%w: action %v", ErrBadParam, action)
	}
}

// BobUtilityT2 evaluates U^B_t2 (Eqs. 21 and 23) at t2 price pT2.
func (m *Model) BobUtilityT2(action Action, pT2, pstar float64) (float64, error) {
	if err := checkPrice(pT2); err != nil {
		return 0, err
	}
	if err := checkRate(pstar); err != nil {
		return 0, err
	}
	switch action {
	case Cont:
		return m.bobContT2(pT2, pstar, 0), nil
	case Stop:
		return m.bobStopT2(pT2), nil
	default:
		return 0, fmt.Errorf("%w: action %v", ErrBadParam, action)
	}
}

// contSetT2 computes B's continuation region at t2,
// {y > 0 : U^B_t2(cont)(y) > U^B_t2(stop)(y)}, as a union of intervals.
// In the basic game (q = 0) this is the single interval (P̲_t2, P̄_t2] of
// Eq. 24; with collateral the difference can have one or three roots
// (Fig. 7), hence the general interval-set machinery. The scan happens in
// log-price space, matching the lognormal geometry of the transition law.
func (m *Model) contSetT2(pstar, q float64) mathx.IntervalSet {
	diff := func(y float64) float64 { return m.bobContT2(y, pstar, q) - m.bobStopT2(y) }
	b := m.params.Bob
	pbar := m.cutoffT3(pstar, q)
	// Upper bound: U^B_t2(cont) ≤ q + (1+αB)P* + e^{2(µ−rB)τb}·P̄_t3 up to
	// discount factors ≤ e^{|µ|τ}, so cont < stop surely beyond a small
	// multiple of that bound.
	growth := math.Exp(2 * math.Max(m.params.Price.Mu-b.R, 0) * m.params.Chains.TauB)
	hi := 4*((1+b.Alpha)*pstar+growth*pbar+q+1) + 2*m.params.P0
	lo := 1e-7 * math.Min(m.params.P0, pstar)
	logDiff := func(u float64) float64 { return diff(math.Exp(u)) }
	logRoots := mathx.FindAllRoots(logDiff, math.Log(lo), math.Log(hi), m.scanN, m.tol)
	roots := make([]float64, len(logRoots))
	for i, u := range logRoots {
		roots[i] = math.Exp(u)
	}
	return mathx.FromSignChanges(diff, lo, hi, roots)
}

// ContRangeT2 returns the continuation range (P̲_t2, P̄_t2) of Eq. 24: B
// writes his HTLC at t2 only when the observed price lies inside it. ok is
// false when B never continues (for instance when αB is too small,
// §III.E.3). In the basic game the region is a single interval; its bounds
// are returned.
func (m *Model) ContRangeT2(pstar float64) (mathx.Interval, bool, error) {
	if err := checkRate(pstar); err != nil {
		return mathx.Interval{}, false, err
	}
	set := m.contSetT2(pstar, 0)
	if set.Empty() {
		return mathx.Interval{Lo: 1, Hi: 0}, false, nil
	}
	return set.Bounds(), true, nil
}

// ---- Stage t1 (Eqs. 25–28) ----

// aliceContT1 is U^A_t1(cont) (Eq. 25): the discounted expectation of A's
// t2 position over B's continuation region, plus her refund on the stop
// region. The q generalisation implements Eq. 36 excluding the collateral
// constant in the stop branch, which aliceContT1Collateral adds.
func (m *Model) aliceContT1(pstar float64) float64 {
	a, c := m.params.Alice, m.params.Chains
	set := m.contSetT2(pstar, 0)
	tr := m.transition(m.params.P0, c.TauA)
	var contPart, prob float64
	for _, iv := range set.Intervals() {
		contPart += m.gl.Integrate(func(y float64) float64 {
			return tr.PDF(y) * m.aliceContT2(y, pstar, 0)
		}, iv.Lo, iv.Hi)
		prob += tr.CDF(iv.Hi) - tr.CDF(iv.Lo)
	}
	stopPart := (1 - prob) * m.aliceStopT2(pstar)
	return math.Exp(-a.R*c.TauA) * (contPart + stopPart)
}

// bobContT1 is U^B_t1(cont) (Eq. 26, with the upper stop region restored —
// see DESIGN.md deviation 1): B's expected t2 position whether or not he
// ends up continuing.
func (m *Model) bobContT1(pstar float64) float64 {
	b, c := m.params.Bob, m.params.Chains
	set := m.contSetT2(pstar, 0)
	tr := m.transition(m.params.P0, c.TauA)
	var contPart, peInside float64
	for _, iv := range set.Intervals() {
		contPart += m.gl.Integrate(func(y float64) float64 {
			return tr.PDF(y) * m.bobContT2(y, pstar, 0)
		}, iv.Lo, iv.Hi)
		peInside += tr.PartialExpectationBelow(iv.Hi) - tr.PartialExpectationBelow(iv.Lo)
	}
	// On the stop region B's utility is the price itself (Eq. 23), so the
	// stop contribution is the complementary partial expectation.
	stopPart := tr.Mean() - peInside
	return math.Exp(-b.R*c.TauA) * (contPart + stopPart)
}

// AliceUtilityT1 evaluates U^A_t1 (Eqs. 25 and 27).
func (m *Model) AliceUtilityT1(action Action, pstar float64) (float64, error) {
	if err := checkRate(pstar); err != nil {
		return 0, err
	}
	switch action {
	case Cont:
		return m.aliceContT1(pstar), nil
	case Stop:
		return pstar, nil
	default:
		return 0, fmt.Errorf("%w: action %v", ErrBadParam, action)
	}
}

// BobUtilityT1 evaluates U^B_t1 (Eqs. 26 and 28).
func (m *Model) BobUtilityT1(action Action, pstar float64) (float64, error) {
	if err := checkRate(pstar); err != nil {
		return 0, err
	}
	switch action {
	case Cont:
		return m.bobContT1(pstar), nil
	case Stop:
		return m.params.P0, nil
	default:
		return 0, fmt.Errorf("%w: action %v", ErrBadParam, action)
	}
}

// rateScanBound returns the upper end of the exchange-rate scan: beyond it
// A's cont utility (bounded by the discounted, premium-weighted expected
// token value) cannot reach P*.
func (m *Model) rateScanBound() float64 {
	a, c, pr := m.params.Alice, m.params.Chains, m.params.Price
	horizon := c.TauA + 2*c.TauB + c.EpsB + 2*c.TauA
	return 5*(1+a.Alpha)*m.params.P0*math.Exp(math.Max(pr.Mu, 0)*horizon) + 2
}

// FeasibleRateRange returns the exchange-rate range (P̲*, P̄*) of Eq. 30
// within which A initiates the swap at t1; with Table III parameters this is
// the paper's Eq. 29, approximately (1.5, 2.5). ok is false when no rate is
// viable (for instance under an exceedingly high discount rate, §III.F.2).
func (m *Model) FeasibleRateRange() (mathx.Interval, bool, error) {
	diff := func(pstar float64) float64 { return m.aliceContT1(pstar) - pstar }
	lo, hi := 1e-3, m.rateScanBound()
	roots := mathx.FindAllRoots(diff, lo, hi, m.scanN/2, m.tol)
	set := mathx.FromSignChanges(diff, lo, hi, roots)
	if set.Empty() {
		return mathx.Interval{Lo: 1, Hi: 0}, false, nil
	}
	return set.Bounds(), true, nil
}

// SuccessRate evaluates SR(P*) of Eq. 31: the probability, at initiation,
// that B continues at t2 and A then continues at t3. It returns 0 when B's
// continuation region is empty. The rate is a conditional probability given
// initiation; whether A would rationally initiate is a separate check via
// FeasibleRateRange.
func (m *Model) SuccessRate(pstar float64) (float64, error) {
	if err := checkRate(pstar); err != nil {
		return 0, err
	}
	return m.successRate(pstar, 0), nil
}

func (m *Model) successRate(pstar, q float64) float64 {
	c := m.params.Chains
	set := m.contSetT2(pstar, q)
	if set.Empty() {
		return 0
	}
	pbar := m.cutoffT3(pstar, q)
	tr := m.transition(m.params.P0, c.TauA)
	var sr float64
	for _, iv := range set.Intervals() {
		sr += m.gl.Integrate(func(y float64) float64 {
			succ := m.transition(y, c.TauB).TailProb(pbar)
			return tr.PDF(y) * succ
		}, iv.Lo, iv.Hi)
	}
	return mathx.Clamp(sr, 0, 1)
}

// OptimalRate returns the exchange rate maximising SR(P*) over the feasible
// range (the concave optimum of §III.F), along with the achieved success
// rate. It returns ErrNotViable when no rate is feasible at t1.
func (m *Model) OptimalRate() (pstar, sr float64, err error) {
	rng, ok, err := m.FeasibleRateRange()
	if err != nil {
		return 0, 0, err
	}
	if !ok {
		return 0, 0, fmt.Errorf("%w: no feasible exchange rate at t1", ErrNotViable)
	}
	arg, val := mathx.GridMax(func(p float64) float64 { return m.successRate(p, 0) },
		rng.Lo, rng.Hi, 64, 1e-9)
	return arg, val, nil
}

// Strategy summarises the subgame-perfect strategies for a given exchange
// rate, in the threshold form used by the protocol simulator:
// A initiates iff AliceInitiates; B continues at t2 iff P_t2 ∈ BobContT2;
// A reveals at t3 iff P_t3 > AliceCutoffT3; B always claims at t4.
type Strategy struct {
	// PStar is the agreed exchange rate the strategy was solved for.
	PStar float64
	// AliceInitiates reports whether cont is optimal for A at t1.
	AliceInitiates bool
	// BobContT2 is B's continuation region at t2.
	BobContT2 mathx.IntervalSet
	// AliceCutoffT3 is the cut-off price P̄_t3 of Eq. 18.
	AliceCutoffT3 float64
}

// Strategy solves the game at the given exchange rate and returns the
// subgame-perfect threshold strategies.
func (m *Model) Strategy(pstar float64) (Strategy, error) {
	if err := checkRate(pstar); err != nil {
		return Strategy{}, err
	}
	return Strategy{
		PStar:          pstar,
		AliceInitiates: m.aliceContT1(pstar) > pstar,
		BobContT2:      m.contSetT2(pstar, 0),
		AliceCutoffT3:  m.cutoffT3(pstar, 0),
	}, nil
}
