package core

import (
	"errors"
	"math"
	"testing"

	"repro/internal/utility"
)

func TestCollateralConstruction(t *testing.T) {
	m := newDefaultModel(t)
	for _, q := range []float64{-0.1, math.NaN(), math.Inf(1)} {
		if _, err := m.Collateral(q); !errors.Is(err, ErrBadParam) {
			t.Errorf("Collateral(%v) err = %v, want ErrBadParam", q, err)
		}
	}
	c, err := m.Collateral(0.05)
	if err != nil {
		t.Fatalf("Collateral: %v", err)
	}
	if c.Q() != 0.05 {
		t.Errorf("Q() = %v, want 0.05", c.Q())
	}
}

func TestCollateralZeroReducesToBasic(t *testing.T) {
	// Q = 0 must reproduce the basic game exactly at every stage.
	m := newDefaultModel(t)
	c, err := m.Collateral(0)
	if err != nil {
		t.Fatal(err)
	}
	const pstar = 2.0
	cutBasic, _ := m.CutoffT3(pstar)
	cutColl, err := c.CutoffT3(pstar)
	if err != nil {
		t.Fatal(err)
	}
	if cutBasic != cutColl {
		t.Errorf("cut-offs differ: basic %v, collateral %v", cutBasic, cutColl)
	}
	for _, y := range []float64{0.7, 1.5, 2.2, 3.0} {
		for _, action := range []Action{Cont, Stop} {
			ub, _ := m.BobUtilityT2(action, y, pstar)
			uc, err := c.BobUtilityT2(action, y, pstar)
			if err != nil {
				t.Fatal(err)
			}
			if !almostEqual(ub, uc, 1e-12) {
				t.Errorf("BobT2 %v at y=%v: basic %v, collateral %v", action, y, ub, uc)
			}
			ua, _ := m.AliceUtilityT2(action, y, pstar)
			uac, err := c.AliceUtilityT2(action, y, pstar)
			if err != nil {
				t.Fatal(err)
			}
			if !almostEqual(ua, uac, 1e-12) {
				t.Errorf("AliceT2 %v at y=%v: basic %v, collateral %v", action, y, ua, uac)
			}
		}
	}
	srBasic, _ := m.SuccessRate(pstar)
	srColl, err := c.SuccessRate(pstar)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(srBasic, srColl, 1e-12) {
		t.Errorf("SR differs: basic %v, collateral %v", srBasic, srColl)
	}
}

func TestCollateralCutoffDecreasesWithQ(t *testing.T) {
	// Eq. 33: a larger forfeitable deposit lowers A's withdrawal cut-off,
	// until it is clamped at zero.
	m := newDefaultModel(t)
	const pstar = 2.0
	prev := math.Inf(1)
	for _, q := range []float64{0, 0.01, 0.1, 0.5, 1} {
		c, err := m.Collateral(q)
		if err != nil {
			t.Fatal(err)
		}
		cut, err := c.CutoffT3(pstar)
		if err != nil {
			t.Fatal(err)
		}
		if cut > prev {
			t.Errorf("cut-off must not increase with Q: Q=%v gives %v > %v", q, cut, prev)
		}
		prev = cut
	}
	// With Q ≥ P* (scaled by discounts) the cut-off must clamp at zero.
	c, err := m.Collateral(5)
	if err != nil {
		t.Fatal(err)
	}
	cut, err := c.CutoffT3(pstar)
	if err != nil {
		t.Fatal(err)
	}
	if cut != 0 {
		t.Errorf("cut-off = %v, want 0 under overwhelming collateral", cut)
	}
}

func TestCollateralSuccessRateIncreasesWithQ(t *testing.T) {
	// Fig. 9: SR increases with the collateral amount.
	m := newDefaultModel(t)
	const pstar = 2.0
	var prev float64
	for i, q := range []float64{0, 0.01, 0.1} {
		c, err := m.Collateral(q)
		if err != nil {
			t.Fatal(err)
		}
		sr, err := c.SuccessRate(pstar)
		if err != nil {
			t.Fatal(err)
		}
		if sr < 0 || sr > 1 {
			t.Fatalf("SR = %v out of range", sr)
		}
		if i > 0 && sr <= prev {
			t.Errorf("SR(Q=%v) = %v, want > SR at smaller Q (%v)", q, sr, prev)
		}
		prev = sr
	}
}

func TestCollateralContSetIncludesLowPrices(t *testing.T) {
	// §IV.A.3: with collateral, B continues at very low prices — forfeiting
	// the deposit to keep a worthless token is not sensible.
	m := newDefaultModel(t)
	c, err := m.Collateral(0.1)
	if err != nil {
		t.Fatal(err)
	}
	set, err := c.ContSetT2(2.0)
	if err != nil {
		t.Fatal(err)
	}
	if set.Empty() {
		t.Fatal("continuation set empty")
	}
	if !set.Contains(0.01) {
		t.Errorf("continuation set %v should contain prices near zero", set)
	}
	// And stop still wins at very high prices.
	if set.Contains(50) {
		t.Errorf("continuation set %v should not contain very high prices", set)
	}
}

func TestCollateralThreeIndifferencePoints(t *testing.T) {
	// Fig. 7 (Q=0.01): the cont/stop difference has three crossings, making
	// 𝒫_t2 a union of two intervals.
	m := newDefaultModel(t)
	c, err := m.Collateral(0.01)
	if err != nil {
		t.Fatal(err)
	}
	set, err := c.ContSetT2(2.0)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(set.Intervals()); got != 2 {
		t.Fatalf("ContSetT2 = %v: got %d intervals, want 2 (three indifference points)", set, got)
	}
	// At interior indifference points cont ≈ stop.
	ivs := set.Intervals()
	interior := []float64{ivs[0].Hi, ivs[1].Lo, ivs[1].Hi}
	for _, y := range interior {
		cont, _ := c.BobUtilityT2(Cont, y, 2.0)
		stop, _ := c.BobUtilityT2(Stop, y, 2.0)
		if !almostEqual(cont, stop, 1e-6) {
			t.Errorf("at y=%v: cont=%v stop=%v, want indifference", y, cont, stop)
		}
	}
}

func TestCollateralSingleRegionForLargeQ(t *testing.T) {
	// Fig. 7 (Q=0.1): one indifference point; 𝒫_t2 = (0, ȳ].
	m := newDefaultModel(t)
	c, err := m.Collateral(0.1)
	if err != nil {
		t.Fatal(err)
	}
	set, err := c.ContSetT2(2.0)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(set.Intervals()); got != 1 {
		t.Fatalf("ContSetT2 = %v: got %d intervals, want 1", set, got)
	}
}

func TestCollateralFeasibleRates(t *testing.T) {
	m := newDefaultModel(t)
	c, err := m.Collateral(0.1)
	if err != nil {
		t.Fatal(err)
	}
	a := c.FeasibleRatesAlice()
	b := c.FeasibleRatesBob()
	if a.Empty() || b.Empty() {
		t.Fatalf("feasible sets empty: A=%v B=%v", a, b)
	}
	inter := c.FeasibleRatesIntersection()
	union := c.FeasibleRatesUnion()
	if inter.Empty() {
		t.Fatal("intersection empty: agents never agree")
	}
	// Intersection ⊆ each ⊆ union.
	for _, iv := range inter.Intervals() {
		mid := 0.5 * (iv.Lo + iv.Hi)
		if !a.Contains(mid) || !b.Contains(mid) || !union.Contains(mid) {
			t.Errorf("intersection point %v not in both feasible sets", mid)
		}
	}
	if union.TotalLen() < inter.TotalLen() {
		t.Errorf("union smaller than intersection: %v < %v", union.TotalLen(), inter.TotalLen())
	}
	// A fair rate near P0 should be agreeable for both with Q=0.1.
	if !inter.Contains(2.0) {
		t.Errorf("intersection %v should contain the fair rate 2.0", inter)
	}
}

func TestCollateralUtilityT1(t *testing.T) {
	m := newDefaultModel(t)
	c, err := m.Collateral(0.1)
	if err != nil {
		t.Fatal(err)
	}
	// Stop utilities include the kept deposit (Eqs. 38–39).
	stopA, err := c.AliceUtilityT1(Stop, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(stopA, 2.1, 1e-12) {
		t.Errorf("Alice stop = %v, want 2.1", stopA)
	}
	stopB, err := c.BobUtilityT1(Stop, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(stopB, 2.1, 1e-12) {
		t.Errorf("Bob stop = %v, want P0 + Q = 2.1", stopB)
	}
	// At the fair rate both prefer cont (consistent with the feasible sets).
	contA, _ := c.AliceUtilityT1(Cont, 2)
	contB, _ := c.BobUtilityT1(Cont, 2)
	if contA <= stopA {
		t.Errorf("Alice cont = %v, want > stop = %v", contA, stopA)
	}
	if contB <= stopB {
		t.Errorf("Bob cont = %v, want > stop = %v", contB, stopB)
	}
	// Validation.
	if _, err := c.AliceUtilityT1(Action(9), 2); !errors.Is(err, ErrBadParam) {
		t.Errorf("bad action err = %v", err)
	}
	if _, err := c.BobUtilityT1(Cont, -1); !errors.Is(err, ErrBadParam) {
		t.Errorf("bad rate err = %v", err)
	}
}

func TestCollateralUtilityValidation(t *testing.T) {
	m := newDefaultModel(t)
	c, err := m.Collateral(0.05)
	if err != nil {
		t.Fatal(err)
	}
	cases := []func() (float64, error){
		func() (float64, error) { return c.CutoffT3(-1) },
		func() (float64, error) { return c.AliceUtilityT2(Cont, -1, 2) },
		func() (float64, error) { return c.AliceUtilityT2(Action(8), 1, 2) },
		func() (float64, error) { return c.BobUtilityT2(Cont, 1, -2) },
		func() (float64, error) { return c.BobUtilityT2(Action(8), 1, 2) },
		func() (float64, error) { return c.SuccessRate(0) },
	}
	for i, f := range cases {
		if _, err := f(); !errors.Is(err, ErrBadParam) {
			t.Errorf("case %d: err = %v, want ErrBadParam", i, err)
		}
	}
	if _, err := c.ContSetT2(-3); !errors.Is(err, ErrBadParam) {
		t.Errorf("ContSetT2 err = %v, want ErrBadParam", err)
	}
	if _, err := c.Strategy(0); !errors.Is(err, ErrBadParam) {
		t.Errorf("Strategy err = %v, want ErrBadParam", err)
	}
}

func TestCollateralStrategy(t *testing.T) {
	m := newDefaultModel(t)
	c, err := m.Collateral(0.1)
	if err != nil {
		t.Fatal(err)
	}
	s, err := c.Strategy(2.0)
	if err != nil {
		t.Fatal(err)
	}
	if !s.AliceInitiates {
		t.Error("both agents should engage at the fair rate with Q=0.1")
	}
	if s.BobContT2.Empty() {
		t.Error("strategy continuation set empty")
	}
	cut, _ := c.CutoffT3(2.0)
	if s.AliceCutoffT3 != cut {
		t.Errorf("strategy cut-off %v, want %v", s.AliceCutoffT3, cut)
	}
}

func TestOptimalDeposit(t *testing.T) {
	m := newDefaultModel(t)
	q, sr, err := m.OptimalDeposit(2.0, 0.5)
	if err != nil {
		t.Fatalf("OptimalDeposit: %v", err)
	}
	if q < 0 || q > 0.5 {
		t.Errorf("q = %v outside [0, 0.5]", q)
	}
	sr0, _ := m.SuccessRate(2.0)
	if sr < sr0 {
		t.Errorf("optimal-deposit SR %v below no-deposit SR %v", sr, sr0)
	}
	if _, _, err := m.OptimalDeposit(-1, 0.5); !errors.Is(err, ErrBadParam) {
		t.Errorf("bad rate err = %v", err)
	}
	if _, _, err := m.OptimalDeposit(2, 0); !errors.Is(err, ErrBadParam) {
		t.Errorf("bad qMax err = %v", err)
	}
}

func TestCollateralExpandsViableRates(t *testing.T) {
	// Fig. 9 discussion: "higher Q allows for larger price movement, by
	// expanding the feasible Token_b price range at both t2 and t1."
	m := newDefaultModel(t)
	c0, err := m.Collateral(0)
	if err != nil {
		t.Fatal(err)
	}
	c1, err := m.Collateral(0.1)
	if err != nil {
		t.Fatal(err)
	}
	set0, _ := c0.ContSetT2(2.0)
	set1, _ := c1.ContSetT2(2.0)
	if set1.TotalLen() <= set0.TotalLen() {
		t.Errorf("t2 region with Q=0.1 (%v) not larger than Q=0 (%v)",
			set1.TotalLen(), set0.TotalLen())
	}
}

func TestCollateralSweepAgainstAlternateParams(t *testing.T) {
	// The monotone effect of collateral must be robust away from Table III.
	params := utility.Default().
		WithMu(-0.002).
		WithSigma(0.15).
		WithAliceAlpha(0.2).
		WithBobAlpha(0.2)
	m, err := New(params)
	if err != nil {
		t.Fatal(err)
	}
	var prev float64
	for i, q := range []float64{0, 0.05, 0.2} {
		c, err := m.Collateral(q)
		if err != nil {
			t.Fatal(err)
		}
		sr, err := c.SuccessRate(2.0)
		if err != nil {
			t.Fatal(err)
		}
		if i > 0 && sr < prev-1e-9 {
			t.Errorf("SR(Q=%v) = %v dropped below %v", q, sr, prev)
		}
		prev = sr
	}
}
