package scenario

import (
	"context"
	"reflect"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/utility"
)

// testRuns keeps the per-test Monte Carlo small; the acceptance-scale run
// lives in cmd/scenarios and the CI batch.
const testRuns = 600

func TestRunTableIIIMatchesCoreSolver(t *testing.T) {
	sc, err := Lookup("tableIII")
	if err != nil {
		t.Fatal(err)
	}
	r, err := Run(sc, RunOpts{Runs: testRuns})
	if err != nil {
		t.Fatal(err)
	}

	m, err := core.New(utility.Default())
	if err != nil {
		t.Fatal(err)
	}
	cut, err := m.CutoffT3(2.0)
	if err != nil {
		t.Fatal(err)
	}
	if r.CutoffT3 != cut {
		t.Errorf("CutoffT3 = %v, want %v", r.CutoffT3, cut)
	}
	sr, err := m.SuccessRate(2.0)
	if err != nil {
		t.Fatal(err)
	}
	if r.AnalyticSR != sr {
		t.Errorf("AnalyticSR = %v, want %v", r.AnalyticSR, sr)
	}
	if !r.BobContOK || !r.FeasibleOK || !r.AliceInitiates {
		t.Errorf("Table III point should be fully viable: %+v", r)
	}
	// The fair rate sits inside the paper's (1.5, 2.5) feasible range.
	if r.Feasible.Lo > 2 || r.Feasible.Hi < 2 {
		t.Errorf("feasible range %v should contain the fair rate", r.Feasible)
	}
	if r.SimulatedGame != "collateral" {
		t.Errorf("tableIII carries Q=0.1, simulated game = %q", r.SimulatedGame)
	}
	if !r.MCAgrees {
		t.Errorf("analytic SR %.4f outside MC interval [%.4f, %.4f]",
			r.analyticForSim(), r.MC.Lo, r.MC.Hi)
	}
	if r.MCStages == nil || r.MCMeanDurationHours <= 0 {
		t.Errorf("MC aggregates missing: %+v", r)
	}
}

func TestRunRejectsInvalidScenario(t *testing.T) {
	if _, err := Run(Scenario{}, RunOpts{}); err == nil {
		t.Error("invalid scenario accepted")
	}
}

func TestRunAllOrderedAndWorkerIndependent(t *testing.T) {
	if testing.Short() {
		t.Skip("batch Monte Carlo is slow")
	}
	scs := Registry()[:4]
	ref, err := RunAll(context.Background(), scs, 1, RunOpts{Runs: testRuns})
	if err != nil {
		t.Fatal(err)
	}
	if len(ref) != len(scs) {
		t.Fatalf("got %d reports, want %d", len(ref), len(scs))
	}
	for i, r := range ref {
		if r.Scenario.Name != scs[i].Name {
			t.Errorf("report %d is %q, want %q (ordered output)", i, r.Scenario.Name, scs[i].Name)
		}
	}
	got, err := RunAll(context.Background(), scs, 4, RunOpts{Runs: testRuns})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, ref) {
		t.Error("reports differ between 1 and 4 workers")
	}
}

func TestEveryPresetAgreesWithMonteCarlo(t *testing.T) {
	if testing.Short() {
		t.Skip("batch Monte Carlo is slow")
	}
	reports, err := RunAll(context.Background(), Registry(), 0, RunOpts{Runs: 1500})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range reports {
		if !r.MCAgrees {
			t.Errorf("%s: analytic SR %.4f outside MC interval [%.4f, %.4f]",
				r.Scenario.Name, r.analyticForSim(), r.MC.Lo, r.MC.Hi)
		}
	}
}

func TestScenarioRegimesOrderAsExpected(t *testing.T) {
	if testing.Short() {
		t.Skip("multiple solves are slow")
	}
	get := func(name string) Report {
		t.Helper()
		sc, err := Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		r, err := Run(sc, RunOpts{Runs: 200})
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	base := get("tableIII")
	if hv := get("high-vol"); hv.AnalyticSR >= base.AnalyticSR {
		t.Errorf("high-vol SR %.4f should be below Table III %.4f", hv.AnalyticSR, base.AnalyticSR)
	}
	if lv := get("low-vol"); lv.AnalyticSR <= base.AnalyticSR {
		t.Errorf("low-vol SR %.4f should exceed Table III %.4f", lv.AnalyticSR, base.AnalyticSR)
	}
	if ap := get("adversarial-premium"); ap.AnalyticSR > 0.5*base.AnalyticSR {
		t.Errorf("adversarial-premium SR %.4f should collapse vs %.4f", ap.AnalyticSR, base.AnalyticSR)
	}
	if dc := get("deep-collateral"); dc.CollateralSR < base.AnalyticSR {
		t.Errorf("deep collateral SR_c %.4f should not fall below basic %.4f", dc.CollateralSR, base.AnalyticSR)
	}
}

func TestRenderMentionsEveryHeadline(t *testing.T) {
	sc, err := Lookup("tableIII")
	if err != nil {
		t.Fatal(err)
	}
	r, err := Run(sc, RunOpts{Runs: 200})
	if err != nil {
		t.Fatal(err)
	}
	out := r.Render()
	for _, want := range []string{
		"scenario tableIII", "cut-off", "continuation range", "feasible",
		"basic SR", "collateral SR_c", "uncertain SR_x", "Wilson 95%", "agrees",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestDiffReports(t *testing.T) {
	a, err := Lookup("tableIII")
	if err != nil {
		t.Fatal(err)
	}
	b, err := Lookup("high-vol")
	if err != nil {
		t.Fatal(err)
	}
	ra, err := Run(a, RunOpts{Runs: 200})
	if err != nil {
		t.Fatal(err)
	}
	rb, err := Run(b, RunOpts{Runs: 200})
	if err != nil {
		t.Fatal(err)
	}
	out := Diff(ra, rb, 1e-6)
	for _, want := range []string{"param sigma", "basic SR", "->"} {
		if !strings.Contains(out, want) {
			t.Errorf("diff missing %q:\n%s", want, out)
		}
	}
	self := Diff(ra, ra, 1e-6)
	if !strings.Contains(self, "no differences") {
		t.Errorf("self diff should be empty:\n%s", self)
	}
}

func TestRunOptsAdaptivePrecisionKnobs(t *testing.T) {
	sc, err := Lookup("tableIII")
	if err != nil {
		t.Fatal(err)
	}
	// Default: the fixed run count is honoured exactly.
	fixed, err := Run(sc, RunOpts{Runs: testRuns})
	if err != nil {
		t.Fatal(err)
	}
	if fixed.MCRunCount != testRuns || fixed.MCStopped {
		t.Errorf("fixed mode ran %d paths (stopped=%v), want exactly %d",
			fixed.MCRunCount, fixed.MCStopped, testRuns)
	}
	// A loose CI target stops well before a large cap, at a chunk boundary.
	adaptive, err := Run(sc, RunOpts{Runs: 50000, CIWidth: 0.05, ChunkSize: 128})
	if err != nil {
		t.Fatal(err)
	}
	if !adaptive.MCStopped {
		t.Fatal("loose CI target did not stop early")
	}
	if adaptive.MCRunCount >= 50000 || adaptive.MCRunCount%128 != 0 {
		t.Errorf("adaptive ran %d paths, want a chunk-aligned early stop", adaptive.MCRunCount)
	}
	if half := (adaptive.MC.Hi - adaptive.MC.Lo) / 2; half > 0.05 {
		t.Errorf("half-width at stop %g, want <= 0.05", half)
	}
	// MaxPaths caps adaptive sampling below the run count.
	capped, err := Run(sc, RunOpts{Runs: 50000, CIWidth: 1e-9, ChunkSize: 128, MaxPaths: 256})
	if err != nil {
		t.Fatal(err)
	}
	if capped.MCRunCount != 256 || capped.MCStopped {
		t.Errorf("capped run executed %d paths (stopped=%v), want 256 at the cap",
			capped.MCRunCount, capped.MCStopped)
	}
	// The adaptive estimate agrees with the fixed one to CI precision.
	if diff := adaptive.MC.P - fixed.MC.P; diff > 0.1 || diff < -0.1 {
		t.Errorf("adaptive SR %.4f far from fixed SR %.4f", adaptive.MC.P, fixed.MC.P)
	}
	// The early stop is surfaced in the rendered report.
	if !strings.Contains(adaptive.Render(), "adaptive early stop") {
		t.Error("Render does not mention the adaptive early stop")
	}
}
