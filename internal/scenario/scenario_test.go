package scenario

import (
	"bytes"
	"errors"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/utility"
)

func TestRegistryHasTenValidDistinctPresets(t *testing.T) {
	reg := Registry()
	if len(reg) < 10 {
		t.Fatalf("registry has %d presets, want >= 10", len(reg))
	}
	seenName := map[string]bool{}
	seenSeed := map[int64]bool{}
	for _, sc := range reg {
		if err := sc.Validate(); err != nil {
			t.Errorf("preset %q invalid: %v", sc.Name, err)
		}
		if sc.Description == "" {
			t.Errorf("preset %q has no description", sc.Name)
		}
		if seenName[sc.Name] {
			t.Errorf("duplicate preset name %q", sc.Name)
		}
		seenName[sc.Name] = true
		if seenSeed[sc.Seed] {
			t.Errorf("preset %q reuses seed %d", sc.Name, sc.Seed)
		}
		seenSeed[sc.Seed] = true
	}
	want := []string{
		"tableIII", "high-vol", "low-vol", "fee-stress", "asymmetric-discount",
		"short-timelock", "deep-collateral", "uncertain-wide", "impatient-bob",
		"adversarial-premium",
	}
	if got := Names(); !reflect.DeepEqual(got, want) {
		t.Errorf("Names() = %v, want %v", got, want)
	}
}

func TestTableIIIPresetMatchesDefaults(t *testing.T) {
	sc, err := Lookup("tableIII")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sc.Params, utility.Default()) {
		t.Errorf("tableIII params = %+v, want utility.Default()", sc.Params)
	}
	if sc.PStar != 2.0 {
		t.Errorf("tableIII pstar = %g, want the fair rate 2", sc.PStar)
	}
}

func TestLookupUnknown(t *testing.T) {
	if _, err := Lookup("nope"); !errors.Is(err, ErrUnknown) {
		t.Errorf("err = %v, want ErrUnknown", err)
	}
}

func TestValidateRejectsBadScenarios(t *testing.T) {
	good, err := Lookup("tableIII")
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string]func(*Scenario){
		"empty name":      func(s *Scenario) { s.Name = "" },
		"comma in name":   func(s *Scenario) { s.Name = "a,b" },
		"space in name":   func(s *Scenario) { s.Name = "a b" },
		"zero pstar":      func(s *Scenario) { s.PStar = 0 },
		"neg collateral":  func(s *Scenario) { s.Collateral = -1 },
		"neg budget":      func(s *Scenario) { s.BobBudget = -1 },
		"neg runs":        func(s *Scenario) { s.MCRuns = -1 },
		"bad sigma":       func(s *Scenario) { s.Params.Price.Sigma = 0 },
		"eps >= tauB":     func(s *Scenario) { s.Params.Chains.EpsB = s.Params.Chains.TauB },
		"neg alice alpha": func(s *Scenario) { s.Params.Alice.Alpha = -0.1 },
		"empty variant":   func(s *Scenario) { s.Variants = []string{""} },
		"comma variant":   func(s *Scenario) { s.Variants = []string{"a,b"} },
		"space variant":   func(s *Scenario) { s.Variants = []string{"a b"} },
		"dup variant":     func(s *Scenario) { s.Variants = []string{"basic", "basic"} },
		"neg packets":     func(s *Scenario) { s.Packets = -1 },
		"neg rounds":      func(s *Scenario) { s.Rounds = -1 },
	}
	for name, mutate := range cases {
		sc := good
		mutate(&sc)
		if err := sc.Validate(); err == nil {
			t.Errorf("%s: Validate accepted %+v", name, sc)
		}
	}
}

func TestRunsDefaults(t *testing.T) {
	var sc Scenario
	if got := sc.Runs(); got != DefaultMCRuns {
		t.Errorf("zero MCRuns resolves to %d, want %d", got, DefaultMCRuns)
	}
	sc.MCRuns = 123
	if got := sc.Runs(); got != 123 {
		t.Errorf("Runs() = %d, want 123", got)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	for _, sc := range Registry() {
		var buf bytes.Buffer
		if err := sc.Save(&buf); err != nil {
			t.Fatalf("%s: Save: %v", sc.Name, err)
		}
		got, err := Load(&buf)
		if err != nil {
			t.Fatalf("%s: Load: %v", sc.Name, err)
		}
		if !reflect.DeepEqual(got, sc) {
			t.Errorf("%s: round trip changed the scenario:\n got %+v\nwant %+v", sc.Name, got, sc)
		}
	}
}

func TestJSONRoundTripVariantFields(t *testing.T) {
	sc, err := Lookup("tableIII")
	if err != nil {
		t.Fatal(err)
	}
	sc.Variants = []string{"basic", "packetized", "repeated"}
	sc.Packets = 8
	sc.Rounds = 64
	var buf bytes.Buffer
	if err := sc.Save(&buf); err != nil {
		t.Fatalf("Save: %v", err)
	}
	for _, want := range []string{`"variants"`, `"packets": 8`, `"rounds": 64`} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("JSON missing %s:\n%s", want, buf.String())
		}
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if !reflect.DeepEqual(got, sc) {
		t.Errorf("round trip changed the scenario:\n got %+v\nwant %+v", got, sc)
	}
}

// TestPresetJSONOmitsVariantFields pins the JSON compatibility contract:
// none of the committed presets carries variant-selection fields, so their
// exported JSON is byte-identical to the pre-variant format.
func TestPresetJSONOmitsVariantFields(t *testing.T) {
	for _, sc := range Registry() {
		var buf bytes.Buffer
		if err := sc.Save(&buf); err != nil {
			t.Fatalf("%s: Save: %v", sc.Name, err)
		}
		for _, field := range []string{"variants", "packets", "rounds"} {
			if strings.Contains(buf.String(), field) {
				t.Errorf("%s: preset JSON leaks zero-valued %q:\n%s", sc.Name, field, buf.String())
			}
		}
	}
}

func TestLoadRejectsUnknownFieldsAndInvalid(t *testing.T) {
	if _, err := Load(strings.NewReader(`{"name":"x","bogus":1}`)); err == nil {
		t.Error("unknown field accepted")
	}
	if _, err := Load(strings.NewReader(`{"name":"x","pstar":2}`)); err == nil {
		t.Error("invalid params accepted")
	}
	if _, err := Load(strings.NewReader(`not json`)); err == nil {
		t.Error("garbage accepted")
	}
}

func TestSaveRejectsInvalid(t *testing.T) {
	var buf bytes.Buffer
	if err := (Scenario{}).Save(&buf); !errors.Is(err, ErrBadScenario) {
		t.Errorf("err = %v, want ErrBadScenario", err)
	}
}

func TestFileRoundTrip(t *testing.T) {
	sc, err := Lookup("high-vol")
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "sc.json")
	if err := sc.SaveFile(path); err != nil {
		t.Fatalf("SaveFile: %v", err)
	}
	got, err := LoadFile(path)
	if err != nil {
		t.Fatalf("LoadFile: %v", err)
	}
	if !reflect.DeepEqual(got, sc) {
		t.Errorf("file round trip changed the scenario")
	}
	if _, err := LoadFile(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("missing file accepted")
	}
	if err := sc.SaveFile(filepath.Join(t.TempDir(), "no", "such", "dir.json")); err == nil {
		t.Error("unwritable path accepted")
	}
}

func TestDiffParams(t *testing.T) {
	a, err := Lookup("tableIII")
	if err != nil {
		t.Fatal(err)
	}
	b, err := Lookup("high-vol")
	if err != nil {
		t.Fatal(err)
	}
	diffs := DiffParams(a, b)
	if len(diffs) != 1 || !strings.Contains(diffs[0], "sigma") {
		t.Errorf("tableIII vs high-vol diffs = %v, want only sigma", diffs)
	}
	if diffs := DiffParams(a, a); len(diffs) != 0 {
		t.Errorf("self-diff = %v, want empty", diffs)
	}
	c := b
	c.PStar, c.Collateral = 2.4, 0.3
	diffs = DiffParams(a, c)
	if len(diffs) != 3 {
		t.Errorf("diffs = %v, want sigma, pstar, collateral", diffs)
	}
	d := a
	d.Packets, d.Rounds = 8, 64
	d.Variants = []string{"packetized"}
	diffs = DiffParams(a, d)
	joined := strings.Join(diffs, "\n")
	for _, want := range []string{"packets", "rounds", "variants"} {
		if !strings.Contains(joined, want) {
			t.Errorf("diffs %v missing %q", diffs, want)
		}
	}
}
