package scenario

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"repro/internal/gbm"
	"repro/internal/timeline"
	"repro/internal/utility"
)

// FuzzScenarioJSON checks that any scenario accepted by Validate survives a
// Save/Load round trip unchanged — the invariant behind user-defined
// scenario files.
func FuzzScenarioJSON(f *testing.F) {
	for _, sc := range Registry() {
		f.Add(sc.Name, sc.Params.Alice.Alpha, sc.Params.Alice.R,
			sc.Params.Bob.Alpha, sc.Params.Bob.R,
			sc.Params.Chains.TauA, sc.Params.Chains.TauB, sc.Params.Chains.EpsB,
			sc.Params.Price.Mu, sc.Params.Price.Sigma, sc.Params.P0,
			sc.PStar, sc.Collateral, sc.BobBudget, sc.MCRuns, sc.Seed,
			"basic+packetized+repeated", sc.Packets, sc.Rounds)
	}
	f.Fuzz(func(t *testing.T, name string,
		alphaA, rA, alphaB, rB, tauA, tauB, epsB, mu, sigma, p0,
		pstar, collateral, budget float64, runs int, seed int64,
		variants string, packets, rounds int) {
		// The fuzzer cannot supply a []string directly; "+" joins variant
		// keys (a character Validate permits inside a key).
		var vs []string
		if variants != "" {
			vs = strings.Split(variants, "+")
		}
		sc := Scenario{
			Name:        name,
			Description: "fuzzed",
			Params: utility.Params{
				Alice:  utility.AgentParams{Alpha: alphaA, R: rA},
				Bob:    utility.AgentParams{Alpha: alphaB, R: rB},
				Chains: timeline.Chains{TauA: tauA, TauB: tauB, EpsB: epsB},
				Price:  gbm.Process{Mu: mu, Sigma: sigma},
				P0:     p0,
			},
			PStar:      pstar,
			Collateral: collateral,
			BobBudget:  budget,
			MCRuns:     runs,
			Seed:       seed,
			Variants:   vs,
			Packets:    packets,
			Rounds:     rounds,
		}
		if sc.Validate() != nil {
			t.Skip()
		}
		var buf bytes.Buffer
		if err := sc.Save(&buf); err != nil {
			t.Fatalf("Save of a valid scenario failed: %v", err)
		}
		got, err := Load(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("Load of a saved scenario failed: %v\njson: %s", err, buf.String())
		}
		if !reflect.DeepEqual(got, sc) {
			t.Fatalf("round trip changed the scenario:\n got %+v\nwant %+v\njson: %s", got, sc, buf.String())
		}
	})
}
