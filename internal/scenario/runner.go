package scenario

import (
	"context"
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/mathx"
	"repro/internal/solvecache"
	"repro/internal/stats"
	"repro/internal/swapsim"
	"repro/internal/sweep"
)

// RunOpts configures a batch run.
type RunOpts struct {
	// Runs overrides every scenario's Monte Carlo run count (0 keeps each
	// scenario's own setting — MCRuns, or scenario.DefaultMCRuns). It is
	// the fixed sample size, and the default adaptive cap.
	Runs int
	// MCWorkers bounds the concurrency of the inner Monte Carlo of a single
	// scenario. RunAll parallelises across scenarios and pins this to 1;
	// Run on its own uses all CPUs when 0.
	MCWorkers int
	// CIWidth, when > 0, switches the Monte Carlo validation to adaptive
	// precision: sampling stops once the Wilson 95% half-width of the
	// success rate is <= CIWidth, capped at MaxPaths (or the run count).
	CIWidth float64
	// ChunkSize is the streaming engine's chunk size (0 = the engine
	// default); results are bit-reproducible per (seed, chunk-size) pair.
	ChunkSize int
	// MaxPaths overrides the adaptive hard cap when > 0.
	MaxPaths int
}

// Report is the solved summary of one scenario: the basic-game thresholds
// and ranges, the collateral and uncertain-game success rates, and the Monte
// Carlo protocol validation of the analytic SR.
type Report struct {
	// Scenario echoes the definition the report was produced from.
	Scenario Scenario

	// CutoffT3 is A's reveal cut-off P̄_t3 (Eq. 18) at the scenario's rate.
	CutoffT3 float64
	// BobContT2 is B's t2 continuation range (Eq. 24); BobContOK is false
	// when B never locks (the region is empty).
	BobContT2 mathx.Interval
	BobContOK bool
	// Feasible is the exchange-rate range within which A initiates
	// (Eq. 30); FeasibleOK is false when no rate is viable.
	Feasible   mathx.Interval
	FeasibleOK bool
	// AliceInitiates reports whether cont is optimal for A at the
	// scenario's own rate.
	AliceInitiates bool
	// AnalyticSR is SR(P*) of Eq. 31 for the basic game.
	AnalyticSR float64
	// OptimalRate and OptimalSR locate the SR-maximising rate over the
	// feasible range (zero when FeasibleOK is false).
	OptimalRate, OptimalSR float64

	// CollateralSR is SR_c(P*) of Eq. 40 at the scenario's deposit
	// (equal to AnalyticSR when Collateral is 0).
	CollateralSR float64
	// UncertainSR is SR_x of Eq. 46 with A committing PStar Token_a,
	// under the scenario's Bob budget (unconstrained when 0).
	UncertainSR float64

	// SimulatedGame names the game the Monte Carlo validation executed:
	// "collateral" when the scenario carries a deposit, "basic" otherwise.
	SimulatedGame string
	// MCRunCount is the number of protocol executions actually run: the
	// scenario's own setting (unless RunOpts overrode it), or fewer when
	// adaptive precision stopped sampling early.
	MCRunCount int
	// MCStopped reports that adaptive precision (RunOpts.CIWidth) ended
	// sampling before the cap.
	MCStopped bool
	// MC is the empirical success proportion of the protocol simulation
	// with its Wilson 95% interval. The simulation conditions on initiation
	// (as Eq. 31 does), so it validates the analytic SR even at rates A
	// would decline.
	MC stats.Proportion
	// MCStages counts simulated outcomes by end stage.
	MCStages map[swapsim.Stage]int
	// MCMeanDurationHours averages the simulated completion time.
	MCMeanDurationHours float64
	// MCAgrees reports the acceptance check: the analytic SR of the
	// simulated game lies inside the Monte Carlo Wilson interval (with the
	// repository's customary 0.01 slack).
	MCAgrees bool
}

// analyticForSim returns the analytic SR the simulation is validated
// against: the collateral-game SR when a deposit is in play.
func (r Report) analyticForSim() float64 {
	if r.Scenario.Collateral > 0 {
		return r.CollateralSR
	}
	return r.AnalyticSR
}

// Run solves the basic, collateral and uncertain games for one scenario and
// validates the analytic success rate against a Monte Carlo protocol run.
func Run(sc Scenario, opts RunOpts) (Report, error) {
	if err := sc.Validate(); err != nil {
		return Report{}, err
	}
	m, err := solvecache.SharedModel(sc.Params)
	if err != nil {
		return Report{}, fmt.Errorf("scenario %q: %w", sc.Name, err)
	}
	r := Report{Scenario: sc}

	// Basic game (§III).
	if r.CutoffT3, err = m.CutoffT3(sc.PStar); err != nil {
		return Report{}, fmt.Errorf("scenario %q: %w", sc.Name, err)
	}
	if r.BobContT2, r.BobContOK, err = m.ContRangeT2(sc.PStar); err != nil {
		return Report{}, fmt.Errorf("scenario %q: %w", sc.Name, err)
	}
	if r.Feasible, r.FeasibleOK, err = m.FeasibleRateRange(); err != nil {
		return Report{}, fmt.Errorf("scenario %q: %w", sc.Name, err)
	}
	if r.AnalyticSR, err = m.SuccessRate(sc.PStar); err != nil {
		return Report{}, fmt.Errorf("scenario %q: %w", sc.Name, err)
	}
	strat, err := m.Strategy(sc.PStar)
	if err != nil {
		return Report{}, fmt.Errorf("scenario %q: %w", sc.Name, err)
	}
	r.AliceInitiates = strat.AliceInitiates
	if r.FeasibleOK {
		if r.OptimalRate, r.OptimalSR, err = m.OptimalRate(); err != nil {
			return Report{}, fmt.Errorf("scenario %q: %w", sc.Name, err)
		}
	}

	// Collateral game (§IV.A) at the scenario's deposit.
	r.CollateralSR = r.AnalyticSR
	r.SimulatedGame = "basic"
	if sc.Collateral > 0 {
		col, err := m.Collateral(sc.Collateral)
		if err != nil {
			return Report{}, fmt.Errorf("scenario %q: %w", sc.Name, err)
		}
		if r.CollateralSR, err = col.SuccessRate(sc.PStar); err != nil {
			return Report{}, fmt.Errorf("scenario %q: %w", sc.Name, err)
		}
		if strat, err = col.Strategy(sc.PStar); err != nil {
			return Report{}, fmt.Errorf("scenario %q: %w", sc.Name, err)
		}
		r.SimulatedGame = "collateral"
	}

	// Uncertain-exchange-rate game (§IV.B), A committing PStar Token_a.
	u := m.Uncertain()
	if sc.BobBudget > 0 {
		if u, err = m.UncertainWithBudget(sc.BobBudget); err != nil {
			return Report{}, fmt.Errorf("scenario %q: %w", sc.Name, err)
		}
	}
	if r.UncertainSR, err = u.SuccessRate(sc.PStar); err != nil {
		return Report{}, fmt.Errorf("scenario %q: %w", sc.Name, err)
	}

	// Monte Carlo protocol validation. Eq. 31's SR conditions on the swap
	// being initiated, so the simulated strategy initiates unconditionally;
	// AliceInitiates above records whether she rationally would.
	strat.AliceInitiates = true
	runs := sc.Runs()
	if opts.Runs > 0 {
		runs = opts.Runs
	}
	res, err := swapsim.MonteCarlo(swapsim.MCConfig{
		Config: swapsim.Config{
			Params:     sc.Params,
			Strategy:   strat,
			Collateral: sc.Collateral,
			Seed:       sc.Seed,
		},
		Runs:      runs,
		Workers:   opts.MCWorkers,
		CIWidth:   opts.CIWidth,
		ChunkSize: opts.ChunkSize,
		MaxPaths:  opts.MaxPaths,
	})
	if err != nil {
		return Report{}, fmt.Errorf("scenario %q: %w", sc.Name, err)
	}
	r.MC = res.SuccessRate
	r.MCRunCount = res.Paths
	r.MCStopped = res.Stopped
	r.MCStages = res.Stages
	r.MCMeanDurationHours = res.MeanDurationHours
	analytic := r.analyticForSim()
	r.MCAgrees = analytic >= r.MC.Lo-0.01 && analytic <= r.MC.Hi+0.01
	return r, nil
}

// RunAll runs every scenario through the sweep worker pool — cross-scenario
// parallelism with reports returned in input order, bit-identical for any
// worker count. Each scenario's inner Monte Carlo runs single-worker; the
// parallelism budget is spent across scenarios.
func RunAll(ctx context.Context, scs []Scenario, workers int, opts RunOpts) ([]Report, error) {
	opts.MCWorkers = 1
	return sweep.Map(ctx, len(scs), workers, func(i int) (Report, error) {
		return Run(scs[i], opts)
	})
}

// fmtInterval renders an interval, or a fixed marker when the region is
// empty.
func fmtInterval(iv mathx.Interval, ok bool) string {
	if !ok {
		return "empty"
	}
	return fmt.Sprintf("(%.4f, %.4f)", iv.Lo, iv.Hi)
}

// Render produces the human-readable report block used by cmd/scenarios.
func (r Report) Render() string {
	var b strings.Builder
	sc := r.Scenario
	fmt.Fprintf(&b, "scenario %s — %s\n", sc.Name, sc.Description)
	fmt.Fprintf(&b, "  params: αA=%g rA=%g | αB=%g rB=%g | τa=%gh τb=%gh εb=%gh | µ=%g σ=%g P0=%g\n",
		sc.Params.Alice.Alpha, sc.Params.Alice.R, sc.Params.Bob.Alpha, sc.Params.Bob.R,
		sc.Params.Chains.TauA, sc.Params.Chains.TauB, sc.Params.Chains.EpsB,
		sc.Params.Price.Mu, sc.Params.Price.Sigma, sc.Params.P0)
	fmt.Fprintf(&b, "  knobs:  P*=%g Q=%g budget=%g\n", sc.PStar, sc.Collateral, sc.BobBudget)
	fmt.Fprintf(&b, "  Alice's t3 reveal cut-off P̄_t3 (Eq. 18):  %.4f\n", r.CutoffT3)
	fmt.Fprintf(&b, "  Bob's t2 continuation range (Eq. 24):     %s\n", fmtInterval(r.BobContT2, r.BobContOK))
	fmt.Fprintf(&b, "  feasible exchange-rate range (Eq. 30):    %s\n", fmtInterval(r.Feasible, r.FeasibleOK))
	fmt.Fprintf(&b, "  Alice initiates at P*=%g:                 %v\n", sc.PStar, r.AliceInitiates)
	fmt.Fprintf(&b, "  basic SR(P*) (Eq. 31):                    %.4f\n", r.AnalyticSR)
	if r.FeasibleOK {
		fmt.Fprintf(&b, "  SR-maximising rate:                       %.4f (SR = %.4f)\n", r.OptimalRate, r.OptimalSR)
	}
	fmt.Fprintf(&b, "  collateral SR_c(P*) at Q=%g (Eq. 40):     %.4f\n", sc.Collateral, r.CollateralSR)
	fmt.Fprintf(&b, "  uncertain SR_x (Eq. 46):                  %.4f\n", r.UncertainSR)
	stopNote := ""
	if r.MCStopped {
		stopNote = ", adaptive early stop"
	}
	fmt.Fprintf(&b, "  Monte Carlo (%s game, %d runs, seed %d%s):\n", r.SimulatedGame, r.MCRunCount, sc.Seed, stopNote)
	fmt.Fprintf(&b, "    simulated SR: %.4f, Wilson 95%% [%.4f, %.4f], analytic %.4f, agrees: %v\n",
		r.MC.P, r.MC.Lo, r.MC.Hi, r.analyticForSim(), r.MCAgrees)
	fmt.Fprintf(&b, "    mean completion %.2fh; outcomes:", r.MCMeanDurationHours)
	stages := make([]string, 0, len(r.MCStages))
	for s := range r.MCStages {
		stages = append(stages, string(s))
	}
	sort.Strings(stages)
	for _, s := range stages {
		fmt.Fprintf(&b, " %s=%d", s, r.MCStages[swapsim.Stage(s)])
	}
	b.WriteString("\n")
	return b.String()
}

// Diff compares two reports field by field, listing parameter differences
// first and then every solved quantity that moved by more than eps.
func Diff(a, b Report, eps float64) string {
	var out strings.Builder
	fmt.Fprintf(&out, "diff %s -> %s\n", a.Scenario.Name, b.Scenario.Name)
	lines := 0
	for _, d := range DiffParams(a.Scenario, b.Scenario) {
		fmt.Fprintf(&out, "  param %s\n", d)
		lines++
	}
	num := func(field string, va, vb float64) {
		if math.Abs(va-vb) > eps {
			fmt.Fprintf(&out, "  %s: %.4f -> %.4f (Δ %+.4f)\n", field, va, vb, vb-va)
			lines++
		}
	}
	num("cutoff P̄_t3", a.CutoffT3, b.CutoffT3)
	switch {
	case a.BobContOK && b.BobContOK:
		num("t2 range lo", a.BobContT2.Lo, b.BobContT2.Lo)
		num("t2 range hi", a.BobContT2.Hi, b.BobContT2.Hi)
	case a.BobContOK != b.BobContOK:
		fmt.Fprintf(&out, "  t2 range: %s -> %s\n",
			fmtInterval(a.BobContT2, a.BobContOK), fmtInterval(b.BobContT2, b.BobContOK))
		lines++
	}
	switch {
	case a.FeasibleOK && b.FeasibleOK:
		num("feasible lo", a.Feasible.Lo, b.Feasible.Lo)
		num("feasible hi", a.Feasible.Hi, b.Feasible.Hi)
		num("optimal rate", a.OptimalRate, b.OptimalRate)
		num("optimal SR", a.OptimalSR, b.OptimalSR)
	case a.FeasibleOK != b.FeasibleOK:
		fmt.Fprintf(&out, "  feasible range: %s -> %s\n",
			fmtInterval(a.Feasible, a.FeasibleOK), fmtInterval(b.Feasible, b.FeasibleOK))
		lines++
	}
	num("basic SR", a.AnalyticSR, b.AnalyticSR)
	num("collateral SR", a.CollateralSR, b.CollateralSR)
	num("uncertain SR", a.UncertainSR, b.UncertainSR)
	num("MC SR", a.MC.P, b.MC.P)
	if lines == 0 {
		out.WriteString("  no differences above eps\n")
	}
	return out.String()
}
