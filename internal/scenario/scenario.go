// Package scenario is the repository's declarative experiment subsystem: a
// Scenario bundles a complete model configuration — agent preferences, chain
// timings, the price process, the agreed exchange rate, and the collateral,
// budget and Monte Carlo knobs of the extensions — under a stable name, so
// that every solver and simulator in the repository can be pointed at a
// regime with one identifier instead of a hand-assembled utility.Params.
//
// The paper's evaluation fixes the single Table III point and varies one
// axis per figure; the interesting regimes (high volatility, asymmetric
// discounting, fee stress, short timelocks — see arXiv:2103.02056 and
// arXiv:2211.15804) live off that point. Registry names ten of them as
// presets and JSON load/save admits user-defined ones.
//
// A Scenario is pure data: it names the regime and, through the Variants
// field and the per-variant knobs (Packets, Rounds), selects which of the
// registered variant games internal/variant solves for it. The batch
// runner that fans the (scenario × variant) matrix through the
// internal/sweep worker pool lives in internal/variant, which layers on
// top of this package.
package scenario

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"os"
	"strings"
	"unicode/utf8"

	"repro/internal/utility"
)

// Errors returned by the package.
var (
	// ErrBadScenario reports an invalid scenario definition.
	ErrBadScenario = errors.New("scenario: invalid scenario")
	// ErrUnknown reports a lookup for an unregistered scenario name.
	ErrUnknown = errors.New("scenario: unknown scenario")
)

// DefaultMCRuns sizes the Monte Carlo validation of a scenario whose MCRuns
// field is zero.
const DefaultMCRuns = 4000

// Scenario is one named model regime: the full parameter set plus the knobs
// of the §IV extensions and the seed of its Monte Carlo validation.
type Scenario struct {
	// Name identifies the scenario ("tableIII", "high-vol"). It must be
	// non-empty and free of commas and whitespace, so CLI lists parse.
	Name string `json:"name"`
	// Description says what regime the scenario probes.
	Description string `json:"description,omitempty"`
	// Params is the complete model configuration (preferences, timings,
	// GBM law, initial price).
	Params utility.Params `json:"params"`
	// PStar is the agreed exchange rate the games are solved at; it doubles
	// as A's committed amount in the uncertain-exchange-rate game.
	PStar float64 `json:"pstar"`
	// Collateral is the per-agent deposit Q of §IV.A; 0 skips the
	// collateral solve.
	Collateral float64 `json:"collateral,omitempty"`
	// BobBudget caps B's lockable amount in the §IV.B game; 0 leaves the
	// printed Eq. 44 unconstrained.
	BobBudget float64 `json:"bobBudget,omitempty"`
	// MCRuns sizes the Monte Carlo validation (0 = DefaultMCRuns).
	MCRuns int `json:"mcRuns,omitempty"`
	// Seed is the base RNG seed of the scenario's Monte Carlo validation;
	// run i draws from the decorrelated stream sweep.Seed(Seed, i).
	Seed int64 `json:"seed,omitempty"`
	// Variants selects the variant games solved for this scenario, by
	// registry key ("basic", "packetized", …; see internal/variant). Empty
	// keeps the classic basic/collateral/uncertain trio. Key syntax is
	// validated here; whether a key is actually registered is checked by
	// the variant runner, which owns the registry.
	Variants []string `json:"variants,omitempty"`
	// Packets is the packetized variant's packet count n (0 = the variant
	// default).
	Packets int `json:"packets,omitempty"`
	// Rounds is the repeated variant's engagement length (0 = the variant
	// default).
	Rounds int `json:"rounds,omitempty"`
}

// Validate checks the scenario for use by the solvers and the simulator.
func (s Scenario) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("%w: empty name", ErrBadScenario)
	}
	if strings.ContainsAny(s.Name, ", \t\n") {
		return fmt.Errorf("%w: name %q must not contain commas or whitespace", ErrBadScenario, s.Name)
	}
	if !utf8.ValidString(s.Name) || !utf8.ValidString(s.Description) {
		return fmt.Errorf("%w: name and description must be valid UTF-8", ErrBadScenario)
	}
	if err := s.Params.Validate(); err != nil {
		return fmt.Errorf("%w: %q: %v", ErrBadScenario, s.Name, err)
	}
	if s.PStar <= 0 || math.IsNaN(s.PStar) || math.IsInf(s.PStar, 0) {
		return fmt.Errorf("%w: %q: pstar=%g must be > 0", ErrBadScenario, s.Name, s.PStar)
	}
	if s.Collateral < 0 || math.IsNaN(s.Collateral) || math.IsInf(s.Collateral, 0) {
		return fmt.Errorf("%w: %q: collateral=%g must be >= 0", ErrBadScenario, s.Name, s.Collateral)
	}
	if s.BobBudget < 0 || math.IsNaN(s.BobBudget) || math.IsInf(s.BobBudget, 0) {
		return fmt.Errorf("%w: %q: bobBudget=%g must be >= 0", ErrBadScenario, s.Name, s.BobBudget)
	}
	if s.MCRuns < 0 {
		return fmt.Errorf("%w: %q: mcRuns=%d must be >= 0", ErrBadScenario, s.Name, s.MCRuns)
	}
	seen := make(map[string]bool, len(s.Variants))
	for _, v := range s.Variants {
		if v == "" || strings.ContainsAny(v, ", \t\n") || !utf8.ValidString(v) {
			return fmt.Errorf("%w: %q: variant key %q must be non-empty without commas or whitespace", ErrBadScenario, s.Name, v)
		}
		if seen[v] {
			return fmt.Errorf("%w: %q: duplicate variant key %q", ErrBadScenario, s.Name, v)
		}
		seen[v] = true
	}
	if s.Packets < 0 {
		return fmt.Errorf("%w: %q: packets=%d must be >= 0", ErrBadScenario, s.Name, s.Packets)
	}
	if s.Rounds < 0 {
		return fmt.Errorf("%w: %q: rounds=%d must be >= 0", ErrBadScenario, s.Name, s.Rounds)
	}
	return nil
}

// Runs resolves the Monte Carlo run count (MCRuns or DefaultMCRuns).
func (s Scenario) Runs() int {
	if s.MCRuns > 0 {
		return s.MCRuns
	}
	return DefaultMCRuns
}

// Registry returns the named presets, Table III first. Each probes a regime
// the paper's single-point evaluation leaves unexplored; DESIGN.md's
// scenario table records the rationale per preset.
func Registry() []Scenario {
	def := utility.Default()
	return []Scenario{
		{
			Name:        "tableIII",
			Description: "the paper's canonical Table III point at the fair rate",
			Params:      def, PStar: 2.0, Collateral: 0.1, BobBudget: 5, Seed: 1,
		},
		{
			Name:        "high-vol",
			Description: "doubled volatility: wider price swings erode both agents' commitment",
			Params:      def.WithSigma(0.2), PStar: 2.0, Collateral: 0.1, BobBudget: 5, Seed: 2,
		},
		{
			Name:        "low-vol",
			Description: "calm market: near-deterministic prices make continuation nearly certain",
			Params:      def.WithSigma(0.04), PStar: 2.0, Collateral: 0.1, BobBudget: 5, Seed: 3,
		},
		{
			Name:        "fee-stress",
			Description: "thin success premiums: fees eat the trading motive, little surplus holds the swap together",
			Params:      def.WithAliceAlpha(0.05).WithBobAlpha(0.05), PStar: 2.0, Collateral: 0.1, BobBudget: 5, Seed: 4,
		},
		{
			Name:        "asymmetric-discount",
			Description: "patient Alice vs costly-capital Bob: one-sided time preference skews the thresholds",
			Params:      def.WithAliceR(0.002).WithBobR(0.03), PStar: 2.0, Collateral: 0.1, BobBudget: 5, Seed: 5,
		},
		{
			Name:        "short-timelock",
			Description: "fast chains: confirmation times of 1-1.5h shrink the option value of waiting",
			Params: func() utility.Params {
				p := def.WithTauA(1).WithTauB(1.5)
				p.Chains.EpsB = 0.5
				return p
			}(), PStar: 2.0, Collateral: 0.1, BobBudget: 5, Seed: 6,
		},
		{
			Name:        "deep-collateral",
			Description: "deposits of 0.5 Token_a per agent: enough skin in the game to pin both continuations",
			Params:      def, PStar: 2.0, Collateral: 0.5, BobBudget: 5, Seed: 7,
		},
		{
			Name:        "uncertain-wide",
			Description: "volatile market with a deep Bob budget for the uncertain-rate game of SIV.B",
			Params:      def.WithSigma(0.15), PStar: 2.0, Collateral: 0.1, BobBudget: 20, Seed: 8,
		},
		{
			Name:        "impatient-bob",
			Description: "Bob discounts at 8%/h: the responder walks away from all but immediate payoffs",
			Params:      def.WithBobR(0.08), PStar: 2.0, Collateral: 0.1, BobBudget: 5, Seed: 9,
		},
		{
			Name:        "adversarial-premium",
			Description: "Bob's success premium barely above zero (SIII.E.3): the responder is nearly indifferent and rarely locks",
			Params:      def.WithBobAlpha(0.02), PStar: 2.0, Collateral: 0.1, BobBudget: 5, Seed: 10,
		},
	}
}

// Names lists the registered preset names in registry order.
func Names() []string {
	reg := Registry()
	names := make([]string, len(reg))
	for i, s := range reg {
		names[i] = s.Name
	}
	return names
}

// Lookup returns the preset with the given name.
func Lookup(name string) (Scenario, error) {
	for _, s := range Registry() {
		if s.Name == name {
			return s, nil
		}
	}
	return Scenario{}, fmt.Errorf("%w: %q (have %s)", ErrUnknown, name, strings.Join(Names(), ", "))
}

// Save writes the scenario as indented JSON.
func (s Scenario) Save(w io.Writer) error {
	if err := s.Validate(); err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(s); err != nil {
		return fmt.Errorf("scenario: encoding %q: %w", s.Name, err)
	}
	return nil
}

// Load reads and validates one JSON scenario.
func Load(r io.Reader) (Scenario, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var s Scenario
	if err := dec.Decode(&s); err != nil {
		return Scenario{}, fmt.Errorf("scenario: decoding: %w", err)
	}
	if err := s.Validate(); err != nil {
		return Scenario{}, err
	}
	return s, nil
}

// SaveFile writes the scenario to a JSON file.
func (s Scenario) SaveFile(path string) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("scenario: %w", err)
	}
	defer func() {
		if cerr := f.Close(); cerr != nil && err == nil {
			err = fmt.Errorf("scenario: closing %s: %w", path, cerr)
		}
	}()
	return s.Save(f)
}

// LoadFile reads one scenario from a JSON file.
func LoadFile(path string) (Scenario, error) {
	f, err := os.Open(path)
	if err != nil {
		return Scenario{}, fmt.Errorf("scenario: %w", err)
	}
	defer f.Close()
	return Load(f)
}

// DiffParams lists the parameter fields on which two scenarios differ, one
// "field: a -> b" line per difference, in a fixed field order.
func DiffParams(a, b Scenario) []string {
	var out []string
	add := func(field string, va, vb float64) {
		if va != vb {
			out = append(out, fmt.Sprintf("%s: %g -> %g", field, va, vb))
		}
	}
	add("alphaA", a.Params.Alice.Alpha, b.Params.Alice.Alpha)
	add("rA", a.Params.Alice.R, b.Params.Alice.R)
	add("alphaB", a.Params.Bob.Alpha, b.Params.Bob.Alpha)
	add("rB", a.Params.Bob.R, b.Params.Bob.R)
	add("tauA", a.Params.Chains.TauA, b.Params.Chains.TauA)
	add("tauB", a.Params.Chains.TauB, b.Params.Chains.TauB)
	add("epsB", a.Params.Chains.EpsB, b.Params.Chains.EpsB)
	add("mu", a.Params.Price.Mu, b.Params.Price.Mu)
	add("sigma", a.Params.Price.Sigma, b.Params.Price.Sigma)
	add("p0", a.Params.P0, b.Params.P0)
	add("pstar", a.PStar, b.PStar)
	add("collateral", a.Collateral, b.Collateral)
	add("bobBudget", a.BobBudget, b.BobBudget)
	add("packets", float64(a.Packets), float64(b.Packets))
	add("rounds", float64(a.Rounds), float64(b.Rounds))
	if va, vb := strings.Join(a.Variants, "+"), strings.Join(b.Variants, "+"); va != vb {
		out = append(out, fmt.Sprintf("variants: %q -> %q", va, vb))
	}
	return out
}
