package sweep

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"
)

func TestMapOrdersResults(t *testing.T) {
	got, err := Map(context.Background(), 100, 7, func(i int) (int, error) {
		return i * i, nil
	})
	if err != nil {
		t.Fatalf("Map: %v", err)
	}
	for i, v := range got {
		if v != i*i {
			t.Fatalf("got[%d] = %d, want %d", i, v, i*i)
		}
	}
}

func TestMapIdenticalAcrossWorkerCounts(t *testing.T) {
	run := func(workers int) []float64 {
		out, err := Map(context.Background(), 257, workers, func(i int) (float64, error) {
			// A task whose value depends on a per-index RNG stream.
			rng := rand.New(rand.NewSource(Seed(42, i)))
			return math.Exp(rng.NormFloat64()) * float64(i+1), nil
		})
		if err != nil {
			t.Fatalf("Map(workers=%d): %v", workers, err)
		}
		return out
	}
	ref := run(1)
	for _, w := range []int{2, 3, 8, 64, 0} {
		if got := run(w); !reflect.DeepEqual(got, ref) {
			t.Errorf("workers=%d: output differs from workers=1", w)
		}
	}
}

func TestMapEmptyAndInvalid(t *testing.T) {
	got, err := Map(context.Background(), 0, 4, func(int) (int, error) { return 0, nil })
	if err != nil || got != nil {
		t.Errorf("n=0: got %v, %v; want nil, nil", got, err)
	}
	if _, err := Map(context.Background(), -1, 4, func(int) (int, error) { return 0, nil }); !errors.Is(err, ErrBadInput) {
		t.Errorf("n=-1 err = %v, want ErrBadInput", err)
	}
}

func TestMapReportsLowestIndexError(t *testing.T) {
	wantErr := errors.New("boom")
	for _, workers := range []int{1, 4, 16} {
		_, err := Map(context.Background(), 50, workers, func(i int) (int, error) {
			if i%10 == 3 {
				return 0, fmt.Errorf("%w at %d", wantErr, i)
			}
			return i, nil
		})
		if !errors.Is(err, wantErr) {
			t.Fatalf("workers=%d: err = %v, want wrapped boom", workers, err)
		}
		if err == nil || !strings.Contains(err.Error(), "task ") {
			t.Errorf("workers=%d: err = %v, want a task-indexed error", workers, err)
		}
	}
	// Single worker runs indices in order, so the contract — lowest-indexed
	// error among the tasks that ran — pins the reported index exactly.
	// (Multi-worker pools may legally cancel task 3 before it runs.)
	_, err := Map(context.Background(), 50, 1, func(i int) (int, error) {
		if i%10 == 3 {
			return 0, fmt.Errorf("%w at %d", wantErr, i)
		}
		return i, nil
	})
	if want := "task 3"; err == nil || !strings.Contains(err.Error(), want) {
		t.Errorf("workers=1: err = %v, want mention of %q", err, want)
	}
}

func TestMapCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var calls atomic.Int64
	_, err := Map(ctx, 10000, 2, func(i int) (int, error) {
		if calls.Add(1) == 5 {
			cancel()
		}
		return i, nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if n := calls.Load(); n >= 10000 {
		t.Errorf("cancellation did not stop the sweep (%d calls)", n)
	}
}

func TestMapErrorCancelsRemainingTasks(t *testing.T) {
	var calls atomic.Int64
	_, err := Map(context.Background(), 100000, 4, func(i int) (int, error) {
		calls.Add(1)
		if i == 0 {
			return 0, errors.New("early failure")
		}
		return i, nil
	})
	if err == nil {
		t.Fatal("want error")
	}
	if n := calls.Load(); n >= 100000 {
		t.Errorf("error did not short-circuit the sweep (%d calls)", n)
	}
}

func TestMapTilesOrdersResults(t *testing.T) {
	got, err := MapTiles(context.Background(), 100, 7, 9, func(lo, hi int, out []int) error {
		for j := lo; j < hi; j++ {
			out[j-lo] = j * j
		}
		return nil
	})
	if err != nil {
		t.Fatalf("MapTiles: %v", err)
	}
	for i, v := range got {
		if v != i*i {
			t.Fatalf("got[%d] = %d, want %d", i, v, i*i)
		}
	}
}

func TestMapTilesIdenticalAcrossWorkerAndTileCounts(t *testing.T) {
	// A tiled task whose value depends on a per-index RNG stream, as the
	// figure scans do: the output must be a pure function of the index,
	// independent of how indices are blocked and scheduled.
	run := func(workers, tile int) []float64 {
		out, err := MapTiles(context.Background(), 257, workers, tile, func(lo, hi int, out []float64) error {
			for j := lo; j < hi; j++ {
				rng := rand.New(rand.NewSource(Seed(42, j)))
				out[j-lo] = math.Exp(rng.NormFloat64()) * float64(j+1)
			}
			return nil
		})
		if err != nil {
			t.Fatalf("MapTiles(workers=%d, tile=%d): %v", workers, tile, err)
		}
		return out
	}
	ref := run(1, 257)
	for _, w := range []int{1, 2, 4, 16, 0} {
		for _, tile := range []int{0, 1, 7, 41, 257, 1000} {
			if got := run(w, tile); !reflect.DeepEqual(got, ref) {
				t.Errorf("workers=%d tile=%d: output differs from single-tile run", w, tile)
			}
		}
	}
}

func TestMapTilesEmptyAndInvalid(t *testing.T) {
	got, err := MapTiles(context.Background(), 0, 4, 8, func(int, int, []int) error { return nil })
	if err != nil || got != nil {
		t.Errorf("n=0: got %v, %v; want nil, nil", got, err)
	}
	if _, err := MapTiles(context.Background(), -1, 4, 8, func(int, int, []int) error { return nil }); !errors.Is(err, ErrBadInput) {
		t.Errorf("n=-1 err = %v, want ErrBadInput", err)
	}
}

func TestMapTilesOutCannotGrowPastTile(t *testing.T) {
	_, err := MapTiles(context.Background(), 20, 2, 5, func(lo, hi int, out []int) error {
		if cap(out) != hi-lo {
			return fmt.Errorf("tile [%d,%d): cap(out) = %d, want %d", lo, hi, cap(out), hi-lo)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestMapTilesReportsLowestTileError(t *testing.T) {
	wantErr := errors.New("boom")
	for _, workers := range []int{1, 4, 16} {
		_, err := MapTiles(context.Background(), 50, workers, 5, func(lo, hi int, out []int) error {
			if lo == 15 {
				return fmt.Errorf("%w at tile %d", wantErr, lo)
			}
			return nil
		})
		if !errors.Is(err, wantErr) {
			t.Fatalf("workers=%d: err = %v, want wrapped boom", workers, err)
		}
		if err == nil || !strings.Contains(err.Error(), "tile ") {
			t.Errorf("workers=%d: err = %v, want a tile-ranged error", workers, err)
		}
	}
	// A single worker claims tiles in order, pinning the reported range.
	_, err := MapTiles(context.Background(), 50, 1, 5, func(lo, hi int, out []int) error {
		if lo == 15 {
			return fmt.Errorf("%w at tile %d", wantErr, lo)
		}
		return nil
	})
	if want := "tile [15,20)"; err == nil || !strings.Contains(err.Error(), want) {
		t.Errorf("workers=1: err = %v, want mention of %q", err, want)
	}
}

func TestMapTilesErrorCancelsRemainingTiles(t *testing.T) {
	var calls atomic.Int64
	_, err := MapTiles(context.Background(), 100000, 4, 1, func(lo, hi int, out []int) error {
		calls.Add(1)
		if lo == 0 {
			return errors.New("early failure")
		}
		return nil
	})
	if err == nil {
		t.Fatal("want error")
	}
	if n := calls.Load(); n >= 100000 {
		t.Errorf("error did not short-circuit the sweep (%d calls)", n)
	}
}

func TestMapTilesCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var calls atomic.Int64
	_, err := MapTiles(ctx, 10000, 2, 1, func(lo, hi int, out []int) error {
		if calls.Add(1) == 5 {
			cancel()
		}
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if n := calls.Load(); n >= 10000 {
		t.Errorf("cancellation did not stop the sweep (%d calls)", n)
	}
}

func TestOverMatchesSequentialScan(t *testing.T) {
	xs := make([]float64, 83)
	for i := range xs {
		xs[i] = 0.2 + 0.05*float64(i)
	}
	f := func(x float64) float64 { return math.Sin(x) * math.Exp(-x) }
	want := make([]float64, len(xs))
	for i, x := range xs {
		want[i] = f(x)
	}
	got, err := Over(context.Background(), 6, xs, func(i int, x float64) (float64, error) {
		return f(x), nil
	})
	if err != nil {
		t.Fatalf("Over: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Error("parallel scan differs from sequential scan")
	}
}

func TestWorkersResolution(t *testing.T) {
	if got := Workers(3); got != 3 {
		t.Errorf("Workers(3) = %d", got)
	}
	if got := Workers(0); got < 1 {
		t.Errorf("Workers(0) = %d, want >= 1", got)
	}
	if got := Workers(-2); got < 1 {
		t.Errorf("Workers(-2) = %d, want >= 1", got)
	}
}

func TestSeedIsStableAndDecorrelated(t *testing.T) {
	if Seed(7, 11) != Seed(7, 11) {
		t.Error("Seed is not deterministic")
	}
	seen := map[int64]bool{}
	for i := 0; i < 1000; i++ {
		s := Seed(7, i)
		if seen[s] {
			t.Fatalf("seed collision at shard %d", i)
		}
		seen[s] = true
	}
	if Seed(7, 0) == Seed(8, 0) {
		t.Error("different bases should give different seeds")
	}
}
