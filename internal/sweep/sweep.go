// Package sweep is the repository's parameter-sweep engine: a worker pool
// that evaluates an indexed task set concurrently and collects results in
// index order, so a sweep's output is bit-identical regardless of the worker
// count. Every grid scan behind the paper artifacts (internal/figures), the
// Monte Carlo driver (internal/swapsim) and the CLI sweeps (cmd/swapsolve)
// runs through it.
//
// Determinism contract: Map calls fn exactly once per index with no shared
// mutable state of its own, and places fn(i)'s result at position i of the
// returned slice. If fn is a pure function of its index, the output — and
// any aggregation that consumes it in slice order — does not depend on
// scheduling. For stochastic tasks, derive the per-shard RNG seed from the
// index with Seed so the draw sequence is a function of the index alone.
package sweep

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// ErrBadInput reports an invalid task count.
var ErrBadInput = errors.New("sweep: invalid input")

// Workers resolves a requested worker count: values ≤ 0 select one worker
// per available CPU (GOMAXPROCS).
func Workers(n int) int {
	if n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// Map evaluates fn(0), …, fn(n−1) on a pool of workers and returns the
// results in index order. workers ≤ 0 uses all CPUs; the pool never exceeds
// n goroutines. A task error cancels the remaining tasks, and the
// lowest-indexed error among the tasks that ran is returned; a cancelled
// ctx stops the sweep with ctx's error. fn must be safe for concurrent
// invocation.
func Map[T any](ctx context.Context, n, workers int, fn func(i int) (T, error)) ([]T, error) {
	if n < 0 {
		return nil, fmt.Errorf("%w: n=%d must be >= 0", ErrBadInput, n)
	}
	if n == 0 {
		return nil, nil
	}
	workers = Workers(workers)
	if workers > n {
		workers = n
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	results := make([]T, n)
	var (
		next    atomic.Int64
		mu      sync.Mutex
		errIdx  = -1
		firstEr error
		wg      sync.WaitGroup
	)
	// record keeps only the lowest-indexed task error, so a cancellation
	// observed by another worker can never shadow the failure that caused it.
	record := func(i int, err error) {
		mu.Lock()
		if errIdx == -1 || i < errIdx {
			errIdx, firstEr = i, err
		}
		mu.Unlock()
		cancel()
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if ctx.Err() != nil {
					return
				}
				res, err := fn(i)
				if err != nil {
					record(i, fmt.Errorf("sweep: task %d: %w", i, err))
					return
				}
				results[i] = res
			}
		}()
	}
	wg.Wait()
	if firstEr != nil {
		return nil, firstEr
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return results, nil
}

// MapTiles evaluates n tasks in contiguous index blocks: workers claim tiles
// [lo, hi) atomically and fn fills out[j-lo] for each j in the tile, writing
// directly into the shared result slice (out aliases results[lo:hi]). Tiled
// claiming is what lets a per-curve evaluator — a solvecache model, hoisted
// scan constants, warm solve memos — be constructed once per block instead
// of once per point, while the output stays bit-identical to a point-per-task
// Map at any worker or tile count.
//
// tile ≤ 0 picks max(1, n/(4·workers)): four claims per worker, small enough
// to load-balance and large enough to amortize per-tile setup. A tile error
// cancels the remaining tiles and the lowest-indexed failing tile's error is
// returned. fn must be safe for concurrent invocation and must not write
// outside out.
func MapTiles[T any](ctx context.Context, n, workers, tile int, fn func(lo, hi int, out []T) error) ([]T, error) {
	if n < 0 {
		return nil, fmt.Errorf("%w: n=%d must be >= 0", ErrBadInput, n)
	}
	if n == 0 {
		return nil, nil
	}
	workers = Workers(workers)
	if tile <= 0 {
		tile = n / (4 * workers)
		if tile < 1 {
			tile = 1
		}
	}
	tiles := (n + tile - 1) / tile
	if workers > tiles {
		workers = tiles
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	results := make([]T, n)
	var (
		next    atomic.Int64
		mu      sync.Mutex
		errIdx  = -1
		firstEr error
		wg      sync.WaitGroup
	)
	record := func(lo int, err error) {
		mu.Lock()
		if errIdx == -1 || lo < errIdx {
			errIdx, firstEr = lo, err
		}
		mu.Unlock()
		cancel()
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				t := int(next.Add(1)) - 1
				if t >= tiles {
					return
				}
				if ctx.Err() != nil {
					return
				}
				lo := t * tile
				hi := lo + tile
				if hi > n {
					hi = n
				}
				// Full-slice expression: fn cannot append past its tile.
				if err := fn(lo, hi, results[lo:hi:hi]); err != nil {
					record(lo, fmt.Errorf("sweep: tile [%d,%d): %w", lo, hi, err))
					return
				}
			}
		}()
	}
	wg.Wait()
	if firstEr != nil {
		return nil, firstEr
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return results, nil
}

// Over evaluates fn(i, xs[i]) for every point of a grid axis, in parallel,
// returning results in grid order. It is Map specialised to the 1-D scans
// used throughout internal/figures.
func Over[T any](ctx context.Context, workers int, xs []float64, fn func(i int, x float64) (T, error)) ([]T, error) {
	return Map(ctx, len(xs), workers, func(i int) (T, error) {
		return fn(i, xs[i])
	})
}

// Seed derives a deterministic per-shard RNG seed from a base seed and a
// shard index via a splitmix64 finaliser, so neighbouring shards get
// decorrelated streams and the mapping is stable across worker counts.
func Seed(base int64, shard int) int64 {
	z := uint64(base) + uint64(shard)*0x9E3779B97F4A7C15
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	return int64(z)
}
