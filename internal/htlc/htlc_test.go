package htlc

import (
	"bytes"
	"errors"
	"strings"
	"testing"
	"testing/quick"
)

func mustSecret(t *testing.T) (Secret, Hash) {
	t.Helper()
	s, h, err := NewSecret(nil)
	if err != nil {
		t.Fatalf("NewSecret: %v", err)
	}
	return s, h
}

func mustContract(t *testing.T, lock Hash, expiry float64) *Contract {
	t.Helper()
	c, err := New("c1", "alice", "bob", "TokenA", 2, lock, expiry)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return c
}

func TestNewSecret(t *testing.T) {
	s, h, err := NewSecret(nil)
	if err != nil {
		t.Fatalf("NewSecret: %v", err)
	}
	if len(s) != SecretSize {
		t.Errorf("secret length %d, want %d", len(s), SecretSize)
	}
	if !h.Verify(s) {
		t.Error("hash does not verify its own secret")
	}
	if h != HashOf(s) {
		t.Error("returned hash differs from HashOf")
	}
	// Deterministic reader gives deterministic secret.
	r := strings.NewReader(strings.Repeat("x", SecretSize))
	s2, _, err := NewSecret(r)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(s2, bytes.Repeat([]byte("x"), SecretSize)) {
		t.Error("deterministic reader not honoured")
	}
	// Short reader errors.
	if _, _, err := NewSecret(strings.NewReader("short")); err == nil {
		t.Error("short reader should fail")
	}
}

func TestHashVerifyRejectsWrongSecret(t *testing.T) {
	s, h := mustSecret(t)
	wrong := append(Secret(nil), s...)
	wrong[0] ^= 0xFF
	if h.Verify(wrong) {
		t.Error("Verify accepted a corrupted secret")
	}
	err := quick.Check(func(b []byte) bool {
		if bytes.Equal(b, s) {
			return true
		}
		return !h.Verify(b)
	}, &quick.Config{MaxCount: 200})
	if err != nil {
		t.Error(err)
	}
}

func TestNewValidation(t *testing.T) {
	_, h := mustSecret(t)
	tests := []struct {
		name                         string
		id, sender, recipient, asset string
		amount, expiry               float64
	}{
		{"emptyID", "", "a", "b", "T", 1, 10},
		{"emptySender", "c", "", "b", "T", 1, 10},
		{"emptyRecipient", "c", "a", "", "T", 1, 10},
		{"selfDeal", "c", "a", "a", "T", 1, 10},
		{"emptyAsset", "c", "a", "b", "", 1, 10},
		{"zeroAmount", "c", "a", "b", "T", 0, 10},
		{"negativeAmount", "c", "a", "b", "T", -1, 10},
		{"zeroExpiry", "c", "a", "b", "T", 1, 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := New(tt.id, tt.sender, tt.recipient, tt.asset, tt.amount, h, tt.expiry); !errors.Is(err, ErrBadContract) {
				t.Errorf("err = %v, want ErrBadContract", err)
			}
		})
	}
}

func TestClaimHappyPath(t *testing.T) {
	s, h := mustSecret(t)
	c := mustContract(t, h, 11)
	if c.State() != Locked {
		t.Fatalf("initial state %v, want locked", c.State())
	}
	if got := c.Secret(); got != nil {
		t.Errorf("Secret before claim = %v, want nil", got)
	}
	if err := c.Claim(s, 7); err != nil {
		t.Fatalf("Claim: %v", err)
	}
	if c.State() != Claimed {
		t.Errorf("state %v, want claimed", c.State())
	}
	if !bytes.Equal(c.Secret(), s) {
		t.Error("revealed secret mismatch")
	}
	// Double settlement is rejected.
	if err := c.Claim(s, 8); !errors.Is(err, ErrNotLocked) {
		t.Errorf("second claim err = %v, want ErrNotLocked", err)
	}
	if err := c.Refund(20); !errors.Is(err, ErrNotLocked) {
		t.Errorf("refund after claim err = %v, want ErrNotLocked", err)
	}
}

func TestClaimAtExpiryBoundary(t *testing.T) {
	// Eq. 8: t5 ≤ tb — a claim confirming exactly at expiry is valid.
	s, h := mustSecret(t)
	c := mustContract(t, h, 11)
	if err := c.Claim(s, 11); err != nil {
		t.Errorf("claim at expiry should succeed, got %v", err)
	}
}

func TestClaimAfterExpiry(t *testing.T) {
	s, h := mustSecret(t)
	c := mustContract(t, h, 11)
	if err := c.Claim(s, 11.001); !errors.Is(err, ErrExpired) {
		t.Errorf("err = %v, want ErrExpired", err)
	}
	if c.State() != Locked {
		t.Errorf("failed claim must leave contract locked, got %v", c.State())
	}
}

func TestClaimWrongSecret(t *testing.T) {
	_, h := mustSecret(t)
	other, _ := mustSecret(t)
	c := mustContract(t, h, 11)
	if err := c.Claim(other, 5); !errors.Is(err, ErrBadSecret) {
		t.Errorf("err = %v, want ErrBadSecret", err)
	}
	if c.State() != Locked {
		t.Errorf("state %v, want locked after bad claim", c.State())
	}
}

func TestRefund(t *testing.T) {
	s, h := mustSecret(t)
	c := mustContract(t, h, 11)
	if err := c.Refund(11); !errors.Is(err, ErrNotExpired) {
		t.Errorf("refund at expiry err = %v, want ErrNotExpired (refund is strictly after)", err)
	}
	if err := c.Refund(11.5); err != nil {
		t.Fatalf("Refund: %v", err)
	}
	if c.State() != Refunded {
		t.Errorf("state %v, want refunded", c.State())
	}
	// The secret was never revealed.
	if c.Secret() != nil {
		t.Error("refunded contract must not expose a secret")
	}
	if err := c.Claim(s, 5); !errors.Is(err, ErrNotLocked) {
		t.Errorf("claim after refund err = %v, want ErrNotLocked", err)
	}
}

func TestStateString(t *testing.T) {
	tests := []struct {
		s    State
		want string
	}{
		{Locked, "locked"}, {Claimed, "claimed"}, {Refunded, "refunded"}, {State(9), "State(9)"},
	}
	for _, tt := range tests {
		if got := tt.s.String(); got != tt.want {
			t.Errorf("State(%d).String() = %q, want %q", int(tt.s), got, tt.want)
		}
	}
}

func TestSecretReturnsCopy(t *testing.T) {
	s, h := mustSecret(t)
	c := mustContract(t, h, 11)
	if err := c.Claim(s, 5); err != nil {
		t.Fatal(err)
	}
	got := c.Secret()
	got[0] ^= 0xFF
	if !bytes.Equal(c.Secret(), s) {
		t.Error("mutating the returned secret corrupted the contract")
	}
}
