// Package htlc implements the hash time lock contract of the paper's Fig. 1:
// assets are locked under the SHA-256 hash of a secret and an absolute
// expiry time. Before expiry the designated recipient can claim by revealing
// the preimage; at or after expiry the sender can reclaim the assets. The
// contract is a pure state machine — escrow accounting and timing live in
// internal/chain.
package htlc

import (
	"crypto/rand"
	"crypto/sha256"
	"crypto/subtle"
	"errors"
	"fmt"
	"io"
)

// Errors returned by contract operations.
var (
	// ErrBadSecret reports a preimage that does not hash to the lock.
	ErrBadSecret = errors.New("htlc: secret does not match hash lock")
	// ErrExpired reports a claim at or after the expiry time.
	ErrExpired = errors.New("htlc: contract expired")
	// ErrNotExpired reports a refund before the expiry time.
	ErrNotExpired = errors.New("htlc: contract not yet expired")
	// ErrNotLocked reports an operation on a settled contract.
	ErrNotLocked = errors.New("htlc: contract is not locked")
	// ErrBadContract reports invalid construction parameters.
	ErrBadContract = errors.New("htlc: invalid contract parameters")
)

// SecretSize is the byte length of generated secrets.
const SecretSize = 32

// Secret is the preimage that unlocks a contract.
type Secret []byte

// Hash is the SHA-256 hash lock.
type Hash [sha256.Size]byte

// NewSecret draws a random secret from r (crypto/rand.Reader in production;
// tests may pass a deterministic reader) and returns it with its hash.
func NewSecret(r io.Reader) (Secret, Hash, error) {
	s := make(Secret, SecretSize)
	h, err := FillSecret(s, r)
	if err != nil {
		return nil, Hash{}, err
	}
	return s, h, nil
}

// FillSecret draws a fresh secret from r into buf — which must be
// SecretSize bytes — and returns its hash. It is NewSecret without the
// allocation: the simulator's reusable agents draw every path's secret
// into one preallocated buffer.
func FillSecret(buf Secret, r io.Reader) (Hash, error) {
	if len(buf) != SecretSize {
		return Hash{}, fmt.Errorf("%w: secret buffer of %d bytes, want %d", ErrBadContract, len(buf), SecretSize)
	}
	if r == nil {
		r = rand.Reader
	}
	if _, err := io.ReadFull(r, buf); err != nil {
		return Hash{}, fmt.Errorf("htlc: generating secret: %w", err)
	}
	return HashOf(buf), nil
}

// HashOf returns the hash lock of a secret.
func HashOf(s Secret) Hash { return sha256.Sum256(s) }

// Verify reports whether the secret is the preimage of the hash, in
// constant time.
func (h Hash) Verify(s Secret) bool {
	got := HashOf(s)
	return subtle.ConstantTimeCompare(got[:], h[:]) == 1
}

// State is the lifecycle state of a contract.
type State int

const (
	// Locked means assets are escrowed and claimable.
	Locked State = iota + 1
	// Claimed means the recipient revealed the secret and took the assets.
	Claimed
	// Refunded means the contract expired and the sender reclaimed.
	Refunded
)

// String returns a human-readable state name.
func (s State) String() string {
	switch s {
	case Locked:
		return "locked"
	case Claimed:
		return "claimed"
	case Refunded:
		return "refunded"
	default:
		return fmt.Sprintf("State(%d)", int(s))
	}
}

// Contract is a hash time locked escrow of Amount units of Asset from
// Sender to Recipient, expiring at Expiry (simulated hours).
type Contract struct {
	// ID identifies the contract on its host chain.
	ID string
	// Sender funds the contract and may refund after expiry.
	Sender string
	// Recipient may claim with the secret before expiry.
	Recipient string
	// Asset is the token symbol being escrowed.
	Asset string
	// Amount is the escrowed quantity.
	Amount float64
	// Lock is the SHA-256 hash lock.
	Lock Hash
	// Expiry is the absolute expiry time in simulated hours.
	Expiry float64

	state  State
	secret Secret
}

// New validates and creates a locked contract.
func New(id, sender, recipient, asset string, amount float64, lock Hash, expiry float64) (*Contract, error) {
	ct := &Contract{}
	if err := ct.Init(id, sender, recipient, asset, amount, lock, expiry); err != nil {
		return nil, err
	}
	return ct, nil
}

// Init validates the parameters and re-arms the contract value in place as
// a fresh locked escrow, reusing the revealed-secret buffer's storage. It
// is the pooled alternative to New: the chain simulator's reusable
// transaction arena re-initialises recycled contracts instead of
// allocating new ones on every Monte Carlo path.
func (c *Contract) Init(id, sender, recipient, asset string, amount float64, lock Hash, expiry float64) error {
	switch {
	case id == "":
		return fmt.Errorf("%w: empty id", ErrBadContract)
	case sender == "" || recipient == "":
		return fmt.Errorf("%w: empty party", ErrBadContract)
	case sender == recipient:
		return fmt.Errorf("%w: sender and recipient are the same account %q", ErrBadContract, sender)
	case asset == "":
		return fmt.Errorf("%w: empty asset", ErrBadContract)
	case amount <= 0:
		return fmt.Errorf("%w: amount %g must be > 0", ErrBadContract, amount)
	case expiry <= 0:
		return fmt.Errorf("%w: expiry %g must be > 0", ErrBadContract, expiry)
	}
	*c = Contract{
		ID:        id,
		Sender:    sender,
		Recipient: recipient,
		Asset:     asset,
		Amount:    amount,
		Lock:      lock,
		Expiry:    expiry,
		state:     Locked,
		secret:    c.secret[:0],
	}
	return nil
}

// State returns the contract's lifecycle state.
func (c *Contract) State() State { return c.state }

// Secret returns the revealed preimage after a successful claim, or nil.
func (c *Contract) Secret() Secret {
	if c.state != Claimed {
		return nil
	}
	out := make(Secret, len(c.secret))
	copy(out, c.secret)
	return out
}

// Claim settles the contract to the recipient if the secret matches and the
// contract has not expired (claims are valid up to and including the expiry
// instant, matching t5 ≤ tb of Eq. 8).
func (c *Contract) Claim(secret Secret, now float64) error {
	if c.state != Locked {
		return fmt.Errorf("%w: state %v", ErrNotLocked, c.state)
	}
	if now > c.Expiry {
		return fmt.Errorf("%w: now=%g > expiry=%g", ErrExpired, now, c.Expiry)
	}
	if !c.Lock.Verify(secret) {
		return ErrBadSecret
	}
	// Reuse the buffer's storage (recycled contracts already carry one):
	// Secret() hands out copies, so the stored preimage never escapes.
	c.secret = append(c.secret[:0], secret...)
	c.state = Claimed
	return nil
}

// Refund returns the escrow to the sender once the expiry has passed.
func (c *Contract) Refund(now float64) error {
	if c.state != Locked {
		return fmt.Errorf("%w: state %v", ErrNotLocked, c.state)
	}
	if now <= c.Expiry {
		return fmt.Errorf("%w: now=%g <= expiry=%g", ErrNotExpired, now, c.Expiry)
	}
	c.state = Refunded
	return nil
}
