package repeated

import (
	"errors"
	"math"
	"reflect"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/utility"
)

func baseConfig() Config {
	return Config{
		Params:         utility.Default(),
		Rounds:         60,
		GapHours:       24,
		ReputationGain: 0.01,
		ReputationLoss: 0.05,
		AlphaMin:       0,
		AlphaMax:       0.6,
		Seed:           7,
	}
}

func TestConfigValidation(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*Config)
	}{
		{"zeroRounds", func(c *Config) { c.Rounds = 0 }},
		{"zeroGap", func(c *Config) { c.GapHours = 0 }},
		{"negativeGain", func(c *Config) { c.ReputationGain = -0.1 }},
		{"negativeLoss", func(c *Config) { c.ReputationLoss = -0.1 }},
		{"invertedBounds", func(c *Config) { c.AlphaMin = 0.5; c.AlphaMax = 0.1 }},
		{"badIdleRecovery", func(c *Config) { c.IdleRecovery = 1.5 }},
		{"badParams", func(c *Config) { c.Params.P0 = -1 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := baseConfig()
			tt.mutate(&cfg)
			if _, err := Play(cfg); err == nil {
				t.Error("want error, got nil")
			}
		})
	}
}

func TestPlayDeterministicForSeed(t *testing.T) {
	a, err := Play(baseConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Play(baseConfig())
	if err != nil {
		t.Fatal(err)
	}
	if a.Successes != b.Successes || a.Initiations != b.Initiations ||
		a.FinalAlphaA != b.FinalAlphaA || a.FinalAlphaB != b.FinalAlphaB {
		t.Errorf("same seed diverged: %+v vs %+v", a, b)
	}
}

func TestPremiaStayInBounds(t *testing.T) {
	cfg := baseConfig()
	cfg.Rounds = 120
	cfg.ReputationGain = 0.2
	cfg.ReputationLoss = 0.3
	res, err := Play(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res.Rounds {
		if r.AlphaA < cfg.AlphaMin-1e-12 || r.AlphaA > cfg.AlphaMax+1e-12 {
			t.Fatalf("round %d: alphaA %v out of [%v, %v]", r.Index, r.AlphaA, cfg.AlphaMin, cfg.AlphaMax)
		}
		if r.AlphaB < cfg.AlphaMin-1e-12 || r.AlphaB > cfg.AlphaMax+1e-12 {
			t.Fatalf("round %d: alphaB %v out of bounds", r.Index, r.AlphaB)
		}
	}
	if res.FinalAlphaA > cfg.AlphaMax || res.FinalAlphaB > cfg.AlphaMax {
		t.Error("final premia exceed the cap")
	}
}

func TestStaticReputationMatchesStageGameSR(t *testing.T) {
	// With zero reputation dynamics every round is the same stage game (up
	// to the price level, which re-quoting absorbs); the long-run success
	// rate must approximate the analytic SR at the optimal rate.
	cfg := baseConfig()
	cfg.ReputationGain = 0
	cfg.ReputationLoss = 0
	cfg.Rounds = 3000
	res, err := Play(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m, err := core.New(utility.Default())
	if err != nil {
		t.Fatal(err)
	}
	_, want, err := m.OptimalRate()
	if err != nil {
		t.Fatal(err)
	}
	got := res.SuccessRate()
	if math.Abs(got-want) > 0.04 {
		t.Errorf("repeated SR %v, stage-game optimum %v", got, want)
	}
	if res.Initiations == 0 || res.Quotes == 0 {
		t.Error("market never opened")
	}
}

func TestReputationSpiralFreezesMarket(t *testing.T) {
	// Brutal reputation loss without recovery: after enough withdrawals the
	// premia fall below the viability threshold and the market closes
	// (no quotes in the tail rounds).
	cfg := baseConfig()
	cfg.ReputationGain = 0
	cfg.ReputationLoss = 0.2
	cfg.AlphaMin = 0
	cfg.Rounds = 200
	res, err := Play(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tail := res.Rounds[len(res.Rounds)-20:]
	for _, r := range tail {
		if r.Quoted {
			t.Fatalf("round %d still quoted with α = (%.3f, %.3f); expected frozen market",
				r.Index, r.AlphaA, r.AlphaB)
		}
	}
	if res.Successes == 0 {
		t.Error("expected some early successes before the spiral")
	}
}

func TestRecoveryDynamicsKeepMarketOpen(t *testing.T) {
	// With idle reputation recovery (fading memory of defections) the
	// market reopens after freezes: quotes keep appearing and cooperation
	// persists. Without it the premium cap acts as a ratchet (gains clamp,
	// losses do not) and the market can freeze permanently — see
	// TestReputationSpiralFreezesMarket.
	cfg := baseConfig()
	cfg.ReputationGain = 0.02
	cfg.ReputationLoss = 0.2
	cfg.IdleRecovery = 0.15
	cfg.Rounds = 300
	res, err := Play(cfg)
	if err != nil {
		t.Fatal(err)
	}
	lastQuoted := false
	for _, r := range res.Rounds[len(res.Rounds)-50:] {
		if r.Quoted {
			lastQuoted = true
		}
	}
	if !lastQuoted {
		t.Error("market closed despite recovery dynamics")
	}
	if res.SuccessRate() < 0.5 {
		t.Errorf("success rate %v too low under healthy dynamics", res.SuccessRate())
	}
}

func TestRoundRecordsAreConsistent(t *testing.T) {
	res, err := Play(baseConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rounds) != baseConfig().Rounds {
		t.Fatalf("got %d rounds, want %d", len(res.Rounds), baseConfig().Rounds)
	}
	for _, r := range res.Rounds {
		if r.Success && (!r.Initiated || !r.Quoted) {
			t.Errorf("round %d: success without initiation/quote", r.Index)
		}
		if r.Initiated && !r.Quoted {
			t.Errorf("round %d: initiated without a quote", r.Index)
		}
		if r.WithdrewA && r.WithdrewB {
			t.Errorf("round %d: both sides cannot be the first withdrawer", r.Index)
		}
		if r.Success && (r.WithdrewA || r.WithdrewB) {
			t.Errorf("round %d: success with a withdrawal", r.Index)
		}
		if r.Price <= 0 {
			t.Errorf("round %d: price %v", r.Index, r.Price)
		}
	}
	if res.CooperationSummary() == "" || res.CooperationSummary() == "no rounds" {
		t.Error("summary empty")
	}
	if (Result{}).CooperationSummary() != "no rounds" {
		t.Error("empty-result summary mismatch")
	}
	if (Result{}).SuccessRate() != 0 {
		t.Error("empty-result success rate should be 0")
	}
}

func TestPlayPropagatesStageErrors(t *testing.T) {
	cfg := baseConfig()
	cfg.Params.Chains.EpsB = 10 // violates Eq. 3
	if _, err := Play(cfg); err == nil {
		t.Error("invalid chain timing should fail")
	}
	var zero Config
	if _, err := Play(zero); !errors.Is(err, ErrBadConfig) {
		// Params validation fires first; either error class is acceptable,
		// but there must be an error.
		if err == nil {
			t.Error("zero config should fail")
		}
	}
}

func TestQuoteAtMatchesFreshSolve(t *testing.T) {
	p := utility.Default()
	pstar, sr, viable, err := QuoteAt(p, p.Alice.Alpha, p.Bob.Alpha)
	if err != nil {
		t.Fatal(err)
	}
	if !viable {
		t.Fatal("Table III must quote")
	}
	if pstar <= 0 || sr <= 0 || sr > 1 {
		t.Errorf("quote (%v, %v) out of range", pstar, sr)
	}
	// The quote is served from the shared cache; asking again must return
	// the identical solution.
	pstar2, sr2, viable2, err := QuoteAt(p, p.Alice.Alpha, p.Bob.Alpha)
	if err != nil || !viable2 || pstar2 != pstar || sr2 != sr {
		t.Errorf("cached quote drifted: (%v, %v, %v, %v)", pstar2, sr2, viable2, err)
	}
	if _, _, _, err := QuoteAt(utility.Params{}, 0.3, 0.3); err == nil {
		t.Error("invalid params accepted")
	}
}

func TestQuoteAtReportsFrozenMarketAsNotViable(t *testing.T) {
	p := utility.Default()
	// Near-zero premia with an impatient responder leave no viable rate.
	p.Bob.R = 0.08
	_, _, viable, err := QuoteAt(p, 0.001, 0.001)
	if err != nil {
		t.Fatal(err)
	}
	if viable {
		t.Error("frozen market reported viable")
	}
}

// TestPlayConcurrentEngagementsShareQuoteCache drives many engagements
// through the process-wide quote memo at once — the access pattern of the
// (scenario × variant) sweep pool. The race detector (CI's -race job)
// turns any unsynchronised cache access into a failure, and identical
// seeds must keep producing identical trajectories while sharing solves.
func TestPlayConcurrentEngagementsShareQuoteCache(t *testing.T) {
	cfg := Config{
		Params:         utility.Default(),
		Rounds:         40,
		GapHours:       24,
		Seed:           9,
		ReputationLoss: 0.2,
		ReputationGain: 0.02,
		AlphaMax:       0.6,
	}
	ref, err := Play(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	results := make([]Result, 8)
	errs := make([]error, 8)
	for i := range results {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = Play(cfg)
		}(i)
	}
	wg.Wait()
	for i := range results {
		if errs[i] != nil {
			t.Fatalf("goroutine %d: %v", i, errs[i])
		}
		if !reflect.DeepEqual(results[i], ref) {
			t.Errorf("goroutine %d produced a different trajectory", i)
		}
	}
	if hits, misses := QuoteCacheStats(); hits == 0 || misses == 0 {
		t.Errorf("quote cache not exercised: hits %d, misses %d", hits, misses)
	}
}

// TestAbsorbedPriceStaysAtZero pins the underflow convention: a long
// engagement under strongly negative drift walks the float price to
// exactly 0 (the GBM's absorbing boundary), and from then on every
// round records a zero price with no panic and no NaN, instead of the
// NaN-tainted garbage a naive Step(0) could produce.
func TestAbsorbedPriceStaysAtZero(t *testing.T) {
	cfg := baseConfig()
	cfg.Params = cfg.Params.WithSigma(0.2)
	cfg.Rounds = 2500
	cfg.Seed = 2
	res, err := Play(cfg)
	if err != nil {
		t.Fatal(err)
	}
	absorbed := false
	for i, r := range res.Rounds {
		if math.IsNaN(r.Price) || r.Price < 0 {
			t.Fatalf("round %d: invalid price %v", i, r.Price)
		}
		if absorbed && r.Price != 0 {
			t.Fatalf("round %d: price %v resurrected after absorption", i, r.Price)
		}
		if r.Price == 0 {
			absorbed = true
		}
	}
	if !absorbed {
		t.Skip("trajectory never underflowed; widen drift or rounds to exercise absorption")
	}
}
