// Package repeated implements the repeated-game extension sketched in the
// paper's future work (§V.B: "Our model can also be extended to consider
// repeated games…"). The same two agents trade round after round; the
// reputation component of the success premium α (§III.F.1: α captures "the
// utility of guarding his/her reputation") becomes endogenous: a completed
// swap rebuilds reputation, a withdrawal burns it. Between rounds the
// market price evolves under the GBM, and each round the agents re-quote
// the SR-maximising exchange rate for the prevailing price — the "dynamic
// adjustment" the paper's conclusion recommends.
//
// The stage game is solved exactly each round by internal/core; the round
// outcome is sampled from the solved threshold strategies over the price
// transition. The package thus shows when reputation dynamics sustain
// long-run cooperation and when a withdrawal spiral freezes the market
// (no viable rate ⇒ no trade until reputation recovers).
package repeated

import (
	"errors"
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/mathx"
	"repro/internal/memo"
	"repro/internal/utility"
)

// ErrBadConfig reports an invalid configuration.
var ErrBadConfig = errors.New("repeated: invalid configuration")

// Config parameterises a repeated engagement.
type Config struct {
	// Params is the market/preference configuration; the premia are the
	// agents' *initial* reputations.
	Params utility.Params
	// Rounds is the number of swap opportunities.
	Rounds int
	// GapHours is the market time between consecutive opportunities.
	GapHours float64
	// ReputationGain is added to an agent's premium after a completed swap.
	ReputationGain float64
	// ReputationLoss is subtracted from the withdrawing agent's premium
	// after a stop at t2 (B) or t3 (A).
	ReputationLoss float64
	// AlphaMin and AlphaMax clamp the premium. AlphaMax defaults to 1.
	AlphaMin, AlphaMax float64
	// IdleRecovery pulls both premia toward their initial values by this
	// fraction per round in which no swap was initiated — the fading memory
	// of past defections. Zero disables recovery, in which case the premium
	// cap creates a ratchet: at the cap, successes cannot raise reputation
	// further while withdrawals still burn it, so long engagements drift
	// toward a frozen market.
	IdleRecovery float64
	// Seed drives the price path and outcome sampling.
	Seed int64
}

func (c Config) validate() error {
	if err := c.Params.Validate(); err != nil {
		return fmt.Errorf("repeated: %w", err)
	}
	if c.Rounds <= 0 {
		return fmt.Errorf("%w: rounds=%d", ErrBadConfig, c.Rounds)
	}
	if c.GapHours <= 0 {
		return fmt.Errorf("%w: gap=%g hours", ErrBadConfig, c.GapHours)
	}
	if c.ReputationGain < 0 || c.ReputationLoss < 0 {
		return fmt.Errorf("%w: reputation gain/loss (%g, %g) must be >= 0",
			ErrBadConfig, c.ReputationGain, c.ReputationLoss)
	}
	if c.AlphaMin < 0 || (c.AlphaMax != 0 && c.AlphaMax < c.AlphaMin) {
		return fmt.Errorf("%w: premium bounds [%g, %g]", ErrBadConfig, c.AlphaMin, c.AlphaMax)
	}
	if c.IdleRecovery < 0 || c.IdleRecovery > 1 {
		return fmt.Errorf("%w: idle recovery %g must be in [0, 1]", ErrBadConfig, c.IdleRecovery)
	}
	return nil
}

// Round records one swap opportunity.
type Round struct {
	// Index is the round number (0-based).
	Index int
	// Price is the Token_b price when the round opens.
	Price float64
	// AlphaA and AlphaB are the premia entering the round.
	AlphaA, AlphaB float64
	// Quoted reports whether a viable exchange rate existed.
	Quoted bool
	// PStar is the quoted SR-maximising rate (zero when not quoted).
	PStar float64
	// Initiated, Success report the protocol outcome.
	Initiated, Success bool
	// WithdrewA and WithdrewB mark who walked away mid-protocol.
	WithdrewA, WithdrewB bool
}

// Result aggregates a repeated engagement.
type Result struct {
	// Rounds holds the per-round records.
	Rounds []Round
	// Quotes, Initiations, Successes count round outcomes.
	Quotes, Initiations, Successes int
	// FinalAlphaA and FinalAlphaB are the premia after the last round.
	FinalAlphaA, FinalAlphaB float64
}

// SuccessRate returns successes over initiations (0 when never initiated).
func (r Result) SuccessRate() float64 {
	if r.Initiations == 0 {
		return 0
	}
	return float64(r.Successes) / float64(r.Initiations)
}

// cachedQuote is a solved stage game at the reference price, reusable at
// any price level through the game's scale invariance: multiplying P0 and
// P* by λ scales every threshold by λ and leaves the success rate and the
// initiation decision unchanged.
type cachedQuote struct {
	viable bool
	// sr is the success rate at the SR-maximising rate; scale invariance
	// makes it price-level independent, so it doubles as the analytic
	// success probability of every re-quoted round.
	sr float64
	// Normalised by the reference price:
	pstarOverP0  float64
	cutoffOverP0 float64
	regionOverP0 mathx.IntervalSet
}

// quoteResult carries a solved quote through the process-wide memo; a
// deterministic solve error is cached alongside (it is a pure function of
// the key, so re-solving could only fail the same way).
type quoteResult struct {
	q   cachedQuote
	err error
}

// quotes is the process-wide quote cache, keyed by the complete quantised
// parameter set of the stage solve. It replaces the per-Play private map:
// concurrent engagements under the sweep pool share one solve per distinct
// premium pair (memo.Map serialises first computes), and a repeated
// trajectory revisiting a premium pair in a later Play hits the cache.
// Values are pure functions of the key, so the cache can never go stale.
//
// The stage models are built directly rather than through
// solvecache.SharedModel: each quote key is solved exactly once and then
// served from this memo forever, so sharing the model would buy nothing —
// while a reputation-dynamics engagement visiting hundreds of quantised
// premium pairs would fill solvecache's bounded cache with single-use
// light models and push every later full solve onto the uncached path.
var quotes memo.Map[utility.Params, quoteResult]

// QuoteCacheStats reports the process-wide quote cache's cumulative hit
// and miss counts.
func QuoteCacheStats() (hits, misses uint64) { return quotes.Stats() }

// Play runs the repeated engagement. Stage games are solved once per
// distinct premium pair (at the reference price) and rescaled to the
// prevailing price, which keeps thousand-round engagements fast.
func Play(cfg Config) (Result, error) {
	if err := cfg.validate(); err != nil {
		return Result{}, err
	}
	alphaMax := cfg.AlphaMax
	if alphaMax == 0 {
		alphaMax = 1
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	price := cfg.Params.P0
	alpha0A := cfg.Params.Alice.Alpha
	alpha0B := cfg.Params.Bob.Alpha
	alphaA, alphaB := alpha0A, alpha0B
	refP := cfg.Params.P0

	res := Result{Rounds: make([]Round, 0, cfg.Rounds)}
	for i := 0; i < cfg.Rounds; i++ {
		round := Round{Index: i, Price: price, AlphaA: alphaA, AlphaB: alphaB}

		quote, err := solveQuote(cfg.Params, refP, alphaA, alphaB)
		if err != nil {
			return Result{}, fmt.Errorf("repeated: round %d: %w", i, err)
		}
		if quote.viable {
			scale := price / refP
			round.Quoted = true
			round.PStar = quote.pstarOverP0 * refP * scale
			res.Quotes++
			// At the SR-maximising rate A always initiates (the optimum
			// lies inside her feasible range).
			round.Initiated = true
			res.Initiations++
			strat := core.Strategy{
				PStar:          round.PStar,
				AliceInitiates: true,
				BobContT2:      quote.regionOverP0.Scale(refP * scale),
				AliceCutoffT3:  quote.cutoffOverP0 * refP * scale,
			}
			playRound(rng, cfg.Params, strat, &round)
		}

		// Reputation dynamics.
		switch {
		case round.Success:
			alphaA = mathx.Clamp(alphaA+cfg.ReputationGain, cfg.AlphaMin, alphaMax)
			alphaB = mathx.Clamp(alphaB+cfg.ReputationGain, cfg.AlphaMin, alphaMax)
			res.Successes++
		case round.WithdrewA:
			alphaA = mathx.Clamp(alphaA-cfg.ReputationLoss, cfg.AlphaMin, alphaMax)
		case round.WithdrewB:
			alphaB = mathx.Clamp(alphaB-cfg.ReputationLoss, cfg.AlphaMin, alphaMax)
		default:
			if cfg.IdleRecovery > 0 && !round.Initiated {
				alphaA += cfg.IdleRecovery * (alpha0A - alphaA)
				alphaB += cfg.IdleRecovery * (alpha0B - alphaB)
			}
		}

		res.Rounds = append(res.Rounds, round)
		// Market moves on between opportunities. A long engagement under
		// negative drift can underflow the float price to exactly 0 — the
		// GBM's absorbing boundary — after which the market stays at 0; the
		// draw is still consumed so the stream stays aligned with
		// trajectories that never absorb.
		z := rng.NormFloat64()
		if price > 0 {
			price = cfg.Params.Price.StepZ(price, cfg.GapHours, z)
		}
	}
	res.FinalAlphaA = alphaA
	res.FinalAlphaB = alphaB
	return res, nil
}

// solveQuote solves (or retrieves) the stage game for a premium pair at the
// reference price. Premia are quantised to 1e-3 — strategy thresholds move
// negligibly below that resolution — and the game is solved *at* the
// quantised premia, so cached and fresh results are always consistent. The
// key is the full quantised parameter set: the process-wide cache is shared
// across engagements and across goroutines.
func solveQuote(params utility.Params, refP, alphaA, alphaB float64) (cachedQuote, error) {
	params.Alice.Alpha = roundKey(alphaA)
	params.Bob.Alpha = roundKey(alphaB)
	params.P0 = refP
	res := quotes.Do(params, func() quoteResult {
		// The lighter numerical configuration: repeated-game trajectories
		// visit dozens of premium pairs, and threshold errors far below
		// the premium quantum do not change sampled outcomes.
		m, err := core.New(params, core.WithScanPoints(200), core.WithQuadOrder(32))
		if err != nil {
			return quoteResult{err: err}
		}
		pstar, sr, err := m.OptimalRate()
		switch {
		case err == nil:
			strat, err := m.Strategy(pstar)
			if err != nil {
				return quoteResult{err: err}
			}
			return quoteResult{q: cachedQuote{
				viable:       true,
				sr:           sr,
				pstarOverP0:  pstar / refP,
				cutoffOverP0: strat.AliceCutoffT3 / refP,
				regionOverP0: strat.BobContT2.Scale(1 / refP),
			}}
		case errors.Is(err, core.ErrNotViable):
			return quoteResult{}
		default:
			return quoteResult{err: err}
		}
	})
	return res.q, res.err
}

// QuoteAt exposes the quote solver to the variant layer: the SR-maximising
// rate and its success rate for the given premium pair at the scenario's
// reference price. viable is false when no exchange rate sustains the swap
// (core.ErrNotViable), which is an outcome, not an error. By the game's
// scale invariance the returned sr is also the per-round success
// probability of a re-quoted engagement at any price level.
func QuoteAt(params utility.Params, alphaA, alphaB float64) (pstar, sr float64, viable bool, err error) {
	if err := params.Validate(); err != nil {
		return 0, 0, false, fmt.Errorf("repeated: %w", err)
	}
	q, err := solveQuote(params, params.P0, alphaA, alphaB)
	if err != nil {
		return 0, 0, false, fmt.Errorf("repeated: %w", err)
	}
	if !q.viable {
		return 0, 0, false, nil
	}
	return q.pstarOverP0 * params.P0, q.sr, true, nil
}

func roundKey(a float64) float64 {
	const quantum = 1e-3
	return float64(int64(a/quantum+0.5)) * quantum
}

// playRound samples the stage-game outcome from the threshold strategies
// over the price transitions (the same sampling the analytic SR of Eq. 31
// integrates in closed form).
func playRound(rng *rand.Rand, params utility.Params, strat core.Strategy, round *Round) {
	// An absorbed (underflowed-to-0) market price stays at 0 through both
	// legs; the draws are still consumed to keep the stream aligned.
	step := func(p, tau float64) float64 {
		z := rng.NormFloat64()
		if p > 0 {
			return params.Price.StepZ(p, tau, z)
		}
		return 0
	}
	pT2 := step(round.Price, params.Chains.TauA)
	if !strat.BobContT2.Contains(pT2) {
		round.WithdrewB = true
		return
	}
	pT3 := step(pT2, params.Chains.TauB)
	if pT3 <= strat.AliceCutoffT3 {
		round.WithdrewA = true
		return
	}
	round.Success = true
}

// CooperationSummary reports how often the market stayed open: the fraction
// of rounds with a viable quote, a useful diagnostic for reputation-spiral
// experiments.
func (r Result) CooperationSummary() string {
	n := len(r.Rounds)
	if n == 0 {
		return "no rounds"
	}
	return fmt.Sprintf("%d rounds: %.0f%% quoted, %.0f%% initiated, %.0f%% of initiations succeeded, final α = (%.3f, %.3f)",
		n,
		100*float64(r.Quotes)/float64(n),
		100*float64(r.Initiations)/float64(n),
		100*r.SuccessRate(),
		r.FinalAlphaA, r.FinalAlphaB)
}
