package mathx

import (
	"math"
	"sync"
	"testing"
)

// TestSharedRulesMatchFreshRules pins the cache to the direct constructors:
// same nodes, same weights, bit for bit.
func TestSharedRulesMatchFreshRules(t *testing.T) {
	for _, n := range []int{1, 2, 16, 48, 64} {
		gl := SharedGaussLegendre(n)
		fresh := MustGaussLegendre(n)
		if gl.N() != n {
			t.Fatalf("SharedGaussLegendre(%d).N() = %d", n, gl.N())
		}
		for i := range fresh.nodes {
			if gl.nodes[i] != fresh.nodes[i] || gl.weights[i] != fresh.weights[i] {
				t.Fatalf("GL(%d) node %d: shared (%v, %v) != fresh (%v, %v)",
					n, i, gl.nodes[i], gl.weights[i], fresh.nodes[i], fresh.weights[i])
			}
		}
		gh := SharedGaussHermite(n)
		freshH := MustGaussHermite(n)
		for i := range freshH.nodes {
			if gh.nodes[i] != freshH.nodes[i] || gh.weights[i] != freshH.weights[i] {
				t.Fatalf("GH(%d) node %d differs between shared and fresh", n, i)
			}
		}
	}
}

// TestSharedRuleIsOneTablePerOrder checks the amortization contract: every
// caller of the same order gets the same table pointer, including under
// concurrent first access.
func TestSharedRuleIsOneTablePerOrder(t *testing.T) {
	const n = 33
	var wg sync.WaitGroup
	got := make([]*GaussLegendre, 16)
	for i := range got {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got[i] = SharedGaussLegendre(n)
		}(i)
	}
	wg.Wait()
	for i, g := range got {
		if g != got[0] {
			t.Fatalf("caller %d received a distinct table", i)
		}
	}
	if SharedGaussLegendre(n) != got[0] {
		t.Fatal("later call received a distinct table")
	}
}

func TestSharedRulePanicsOnBadOrder(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("SharedGaussLegendre(0) did not panic")
		}
	}()
	SharedGaussLegendre(0)
}

// TestIntegrateMappedMatchesIntegrate pins the scratch-free path to the
// closure path bit for bit, including the reversed-interval sign convention
// and the empty interval.
func TestIntegrateMappedMatchesIntegrate(t *testing.T) {
	gl := MustGaussLegendre(32)
	f := func(x float64) float64 { return math.Exp(-x) * math.Sin(3*x+1) }
	cases := [][2]float64{{0, 1}, {-2, 5}, {1.5, 1.5}, {3, 1}, {1e-7, 4.2}}
	scratch := make([]float64, 0, gl.N())
	for _, c := range cases {
		a, b := c[0], c[1]
		want := gl.Integrate(f, a, b)
		nodes := gl.MapNodes(scratch[:0], a, b)
		for i, x := range nodes {
			nodes[i] = f(x) // overwrite in place, as documented
		}
		got := gl.IntegrateMapped(nodes, a, b)
		if got != want && !(math.IsNaN(got) && math.IsNaN(want)) {
			t.Fatalf("IntegrateMapped over [%g, %g] = %v, Integrate = %v", a, b, got, want)
		}
	}
}

func TestMapNodesAppends(t *testing.T) {
	gl := MustGaussLegendre(4)
	dst := []float64{7}
	out := gl.MapNodes(dst, 0, 2)
	if len(out) != 5 || out[0] != 7 {
		t.Fatalf("MapNodes did not append: %v", out)
	}
}
