package mathx

import (
	"errors"
	"fmt"
	"math"
)

// Errors returned by the root finders.
var (
	// ErrNoBracket indicates that the supplied endpoints do not bracket a
	// sign change.
	ErrNoBracket = errors.New("mathx: endpoints do not bracket a root")
	// ErrNoConverge indicates the iteration budget was exhausted before the
	// requested tolerance was met.
	ErrNoConverge = errors.New("mathx: root finder failed to converge")
)

// Bisect finds a root of f in [a, b] by bisection. f(a) and f(b) must have
// opposite signs (an endpoint that is exactly zero is returned immediately).
// The result is accurate to within tol in the argument.
func Bisect(f Func1, a, b, tol float64) (float64, error) {
	fa, fb := f(a), f(b)
	if fa == 0 {
		return a, nil
	}
	if fb == 0 {
		return b, nil
	}
	if (fa > 0) == (fb > 0) {
		return 0, fmt.Errorf("%w: f(%g)=%g, f(%g)=%g", ErrNoBracket, a, fa, b, fb)
	}
	for i := 0; i < 200; i++ {
		m := 0.5 * (a + b)
		fm := f(m)
		if fm == 0 || (b-a)/2 < tol {
			return m, nil
		}
		if (fm > 0) == (fa > 0) {
			a, fa = m, fm
		} else {
			b = m
		}
	}
	return 0.5 * (a + b), nil
}

// Brent finds a root of f in [a, b] using Brent's method (inverse quadratic
// interpolation with bisection fallback). f(a) and f(b) must have opposite
// signs. tol is the absolute tolerance on the argument.
func Brent(f Func1, a, b, tol float64) (float64, error) {
	fa, fb := f(a), f(b)
	if fa == 0 {
		return a, nil
	}
	if fb == 0 {
		return b, nil
	}
	if (fa > 0) == (fb > 0) {
		return 0, fmt.Errorf("%w: f(%g)=%g, f(%g)=%g", ErrNoBracket, a, fa, b, fb)
	}
	if math.Abs(fa) < math.Abs(fb) {
		a, b = b, a
		fa, fb = fb, fa
	}
	c, fc := a, fa
	mflag := true
	var d float64
	for i := 0; i < 200; i++ {
		if fb == 0 || math.Abs(b-a) < tol {
			return b, nil
		}
		var s float64
		if fa != fc && fb != fc {
			// Inverse quadratic interpolation.
			s = a*fb*fc/((fa-fb)*(fa-fc)) +
				b*fa*fc/((fb-fa)*(fb-fc)) +
				c*fa*fb/((fc-fa)*(fc-fb))
		} else {
			// Secant step.
			s = b - fb*(b-a)/(fb-fa)
		}
		lo, hi := (3*a+b)/4, b
		if lo > hi {
			lo, hi = hi, lo
		}
		cond := s < lo || s > hi ||
			(mflag && math.Abs(s-b) >= math.Abs(b-c)/2) ||
			(!mflag && math.Abs(s-b) >= math.Abs(c-d)/2) ||
			(mflag && math.Abs(b-c) < tol) ||
			(!mflag && math.Abs(c-d) < tol)
		if cond {
			s = 0.5 * (a + b)
			mflag = true
		} else {
			mflag = false
		}
		fs := f(s)
		d = c
		c, fc = b, fb
		if (fa > 0) != (fs > 0) {
			b, fb = s, fs
		} else {
			a, fa = s, fs
		}
		if math.Abs(fa) < math.Abs(fb) {
			a, b = b, a
			fa, fb = fb, fa
		}
	}
	return b, nil
}

// FindAllRoots scans [a, b] with n equally spaced panels, brackets every
// sign change of f, and refines each bracket with Brent's method. Roots are
// returned in increasing order. Panels where f touches zero without crossing
// may be missed, as with any sampling-based scan; callers choose n densely
// enough for their problem (the swap-game utilities are smooth with at most
// three crossings).
func FindAllRoots(f Func1, a, b float64, n int, tol float64) []float64 {
	if n < 1 || b <= a {
		return nil
	}
	var roots []float64
	h := (b - a) / float64(n)
	x0 := a
	f0 := f(x0)
	for i := 1; i <= n; i++ {
		x1 := a + float64(i)*h
		if i == n {
			x1 = b // avoid accumulation error at the right endpoint
		}
		f1 := f(x1)
		switch {
		case f0 == 0:
			if len(roots) == 0 || roots[len(roots)-1] != x0 {
				roots = append(roots, x0)
			}
		case (f0 > 0) != (f1 > 0):
			if r, err := Brent(f, x0, x1, tol); err == nil {
				roots = append(roots, r)
			}
		}
		x0, f0 = x1, f1
	}
	if f0 == 0 && (len(roots) == 0 || roots[len(roots)-1] != x0) {
		roots = append(roots, x0)
	}
	return roots
}

// LogSpace returns n points geometrically spaced between a and b inclusive.
// Both endpoints must be positive and n must be at least 2; otherwise nil is
// returned. It is the natural grid for scanning price-threshold functions
// under a lognormal law.
func LogSpace(a, b float64, n int) []float64 {
	if n < 2 || a <= 0 || b <= 0 {
		return nil
	}
	out := make([]float64, n)
	la, lb := math.Log(a), math.Log(b)
	for i := range out {
		out[i] = math.Exp(la + (lb-la)*float64(i)/float64(n-1))
	}
	out[0], out[n-1] = a, b
	return out
}

// LinSpace returns n points linearly spaced between a and b inclusive.
// n must be at least 2; otherwise nil is returned.
func LinSpace(a, b float64, n int) []float64 {
	if n < 2 {
		return nil
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = a + (b-a)*float64(i)/float64(n-1)
	}
	out[n-1] = b
	return out
}
