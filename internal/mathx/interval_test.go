package mathx

import (
	"math"
	"testing"
	"testing/quick"
)

func TestIntervalBasics(t *testing.T) {
	iv := Interval{Lo: 1, Hi: 3}
	if iv.Empty() {
		t.Error("non-empty interval reported empty")
	}
	if got := iv.Len(); got != 2 {
		t.Errorf("Len = %v, want 2", got)
	}
	if !iv.Contains(1) || !iv.Contains(3) || !iv.Contains(2) {
		t.Error("Contains should include endpoints and interior")
	}
	if iv.Contains(0.999) || iv.Contains(3.001) {
		t.Error("Contains should exclude exterior points")
	}
	empty := Interval{Lo: 2, Hi: 1}
	if !empty.Empty() || empty.Len() != 0 {
		t.Error("inverted interval should be empty with zero length")
	}
	if got := iv.String(); got != "[1, 3]" {
		t.Errorf("String = %q", got)
	}
}

func TestNewIntervalSetMerges(t *testing.T) {
	tests := []struct {
		name string
		in   []Interval
		want []Interval
	}{
		{
			name: "disjointSorted",
			in:   []Interval{{0, 1}, {2, 3}},
			want: []Interval{{0, 1}, {2, 3}},
		},
		{
			name: "overlapMerge",
			in:   []Interval{{0, 2}, {1, 3}},
			want: []Interval{{0, 3}},
		},
		{
			name: "touchMerge",
			in:   []Interval{{0, 1}, {1, 2}},
			want: []Interval{{0, 2}},
		},
		{
			name: "unsortedWithEmpties",
			in:   []Interval{{5, 6}, {3, 1}, {0, 1}, {0.5, 0.7}},
			want: []Interval{{0, 1}, {5, 6}},
		},
		{
			name: "nested",
			in:   []Interval{{0, 10}, {2, 3}},
			want: []Interval{{0, 10}},
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := NewIntervalSet(tt.in...).Intervals()
			if len(got) != len(tt.want) {
				t.Fatalf("got %v, want %v", got, tt.want)
			}
			for i := range got {
				if got[i] != tt.want[i] {
					t.Errorf("interval[%d] = %v, want %v", i, got[i], tt.want[i])
				}
			}
		})
	}
}

func TestIntervalSetContains(t *testing.T) {
	s := NewIntervalSet(Interval{0, 1}, Interval{2, 3}, Interval{10, 20})
	tests := []struct {
		x    float64
		want bool
	}{
		{-1, false}, {0, true}, {0.5, true}, {1, true}, {1.5, false},
		{2, true}, {3, true}, {5, false}, {15, true}, {20, true}, {21, false},
	}
	for _, tt := range tests {
		if got := s.Contains(tt.x); got != tt.want {
			t.Errorf("Contains(%v) = %v, want %v", tt.x, got, tt.want)
		}
	}
}

func TestIntervalSetUnionIntersect(t *testing.T) {
	a := NewIntervalSet(Interval{0, 2}, Interval{4, 6})
	b := NewIntervalSet(Interval{1, 5})

	union := a.Union(b).Intervals()
	if len(union) != 1 || union[0] != (Interval{0, 6}) {
		t.Errorf("Union = %v, want [[0,6]]", union)
	}

	inter := a.Intersect(b).Intervals()
	want := []Interval{{1, 2}, {4, 5}}
	if len(inter) != len(want) {
		t.Fatalf("Intersect = %v, want %v", inter, want)
	}
	for i := range want {
		if inter[i] != want[i] {
			t.Errorf("Intersect[%d] = %v, want %v", i, inter[i], want[i])
		}
	}

	if !a.Intersect(IntervalSet{}).Empty() {
		t.Error("intersection with empty set should be empty")
	}
}

func TestIntervalSetComplementWithin(t *testing.T) {
	s := NewIntervalSet(Interval{1, 2}, Interval{3, 4})
	comp := s.ComplementWithin(Interval{0, 5}).Intervals()
	want := []Interval{{0, 1}, {2, 3}, {4, 5}}
	if len(comp) != len(want) {
		t.Fatalf("Complement = %v, want %v", comp, want)
	}
	for i := range want {
		if comp[i] != want[i] {
			t.Errorf("Complement[%d] = %v, want %v", i, comp[i], want[i])
		}
	}

	if got := NewIntervalSet().ComplementWithin(Interval{0, 1}).Intervals(); len(got) != 1 || got[0] != (Interval{0, 1}) {
		t.Errorf("complement of empty set = %v, want [[0,1]]", got)
	}
	if got := s.ComplementWithin(Interval{1, 0}); !got.Empty() {
		t.Errorf("complement within empty interval = %v, want empty", got)
	}
	// Set covering the whole window leaves nothing.
	full := NewIntervalSet(Interval{-1, 10})
	if got := full.ComplementWithin(Interval{0, 5}); !got.Empty() {
		t.Errorf("complement under full cover = %v, want empty", got)
	}
}

func TestIntervalSetBoundsAndLen(t *testing.T) {
	s := NewIntervalSet(Interval{1, 2}, Interval{5, 7})
	if got := s.TotalLen(); got != 3 {
		t.Errorf("TotalLen = %v, want 3", got)
	}
	if got := s.Bounds(); got != (Interval{1, 7}) {
		t.Errorf("Bounds = %v, want [1,7]", got)
	}
	if !NewIntervalSet().Bounds().Empty() {
		t.Error("Bounds of empty set should be empty")
	}
	if got := s.String(); got != "[1, 2] ∪ [5, 7]" {
		t.Errorf("String = %q", got)
	}
	if got := NewIntervalSet().String(); got != "∅" {
		t.Errorf("empty String = %q", got)
	}
}

func TestFromSignChanges(t *testing.T) {
	// f > 0 on (1,2) and (3,4) within [0,5].
	f := func(x float64) float64 { return -(x - 1) * (x - 2) * (x - 3) * (x - 4) }
	s := FromSignChanges(f, 0, 5, []float64{1, 2, 3, 4})
	want := []Interval{{1, 2}, {3, 4}}
	got := s.Intervals()
	if len(got) != len(want) {
		t.Fatalf("FromSignChanges = %v, want %v", got, want)
	}
	for i := range want {
		if math.Abs(got[i].Lo-want[i].Lo) > 1e-12 || math.Abs(got[i].Hi-want[i].Hi) > 1e-12 {
			t.Errorf("interval[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	// Roots outside the window are ignored.
	s2 := FromSignChanges(func(x float64) float64 { return 1 }, 0, 1, []float64{-5, 9})
	if got := s2.Intervals(); len(got) != 1 || got[0] != (Interval{0, 1}) {
		t.Errorf("window-only = %v, want [[0,1]]", got)
	}
}

func TestIntervalSetProperties(t *testing.T) {
	// Property: for random pairs of intervals, union length >= each input
	// length, intersection is contained in both, and complement partitions.
	cfg := &quick.Config{MaxCount: 300}
	err := quick.Check(func(a1, a2, b1, b2 float64) bool {
		norm := func(x, y float64) Interval {
			lo := math.Min(math.Mod(math.Abs(x), 10), math.Mod(math.Abs(y), 10))
			hi := math.Max(math.Mod(math.Abs(x), 10), math.Mod(math.Abs(y), 10))
			return Interval{Lo: lo, Hi: hi}
		}
		A := NewIntervalSet(norm(a1, a2))
		B := NewIntervalSet(norm(b1, b2))
		u := A.Union(B)
		i := A.Intersect(B)
		window := Interval{0, 10}
		comp := A.ComplementWithin(window)
		// Inclusion-exclusion on lengths.
		lhs := u.TotalLen() + i.TotalLen()
		rhs := A.TotalLen() + B.TotalLen()
		if math.Abs(lhs-rhs) > 1e-9 {
			return false
		}
		// Complement partitions the window.
		if math.Abs(A.TotalLen()+comp.TotalLen()-window.Len()) > 1e-9 {
			return false
		}
		return true
	}, cfg)
	if err != nil {
		t.Error(err)
	}
}

func TestIntervalSetScale(t *testing.T) {
	s := NewIntervalSet(Interval{1, 2}, Interval{4, 8})
	got := s.Scale(2.5).Intervals()
	want := []Interval{{2.5, 5}, {10, 20}}
	if len(got) != len(want) {
		t.Fatalf("Scale = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Scale[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	if !s.Scale(-1).Empty() {
		t.Error("non-positive factor should give the empty set")
	}
	if got := s.Scale(1).TotalLen(); got != s.TotalLen() {
		t.Errorf("identity scale changed length: %v", got)
	}
}
