// Package mathx provides the numerical substrate used by the swap-game
// solvers: fixed-order Gaussian quadrature (Legendre and Hermite rules),
// adaptive Simpson integration, bracketing root finders (bisection, Brent,
// multi-root scanning), one-dimensional optimisation (golden section, Brent,
// grid-refined search), and an algebra of disjoint half-open interval sets
// used to represent continuation regions such as the collateral game's 𝒫_t2.
//
// Everything is implemented from scratch on top of the standard library so
// the repository has no external dependencies. The routines favour
// robustness over ultimate speed: the solvers in internal/swapgame call them
// thousands of times per figure, which completes in milliseconds.
package mathx
