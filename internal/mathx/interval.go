package mathx

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Interval is a closed interval [Lo, Hi] on the real line. Intervals with
// Hi < Lo are considered empty.
type Interval struct {
	Lo, Hi float64
}

// Empty reports whether the interval contains no points.
func (iv Interval) Empty() bool { return iv.Hi < iv.Lo }

// Len returns the length of the interval (zero if empty).
func (iv Interval) Len() float64 {
	if iv.Empty() {
		return 0
	}
	return iv.Hi - iv.Lo
}

// Contains reports whether x lies in the interval.
func (iv Interval) Contains(x float64) bool { return x >= iv.Lo && x <= iv.Hi }

// String formats the interval as "[lo, hi]".
func (iv Interval) String() string { return fmt.Sprintf("[%g, %g]", iv.Lo, iv.Hi) }

// IntervalSet is a finite union of disjoint, sorted intervals. The zero
// value is the empty set. Construct with NewIntervalSet to normalise
// arbitrary input intervals.
type IntervalSet struct {
	ivs []Interval
}

// NewIntervalSet builds a normalised set from arbitrary intervals: empties
// are dropped, overlapping or touching intervals are merged, and the result
// is sorted.
func NewIntervalSet(ivs ...Interval) IntervalSet {
	var nonEmpty []Interval
	for _, iv := range ivs {
		if !iv.Empty() {
			nonEmpty = append(nonEmpty, iv)
		}
	}
	sort.Slice(nonEmpty, func(i, j int) bool { return nonEmpty[i].Lo < nonEmpty[j].Lo })
	var merged []Interval
	for _, iv := range nonEmpty {
		if n := len(merged); n > 0 && iv.Lo <= merged[n-1].Hi {
			if iv.Hi > merged[n-1].Hi {
				merged[n-1].Hi = iv.Hi
			}
			continue
		}
		merged = append(merged, iv)
	}
	return IntervalSet{ivs: merged}
}

// Intervals returns a copy of the disjoint intervals in increasing order.
func (s IntervalSet) Intervals() []Interval {
	out := make([]Interval, len(s.ivs))
	copy(out, s.ivs)
	return out
}

// Empty reports whether the set contains no points.
func (s IntervalSet) Empty() bool { return len(s.ivs) == 0 }

// Contains reports whether x lies in the set.
func (s IntervalSet) Contains(x float64) bool {
	// Binary search for the first interval with Lo > x, then check its
	// predecessor.
	i := sort.Search(len(s.ivs), func(i int) bool { return s.ivs[i].Lo > x })
	return i > 0 && s.ivs[i-1].Contains(x)
}

// TotalLen returns the sum of the interval lengths.
func (s IntervalSet) TotalLen() float64 {
	var sum float64
	for _, iv := range s.ivs {
		sum += iv.Len()
	}
	return sum
}

// Bounds returns the smallest interval covering the set. It returns an
// empty interval for the empty set.
func (s IntervalSet) Bounds() Interval {
	if s.Empty() {
		return Interval{Lo: 1, Hi: 0}
	}
	return Interval{Lo: s.ivs[0].Lo, Hi: s.ivs[len(s.ivs)-1].Hi}
}

// Union returns the union of s and t.
func (s IntervalSet) Union(t IntervalSet) IntervalSet {
	all := make([]Interval, 0, len(s.ivs)+len(t.ivs))
	all = append(all, s.ivs...)
	all = append(all, t.ivs...)
	return NewIntervalSet(all...)
}

// Intersect returns the intersection of s and t.
func (s IntervalSet) Intersect(t IntervalSet) IntervalSet {
	var out []Interval
	i, j := 0, 0
	for i < len(s.ivs) && j < len(t.ivs) {
		a, b := s.ivs[i], t.ivs[j]
		lo := math.Max(a.Lo, b.Lo)
		hi := math.Min(a.Hi, b.Hi)
		if lo <= hi {
			out = append(out, Interval{Lo: lo, Hi: hi})
		}
		if a.Hi < b.Hi {
			i++
		} else {
			j++
		}
	}
	return NewIntervalSet(out...)
}

// ComplementWithin returns the closure of within \ s, as an IntervalSet.
func (s IntervalSet) ComplementWithin(within Interval) IntervalSet {
	if within.Empty() {
		return IntervalSet{}
	}
	var out []Interval
	cur := within.Lo
	for _, iv := range s.ivs {
		if iv.Hi < within.Lo || iv.Lo > within.Hi {
			continue
		}
		if iv.Lo > cur {
			out = append(out, Interval{Lo: cur, Hi: math.Min(iv.Lo, within.Hi)})
		}
		if iv.Hi > cur {
			cur = iv.Hi
		}
	}
	if cur < within.Hi {
		out = append(out, Interval{Lo: cur, Hi: within.Hi})
	}
	return NewIntervalSet(out...)
}

// String formats the set as a union of intervals, or "∅" when empty.
func (s IntervalSet) String() string {
	if s.Empty() {
		return "∅"
	}
	parts := make([]string, len(s.ivs))
	for i, iv := range s.ivs {
		parts[i] = iv.String()
	}
	return strings.Join(parts, " ∪ ")
}

// FromSignChanges builds the set {x in [a,b] : f(x) > 0} for a function
// whose sign changes only at the supplied sorted roots. The membership of
// each panel between consecutive roots is decided by evaluating f at the
// panel midpoint.
func FromSignChanges(f Func1, a, b float64, roots []float64) IntervalSet {
	edges := make([]float64, 0, len(roots)+2)
	edges = append(edges, a)
	for _, r := range roots {
		if r > a && r < b {
			edges = append(edges, r)
		}
	}
	edges = append(edges, b)
	var out []Interval
	for i := 0; i+1 < len(edges); i++ {
		mid := 0.5 * (edges[i] + edges[i+1])
		if f(mid) > 0 {
			out = append(out, Interval{Lo: edges[i], Hi: edges[i+1]})
		}
	}
	return NewIntervalSet(out...)
}

// Scale returns the set with every endpoint multiplied by k > 0. It is the
// geometry behind the swap game's price-scale invariance: thresholds and
// continuation regions scale linearly with the price level.
func (s IntervalSet) Scale(k float64) IntervalSet {
	if k <= 0 {
		return IntervalSet{}
	}
	scaled := make([]Interval, len(s.ivs))
	for i, iv := range s.ivs {
		scaled[i] = Interval{Lo: iv.Lo * k, Hi: iv.Hi * k}
	}
	return IntervalSet{ivs: scaled}
}
