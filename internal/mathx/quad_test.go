package mathx

import (
	"errors"
	"math"
	"testing"
)

func almostEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol
}

func TestNewGaussLegendreInvalidOrder(t *testing.T) {
	for _, n := range []int{0, -1, -100} {
		if _, err := NewGaussLegendre(n); !errors.Is(err, ErrQuadOrder) {
			t.Errorf("NewGaussLegendre(%d) error = %v, want ErrQuadOrder", n, err)
		}
	}
}

func TestGaussLegendreWeightsSumToTwo(t *testing.T) {
	for _, n := range []int{1, 2, 5, 16, 64, 101} {
		gl, err := NewGaussLegendre(n)
		if err != nil {
			t.Fatalf("NewGaussLegendre(%d): %v", n, err)
		}
		var sum float64
		for _, w := range gl.weights {
			sum += w
		}
		if !almostEqual(sum, 2, 1e-12) {
			t.Errorf("n=%d: weight sum = %.15f, want 2", n, sum)
		}
		if gl.N() != n {
			t.Errorf("n=%d: N() = %d", n, gl.N())
		}
	}
}

func TestGaussLegendreExactForPolynomials(t *testing.T) {
	// An n-point rule is exact for polynomials of degree <= 2n-1.
	gl := MustGaussLegendre(8)
	tests := []struct {
		name string
		f    Func1
		a, b float64
		want float64
	}{
		{"constant", func(x float64) float64 { return 3 }, -1, 4, 15},
		{"linear", func(x float64) float64 { return x }, 0, 2, 2},
		{"cubic", func(x float64) float64 { return x * x * x }, -1, 1, 0},
		{"deg15", func(x float64) float64 { return math.Pow(x, 15) }, 0, 1, 1.0 / 16},
		{"reversed", func(x float64) float64 { return x }, 2, 0, -2},
		{"empty", func(x float64) float64 { return 1 }, 3, 3, 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := gl.Integrate(tt.f, tt.a, tt.b)
			if !almostEqual(got, tt.want, 1e-12) {
				t.Errorf("Integrate = %.15f, want %.15f", got, tt.want)
			}
		})
	}
}

func TestGaussLegendreTranscendental(t *testing.T) {
	gl := MustGaussLegendre(40)
	tests := []struct {
		name string
		f    Func1
		a, b float64
		want float64
		tol  float64
	}{
		{"exp", math.Exp, 0, 1, math.E - 1, 1e-13},
		{"sin", math.Sin, 0, math.Pi, 2, 1e-13},
		{"gaussian", func(x float64) float64 {
			return math.Exp(-x*x/2) / math.Sqrt(2*math.Pi)
		}, -8, 8, 1, 1e-10},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := gl.Integrate(tt.f, tt.a, tt.b)
			if !almostEqual(got, tt.want, tt.tol) {
				t.Errorf("Integrate = %.15f, want %.15f", got, tt.want)
			}
		})
	}
}

func TestGaussLegendrePanels(t *testing.T) {
	gl := MustGaussLegendre(16)
	// |x| has a kink at 0: panels split at the kink should be exact.
	f := math.Abs
	got := gl.IntegratePanels(f, -1, 1, 2)
	if !almostEqual(got, 1, 1e-12) {
		t.Errorf("IntegratePanels(|x|, -1, 1, 2) = %.15f, want 1", got)
	}
	// panels <= 1 falls back to a single panel.
	if g1, g2 := gl.IntegratePanels(math.Exp, 0, 1, 1), gl.Integrate(math.Exp, 0, 1); g1 != g2 {
		t.Errorf("IntegratePanels(…,1) = %v, Integrate = %v; want equal", g1, g2)
	}
}

func TestNewGaussHermiteInvalidOrder(t *testing.T) {
	if _, err := NewGaussHermite(0); !errors.Is(err, ErrQuadOrder) {
		t.Errorf("NewGaussHermite(0) error = %v, want ErrQuadOrder", err)
	}
}

func TestGaussHermiteWeightsSumToSqrtPi(t *testing.T) {
	for _, n := range []int{1, 2, 7, 20, 64} {
		gh, err := NewGaussHermite(n)
		if err != nil {
			t.Fatalf("NewGaussHermite(%d): %v", n, err)
		}
		var sum float64
		for _, w := range gh.weights {
			sum += w
		}
		if !almostEqual(sum, math.SqrtPi, 1e-10) {
			t.Errorf("n=%d: weight sum = %.15f, want sqrt(pi)=%.15f", n, sum, math.SqrtPi)
		}
		if gh.N() != n {
			t.Errorf("n=%d: N() = %d", n, gh.N())
		}
	}
}

func TestGaussHermiteNormalMoments(t *testing.T) {
	gh := MustGaussHermite(32)
	const mean, sd = 1.5, 0.7
	tests := []struct {
		name string
		f    Func1
		want float64
	}{
		{"mass", func(z float64) float64 { return 1 }, 1},
		{"mean", func(z float64) float64 { return z }, mean},
		{"second", func(z float64) float64 { return z * z }, sd*sd + mean*mean},
		{"mgf", math.Exp, math.Exp(mean + sd*sd/2)},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := gh.ExpectNormal(tt.f, mean, sd)
			if !almostEqual(got, tt.want, 1e-10) {
				t.Errorf("ExpectNormal = %.12f, want %.12f", got, tt.want)
			}
		})
	}
}

func TestGaussHermiteLogNormalMean(t *testing.T) {
	gh := MustGaussHermite(40)
	const mu, sd = 0.3, 0.25
	got := gh.ExpectLogNormal(func(y float64) float64 { return y }, mu, sd)
	want := math.Exp(mu + sd*sd/2)
	if !almostEqual(got, want, 1e-10) {
		t.Errorf("lognormal mean = %.12f, want %.12f", got, want)
	}
}

func TestAdaptiveSimpson(t *testing.T) {
	tests := []struct {
		name string
		f    Func1
		a, b float64
		want float64
		tol  float64
	}{
		{"exp", math.Exp, 0, 1, math.E - 1, 1e-9},
		{"sin", math.Sin, 0, math.Pi, 2, 1e-9},
		{"peaked", func(x float64) float64 {
			return 1 / (1 + 1000*x*x)
		}, -1, 1, 2 * math.Atan(math.Sqrt(1000)) / math.Sqrt(1000), 1e-8},
		{"empty", math.Exp, 2, 2, 0, 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := AdaptiveSimpson(tt.f, tt.a, tt.b, 1e-12, 40)
			if !almostEqual(got, tt.want, tt.tol) {
				t.Errorf("AdaptiveSimpson = %.15f, want %.15f", got, tt.want)
			}
		})
	}
}

func TestQuadAgreement(t *testing.T) {
	// Gauss-Legendre and adaptive Simpson must agree on a smooth integrand,
	// mirroring how the solver cross-checks its quadrature choices.
	f := func(x float64) float64 { return math.Exp(-x) * math.Sin(3*x) }
	gl := MustGaussLegendre(50)
	a, b := 0.0, 5.0
	g := gl.Integrate(f, a, b)
	s := AdaptiveSimpson(f, a, b, 1e-13, 40)
	if !almostEqual(g, s, 1e-9) {
		t.Errorf("GL=%.12f Simpson=%.12f differ", g, s)
	}
}
