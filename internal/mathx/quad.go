package mathx

import (
	"errors"
	"fmt"
	"math"
)

// ErrQuadOrder is returned when a quadrature rule is requested with a
// non-positive number of nodes.
var ErrQuadOrder = errors.New("mathx: quadrature order must be positive")

// Func1 is a real-valued function of one real variable.
type Func1 func(x float64) float64

// GaussLegendre is an n-point Gauss–Legendre quadrature rule on [-1, 1].
// The zero value is not usable; construct with NewGaussLegendre.
type GaussLegendre struct {
	nodes   []float64
	weights []float64
}

// NewGaussLegendre computes the nodes and weights of the n-point
// Gauss–Legendre rule by Newton iteration on the Legendre polynomial P_n.
// The rule integrates polynomials of degree up to 2n-1 exactly.
func NewGaussLegendre(n int) (*GaussLegendre, error) {
	if n <= 0 {
		return nil, fmt.Errorf("%w: n=%d", ErrQuadOrder, n)
	}
	gl := &GaussLegendre{
		nodes:   make([]float64, n),
		weights: make([]float64, n),
	}
	// Roots are symmetric about zero; compute the first half and mirror.
	m := (n + 1) / 2
	for i := 0; i < m; i++ {
		// Initial guess (Abramowitz & Stegun 25.4.38 style).
		x := math.Cos(math.Pi * (float64(i) + 0.75) / (float64(n) + 0.5))
		var dp float64
		for iter := 0; iter < 100; iter++ {
			p0, p1 := 1.0, x
			// Recurrence: (k+1) P_{k+1} = (2k+1) x P_k - k P_{k-1}.
			for k := 1; k < n; k++ {
				p0, p1 = p1, ((2*float64(k)+1)*x*p1-float64(k)*p0)/float64(k+1)
			}
			// Derivative: P'_n = n (x P_n - P_{n-1}) / (x^2 - 1).
			dp = float64(n) * (x*p1 - p0) / (x*x - 1)
			dx := p1 / dp
			x -= dx
			if math.Abs(dx) < 1e-15 {
				break
			}
		}
		w := 2 / ((1 - x*x) * dp * dp)
		gl.nodes[i] = -x
		gl.nodes[n-1-i] = x
		gl.weights[i] = w
		gl.weights[n-1-i] = w
	}
	return gl, nil
}

// MustGaussLegendre is like NewGaussLegendre but panics on invalid input.
// It is intended for package-level construction with constant arguments.
func MustGaussLegendre(n int) *GaussLegendre {
	gl, err := NewGaussLegendre(n)
	if err != nil {
		panic(err)
	}
	return gl
}

// N reports the number of nodes in the rule.
func (gl *GaussLegendre) N() int { return len(gl.nodes) }

// Integrate approximates the integral of f over [a, b]. If a > b the result
// has the conventional negated sign. Integration over an empty interval
// returns zero.
func (gl *GaussLegendre) Integrate(f Func1, a, b float64) float64 {
	if a == b {
		return 0
	}
	mid := 0.5 * (a + b)
	half := 0.5 * (b - a)
	var sum float64
	for i, x := range gl.nodes {
		sum += gl.weights[i] * f(mid+half*x)
	}
	return half * sum
}

// MapNodes appends the rule's nodes affinely mapped onto [a, b] to dst
// (usually dst[:0] of a reusable scratch buffer) and returns the extended
// slice. Together with IntegrateMapped it forms the scratch-free evaluation
// path: callers evaluate the integrand over the mapped nodes in place —
// vals[i] = f(nodes[i]) may overwrite the node buffer — and combine with
// IntegrateMapped, reproducing Integrate's result bit for bit without a
// closure or per-call allocation.
func (gl *GaussLegendre) MapNodes(dst []float64, a, b float64) []float64 {
	mid := 0.5 * (a + b)
	half := 0.5 * (b - a)
	for _, x := range gl.nodes {
		dst = append(dst, mid+half*x)
	}
	return dst
}

// IntegrateMapped combines integrand values evaluated at MapNodes(dst, a, b)
// into the quadrature sum. The accumulation order matches Integrate exactly,
// so for the same integrand the two paths return identical floats.
func (gl *GaussLegendre) IntegrateMapped(vals []float64, a, b float64) float64 {
	if a == b {
		return 0
	}
	half := 0.5 * (b - a)
	var sum float64
	for i, v := range vals {
		sum += gl.weights[i] * v
	}
	return half * sum
}

// IntegratePanels splits [a, b] into panels sub-intervals and applies the
// rule on each, improving accuracy for integrands with localised features
// (such as the kinked utility differences in the collateral game).
func (gl *GaussLegendre) IntegratePanels(f Func1, a, b float64, panels int) float64 {
	if panels <= 1 {
		return gl.Integrate(f, a, b)
	}
	h := (b - a) / float64(panels)
	var sum float64
	for i := 0; i < panels; i++ {
		sum += gl.Integrate(f, a+float64(i)*h, a+float64(i+1)*h)
	}
	return sum
}

// GaussHermite is an n-point Gauss–Hermite rule with weight exp(-x^2) on
// (-inf, inf). Construct with NewGaussHermite.
type GaussHermite struct {
	nodes   []float64
	weights []float64
}

// NewGaussHermite computes nodes and weights of the n-point Gauss–Hermite
// rule via Newton iteration on the (physicists') Hermite polynomials,
// following the classical Numerical Recipes "gauher" scheme.
func NewGaussHermite(n int) (*GaussHermite, error) {
	if n <= 0 {
		return nil, fmt.Errorf("%w: n=%d", ErrQuadOrder, n)
	}
	gh := &GaussHermite{
		nodes:   make([]float64, n),
		weights: make([]float64, n),
	}
	const pim4 = 0.7511255444649425 // pi^{-1/4}
	m := (n + 1) / 2
	var z float64
	for i := 0; i < m; i++ {
		switch i {
		case 0:
			z = math.Sqrt(float64(2*n+1)) - 1.85575*math.Pow(float64(2*n+1), -1.0/6.0)
		case 1:
			z -= 1.14 * math.Pow(float64(n), 0.426) / z
		case 2:
			z = 1.86*z - 0.86*gh.nodes[0]
		case 3:
			z = 1.91*z - 0.91*gh.nodes[1]
		default:
			z = 2*z - gh.nodes[i-2]
		}
		var pp float64
		for iter := 0; iter < 200; iter++ {
			p1 := pim4
			p2 := 0.0
			for j := 0; j < n; j++ {
				p3 := p2
				p2 = p1
				p1 = z*math.Sqrt(2/float64(j+1))*p2 - math.Sqrt(float64(j)/float64(j+1))*p3
			}
			pp = math.Sqrt(2*float64(n)) * p2
			dz := p1 / pp
			z -= dz
			if math.Abs(dz) < 1e-15 {
				break
			}
		}
		gh.nodes[i] = z
		gh.nodes[n-1-i] = -z
		gh.weights[i] = 2 / (pp * pp)
		gh.weights[n-1-i] = gh.weights[i]
	}
	return gh, nil
}

// MustGaussHermite is like NewGaussHermite but panics on invalid input.
func MustGaussHermite(n int) *GaussHermite {
	gh, err := NewGaussHermite(n)
	if err != nil {
		panic(err)
	}
	return gh
}

// N reports the number of nodes in the rule.
func (gh *GaussHermite) N() int { return len(gh.nodes) }

// ExpectNormal approximates E[f(Z)] for Z ~ N(mean, sd^2) using the
// substitution z = mean + sqrt(2)*sd*x, which turns the Gaussian expectation
// into the Hermite weight. sd must be positive.
func (gh *GaussHermite) ExpectNormal(f Func1, mean, sd float64) float64 {
	invSqrtPi := 1 / math.Sqrt(math.Pi)
	var sum float64
	for i, x := range gh.nodes {
		sum += gh.weights[i] * f(mean+math.Sqrt2*sd*x)
	}
	return invSqrtPi * sum
}

// ExpectLogNormal approximates E[f(Y)] where ln Y ~ N(mu, sd^2).
func (gh *GaussHermite) ExpectLogNormal(f Func1, mu, sd float64) float64 {
	return gh.ExpectNormal(func(z float64) float64 { return f(math.Exp(z)) }, mu, sd)
}

// AdaptiveSimpson integrates f over [a, b] with the adaptive Simpson scheme
// to absolute tolerance tol (per sub-interval, with the usual Richardson
// correction). maxDepth bounds the recursion; 30 is ample for the smooth
// integrands in this repository.
func AdaptiveSimpson(f Func1, a, b, tol float64, maxDepth int) float64 {
	if a == b {
		return 0
	}
	c := 0.5 * (a + b)
	fa, fb, fc := f(a), f(b), f(c)
	whole := simpsonRule(a, b, fa, fc, fb)
	return adaptiveSimpsonAux(f, a, b, tol, whole, fa, fb, fc, maxDepth)
}

func simpsonRule(a, b, fa, fm, fb float64) float64 {
	return (b - a) / 6 * (fa + 4*fm + fb)
}

func adaptiveSimpsonAux(f Func1, a, b, tol, whole, fa, fb, fm float64, depth int) float64 {
	c := 0.5 * (a + b)
	lm := 0.5 * (a + c)
	rm := 0.5 * (c + b)
	flm, frm := f(lm), f(rm)
	left := simpsonRule(a, c, fa, flm, fm)
	right := simpsonRule(c, b, fm, frm, fb)
	if depth <= 0 || math.Abs(left+right-whole) <= 15*tol {
		return left + right + (left+right-whole)/15
	}
	return adaptiveSimpsonAux(f, a, c, tol/2, left, fa, fm, flm, depth-1) +
		adaptiveSimpsonAux(f, c, b, tol/2, right, fm, fb, frm, depth-1)
}
