package mathx

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestBisect(t *testing.T) {
	tests := []struct {
		name string
		f    Func1
		a, b float64
		want float64
	}{
		{"linear", func(x float64) float64 { return x - 1 }, 0, 3, 1},
		{"cos", math.Cos, 0, 3, math.Pi / 2},
		{"cubic", func(x float64) float64 { return x*x*x - 8 }, 0, 5, 2},
		{"endpointA", func(x float64) float64 { return x }, 0, 1, 0},
		{"endpointB", func(x float64) float64 { return x - 1 }, 0, 1, 1},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, err := Bisect(tt.f, tt.a, tt.b, 1e-12)
			if err != nil {
				t.Fatalf("Bisect: %v", err)
			}
			if !almostEqual(got, tt.want, 1e-10) {
				t.Errorf("Bisect = %.12f, want %.12f", got, tt.want)
			}
		})
	}
}

func TestBisectNoBracket(t *testing.T) {
	_, err := Bisect(func(x float64) float64 { return x*x + 1 }, -1, 1, 1e-10)
	if !errors.Is(err, ErrNoBracket) {
		t.Errorf("error = %v, want ErrNoBracket", err)
	}
}

func TestBrent(t *testing.T) {
	tests := []struct {
		name string
		f    Func1
		a, b float64
		want float64
	}{
		{"linear", func(x float64) float64 { return 2*x - 3 }, 0, 5, 1.5},
		{"cos", math.Cos, 0, 3, math.Pi / 2},
		{"exp", func(x float64) float64 { return math.Exp(x) - 2 }, 0, 2, math.Ln2},
		{"flatish", func(x float64) float64 { return math.Pow(x-1, 3) }, 0, 3, 1},
		{"endpointA", func(x float64) float64 { return x }, 0, 1, 0},
		{"endpointB", func(x float64) float64 { return x - 1 }, 0.5, 1, 1},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, err := Brent(tt.f, tt.a, tt.b, 1e-13)
			if err != nil {
				t.Fatalf("Brent: %v", err)
			}
			if !almostEqual(got, tt.want, 1e-7) {
				t.Errorf("Brent = %.12f, want %.12f", got, tt.want)
			}
		})
	}
}

func TestBrentNoBracket(t *testing.T) {
	_, err := Brent(func(x float64) float64 { return 1 + x*x }, -2, 2, 1e-10)
	if !errors.Is(err, ErrNoBracket) {
		t.Errorf("error = %v, want ErrNoBracket", err)
	}
}

func TestBrentFindsLinearRootExactly(t *testing.T) {
	// Property: for random lines with a sign change, Brent recovers the root.
	err := quick.Check(func(m, c float64) bool {
		slope := 1 + math.Abs(m) // keep slope away from zero
		root := c
		f := func(x float64) float64 { return slope * (x - root) }
		lo, hi := root-5, root+7
		got, err := Brent(f, lo, hi, 1e-13)
		return err == nil && math.Abs(got-root) < 1e-7
	}, &quick.Config{MaxCount: 200})
	if err != nil {
		t.Error(err)
	}
}

func TestFindAllRoots(t *testing.T) {
	tests := []struct {
		name string
		f    Func1
		a, b float64
		n    int
		want []float64
	}{
		{
			name: "cubicThreeRoots",
			f:    func(x float64) float64 { return (x - 1) * (x - 2) * (x - 3) },
			a:    0, b: 4, n: 100,
			want: []float64{1, 2, 3},
		},
		{
			name: "sine",
			f:    math.Sin,
			a:    0.5, b: 7, n: 200,
			want: []float64{math.Pi, 2 * math.Pi},
		},
		{
			name: "noRoots",
			f:    func(x float64) float64 { return x*x + 1 },
			a:    -3, b: 3, n: 50,
			want: nil,
		},
		{
			name: "singleRoot",
			f:    func(x float64) float64 { return x - 0.25 },
			a:    0, b: 1, n: 10,
			want: []float64{0.25},
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := FindAllRoots(tt.f, tt.a, tt.b, tt.n, 1e-12)
			if len(got) != len(tt.want) {
				t.Fatalf("found %d roots %v, want %d %v", len(got), got, len(tt.want), tt.want)
			}
			for i := range got {
				if !almostEqual(got[i], tt.want[i], 1e-7) {
					t.Errorf("root[%d] = %.12f, want %.12f", i, got[i], tt.want[i])
				}
			}
		})
	}
}

func TestFindAllRootsDegenerateInput(t *testing.T) {
	if got := FindAllRoots(math.Sin, 1, 0, 10, 1e-10); got != nil {
		t.Errorf("reversed interval: got %v, want nil", got)
	}
	if got := FindAllRoots(math.Sin, 0, 1, 0, 1e-10); got != nil {
		t.Errorf("zero panels: got %v, want nil", got)
	}
}

func TestLogSpace(t *testing.T) {
	got := LogSpace(1, 100, 3)
	want := []float64{1, 10, 100}
	for i := range want {
		if !almostEqual(got[i], want[i], 1e-12) {
			t.Errorf("LogSpace[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	if LogSpace(-1, 10, 5) != nil {
		t.Error("LogSpace with negative endpoint should be nil")
	}
	if LogSpace(1, 10, 1) != nil {
		t.Error("LogSpace with n<2 should be nil")
	}
}

func TestLinSpace(t *testing.T) {
	got := LinSpace(0, 1, 5)
	want := []float64{0, 0.25, 0.5, 0.75, 1}
	for i := range want {
		if !almostEqual(got[i], want[i], 1e-15) {
			t.Errorf("LinSpace[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	if LinSpace(0, 1, 1) != nil {
		t.Error("LinSpace with n<2 should be nil")
	}
}

func TestLogSpaceMonotone(t *testing.T) {
	err := quick.Check(func(a, span float64) bool {
		lo := 0.01 + math.Mod(math.Abs(a), 1e6)
		hi := lo * (1.5 + math.Mod(math.Abs(span), 1e3))
		pts := LogSpace(lo, hi, 17)
		for i := 1; i < len(pts); i++ {
			if pts[i] <= pts[i-1] {
				return false
			}
		}
		return pts[0] == lo && pts[len(pts)-1] == hi
	}, &quick.Config{MaxCount: 200})
	if err != nil {
		t.Error(err)
	}
}
