package mathx

import "math"

// invPhi is the inverse golden ratio used by the golden-section search.
const invPhi = 0.6180339887498949

// GoldenMin locates a local minimum of f on [a, b] by golden-section search
// to argument tolerance tol. It returns the abscissa of the minimum.
func GoldenMin(f Func1, a, b, tol float64) float64 {
	x1 := b - invPhi*(b-a)
	x2 := a + invPhi*(b-a)
	f1, f2 := f(x1), f(x2)
	for b-a > tol {
		if f1 < f2 {
			b, x2, f2 = x2, x1, f1
			x1 = b - invPhi*(b-a)
			f1 = f(x1)
		} else {
			a, x1, f1 = x1, x2, f2
			x2 = a + invPhi*(b-a)
			f2 = f(x2)
		}
	}
	return 0.5 * (a + b)
}

// GoldenMax locates a local maximum of f on [a, b]; see GoldenMin.
func GoldenMax(f Func1, a, b, tol float64) float64 {
	return GoldenMin(func(x float64) float64 { return -f(x) }, a, b, tol)
}

// GridMax evaluates f on n+1 equally spaced points of [a, b], takes the best
// point, and refines with a golden-section search on the two neighbouring
// panels. It is robust to mild multi-modality as long as the global maximum's
// basin is wider than one panel. It returns the maximising argument and the
// maximum value.
func GridMax(f Func1, a, b float64, n int, tol float64) (argmax, max float64) {
	if n < 2 {
		n = 2
	}
	bestI := 0
	bestV := math.Inf(-1)
	h := (b - a) / float64(n)
	for i := 0; i <= n; i++ {
		x := a + float64(i)*h
		if v := f(x); v > bestV {
			bestV, bestI = v, i
		}
	}
	lo := a + float64(bestI-1)*h
	hi := a + float64(bestI+1)*h
	if lo < a {
		lo = a
	}
	if hi > b {
		hi = b
	}
	x := GoldenMax(f, lo, hi, tol)
	v := f(x)
	if bestV > v { // grid point was better than the refined point (flat region)
		return a + float64(bestI)*h, bestV
	}
	return x, v
}

// Clamp restricts x to the closed interval [lo, hi].
func Clamp(x, lo, hi float64) float64 {
	switch {
	case x < lo:
		return lo
	case x > hi:
		return hi
	default:
		return x
	}
}
