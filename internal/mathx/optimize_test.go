package mathx

import (
	"math"
	"testing"
	"testing/quick"
)

func TestGoldenMin(t *testing.T) {
	tests := []struct {
		name string
		f    Func1
		a, b float64
		want float64
	}{
		{"parabola", func(x float64) float64 { return (x - 2) * (x - 2) }, 0, 5, 2},
		{"cosh", math.Cosh, -3, 4, 0},
		{"quartic", func(x float64) float64 { return math.Pow(x+1, 4) }, -4, 3, -1},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := GoldenMin(tt.f, tt.a, tt.b, 1e-10)
			if !almostEqual(got, tt.want, 1e-6) {
				t.Errorf("GoldenMin = %.10f, want %.10f", got, tt.want)
			}
		})
	}
}

func TestGoldenMax(t *testing.T) {
	got := GoldenMax(func(x float64) float64 { return -(x - 1.5) * (x - 1.5) }, -10, 10, 1e-10)
	if !almostEqual(got, 1.5, 1e-6) {
		t.Errorf("GoldenMax = %.10f, want 1.5", got)
	}
}

func TestGridMax(t *testing.T) {
	tests := []struct {
		name    string
		f       Func1
		a, b    float64
		wantArg float64
	}{
		{
			name: "bimodalFindsGlobal",
			// Two humps; the right one at x=3 is taller.
			f: func(x float64) float64 {
				return math.Exp(-4*(x+2)*(x+2)) + 1.2*math.Exp(-4*(x-3)*(x-3))
			},
			a: -5, b: 5, wantArg: 3,
		},
		{
			name: "boundaryMaximum",
			f:    func(x float64) float64 { return x },
			a:    0, b: 2, wantArg: 2,
		},
		{
			name: "concave",
			f:    func(x float64) float64 { return -x * x },
			a:    -1, b: 4, wantArg: 0,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			arg, val := GridMax(tt.f, tt.a, tt.b, 64, 1e-10)
			if !almostEqual(arg, tt.wantArg, 1e-5) {
				t.Errorf("GridMax arg = %.10f, want %.10f", arg, tt.wantArg)
			}
			if !almostEqual(val, tt.f(tt.wantArg), 1e-8) {
				t.Errorf("GridMax val = %.10f, want %.10f", val, tt.f(tt.wantArg))
			}
		})
	}
}

func TestGridMaxValueIsAttained(t *testing.T) {
	// Property: the reported maximum equals f at the reported argmax and is
	// at least as large as f on a random probe point.
	f := func(x float64) float64 { return math.Sin(3*x) * math.Exp(-0.1*x*x) }
	arg, val := GridMax(f, -4, 4, 200, 1e-12)
	if !almostEqual(val, f(arg), 1e-12) {
		t.Fatalf("val=%v but f(arg)=%v", val, f(arg))
	}
	err := quick.Check(func(u float64) bool {
		x := Clamp(math.Mod(math.Abs(u), 8)-4, -4, 4)
		return f(x) <= val+1e-9
	}, &quick.Config{MaxCount: 500})
	if err != nil {
		t.Error(err)
	}
}

func TestClamp(t *testing.T) {
	tests := []struct {
		x, lo, hi, want float64
	}{
		{0.5, 0, 1, 0.5},
		{-1, 0, 1, 0},
		{2, 0, 1, 1},
		{0, 0, 0, 0},
	}
	for _, tt := range tests {
		if got := Clamp(tt.x, tt.lo, tt.hi); got != tt.want {
			t.Errorf("Clamp(%v, %v, %v) = %v, want %v", tt.x, tt.lo, tt.hi, got, tt.want)
		}
	}
}
