package mathx

import "repro/internal/memo"

// Process-wide quadrature-table caches. Node/weight tables are pure
// functions of the order and immutable after construction, so one table per
// order can be shared by every Model and worker in the process; reads after
// first construction are lock-free. The Newton construction of a 64-point
// rule costs tens of microseconds — per grid-scan point, it used to be a
// measurable slice of every figure sweep.
var (
	sharedGL memo.Map[int, *GaussLegendre]
	sharedGH memo.Map[int, *GaussHermite]
)

// SharedGaussLegendre returns the process-wide n-point Gauss–Legendre rule,
// computing it on first use. The returned rule is shared: it is safe for
// concurrent use (all methods are read-only) and must not be mutated.
// It panics on n <= 0, like MustGaussLegendre.
func SharedGaussLegendre(n int) *GaussLegendre {
	return sharedGL.Do(n, func() *GaussLegendre { return MustGaussLegendre(n) })
}

// SharedGaussHermite returns the process-wide n-point Gauss–Hermite rule,
// computing it on first use. The same sharing contract as
// SharedGaussLegendre applies.
func SharedGaussHermite(n int) *GaussHermite {
	return sharedGH.Do(n, func() *GaussHermite { return MustGaussHermite(n) })
}

// QuadCacheStats reports the hit/miss counters of the shared quadrature
// table caches (Legendre then Hermite), for cache introspection tooling.
func QuadCacheStats() (glHits, glMisses, ghHits, ghMisses uint64) {
	glHits, glMisses = sharedGL.Stats()
	ghHits, ghMisses = sharedGH.Stats()
	return
}
