package qmc

import (
	"fmt"
	"math"

	"repro/internal/lazyrng"
)

// MaxDim is the largest supported Sobol dimension: one dimension per
// price increment of a simulated path, with generous headroom over the
// two to three increments a protocol path actually consumes.
const MaxDim = 8

// sobolBits is the point-index resolution: indices are 32-bit, matching
// the vendored direction-number tables.
const sobolBits = 32

// joeKuo holds the vendored direction-number parameters of dimensions
// 2..MaxDim — the (s, a, m) rows of Joe & Kuo's new-joe-kuo-6.21201
// table (https://web.maths.unsw.edu.au/~fkuo/sobol/, BSD-licensed data;
// vendored like lazyrng's cooked table so the package stays
// stdlib-only). Dimension 1 is the van der Corput sequence and needs no
// parameters.
var joeKuo = []struct {
	s uint // degree of the primitive polynomial
	a uint // polynomial coefficient bits a_1..a_{s-1}
	m []uint32
}{
	{1, 0, []uint32{1}},
	{2, 1, []uint32{1, 3}},
	{3, 1, []uint32{1, 3, 1}},
	{3, 2, []uint32{1, 1, 1}},
	{4, 1, []uint32{1, 1, 3, 3}},
	{4, 4, []uint32{1, 3, 5, 13}},
	{5, 2, []uint32{1, 1, 5, 5, 17}},
}

// directions precomputes the 32 direction numbers of every supported
// dimension once at init (MaxDim × 32 uint32s — smaller than one lazyrng
// vector).
var directions [MaxDim][sobolBits]uint32

func init() {
	// Dimension 1: v_j = 2^(31-j), the van der Corput radical inverse.
	for j := 0; j < sobolBits; j++ {
		directions[0][j] = 1 << (31 - j)
	}
	for d, p := range joeKuo {
		v := &directions[d+1]
		s := int(p.s)
		for j := 0; j < s && j < sobolBits; j++ {
			v[j] = p.m[j] << (31 - j)
		}
		for j := s; j < sobolBits; j++ {
			v[j] = v[j-s] ^ (v[j-s] >> s)
			for k := 1; k < s; k++ {
				if (p.a>>(s-1-k))&1 == 1 {
					v[j] ^= v[j-k]
				}
			}
		}
	}
}

// Sobol is one randomization of the Sobol sequence: the deterministic
// digital net XORed with a per-dimension random digital shift derived
// from the scramble seed. Distinct seeds give independent randomizations
// whose estimates can be averaged and error-estimated (the engine's
// replicate CI); seed 0 is a valid shift like any other. Point access is
// random-access by index, so workers need no shared iterator state.
// A Sobol value is immutable after construction and safe for concurrent
// readers.
type Sobol struct {
	dim   int
	shift [MaxDim]uint32
}

// NewSobol builds a dim-dimensional randomization with the given
// scramble seed. dim must be in [1, MaxDim].
func NewSobol(dim int, scrambleSeed int64) (*Sobol, error) {
	if dim < 1 || dim > MaxDim {
		return nil, fmt.Errorf("qmc: sobol dimension %d out of range [1, %d]", dim, MaxDim)
	}
	s := &Sobol{dim: dim}
	mix := lazyrng.NewSplitMix(scrambleSeed)
	for d := 0; d < dim; d++ {
		s.shift[d] = uint32(mix.Uint64() >> 32)
	}
	return s, nil
}

// Dim returns the point dimension.
func (s *Sobol) Dim() int { return s.dim }

// Point fills u[:Dim()] with the shifted point at the given index, each
// coordinate in (0, 1): the raw 32-bit digits are offset by half an ulp
// so the normal quantile map never sees an endpoint. Indices follow the
// canonical Gray-code ordering (the sequence the iterative x ^= v[ctz]
// construction produces), so every dyadic prefix is the published net.
// u must have at least Dim() capacity.
func (s *Sobol) Point(index uint32, u []float64) {
	const scale = 1.0 / (1 << sobolBits)
	gray := index ^ (index >> 1)
	u = u[:s.dim]
	for d := range u {
		var x uint32
		v := &directions[d]
		for j, k := 0, gray; k != 0; j, k = j+1, k>>1 {
			if k&1 == 1 {
				x ^= v[j]
			}
		}
		u[d] = (float64(x^s.shift[d]) + 0.5) * scale
	}
}

// Normals fills z[:Dim()] with the point at index mapped through the
// standard normal quantile Φ⁻¹ — the slab of increments a batched GBM
// path consumes. z must have at least Dim() capacity.
func (s *Sobol) Normals(index uint32, z []float64) {
	s.Point(index, z[:s.dim])
	for d, u := range z[:s.dim] {
		z[d] = math.Sqrt2 * math.Erfinv(2*u-1)
	}
}
