package qmc

import (
	"math"
	"math/rand"
	"testing"
)

func TestParseMode(t *testing.T) {
	cases := []struct {
		in   string
		want Mode
		ok   bool
	}{
		{"", ModePseudo, true},
		{"pseudo", ModePseudo, true},
		{"antithetic", ModeAntithetic, true},
		{"sobol", ModeSobol, true},
		{"halton", "", false},
		{"Sobol", "", false},
	}
	for _, c := range cases {
		got, err := ParseMode(c.in)
		if c.ok != (err == nil) {
			t.Errorf("ParseMode(%q): err=%v, want ok=%v", c.in, err, c.ok)
			continue
		}
		if c.ok && got != c.want {
			t.Errorf("ParseMode(%q) = %q, want %q", c.in, got, c.want)
		}
	}
	if Mode("").String() != "pseudo" {
		t.Errorf("zero Mode renders %q, want pseudo", Mode("").String())
	}
	if len(Modes()) != 3 {
		t.Errorf("Modes() = %v, want 3 entries", Modes())
	}
}

func TestPairMapping(t *testing.T) {
	for _, c := range []struct {
		index, base int
		neg         bool
	}{{0, 0, false}, {1, 0, true}, {2, 2, false}, {3, 2, true}, {100, 100, false}, {101, 100, true}} {
		if got := PairBase(c.index); got != c.base {
			t.Errorf("PairBase(%d) = %d, want %d", c.index, got, c.base)
		}
		if got := PairNegated(c.index); got != c.neg {
			t.Errorf("PairNegated(%d) = %v, want %v", c.index, got, c.neg)
		}
	}
}

// unscrambled returns a Sobol randomization with the digital shift
// zeroed, exposing the raw canonical sequence for pinning tests.
func unscrambled(t *testing.T, dim int) *Sobol {
	t.Helper()
	s, err := NewSobol(dim, 1)
	if err != nil {
		t.Fatal(err)
	}
	s.shift = [MaxDim]uint32{}
	return s
}

// TestSobolCanonicalPrefix pins the generator to the canonical sequence
// where the values are independently derivable: the full first-8-point
// prefix of dimensions 1 and 2 (the textbook van der Corput and s=1
// columns), and the point-2 coordinate of every dimension, which is
// 0.75 when the vendored m₂ is 1 and 0.25 when it is 3 (x = v₀ ⊕ v₁).
func TestSobolCanonicalPrefix(t *testing.T) {
	s := unscrambled(t, MaxDim)
	const offset = 0.5 / (1 << 32)
	u := make([]float64, MaxDim)

	dim12 := [][2]float64{
		{0, 0}, {0.5, 0.5}, {0.75, 0.25}, {0.25, 0.75},
		{0.375, 0.375}, {0.875, 0.875}, {0.625, 0.125}, {0.125, 0.625},
	}
	for i, row := range dim12 {
		s.Point(uint32(i), u)
		for d, w := range row {
			if got := u[d] - offset; math.Abs(got-w) > 1e-12 {
				t.Errorf("point %d dim %d = %.12f, want %.12f", i, d+1, got, w)
			}
		}
	}

	// Point 2 (Gray code 11b) of dimension d is m₁<<31 ⊕ m₂<<30.
	point2 := []float64{0.75, 0.25, 0.25, 0.25, 0.75, 0.75, 0.25, 0.75}
	s.Point(2, u)
	for d, w := range point2 {
		if got := u[d] - offset; math.Abs(got-w) > 1e-12 {
			t.Errorf("point 2 dim %d = %.12f, want %.12f", d+1, got, w)
		}
	}
}

// TestSobolMatchesIterativeConstruction cross-checks the random-access
// generator against an independently coded classic recurrence
// x_{k+1} = x_k ⊕ v_{ctz(k+1)} over the same direction numbers: the two
// code paths must agree on every point of a long prefix in every
// dimension.
func TestSobolMatchesIterativeConstruction(t *testing.T) {
	s := unscrambled(t, MaxDim)
	const n = 1 << 10
	var x [MaxDim]uint32
	u := make([]float64, MaxDim)
	const scale = 1.0 / (1 << 32)
	for k := 0; k < n; k++ {
		s.Point(uint32(k), u)
		for d := 0; d < MaxDim; d++ {
			if want := (float64(x[d]) + 0.5) * scale; u[d] != want {
				t.Fatalf("point %d dim %d: random access %v != iterative %v", k, d+1, u[d], want)
			}
		}
		// Advance the recurrence: XOR in v[ctz(k+1)] per dimension.
		c := 0
		for m := k + 1; m&1 == 0; m >>= 1 {
			c++
		}
		for d := 0; d < MaxDim; d++ {
			x[d] ^= directions[d][c]
		}
	}
}

// TestSobolStratified checks the defining net property on a dyadic
// prefix, which the digital shift preserves: among the first 2^m points,
// every dimension puts exactly one point in each interval [i/2^m,
// (i+1)/2^m).
func TestSobolStratified(t *testing.T) {
	const m = 8
	const n = 1 << m
	for _, seed := range []int64{0, 1, 42, -7} {
		s, err := NewSobol(MaxDim, seed)
		if err != nil {
			t.Fatal(err)
		}
		var u [MaxDim]float64
		for d := 0; d < MaxDim; d++ {
			var hits [n]int
			for i := 0; i < n; i++ {
				s.Point(uint32(i), u[:])
				hits[int(u[d]*n)]++
			}
			for cell, c := range hits {
				if c != 1 {
					t.Fatalf("seed %d dim %d: cell %d/%d holds %d points, want 1", seed, d+1, cell, n, c)
				}
			}
		}
	}
}

// TestSobolRange checks coordinates stay inside (0, 1) across seeds and
// a spread of indices, including the extremes of the 32-bit index space.
func TestSobolRange(t *testing.T) {
	idxs := []uint32{0, 1, 2, 3, 255, 1 << 16, 1<<32 - 2, 1<<32 - 1}
	var u [MaxDim]float64
	for _, seed := range []int64{0, 5, 123456789} {
		s, err := NewSobol(MaxDim, seed)
		if err != nil {
			t.Fatal(err)
		}
		for _, i := range idxs {
			s.Point(i, u[:])
			for d, x := range u {
				if !(x > 0 && x < 1) {
					t.Errorf("seed %d point %d dim %d = %v out of (0,1)", seed, i, d+1, x)
				}
			}
		}
	}
}

// TestSobolDistinctIndices checks injectivity of the first dimension:
// distinct indices map to distinct coordinates (the generator matrix is
// invertible, and the digital shift is a bijection).
func TestSobolDistinctIndices(t *testing.T) {
	s, err := NewSobol(1, 99)
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[float64]uint32, 1<<12)
	var u [1]float64
	for i := uint32(0); i < 1<<12; i++ {
		s.Point(i, u[:])
		if prev, dup := seen[u[0]]; dup {
			t.Fatalf("indices %d and %d collide at %v", prev, i, u[0])
		}
		seen[u[0]] = i
	}
}

// TestSobolSeedsDiffer checks that distinct scramble seeds produce
// different randomizations (the replicate CI is degenerate otherwise).
func TestSobolSeedsDiffer(t *testing.T) {
	a, err := NewSobol(MaxDim, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewSobol(MaxDim, 2)
	if err != nil {
		t.Fatal(err)
	}
	var ua, ub [MaxDim]float64
	a.Point(7, ua[:])
	b.Point(7, ub[:])
	if ua == ub {
		t.Error("seeds 1 and 2 produced identical shifted points")
	}
}

func TestSobolDimValidation(t *testing.T) {
	for _, dim := range []int{0, -1, MaxDim + 1} {
		if _, err := NewSobol(dim, 1); err == nil {
			t.Errorf("NewSobol(%d) accepted an out-of-range dimension", dim)
		}
	}
	s, err := NewSobol(3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if s.Dim() != 3 {
		t.Errorf("Dim() = %d, want 3", s.Dim())
	}
}

// TestNormalsMatchQuantile checks Normals is exactly the quantile map of
// Point, and that the values are finite standard-normal-ish.
func TestNormalsMatchQuantile(t *testing.T) {
	s, err := NewSobol(MaxDim, 3)
	if err != nil {
		t.Fatal(err)
	}
	var u, z [MaxDim]float64
	for i := uint32(0); i < 64; i++ {
		s.Point(i, u[:])
		s.Normals(i, z[:])
		for d := range u {
			want := math.Sqrt2 * math.Erfinv(2*u[d]-1)
			if z[d] != want {
				t.Fatalf("point %d dim %d: Normals %v != Φ⁻¹(Point) %v", i, d+1, z[d], want)
			}
			if math.IsNaN(z[d]) || math.IsInf(z[d], 0) {
				t.Fatalf("point %d dim %d: non-finite normal %v", i, d+1, z[d])
			}
		}
	}
}

// TestSobolIntegrationBeatsMC compares integration error on a smooth
// test integrand against plain Monte Carlo at the same sample size: the
// low-discrepancy estimate must land at least 4x closer across
// replicated randomizations. The integrand is Π(1 + (u_d − ½)) over 4
// dims, exact integral 1.
func TestSobolIntegrationBeatsMC(t *testing.T) {
	const (
		dim  = 4
		n    = 1 << 11
		reps = 8
	)
	integrand := func(u []float64) float64 {
		f := 1.0
		for d := 0; d < dim; d++ {
			f *= 1 + (u[d] - 0.5)
		}
		return f
	}
	var qmcErr, mcErr float64
	u := make([]float64, dim)
	for r := 0; r < reps; r++ {
		s, err := NewSobol(dim, int64(r+1))
		if err != nil {
			t.Fatal(err)
		}
		var sum float64
		for i := 0; i < n; i++ {
			s.Point(uint32(i), u)
			sum += integrand(u)
		}
		qmcErr += math.Abs(sum/n - 1)

		rng := rand.New(rand.NewSource(int64(1000 + r)))
		sum = 0
		for i := 0; i < n; i++ {
			for d := range u {
				u[d] = rng.Float64()
			}
			sum += integrand(u)
		}
		mcErr += math.Abs(sum/n - 1)
	}
	if qmcErr*4 > mcErr {
		t.Errorf("mean |error|: sobol %.3g vs MC %.3g — expected ≥4x improvement", qmcErr/reps, mcErr/reps)
	}
}
