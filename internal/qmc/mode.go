// Package qmc provides the variance-reduction sampling layer of the Monte
// Carlo engine: the sampler-mode vocabulary shared by every layer that
// names one (engine config, batch runner, CLIs, RPC params), an
// antithetic-pair index mapping, and a scrambled Sobol low-discrepancy
// sequence with vendored direction numbers (stdlib-only, like lazyrng's
// cooked table).
//
// The three modes trade structure for statistical efficiency:
//
//   - Pseudo is the repository's historical sampler — lazily seeded
//     math/rand-compatible draws — and stays the golden default: every
//     committed artifact pins its stream byte-for-byte.
//   - Antithetic runs paths in pairs (2k, 2k+1) that share a price-path
//     seed with the sign of every normal increment flipped on the odd
//     path. When the outcome is monotone in the increments the pair
//     members are negatively correlated and the pair mean has
//     below-binomial variance; on two-sided (band-shaped) success
//     regions — like the swap game, where one agent stops on a falling
//     price and the other on a rising one — the pair correlation can be
//     positive and the mode loses to pseudo (see DESIGN.md, "Sampling
//     modes").
//   - Sobol replaces the price increments with a digitally shifted Sobol
//     sequence mapped through the normal quantile, run as R independent
//     randomizations (replicates) so the estimator keeps an unbiased,
//     assumption-free error estimate (Owen-style randomized QMC).
package qmc

import (
	"errors"
	"fmt"
)

// ErrBadMode reports an unrecognised sampler mode.
var ErrBadMode = errors.New("qmc: unknown sampler mode")

// Mode names a sampling strategy. The zero value is ModePseudo, so every
// existing configuration keeps the golden default without changes.
type Mode string

// The registered sampler modes.
const (
	// ModePseudo is plain pseudo-random sampling (the golden default).
	ModePseudo Mode = "pseudo"
	// ModeAntithetic samples antithetic pairs: path 2k+1 replays path
	// 2k's price increments with flipped signs.
	ModeAntithetic Mode = "antithetic"
	// ModeSobol samples price increments from a scrambled Sobol sequence
	// in replicated randomizations.
	ModeSobol Mode = "sobol"
)

// Modes lists the registered modes in presentation order.
func Modes() []Mode { return []Mode{ModePseudo, ModeAntithetic, ModeSobol} }

// ParseMode resolves a mode name; "" resolves to ModePseudo so untouched
// configurations keep the default.
func ParseMode(s string) (Mode, error) {
	switch Mode(s) {
	case "", ModePseudo:
		return ModePseudo, nil
	case ModeAntithetic:
		return ModeAntithetic, nil
	case ModeSobol:
		return ModeSobol, nil
	}
	return "", fmt.Errorf("%w: %q (have pseudo, antithetic, sobol)", ErrBadMode, s)
}

// Canon returns the canonical spelling of m ("" canonicalises to
// "pseudo"); it errors like ParseMode on unknown modes.
func (m Mode) Canon() (Mode, error) { return ParseMode(string(m)) }

// String renders the canonical name (the zero value prints "pseudo").
func (m Mode) String() string {
	if m == "" {
		return string(ModePseudo)
	}
	return string(m)
}

// VarianceReduced reports whether the mode carries its own estimator CI:
// raw-count Wilson intervals cannot see variance reduction (they observe
// only successes out of n), so antithetic and Sobol runs stop on a
// sampler-aware interval instead.
func (m Mode) VarianceReduced() bool { return m == ModeAntithetic || m == ModeSobol }

// PairBase maps a path index to the index whose price-path seed it
// shares under antithetic pairing: the even member of its (2k, 2k+1)
// pair.
func PairBase(index int) int { return index &^ 1 }

// PairNegated reports whether the path at index replays its pair base
// with flipped increment signs (the odd pair member).
func PairNegated(index int) bool { return index&1 == 1 }

// SobolReplicates is the number of independent randomizations a
// sobol-mode run interleaves. Path i belongs to replicate
// SobolReplicate(i) at point SobolPoint(i), so every prefix of the path
// stream spreads evenly over the replicates and the spread of replicate
// means yields an unbiased error estimate (Owen-style randomized QMC)
// with SobolReplicates−1 degrees of freedom.
const SobolReplicates = 8

// SobolReplicate maps a path index to its randomization replicate.
func SobolReplicate(index int) int { return index % SobolReplicates }

// SobolPoint maps a path index to its point index within its replicate's
// Sobol sequence.
func SobolPoint(index int) uint32 { return uint32(index / SobolReplicates) }
