package qmc

import "testing"

// FuzzSobol drives Point with arbitrary (seed, dimension, index) inputs
// and checks the structural invariants the engine depends on: every
// coordinate stays strictly inside (0, 1), repeated evaluation is
// deterministic, and distinct nearby indices never collide in the first
// dimension (the generator matrix is invertible and the digital shift a
// bijection).
func FuzzSobol(f *testing.F) {
	f.Add(int64(1), uint(4), uint32(0))
	f.Add(int64(0), uint(1), uint32(1)<<31)
	f.Add(int64(-9), uint(8), uint32(1<<32-1))
	f.Add(int64(42), uint(3), uint32(12345))
	f.Fuzz(func(t *testing.T, seed int64, dim uint, index uint32) {
		d := int(dim%MaxDim) + 1
		s, err := NewSobol(d, seed)
		if err != nil {
			t.Fatalf("NewSobol(%d, %d): %v", d, seed, err)
		}
		u := make([]float64, d)
		s.Point(index, u)
		for c, x := range u {
			if !(x > 0 && x < 1) {
				t.Fatalf("seed %d dim %d index %d: coordinate %d = %v out of (0,1)", seed, d, index, c+1, x)
			}
		}
		again := make([]float64, d)
		s.Point(index, again)
		for c := range u {
			if u[c] != again[c] {
				t.Fatalf("seed %d dim %d index %d: non-deterministic coordinate %d", seed, d, index, c+1)
			}
		}
		// First-dimension injectivity over a window of neighbours.
		first := map[float64]uint32{u[0]: index}
		for off := uint32(1); off <= 8; off++ {
			j := index + off // wraps mod 2^32; still distinct from index
			s.Point(j, again)
			if prev, dup := first[again[0]]; dup && prev != j {
				t.Fatalf("seed %d: indices %d and %d collide in dim 1 at %v", seed, prev, j, again[0])
			}
			first[again[0]] = j
		}
	})
}
