package config

import (
	"encoding/json"
	"math"
	"strings"
	"testing"
)

func TestProfilesValidateAndLookup(t *testing.T) {
	for _, c := range Profiles() {
		if err := c.Validate(); err != nil {
			t.Errorf("profile %s: %v", c.Name, err)
		}
		got, err := Lookup(c.Name)
		if err != nil || got != c {
			t.Errorf("Lookup(%s) = %+v, %v", c.Name, got, err)
		}
	}
	if _, err := Lookup("sol"); err == nil {
		t.Error("Lookup of an unregistered chain should error")
	}
}

func TestConfHoursQuantizesUpToWholeBlocks(t *testing.T) {
	btc, _ := Lookup("btc")
	// 6 confirmations × 1.1 congestion = 6.6 blocks → 7 blocks of 10 min.
	if got, want := btc.ConfHours(1.1), 7*btc.BlockHours(); got != want {
		t.Errorf("ConfHours(1.1) = %g, want %g", got, want)
	}
	if got, want := btc.ConfHours(1), 1.0; got != want {
		t.Errorf("ConfHours(1) = %g, want %g (6 blocks × 10 min)", got, want)
	}
	// Quantization means tiny congestion differences inside one block snap
	// to the same latency — granularity is real, not a continuous knob.
	if btc.ConfHours(1.01) != btc.ConfHours(1.15) {
		t.Error("congestions within one block did not snap together")
	}
}

func TestValidateSpec(t *testing.T) {
	bad := []UniverseSpec{
		{Chains: []string{"btc"}, Samples: 4},
		{Chains: []string{"btc", "nope"}, Samples: 4},
		{Chains: []string{"btc", "btc"}, Samples: 4},
		{Chains: []string{"btc", "evm"}, Samples: 0},
		{Chains: []string{"btc", "evm"}, Samples: 4, MCRuns: -1},
	}
	for i, spec := range bad {
		if err := spec.Validate(); err == nil {
			t.Errorf("spec %d should be invalid: %+v", i, spec)
		}
	}
	ok := UniverseSpec{Chains: []string{"btc", "evm"}, Samples: 4, Seed: 1}
	if err := ok.Validate(); err != nil {
		t.Errorf("valid spec rejected: %v", err)
	}
}

func TestGenerateShapeAndValidity(t *testing.T) {
	spec := UniverseSpec{Chains: []string{"btc", "ltc", "evm"}, Samples: 5, Seed: 42}
	scs, err := spec.Generate()
	if err != nil {
		t.Fatal(err)
	}
	if len(scs) != spec.Cells() || spec.Cells() != 3*2*5 {
		t.Fatalf("generated %d cells, want %d", len(scs), spec.Cells())
	}
	names := make(map[string]bool, len(scs))
	for _, sc := range scs {
		if err := sc.Validate(); err != nil {
			t.Errorf("%s: %v", sc.Name, err)
		}
		if names[sc.Name] {
			t.Errorf("duplicate name %s", sc.Name)
		}
		names[sc.Name] = true
		c := sc.Params.Chains
		if c.EpsB >= c.TauB {
			t.Errorf("%s: Eq. 3 violated: eps %g >= tauB %g", sc.Name, c.EpsB, c.TauB)
		}
		if sc.Params.Price.Sigma < minSigma || sc.Params.Price.Sigma > maxSigma {
			t.Errorf("%s: sigma %g out of range", sc.Name, sc.Params.Price.Sigma)
		}
	}
	// Timelock granularity: every latency is a whole number of blocks.
	for _, sc := range scs {
		if !strings.HasPrefix(sc.Name, "u-btc-ltc-") {
			continue
		}
		ltc, _ := Lookup("ltc")
		blocks := sc.Params.Chains.TauB / ltc.BlockHours()
		if math.Abs(blocks-math.Round(blocks)) > 1e-9 {
			t.Errorf("%s: tauB %g is not whole ltc blocks", sc.Name, sc.Params.Chains.TauB)
		}
	}
}

func TestGenerateDeterministicAndSeedSensitive(t *testing.T) {
	spec := UniverseSpec{Chains: []string{"doge", "evm"}, Samples: 3, Seed: 7}
	a, err := spec.Generate()
	if err != nil {
		t.Fatal(err)
	}
	b, err := spec.Generate()
	if err != nil {
		t.Fatal(err)
	}
	ja, _ := json.Marshal(a)
	jb, _ := json.Marshal(b)
	if string(ja) != string(jb) {
		t.Fatal("same spec generated different universes")
	}
	spec.Seed = 8
	c, err := spec.Generate()
	if err != nil {
		t.Fatal(err)
	}
	jc, _ := json.Marshal(c)
	if string(ja) == string(jc) {
		t.Fatal("different seeds generated identical universes")
	}
}

// TestGenerateExtensionStability pins the decorrelated per-pair streams:
// adding a chain to the spec must not disturb the samples of pairs whose
// (a, b, pair index) are unchanged — the atlas relies on this so extending
// the universe re-solves only new cells.
func TestGenerateExtensionStability(t *testing.T) {
	small := UniverseSpec{Chains: []string{"btc", "ltc"}, Samples: 4, Seed: 5}
	big := UniverseSpec{Chains: []string{"btc", "ltc", "doge"}, Samples: 4, Seed: 5}
	a, err := small.Generate()
	if err != nil {
		t.Fatal(err)
	}
	b, err := big.Generate()
	if err != nil {
		t.Fatal(err)
	}
	byName := make(map[string]string, len(b))
	for _, sc := range b {
		j, _ := json.Marshal(sc.Params)
		byName[sc.Name] = string(j)
	}
	// btc↔ltc keep pair indices 0 and 1 in both specs (doge appends).
	for _, sc := range a {
		j, _ := json.Marshal(sc.Params)
		if got, ok := byName[sc.Name]; !ok || got != string(j) {
			t.Errorf("%s changed when the universe was extended", sc.Name)
		}
	}
}
