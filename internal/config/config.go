// Package config is the chain-profile layer under the generated scenario
// universe: named profiles of real chain families (block cadence,
// confirmation depth, relative fee level) and a deterministic generator
// that crosses ordered chain pairs with Sobol-sampled market parameters to
// produce thousands of scenario cells for the sweep atlas.
//
// A profile maps onto the paper's timing model directly: τ (TauA/TauB) is
// the chain's confirmation latency in hours — block time × confirmation
// depth, scaled by a sampled congestion multiplier and quantized *up* to
// whole blocks, because a chain cannot confirm in a fraction of a block
// (that quantization is what makes timelock granularity a real, per-chain
// effect rather than a continuous knob). ε_b is the mempool-discoverability
// latency on chain B, a small number of B-blocks, so Eq. 3 (ε_b < τ_b)
// holds by construction for every generated cell. Fee level scales the
// sampled success premium α: trading across expensive chains leaves less
// net premium for completing the swap.
package config

import (
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"math"

	"repro/internal/qmc"
	"repro/internal/scenario"
	"repro/internal/sweep"
	"repro/internal/utility"
)

// Errors returned by the package.
var (
	// ErrUnknownChain reports a chain name with no registered profile.
	ErrUnknownChain = errors.New("config: unknown chain profile")
	// ErrBadSpec reports an invalid universe specification.
	ErrBadSpec = errors.New("config: invalid universe spec")
)

// ChainProfile describes one chain family's operational characteristics —
// everything the scenario generator needs to turn "a swap between chain A
// and chain B" into the paper's timing parameters.
type ChainProfile struct {
	// Name identifies the profile ("btc", "evm").
	Name string `json:"name"`
	// BlockMinutes is the expected block interval in minutes. It is the
	// chain's timelock granularity: confirmation latencies are whole
	// multiples of it.
	BlockMinutes float64 `json:"blockMinutes"`
	// Confirmations is the depth at which a transaction is considered
	// final for swap purposes.
	Confirmations int `json:"confirmations"`
	// FeeLevel is the chain's relative on-chain cost level in (0, 1]: 1 is
	// cheap, lower is more expensive. It scales the sampled success
	// premium α of the agent transacting on the chain.
	FeeLevel float64 `json:"feeLevel"`
}

// Validate checks the profile's ranges.
func (c ChainProfile) Validate() error {
	if c.Name == "" {
		return fmt.Errorf("%w: empty name", ErrBadSpec)
	}
	if !(c.BlockMinutes > 0) || math.IsInf(c.BlockMinutes, 0) {
		return fmt.Errorf("%w: %s: blockMinutes=%g must be > 0", ErrBadSpec, c.Name, c.BlockMinutes)
	}
	if c.Confirmations < 6 {
		// ε_b is at most maxCongestion (4) B-blocks; ≥ 6 confirmation
		// blocks keeps ε_b < τ_b (Eq. 3) true by construction.
		return fmt.Errorf("%w: %s: confirmations=%d must be >= 6", ErrBadSpec, c.Name, c.Confirmations)
	}
	if !(c.FeeLevel > 0 && c.FeeLevel <= 1) {
		return fmt.Errorf("%w: %s: feeLevel=%g must be in (0, 1]", ErrBadSpec, c.Name, c.FeeLevel)
	}
	return nil
}

// BlockHours is the block interval in hours.
func (c ChainProfile) BlockHours() float64 { return c.BlockMinutes / 60 }

// ConfHours returns the confirmation latency in hours under a congestion
// multiplier ≥ 1, quantized up to whole blocks.
func (c ChainProfile) ConfHours(congestion float64) float64 {
	blocks := math.Ceil(float64(c.Confirmations) * congestion)
	return blocks * c.BlockHours()
}

// Profiles returns the registered chain profiles, in canonical order. The
// numbers are stylized but shaped like the real families: BTC's 10-minute
// blocks and 6-deep finality, Litecoin's 2.5-minute blocks, Dogecoin's
// 1-minute blocks with deeper required depth, and an EVM-style chain with
// 12-second slots and a ~32-slot finality window.
func Profiles() []ChainProfile {
	return []ChainProfile{
		{Name: "btc", BlockMinutes: 10, Confirmations: 6, FeeLevel: 0.7},
		{Name: "ltc", BlockMinutes: 2.5, Confirmations: 12, FeeLevel: 0.95},
		{Name: "doge", BlockMinutes: 1, Confirmations: 20, FeeLevel: 0.9},
		{Name: "evm", BlockMinutes: 0.2, Confirmations: 32, FeeLevel: 0.8},
	}
}

// Lookup returns the profile registered under name.
func Lookup(name string) (ChainProfile, error) {
	for _, c := range Profiles() {
		if c.Name == name {
			return c, nil
		}
	}
	return ChainProfile{}, fmt.Errorf("%w: %q", ErrUnknownChain, name)
}

// Sampled market-parameter ranges. Each Sobol coordinate u ∈ (0, 1) maps
// affinely onto its range; the bounds bracket the preset point cloud
// (σ 0.04–0.2, α 0.02–0.3, r 0.01–0.05 across the ten presets) so the
// generated universe covers and extends the regimes the repo already pins.
const (
	minSigma, maxSigma           = 0.04, 0.25
	minMu, maxMu                 = -0.004, 0.004
	minAlpha, maxAlpha           = 0.05, 0.5
	minR, maxR                   = 0.002, 0.05
	minCongestion, maxCongestion = 1.0, 4.0
)

// universeDims is the Sobol dimension of one cell draw:
// σ, µ, αA, αB, rA, rB, congestion.
const universeDims = 7

// UniverseSpec describes a generated scenario universe: which chains
// participate, how many market-parameter samples to draw per ordered chain
// pair, and the seed that makes the whole universe a pure function of the
// spec.
type UniverseSpec struct {
	// Chains are profile names (see Profiles); every ordered pair (a, b)
	// with a ≠ b becomes a swap direction.
	Chains []string `json:"chains"`
	// Samples is the number of Sobol draws per ordered pair.
	Samples int `json:"samples"`
	// Seed scrambles the Sobol randomization and seeds each scenario's
	// Monte Carlo validation stream.
	Seed int64 `json:"seed"`
	// MCRuns sizes each generated scenario's MC validation (0 = the
	// scenario default).
	MCRuns int `json:"mcRuns,omitempty"`
}

// Validate checks the spec.
func (u UniverseSpec) Validate() error {
	if len(u.Chains) < 2 {
		return fmt.Errorf("%w: need at least 2 chains, have %d", ErrBadSpec, len(u.Chains))
	}
	seen := make(map[string]bool, len(u.Chains))
	for _, name := range u.Chains {
		if _, err := Lookup(name); err != nil {
			return err
		}
		if seen[name] {
			return fmt.Errorf("%w: duplicate chain %q", ErrBadSpec, name)
		}
		seen[name] = true
	}
	if u.Samples < 1 {
		return fmt.Errorf("%w: samples=%d must be >= 1", ErrBadSpec, u.Samples)
	}
	if u.MCRuns < 0 {
		return fmt.Errorf("%w: mcRuns=%d must be >= 0", ErrBadSpec, u.MCRuns)
	}
	return nil
}

// Cells is the number of scenarios Generate will produce:
// ordered pairs × samples.
func (u UniverseSpec) Cells() int {
	n := len(u.Chains)
	return n * (n - 1) * u.Samples
}

// lerp maps a unit coordinate onto [lo, hi].
func lerp(u, lo, hi float64) float64 { return lo + u*(hi-lo) }

// pairShard derives a stable per-pair stream shard from the pair's names,
// so a pair's samples do not depend on its position in the chain list:
// adding a chain to a spec extends the universe without disturbing any
// existing pair's cells (the atlas re-solves only the new ones).
func pairShard(a, b string) int {
	h := fnv.New32a()
	io.WriteString(h, a)
	io.WriteString(h, "\x00")
	io.WriteString(h, b)
	return int(h.Sum32())
}

// Generate produces the universe: for every ordered chain pair (a, b) a
// Sobol-sampled set of market regimes, each a complete, validated
// scenario. The result is a pure function of the spec — same spec, same
// scenarios, bit for bit — which is what lets the atlas content-address
// each cell and re-solve only what changed. Each pair draws from the
// decorrelated scramble stream sweep.Seed(spec.Seed, pairShard(a, b)), so
// adding a chain extends the universe without disturbing existing pairs'
// samples.
func (u UniverseSpec) Generate() ([]scenario.Scenario, error) {
	if err := u.Validate(); err != nil {
		return nil, err
	}
	out := make([]scenario.Scenario, 0, u.Cells())
	for _, an := range u.Chains {
		for _, bn := range u.Chains {
			if an == bn {
				continue
			}
			a, _ := Lookup(an)
			b, _ := Lookup(bn)
			shard := pairShard(an, bn)
			sob, err := qmc.NewSobol(universeDims, sweep.Seed(u.Seed, shard))
			if err != nil {
				return nil, err
			}
			var pt [universeDims]float64
			for i := 0; i < u.Samples; i++ {
				sob.Point(uint32(i), pt[:])
				cong := lerp(pt[6], minCongestion, maxCongestion)
				p := utility.Default()
				p.Price.Sigma = lerp(pt[0], minSigma, maxSigma)
				p.Price.Mu = lerp(pt[1], minMu, maxMu)
				p.Alice.Alpha = lerp(pt[2], minAlpha, maxAlpha) * a.FeeLevel
				p.Bob.Alpha = lerp(pt[3], minAlpha, maxAlpha) * b.FeeLevel
				p.Alice.R = lerp(pt[4], minR, maxR)
				p.Bob.R = lerp(pt[5], minR, maxR)
				p.Chains.TauA = a.ConfHours(cong)
				p.Chains.TauB = b.ConfHours(cong)
				// Discoverability on chain B: ceil(congestion) B-blocks.
				// Always < τ_b because confirmations ≥ 6 > maxCongestion.
				p.Chains.EpsB = math.Ceil(cong) * b.BlockHours()
				sc := scenario.Scenario{
					Name: fmt.Sprintf("u-%s-%s-%03d", an, bn, i),
					Description: fmt.Sprintf("generated: %s→%s swap, congestion %.2fx",
						an, bn, cong),
					Params:     p,
					PStar:      2.0,
					Collateral: 0.1,
					BobBudget:  5,
					MCRuns:     u.MCRuns,
					Seed:       sweep.Seed(u.Seed, shard+i+1),
				}
				if err := sc.Validate(); err != nil {
					return nil, fmt.Errorf("config: generated cell %s: %w", sc.Name, err)
				}
				out = append(out, sc)
			}
		}
	}
	return out, nil
}
