// Package chain simulates a single ledger ("Chain_a" or "Chain_b" of the
// paper) on top of the discrete-event kernel: accounts with balances, a
// mempool in which submitted transactions become discoverable after ε hours
// (Table II's εb), and deterministic confirmation τ hours after submission
// (the paper's Assumption 1 of constant confirmation time). It hosts HTLC
// escrows and supports crash-failure injection (a halted chain keeps its
// mempool visible but confirms nothing), which reproduces the atomicity
// violation scenario discussed by Zakhary et al. and cited in §II.
package chain

import (
	"errors"
	"fmt"

	"repro/internal/htlc"
	"repro/internal/sim"
)

// Errors returned by chain operations.
var (
	// ErrBadConfig reports invalid chain construction parameters.
	ErrBadConfig = errors.New("chain: invalid configuration")
	// ErrUnknownTx reports a lookup of a transaction that was never
	// submitted.
	ErrUnknownTx = errors.New("chain: unknown transaction")
	// ErrUnknownContract reports a lookup of a non-existent contract.
	ErrUnknownContract = errors.New("chain: unknown contract")
	// ErrInsufficientFunds reports a debit beyond the available balance.
	ErrInsufficientFunds = errors.New("chain: insufficient funds")
	// ErrBadSubmission reports invalid transaction parameters at submission.
	ErrBadSubmission = errors.New("chain: invalid submission")
)

// TxKind enumerates the supported transaction types.
type TxKind int

const (
	// TxTransfer moves balance between accounts.
	TxTransfer TxKind = iota + 1
	// TxLock deploys an HTLC escrow.
	TxLock
	// TxClaim settles an HTLC to its recipient with the secret.
	TxClaim
	// TxRefund returns an expired HTLC escrow to its sender.
	TxRefund
)

// String names the transaction kind.
func (k TxKind) String() string {
	switch k {
	case TxTransfer:
		return "transfer"
	case TxLock:
		return "lock"
	case TxClaim:
		return "claim"
	case TxRefund:
		return "refund"
	default:
		return fmt.Sprintf("TxKind(%d)", int(k))
	}
}

// TxStatus is a transaction's lifecycle state.
type TxStatus int

const (
	// TxPending means submitted but not yet executed.
	TxPending TxStatus = iota + 1
	// TxConfirmed means executed successfully.
	TxConfirmed
	// TxFailed means executed and rejected (reason in Tx.Err).
	TxFailed
)

// String names the status.
func (s TxStatus) String() string {
	switch s {
	case TxPending:
		return "pending"
	case TxConfirmed:
		return "confirmed"
	case TxFailed:
		return "failed"
	default:
		return fmt.Sprintf("TxStatus(%d)", int(s))
	}
}

// Tx records a submitted transaction.
type Tx struct {
	// ID is the chain-local transaction identifier.
	ID string
	// Kind is the transaction type.
	Kind TxKind
	// SubmittedAt is the submission time.
	SubmittedAt float64
	// VisibleAt is when the transaction appears in the mempool.
	VisibleAt float64
	// ConfirmedAt is the execution time (set once executed).
	ConfirmedAt float64
	// Status is the lifecycle state.
	Status TxStatus
	// Err is the rejection reason for failed transactions.
	Err error
	// ContractID links HTLC transactions to their contract.
	ContractID string

	from, to string
	amount   float64
	lock     htlc.Hash
	expiry   float64
	secret   htlc.Secret
}

// SecretObserver is notified when a claim transaction carrying a secret
// becomes visible in the mempool — the channel through which B learns the
// preimage at t4 (and through which the collateral Oracle monitors A).
type SecretObserver func(contractID string, secret htlc.Secret)

// Chain is one simulated ledger. Construct with New.
type Chain struct {
	name  string
	asset string
	tau   float64
	eps   float64
	sched *sim.Scheduler

	balances    map[string]float64
	contracts   map[string]*htlc.Contract
	txs         map[string]*Tx
	order       []string
	nextID      int
	haltedUntil float64
	observers   []SecretObserver

	// Reuse pools and caches for the Monte Carlo hot path: transactions
	// and contracts recycled across Reset, and the deterministic ID/event
	// label strings (a pure function of the chain name and a counter that
	// restarts at every Reset, so each run regenerates the same strings).
	txFree  []*Tx
	ctFree  []*htlc.Contract
	txIDs   []string // txIDs[n-1] = "<name>-tx%04d" for counter n
	txExec  []string // txIDs[n-1] + "-execute"
	txVis   []string // txIDs[n-1] + "-visible"
	htlcIDs []string // "<name>-htlc%04d"
}

// Config holds chain construction parameters.
type Config struct {
	// Name labels the chain ("chain_a").
	Name string
	// Asset is the native token symbol ("TokenA").
	Asset string
	// Tau is the confirmation time in hours (> 0).
	Tau float64
	// Eps is the mempool discoverability delay in hours (0 <= Eps <= Tau).
	Eps float64
}

// New creates a chain bound to the scheduler.
func New(cfg Config, sched *sim.Scheduler) (*Chain, error) {
	switch {
	case sched == nil:
		return nil, fmt.Errorf("%w: nil scheduler", ErrBadConfig)
	case cfg.Name == "" || cfg.Asset == "":
		return nil, fmt.Errorf("%w: empty name or asset", ErrBadConfig)
	case cfg.Tau <= 0:
		return nil, fmt.Errorf("%w: tau=%g must be > 0", ErrBadConfig, cfg.Tau)
	case cfg.Eps < 0 || cfg.Eps > cfg.Tau:
		return nil, fmt.Errorf("%w: eps=%g must be in [0, tau=%g]", ErrBadConfig, cfg.Eps, cfg.Tau)
	}
	return &Chain{
		name:      cfg.Name,
		asset:     cfg.Asset,
		tau:       cfg.Tau,
		eps:       cfg.Eps,
		sched:     sched,
		balances:  make(map[string]float64),
		contracts: make(map[string]*htlc.Contract),
		txs:       make(map[string]*Tx),
	}, nil
}

// Reset rewinds the chain to its freshly constructed state — no balances,
// contracts, transactions, observers or halt window — while keeping the
// allocated map and slice capacity for reuse, and recycling every
// transaction and contract object into the chain's free pools. The caller
// must reset the shared scheduler in the same breath: pending events
// referencing the old run would otherwise fire against the cleared state.
func (c *Chain) Reset() {
	clear(c.balances)
	for _, id := range c.order {
		if tx := c.txs[id]; tx != nil {
			secret := tx.secret[:0]
			*tx = Tx{secret: secret}
			c.txFree = append(c.txFree, tx)
		}
	}
	for _, ct := range c.contracts {
		c.ctFree = append(c.ctFree, ct)
	}
	clear(c.contracts)
	clear(c.txs)
	c.order = c.order[:0]
	c.nextID = 0
	c.haltedUntil = 0
	c.observers = c.observers[:0]
}

// newTx returns a zeroed transaction from the free pool, or a fresh one.
func (c *Chain) newTx() *Tx {
	if n := len(c.txFree); n > 0 {
		tx := c.txFree[n-1]
		c.txFree = c.txFree[:n-1]
		return tx
	}
	return &Tx{}
}

// newContract returns a recycled contract from the free pool, or a fresh
// one; the caller re-arms it with Init.
func (c *Chain) newContract() *htlc.Contract {
	if n := len(c.ctFree); n > 0 {
		ct := c.ctFree[n-1]
		c.ctFree = c.ctFree[:n-1]
		return ct
	}
	return &htlc.Contract{}
}

// txLabels returns the cached ID and event labels for transaction counter
// n (1-based), formatting them on first use. Counters restart at Reset, so
// across Monte Carlo paths every label is served from the cache.
func (c *Chain) txLabels(n int) (id, exec, vis string) {
	for len(c.txIDs) < n {
		next := fmt.Sprintf("%s-tx%04d", c.name, len(c.txIDs)+1)
		c.txIDs = append(c.txIDs, next)
		c.txExec = append(c.txExec, next+"-execute")
		c.txVis = append(c.txVis, next+"-visible")
	}
	return c.txIDs[n-1], c.txExec[n-1], c.txVis[n-1]
}

// htlcID returns the cached contract ID for contract counter n (1-based).
func (c *Chain) htlcID(n int) string {
	for len(c.htlcIDs) < n {
		c.htlcIDs = append(c.htlcIDs, fmt.Sprintf("%s-htlc%04d", c.name, len(c.htlcIDs)+1))
	}
	return c.htlcIDs[n-1]
}

// Name returns the chain's label.
func (c *Chain) Name() string { return c.name }

// Asset returns the native token symbol.
func (c *Chain) Asset() string { return c.asset }

// Tau returns the confirmation time.
func (c *Chain) Tau() float64 { return c.tau }

// Eps returns the mempool discoverability delay.
func (c *Chain) Eps() float64 { return c.eps }

// Mint credits amount to an account outside consensus (test/setup fixture).
func (c *Chain) Mint(account string, amount float64) error {
	if account == "" || amount < 0 {
		return fmt.Errorf("%w: mint %g to %q", ErrBadSubmission, amount, account)
	}
	c.balances[account] += amount
	return nil
}

// Balance returns an account's available (non-escrowed) balance.
func (c *Chain) Balance(account string) float64 { return c.balances[account] }

// Contract returns a hosted HTLC by ID.
func (c *Chain) Contract(id string) (*htlc.Contract, error) {
	ct, ok := c.contracts[id]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownContract, id)
	}
	return ct, nil
}

// TxByID returns a submitted transaction.
func (c *Chain) TxByID(id string) (*Tx, error) {
	tx, ok := c.txs[id]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownTx, id)
	}
	return tx, nil
}

// Transactions returns all transactions in submission order.
func (c *Chain) Transactions() []*Tx {
	out := make([]*Tx, 0, len(c.order))
	for _, id := range c.order {
		out = append(out, c.txs[id])
	}
	return out
}

// EachTransaction calls fn for every transaction in submission order until
// fn returns false — Transactions without the slice allocation, for audit
// passes on the Monte Carlo hot path.
func (c *Chain) EachTransaction(fn func(*Tx) bool) {
	for _, id := range c.order {
		if !fn(c.txs[id]) {
			return
		}
	}
}

// WatchSecrets registers an observer for secrets appearing in the mempool.
func (c *Chain) WatchSecrets(obs SecretObserver) {
	if obs != nil {
		c.observers = append(c.observers, obs)
	}
}

// Halt injects a crash failure: no transaction executes before the given
// absolute time. The mempool stays visible (gossip is not consensus), which
// is precisely the condition under which HTLC atomicity can break.
func (c *Chain) Halt(until float64) {
	if until > c.haltedUntil {
		c.haltedUntil = until
	}
}

// HaltedUntil returns the end of the current halt (zero if none).
func (c *Chain) HaltedUntil() float64 { return c.haltedUntil }

// notifyCall and executeCall adapt the chain's event handlers to the
// scheduler's allocation-free calling convention: package-level function
// values with the chain and transaction passed as interface words, so
// scheduling a per-path event captures no closure.
func notifyCall(c, tx any)  { c.(*Chain).notify(tx.(*Tx)) }
func executeCall(c, tx any) { c.(*Chain).execute(tx.(*Tx)) }

// submit registers a transaction and schedules its mempool-visibility and
// execution events.
func (c *Chain) submit(tx *Tx) (string, error) {
	c.nextID++
	id, execName, visName := c.txLabels(c.nextID)
	tx.ID = id
	tx.SubmittedAt = c.sched.Now()
	tx.VisibleAt = tx.SubmittedAt + c.eps
	tx.Status = TxPending
	c.txs[tx.ID] = tx
	c.order = append(c.order, tx.ID)

	if tx.Kind == TxClaim {
		if err := c.sched.ScheduleCall(tx.VisibleAt, sim.PriorityMempool, visName, notifyCall, c, tx); err != nil {
			return "", fmt.Errorf("chain %s: scheduling visibility: %w", c.name, err)
		}
	}
	if err := c.sched.ScheduleCall(tx.SubmittedAt+c.tau, sim.PriorityConsensus, execName, executeCall, c, tx); err != nil {
		return "", fmt.Errorf("chain %s: scheduling execution: %w", c.name, err)
	}
	return tx.ID, nil
}

// notify fans a newly visible secret out to the observers. The secret
// slice is the transaction's own buffer: observers must not retain or
// mutate it past the callback (both in-tree observers immediately copy —
// Bob's claim submission into a pooled transaction, the Oracle not at
// all).
func (c *Chain) notify(tx *Tx) {
	for _, obs := range c.observers {
		obs(tx.ContractID, tx.secret)
	}
}

// execute applies a transaction at its confirmation time, deferring while
// the chain is halted.
func (c *Chain) execute(tx *Tx) {
	now := c.sched.Now()
	if now < c.haltedUntil {
		// Crash failure: retry once the chain recovers.
		if err := c.sched.ScheduleCall(c.haltedUntil, sim.PriorityConsensus, tx.ID+"-execute-retry", executeCall, c, tx); err != nil {
			tx.Status = TxFailed
			tx.Err = err
		}
		return
	}
	if err := c.apply(tx, now); err != nil {
		tx.Status = TxFailed
		tx.Err = err
		return
	}
	tx.Status = TxConfirmed
	tx.ConfirmedAt = now
}

// apply performs the state transition for a transaction.
func (c *Chain) apply(tx *Tx, now float64) error {
	switch tx.Kind {
	case TxTransfer:
		if c.balances[tx.from] < tx.amount {
			return fmt.Errorf("%w: %s has %g, needs %g", ErrInsufficientFunds,
				tx.from, c.balances[tx.from], tx.amount)
		}
		c.balances[tx.from] -= tx.amount
		c.balances[tx.to] += tx.amount
		return nil
	case TxLock:
		if c.balances[tx.from] < tx.amount {
			return fmt.Errorf("%w: %s has %g, needs %g", ErrInsufficientFunds,
				tx.from, c.balances[tx.from], tx.amount)
		}
		ct := c.newContract()
		if err := ct.Init(tx.ContractID, tx.from, tx.to, c.asset, tx.amount, tx.lock, tx.expiry); err != nil {
			c.ctFree = append(c.ctFree, ct)
			return err
		}
		c.balances[tx.from] -= tx.amount
		c.contracts[tx.ContractID] = ct
		return nil
	case TxClaim:
		ct, ok := c.contracts[tx.ContractID]
		if !ok {
			return fmt.Errorf("%w: %q", ErrUnknownContract, tx.ContractID)
		}
		if err := ct.Claim(tx.secret, now); err != nil {
			return err
		}
		c.balances[ct.Recipient] += ct.Amount
		return nil
	case TxRefund:
		ct, ok := c.contracts[tx.ContractID]
		if !ok {
			return fmt.Errorf("%w: %q", ErrUnknownContract, tx.ContractID)
		}
		if err := ct.Refund(now); err != nil {
			return err
		}
		c.balances[ct.Sender] += ct.Amount
		return nil
	default:
		return fmt.Errorf("%w: kind %v", ErrBadSubmission, tx.Kind)
	}
}

// SubmitTransfer submits a balance transfer.
func (c *Chain) SubmitTransfer(from, to string, amount float64) (string, error) {
	if from == "" || to == "" || amount <= 0 {
		return "", fmt.Errorf("%w: transfer %g from %q to %q", ErrBadSubmission, amount, from, to)
	}
	tx := c.newTx()
	tx.Kind, tx.from, tx.to, tx.amount = TxTransfer, from, to, amount
	return c.submit(tx)
}

// SubmitLock submits an HTLC deployment escrowing amount from sender to
// recipient under the hash lock, expiring at the absolute time expiry.
// The contract ID is assigned now so counterparties can reference it before
// confirmation.
func (c *Chain) SubmitLock(sender, recipient string, amount float64, lock htlc.Hash, expiry float64) (txID, contractID string, err error) {
	if sender == "" || recipient == "" || amount <= 0 {
		return "", "", fmt.Errorf("%w: lock %g from %q to %q", ErrBadSubmission, amount, sender, recipient)
	}
	if expiry <= c.sched.Now() {
		return "", "", fmt.Errorf("%w: expiry %g not in the future (now %g)", ErrBadSubmission, expiry, c.sched.Now())
	}
	contractID = c.htlcID(len(c.contracts) + 1)
	tx := c.newTx()
	tx.Kind, tx.from, tx.to = TxLock, sender, recipient
	tx.amount, tx.lock, tx.expiry = amount, lock, expiry
	tx.ContractID = contractID
	txID, err = c.submit(tx)
	if err != nil {
		return "", "", err
	}
	return txID, contractID, nil
}

// SubmitClaim submits a claim revealing the secret for a contract. The
// secret becomes mempool-visible after ε hours regardless of whether the
// claim ultimately confirms.
func (c *Chain) SubmitClaim(contractID string, secret htlc.Secret) (string, error) {
	if contractID == "" || len(secret) == 0 {
		return "", fmt.Errorf("%w: claim on %q", ErrBadSubmission, contractID)
	}
	tx := c.newTx()
	tx.Kind, tx.ContractID = TxClaim, contractID
	tx.secret = append(tx.secret[:0], secret...)
	return c.submit(tx)
}

// SubmitRefund submits a refund for an expired contract.
func (c *Chain) SubmitRefund(contractID string) (string, error) {
	if contractID == "" {
		return "", fmt.Errorf("%w: refund on %q", ErrBadSubmission, contractID)
	}
	tx := c.newTx()
	tx.Kind, tx.ContractID = TxRefund, contractID
	return c.submit(tx)
}

// FindContract returns the first hosted contract satisfying the predicate,
// in creation order. It is how counterparties discover each other's HTLCs
// by inspecting the public chain state.
func (c *Chain) FindContract(pred func(*htlc.Contract) bool) (*htlc.Contract, bool) {
	// Contract IDs embed a creation counter, so scan transactions in
	// submission order for deterministic discovery.
	for _, id := range c.order {
		tx := c.txs[id]
		if tx.Kind != TxLock || tx.Status != TxConfirmed {
			continue
		}
		if ct, ok := c.contracts[tx.ContractID]; ok && pred(ct) {
			return ct, true
		}
	}
	return nil, false
}

// Burn debits amount from an account outside consensus — the mirror of Mint,
// used to model pre-approved allowance pulls (the collateral escrow of
// §IV.A collects deposits before the swap's first on-chain step).
func (c *Chain) Burn(account string, amount float64) error {
	if account == "" || amount < 0 {
		return fmt.Errorf("%w: burn %g from %q", ErrBadSubmission, amount, account)
	}
	if c.balances[account] < amount {
		return fmt.Errorf("%w: %s has %g, needs %g", ErrInsufficientFunds,
			account, c.balances[account], amount)
	}
	c.balances[account] -= amount
	return nil
}

// Parties exposes a transaction's endpoints and amount for audit tooling
// (the Monte Carlo driver separates collateral flows from swap flows by
// inspecting escrow transfers).
func (t *Tx) Parties() (from, to string, amount float64) {
	return t.from, t.to, t.amount
}
