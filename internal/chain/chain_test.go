package chain

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/htlc"
	"repro/internal/sim"
)

func newTestChain(t *testing.T) (*Chain, *sim.Scheduler) {
	t.Helper()
	s := sim.NewScheduler()
	c, err := New(Config{Name: "chain_b", Asset: "TokenB", Tau: 4, Eps: 1}, s)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return c, s
}

func TestNewValidation(t *testing.T) {
	s := sim.NewScheduler()
	tests := []struct {
		name string
		cfg  Config
		s    *sim.Scheduler
	}{
		{"nilScheduler", Config{Name: "c", Asset: "T", Tau: 1}, nil},
		{"emptyName", Config{Asset: "T", Tau: 1}, s},
		{"emptyAsset", Config{Name: "c", Tau: 1}, s},
		{"zeroTau", Config{Name: "c", Asset: "T"}, s},
		{"epsBeyondTau", Config{Name: "c", Asset: "T", Tau: 1, Eps: 2}, s},
		{"negativeEps", Config{Name: "c", Asset: "T", Tau: 1, Eps: -0.1}, s},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := New(tt.cfg, tt.s); !errors.Is(err, ErrBadConfig) {
				t.Errorf("err = %v, want ErrBadConfig", err)
			}
		})
	}
	c, err := New(Config{Name: "x", Asset: "T", Tau: 2, Eps: 0.5}, s)
	if err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	if c.Name() != "x" || c.Asset() != "T" || c.Tau() != 2 || c.Eps() != 0.5 {
		t.Error("accessors disagree with config")
	}
}

func TestMintAndBalance(t *testing.T) {
	c, _ := newTestChain(t)
	if err := c.Mint("alice", 10); err != nil {
		t.Fatalf("Mint: %v", err)
	}
	if got := c.Balance("alice"); got != 10 {
		t.Errorf("Balance = %v, want 10", got)
	}
	if got := c.Balance("nobody"); got != 0 {
		t.Errorf("unknown account balance = %v, want 0", got)
	}
	if err := c.Mint("", 1); !errors.Is(err, ErrBadSubmission) {
		t.Errorf("empty account err = %v", err)
	}
	if err := c.Mint("a", -1); !errors.Is(err, ErrBadSubmission) {
		t.Errorf("negative amount err = %v", err)
	}
}

func TestTransferConfirmsAfterTau(t *testing.T) {
	c, s := newTestChain(t)
	if err := c.Mint("alice", 5); err != nil {
		t.Fatal(err)
	}
	id, err := c.SubmitTransfer("alice", "bob", 3)
	if err != nil {
		t.Fatalf("SubmitTransfer: %v", err)
	}
	tx, err := c.TxByID(id)
	if err != nil {
		t.Fatal(err)
	}
	if tx.Status != TxPending {
		t.Errorf("status before run = %v, want pending", tx.Status)
	}
	s.RunUntil(3.999)
	if c.Balance("bob") != 0 {
		t.Error("transfer applied before confirmation time")
	}
	s.RunUntil(4)
	if c.Balance("bob") != 3 || c.Balance("alice") != 2 {
		t.Errorf("balances after confirm: alice=%v bob=%v", c.Balance("alice"), c.Balance("bob"))
	}
	if tx.Status != TxConfirmed || tx.ConfirmedAt != 4 {
		t.Errorf("tx = %+v, want confirmed at 4", tx)
	}
}

func TestTransferInsufficientFunds(t *testing.T) {
	c, s := newTestChain(t)
	if err := c.Mint("alice", 1); err != nil {
		t.Fatal(err)
	}
	id, err := c.SubmitTransfer("alice", "bob", 3)
	if err != nil {
		t.Fatal(err)
	}
	s.Run()
	tx, _ := c.TxByID(id)
	if tx.Status != TxFailed || !errors.Is(tx.Err, ErrInsufficientFunds) {
		t.Errorf("tx = %+v, want failed with ErrInsufficientFunds", tx)
	}
	if c.Balance("alice") != 1 || c.Balance("bob") != 0 {
		t.Error("failed transfer must not move funds")
	}
}

func TestSubmitValidation(t *testing.T) {
	c, _ := newTestChain(t)
	if _, err := c.SubmitTransfer("", "b", 1); !errors.Is(err, ErrBadSubmission) {
		t.Errorf("err = %v", err)
	}
	if _, err := c.SubmitTransfer("a", "b", 0); !errors.Is(err, ErrBadSubmission) {
		t.Errorf("err = %v", err)
	}
	if _, _, err := c.SubmitLock("", "b", 1, htlc.Hash{}, 5); !errors.Is(err, ErrBadSubmission) {
		t.Errorf("err = %v", err)
	}
	if _, _, err := c.SubmitLock("a", "b", 1, htlc.Hash{}, 0); !errors.Is(err, ErrBadSubmission) {
		t.Errorf("expiry in past err = %v", err)
	}
	if _, err := c.SubmitClaim("", htlc.Secret("s")); !errors.Is(err, ErrBadSubmission) {
		t.Errorf("err = %v", err)
	}
	if _, err := c.SubmitClaim("c", nil); !errors.Is(err, ErrBadSubmission) {
		t.Errorf("err = %v", err)
	}
	if _, err := c.SubmitRefund(""); !errors.Is(err, ErrBadSubmission) {
		t.Errorf("err = %v", err)
	}
	if _, err := c.TxByID("nope"); !errors.Is(err, ErrUnknownTx) {
		t.Errorf("err = %v", err)
	}
	if _, err := c.Contract("nope"); !errors.Is(err, ErrUnknownContract) {
		t.Errorf("err = %v", err)
	}
}

func TestHTLCLifecycleOnChain(t *testing.T) {
	c, s := newTestChain(t)
	if err := c.Mint("bob", 1); err != nil {
		t.Fatal(err)
	}
	secret, hash, err := htlc.NewSecret(nil)
	if err != nil {
		t.Fatal(err)
	}
	_, ctID, err := c.SubmitLock("bob", "alice", 1, hash, 11)
	if err != nil {
		t.Fatalf("SubmitLock: %v", err)
	}
	s.RunUntil(4) // lock confirms at τ = 4
	ct, err := c.Contract(ctID)
	if err != nil {
		t.Fatalf("Contract: %v", err)
	}
	if ct.State() != htlc.Locked {
		t.Fatalf("state %v, want locked", ct.State())
	}
	if c.Balance("bob") != 0 {
		t.Errorf("escrow must debit sender, balance = %v", c.Balance("bob"))
	}

	// Alice claims at t=4; secret visible at 5 (ε=1); confirmed at 8 (τ=4).
	var observed htlc.Secret
	var observedAt float64
	c.WatchSecrets(func(id string, sec htlc.Secret) {
		if id == ctID {
			observed = sec
			observedAt = s.Now()
		}
	})
	if _, err := c.SubmitClaim(ctID, secret); err != nil {
		t.Fatalf("SubmitClaim: %v", err)
	}
	s.RunUntil(5)
	if observed == nil || observedAt != 5 {
		t.Fatalf("secret not observed in mempool at 5 (got at %v)", observedAt)
	}
	if !bytes.Equal(observed, secret) {
		t.Error("observed secret mismatch")
	}
	if ct.State() != htlc.Locked {
		t.Error("claim applied before confirmation")
	}
	s.RunUntil(8)
	if ct.State() != htlc.Claimed {
		t.Fatalf("state %v, want claimed at t=8", ct.State())
	}
	if c.Balance("alice") != 1 {
		t.Errorf("alice balance = %v, want 1", c.Balance("alice"))
	}
}

func TestRefundPath(t *testing.T) {
	c, s := newTestChain(t)
	if err := c.Mint("bob", 1); err != nil {
		t.Fatal(err)
	}
	_, hash, err := htlc.NewSecret(nil)
	if err != nil {
		t.Fatal(err)
	}
	_, ctID, err := c.SubmitLock("bob", "alice", 1, hash, 11)
	if err != nil {
		t.Fatal(err)
	}
	s.RunUntil(11) // expiry reached, nobody claimed
	if _, err := c.SubmitRefund(ctID); err != nil {
		t.Fatalf("SubmitRefund: %v", err)
	}
	s.Run()
	ct, _ := c.Contract(ctID)
	if ct.State() != htlc.Refunded {
		t.Fatalf("state %v, want refunded", ct.State())
	}
	if c.Balance("bob") != 1 {
		t.Errorf("bob balance = %v, want 1 (refund at t7 = tb + τb)", c.Balance("bob"))
	}
	if s.Now() != 15 {
		t.Errorf("refund confirmed at %v, want 15 (= 11 + τb)", s.Now())
	}
}

func TestClaimFailsAfterExpiry(t *testing.T) {
	c, s := newTestChain(t)
	if err := c.Mint("bob", 1); err != nil {
		t.Fatal(err)
	}
	secret, hash, err := htlc.NewSecret(nil)
	if err != nil {
		t.Fatal(err)
	}
	_, ctID, err := c.SubmitLock("bob", "alice", 1, hash, 6)
	if err != nil {
		t.Fatal(err)
	}
	s.RunUntil(5)
	// Claim submitted at 5 confirms at 9 > expiry 6: must fail.
	id, err := c.SubmitClaim(ctID, secret)
	if err != nil {
		t.Fatal(err)
	}
	s.Run()
	tx, _ := c.TxByID(id)
	if tx.Status != TxFailed || !errors.Is(tx.Err, htlc.ErrExpired) {
		t.Errorf("tx = status %v err %v, want failed/ErrExpired", tx.Status, tx.Err)
	}
	if c.Balance("alice") != 0 {
		t.Error("failed claim must not credit recipient")
	}
}

func TestHaltDelaysConfirmationButNotMempool(t *testing.T) {
	// Crash-failure injection: the chain halts, the claim's secret is still
	// gossiped, and execution resumes only after recovery.
	c, s := newTestChain(t)
	if err := c.Mint("bob", 1); err != nil {
		t.Fatal(err)
	}
	secret, hash, err := htlc.NewSecret(nil)
	if err != nil {
		t.Fatal(err)
	}
	_, ctID, err := c.SubmitLock("bob", "alice", 1, hash, 30)
	if err != nil {
		t.Fatal(err)
	}
	s.RunUntil(4)

	c.Halt(20)
	if c.HaltedUntil() != 20 {
		t.Errorf("HaltedUntil = %v, want 20", c.HaltedUntil())
	}
	var seenAt float64
	c.WatchSecrets(func(id string, sec htlc.Secret) { seenAt = s.Now() })
	id, err := c.SubmitClaim(ctID, secret)
	if err != nil {
		t.Fatal(err)
	}
	s.RunUntil(10)
	if seenAt != 5 {
		t.Errorf("secret seen at %v, want 5 (mempool unaffected by halt)", seenAt)
	}
	tx, _ := c.TxByID(id)
	if tx.Status != TxPending {
		t.Errorf("status during halt = %v, want pending", tx.Status)
	}
	s.Run()
	if tx.Status != TxConfirmed {
		t.Fatalf("status after recovery = %v err=%v, want confirmed", tx.Status, tx.Err)
	}
	if tx.ConfirmedAt != 20 {
		t.Errorf("confirmed at %v, want 20 (halt end)", tx.ConfirmedAt)
	}
	// A shorter subsequent halt must not shrink the window.
	c.Halt(15)
	if c.HaltedUntil() != 20 {
		t.Errorf("Halt(15) shrank window to %v", c.HaltedUntil())
	}
}

func TestTransactionsOrderAndKinds(t *testing.T) {
	c, s := newTestChain(t)
	if err := c.Mint("a", 10); err != nil {
		t.Fatal(err)
	}
	if _, err := c.SubmitTransfer("a", "b", 1); err != nil {
		t.Fatal(err)
	}
	_, hash, err := htlc.NewSecret(nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.SubmitLock("a", "b", 1, hash, 9); err != nil {
		t.Fatal(err)
	}
	s.Run()
	txs := c.Transactions()
	if len(txs) != 2 {
		t.Fatalf("got %d txs, want 2", len(txs))
	}
	if txs[0].Kind != TxTransfer || txs[1].Kind != TxLock {
		t.Errorf("kinds = %v, %v", txs[0].Kind, txs[1].Kind)
	}
	// Kind and status strings.
	if TxTransfer.String() != "transfer" || TxLock.String() != "lock" ||
		TxClaim.String() != "claim" || TxRefund.String() != "refund" ||
		TxKind(99).String() != "TxKind(99)" {
		t.Error("TxKind.String mismatch")
	}
	if TxPending.String() != "pending" || TxConfirmed.String() != "confirmed" ||
		TxFailed.String() != "failed" || TxStatus(99).String() != "TxStatus(99)" {
		t.Error("TxStatus.String mismatch")
	}
}

func TestClaimUnknownContractFails(t *testing.T) {
	c, s := newTestChain(t)
	id, err := c.SubmitClaim("ghost", htlc.Secret("secret"))
	if err != nil {
		t.Fatal(err)
	}
	s.Run()
	tx, _ := c.TxByID(id)
	if tx.Status != TxFailed || !errors.Is(tx.Err, ErrUnknownContract) {
		t.Errorf("tx err = %v, want ErrUnknownContract", tx.Err)
	}
	id2, err := c.SubmitRefund("ghost")
	if err != nil {
		t.Fatal(err)
	}
	s.Run()
	tx2, _ := c.TxByID(id2)
	if tx2.Status != TxFailed || !errors.Is(tx2.Err, ErrUnknownContract) {
		t.Errorf("refund err = %v, want ErrUnknownContract", tx2.Err)
	}
}

func TestLockInsufficientFundsFails(t *testing.T) {
	c, s := newTestChain(t)
	_, hash, err := htlc.NewSecret(nil)
	if err != nil {
		t.Fatal(err)
	}
	txID, _, err := c.SubmitLock("pauper", "b", 5, hash, 9)
	if err != nil {
		t.Fatal(err)
	}
	s.Run()
	tx, _ := c.TxByID(txID)
	if tx.Status != TxFailed || !errors.Is(tx.Err, ErrInsufficientFunds) {
		t.Errorf("err = %v, want ErrInsufficientFunds", tx.Err)
	}
}

func TestResetClearsAllChainState(t *testing.T) {
	c, s := newTestChain(t)
	if err := c.Mint("alice", 10); err != nil {
		t.Fatal(err)
	}
	if _, err := c.SubmitTransfer("alice", "bob", 3); err != nil {
		t.Fatal(err)
	}
	notified := 0
	c.WatchSecrets(func(string, htlc.Secret) { notified++ })
	c.Halt(100)
	s.Run()

	s.Reset()
	c.Reset()
	if got := c.Balance("alice"); got != 0 {
		t.Errorf("balance after reset = %g, want 0", got)
	}
	if txs := c.Transactions(); len(txs) != 0 {
		t.Errorf("transactions after reset = %d, want 0", len(txs))
	}
	if c.HaltedUntil() != 0 {
		t.Errorf("halt window survived reset: %g", c.HaltedUntil())
	}
	// The observer list is dropped: a visible claim no longer notifies.
	if err := c.Mint("alice", 5); err != nil {
		t.Fatal(err)
	}
	secret, hash, err := htlc.NewSecret(nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.SubmitLock("alice", "bob", 2, hash, 50); err != nil {
		t.Fatal(err)
	}
	s.RunUntil(10)
	ct, ok := c.FindContract(func(*htlc.Contract) bool { return true })
	if !ok {
		t.Fatal("lock did not confirm after reset")
	}
	if _, err := c.SubmitClaim(ct.ID, secret); err != nil {
		t.Fatal(err)
	}
	s.Run()
	if notified != 0 {
		t.Errorf("pre-reset observer notified %d times after reset", notified)
	}
	// Transaction and contract IDs restart from 1, matching a fresh chain.
	txs := c.Transactions()
	if len(txs) == 0 || txs[0].ID != "chain_b-tx0001" {
		t.Errorf("post-reset tx IDs did not restart: %v", txs[0].ID)
	}
}
