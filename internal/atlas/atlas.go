// Package atlas sweeps a generated scenario universe (internal/config)
// through the variant batch runner and renders success-rate frontier
// artifacts over it. The sweep is incremental by construction: every
// (scenario × variant) cell is content-addressed (variant.CellKey) in the
// persistent store, so a run re-solves only cells whose key is absent or
// changed — a second run over an unchanged universe solves zero cells and
// merely re-renders the artifacts, byte-identically.
//
// Artifacts are pure functions of the universe's reports: no timestamps,
// no machine identity, fixed iteration order, so cold and warm runs (and
// runs on different machines sharing a store) produce identical bytes.
// The solved/loaded split is run diagnostics and deliberately lives in the
// CLI summary, not in any artifact.
package atlas

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/config"
	"repro/internal/store"
	"repro/internal/variant"
)

// Options configures one atlas sweep.
type Options struct {
	// Spec is the generated universe to sweep.
	Spec config.UniverseSpec
	// Variants is the variant selection for every cell ("" = "basic": the
	// frontier's headline game; "all" or a comma list widen it).
	Variants string
	// Runs, CIWidth, MaxPaths and SkipMC configure each cell's Monte
	// Carlo validation exactly as in variant.RunOpts. The atlas default
	// (SkipMC true) is analytic-only: frontiers need the solved success
	// rate, not a re-validation of the solver per cell.
	Runs     int
	CIWidth  float64
	MaxPaths int
	SkipMC   bool
	// Workers sizes the cross-cell worker pool (0 = all CPUs).
	Workers int
	// Store is the persistent cell store. Nil runs the sweep uncached
	// (every cell solves).
	Store *store.Store
}

// Cell is one solved (scenario × variant) point of the universe.
type Cell struct {
	// Scenario is the generated cell name ("u-btc-evm-017").
	Scenario string `json:"scenario"`
	// From and To are the swap direction's chain profiles.
	From string `json:"from"`
	To   string `json:"to"`
	// Variant is the game the cell was solved under.
	Variant string `json:"variant"`
	// SR is the variant's headline success metric.
	SR float64 `json:"sr"`
	// Sigma and Mu are the cell's sampled GBM law.
	Sigma float64 `json:"sigma"`
	Mu    float64 `json:"mu"`
	// TauA, TauB and EpsB are the congestion-scaled, block-quantized chain
	// timings in hours.
	TauA float64 `json:"tauA"`
	TauB float64 `json:"tauB"`
	EpsB float64 `json:"epsB"`
}

// Result is one completed sweep.
type Result struct {
	// Spec echoes the generated universe.
	Spec config.UniverseSpec `json:"spec"`
	// Cells holds every solved cell in deterministic universe order.
	Cells []Cell `json:"cells"`
	// Solved and Loaded split the cells by how this run obtained them:
	// freshly solved versus read from the store. They describe the run,
	// not the universe, and are excluded from serialized artifacts.
	Solved int `json:"-"`
	Loaded int `json:"-"`
}

// Run sweeps the universe once.
func Run(ctx context.Context, opts Options) (*Result, error) {
	scs, err := opts.Spec.Generate()
	if err != nil {
		return nil, err
	}
	ropts := variant.RunOpts{
		Runs:     opts.Runs,
		CIWidth:  opts.CIWidth,
		MaxPaths: opts.MaxPaths,
		SkipMC:   opts.SkipMC,
		Variants: opts.Variants,
		Store:    opts.Store,
	}
	if ropts.Variants == "" {
		ropts.Variants = "basic"
	}
	var before store.Stats
	if opts.Store != nil {
		before = opts.Store.Stats()
	}
	reports, err := variant.RunAll(ctx, scs, opts.Workers, ropts)
	if err != nil {
		return nil, err
	}
	res := &Result{Spec: opts.Spec}
	for _, sr := range reports {
		from, to := pairOf(sr.Scenario.Name)
		for _, r := range sr.Reports {
			res.Cells = append(res.Cells, Cell{
				Scenario: sr.Scenario.Name,
				From:     from,
				To:       to,
				Variant:  r.Key,
				SR:       r.SR,
				Sigma:    sr.Scenario.Params.Price.Sigma,
				Mu:       sr.Scenario.Params.Price.Mu,
				TauA:     sr.Scenario.Params.Chains.TauA,
				TauB:     sr.Scenario.Params.Chains.TauB,
				EpsB:     sr.Scenario.Params.Chains.EpsB,
			})
		}
	}
	if opts.Store != nil {
		after := opts.Store.Stats()
		res.Loaded = int(after.Hits - before.Hits)
		res.Solved = int(after.Misses - before.Misses)
	} else {
		res.Solved = len(res.Cells)
	}
	return res, nil
}

// pairOf recovers the swap direction from a generated cell name
// ("u-<from>-<to>-NNN"; profile names never contain dashes).
func pairOf(name string) (from, to string) {
	parts := strings.Split(name, "-")
	if len(parts) != 4 || parts[0] != "u" {
		return "", ""
	}
	return parts[1], parts[2]
}

// Summary is the one-line run diagnostic the CLI prints (and atlas-smoke
// greps): cell counts plus the solved/loaded split.
func (r *Result) Summary() string {
	return fmt.Sprintf("atlas: %d cells over %d scenarios, solved %d, loaded %d",
		len(r.Cells), r.Spec.Cells(), r.Solved, r.Loaded)
}

// frontierBuckets is the σ resolution of the frontier table.
const frontierBuckets = 5

// WriteArtifacts renders the sweep into dir: atlas_cells.json (the full
// cell table) and atlas_frontier.txt (per variant, mean success rate by
// swap direction × volatility bucket). Both are deterministic functions of
// the result.
func (r *Result) WriteArtifacts(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	cells, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	cells = append(cells, '\n')
	if err := os.WriteFile(filepath.Join(dir, "atlas_cells.json"), cells, 0o644); err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(dir, "atlas_frontier.txt"), []byte(r.Frontier()), 0o644)
}

// Frontier renders the success-rate frontier: for every variant, a table
// of mean SR per ordered chain pair × σ bucket (buckets span the observed
// σ range), with a per-pair overall mean. Rows follow the universe's pair
// order, so the rendering is deterministic.
func (r *Result) Frontier() string {
	var b strings.Builder
	fmt.Fprintf(&b, "atlas frontier — mean success rate by swap direction and volatility\n")
	fmt.Fprintf(&b, "universe: chains=%s samples=%d seed=%d cells=%d\n",
		strings.Join(r.Spec.Chains, ","), r.Spec.Samples, r.Spec.Seed, len(r.Cells))
	if len(r.Cells) == 0 {
		return b.String()
	}
	loSigma, hiSigma := r.Cells[0].Sigma, r.Cells[0].Sigma
	variants, pairs := orderedKeys(r.Cells)
	for _, c := range r.Cells {
		loSigma = math.Min(loSigma, c.Sigma)
		hiSigma = math.Max(hiSigma, c.Sigma)
	}
	bucket := func(sigma float64) int {
		if hiSigma == loSigma {
			return 0
		}
		i := int(float64(frontierBuckets) * (sigma - loSigma) / (hiSigma - loSigma))
		if i >= frontierBuckets {
			i = frontierBuckets - 1
		}
		return i
	}
	edge := func(i int) float64 {
		return loSigma + float64(i)*(hiSigma-loSigma)/frontierBuckets
	}
	for _, v := range variants {
		fmt.Fprintf(&b, "\nvariant %s:\n", v)
		fmt.Fprintf(&b, "  %-12s", "pair")
		for i := 0; i < frontierBuckets; i++ {
			fmt.Fprintf(&b, " σ[%.3f,%.3f)", edge(i), edge(i+1))
		}
		fmt.Fprintf(&b, " %14s\n", "all")
		for _, p := range pairs {
			sum := make([]float64, frontierBuckets)
			n := make([]int, frontierBuckets)
			total, cnt := 0.0, 0
			for _, c := range r.Cells {
				if c.Variant != v || c.From+"→"+c.To != p {
					continue
				}
				i := bucket(c.Sigma)
				sum[i] += c.SR
				n[i]++
				total += c.SR
				cnt++
			}
			if cnt == 0 {
				continue
			}
			fmt.Fprintf(&b, "  %-12s", p)
			for i := 0; i < frontierBuckets; i++ {
				if n[i] == 0 {
					fmt.Fprintf(&b, " %14s", "-")
				} else {
					fmt.Fprintf(&b, " %14.4f", sum[i]/float64(n[i]))
				}
			}
			fmt.Fprintf(&b, " %14.4f\n", total/float64(cnt))
		}
	}
	return b.String()
}

// orderedKeys returns the distinct variants and pairs in first-appearance
// order (the universe's deterministic generation order).
func orderedKeys(cells []Cell) (variants, pairs []string) {
	seenV := map[string]bool{}
	seenP := map[string]bool{}
	for _, c := range cells {
		if !seenV[c.Variant] {
			seenV[c.Variant] = true
			variants = append(variants, c.Variant)
		}
		p := c.From + "→" + c.To
		if !seenP[p] {
			seenP[p] = true
			pairs = append(pairs, p)
		}
	}
	return variants, pairs
}
