package atlas

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/config"
	"repro/internal/store"
)

func smallOpts(t *testing.T) Options {
	t.Helper()
	return Options{
		Spec:    config.UniverseSpec{Chains: []string{"btc", "evm"}, Samples: 3, Seed: 11},
		SkipMC:  true,
		Workers: 2,
	}
}

func TestRunUncached(t *testing.T) {
	opts := smallOpts(t)
	res, err := Run(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	want := opts.Spec.Cells()
	if len(res.Cells) != want || res.Solved != want || res.Loaded != 0 {
		t.Fatalf("cells %d solved %d loaded %d, want %d/%d/0",
			len(res.Cells), res.Solved, res.Loaded, want, want)
	}
	for _, c := range res.Cells {
		if c.From == "" || c.To == "" || c.From == c.To {
			t.Errorf("cell %s: bad pair %q→%q", c.Scenario, c.From, c.To)
		}
		if c.Variant != "basic" {
			t.Errorf("cell %s: variant %q, want basic (default)", c.Scenario, c.Variant)
		}
	}
}

func TestIncrementalSweepAndArtifacts(t *testing.T) {
	opts := smallOpts(t)
	s, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	opts.Store = s
	cold, err := Run(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if cold.Solved != opts.Spec.Cells() || cold.Loaded != 0 {
		t.Fatalf("cold run solved %d loaded %d", cold.Solved, cold.Loaded)
	}
	warm, err := Run(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if warm.Solved != 0 || warm.Loaded != opts.Spec.Cells() {
		t.Fatalf("warm run solved %d loaded %d, want 0 solved", warm.Solved, warm.Loaded)
	}
	if !strings.Contains(warm.Summary(), "solved 0") {
		t.Errorf("warm summary %q lacks the solved-0 marker", warm.Summary())
	}
	// Byte-identical artifacts, cold vs warm.
	d1, d2 := t.TempDir(), t.TempDir()
	if err := cold.WriteArtifacts(d1); err != nil {
		t.Fatal(err)
	}
	if err := warm.WriteArtifacts(d2); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"atlas_cells.json", "atlas_frontier.txt"} {
		a, err := os.ReadFile(filepath.Join(d1, name))
		if err != nil {
			t.Fatal(err)
		}
		b, err := os.ReadFile(filepath.Join(d2, name))
		if err != nil {
			t.Fatal(err)
		}
		if string(a) != string(b) {
			t.Errorf("%s differs between cold and warm runs", name)
		}
		if len(a) == 0 {
			t.Errorf("%s is empty", name)
		}
	}
}

// TestExtendedUniverseSolvesOnlyNewCells pins the incremental property the
// atlas exists for: growing the universe re-solves only the added cells.
func TestExtendedUniverseSolvesOnlyNewCells(t *testing.T) {
	opts := smallOpts(t)
	s, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	opts.Store = s
	if _, err := Run(context.Background(), opts); err != nil {
		t.Fatal(err)
	}
	grown := opts
	grown.Spec.Samples = 5 // 3 → 5 samples per pair: 4 new cells per pair
	res, err := Run(context.Background(), grown)
	if err != nil {
		t.Fatal(err)
	}
	wantNew := grown.Spec.Cells() - opts.Spec.Cells()
	if res.Solved != wantNew || res.Loaded != opts.Spec.Cells() {
		t.Fatalf("grown run solved %d loaded %d, want %d solved, %d loaded",
			res.Solved, res.Loaded, wantNew, opts.Spec.Cells())
	}
}

func TestFrontierRendersEveryPairAndVariant(t *testing.T) {
	opts := smallOpts(t)
	opts.Variants = "basic,collateral"
	res, err := Run(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	f := res.Frontier()
	for _, want := range []string{"variant basic:", "variant collateral:", "btc→evm", "evm→btc"} {
		if !strings.Contains(f, want) {
			t.Errorf("frontier missing %q:\n%s", want, f)
		}
	}
}

func TestPairOf(t *testing.T) {
	if f, to := pairOf("u-btc-evm-017"); f != "btc" || to != "evm" {
		t.Errorf("pairOf = %q, %q", f, to)
	}
	if f, to := pairOf("tableIII"); f != "" || to != "" {
		t.Errorf("pairOf of a preset name = %q, %q, want empty", f, to)
	}
}
