package dist

import (
	"math"
	"testing"
)

// FuzzLognormal checks the distribution's structural invariants on arbitrary
// parameters: the CDF is monotone and complements TailProb, the truncated
// first moments split the mean exactly, and every probability stays in
// [0, 1]. These are the identities every stage integral of internal/core
// rests on.
func FuzzLognormal(f *testing.F) {
	f.Add(0.0, 1.0, 1.0, 2.0)
	f.Add(0.6931, 0.1, 2.0, 2.5)   // Table III transition scale
	f.Add(-3.0, 0.05, 0.04, 0.05)  // tight low-price law
	f.Add(5.0, 2.0, 100.0, 1000.0) // wide heavy tail
	f.Add(0.0, 0.5, -1.0, 0.0)     // non-positive thresholds
	f.Fuzz(func(t *testing.T, mu, sigma, k1, k2 float64) {
		// Keep parameters in the numerically meaningful window: |mu| and
		// sigma bounded so Mean() stays finite, thresholds finite.
		if math.IsNaN(mu) || math.Abs(mu) > 30 {
			t.Skip()
		}
		if math.IsNaN(sigma) || sigma <= 1e-6 || sigma > 10 {
			t.Skip()
		}
		if math.IsNaN(k1) || math.IsInf(k1, 0) || math.IsNaN(k2) || math.IsInf(k2, 0) {
			t.Skip()
		}
		if math.Abs(k1) > 1e30 || math.Abs(k2) > 1e30 {
			t.Skip()
		}
		l := LogNormal{Mu: mu, Sigma: sigma}
		lo, hi := math.Min(k1, k2), math.Max(k1, k2)

		// CDF is monotone non-decreasing and bounded in [0, 1].
		cLo, cHi := l.CDF(lo), l.CDF(hi)
		if cLo < 0 || cLo > 1 || cHi < 0 || cHi > 1 {
			t.Fatalf("CDF out of [0,1]: CDF(%g)=%g, CDF(%g)=%g", lo, cLo, hi, cHi)
		}
		if cLo > cHi {
			t.Fatalf("CDF not monotone: CDF(%g)=%g > CDF(%g)=%g", lo, cLo, hi, cHi)
		}

		// CDF and TailProb complement each other.
		for _, k := range []float64{lo, hi} {
			if s := l.CDF(k) + l.TailProb(k); math.Abs(s-1) > 1e-12 {
				t.Fatalf("CDF(%g) + TailProb(%g) = %g, want 1", k, k, s)
			}
		}

		// The truncated first moments split the mean exactly:
		// E[X·1{X ≤ k}] + E[X·1{X > k}] = E[X].
		mean := l.Mean()
		for _, k := range []float64{lo, hi} {
			below, above := l.PartialExpectationBelow(k), l.PartialExpectationAbove(k)
			if below < 0 || above < 0 {
				t.Fatalf("negative partial expectation at k=%g: below=%g above=%g", k, below, above)
			}
			sum := below + above
			if math.Abs(sum-mean) > 1e-9*math.Max(mean, 1) {
				t.Fatalf("partial expectations at k=%g sum to %g, want mean %g", k, sum, mean)
			}
		}

		// The lower partial expectation is monotone in the threshold.
		if l.PartialExpectationBelow(lo) > l.PartialExpectationBelow(hi)+1e-9*math.Max(mean, 1) {
			t.Fatalf("PartialExpectationBelow not monotone between %g and %g", lo, hi)
		}

		// The density is non-negative wherever it is finite.
		if p := l.PDF(hi); p < 0 || math.IsNaN(p) {
			t.Fatalf("PDF(%g) = %g", hi, p)
		}
	})
}
