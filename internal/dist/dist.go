// Package dist provides the lognormal distribution underlying the paper's
// price model (Assumption 4 of arXiv:2011.11325): if the log-price is
// Gaussian, the price P is lognormal, and every stage integral of §III–§IV
// that is affine in the future price reduces to the truncated first moments
// E[P·1{P ≤ k}] and E[P·1{P > k}] exposed here in closed form.
//
// All formulas route through erfc rather than 1−Φ so that deep-tail
// probabilities and truncated moments are computed without cancellation.
package dist

import (
	"errors"
	"fmt"
	"math"
)

// ErrBadParam reports an invalid argument (such as a quantile level outside
// the open unit interval).
var ErrBadParam = errors.New("dist: invalid parameter")

// invSqrt2Pi is 1/sqrt(2π), the Gaussian density normaliser.
const invSqrt2Pi = 0.3989422804014326779399461

// LogNormal is the law of exp(Z) for Z ~ N(Mu, Sigma²). Sigma must be
// strictly positive; the zero value is not a valid distribution.
type LogNormal struct {
	// Mu is the mean of the underlying normal (the mean log-price).
	Mu float64
	// Sigma is the standard deviation of the underlying normal.
	Sigma float64
}

// stdNormCDF evaluates Φ(z) through erfc, exact in both tails.
func stdNormCDF(z float64) float64 {
	return 0.5 * math.Erfc(-z/math.Sqrt2)
}

// score returns the standardised log-coordinate (ln x − Mu)/Sigma.
func (l LogNormal) score(x float64) float64 {
	return (math.Log(x) - l.Mu) / l.Sigma
}

// PDF returns the density at x; it is zero for x ≤ 0.
func (l LogNormal) PDF(x float64) float64 {
	if x <= 0 {
		return 0
	}
	z := l.score(x)
	return invSqrt2Pi / (x * l.Sigma) * math.Exp(-0.5*z*z)
}

// CDF returns P[X ≤ x]; it is zero for x ≤ 0.
func (l LogNormal) CDF(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return stdNormCDF(l.score(x))
}

// TailProb returns P[X > x] = 1 − CDF(x), evaluated through the
// complementary error function so the deep upper tail does not cancel.
func (l LogNormal) TailProb(x float64) float64 {
	if x <= 0 {
		return 1
	}
	return stdNormCDF(-l.score(x))
}

// Mean returns E[X] = exp(Mu + Sigma²/2).
func (l LogNormal) Mean() float64 {
	return math.Exp(l.Mu + 0.5*l.Sigma*l.Sigma)
}

// Variance returns Var[X] = (exp(Sigma²) − 1)·exp(2Mu + Sigma²).
func (l LogNormal) Variance() float64 {
	s2 := l.Sigma * l.Sigma
	return math.Expm1(s2) * math.Exp(2*l.Mu+s2)
}

// PartialExpectationBelow returns the lower truncated first moment
// E[X·1{X ≤ k}] = E[X]·Φ((ln k − Mu)/Sigma − Sigma); it is zero for k ≤ 0.
// Together with PartialExpectationAbove it splits the mean exactly.
func (l LogNormal) PartialExpectationBelow(k float64) float64 {
	if k <= 0 {
		return 0
	}
	return l.Mean() * stdNormCDF(l.score(k)-l.Sigma)
}

// PartialExpectationAbove returns the upper truncated first moment
// E[X·1{X > k}] = E[X]·Φ(Sigma − (ln k − Mu)/Sigma); it is the full mean
// for k ≤ 0.
func (l LogNormal) PartialExpectationAbove(k float64) float64 {
	if k <= 0 {
		return l.Mean()
	}
	return l.Mean() * stdNormCDF(l.Sigma-l.score(k))
}

// The AtLog variants below take the threshold (or evaluation point) twice:
// as x and as logx, which must equal math.Log(x). They exist for the solve
// engine's hot loops, where one fixed threshold is evaluated against many
// distributions: the caller hoists the logarithm out of the loop and every
// variant reproduces its plain counterpart bit for bit, because score(x)
// uses math.Log(x) and nothing else about x.

// PDFAtLog is PDF with the evaluation point's logarithm precomputed.
func (l LogNormal) PDFAtLog(x, logx float64) float64 {
	if x <= 0 {
		return 0
	}
	z := (logx - l.Mu) / l.Sigma
	return invSqrt2Pi / (x * l.Sigma) * math.Exp(-0.5*z*z)
}

// CDFAtLog is CDF with the threshold's logarithm precomputed.
func (l LogNormal) CDFAtLog(x, logx float64) float64 {
	if x <= 0 {
		return 0
	}
	return stdNormCDF((logx - l.Mu) / l.Sigma)
}

// TailProbAtLog is TailProb with the threshold's logarithm precomputed.
func (l LogNormal) TailProbAtLog(x, logx float64) float64 {
	if x <= 0 {
		return 1
	}
	return stdNormCDF(-((logx - l.Mu) / l.Sigma))
}

// PartialExpectationBelowAtLog is PartialExpectationBelow with the
// threshold's logarithm precomputed.
func (l LogNormal) PartialExpectationBelowAtLog(k, logk float64) float64 {
	if k <= 0 {
		return 0
	}
	return l.Mean() * stdNormCDF((logk-l.Mu)/l.Sigma-l.Sigma)
}

// PartialExpectationAboveAtLog is PartialExpectationAbove with the
// threshold's logarithm precomputed.
func (l LogNormal) PartialExpectationAboveAtLog(k, logk float64) float64 {
	if k <= 0 {
		return l.Mean()
	}
	return l.Mean() * stdNormCDF(l.Sigma-(logk-l.Mu)/l.Sigma)
}

// Quantile returns the q-quantile exp(Mu + Sigma·Φ⁻¹(q)) for q in (0, 1).
func (l LogNormal) Quantile(q float64) (float64, error) {
	if !(q > 0 && q < 1) {
		return 0, fmt.Errorf("%w: quantile level q=%g must be in (0, 1)", ErrBadParam, q)
	}
	return math.Exp(l.Mu + l.Sigma*math.Sqrt2*math.Erfinv(2*q-1)), nil
}
