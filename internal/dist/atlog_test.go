package dist

import (
	"math"
	"testing"
)

// TestAtLogVariantsMatchPlainBitwise pins the hoisted-logarithm variants to
// their plain counterparts exactly: the solve engine relies on them being
// interchangeable without any ULP drift.
func TestAtLogVariantsMatchPlainBitwise(t *testing.T) {
	dists := []LogNormal{
		{Mu: 0, Sigma: 1},
		{Mu: 0.6931471805599453, Sigma: 0.05},
		{Mu: -3.2, Sigma: 2.7},
	}
	points := []float64{1e-12, 0.37, 1, 2.5, 42, 1e9, 0, -1}
	for _, l := range dists {
		for _, x := range points {
			lx := math.Log(x)
			check := func(name string, got, want float64) {
				t.Helper()
				if math.Float64bits(got) != math.Float64bits(want) {
					t.Errorf("%v.%s(%g): AtLog %v != plain %v", l, name, x, got, want)
				}
			}
			check("PDF", l.PDFAtLog(x, lx), l.PDF(x))
			check("CDF", l.CDFAtLog(x, lx), l.CDF(x))
			check("TailProb", l.TailProbAtLog(x, lx), l.TailProb(x))
			check("PartialExpectationBelow", l.PartialExpectationBelowAtLog(x, lx), l.PartialExpectationBelow(x))
			check("PartialExpectationAbove", l.PartialExpectationAboveAtLog(x, lx), l.PartialExpectationAbove(x))
		}
	}
}
