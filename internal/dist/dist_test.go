package dist

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"repro/internal/mathx"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

// laws are the distributions exercised by every property test: the Table III
// transition at τa and τb, a high-volatility law, and a drifting one.
func laws() []LogNormal {
	return []LogNormal{
		{Mu: math.Log(2) + (0.002-0.005)*3, Sigma: 0.1 * math.Sqrt(3)},
		{Mu: math.Log(2) + (0.002-0.005)*4, Sigma: 0.2},
		{Mu: 0, Sigma: 0.8},
		{Mu: -0.3, Sigma: 0.35},
	}
}

// upper returns an integration limit covering all but ~1e-13 of l's mass.
func upper(l LogNormal) float64 {
	return math.Exp(l.Mu + 8*l.Sigma)
}

func TestPDFIntegratesToOne(t *testing.T) {
	gl := mathx.MustGaussLegendre(64)
	for _, l := range laws() {
		got := gl.IntegratePanels(l.PDF, 1e-12, upper(l), 192)
		if !almostEqual(got, 1, 1e-10) {
			t.Errorf("%+v: ∫PDF = %.14f, want 1", l, got)
		}
	}
}

func TestCDFMatchesQuadrature(t *testing.T) {
	gl := mathx.MustGaussLegendre(64)
	for _, l := range laws() {
		for _, q := range []float64{0.1, 0.35, 0.5, 0.8, 0.99} {
			x, err := l.Quantile(q)
			if err != nil {
				t.Fatal(err)
			}
			got := gl.IntegratePanels(l.PDF, 1e-12, x, 64)
			if !almostEqual(got, l.CDF(x), 1e-10) {
				t.Errorf("%+v: ∫₀^%g PDF = %.12f, CDF = %.12f", l, x, got, l.CDF(x))
			}
		}
	}
}

func TestPDFIsDerivativeOfCDF(t *testing.T) {
	for _, l := range laws() {
		for _, x := range []float64{0.5, 1, 1.8, 2.5, 4} {
			h := 1e-6 * x
			numDeriv := (l.CDF(x+h) - l.CDF(x-h)) / (2 * h)
			if got := l.PDF(x); !almostEqual(got, numDeriv, 1e-5*(1+got)) {
				t.Errorf("%+v: PDF(%v) = %.10f, dCDF/dx ≈ %.10f", l, x, got, numDeriv)
			}
		}
	}
}

func TestMeanAndVarianceMatchQuadrature(t *testing.T) {
	gl := mathx.MustGaussLegendre(96)
	for _, l := range laws() {
		mean := gl.IntegratePanels(func(x float64) float64 { return x * l.PDF(x) }, 1e-12, upper(l), 96)
		if want := l.Mean(); !almostEqual(mean, want, 1e-9*want) {
			t.Errorf("%+v: ∫x·PDF = %.12f, Mean = %.12f", l, mean, want)
		}
		second := gl.IntegratePanels(func(x float64) float64 { return x * x * l.PDF(x) }, 1e-12, upper(l), 96)
		if want := l.Variance(); !almostEqual(second-mean*mean, want, 1e-7*want) {
			t.Errorf("%+v: quadrature variance = %.12f, Variance = %.12f", l, second-mean*mean, want)
		}
	}
}

// TestPartialExpectationsMatchQuadrature is the closed-form-vs-quadrature
// cross-check for the truncated moments the stage integrals rely on:
// E[X·1{X ≤ k}] must equal ∫₀ᵏ x·PDF(x) dx for every cut k.
func TestPartialExpectationsMatchQuadrature(t *testing.T) {
	gl := mathx.MustGaussLegendre(96)
	for _, l := range laws() {
		for _, k := range []float64{0.25, 0.9, 1.48, 2, 3.7, 8} {
			below := gl.IntegratePanels(func(x float64) float64 { return x * l.PDF(x) }, 1e-12, k, 96)
			if got := l.PartialExpectationBelow(k); !almostEqual(got, below, 1e-9*(1+below)) {
				t.Errorf("%+v: PE_below(%v) = %.12f, quadrature %.12f", l, k, got, below)
			}
			above := gl.IntegratePanels(func(x float64) float64 { return x * l.PDF(x) }, k, upper(l), 96)
			if got := l.PartialExpectationAbove(k); !almostEqual(got, above, 1e-9*(1+above)) {
				t.Errorf("%+v: PE_above(%v) = %.12f, quadrature %.12f", l, k, got, above)
			}
		}
	}
}

func TestPartialExpectationsSplitMean(t *testing.T) {
	for _, l := range laws() {
		err := quick.Check(func(a float64) bool {
			k := 0.01 + math.Mod(math.Abs(a), 20)
			sum := l.PartialExpectationBelow(k) + l.PartialExpectationAbove(k)
			return almostEqual(sum, l.Mean(), 1e-12*l.Mean())
		}, &quick.Config{MaxCount: 200})
		if err != nil {
			t.Errorf("%+v: %v", l, err)
		}
	}
}

func TestTailProbComplementsCDF(t *testing.T) {
	for _, l := range laws() {
		err := quick.Check(func(a float64) bool {
			x := 0.01 + math.Mod(math.Abs(a), 10)
			return almostEqual(l.CDF(x)+l.TailProb(x), 1, 1e-12)
		}, &quick.Config{MaxCount: 200})
		if err != nil {
			t.Errorf("%+v: %v", l, err)
		}
	}
}

func TestDeepTailsDoNotCancel(t *testing.T) {
	l := LogNormal{Mu: 0, Sigma: 0.1}
	// 1 − CDF would round to zero here; erfc keeps a meaningful tail.
	if got := l.TailProb(math.Exp(9 * 0.1)); got <= 0 {
		t.Errorf("TailProb 9σ out = %v, want > 0", got)
	}
	if got := l.CDF(math.Exp(-9 * 0.1)); got <= 0 {
		t.Errorf("CDF 9σ under = %v, want > 0", got)
	}
}

func TestQuantileCDFRoundTrip(t *testing.T) {
	for _, l := range laws() {
		for q := 0.005; q < 1; q += 0.015 {
			x, err := l.Quantile(q)
			if err != nil {
				t.Fatalf("Quantile(%v): %v", q, err)
			}
			if got := l.CDF(x); !almostEqual(got, q, 1e-12) {
				t.Errorf("%+v: CDF(Quantile(%v)) = %.15f", l, q, got)
			}
		}
	}
}

func TestQuantileErrors(t *testing.T) {
	l := laws()[0]
	for _, q := range []float64{-0.1, 0, 1, 1.5, math.NaN()} {
		if _, err := l.Quantile(q); !errors.Is(err, ErrBadParam) {
			t.Errorf("Quantile(%v) err = %v, want ErrBadParam", q, err)
		}
	}
}

func TestSupportBoundaries(t *testing.T) {
	l := laws()[0]
	if got := l.PDF(-1); got != 0 {
		t.Errorf("PDF(-1) = %v", got)
	}
	if got := l.CDF(0); got != 0 {
		t.Errorf("CDF(0) = %v", got)
	}
	if got := l.TailProb(0); got != 1 {
		t.Errorf("TailProb(0) = %v", got)
	}
	if got := l.PartialExpectationBelow(0); got != 0 {
		t.Errorf("PE_below(0) = %v", got)
	}
	if got := l.PartialExpectationAbove(-2); got != l.Mean() {
		t.Errorf("PE_above(-2) = %v, want Mean %v", got, l.Mean())
	}
}

func TestMedianIsExpMu(t *testing.T) {
	for _, l := range laws() {
		med, err := l.Quantile(0.5)
		if err != nil {
			t.Fatal(err)
		}
		if want := math.Exp(l.Mu); !almostEqual(med, want, 1e-12*want) {
			t.Errorf("%+v: median = %v, want e^Mu = %v", l, med, want)
		}
	}
}
