package lazyrng

import (
	"math/rand"
	"testing"
)

// TestStreamMatchesMathRand pins the whole point of the package: for a
// spread of seeds (including the 0 fixed point, negatives, and values
// beyond int32max) the lazy source reproduces rand.NewSource's stream bit
// for bit — through the lazy window, across the materialisation boundary,
// and deep into the plain walk.
func TestStreamMatchesMathRand(t *testing.T) {
	seeds := []int64{0, 1, -1, 42, 89482311, int64(1) << 40, -(int64(1) << 40), 2147483646, 2147483647, 7_432_109_876_543}
	for _, seed := range seeds {
		ref := rand.NewSource(seed).(rand.Source64)
		lazy := New(seed)
		for j := 0; j < lazyDraws+700; j++ {
			want := ref.Uint64()
			got := lazy.Uint64()
			if got != want {
				t.Fatalf("seed %d draw %d: lazy %#x != math/rand %#x", seed, j, got, want)
			}
		}
	}
}

// TestInt63MatchesMathRand checks the Int63 masking path.
func TestInt63MatchesMathRand(t *testing.T) {
	ref := rand.NewSource(99)
	lazy := New(99)
	for j := 0; j < 50; j++ {
		if got, want := lazy.Int63(), ref.Int63(); got != want {
			t.Fatalf("draw %d: Int63 %d != %d", j, got, want)
		}
	}
}

// TestReseedRestartsTheStream checks that Seed is equivalent to a fresh
// source — the per-path reseed contract of the Monte Carlo runner —
// including reseeding after the fallback has materialised the vector.
func TestReseedRestartsTheStream(t *testing.T) {
	s := New(5)
	first := make([]uint64, 8)
	for i := range first {
		first[i] = s.Uint64()
	}
	// Run deep into fallback mode, then reseed.
	for i := 0; i < lazyDraws+10; i++ {
		s.Uint64()
	}
	s.Seed(5)
	for i := range first {
		if got := s.Uint64(); got != first[i] {
			t.Fatalf("draw %d after reseed: %#x != first pass %#x", i, got, first[i])
		}
	}
}

// TestRandRandIntegration drives the source through rand.New — the way the
// simulator consumes it — and compares NormFloat64 draws, which is the
// exact consumption pattern of the GBM price feed.
func TestRandRandIntegration(t *testing.T) {
	for _, seed := range []int64{3, 1234567891234} {
		ref := rand.New(rand.NewSource(seed))
		lazy := rand.New(New(seed))
		for j := 0; j < 100; j++ {
			if got, want := lazy.NormFloat64(), ref.NormFloat64(); got != want {
				t.Fatalf("seed %d draw %d: NormFloat64 %v != %v", seed, j, got, want)
			}
		}
	}
}

func BenchmarkSeedLazy(b *testing.B) {
	s := New(1)
	for i := 0; i < b.N; i++ {
		s.Seed(int64(i))
		_ = s.Uint64()
	}
}

func BenchmarkSeedMathRand(b *testing.B) {
	src := rand.NewSource(1).(rand.Source64)
	for i := 0; i < b.N; i++ {
		src.Seed(int64(i))
		_ = src.Uint64()
	}
}
