// Package lazyrng provides a reseedable replacement for math/rand's default
// source that produces the exact same stream at a fraction of the reseed
// cost. It exists for the Monte Carlo hot path: every simulated path is
// seeded with its own decorrelated seed, and math/rand's Seed computes a
// 607-element lagged-Fibonacci vector (≈1 900 Lehmer steps, ~75% of the
// per-path CPU before this package) of which a protocol path consumes a
// handful of elements.
//
// The trick: math/rand's generator is an additive lagged-Fibonacci walk
// over a vector seeded from a Lehmer LCG (seedrand, multiplier 48271 modulo
// 2³¹−1). Draw j (for j < 273, the tap distance) reads only the two
// original vector cells 333−j and 606−j, and cell i is a fixed function of
// LCG iterates 21+3i, 22+3i, 23+3i of the seed. Lehmer iterates jump in
// O(1) with precomputed multiplier powers, so the lazy source materialises
// exactly the cells a draw touches — Seed becomes three stores, and each
// draw costs six modular multiplications. Streams are bit-identical to
// rand.NewSource by construction, which keeps every committed golden
// artifact byte-identical; if more than lazyDraws values are drawn the
// source falls back to materialising the full vector and walking it like
// math/rand does.
//
// The stream contract is pinned by TestStreamMatchesMathRand, which
// compares against math/rand itself across seeds and past the fallback
// boundary.
package lazyrng

const (
	rngLen   = 607
	rngTap   = 273
	rngMask  = 1<<63 - 1
	int32max = 1<<31 - 1

	lcgA = 48271 // seedrand's Lehmer multiplier, modulo int32max

	// lazyDraws is the number of draws served lazily before falling back
	// to the materialised vector; it must stay below rngTap, the first
	// draw whose tap re-reads a previously written cell.
	lazyDraws = 256
)

// pow holds lcgA^n mod int32max for every iterate index the lazy window
// can touch: cells 333−j and 606−j for j < lazyDraws need iterates
// 21+3i … 23+3i for i up to 606.
var pow [3*rngLen + 24]uint64

func init() {
	p := uint64(1)
	for n := range pow {
		pow[n] = p
		p = p * lcgA % int32max
	}
}

// Source is a reseedable math/rand-compatible source (implements
// rand.Source64). The zero value is a source seeded with 0; Seed is O(1).
// Like math/rand's source it is not safe for concurrent use.
type Source struct {
	x0   uint64 // adjusted Lehmer seed
	j    int    // next lazy draw index
	full bool   // vec materialised (fallback mode)

	tap, feed int
	vec       [rngLen]int64
}

// New returns a source seeded like rand.NewSource(seed).
func New(seed int64) *Source {
	s := &Source{}
	s.Seed(seed)
	return s
}

// Seed resets the source to the state rand.NewSource(seed) would start in.
// It performs no vector computation: cells are materialised per draw.
func (s *Source) Seed(seed int64) {
	seed %= int32max
	if seed < 0 {
		seed += int32max
	}
	if seed == 0 {
		seed = 89482311 // math/rand's replacement for the fixed point 0
	}
	s.x0 = uint64(seed)
	s.j = 0
	s.full = false
}

// iterate returns Lehmer iterate n of the seed: seedrand applied n times.
func (s *Source) iterate(n int) uint64 {
	return s.x0 * pow[n] % int32max
}

// cell returns original vector cell i — the value math/rand's Seed stores
// in vec[i] — from three Lehmer iterates and the cooked table.
func (s *Source) cell(i int) int64 {
	base := 21 + 3*i
	u := int64(s.iterate(base)) << 40
	u ^= int64(s.iterate(base+1)) << 20
	u ^= int64(s.iterate(base + 2))
	return u ^ cooked[i]
}

// Uint64 returns the next value of the stream rand.NewSource would
// produce.
func (s *Source) Uint64() uint64 {
	if !s.full {
		if s.j < lazyDraws {
			// Draw j reads only original cells: the feed cell 333−j was
			// never written (feed only decreases) and the tap cell 606−j
			// stays ahead of every written cell while j < rngTap.
			x := s.cell(rngLen-rngTap-1-s.j) + s.cell(rngLen-1-s.j)
			s.j++
			return uint64(x)
		}
		s.materialise()
	}
	s.tap--
	if s.tap < 0 {
		s.tap += rngLen
	}
	s.feed--
	if s.feed < 0 {
		s.feed += rngLen
	}
	x := s.vec[s.feed] + s.vec[s.tap]
	s.vec[s.feed] = x
	return uint64(x)
}

// Int63 returns Uint64 with the sign bit cleared, like math/rand.
func (s *Source) Int63() int64 {
	return int64(s.Uint64() & rngMask)
}

// materialise computes the full vector (the work Seed does in math/rand)
// and replays the lazy draws' writes, switching the source to the plain
// lagged-Fibonacci walk.
func (s *Source) materialise() {
	x := int32(s.x0)
	for i := -20; i < rngLen; i++ {
		x = seedrand(x)
		if i >= 0 {
			u := int64(x) << 40
			x = seedrand(x)
			u ^= int64(x) << 20
			x = seedrand(x)
			u ^= int64(x)
			u ^= cooked[i]
			s.vec[i] = u
		}
	}
	s.tap = 0
	s.feed = rngLen - rngTap
	// Replay the draws already served lazily so the walk state matches.
	for t := 0; t < s.j; t++ {
		s.tap--
		if s.tap < 0 {
			s.tap += rngLen
		}
		s.feed--
		if s.feed < 0 {
			s.feed += rngLen
		}
		v := s.vec[s.feed] + s.vec[s.tap]
		s.vec[s.feed] = v
	}
	s.full = true
}

// seedrand is math/rand's Lehmer step (Schrage's method): (48271·x) mod
// (2³¹−1) without overflow in 32-bit arithmetic.
func seedrand(x int32) int32 {
	const (
		a = lcgA
		q = 44488
		r = 3399
	)
	hi := x / q
	lo := x % q
	x = a*lo - r*hi
	if x < 0 {
		x += int32max
	}
	return x
}
