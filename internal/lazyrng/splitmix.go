package lazyrng

// SplitMix is a preallocated, reseedable splitmix64 generator (Steele,
// Lea & Flood, OOPSLA 2014 — the same finaliser internal/sweep uses to
// decorrelate shard seeds). The Monte Carlo runner uses one per worker as
// its secret source: reseeding is a single store, Read fills a preimage
// buffer without allocating, and the stream is a pure function of the seed
// — so secret generation stays deterministic per path without crypto/rand's
// per-path allocation and syscall. It implements io.Reader and
// rand.Source64. Not safe for concurrent use.
type SplitMix struct {
	state uint64
}

// NewSplitMix returns a generator seeded with seed.
func NewSplitMix(seed int64) *SplitMix {
	return &SplitMix{state: uint64(seed)}
}

// Seed resets the stream. It is O(1): splitmix64 has no warm-up.
func (s *SplitMix) Seed(seed int64) { s.state = uint64(seed) }

// Uint64 returns the next value of the stream.
func (s *SplitMix) Uint64() uint64 {
	s.state += 0x9E3779B97F4A7C15
	z := s.state
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	return z
}

// Int63 returns Uint64 with the sign bit cleared (rand.Source).
func (s *SplitMix) Int63() int64 {
	return int64(s.Uint64() >> 1)
}

// Read fills p with pseudorandom bytes (io.Reader; never fails).
func (s *SplitMix) Read(p []byte) (int, error) {
	n := len(p)
	for len(p) >= 8 {
		v := s.Uint64()
		for i := 0; i < 8; i++ {
			p[i] = byte(v >> (8 * i))
		}
		p = p[8:]
	}
	if len(p) > 0 {
		v := s.Uint64()
		for i := range p {
			p[i] = byte(v >> (8 * i))
		}
	}
	return n, nil
}
