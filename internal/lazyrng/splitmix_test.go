package lazyrng

import (
	"testing"

	"repro/internal/sweep"
)

// TestSplitMixMatchesSweepSeed pins the finaliser to internal/sweep's Seed:
// the first value of stream(base) equals sweep.Seed(base, 1) as uint64 —
// both advance the state by the golden-ratio increment and finalise.
func TestSplitMixMatchesSweepSeed(t *testing.T) {
	for _, base := range []int64{0, 1, -7, 123456789} {
		s := NewSplitMix(base)
		if got, want := s.Uint64(), uint64(sweep.Seed(base, 1)); got != want {
			t.Fatalf("base %d: SplitMix first draw %#x != sweep.Seed %#x", base, got, want)
		}
	}
}

func TestSplitMixSeedResets(t *testing.T) {
	s := NewSplitMix(9)
	a, b := s.Uint64(), s.Uint64()
	if a == b {
		t.Fatal("stream repeated immediately")
	}
	s.Seed(9)
	if got := s.Uint64(); got != a {
		t.Fatalf("reseeded stream starts at %#x, want %#x", got, a)
	}
}

func TestSplitMixReadDeterministic(t *testing.T) {
	s := NewSplitMix(4)
	buf1 := make([]byte, 32)
	if n, err := s.Read(buf1); n != 32 || err != nil {
		t.Fatalf("Read = (%d, %v)", n, err)
	}
	s.Seed(4)
	buf2 := make([]byte, 32)
	s.Read(buf2)
	if string(buf1) != string(buf2) {
		t.Fatal("reseeded Read differs")
	}
	// Odd-length tail path.
	tail := make([]byte, 5)
	if n, err := s.Read(tail); n != 5 || err != nil {
		t.Fatalf("odd Read = (%d, %v)", n, err)
	}
	var zero int
	for _, b := range tail {
		if b == 0 {
			zero++
		}
	}
	if zero == len(tail) {
		t.Fatal("tail bytes all zero")
	}
}

func TestSplitMixInt63NonNegative(t *testing.T) {
	s := NewSplitMix(-3)
	for i := 0; i < 1000; i++ {
		if v := s.Int63(); v < 0 {
			t.Fatalf("Int63 returned negative %d", v)
		}
	}
}
