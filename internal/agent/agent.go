package agent

import (
	"errors"
	"fmt"
	"io"
	"math"

	"repro/internal/chain"
	"repro/internal/core"
	"repro/internal/htlc"
	"repro/internal/mathx"
	"repro/internal/sim"
	"repro/internal/timeline"
)

// ErrBadAgent reports invalid agent configuration.
var ErrBadAgent = errors.New("agent: invalid configuration")

// Decision records one choice made at a decision point, for post-run
// analysis and tests.
type Decision struct {
	// Stage is the decision point ("t1", "t2", "t3", "t4").
	Stage string
	// Time is the simulated time of the decision.
	Time float64
	// Price is the observed Token_b price (0 when not price-driven).
	Price float64
	// Action is the choice taken.
	Action core.Action
	// Reason explains the choice ("price>cutoff", "counterparty-missing"…).
	Reason string
}

// Env bundles the shared simulation environment the agents act in.
type Env struct {
	// Sched drives simulated time.
	Sched *sim.Scheduler
	// ChainA hosts Token_a; ChainB hosts Token_b.
	ChainA, ChainB *chain.Chain
	// Feed is the shared market price of Token_b in Token_a.
	Feed *PriceFeed
	// Timeline fixes the idealized decision times (Eq. 13).
	Timeline timeline.Timeline
}

func (e Env) validate() error {
	if e.Sched == nil || e.ChainA == nil || e.ChainB == nil || e.Feed == nil {
		return fmt.Errorf("%w: nil environment component", ErrBadAgent)
	}
	return nil
}

// Alice is the swap initiator: she generates the secret, locks P* Token_a
// on Chain_a at t1, and decides at t3 whether to reveal on Chain_b.
type Alice struct {
	// Account is Alice's address on both chains.
	Account string
	// Counterparty is Bob's address.
	Counterparty string
	// Strategy holds the solved thresholds.
	Strategy core.Strategy
	// TokenBAmount is the Token_b quantity expected from Bob (1 in the
	// basic game).
	TokenBAmount float64
	// SecretSource feeds secret generation; nil uses crypto/rand.
	SecretSource io.Reader

	env        Env
	secret     htlc.Secret
	hash       htlc.Hash
	contractA  string // Alice's lock on Chain_a
	contractB  string // Bob's lock on Chain_b, discovered at t3
	claimTxB   string
	decisions  []Decision
	cutoffEval func(p float64) bool

	// secretStore backs the per-path secret so a reused Alice draws every
	// path's preimage into the same buffer; findBobLock is the t3 contract
	// predicate, built once so the per-path search captures no closure.
	secretStore [htlc.SecretSize]byte
	findBobLock func(*htlc.Contract) bool
}

// NewAlice validates and binds an Alice agent to the environment.
func NewAlice(env Env, account, counterparty string, strat core.Strategy, tokenB float64, secretSource io.Reader) (*Alice, error) {
	if err := env.validate(); err != nil {
		return nil, err
	}
	if account == "" || counterparty == "" || account == counterparty {
		return nil, fmt.Errorf("%w: accounts %q/%q", ErrBadAgent, account, counterparty)
	}
	if tokenB <= 0 {
		return nil, fmt.Errorf("%w: tokenB amount %g", ErrBadAgent, tokenB)
	}
	a := &Alice{
		Account:      account,
		Counterparty: counterparty,
		Strategy:     strat,
		TokenBAmount: tokenB,
		SecretSource: secretSource,
		env:          env,
	}
	a.cutoffEval = func(p float64) bool { return p > strat.AliceCutoffT3 }
	a.findBobLock = func(c *htlc.Contract) bool {
		return c.Lock == a.hash &&
			c.Recipient == a.Account &&
			c.State() == htlc.Locked &&
			c.Amount >= a.TokenBAmount &&
			c.Expiry >= a.env.Timeline.TB
	}
	return a, nil
}

// Scheduler-call adapters: package-level functions with the agent passed
// as an interface word, so per-path scheduling allocates neither a closure
// nor a method value (see sim.Scheduler.ScheduleCall).
func aliceT1Call(a, _ any)     { a.(*Alice).actT1() }
func aliceT3Call(a, _ any)     { a.(*Alice).actT3() }
func aliceRefundCall(a, _ any) { a.(*Alice).refund() }
func bobT2Call(b, _ any)       { b.(*Bob).actT2() }
func bobRefundCall(b, _ any)   { b.(*Bob).refund() }

// Reset clears Alice's per-run state (secret, contract bindings, decision
// log) so the agent can be restarted on a reset environment, keeping its
// strategy and the decision-log capacity. Start re-arms the protocol.
func (a *Alice) Reset() {
	a.secret = nil
	a.hash = htlc.Hash{}
	a.contractA, a.contractB, a.claimTxB = "", "", ""
	a.decisions = a.decisions[:0]
}

// Decisions returns the decision log in order.
func (a *Alice) Decisions() []Decision {
	out := make([]Decision, len(a.decisions))
	copy(out, a.decisions)
	return out
}

// AppendDecisions appends the decision log to dst without allocating a
// fresh slice per call — the reusable-state Monte Carlo runner's
// alternative to Decisions.
func (a *Alice) AppendDecisions(dst []Decision) []Decision {
	return append(dst, a.decisions...)
}

// ContractA returns the ID of Alice's lock on Chain_a ("" before t1).
func (a *Alice) ContractA() string { return a.contractA }

// Secret exposes the generated secret (tests only need its existence).
func (a *Alice) Secret() htlc.Secret { return append(htlc.Secret(nil), a.secret...) }

// Start schedules Alice's protocol actions.
func (a *Alice) Start() error {
	return a.env.Sched.ScheduleCall(a.env.Timeline.T1, sim.PriorityDefault, "alice-t1", aliceT1Call, a, nil)
}

func (a *Alice) record(stage string, price float64, action core.Action, reason string) {
	a.decisions = append(a.decisions, Decision{
		Stage:  stage,
		Time:   a.env.Sched.Now(),
		Price:  price,
		Action: action,
		Reason: reason,
	})
}

// actT1 initiates the swap when the strategy says so (Eq. 30).
func (a *Alice) actT1() {
	if !a.Strategy.AliceInitiates {
		a.record("t1", 0, core.Stop, "rate-outside-feasible-range")
		return
	}
	hash, err := htlc.FillSecret(a.secretStore[:], a.SecretSource)
	if err != nil {
		a.record("t1", 0, core.Stop, "secret-generation-failed: "+err.Error())
		return
	}
	a.secret, a.hash = a.secretStore[:], hash
	_, ctID, err := a.env.ChainA.SubmitLock(a.Account, a.Counterparty, a.Strategy.PStar, hash, a.env.Timeline.TA)
	if err != nil {
		a.record("t1", 0, core.Stop, "lock-submission-failed: "+err.Error())
		return
	}
	a.contractA = ctID
	a.record("t1", 0, core.Cont, "initiate")
	// t3 decision and the safety refund at expiry.
	if err := a.env.Sched.ScheduleCall(a.env.Timeline.T3, sim.PriorityDefault, "alice-t3", aliceT3Call, a, nil); err != nil {
		a.record("t3", 0, core.Stop, "scheduling-failed: "+err.Error())
	}
	if err := a.env.Sched.ScheduleCall(a.env.Timeline.TA, sim.PriorityDefault, "alice-refund", aliceRefundCall, a, nil); err != nil {
		a.record("t8", 0, core.Stop, "scheduling-failed: "+err.Error())
	}
}

// actT3 verifies Bob's contract and applies the cut-off rule (Eq. 19).
func (a *Alice) actT3() {
	ct, ok := a.env.ChainB.FindContract(a.findBobLock)
	if !ok {
		a.record("t3", 0, core.Stop, "counterparty-contract-missing")
		return
	}
	a.contractB = ct.ID
	price, err := a.env.Feed.At(a.env.Sched.Now())
	if err != nil {
		a.record("t3", 0, core.Stop, "price-feed-failed: "+err.Error())
		return
	}
	if !a.cutoffEval(price) {
		a.record("t3", price, core.Stop, "price<=cutoff")
		return
	}
	if tx, err := a.env.ChainB.SubmitClaim(a.contractB, a.secret); err != nil {
		a.record("t3", price, core.Stop, "claim-submission-failed: "+err.Error())
	} else {
		a.claimTxB = tx
		a.record("t3", price, core.Cont, "reveal-secret")
	}
}

// refundErr records a failed refund.
func (a *Alice) refundErr(reason string) { a.record("t8", 0, core.Stop, reason) }

// refund reclaims Alice's escrow if her contract is still locked at expiry.
func (a *Alice) refund() {
	retryRefund(a.env, a.env.ChainA, a.contractA, "alice-refund-retry", a.refundErr)
}

// Bob is the responder: he verifies Alice's lock at t2, decides by the
// continuation region whether to lock 1 Token_b, and claims Token_a the
// moment the secret appears in Chain_b's mempool (t4, §III.E.1).
type Bob struct {
	// Account is Bob's address on both chains.
	Account string
	// Counterparty is Alice's address.
	Counterparty string
	// Strategy holds the solved thresholds.
	Strategy core.Strategy
	// TokenBAmount is the Token_b quantity Bob locks (1 in the basic game).
	TokenBAmount float64

	env       Env
	contractA string // Alice's lock, verified at t2
	contractB string // Bob's own lock
	claimed   bool
	decisions []Decision

	// onSecretFn and findAliceLock are built once at construction so the
	// per-path mempool watch and contract search capture no closure.
	onSecretFn    chain.SecretObserver
	findAliceLock func(*htlc.Contract) bool
}

// NewBob validates and binds a Bob agent to the environment.
func NewBob(env Env, account, counterparty string, strat core.Strategy, tokenB float64) (*Bob, error) {
	if err := env.validate(); err != nil {
		return nil, err
	}
	if account == "" || counterparty == "" || account == counterparty {
		return nil, fmt.Errorf("%w: accounts %q/%q", ErrBadAgent, account, counterparty)
	}
	if tokenB <= 0 {
		return nil, fmt.Errorf("%w: tokenB amount %g", ErrBadAgent, tokenB)
	}
	b := &Bob{
		Account:      account,
		Counterparty: counterparty,
		Strategy:     strat,
		TokenBAmount: tokenB,
		env:          env,
	}
	b.onSecretFn = b.onSecret
	b.findAliceLock = func(c *htlc.Contract) bool {
		return c.Recipient == b.Account &&
			c.State() == htlc.Locked &&
			c.Amount >= b.Strategy.PStar-1e-12 &&
			c.Expiry >= b.env.Timeline.TA-1e-12
	}
	return b, nil
}

// Reset clears Bob's per-run state so the agent can be restarted on a
// reset environment, keeping its strategy and the decision-log capacity.
// Start re-arms the protocol (including the mempool watch, which a chain
// reset drops).
func (b *Bob) Reset() {
	b.contractA, b.contractB = "", ""
	b.claimed = false
	b.decisions = b.decisions[:0]
}

// Decisions returns the decision log in order.
func (b *Bob) Decisions() []Decision {
	out := make([]Decision, len(b.decisions))
	copy(out, b.decisions)
	return out
}

// AppendDecisions appends the decision log to dst without allocating a
// fresh slice per call (see Alice.AppendDecisions).
func (b *Bob) AppendDecisions(dst []Decision) []Decision {
	return append(dst, b.decisions...)
}

// ContractB returns the ID of Bob's lock on Chain_b ("" if he never locked).
func (b *Bob) ContractB() string { return b.contractB }

// Start schedules Bob's protocol actions and mempool watching.
func (b *Bob) Start() error {
	b.env.ChainB.WatchSecrets(b.onSecretFn)
	return b.env.Sched.ScheduleCall(b.env.Timeline.T2, sim.PriorityDefault, "bob-t2", bobT2Call, b, nil)
}

func (b *Bob) record(stage string, price float64, action core.Action, reason string) {
	b.decisions = append(b.decisions, Decision{
		Stage:  stage,
		Time:   b.env.Sched.Now(),
		Price:  price,
		Action: action,
		Reason: reason,
	})
}

// actT2 verifies Alice's contract and applies the continuation region
// (Eq. 24).
func (b *Bob) actT2() {
	ct, ok := b.env.ChainA.FindContract(b.findAliceLock)
	if !ok {
		b.record("t2", 0, core.Stop, "initiator-contract-missing")
		return
	}
	b.contractA = ct.ID
	price, err := b.env.Feed.At(b.env.Sched.Now())
	if err != nil {
		b.record("t2", 0, core.Stop, "price-feed-failed: "+err.Error())
		return
	}
	if !b.Strategy.BobContT2.Contains(price) {
		b.record("t2", price, core.Stop, "price-outside-cont-region")
		return
	}
	_, ctID, err := b.env.ChainB.SubmitLock(b.Account, b.Counterparty, b.TokenBAmount, ct.Lock, b.env.Timeline.TB)
	if err != nil {
		b.record("t2", price, core.Stop, "lock-submission-failed: "+err.Error())
		return
	}
	b.contractB = ctID
	b.record("t2", price, core.Cont, "lock-token-b")
	if err := b.env.Sched.ScheduleCall(b.env.Timeline.TB, sim.PriorityDefault, "bob-refund", bobRefundCall, b, nil); err != nil {
		b.record("t7", 0, core.Stop, "scheduling-failed: "+err.Error())
	}
}

// onSecret claims Token_a as soon as the preimage is visible (t4): "B
// chooses to continue with certainty" (§III.E.1).
func (b *Bob) onSecret(contractID string, secret htlc.Secret) {
	if b.claimed || contractID != b.contractB || b.contractA == "" {
		return
	}
	b.claimed = true
	if _, err := b.env.ChainA.SubmitClaim(b.contractA, secret); err != nil {
		b.record("t4", 0, core.Stop, "claim-submission-failed: "+err.Error())
		return
	}
	b.record("t4", 0, core.Cont, "claim-with-revealed-secret")
}

// refundErr records a failed refund (see Alice.refundErr).
func (b *Bob) refundErr(reason string) { b.record("t7", 0, core.Stop, reason) }

// refund reclaims Bob's escrow if his contract is still locked at expiry.
func (b *Bob) refund() {
	retryRefund(b.env, b.env.ChainB, b.contractB, "bob-refund-retry", b.refundErr)
}

// retryRefund submits a refund for a still-locked contract, re-arming after
// a crash window when the lock has not even executed yet (a halted chain
// creates the escrow only after recovery).
func retryRefund(env Env, c *chain.Chain, contractID, label string, onErr func(string)) {
	if contractID == "" {
		return
	}
	ct, err := c.Contract(contractID)
	if err != nil {
		// Lock not yet executed. If the chain is down, check again at
		// recovery; otherwise the lock failed and there is nothing to do.
		if until := c.HaltedUntil(); until > env.Sched.Now() {
			if err := env.Sched.Schedule(until, label, func() {
				retryRefund(env, c, contractID, label, onErr)
			}); err != nil {
				onErr("refund-retry-scheduling-failed: " + err.Error())
			}
		}
		return
	}
	if ct.State() != htlc.Locked {
		return
	}
	if _, err := c.SubmitRefund(contractID); err != nil {
		onErr("refund-submission-failed: " + err.Error())
	}
}

// HonestStrategy returns thresholds that always continue: Alice reveals at
// any price and Bob locks at any price — the protocol-following behaviour
// against which rational deviations are measured.
func HonestStrategy(pstar float64) core.Strategy {
	return core.Strategy{
		PStar:          pstar,
		AliceInitiates: true,
		BobContT2:      fullPriceRange(),
		AliceCutoffT3:  0,
	}
}

// WithdrawingAliceStrategy returns thresholds where Alice initiates but
// never reveals the secret (the "free option" abandonment).
func WithdrawingAliceStrategy(pstar float64) core.Strategy {
	return core.Strategy{
		PStar:          pstar,
		AliceInitiates: true,
		BobContT2:      fullPriceRange(),
		AliceCutoffT3:  math.Inf(1),
	}
}

// WithdrawingBobStrategy returns thresholds where Bob never locks,
// leaving Alice to wait for her refund.
func WithdrawingBobStrategy(pstar float64) core.Strategy {
	return core.Strategy{
		PStar:          pstar,
		AliceInitiates: true,
		AliceCutoffT3:  0,
		// BobContT2 left empty: stop at every price.
	}
}

func fullPriceRange() mathx.IntervalSet {
	return mathx.NewIntervalSet(mathx.Interval{Lo: 0, Hi: math.Inf(1)})
}
