// Package agent implements the transacting agents of the swap game: a
// lazily-sampled GBM price feed shared by both parties (complete-information
// Assumption 7 — both observe the same price), and Alice/Bob protocol agents
// that execute threshold strategies from internal/core on the simulated
// chains. Honest, rational and adversarial behaviours are all expressed as
// strategy values (§II: "we do not define honest or malicious actors
// explicitly … both actors act rationally").
package agent

import (
	"errors"
	"fmt"

	"repro/internal/gbm"
)

// ErrFeed reports invalid price-feed usage.
var ErrFeed = errors.New("agent: invalid price feed query")

// PriceFeed samples a single GBM trajectory lazily: each query at a time not
// earlier than the previous one extends the path with an exact lognormal
// increment. Queries at a previously observed time return the cached value,
// so all agents see one consistent market.
type PriceFeed struct {
	proc  gbm.Process
	rng   gbm.NormalSource
	lastT float64
	lastP float64
}

// NewPriceFeed starts a feed at price p0 (time 0). The rng may be any
// standard-normal source: *rand.Rand for pseudo sampling, or a sampler
// wrapper feeding antithetic or low-discrepancy increments.
func NewPriceFeed(proc gbm.Process, p0 float64, rng gbm.NormalSource) (*PriceFeed, error) {
	if p0 <= 0 {
		return nil, fmt.Errorf("%w: p0=%g must be > 0", ErrFeed, p0)
	}
	if rng == nil {
		return nil, fmt.Errorf("%w: nil rng", ErrFeed)
	}
	return &PriceFeed{proc: proc, rng: rng, lastP: p0}, nil
}

// Reset rewinds the feed to price p0 at time zero, keeping its process and
// RNG. Reseed the RNG separately when the next trajectory must be a fixed
// function of a path seed.
func (f *PriceFeed) Reset(p0 float64) error {
	if p0 <= 0 {
		return fmt.Errorf("%w: p0=%g must be > 0", ErrFeed, p0)
	}
	f.lastT, f.lastP = 0, p0
	return nil
}

// At returns the price at simulated time t. Queries must be monotone in t
// (the event scheduler guarantees this); repeated queries at the same time
// return the same price.
func (f *PriceFeed) At(t float64) (float64, error) {
	switch {
	case t < f.lastT:
		return 0, fmt.Errorf("%w: time %g before last query %g", ErrFeed, t, f.lastT)
	case t == f.lastT:
		return f.lastP, nil
	default:
		f.lastP = f.proc.Step(f.rng, f.lastP, t-f.lastT)
		f.lastT = t
		return f.lastP, nil
	}
}

// Last returns the most recently sampled (time, price) pair.
func (f *PriceFeed) Last() (t, p float64) { return f.lastT, f.lastP }
