package agent

import (
	"errors"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"repro/internal/chain"
	"repro/internal/core"
	"repro/internal/gbm"
	"repro/internal/htlc"
	"repro/internal/sim"
	"repro/internal/timeline"
	"repro/internal/utility"
)

func testEnv(t *testing.T) Env {
	t.Helper()
	p := utility.Default()
	sched := sim.NewScheduler()
	tl, err := timeline.Idealized(p.Chains)
	if err != nil {
		t.Fatal(err)
	}
	ca, err := chain.New(chain.Config{Name: "chain_a", Asset: "TokenA", Tau: p.Chains.TauA, Eps: 0}, sched)
	if err != nil {
		t.Fatal(err)
	}
	cb, err := chain.New(chain.Config{Name: "chain_b", Asset: "TokenB", Tau: p.Chains.TauB, Eps: p.Chains.EpsB}, sched)
	if err != nil {
		t.Fatal(err)
	}
	feed, err := NewPriceFeed(p.Price, p.P0, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	return Env{Sched: sched, ChainA: ca, ChainB: cb, Feed: feed, Timeline: tl}
}

func TestPriceFeed(t *testing.T) {
	proc := gbm.Process{Mu: 0.002, Sigma: 0.1}
	feed, err := NewPriceFeed(proc, 2, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatalf("NewPriceFeed: %v", err)
	}
	p0, err := feed.At(0)
	if err != nil {
		t.Fatal(err)
	}
	if p0 != 2 {
		t.Errorf("At(0) = %v, want 2", p0)
	}
	p3, err := feed.At(3)
	if err != nil {
		t.Fatal(err)
	}
	if p3 <= 0 {
		t.Errorf("At(3) = %v, want > 0", p3)
	}
	// Repeated query at the same time returns the cached value.
	p3b, err := feed.At(3)
	if err != nil {
		t.Fatal(err)
	}
	if p3b != p3 {
		t.Errorf("repeat At(3) = %v, want %v", p3b, p3)
	}
	// Going backwards is an error.
	if _, err := feed.At(1); !errors.Is(err, ErrFeed) {
		t.Errorf("backwards query err = %v, want ErrFeed", err)
	}
	lt, lp := feed.Last()
	if lt != 3 || lp != p3 {
		t.Errorf("Last() = (%v, %v), want (3, %v)", lt, lp, p3)
	}
}

func TestPriceFeedValidation(t *testing.T) {
	proc := gbm.Process{Mu: 0, Sigma: 0.1}
	if _, err := NewPriceFeed(proc, 0, rand.New(rand.NewSource(1))); !errors.Is(err, ErrFeed) {
		t.Errorf("p0=0 err = %v, want ErrFeed", err)
	}
	if _, err := NewPriceFeed(proc, 2, nil); !errors.Is(err, ErrFeed) {
		t.Errorf("nil rng err = %v, want ErrFeed", err)
	}
}

func TestNewAliceValidation(t *testing.T) {
	env := testEnv(t)
	strat := HonestStrategy(2)
	if _, err := NewAlice(Env{}, "alice", "bob", strat, 1, nil); !errors.Is(err, ErrBadAgent) {
		t.Errorf("empty env err = %v", err)
	}
	if _, err := NewAlice(env, "", "bob", strat, 1, nil); !errors.Is(err, ErrBadAgent) {
		t.Errorf("empty account err = %v", err)
	}
	if _, err := NewAlice(env, "x", "x", strat, 1, nil); !errors.Is(err, ErrBadAgent) {
		t.Errorf("self-trade err = %v", err)
	}
	if _, err := NewAlice(env, "alice", "bob", strat, 0, nil); !errors.Is(err, ErrBadAgent) {
		t.Errorf("zero amount err = %v", err)
	}
	if _, err := NewBob(env, "bob", "alice", strat, -1); !errors.Is(err, ErrBadAgent) {
		t.Errorf("bob bad amount err = %v", err)
	}
	if _, err := NewBob(Env{}, "bob", "alice", strat, 1); !errors.Is(err, ErrBadAgent) {
		t.Errorf("bob empty env err = %v", err)
	}
}

func TestAliceDoesNotInitiateOutsideFeasibleRange(t *testing.T) {
	env := testEnv(t)
	strat := HonestStrategy(2)
	strat.AliceInitiates = false
	alice, err := NewAlice(env, "alice", "bob", strat, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := alice.Start(); err != nil {
		t.Fatal(err)
	}
	env.Sched.Run()
	dec := alice.Decisions()
	if len(dec) != 1 || dec[0].Stage != "t1" || dec[0].Action != core.Stop {
		t.Errorf("decisions = %+v, want single t1 stop", dec)
	}
	if alice.ContractA() != "" {
		t.Error("no contract should exist")
	}
}

func TestHonestAgentsCompleteSwap(t *testing.T) {
	env := testEnv(t)
	if err := env.ChainA.Mint("alice", 5); err != nil {
		t.Fatal(err)
	}
	if err := env.ChainB.Mint("bob", 2); err != nil {
		t.Fatal(err)
	}
	strat := HonestStrategy(2)
	alice, err := NewAlice(env, "alice", "bob", strat, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	bob, err := NewBob(env, "bob", "alice", strat, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := alice.Start(); err != nil {
		t.Fatal(err)
	}
	if err := bob.Start(); err != nil {
		t.Fatal(err)
	}
	env.Sched.Run()

	// Table I: A −2 TokenA +1 TokenB; B +2 TokenA −1 TokenB.
	if got := env.ChainA.Balance("alice"); got != 3 {
		t.Errorf("alice TokenA = %v, want 3", got)
	}
	if got := env.ChainA.Balance("bob"); got != 2 {
		t.Errorf("bob TokenA = %v, want 2", got)
	}
	if got := env.ChainB.Balance("alice"); got != 1 {
		t.Errorf("alice TokenB = %v, want 1", got)
	}
	if got := env.ChainB.Balance("bob"); got != 1 {
		t.Errorf("bob TokenB = %v, want 1", got)
	}
	// Receipt times: Alice at t5 = tb = 11, Bob at t6 = ta = 11 (Eq. 13).
	if env.Sched.Now() != 11 {
		t.Errorf("final event at %v, want 11", env.Sched.Now())
	}
	// Decision logs show the full cont path.
	wantAlice := map[string]core.Action{"t1": core.Cont, "t3": core.Cont}
	for _, d := range alice.Decisions() {
		if want, ok := wantAlice[d.Stage]; ok && d.Action != want {
			t.Errorf("alice %s action = %v, want %v", d.Stage, d.Action, want)
		}
	}
	for _, d := range bob.Decisions() {
		if d.Action != core.Cont {
			t.Errorf("bob %s action = %v, want cont", d.Stage, d.Action)
		}
	}
	if len(alice.Secret()) == 0 {
		t.Error("alice should have generated a secret")
	}
}

func TestBobStopsWhenAliceNeverLocks(t *testing.T) {
	env := testEnv(t)
	if err := env.ChainB.Mint("bob", 2); err != nil {
		t.Fatal(err)
	}
	bob, err := NewBob(env, "bob", "alice", HonestStrategy(2), 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := bob.Start(); err != nil {
		t.Fatal(err)
	}
	env.Sched.Run()
	dec := bob.Decisions()
	if len(dec) != 1 || dec[0].Reason != "initiator-contract-missing" {
		t.Errorf("decisions = %+v, want initiator-contract-missing stop", dec)
	}
	if bob.ContractB() != "" {
		t.Error("bob must not lock without a verified initiation")
	}
}

func TestWithdrawingAliceLeadsToRefunds(t *testing.T) {
	env := testEnv(t)
	if err := env.ChainA.Mint("alice", 5); err != nil {
		t.Fatal(err)
	}
	if err := env.ChainB.Mint("bob", 2); err != nil {
		t.Fatal(err)
	}
	strat := WithdrawingAliceStrategy(2)
	alice, err := NewAlice(env, "alice", "bob", strat, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	bob, err := NewBob(env, "bob", "alice", strat, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := alice.Start(); err != nil {
		t.Fatal(err)
	}
	if err := bob.Start(); err != nil {
		t.Fatal(err)
	}
	env.Sched.Run()
	// Everyone is made whole: refunds at t7 = 15 and t8 = 14.
	if got := env.ChainA.Balance("alice"); got != 5 {
		t.Errorf("alice TokenA = %v, want 5", got)
	}
	if got := env.ChainB.Balance("bob"); got != 2 {
		t.Errorf("bob TokenB = %v, want 2", got)
	}
	if env.Sched.Now() != 15 {
		t.Errorf("last refund at %v, want 15 (t7 = tb + τb)", env.Sched.Now())
	}
}

func TestBobIgnoresForeignSecrets(t *testing.T) {
	env := testEnv(t)
	bob, err := NewBob(env, "bob", "alice", HonestStrategy(2), 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := bob.Start(); err != nil {
		t.Fatal(err)
	}
	// A secret for an unrelated contract must not trigger a claim.
	bob.onSecret("someone-elses-contract", []byte("secret"))
	if len(bob.Decisions()) != 0 {
		t.Errorf("bob acted on a foreign secret: %+v", bob.Decisions())
	}
}

func TestStrategyPresets(t *testing.T) {
	h := HonestStrategy(2.5)
	if !h.AliceInitiates || h.AliceCutoffT3 != 0 || !h.BobContT2.Contains(1e9) || h.PStar != 2.5 {
		t.Errorf("HonestStrategy = %+v", h)
	}
	wa := WithdrawingAliceStrategy(2)
	if !wa.BobContT2.Contains(0.5) {
		t.Error("withdrawing-alice preset should keep Bob honest")
	}
	p3 := wa.AliceCutoffT3
	if !(p3 > 1e308) {
		t.Errorf("withdrawing alice cutoff = %v, want +Inf", p3)
	}
	wb := WithdrawingBobStrategy(2)
	if !wb.BobContT2.Empty() {
		t.Error("withdrawing-bob preset should have an empty cont region")
	}
}

// errReader always fails, for exercising secret-generation failures.
type errReader struct{}

func (errReader) Read([]byte) (int, error) { return 0, errors.New("entropy exhausted") }

func TestAliceSecretGenerationFailure(t *testing.T) {
	env := testEnv(t)
	if err := env.ChainA.Mint("alice", 5); err != nil {
		t.Fatal(err)
	}
	alice, err := NewAlice(env, "alice", "bob", HonestStrategy(2), 1, errReader{})
	if err != nil {
		t.Fatal(err)
	}
	if err := alice.Start(); err != nil {
		t.Fatal(err)
	}
	env.Sched.Run()
	dec := alice.Decisions()
	if len(dec) != 1 || dec[0].Action != core.Stop ||
		!strings.Contains(dec[0].Reason, "secret-generation-failed") {
		t.Errorf("decisions = %+v, want secret-generation stop", dec)
	}
	if alice.ContractA() != "" {
		t.Error("no lock should exist after a failed secret generation")
	}
}

func TestAliceLockSubmissionFailure(t *testing.T) {
	// A malformed strategy (non-positive amount) is rejected at submission
	// and recorded as a t1 stop.
	env := testEnv(t)
	strat := HonestStrategy(2)
	strat.PStar = -2
	alice, err := NewAlice(env, "alice", "bob", strat, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := alice.Start(); err != nil {
		t.Fatal(err)
	}
	env.Sched.Run()
	dec := alice.Decisions()
	if len(dec) != 1 || !strings.Contains(dec[0].Reason, "lock-submission-failed") {
		t.Errorf("decisions = %+v, want lock-submission failure", dec)
	}
}

func TestBobRejectsUnderfundedInitiation(t *testing.T) {
	// Alice locks less than the agreed P*: Bob's verification fails and he
	// stops, even though a contract exists.
	env := testEnv(t)
	if err := env.ChainA.Mint("alice", 5); err != nil {
		t.Fatal(err)
	}
	secret, hash, err := htlc.NewSecret(nil)
	if err != nil {
		t.Fatal(err)
	}
	_ = secret
	if _, _, err := env.ChainA.SubmitLock("alice", "bob", 1.5, hash, env.Timeline.TA); err != nil {
		t.Fatal(err)
	}
	bob, err := NewBob(env, "bob", "alice", HonestStrategy(2), 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := bob.Start(); err != nil {
		t.Fatal(err)
	}
	env.Sched.Run()
	dec := bob.Decisions()
	if len(dec) != 1 || dec[0].Reason != "initiator-contract-missing" {
		t.Errorf("decisions = %+v, want verification failure", dec)
	}
}

func TestAliceRejectsUnderfundedResponse(t *testing.T) {
	// Bob locks less Token_b than expected: Alice's t3 verification fails,
	// she never reveals, and both parties are refunded.
	env := testEnv(t)
	if err := env.ChainA.Mint("alice", 5); err != nil {
		t.Fatal(err)
	}
	if err := env.ChainB.Mint("bob", 2); err != nil {
		t.Fatal(err)
	}
	strat := HonestStrategy(2)
	alice, err := NewAlice(env, "alice", "bob", strat, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Bob locks only half the expected amount.
	bob, err := NewBob(env, "bob", "alice", strat, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if err := alice.Start(); err != nil {
		t.Fatal(err)
	}
	if err := bob.Start(); err != nil {
		t.Fatal(err)
	}
	env.Sched.Run()
	var t3 *Decision
	for i := range alice.Decisions() {
		d := alice.Decisions()[i]
		if d.Stage == "t3" {
			t3 = &d
		}
	}
	if t3 == nil || t3.Action != core.Stop || t3.Reason != "counterparty-contract-missing" {
		t.Errorf("alice t3 = %+v, want verification stop", t3)
	}
	// Everyone whole again after refunds.
	if env.ChainA.Balance("alice") != 5 {
		t.Errorf("alice TokenA = %v, want 5", env.ChainA.Balance("alice"))
	}
	if env.ChainB.Balance("bob") != 2 {
		t.Errorf("bob TokenB = %v, want 2", env.ChainB.Balance("bob"))
	}
}

func TestBobClaimsOnlyOnce(t *testing.T) {
	env := testEnv(t)
	if err := env.ChainA.Mint("alice", 5); err != nil {
		t.Fatal(err)
	}
	if err := env.ChainB.Mint("bob", 2); err != nil {
		t.Fatal(err)
	}
	strat := HonestStrategy(2)
	alice, err := NewAlice(env, "alice", "bob", strat, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	bob, err := NewBob(env, "bob", "alice", strat, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := alice.Start(); err != nil {
		t.Fatal(err)
	}
	if err := bob.Start(); err != nil {
		t.Fatal(err)
	}
	env.Sched.Run()
	// Re-delivering the secret must not trigger a second claim.
	before := len(bob.Decisions())
	bob.onSecret(bob.ContractB(), alice.Secret())
	if len(bob.Decisions()) != before {
		t.Error("bob acted on a duplicate secret delivery")
	}
}

func TestPriceFeedResetReplaysTrajectory(t *testing.T) {
	proc := gbm.Process{Mu: 0.002, Sigma: 0.1}
	rng := rand.New(rand.NewSource(9))
	feed, err := NewPriceFeed(proc, 2, rng)
	if err != nil {
		t.Fatal(err)
	}
	sample := func() [3]float64 {
		var out [3]float64
		for i, at := range []float64{1, 4, 9.5} {
			p, err := feed.At(at)
			if err != nil {
				t.Fatal(err)
			}
			out[i] = p
		}
		return out
	}
	first := sample()
	// Reseeding the shared RNG and resetting the feed replays the exact
	// trajectory — the contract the reusable Monte Carlo runner relies on.
	rng.Seed(9)
	if err := feed.Reset(2); err != nil {
		t.Fatal(err)
	}
	if lt, lp := feed.Last(); lt != 0 || lp != 2 {
		t.Errorf("Last() after reset = (%v, %v), want (0, 2)", lt, lp)
	}
	if second := sample(); second != first {
		t.Errorf("replayed trajectory %v differs from first %v", second, first)
	}
	if err := feed.Reset(0); !errors.Is(err, ErrFeed) {
		t.Errorf("Reset(0) err = %v, want ErrFeed", err)
	}
}

func TestAgentResetClearsDecisionState(t *testing.T) {
	// First run: honest agents complete the swap and log decisions.
	env := testEnv(t)
	strat := HonestStrategy(2)
	alice, err := NewAlice(env, "alice", "bob", strat, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	bob, err := NewBob(env, "bob", "alice", strat, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := alice.Start(); err != nil {
		t.Fatal(err)
	}
	if err := bob.Start(); err != nil {
		t.Fatal(err)
	}
	env.Sched.Run()
	if len(alice.Decisions()) == 0 || len(bob.Decisions()) == 0 {
		t.Fatal("first run logged no decisions")
	}
	if got := alice.AppendDecisions(nil); !reflect.DeepEqual(got, alice.Decisions()) {
		t.Errorf("AppendDecisions = %v, Decisions = %v", got, alice.Decisions())
	}
	if got := bob.AppendDecisions(nil); !reflect.DeepEqual(got, bob.Decisions()) {
		t.Errorf("bob AppendDecisions = %v, Decisions = %v", got, bob.Decisions())
	}

	alice.Reset()
	bob.Reset()
	if len(alice.Decisions()) != 0 || len(bob.Decisions()) != 0 {
		t.Error("Reset left decisions behind")
	}
	if alice.ContractA() != "" || bob.ContractB() != "" {
		t.Error("Reset left contract bindings behind")
	}
	if len(alice.Secret()) != 0 {
		t.Error("Reset left the secret behind")
	}
}
