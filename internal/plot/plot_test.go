package plot

import (
	"errors"
	"math"
	"strings"
	"testing"
)

func TestASCIIBasic(t *testing.T) {
	s := Series{Name: "line", X: []float64{0, 1, 2}, Y: []float64{0, 1, 2}}
	out, err := ASCII("title", "x", "y", 40, 10, s)
	if err != nil {
		t.Fatalf("ASCII: %v", err)
	}
	for _, want := range []string{"title", "x", "y", "line", "*"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) < 13 {
		t.Errorf("too few lines: %d", len(lines))
	}
}

func TestASCIIMultiSeriesMarkers(t *testing.T) {
	a := Series{Name: "a", X: []float64{0, 1}, Y: []float64{0, 1}}
	b := Series{Name: "b", X: []float64{0, 1}, Y: []float64{1, 0}}
	out, err := ASCII("", "x", "y", 30, 8, a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "*") || !strings.Contains(out, "o") {
		t.Errorf("markers missing:\n%s", out)
	}
}

func TestASCIISkipsNaN(t *testing.T) {
	s := Series{Name: "gap", X: []float64{0, 1, 2}, Y: []float64{1, math.NaN(), 2}}
	if _, err := ASCII("", "x", "y", 30, 8, s); err != nil {
		t.Fatalf("NaN points should be skipped, got %v", err)
	}
	allNaN := Series{Name: "void", X: []float64{0, 1}, Y: []float64{math.NaN(), math.NaN()}}
	if _, err := ASCII("", "x", "y", 30, 8, allNaN); !errors.Is(err, ErrBadPlot) {
		t.Errorf("all-NaN err = %v, want ErrBadPlot", err)
	}
}

func TestASCIIConstantSeries(t *testing.T) {
	s := Series{Name: "const", X: []float64{0, 1, 2}, Y: []float64{3, 3, 3}}
	if _, err := ASCII("", "x", "y", 30, 8, s); err != nil {
		t.Fatalf("constant series should render, got %v", err)
	}
}

func TestASCIIValidation(t *testing.T) {
	good := Series{Name: "s", X: []float64{0, 1}, Y: []float64{0, 1}}
	if _, err := ASCII("", "x", "y", 5, 5, good); !errors.Is(err, ErrBadPlot) {
		t.Errorf("tiny area err = %v", err)
	}
	if _, err := ASCII("", "x", "y", 40, 10); !errors.Is(err, ErrBadPlot) {
		t.Errorf("no series err = %v", err)
	}
	bad := Series{Name: "bad", X: []float64{0, 1}, Y: []float64{0}}
	if _, err := ASCII("", "x", "y", 40, 10, bad); !errors.Is(err, ErrBadPlot) {
		t.Errorf("length mismatch err = %v", err)
	}
}

func TestWriteCSV(t *testing.T) {
	var b strings.Builder
	s1 := Series{Name: "curve,one", X: []float64{0, 1}, Y: []float64{2, 3}}
	s2 := Series{Name: "two", X: []float64{5}, Y: []float64{6}}
	if err := WriteCSV(&b, s1, s2); err != nil {
		t.Fatalf("WriteCSV: %v", err)
	}
	got := b.String()
	want := "series,x,y\ncurve;one,0,2\ncurve;one,1,3\ntwo,5,6\n"
	if got != want {
		t.Errorf("csv = %q, want %q", got, want)
	}
	if err := WriteCSV(&b); !errors.Is(err, ErrBadPlot) {
		t.Errorf("empty err = %v", err)
	}
}

func TestTable(t *testing.T) {
	out, err := Table([]string{"Agent", "on Chain_a", "on Chain_b"}, [][]string{
		{"Alice (A)", "-P*", "+1"},
		{"Bob (B)", "+P*", "-1"},
	})
	if err != nil {
		t.Fatalf("Table: %v", err)
	}
	for _, want := range []string{"Agent", "Alice (A)", "+P*", "---"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
	if _, err := Table(nil, nil); !errors.Is(err, ErrBadPlot) {
		t.Errorf("empty header err = %v", err)
	}
	if _, err := Table([]string{"a"}, [][]string{{"1", "2"}}); !errors.Is(err, ErrBadPlot) {
		t.Errorf("ragged row err = %v", err)
	}
}
