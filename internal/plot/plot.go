// Package plot renders figure data as ASCII line charts (for terminal
// inspection of every reproduced figure) and as CSV files (for external
// plotting). It is dependency-free and deliberately small: the scientific
// content lives in internal/figures; this package only draws.
package plot

import (
	"errors"
	"fmt"
	"io"
	"math"
	"strings"
)

// ErrBadPlot reports unusable plotting inputs.
var ErrBadPlot = errors.New("plot: invalid input")

// Series is one named curve. X must be increasing for sensible rendering
// but this is not enforced (scatter data is allowed).
type Series struct {
	// Name labels the curve in the legend and CSV header.
	Name string
	// X and Y are the coordinates; lengths must match.
	X, Y []float64
}

// validate checks a series set for consistent, non-empty data.
func validate(series []Series) error {
	if len(series) == 0 {
		return fmt.Errorf("%w: no series", ErrBadPlot)
	}
	for _, s := range series {
		if len(s.X) == 0 || len(s.X) != len(s.Y) {
			return fmt.Errorf("%w: series %q has %d x / %d y points",
				ErrBadPlot, s.Name, len(s.X), len(s.Y))
		}
	}
	return nil
}

// markers cycles through per-series glyphs.
var markers = []byte{'*', 'o', '+', 'x', '#', '@', '%', '&'}

// ASCII renders the series into a w×h character line chart with axis labels
// and a legend. NaN points are skipped (used for curves with undefined
// regions, e.g. SR outside the feasible range).
func ASCII(title, xlabel, ylabel string, w, h int, series ...Series) (string, error) {
	if w < 20 || h < 5 {
		return "", fmt.Errorf("%w: plot area %dx%d too small", ErrBadPlot, w, h)
	}
	if err := validate(series); err != nil {
		return "", err
	}
	xmin, xmax := math.Inf(1), math.Inf(-1)
	ymin, ymax := math.Inf(1), math.Inf(-1)
	finite := 0
	for _, s := range series {
		for i := range s.X {
			if math.IsNaN(s.X[i]) || math.IsNaN(s.Y[i]) {
				continue
			}
			finite++
			xmin = math.Min(xmin, s.X[i])
			xmax = math.Max(xmax, s.X[i])
			ymin = math.Min(ymin, s.Y[i])
			ymax = math.Max(ymax, s.Y[i])
		}
	}
	if finite == 0 {
		return "", fmt.Errorf("%w: no finite points", ErrBadPlot)
	}
	if xmax == xmin {
		xmax = xmin + 1
	}
	if ymax == ymin {
		ymax = ymin + 1
	}

	cells := make([][]byte, h)
	for r := range cells {
		cells[r] = []byte(strings.Repeat(" ", w))
	}
	for si, s := range series {
		mark := markers[si%len(markers)]
		for i := range s.X {
			if math.IsNaN(s.X[i]) || math.IsNaN(s.Y[i]) {
				continue
			}
			col := int(float64(w-1) * (s.X[i] - xmin) / (xmax - xmin))
			row := h - 1 - int(float64(h-1)*(s.Y[i]-ymin)/(ymax-ymin))
			if col >= 0 && col < w && row >= 0 && row < h {
				cells[row][col] = mark
			}
		}
	}

	var b strings.Builder
	if title != "" {
		fmt.Fprintf(&b, "%s\n", title)
	}
	fmt.Fprintf(&b, "%s\n", ylabel)
	for r, rowBytes := range cells {
		yv := ymax - (ymax-ymin)*float64(r)/float64(h-1)
		fmt.Fprintf(&b, "%9.3f |%s|\n", yv, string(rowBytes))
	}
	fmt.Fprintf(&b, "%9s +%s+\n", "", strings.Repeat("-", w))
	fmt.Fprintf(&b, "%9s  %-*.3f%*.3f\n", "", w/2, xmin, w-w/2, xmax)
	fmt.Fprintf(&b, "%9s  %s\n", "", xlabel)
	for si, s := range series {
		fmt.Fprintf(&b, "    %c %s\n", markers[si%len(markers)], s.Name)
	}
	return b.String(), nil
}

// WriteCSV writes the series in long format: name,x,y per row, with a
// header. Long format tolerates series with different x grids.
func WriteCSV(w io.Writer, series ...Series) error {
	if err := validate(series); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w, "series,x,y"); err != nil {
		return fmt.Errorf("plot: writing csv: %w", err)
	}
	for _, s := range series {
		name := strings.ReplaceAll(s.Name, ",", ";")
		for i := range s.X {
			if _, err := fmt.Fprintf(w, "%s,%.10g,%.10g\n", name, s.X[i], s.Y[i]); err != nil {
				return fmt.Errorf("plot: writing csv: %w", err)
			}
		}
	}
	return nil
}

// Table renders aligned rows with a header, for table-style artifacts
// (Table I, Table III, timeline listings).
func Table(header []string, rows [][]string) (string, error) {
	if len(header) == 0 {
		return "", fmt.Errorf("%w: empty header", ErrBadPlot)
	}
	widths := make([]int, len(header))
	for i, hcell := range header {
		widths[i] = len(hcell)
	}
	for _, row := range rows {
		if len(row) != len(header) {
			return "", fmt.Errorf("%w: row has %d cells, header %d", ErrBadPlot, len(row), len(header))
		}
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, cell := range cells {
			fmt.Fprintf(&b, "%-*s", widths[i]+2, cell)
		}
		b.WriteByte('\n')
	}
	writeRow(header)
	for i, wd := range widths {
		b.WriteString(strings.Repeat("-", wd))
		if i < len(widths)-1 {
			b.WriteString("  ")
		}
	}
	b.WriteByte('\n')
	for _, row := range rows {
		writeRow(row)
	}
	return b.String(), nil
}
