// Package utility models the agents' preferences from the paper's
// Assumption 6 (Eq. 2): discounted expected asset value with a
// multiplicative success premium,
//
//	U_t = E[(1 + α·S)·V_{t+T}] · e^{−rT},
//
// where α is the success premium, r the hourly discount rate (time
// preference), S the success indicator, and T the time until the relevant
// receipt. It also carries the canonical parameter set of Table III used by
// every experiment in the repository.
package utility

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/gbm"
	"repro/internal/timeline"
)

// ErrBadParam reports an invalid preference or model parameter.
var ErrBadParam = errors.New("utility: invalid parameter")

// AgentParams are one agent's preference parameters (Table II).
type AgentParams struct {
	// Alpha is the success premium α ≥ 0: the excess utility from a
	// completed swap (trading motive plus reputation, §III.F.1).
	Alpha float64
	// R is the hourly discount rate r > 0 (time preference, §III.F.2).
	R float64
}

// Validate checks the admissible ranges (α ≥ 0, r > 0 per Eq. 2).
func (a AgentParams) Validate() error {
	if a.Alpha < 0 || math.IsNaN(a.Alpha) || math.IsInf(a.Alpha, 0) {
		return fmt.Errorf("%w: alpha=%g must be >= 0", ErrBadParam, a.Alpha)
	}
	if a.R <= 0 || math.IsNaN(a.R) || math.IsInf(a.R, 0) {
		return fmt.Errorf("%w: r=%g must be > 0", ErrBadParam, a.R)
	}
	return nil
}

// Discount returns the discount factor e^{−r·t} for a horizon of t hours.
func (a AgentParams) Discount(t float64) float64 {
	return math.Exp(-a.R * t)
}

// Value evaluates Eq. 2 for a known (already expected) asset value v to be
// received after t hours: (1+α·S)·v·e^{−rt}.
func (a AgentParams) Value(v, t float64, success bool) float64 {
	u := v * a.Discount(t)
	if success {
		u *= 1 + a.Alpha
	}
	return u
}

// Params bundles the full model configuration: both agents' preferences,
// chain timings, the price process, and the initial price P_{t0}.
type Params struct {
	// Alice is agent A's preference parameters.
	Alice AgentParams
	// Bob is agent B's preference parameters.
	Bob AgentParams
	// Chains holds τa, τb, εb.
	Chains timeline.Chains
	// Price is the GBM law of Token_b's price in Token_a.
	Price gbm.Process
	// P0 is the Token_b price at t0 (= t1 in the idealized timeline).
	P0 float64
}

// Default returns the Table III parameter set:
// αA = αB = 0.3, rA = rB = 0.01/h, τa = 3h, τb = 4h, εb = 1h,
// P_{t0} = 2 Token_a, µ = 0.002/h, σ = 0.1/√h.
func Default() Params {
	return Params{
		Alice:  AgentParams{Alpha: 0.3, R: 0.01},
		Bob:    AgentParams{Alpha: 0.3, R: 0.01},
		Chains: timeline.Chains{TauA: 3, TauB: 4, EpsB: 1},
		Price:  gbm.Process{Mu: 0.002, Sigma: 0.1},
		P0:     2,
	}
}

// Validate checks every component of the configuration.
func (p Params) Validate() error {
	if err := p.Alice.Validate(); err != nil {
		return fmt.Errorf("alice: %w", err)
	}
	if err := p.Bob.Validate(); err != nil {
		return fmt.Errorf("bob: %w", err)
	}
	if err := p.Chains.Validate(); err != nil {
		return err
	}
	if _, err := gbm.New(p.Price.Mu, p.Price.Sigma); err != nil {
		return err
	}
	if p.P0 <= 0 || math.IsNaN(p.P0) || math.IsInf(p.P0, 0) {
		return fmt.Errorf("%w: P0=%g must be > 0", ErrBadParam, p.P0)
	}
	return nil
}

// WithAliceAlpha returns a copy with αA replaced (sweep helper, Fig. 6).
func (p Params) WithAliceAlpha(alpha float64) Params { p.Alice.Alpha = alpha; return p }

// WithBobAlpha returns a copy with αB replaced.
func (p Params) WithBobAlpha(alpha float64) Params { p.Bob.Alpha = alpha; return p }

// WithAliceR returns a copy with rA replaced.
func (p Params) WithAliceR(r float64) Params { p.Alice.R = r; return p }

// WithBobR returns a copy with rB replaced.
func (p Params) WithBobR(r float64) Params { p.Bob.R = r; return p }

// WithTauA returns a copy with τa replaced.
func (p Params) WithTauA(tau float64) Params { p.Chains.TauA = tau; return p }

// WithTauB returns a copy with τb replaced.
func (p Params) WithTauB(tau float64) Params { p.Chains.TauB = tau; return p }

// WithMu returns a copy with the price drift µ replaced.
func (p Params) WithMu(mu float64) Params { p.Price.Mu = mu; return p }

// WithSigma returns a copy with the price volatility σ replaced.
func (p Params) WithSigma(sigma float64) Params { p.Price.Sigma = sigma; return p }

// WithP0 returns a copy with the initial price replaced.
func (p Params) WithP0(p0 float64) Params { p.P0 = p0; return p }
