package utility

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestAgentParamsValidate(t *testing.T) {
	tests := []struct {
		name    string
		p       AgentParams
		wantErr bool
	}{
		{"tableIII", AgentParams{Alpha: 0.3, R: 0.01}, false},
		{"zeroAlpha", AgentParams{Alpha: 0, R: 0.01}, false},
		{"negAlpha", AgentParams{Alpha: -0.1, R: 0.01}, true},
		{"zeroR", AgentParams{Alpha: 0.3, R: 0}, true},
		{"negR", AgentParams{Alpha: 0.3, R: -0.01}, true},
		{"nanAlpha", AgentParams{Alpha: math.NaN(), R: 0.01}, true},
		{"infR", AgentParams{Alpha: 0.3, R: math.Inf(1)}, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := tt.p.Validate()
			if (err != nil) != tt.wantErr {
				t.Errorf("Validate() = %v, wantErr %v", err, tt.wantErr)
			}
			if err != nil && !errors.Is(err, ErrBadParam) {
				t.Errorf("error should wrap ErrBadParam, got %v", err)
			}
		})
	}
}

func TestDiscount(t *testing.T) {
	a := AgentParams{Alpha: 0.3, R: 0.01}
	tests := []struct {
		t    float64
		want float64
	}{
		{0, 1},
		{1, math.Exp(-0.01)},
		{100, math.Exp(-1)},
	}
	for _, tt := range tests {
		if got := a.Discount(tt.t); math.Abs(got-tt.want) > 1e-15 {
			t.Errorf("Discount(%v) = %v, want %v", tt.t, got, tt.want)
		}
	}
}

func TestValue(t *testing.T) {
	a := AgentParams{Alpha: 0.3, R: 0.01}
	tests := []struct {
		name    string
		v, t    float64
		success bool
		want    float64
	}{
		{"successPremiumApplied", 2, 4, true, 1.3 * 2 * math.Exp(-0.04)},
		{"failureNoPremium", 2, 4, false, 2 * math.Exp(-0.04)},
		{"zeroHorizon", 5, 0, true, 6.5},
		{"zeroValue", 0, 10, true, 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := a.Value(tt.v, tt.t, tt.success); math.Abs(got-tt.want) > 1e-12 {
				t.Errorf("Value = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestValueMonotoneProperties(t *testing.T) {
	// Success utility dominates failure utility; longer horizons hurt.
	a := AgentParams{Alpha: 0.3, R: 0.01}
	err := quick.Check(func(v, h1, h2 float64) bool {
		val := math.Mod(math.Abs(v), 100)
		t1 := math.Mod(math.Abs(h1), 100)
		t2 := t1 + math.Mod(math.Abs(h2), 100)
		if a.Value(val, t1, true) < a.Value(val, t1, false)-1e-12 {
			return false
		}
		return a.Value(val, t2, true) <= a.Value(val, t1, true)+1e-12
	}, &quick.Config{MaxCount: 300})
	if err != nil {
		t.Error(err)
	}
}

func TestDefaultMatchesTableIII(t *testing.T) {
	p := Default()
	if p.Alice.Alpha != 0.3 || p.Bob.Alpha != 0.3 {
		t.Errorf("alpha = (%v, %v), want (0.3, 0.3)", p.Alice.Alpha, p.Bob.Alpha)
	}
	if p.Alice.R != 0.01 || p.Bob.R != 0.01 {
		t.Errorf("r = (%v, %v), want (0.01, 0.01)", p.Alice.R, p.Bob.R)
	}
	if p.Chains.TauA != 3 || p.Chains.TauB != 4 || p.Chains.EpsB != 1 {
		t.Errorf("chains = %+v, want τa=3 τb=4 εb=1", p.Chains)
	}
	if p.Price.Mu != 0.002 || p.Price.Sigma != 0.1 {
		t.Errorf("price = %+v, want µ=0.002 σ=0.1", p.Price)
	}
	if p.P0 != 2 {
		t.Errorf("P0 = %v, want 2", p.P0)
	}
	if err := p.Validate(); err != nil {
		t.Errorf("Default() should validate, got %v", err)
	}
}

func TestParamsValidateFailures(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(Params) Params
	}{
		{"badAlice", func(p Params) Params { p.Alice.R = 0; return p }},
		{"badBob", func(p Params) Params { p.Bob.Alpha = -1; return p }},
		{"badChains", func(p Params) Params { p.Chains.EpsB = 10; return p }},
		{"badSigma", func(p Params) Params { p.Price.Sigma = 0; return p }},
		{"badP0", func(p Params) Params { p.P0 = 0; return p }},
		{"nanP0", func(p Params) Params { p.P0 = math.NaN(); return p }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := tt.mutate(Default()).Validate(); err == nil {
				t.Error("want error, got nil")
			}
		})
	}
}

func TestWithHelpersDoNotMutateOriginal(t *testing.T) {
	base := Default()
	_ = base.WithAliceAlpha(0.9).
		WithBobAlpha(0.8).
		WithAliceR(0.05).
		WithBobR(0.06).
		WithTauA(9).
		WithTauB(10).
		WithMu(-0.5).
		WithSigma(0.9).
		WithP0(42)
	if base != Default() {
		t.Errorf("With* helpers mutated the receiver: %+v", base)
	}
	mod := base.WithTauA(7)
	if mod.Chains.TauA != 7 || base.Chains.TauA != 3 {
		t.Errorf("WithTauA: mod=%v base=%v", mod.Chains.TauA, base.Chains.TauA)
	}
}
