package store

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestKeyCanonical(t *testing.T) {
	type in struct {
		A float64
		B string
	}
	k1, err := Key(in{A: 1.5, B: "x"})
	if err != nil {
		t.Fatal(err)
	}
	k2, err := Key(in{A: 1.5, B: "x"})
	if err != nil {
		t.Fatal(err)
	}
	if k1 != k2 {
		t.Fatalf("equal values keyed differently: %s vs %s", k1, k2)
	}
	k3, err := Key(in{A: 1.5000000001, B: "x"})
	if err != nil {
		t.Fatal(err)
	}
	if k1 == k3 {
		t.Fatalf("distinct values collided on %s", k1)
	}
	if !validKey(k1) || len(k1) != 64 {
		t.Fatalf("Key produced a non-canonical key %q", k1)
	}
}

func TestKeyRejectsUnencodable(t *testing.T) {
	if _, err := Key(func() {}); err == nil {
		t.Fatal("Key of a func value should error")
	}
}

func TestRoundTrip(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key := KeyBytes([]byte("cell-1"))
	payload := []byte(`{"sr":0.9163,"lines":["a","b"]}`)
	if _, ok := s.Get(key); ok {
		t.Fatal("Get before Put reported a hit")
	}
	if err := s.Put(key, payload); err != nil {
		t.Fatal(err)
	}
	got, ok := s.Get(key)
	if !ok || !bytes.Equal(got, payload) {
		t.Fatalf("Get = %q, %v; want the stored payload", got, ok)
	}
	// Overwrite with different bytes (a schema bump under the same key is
	// the caller's bug, but the store must still behave): last write wins.
	payload2 := []byte(`{"sr":0.5}`)
	if err := s.Put(key, payload2); err != nil {
		t.Fatal(err)
	}
	if got, ok := s.Get(key); !ok || !bytes.Equal(got, payload2) {
		t.Fatalf("after rewrite Get = %q, %v", got, ok)
	}
	st := s.Stats()
	if st.Puts != 2 || st.Hits != 2 || st.Misses != 1 || st.Corrupt != 0 {
		t.Fatalf("stats = %+v", st)
	}
	if s.Len() != 1 {
		t.Fatalf("Len = %d, want 1", s.Len())
	}
}

func TestBadKeysRejected(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{
		"", "short", "UPPERCASEUPPERCASE", "../../../../etc/passwd",
		strings.Repeat("a", 65), "zzzzzzzzzzzzzzzzzz",
	} {
		if err := s.Put(key, []byte("x")); err == nil {
			t.Errorf("Put(%q) accepted an invalid key", key)
		}
		if _, ok := s.Get(key); ok {
			t.Errorf("Get(%q) hit on an invalid key", key)
		}
	}
	if err := s.Put(KeyBytes([]byte("k")), nil); err == nil {
		t.Error("Put of an empty payload should error")
	}
}

// corrupt helpers: every corruption must read as a miss (never partial
// bytes), count as corrupt, remove the bad file, and a following Put must
// rewrite the entry cleanly.
func checkCorruptionIsMiss(t *testing.T, name string, mutate func(path string) error) {
	t.Helper()
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key := KeyBytes([]byte(name))
	payload := []byte(`{"value":"` + name + `"}`)
	if err := s.Put(key, payload); err != nil {
		t.Fatal(err)
	}
	if err := mutate(s.path(key)); err != nil {
		t.Fatal(err)
	}
	if got, ok := s.Get(key); ok {
		t.Fatalf("%s: Get served %q from a corrupt entry", name, got)
	}
	if st := s.Stats(); st.Corrupt != 1 {
		t.Fatalf("%s: corrupt counter = %d, want 1", name, st.Corrupt)
	}
	if _, err := os.Stat(s.path(key)); !os.IsNotExist(err) {
		t.Fatalf("%s: corrupt entry not removed (err=%v)", name, err)
	}
	// Clean rewrite: the store must accept the cell again and serve it.
	if err := s.Put(key, payload); err != nil {
		t.Fatalf("%s: rewrite after corruption: %v", name, err)
	}
	if got, ok := s.Get(key); !ok || !bytes.Equal(got, payload) {
		t.Fatalf("%s: rewrite not served back (got %q, %v)", name, got, ok)
	}
}

func TestTruncatedFileIsMiss(t *testing.T) {
	checkCorruptionIsMiss(t, "truncated", func(path string) error {
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		return os.WriteFile(path, data[:len(data)-3], 0o644)
	})
}

func TestTruncatedToHeaderlessIsMiss(t *testing.T) {
	checkCorruptionIsMiss(t, "headerless", func(path string) error {
		return os.WriteFile(path, []byte("swapstore"), 0o644) // no newline survived
	})
}

func TestBadVersionHeaderIsMiss(t *testing.T) {
	checkCorruptionIsMiss(t, "badversion", func(path string) error {
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		return os.WriteFile(path, bytes.Replace(data, []byte("swapstore 1 "), []byte("swapstore 999 "), 1), 0o644)
	})
}

func TestBadMagicIsMiss(t *testing.T) {
	checkCorruptionIsMiss(t, "badmagic", func(path string) error {
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		return os.WriteFile(path, bytes.Replace(data, []byte("swapstore"), []byte("SWAPSTORE"), 1), 0o644)
	})
}

func TestBitFlippedPayloadIsMiss(t *testing.T) {
	checkCorruptionIsMiss(t, "bitflip", func(path string) error {
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		data[len(data)-1] ^= 0x40 // flip one payload bit; length still matches
		return os.WriteFile(path, data, 0o644)
	})
}

func TestWrongKeyAddressIsMiss(t *testing.T) {
	// An entry copied to a path it was not addressed to (or a key-material
	// bug) must not be served under the wrong key.
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	keyA, keyB := KeyBytes([]byte("a")), KeyBytes([]byte("b"))
	if err := s.Put(keyA, []byte(`{"cell":"a"}`)); err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll(filepath.Dir(s.path(keyB)), 0o755); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(s.path(keyA))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(s.path(keyB), data, 0o644); err != nil {
		t.Fatal(err)
	}
	if got, ok := s.Get(keyB); ok {
		t.Fatalf("Get served %q from a wrongly addressed entry", got)
	}
}

// TestConcurrentWritersAndReaders hammers a small key space from many
// goroutines: readers must only ever observe complete, checksum-valid
// payloads (the store API cannot return anything else, so the assertion is
// that hits decode to one of the written payloads), and the store must
// leak no goroutines — the implementation is synchronous by construction.
func TestConcurrentWritersAndReaders(t *testing.T) {
	before := runtime.NumGoroutine()
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	const keys, writers, rounds = 8, 8, 50
	payloads := make(map[string][]byte, keys)
	keyList := make([]string, keys)
	for i := range keyList {
		k := KeyBytes([]byte(fmt.Sprintf("cell-%d", i)))
		keyList[i] = k
		payloads[k] = []byte(fmt.Sprintf(`{"cell":%d,"payload":"%s"}`, i, strings.Repeat("x", 100+i)))
	}
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				k := keyList[(w+r)%keys]
				if err := s.Put(k, payloads[k]); err != nil {
					t.Errorf("Put: %v", err)
					return
				}
				if got, ok := s.Get(k); ok && !bytes.Equal(got, payloads[k]) {
					t.Errorf("Get(%s) = %q, want the written payload", k[:8], got)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for _, k := range keyList {
		got, ok := s.Get(k)
		if !ok || !bytes.Equal(got, payloads[k]) {
			t.Fatalf("after the storm, Get(%s) = %v", k[:8], ok)
		}
	}
	if st := s.Stats(); st.Corrupt != 0 || st.PutErrors != 0 {
		t.Fatalf("storm produced corruption or put errors: %+v", st)
	}
	if s.Len() != keys {
		t.Fatalf("Len = %d, want %d", s.Len(), keys)
	}
	// Goroutine-leak check: allow the runtime a moment to retire helpers.
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before {
		t.Fatalf("goroutine leak: %d before, %d after", before, after)
	}
}

// TestNoTempFilesLeftBehind: every Put cleans up its temp file whether it
// renamed or failed.
func TestNoTempFilesLeftBehind(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	key := KeyBytes([]byte("tmp-check"))
	for i := 0; i < 10; i++ {
		if err := s.Put(key, []byte(`{"i":1}`)); err != nil {
			t.Fatal(err)
		}
	}
	filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
		if err == nil && !d.IsDir() && strings.HasPrefix(d.Name(), ".tmp-") {
			t.Errorf("leftover temp file %s", path)
		}
		return nil
	})
}

func TestOpenRejectsEmptyDir(t *testing.T) {
	if _, err := Open(""); err == nil {
		t.Fatal("Open(\"\") should error")
	}
}
