// Package store is the repository's persistent, content-addressed result
// store: the on-disk L2 under the in-memory solve caches. A Store maps a
// canonical content key — the SHA-256 of a canonical JSON encoding of
// everything that determines a result (see Key) — to an opaque serialized
// payload, one file per entry.
//
// The design goal is amortization across *processes*: internal/solvecache
// and the per-Model solve memos amortize repeated solves within one
// process, and the single-flight layer collapses concurrent repeats, but
// every process still starts cold. Layering the store under those tiers
// (the variant batch runner and the swapd quote daemon read through it)
// makes a solved cell a durable artifact — the sweep atlas re-solves only
// cells whose content key is absent or changed, and a restarted daemon
// serves warm quotes from its first request.
//
// Because the key is a hash of the entry's full input, entries can never
// go stale: a changed input is a *different key*, so there is no
// invalidation machinery — only content-key change. The file format is
// defensive instead: a versioned header carrying the key, the payload
// length and a payload checksum, so a truncated, bit-flipped, wrongly
// versioned or wrongly addressed file behaves as a miss (and is removed so
// the next Put rewrites it cleanly) rather than ever serving partial or
// corrupt bytes. Writes are atomic (temp file + rename into place), so
// concurrent writers and crashed processes leave either the old complete
// entry, the new complete entry, or nothing.
package store

import (
	"bufio"
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"sync/atomic"
)

// Errors returned by the package.
var (
	// ErrBadKey reports a key that is not a canonical content hash.
	ErrBadKey = errors.New("store: invalid content key")
	// ErrBadPayload reports a Put of an empty payload.
	ErrBadPayload = errors.New("store: empty payload")
)

// formatVersion is the on-disk entry format version. Entries written under
// a different version read as misses, so a format change never serves old
// bytes — the cell is simply re-solved and rewritten.
const formatVersion = 1

// magic is the header tag of every entry file.
const magic = "swapstore"

// Key returns the canonical content key of v: the SHA-256 hex digest of
// v's canonical JSON encoding (encoding/json marshals struct fields in
// declaration order and map keys sorted, so equal values hash equally).
// Everything that determines the stored result must be reachable from v;
// two inputs collide only if their canonical encodings are identical.
func Key(v any) (string, error) {
	data, err := json.Marshal(v)
	if err != nil {
		return "", fmt.Errorf("store: encoding key material: %w", err)
	}
	return KeyBytes(data), nil
}

// KeyBytes returns the content key of an already-canonical byte string.
func KeyBytes(data []byte) string {
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
}

// validKey reports whether key is a lowercase hex digest of plausible
// length. Keys address files, so anything else (path separators, "..") is
// rejected outright.
func validKey(key string) bool {
	if len(key) < 16 || len(key) > 64 {
		return false
	}
	for i := 0; i < len(key); i++ {
		c := key[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// Store is one on-disk content-addressed result store rooted at a
// directory. Entries are sharded into 256 subdirectories by key prefix so
// atlas-scale universes do not pile tens of thousands of files into one
// directory. A Store is safe for concurrent use by any number of
// goroutines and processes sharing the directory.
type Store struct {
	dir string

	hits    atomic.Uint64
	misses  atomic.Uint64
	corrupt atomic.Uint64
	puts    atomic.Uint64
	putErrs atomic.Uint64
}

// Open opens (creating if needed) the store rooted at dir.
func Open(dir string) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("store: empty directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	return &Store{dir: dir}, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// path maps a key to its entry file.
func (s *Store) path(key string) string {
	return filepath.Join(s.dir, key[:2], key)
}

// Get returns the payload stored under key. Every failure mode — absent
// entry, unreadable file, wrong magic or version, header/key mismatch,
// truncated or oversized payload, checksum mismatch — is a miss; corrupt
// files are additionally counted and removed so the next Put rewrites them
// cleanly. A returned payload is always complete and checksum-verified.
func (s *Store) Get(key string) ([]byte, bool) {
	if !validKey(key) {
		s.misses.Add(1)
		return nil, false
	}
	data, err := os.ReadFile(s.path(key))
	if err != nil {
		s.misses.Add(1)
		return nil, false
	}
	payload, err := decodeEntry(key, data)
	if err != nil {
		// Corruption-as-miss: count it, drop the bad file (best effort),
		// and let the caller recompute and rewrite.
		s.corrupt.Add(1)
		s.misses.Add(1)
		os.Remove(s.path(key))
		return nil, false
	}
	s.hits.Add(1)
	return payload, true
}

// Put stores payload under key, atomically: the entry is assembled in a
// temporary file in the same directory and renamed into place, so a
// concurrent reader sees either the previous complete entry or this one,
// never a partial write. Concurrent writers of the same key are safe —
// content addressing makes their payloads identical, and rename is atomic
// either way.
func (s *Store) Put(key string, payload []byte) error {
	if !validKey(key) {
		s.putErrs.Add(1)
		return fmt.Errorf("%w: %q", ErrBadKey, key)
	}
	if len(payload) == 0 {
		s.putErrs.Add(1)
		return ErrBadPayload
	}
	dir := filepath.Dir(s.path(key))
	if err := os.MkdirAll(dir, 0o755); err != nil {
		s.putErrs.Add(1)
		return fmt.Errorf("store: %w", err)
	}
	tmp, err := os.CreateTemp(dir, ".tmp-"+key[:8]+"-*")
	if err != nil {
		s.putErrs.Add(1)
		return fmt.Errorf("store: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	w := bufio.NewWriter(tmp)
	writeErr := encodeEntry(w, key, payload)
	if writeErr == nil {
		writeErr = w.Flush()
	}
	if closeErr := tmp.Close(); writeErr == nil {
		writeErr = closeErr
	}
	if writeErr == nil {
		writeErr = os.Rename(tmp.Name(), s.path(key))
	}
	if writeErr != nil {
		s.putErrs.Add(1)
		return fmt.Errorf("store: writing %s: %w", key[:8], writeErr)
	}
	s.puts.Add(1)
	return nil
}

// encodeEntry writes one entry: a single header line
//
//	swapstore <version> <key> <payload length> <payload sha256>\n
//
// followed by the raw payload bytes.
func encodeEntry(w io.Writer, key string, payload []byte) error {
	sum := sha256.Sum256(payload)
	if _, err := fmt.Fprintf(w, "%s %d %s %d %s\n",
		magic, formatVersion, key, len(payload), hex.EncodeToString(sum[:])); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// decodeEntry validates one entry file read for key and returns its
// payload. Every violation of the format is an error (the caller treats
// it as corruption).
func decodeEntry(key string, data []byte) ([]byte, error) {
	nl := bytes.IndexByte(data, '\n')
	if nl < 0 {
		return nil, fmt.Errorf("store: missing header")
	}
	fields := bytes.Fields(data[:nl])
	if len(fields) != 5 {
		return nil, fmt.Errorf("store: malformed header")
	}
	if string(fields[0]) != magic {
		return nil, fmt.Errorf("store: bad magic %q", fields[0])
	}
	if v, err := strconv.Atoi(string(fields[1])); err != nil || v != formatVersion {
		return nil, fmt.Errorf("store: version %q != %d", fields[1], formatVersion)
	}
	if string(fields[2]) != key {
		return nil, fmt.Errorf("store: entry addressed to key %q", fields[2])
	}
	n, err := strconv.Atoi(string(fields[3]))
	if err != nil || n <= 0 {
		return nil, fmt.Errorf("store: bad payload length %q", fields[3])
	}
	payload := data[nl+1:]
	if len(payload) != n {
		return nil, fmt.Errorf("store: payload %d bytes, header says %d", len(payload), n)
	}
	sum := sha256.Sum256(payload)
	if hex.EncodeToString(sum[:]) != string(fields[4]) {
		return nil, fmt.Errorf("store: payload checksum mismatch")
	}
	return payload, nil
}

// Len walks the store and counts complete-looking entries (files whose
// name is their shard's key). It is a diagnostic, not a hot path.
func (s *Store) Len() int {
	n := 0
	filepath.WalkDir(s.dir, func(path string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return nil
		}
		if name := d.Name(); validKey(name) && filepath.Base(filepath.Dir(path)) == name[:2] {
			n++
		}
		return nil
	})
	return n
}

// Stats reports the store's cumulative behaviour.
type Stats struct {
	// Hits and Misses count Get outcomes; Corrupt counts the subset of
	// misses caused by undecodable entry files (each also removed).
	Hits, Misses, Corrupt uint64
	// Puts counts successful writes; PutErrors failed ones.
	Puts, PutErrors uint64
}

// Stats snapshots the counters.
func (s *Store) Stats() Stats {
	return Stats{
		Hits:      s.hits.Load(),
		Misses:    s.misses.Load(),
		Corrupt:   s.corrupt.Load(),
		Puts:      s.puts.Load(),
		PutErrors: s.putErrs.Load(),
	}
}
