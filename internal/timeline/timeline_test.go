package timeline

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

// tableIII returns the chain timings of the paper's Table III.
func tableIII() Chains { return Chains{TauA: 3, TauB: 4, EpsB: 1} }

func TestChainsValidate(t *testing.T) {
	tests := []struct {
		name    string
		c       Chains
		wantErr bool
	}{
		{"tableIII", tableIII(), false},
		{"zeroTauA", Chains{TauA: 0, TauB: 4, EpsB: 1}, true},
		{"zeroTauB", Chains{TauA: 3, TauB: 0, EpsB: 1}, true},
		{"zeroEpsB", Chains{TauA: 3, TauB: 4, EpsB: 0}, true},
		{"epsEqualsTau", Chains{TauA: 3, TauB: 4, EpsB: 4}, true},
		{"epsExceedsTau", Chains{TauA: 3, TauB: 4, EpsB: 5}, true},
		{"fastChains", Chains{TauA: 0.1, TauB: 0.2, EpsB: 0.05}, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := tt.c.Validate()
			if (err != nil) != tt.wantErr {
				t.Errorf("Validate() = %v, wantErr %v", err, tt.wantErr)
			}
			if err != nil && !errors.Is(err, ErrBadTiming) {
				t.Errorf("error should wrap ErrBadTiming, got %v", err)
			}
		})
	}
}

func TestIdealizedMatchesEq13(t *testing.T) {
	// With Table III (τa=3, τb=4, εb=1):
	// t1=0, t2=3, t3=7, t4=8, t5=tb=11, t6=ta=11, t7=15, t8=14.
	tl, err := Idealized(tableIII())
	if err != nil {
		t.Fatalf("Idealized: %v", err)
	}
	want := Timeline{
		T0: 0, T1: 0, T2: 3, T3: 7, T4: 8,
		T5: 11, T6: 11, T7: 15, T8: 14, TA: 11, TB: 11,
	}
	if tl != want {
		t.Errorf("Idealized = %+v, want %+v", tl, want)
	}
}

func TestIdealizedInvalid(t *testing.T) {
	if _, err := Idealized(Chains{TauA: -1, TauB: 4, EpsB: 1}); !errors.Is(err, ErrBadTiming) {
		t.Errorf("want ErrBadTiming, got %v", err)
	}
}

func TestIdealizedSatisfiesOrdering(t *testing.T) {
	c := tableIII()
	tl, err := Idealized(c)
	if err != nil {
		t.Fatal(err)
	}
	if err := tl.Validate(c); err != nil {
		t.Errorf("idealized timeline violates Eq. 12: %v", err)
	}
}

func TestWithWaits(t *testing.T) {
	c := tableIII()
	tl, err := WithWaits(c, 1, 2, 0.5, 0.25)
	if err != nil {
		t.Fatalf("WithWaits: %v", err)
	}
	if err := tl.Validate(c); err != nil {
		t.Errorf("timeline with waits violates Eq. 12: %v", err)
	}
	if tl.T1 != 1 {
		t.Errorf("T1 = %v, want 1", tl.T1)
	}
	if tl.T2 != 1+3+2 {
		t.Errorf("T2 = %v, want 6", tl.T2)
	}
	// Zero waits must coincide with the idealized timeline.
	tl0, err := WithWaits(c, 0, 0, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	ideal, err := Idealized(c)
	if err != nil {
		t.Fatal(err)
	}
	if tl0 != ideal {
		t.Errorf("WithWaits(0,0,0,0) = %+v, want idealized %+v", tl0, ideal)
	}
}

func TestWithWaitsNegative(t *testing.T) {
	if _, err := WithWaits(tableIII(), -1, 0, 0, 0); !errors.Is(err, ErrBadTiming) {
		t.Errorf("negative wait should fail, got %v", err)
	}
	if _, err := WithWaits(tableIII(), 0, 0, 0, -0.1); !errors.Is(err, ErrBadTiming) {
		t.Errorf("negative wait4 should fail, got %v", err)
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	c := tableIII()
	base, err := Idealized(c)
	if err != nil {
		t.Fatal(err)
	}
	mutations := []struct {
		name   string
		mutate func(*Timeline)
	}{
		{"t2BeforeConfirmation", func(tl *Timeline) { tl.T2 = tl.T1 + c.TauA - 1 }},
		{"t3BeforeConfirmation", func(tl *Timeline) { tl.T3 = tl.T2 + c.TauB - 0.5 }},
		{"t4BeforeMempool", func(tl *Timeline) { tl.T4 = tl.T3 }},
		{"receiptAfterExpiryB", func(tl *Timeline) { tl.TB = tl.T5 - 1 }},
		{"receiptAfterExpiryA", func(tl *Timeline) { tl.TA = tl.T6 - 1 }},
		{"wrongT7", func(tl *Timeline) { tl.T7 += 2 }},
		{"wrongT8", func(tl *Timeline) { tl.T8 -= 2 }},
	}
	for _, m := range mutations {
		t.Run(m.name, func(t *testing.T) {
			tl := base
			m.mutate(&tl)
			if err := tl.Validate(c); !errors.Is(err, ErrBadTiming) {
				t.Errorf("corrupted timeline should fail validation, got %v", err)
			}
		})
	}
}

func TestDelaysOfTableIII(t *testing.T) {
	d, err := DelaysOf(tableIII())
	if err != nil {
		t.Fatalf("DelaysOf: %v", err)
	}
	want := Delays{
		AliceSuccessFromT3: 4,
		BobSuccessFromT3:   4,  // εb + τa = 1 + 3
		AliceRefundFromT3:  7,  // εb + 2τa = 1 + 6
		BobRefundFromT3:    8,  // 2τb
		AliceRefundFromT2:  11, // τb + εb + 2τa = 4 + 1 + 6
		StageT2FromT3:      4,
		StageT1FromT2:      3,
	}
	if d != want {
		t.Errorf("DelaysOf = %+v, want %+v", d, want)
	}
}

func TestDelaysOfInvalid(t *testing.T) {
	if _, err := DelaysOf(Chains{}); !errors.Is(err, ErrBadTiming) {
		t.Errorf("want ErrBadTiming, got %v", err)
	}
}

func TestWithWaitsOrderingProperty(t *testing.T) {
	// Property: any non-negative waits produce a timeline satisfying Eq. 12,
	// and waiting only postpones events.
	c := tableIII()
	ideal, err := Idealized(c)
	if err != nil {
		t.Fatal(err)
	}
	err = quick.Check(func(w1, w2, w3, w4 float64) bool {
		a := math.Mod(math.Abs(w1), 50)
		b := math.Mod(math.Abs(w2), 50)
		d := math.Mod(math.Abs(w3), 50)
		e := math.Mod(math.Abs(w4), 50)
		tl, err := WithWaits(c, a, b, d, e)
		if err != nil {
			return false
		}
		if tl.Validate(c) != nil {
			return false
		}
		return tl.T5 >= ideal.T5 && tl.T6 >= ideal.T6 && tl.T7 >= ideal.T7 && tl.T8 >= ideal.T8
	}, &quick.Config{MaxCount: 300})
	if err != nil {
		t.Error(err)
	}
}
