// Package timeline implements the swap's decision and receipt timeline of
// §III.B of the paper: the points t0..t8 and the contract expiries ta, tb,
// derived from the chain confirmation times τa, τb and the mempool
// discoverability lag εb. It supports both the general timeline with
// arbitrary waiting (Fig. 2a, Eq. 12) and the idealized zero-waiting-time
// timeline (Fig. 2b, Eq. 13) that the game analysis uses.
package timeline

import (
	"errors"
	"fmt"
)

// ErrBadTiming reports chain-timing parameters that violate the paper's
// ordering constraints (Eq. 3: εb < τb; positivity of τa, τb, εb).
var ErrBadTiming = errors.New("timeline: invalid timing parameters")

// Chains holds the timing characteristics of the two ledgers
// (paper Assumption 1 and Table II).
type Chains struct {
	// TauA is the transaction confirmation time on Chain_a, in hours.
	TauA float64
	// TauB is the transaction confirmation time on Chain_b, in hours.
	TauB float64
	// EpsB is the time for an initiated transaction to become discoverable
	// in the mempool of Chain_b, in hours. Must satisfy EpsB < TauB (Eq. 3).
	EpsB float64
}

// Validate checks positivity and the mempool constraint εb < τb.
func (c Chains) Validate() error {
	if c.TauA <= 0 {
		return fmt.Errorf("%w: τa=%g must be > 0", ErrBadTiming, c.TauA)
	}
	if c.TauB <= 0 {
		return fmt.Errorf("%w: τb=%g must be > 0", ErrBadTiming, c.TauB)
	}
	if c.EpsB <= 0 {
		return fmt.Errorf("%w: εb=%g must be > 0", ErrBadTiming, c.EpsB)
	}
	if c.EpsB >= c.TauB {
		return fmt.Errorf("%w: εb=%g must be < τb=%g (Eq. 3)", ErrBadTiming, c.EpsB, c.TauB)
	}
	return nil
}

// Timeline lists the swap's canonical points in time (Table II / §III.B).
// All fields are absolute times in hours from T0.
type Timeline struct {
	// T0: agreement on swap conditions; A generates the secret.
	T0 float64
	// T1: A locks P* Token_a on Chain_a via HTLC expiring at TA.
	T1 float64
	// T2: B locks 1 Token_b on Chain_b via HTLC expiring at TB.
	T2 float64
	// T3: A reveals the secret to unlock Token_b on Chain_b.
	T3 float64
	// T4: B uses the secret to unlock Token_a on Chain_a.
	T4 float64
	// T5: A receives Token_b (success path).
	T5 float64
	// T6: B receives Token_a (success path).
	T6 float64
	// T7: B's original Token_b is returned at TB + τb (failure path).
	T7 float64
	// T8: A's original Token_a is returned at TA + τa (failure path).
	T8 float64
	// TA is the expiry of the HTLC on Chain_a.
	TA float64
	// TB is the expiry of the HTLC on Chain_b.
	TB float64
}

// Idealized constructs the zero-waiting-time timeline of Eq. 13 (Fig. 2b):
// each actor moves at the earliest protocol-feasible moment, which the paper
// argues is the rational choice (§III.C).
func Idealized(c Chains) (Timeline, error) {
	if err := c.Validate(); err != nil {
		return Timeline{}, err
	}
	tl := Timeline{
		T0: 0,
		T1: 0,
		T2: c.TauA,
		T3: c.TauA + c.TauB,
		T4: c.TauA + c.TauB + c.EpsB,
	}
	tl.T5 = tl.T3 + c.TauB
	tl.TB = tl.T5
	tl.T6 = tl.T4 + c.TauA
	tl.TA = tl.T6
	tl.T7 = tl.TB + c.TauB
	tl.T8 = tl.TA + c.TauA
	return tl, nil
}

// WithWaits constructs the general timeline of Eq. 12 (Fig. 2a): each wait_i
// is the non-negative extra delay an agent inserts before acting at t_i
// (wait1 before A locks, wait2 before B locks, wait3 before A reveals,
// wait4 before B claims). Expiries are set at the earliest feasible times
// given those waits, i.e. the contract deadlines bind exactly.
func WithWaits(c Chains, wait1, wait2, wait3, wait4 float64) (Timeline, error) {
	if err := c.Validate(); err != nil {
		return Timeline{}, err
	}
	for i, w := range []float64{wait1, wait2, wait3, wait4} {
		if w < 0 {
			return Timeline{}, fmt.Errorf("%w: wait%d=%g must be >= 0", ErrBadTiming, i+1, w)
		}
	}
	tl := Timeline{T0: 0}
	tl.T1 = tl.T0 + wait1
	tl.T2 = tl.T1 + c.TauA + wait2
	tl.T3 = tl.T2 + c.TauB + wait3
	tl.T4 = tl.T3 + c.EpsB + wait4
	tl.T5 = tl.T3 + c.TauB
	tl.TB = tl.T5
	tl.T6 = tl.T4 + c.TauA
	tl.TA = tl.T6
	tl.T7 = tl.TB + c.TauB
	tl.T8 = tl.TA + c.TauA
	return tl, nil
}

// Validate checks the ordering chain of Eq. 12 on an arbitrary timeline.
func (tl Timeline) Validate(c Chains) error {
	if err := c.Validate(); err != nil {
		return err
	}
	type rel struct {
		name string
		ok   bool
	}
	rels := []rel{
		{"t0 <= t1", tl.T0 <= tl.T1},
		{"t1 + τa <= t2", tl.T1+c.TauA <= tl.T2+1e-12},
		{"t2 + τb <= t3", tl.T2+c.TauB <= tl.T3+1e-12},
		{"t3 + εb <= t4", tl.T3+c.EpsB <= tl.T4+1e-12},
		{"t5 = t3 + τb", approxEq(tl.T5, tl.T3+c.TauB)},
		{"t5 <= tb", tl.T5 <= tl.TB+1e-12},
		{"t7 = tb + τb", approxEq(tl.T7, tl.TB+c.TauB)},
		{"t6 = t4 + τa", approxEq(tl.T6, tl.T4+c.TauA)},
		{"t6 <= ta", tl.T6 <= tl.TA+1e-12},
		{"t8 = ta + τa", approxEq(tl.T8, tl.TA+c.TauA)},
	}
	for _, r := range rels {
		if !r.ok {
			return fmt.Errorf("%w: ordering %q violated", ErrBadTiming, r.name)
		}
	}
	return nil
}

func approxEq(a, b float64) bool {
	d := a - b
	return d < 1e-9 && d > -1e-9
}

// Delays collects the waiting spans that drive the discounting exponents of
// the stage utilities (§III.E and §IV.A). All are measured from the decision
// point named in the field comment.
type Delays struct {
	// AliceSuccessFromT3 is t5 − t3 = τb: A's wait for Token_b on success.
	AliceSuccessFromT3 float64
	// BobSuccessFromT3 is t6 − t3 = εb + τa: B's wait for Token_a on success.
	BobSuccessFromT3 float64
	// AliceRefundFromT3 is t8 − t3 = εb + 2τa: A's wait for her refund when
	// she stops at t3.
	AliceRefundFromT3 float64
	// BobRefundFromT3 is t7 − t3 = 2τb: B's wait for his refund when A stops
	// at t3.
	BobRefundFromT3 float64
	// AliceRefundFromT2 is t8 − t2 = τb + εb + 2τa: A's wait for her refund
	// when B stops at t2.
	AliceRefundFromT2 float64
	// StageT2FromT3 is t3 − t2 = τb: the discount span between the t2 and t3
	// decisions.
	StageT2FromT3 float64
	// StageT1FromT2 is t2 − t1 = τa: the discount span between the t1 and t2
	// decisions.
	StageT1FromT2 float64
}

// DelaysOf derives the canonical discounting spans from the chain timings,
// matching the exponents of Eqs. 14–17, 22 of the paper.
func DelaysOf(c Chains) (Delays, error) {
	if err := c.Validate(); err != nil {
		return Delays{}, err
	}
	return Delays{
		AliceSuccessFromT3: c.TauB,
		BobSuccessFromT3:   c.EpsB + c.TauA,
		AliceRefundFromT3:  c.EpsB + 2*c.TauA,
		BobRefundFromT3:    2 * c.TauB,
		AliceRefundFromT2:  c.TauB + c.EpsB + 2*c.TauA,
		StageT2FromT3:      c.TauB,
		StageT1FromT2:      c.TauA,
	}, nil
}
