package swapsim_test

import (
	"math"
	"reflect"
	"sort"
	"testing"

	"repro/internal/qmc"
	"repro/internal/scenario"
	"repro/internal/swapsim"
	"repro/internal/sweep"
)

// samplerRuns sizes the per-preset equivalence samples: large enough that
// the Wilson intervals are tight (≈ ±0.015) and the KS statistic resolves
// real distributional shifts, small enough that preset × mode stays fast.
const samplerRuns = 4000

// mcFor runs a fixed-N estimate for the scenario under the given mode.
func mcFor(t *testing.T, sc scenario.Scenario, mode qmc.Mode, runs int) swapsim.MCResult {
	t.Helper()
	res, err := swapsim.MonteCarlo(swapsim.MCConfig{
		Config: swapsim.Config{
			Params:     sc.Params,
			Strategy:   strategyFor(t, sc),
			Collateral: sc.Collateral,
			Seed:       sc.Seed,
			Sampler:    mode,
		},
		Runs: runs,
	})
	if err != nil {
		t.Fatalf("%s/%s: %v", sc.Name, mode, err)
	}
	return res
}

// ksStatistic computes the two-sample Kolmogorov–Smirnov statistic
// sup|F_a − F_b| over the pooled sample (ties are fine: the statistic is
// evaluated at every pooled value, which is conservative for the
// lattice-valued durations the simulator produces).
func ksStatistic(a, b []float64) float64 {
	sa := append([]float64(nil), a...)
	sb := append([]float64(nil), b...)
	sort.Float64s(sa)
	sort.Float64s(sb)
	var d float64
	i, j := 0, 0
	for i < len(sa) && j < len(sb) {
		// Advance both samples past the current pooled value before
		// evaluating, so the ECDFs are compared at the value's right
		// limit — with heavy ties, stopping mid-run inflates the
		// statistic to 1 on identical samples.
		v := math.Min(sa[i], sb[j])
		for i < len(sa) && sa[i] == v {
			i++
		}
		for j < len(sb) && sb[j] == v {
			j++
		}
		if diff := math.Abs(float64(i)/float64(len(sa)) - float64(j)/float64(len(sb))); diff > d {
			d = diff
		}
	}
	return d
}

// durations collects per-path end times for the scenario under the mode,
// replaying the engine's exact per-mode seeding on a single runner.
func durations(t *testing.T, sc scenario.Scenario, mode qmc.Mode, runs int) []float64 {
	t.Helper()
	r, err := swapsim.NewRunner(swapsim.Config{
		Params:     sc.Params,
		Strategy:   strategyFor(t, sc),
		Collateral: sc.Collateral,
		Sampler:    mode,
	})
	if err != nil {
		t.Fatalf("%s/%s: %v", sc.Name, mode, err)
	}
	out := make([]float64, runs)
	for i := 0; i < runs; i++ {
		seed := sweep.Seed(sc.Seed, i)
		if mode == qmc.ModeAntithetic {
			seed = sweep.Seed(sc.Seed, qmc.PairBase(i))
		}
		p, err := r.RunPathIndexed(i, seed)
		if err != nil {
			t.Fatalf("%s/%s path %d: %v", sc.Name, mode, i, err)
		}
		out[i] = p.Duration
	}
	return out
}

// TestSamplerEquivalentInDistribution is the correctness pin for the
// variance-reduced modes on the real protocol workload: on every scenario
// preset, antithetic and sobol sampling must estimate the same success
// rate as pseudo sampling (CI overlap of the Wilson intervals), produce
// the same support of terminal stages within sampling noise, and draw
// end-time samples from the same distribution (two-sample KS). The modes
// change only the joint law across paths — every marginal is untouched —
// so a failure here is a seeding or negation bug, not noise: all runs
// are deterministic per seed.
func TestSamplerEquivalentInDistribution(t *testing.T) {
	if testing.Short() {
		t.Skip("full preset sweep in -short mode")
	}
	// KS acceptance at α = 0.001 for two samples of samplerRuns each:
	// c(α)·sqrt((n+m)/(n·m)) with c(0.001) = 1.949.
	ksCrit := 1.949 * math.Sqrt(2/float64(samplerRuns))
	for _, sc := range scenario.Registry() {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			t.Parallel()
			pseudo := mcFor(t, sc, qmc.ModePseudo, samplerRuns)
			durPseudo := durations(t, sc, qmc.ModePseudo, samplerRuns)
			for _, mode := range []qmc.Mode{qmc.ModeAntithetic, qmc.ModeSobol} {
				res := mcFor(t, sc, mode, samplerRuns)
				if res.Sampler != mode {
					t.Errorf("%s: result reports sampler %q", mode, res.Sampler)
				}
				if res.Violations != 0 {
					t.Errorf("%s: %d atomicity violations without failure injection", mode, res.Violations)
				}
				// CI overlap: |p̂_mode − p̂_pseudo| within the sum of the
				// Wilson half-widths.
				hw := func(r swapsim.MCResult) float64 { return (r.SuccessRate.Hi - r.SuccessRate.Lo) / 2 }
				if diff := math.Abs(res.SuccessRate.P - pseudo.SuccessRate.P); diff > hw(res)+hw(pseudo) {
					t.Errorf("%s: SR %.4f vs pseudo %.4f — CIs do not overlap (Δ=%.4f > %.4f)",
						mode, res.SuccessRate.P, pseudo.SuccessRate.P, diff, hw(res)+hw(pseudo))
				}
				// Stage histogram: same support up to rare stages, with
				// every common stage's proportion within CLT noise.
				for stage, n := range res.Stages {
					p := float64(n) / float64(res.Paths)
					q := float64(pseudo.Stages[stage]) / float64(pseudo.Paths)
					tol := 4*math.Sqrt(q*(1-q)/float64(samplerRuns)) + 4.0/float64(samplerRuns)
					if math.Abs(p-q) > tol {
						t.Errorf("%s: stage %s proportion %.4f vs pseudo %.4f (tol %.4f)", mode, stage, p, q, tol)
					}
				}
				if d := ksStatistic(durations(t, sc, mode, samplerRuns), durPseudo); d > ksCrit {
					t.Errorf("%s: duration KS statistic %.4f exceeds %.4f", mode, d, ksCrit)
				}
			}
		})
	}
}

// TestSamplerDefaultByteIdentical pins the golden default: the zero-value
// sampler and an explicit "pseudo" produce the same result object as a
// config that predates the sampler field entirely.
func TestSamplerDefaultByteIdentical(t *testing.T) {
	sc, err := scenario.Lookup("tableIII")
	if err != nil {
		t.Fatal(err)
	}
	base := swapsim.MCConfig{
		Config: swapsim.Config{
			Params:     sc.Params,
			Strategy:   strategyFor(t, sc),
			Collateral: sc.Collateral,
			Seed:       sc.Seed,
		},
		Runs: 600,
	}
	want, err := swapsim.MonteCarlo(base)
	if err != nil {
		t.Fatal(err)
	}
	explicit := base
	explicit.Config.Sampler = qmc.ModePseudo
	got, err := swapsim.MonteCarlo(explicit)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("explicit pseudo diverged from zero-value default:\n%+v\n%+v", got, want)
	}
}

// TestSamplerRejectsUnknownMode pins config validation at the runner
// boundary, where both Run and the engine's NewRunner funnel through.
func TestSamplerRejectsUnknownMode(t *testing.T) {
	sc, err := scenario.Lookup("tableIII")
	if err != nil {
		t.Fatal(err)
	}
	_, err = swapsim.NewRunner(swapsim.Config{
		Params:     sc.Params,
		Strategy:   strategyFor(t, sc),
		Collateral: sc.Collateral,
		Sampler:    "halton",
	})
	if err == nil {
		t.Fatal("unknown sampler mode accepted")
	}
}

// TestSamplerDeterministicAcrossWorkers extends the engine determinism
// contract to the real protocol runner in the variance-reduced modes.
func TestSamplerDeterministicAcrossWorkers(t *testing.T) {
	sc, err := scenario.Lookup("tableIII")
	if err != nil {
		t.Fatal(err)
	}
	for _, mode := range []qmc.Mode{qmc.ModeAntithetic, qmc.ModeSobol} {
		cfg := swapsim.MCConfig{
			Config: swapsim.Config{
				Params:     sc.Params,
				Strategy:   strategyFor(t, sc),
				Collateral: sc.Collateral,
				Seed:       sc.Seed,
				Sampler:    mode,
			},
			Runs:      1200,
			ChunkSize: 128,
		}
		var want swapsim.MCResult
		for i, workers := range []int{1, 3, 8} {
			cfg.Workers = workers
			res, err := swapsim.MonteCarlo(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if i == 0 {
				want = res
				continue
			}
			if !reflect.DeepEqual(res, want) {
				t.Errorf("%s: workers=%d diverged from workers=1", mode, workers)
			}
		}
	}
}

// TestSamplerConvergenceTableIII is the headline acceptance check: at the
// Table III point, Sobol must reach the 0.01 estimator half-width in at
// most half the Wilson-stopped pseudo baseline's paths (measured: ≈0.17×).
// Antithetic is pinned at its measured behaviour instead: the swap's
// success region is two-sided — Bob stops when the price falls, Alice
// when it rises — so mirrored paths land symmetrically in or out of the
// band and the pair correlation is positive (≈ +0.29 here), making
// antithetic mildly counterproductive on this workload. The test bounds
// that overhead so a regression past the structural (1+ρ) penalty still
// fails; DESIGN.md's sampling-modes section documents the deviation from
// the issue's original ≤0.5× target for antithetic.
func TestSamplerConvergenceTableIII(t *testing.T) {
	if testing.Short() {
		t.Skip("adaptive convergence sweep in -short mode")
	}
	sc, err := scenario.Lookup("tableIII")
	if err != nil {
		t.Fatal(err)
	}
	run := func(mode qmc.Mode) swapsim.MCResult {
		res, err := swapsim.MonteCarlo(swapsim.MCConfig{
			Config: swapsim.Config{
				Params:     sc.Params,
				Strategy:   strategyFor(t, sc),
				Collateral: sc.Collateral,
				Seed:       sc.Seed,
				Sampler:    mode,
			},
			Runs:      200000,
			CIWidth:   0.01,
			ChunkSize: 256,
		})
		if err != nil {
			t.Fatalf("%s: %v", mode, err)
		}
		if !res.Stopped {
			t.Fatalf("%s: never reached half-width 0.01 (%d paths)", mode, res.Paths)
		}
		return res
	}
	pseudo := run(qmc.ModePseudo)
	anti := run(qmc.ModeAntithetic)
	sobol := run(qmc.ModeSobol)
	t.Logf("paths to ±0.01: pseudo=%d antithetic=%d (%.2fx) sobol=%d (%.2fx)",
		pseudo.Paths, anti.Paths, float64(anti.Paths)/float64(pseudo.Paths),
		sobol.Paths, float64(sobol.Paths)/float64(pseudo.Paths))
	for _, r := range []swapsim.MCResult{anti, sobol} {
		if math.Abs(r.SuccessRate.P-pseudo.SuccessRate.P) > 0.03 {
			t.Errorf("%s stopped at SR %.4f, pseudo at %.4f", r.Sampler, r.SuccessRate.P, pseudo.SuccessRate.P)
		}
	}
	if 2*sobol.Paths > pseudo.Paths {
		t.Errorf("sobol needed %d paths vs pseudo %d — want ≤ 0.5x", sobol.Paths, pseudo.Paths)
	}
	if float64(anti.Paths) > 1.5*float64(pseudo.Paths) {
		t.Errorf("antithetic needed %d paths vs pseudo %d — exceeds the structural (1+ρ) ≈ 1.3x bound", anti.Paths, pseudo.Paths)
	}
}
