package swapsim

import (
	"errors"
	"math"
	"testing"

	"repro/internal/agent"
	"repro/internal/core"
	"repro/internal/utility"
)

func defaultModel(t *testing.T) *core.Model {
	t.Helper()
	m, err := core.New(utility.Default())
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestRunValidation(t *testing.T) {
	p := utility.Default()
	if _, err := Run(Config{Params: p}); !errors.Is(err, ErrBadConfig) {
		t.Errorf("zero PStar err = %v, want ErrBadConfig", err)
	}
	bad := p
	bad.P0 = -1
	if _, err := Run(Config{Params: bad, Strategy: agent.HonestStrategy(2)}); err == nil {
		t.Error("invalid params should fail")
	}
	if _, err := Run(Config{Params: p, Strategy: agent.HonestStrategy(2), Collateral: math.NaN()}); !errors.Is(err, ErrBadConfig) {
		t.Errorf("NaN collateral err = %v", err)
	}
	if _, err := Run(Config{Params: p, Strategy: agent.HonestStrategy(2), HaltA: HaltWindow{From: 5, Until: 3}}); !errors.Is(err, ErrBadConfig) {
		t.Errorf("inverted halt window err = %v", err)
	}
}

func TestHonestSwapMatchesTableI(t *testing.T) {
	// Table I: A −P* Token_a +1 Token_b; B +P* Token_a −1 Token_b.
	out, err := Run(Config{
		Params:   utility.Default(),
		Strategy: agent.HonestStrategy(2),
		Seed:     42,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !out.Success || out.Stage != StageCompleted {
		t.Fatalf("outcome = %+v, want completed", out.Stage)
	}
	if !out.Atomic {
		t.Error("completed swap must be atomic")
	}
	if out.AliceDeltaA != -2 || out.AliceDeltaB != 1 {
		t.Errorf("alice deltas (%v, %v), want (−2, +1)", out.AliceDeltaA, out.AliceDeltaB)
	}
	if out.BobDeltaA != 2 || out.BobDeltaB != -1 {
		t.Errorf("bob deltas (%v, %v), want (+2, −1)", out.BobDeltaA, out.BobDeltaB)
	}
	// Success receipts land at t5 = t6 = 11 (Eq. 13 with Table III).
	if out.EndTime != 11 {
		t.Errorf("end time = %v, want 11", out.EndTime)
	}
	if math.IsNaN(out.PT2) || math.IsNaN(out.PT3) {
		t.Error("decision prices missing for a completed run")
	}
}

func TestNotInitiatedRun(t *testing.T) {
	strat := agent.HonestStrategy(2)
	strat.AliceInitiates = false
	out, err := Run(Config{Params: utility.Default(), Strategy: strat, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if out.Stage != StageNotInitiated || out.Success {
		t.Errorf("stage = %v, want %v", out.Stage, StageNotInitiated)
	}
	if !out.Atomic {
		t.Error("non-initiation is trivially atomic")
	}
	if out.AliceDeltaA != 0 || out.BobDeltaB != 0 {
		t.Error("balances must be untouched")
	}
}

func TestWithdrawingBobRun(t *testing.T) {
	out, err := Run(Config{Params: utility.Default(), Strategy: agent.WithdrawingBobStrategy(2), Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if out.Stage != StageBobStopped || out.Success || !out.Atomic {
		t.Errorf("outcome = %v success=%v atomic=%v, want t2-stop/false/true",
			out.Stage, out.Success, out.Atomic)
	}
	// Alice is refunded at t8 = 14.
	if out.EndTime != 14 {
		t.Errorf("end time = %v, want 14 (t8 = ta + τa)", out.EndTime)
	}
}

func TestWithdrawingAliceRun(t *testing.T) {
	out, err := Run(Config{Params: utility.Default(), Strategy: agent.WithdrawingAliceStrategy(2), Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if out.Stage != StageAliceStopped || out.Success || !out.Atomic {
		t.Errorf("outcome = %v success=%v atomic=%v, want t3-stop/false/true",
			out.Stage, out.Success, out.Atomic)
	}
	// Bob's refund is the last receipt: t7 = 15.
	if out.EndTime != 15 {
		t.Errorf("end time = %v, want 15 (t7 = tb + τb)", out.EndTime)
	}
}

func TestRationalStrategyDependsOnPath(t *testing.T) {
	// With the solved thresholds, different seeds produce different stages.
	m := defaultModel(t)
	strat, err := m.Strategy(2.0)
	if err != nil {
		t.Fatal(err)
	}
	stages := make(map[Stage]bool)
	for seed := int64(0); seed < 60; seed++ {
		out, err := Run(Config{Params: utility.Default(), Strategy: strat, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		if !out.Atomic {
			t.Fatalf("seed %d: non-atomic outcome without failure injection", seed)
		}
		stages[out.Stage] = true
	}
	if !stages[StageCompleted] {
		t.Error("no completed swap in 60 seeds")
	}
	if !stages[StageBobStopped] && !stages[StageAliceStopped] {
		t.Error("no rational withdrawal in 60 seeds")
	}
}

func TestMonteCarloMatchesAnalyticSR(t *testing.T) {
	// The repository's end-to-end check: protocol-level Monte Carlo
	// reproduces Eq. 31 within the Wilson interval.
	m := defaultModel(t)
	strat, err := m.Strategy(2.0)
	if err != nil {
		t.Fatal(err)
	}
	analytic, err := m.SuccessRate(2.0)
	if err != nil {
		t.Fatal(err)
	}
	res, err := MonteCarlo(MCConfig{
		Config:  Config{Params: utility.Default(), Strategy: strat, Seed: 12345},
		Runs:    30000,
		Workers: 8,
	})
	if err != nil {
		t.Fatalf("MonteCarlo: %v", err)
	}
	if res.Violations != 0 {
		t.Errorf("violations = %d, want 0 without failure injection", res.Violations)
	}
	// Allow a small epsilon beyond the Wilson bound for quadrature error in
	// the analytic value itself.
	if analytic < res.SuccessRate.Lo-0.01 || analytic > res.SuccessRate.Hi+0.01 {
		t.Errorf("analytic SR %.4f outside MC interval %v", analytic, res.SuccessRate)
	}
	if res.MeanDurationHours <= 0 {
		t.Error("mean duration not recorded")
	}
	total := 0
	for _, n := range res.Stages {
		total += n
	}
	if total != 30000 {
		t.Errorf("stage counts sum to %d, want 30000", total)
	}
}

func TestMonteCarloCollateralMatchesAnalyticSR(t *testing.T) {
	m := defaultModel(t)
	col, err := m.Collateral(0.1)
	if err != nil {
		t.Fatal(err)
	}
	strat, err := col.Strategy(2.0)
	if err != nil {
		t.Fatal(err)
	}
	analytic, err := col.SuccessRate(2.0)
	if err != nil {
		t.Fatal(err)
	}
	res, err := MonteCarlo(MCConfig{
		Config:  Config{Params: utility.Default(), Strategy: strat, Collateral: 0.1, Seed: 777},
		Runs:    30000,
		Workers: 8,
	})
	if err != nil {
		t.Fatalf("MonteCarlo: %v", err)
	}
	if analytic < res.SuccessRate.Lo-0.01 || analytic > res.SuccessRate.Hi+0.01 {
		t.Errorf("analytic collateral SR %.4f outside MC interval %v", analytic, res.SuccessRate)
	}
}

func TestCollateralSettlementFlows(t *testing.T) {
	// Alice withdraws at t3 with collateral posted: her deposit goes to Bob.
	out, err := Run(Config{
		Params:     utility.Default(),
		Strategy:   agent.WithdrawingAliceStrategy(2),
		Collateral: 0.25,
		Seed:       9,
	})
	if err != nil {
		t.Fatal(err)
	}
	if out.Stage != StageAliceStopped {
		t.Fatalf("stage = %v, want t3-stop", out.Stage)
	}
	if out.CollateralDeltaAlice != -0.25 {
		t.Errorf("alice collateral delta = %v, want −0.25", out.CollateralDeltaAlice)
	}
	if out.CollateralDeltaBob != 0.25 {
		t.Errorf("bob collateral delta = %v, want +0.25", out.CollateralDeltaBob)
	}
	// Token flows still unwound atomically.
	if !out.Atomic {
		t.Error("token flows must unwind")
	}

	// Successful run returns both deposits.
	out2, err := Run(Config{
		Params:     utility.Default(),
		Strategy:   agent.HonestStrategy(2),
		Collateral: 0.25,
		Seed:       9,
	})
	if err != nil {
		t.Fatal(err)
	}
	if out2.Stage != StageCompleted {
		t.Fatalf("stage = %v, want completed", out2.Stage)
	}
	if out2.CollateralDeltaAlice != 0 || out2.CollateralDeltaBob != 0 {
		t.Errorf("collateral deltas = (%v, %v), want (0, 0)",
			out2.CollateralDeltaAlice, out2.CollateralDeltaBob)
	}

	// Bob withdraws: both deposits to Alice.
	out3, err := Run(Config{
		Params:     utility.Default(),
		Strategy:   agent.WithdrawingBobStrategy(2),
		Collateral: 0.25,
		Seed:       9,
	})
	if err != nil {
		t.Fatal(err)
	}
	if out3.Stage != StageBobStopped {
		t.Fatalf("stage = %v, want t2-stop", out3.Stage)
	}
	if out3.CollateralDeltaAlice != 0.25 || out3.CollateralDeltaBob != -0.25 {
		t.Errorf("collateral deltas = (%v, %v), want (+0.25, −0.25)",
			out3.CollateralDeltaAlice, out3.CollateralDeltaBob)
	}
}

func TestAtomicityViolationUnderTargetedCrash(t *testing.T) {
	// Chain_b crashes after Bob's lock confirms (t=7) but before Alice's
	// claim executes (t=11). Her secret still gossips at t=8, so Bob claims
	// Token_a while his own Token_b is later refunded: the Zakhary et al.
	// violation that motivates AC3-style protocols (§II).
	out, err := Run(Config{
		Params:   utility.Default(),
		Strategy: agent.HonestStrategy(2),
		Seed:     3,
		HaltB:    HaltWindow{From: 7.5, Until: 40},
	})
	if err != nil {
		t.Fatal(err)
	}
	if out.Atomic {
		t.Fatal("expected atomicity violation")
	}
	if out.Stage != StageViolated {
		t.Fatalf("stage = %v, want %v", out.Stage, StageViolated)
	}
	// Bob profits: +P* Token_a, Token_b refunded.
	if out.BobDeltaA != 2 || out.BobDeltaB != 0 {
		t.Errorf("bob deltas (%v, %v), want (+2, 0)", out.BobDeltaA, out.BobDeltaB)
	}
	// Alice loses her Token_a and receives nothing.
	if out.AliceDeltaA != -2 || out.AliceDeltaB != 0 {
		t.Errorf("alice deltas (%v, %v), want (−2, 0)", out.AliceDeltaA, out.AliceDeltaB)
	}
}

func TestFullOutageStaysAtomic(t *testing.T) {
	// A chain down from the start delays every execution past the expiries;
	// refund retries unwind everything once it recovers.
	out, err := Run(Config{
		Params:   utility.Default(),
		Strategy: agent.HonestStrategy(2),
		Seed:     3,
		HaltB:    HaltWindow{From: 0, Until: 30},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !out.Atomic {
		t.Fatalf("full outage must unwind atomically, got %+v", out)
	}
	if out.Success {
		t.Error("swap cannot succeed through a full outage")
	}
}

func TestMonteCarloValidation(t *testing.T) {
	if _, err := MonteCarlo(MCConfig{Runs: 0}); !errors.Is(err, ErrBadConfig) {
		t.Errorf("zero runs err = %v", err)
	}
	// Errors inside runs propagate.
	cfg := MCConfig{
		Config: Config{Params: utility.Default()}, // zero PStar
		Runs:   4,
	}
	if _, err := MonteCarlo(cfg); err == nil {
		t.Error("per-run error should propagate")
	}
}

func TestMonteCarloDeterministicForSeed(t *testing.T) {
	m := defaultModel(t)
	strat, err := m.Strategy(2.0)
	if err != nil {
		t.Fatal(err)
	}
	run := func() MCResult {
		res, err := MonteCarlo(MCConfig{
			Config:  Config{Params: utility.Default(), Strategy: strat, Seed: 55},
			Runs:    500,
			Workers: 3,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.SuccessRate.Successes != b.SuccessRate.Successes {
		t.Errorf("same seed produced different success counts: %d vs %d",
			a.SuccessRate.Successes, b.SuccessRate.Successes)
	}
}

func TestAliceProfitsWhenChainAHaltsAfterReveal(t *testing.T) {
	// The mirror-image violation: Chain_a crashes after the secret is
	// revealed. Alice's claim on Chain_b confirms (she gets Token_b), but
	// Bob's claim on Chain_a misses the expiry, and Alice's refund executes
	// after recovery — she ends up with both assets' value.
	out, err := Run(Config{
		Params:   utility.Default(),
		Strategy: agent.HonestStrategy(2),
		Seed:     7,
		HaltA:    HaltWindow{From: 8.5, Until: 30},
	})
	if err != nil {
		t.Fatal(err)
	}
	if out.Atomic {
		t.Fatalf("expected violation, got %+v", out)
	}
	if out.AliceDeltaA != 0 || out.AliceDeltaB != 1 {
		t.Errorf("alice deltas (%v, %v), want (0, +1): refund plus claimed token", out.AliceDeltaA, out.AliceDeltaB)
	}
	if out.BobDeltaA != 0 || out.BobDeltaB != -1 {
		t.Errorf("bob deltas (%v, %v), want (0, −1): he lost his token", out.BobDeltaA, out.BobDeltaB)
	}
}

func TestBothClaimsExpiredUnwind(t *testing.T) {
	// Both chains crash across the claim windows: Alice revealed but neither
	// claim lands; refund retries unwind everything after recovery. The
	// classifier labels this the expired-unwound stage.
	out, err := Run(Config{
		Params:   utility.Default(),
		Strategy: agent.HonestStrategy(2),
		Seed:     7,
		HaltA:    HaltWindow{From: 8.5, Until: 40},
		HaltB:    HaltWindow{From: 7.5, Until: 40},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !out.Atomic {
		t.Fatalf("expected atomic unwind, got %+v", out)
	}
	if out.Stage != StageExpired {
		t.Errorf("stage = %v, want %v", out.Stage, StageExpired)
	}
	if out.Success {
		t.Error("cannot succeed with both claims expired")
	}
}
