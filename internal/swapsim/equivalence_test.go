package swapsim_test

import (
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/scenario"
	"repro/internal/swapsim"
	"repro/internal/sweep"
	"repro/internal/utility"
)

// equivalenceRuns is the per-case path count: small enough that the full
// preset × perturbation × (worker, chunk) matrix stays fast, large enough
// to hit every protocol stage a regime produces.
const equivalenceRuns = 240

// strategyFor solves the strategy the scenario runner would simulate with:
// the collateral-game thresholds when a deposit is in play, initiating
// unconditionally (Eq. 31 conditions on initiation).
func strategyFor(t *testing.T, sc scenario.Scenario) core.Strategy {
	t.Helper()
	m, err := core.New(sc.Params)
	if err != nil {
		t.Fatal(err)
	}
	var strat core.Strategy
	if sc.Collateral > 0 {
		col, err := m.Collateral(sc.Collateral)
		if err != nil {
			t.Fatal(err)
		}
		if strat, err = col.Strategy(sc.PStar); err != nil {
			t.Fatal(err)
		}
	} else if strat, err = m.Strategy(sc.PStar); err != nil {
		t.Fatal(err)
	}
	strat.AliceInitiates = true
	return strat
}

// legacyMonteCarlo reproduces the pre-engine fixed-N driver semantics:
// path i runs on a freshly allocated stack (swapsim.Run) with the
// decorrelated seed sweep.Seed(base, i), outcomes tallied in run order.
func legacyMonteCarlo(t *testing.T, cfg swapsim.Config, runs int) (stages map[swapsim.Stage]int, successes int) {
	t.Helper()
	stages = make(map[swapsim.Stage]int)
	for i := 0; i < runs; i++ {
		run := cfg
		run.Seed = sweep.Seed(cfg.Seed, i)
		out, err := swapsim.Run(run)
		if err != nil {
			t.Fatalf("legacy run %d: %v", i, err)
		}
		stages[out.Stage]++
		if out.Success {
			successes++
		}
	}
	return stages, successes
}

// perturbations derives 8 seeded variants of the Table III point —
// jittered volatility, rate, premium and an alternating deposit — so the
// equivalence check covers regimes no preset pins.
func perturbations() []scenario.Scenario {
	base, _ := scenario.Lookup("tableIII")
	rng := rand.New(rand.NewSource(42))
	out := make([]scenario.Scenario, 0, 8)
	for k := 0; k < 8; k++ {
		sc := base
		sc.Name = fmt.Sprintf("perturbed-%d", k)
		sc.Params = sc.Params.
			WithSigma(sc.Params.Price.Sigma * (0.7 + 0.6*rng.Float64())).
			WithBobAlpha(sc.Params.Bob.Alpha * (0.8 + 0.4*rng.Float64()))
		sc.PStar = 2.0 * (0.9 + 0.2*rng.Float64())
		if k%2 == 0 {
			sc.Collateral = 0
		} else {
			sc.Collateral = 0.05 + 0.3*rng.Float64()
		}
		sc.Seed = 1000 + int64(k)
		out = append(out, sc)
	}
	return out
}

// TestEngineEquivalentToLegacyMonteCarlo is the engine's ground-truth
// property: with adaptive mode off, the streaming engine (reused per-worker
// run state, chunked execution) reproduces the legacy per-path-allocation
// driver's per-seed outcomes — identical stage counts and success tallies —
// for every scenario preset and 8 seeded perturbations, at any worker and
// chunk count.
func TestEngineEquivalentToLegacyMonteCarlo(t *testing.T) {
	cases := append(scenario.Registry(), perturbations()...)
	grid := []struct{ workers, chunk int }{
		{1, equivalenceRuns}, // one worker, one chunk
		{3, 64},              // uneven tail chunk
		{8, 1},               // one path per chunk, max interleaving
	}
	for _, sc := range cases {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			t.Parallel()
			cfg := swapsim.Config{
				Params:     sc.Params,
				Strategy:   strategyFor(t, sc),
				Collateral: sc.Collateral,
				Seed:       sc.Seed,
			}
			wantStages, wantSucc := legacyMonteCarlo(t, cfg, equivalenceRuns)
			for _, g := range grid {
				res, err := swapsim.MonteCarlo(swapsim.MCConfig{
					Config:    cfg,
					Runs:      equivalenceRuns,
					Workers:   g.workers,
					ChunkSize: g.chunk,
				})
				if err != nil {
					t.Fatalf("engine workers=%d chunk=%d: %v", g.workers, g.chunk, err)
				}
				if res.Paths != equivalenceRuns {
					t.Fatalf("workers=%d chunk=%d: paths %d, want %d", g.workers, g.chunk, res.Paths, equivalenceRuns)
				}
				if res.SuccessRate.Successes != wantSucc {
					t.Errorf("workers=%d chunk=%d: successes %d, legacy %d", g.workers, g.chunk, res.SuccessRate.Successes, wantSucc)
				}
				if !reflect.DeepEqual(res.Stages, wantStages) {
					t.Errorf("workers=%d chunk=%d: stages %v, legacy %v", g.workers, g.chunk, res.Stages, wantStages)
				}
			}
		})
	}
}

// TestRunnerReuseMatchesFreshRun pins the reset contract at outcome
// granularity: a Runner reused across many seeded paths — including crash
// injection, which schedules per-path halt events — produces the exact
// Outcome a freshly allocated stack produces, field for field.
func TestRunnerReuseMatchesFreshRun(t *testing.T) {
	m, err := core.New(utility.Default())
	if err != nil {
		t.Fatal(err)
	}
	strat, err := m.Strategy(2.0)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		cfg  swapsim.Config
	}{
		{"basic", swapsim.Config{Params: utility.Default(), Strategy: strat}},
		{"collateral", swapsim.Config{Params: utility.Default(), Strategy: strat, Collateral: 0.1}},
		{"haltB", swapsim.Config{
			Params: utility.Default(), Strategy: strat,
			HaltB: swapsim.HaltWindow{From: 7.5, Until: 40},
		}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			runner, err := swapsim.NewRunner(tc.cfg)
			if err != nil {
				t.Fatal(err)
			}
			for seed := int64(1); seed <= 40; seed++ {
				reused, err := runner.RunOutcome(seed)
				if err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
				fresh := tc.cfg
				fresh.Seed = seed
				want, err := swapsim.Run(fresh)
				if err != nil {
					t.Fatalf("seed %d fresh: %v", seed, err)
				}
				// Compare before the next RunOutcome overwrites the reused
				// outcome's decision scratch. NaN-valued prices (stage never
				// reached) block a plain DeepEqual on the whole struct.
				if reused.Stage != want.Stage || reused.Success != want.Success || reused.Atomic != want.Atomic {
					t.Fatalf("seed %d: classification (%v,%v,%v) vs fresh (%v,%v,%v)",
						seed, reused.Stage, reused.Success, reused.Atomic, want.Stage, want.Success, want.Atomic)
				}
				if reused.EndTime != want.EndTime {
					t.Errorf("seed %d: end time %g vs %g", seed, reused.EndTime, want.EndTime)
				}
				deltas := func(o swapsim.Outcome) [6]float64 {
					return [6]float64{o.AliceDeltaA, o.AliceDeltaB, o.BobDeltaA, o.BobDeltaB,
						o.CollateralDeltaAlice, o.CollateralDeltaBob}
				}
				if deltas(reused) != deltas(want) {
					t.Errorf("seed %d: balance deltas %v vs %v", seed, deltas(reused), deltas(want))
				}
				eqNaN := func(a, b float64) bool { return a == b || (math.IsNaN(a) && math.IsNaN(b)) }
				if !eqNaN(reused.PT2, want.PT2) || !eqNaN(reused.PT3, want.PT3) {
					t.Errorf("seed %d: prices (%g,%g) vs (%g,%g)", seed, reused.PT2, reused.PT3, want.PT2, want.PT3)
				}
				if !reflect.DeepEqual(reused.AliceDecisions, want.AliceDecisions) ||
					!reflect.DeepEqual(reused.BobDecisions, want.BobDecisions) {
					t.Errorf("seed %d: decision logs diverge", seed)
				}
			}
		})
	}
}
