package swapsim

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/agent"
	"repro/internal/chain"
	"repro/internal/gbm"
	"repro/internal/lazyrng"
	"repro/internal/mc"
	"repro/internal/oracle"
	"repro/internal/qmc"
	"repro/internal/sim"
	"repro/internal/sweep"
	"repro/internal/timeline"
)

// secretStreamSalt decorrelates the secret-byte stream from the price
// stream: both are reseeded per path from the same path seed, and the
// price source must reproduce math/rand's draws exactly (the goldens pin
// them), so the secret reader gets the seed XORed with an arbitrary
// constant instead of a derived stream.
const secretStreamSalt = 0x5eC2e7B17e50F

// sobolScrambleShard offsets the per-replicate Sobol scramble seeds into
// a stream region no path index reaches (path seeds use sweep.Seed(seed,
// i) for i < MaxPaths), so the R digital shifts are decorrelated from
// every path's pseudo fallback stream.
const sobolScrambleShard = 1 << 30

// pathNormals adapts the per-path pseudo stream into a sampler-aware
// standard-normal source for the price feed: it serves a pre-filled
// quasi-random slab first (sobol mode), then falls back to the seeded
// pseudo stream, negating every pseudo draw on antithetic odd members.
// Pseudo-mode runners bypass it entirely — the feed holds the *rand.Rand
// itself, so the golden draw stream is untouched.
type pathNormals struct {
	rng  *rand.Rand
	neg  bool
	slab []float64
	k    int
}

// NormFloat64 implements gbm.NormalSource.
func (n *pathNormals) NormFloat64() float64 {
	if n.k < len(n.slab) {
		v := n.slab[n.k]
		n.k++
		return v
	}
	v := n.rng.NormFloat64()
	if n.neg {
		return -v
	}
	return v
}

// Runner executes protocol paths with a preallocated simulation stack —
// scheduler, both chains, price feed, agents and (with collateral) the
// Oracle are built once and reset between paths instead of reallocated.
// It implements mc.Runner for the streaming Monte Carlo engine.
//
// A Runner is not safe for concurrent use: the engine gives each worker
// slot its own. RunOutcome(seed) is a pure function of seed — resetting
// restores exactly the state a fresh stack would have, so a reused Runner
// reproduces the outcomes of the one-shot Run path for path.
type Runner struct {
	cfg     Config
	scale   float64
	sampler qmc.Mode
	tl      timeline.Timeline

	sched  *sim.Scheduler
	chainA *chain.Chain
	chainB *chain.Chain
	// src drives the price path: a lazily seeded replica of math/rand's
	// stream, so the per-path reseed is O(1) instead of the 607-element
	// vector computation that used to dominate per-path CPU, while every
	// draw stays bit-identical to rand.NewSource (the goldens pin it).
	src *lazyrng.Source
	rng *rand.Rand
	// secrets is the preallocated reseedable splitmix64 source behind
	// Alice's per-path preimages (deterministic, allocation- and
	// syscall-free; secret bytes never influence an outcome).
	secrets *lazyrng.SplitMix
	// norm is the sampler-aware normal source the feed draws from in the
	// variance-reduced modes (nil in pseudo mode, where the feed holds rng
	// directly); slab is the per-path Sobol point mapped to normals, and
	// sobols holds one scrambled sequence per randomization replicate.
	norm   *pathNormals
	slab   [qmc.MaxDim]float64
	sobols [qmc.SobolReplicates]*qmc.Sobol
	feed   *agent.PriceFeed
	alice  *agent.Alice
	bob    *agent.Bob
	orc    *oracle.Oracle

	fundAliceA, fundBobB, fundBobA float64

	// aliceLog and bobLog are per-path decision scratch, reused across
	// paths; the Outcome returned by RunOutcome aliases them.
	aliceLog, bobLog []agent.Decision
}

// NewRunner validates the configuration and preallocates the simulation
// stack. cfg.Seed is ignored; each RunOutcome call takes its own seed.
func NewRunner(cfg Config) (*Runner, error) {
	if err := cfg.Params.Validate(); err != nil {
		return nil, fmt.Errorf("swapsim: %w", err)
	}
	if cfg.Strategy.PStar <= 0 {
		return nil, fmt.Errorf("%w: strategy PStar=%g", ErrBadConfig, cfg.Strategy.PStar)
	}
	if cfg.Collateral < 0 || math.IsNaN(cfg.Collateral) {
		return nil, fmt.Errorf("%w: collateral %g", ErrBadConfig, cfg.Collateral)
	}
	mode, err := cfg.Sampler.Canon()
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadConfig, err)
	}
	r := &Runner{cfg: cfg, scale: cfg.InitialBalanceScale, sampler: mode}
	if r.scale <= 0 {
		r.scale = 2
	}

	if r.tl, err = timeline.Idealized(cfg.Params.Chains); err != nil {
		return nil, fmt.Errorf("swapsim: %w", err)
	}
	r.sched = sim.NewScheduler()
	// The Monte Carlo engine never reads the event history; recording it
	// would dominate the per-path allocation budget.
	r.sched.SetHistoryRecording(false)
	if r.chainA, err = chain.New(chain.Config{
		Name: "chain_a", Asset: "TokenA",
		Tau: cfg.Params.Chains.TauA, Eps: 0,
	}, r.sched); err != nil {
		return nil, fmt.Errorf("swapsim: %w", err)
	}
	if r.chainB, err = chain.New(chain.Config{
		Name: "chain_b", Asset: "TokenB",
		Tau: cfg.Params.Chains.TauB, Eps: cfg.Params.Chains.EpsB,
	}, r.sched); err != nil {
		return nil, fmt.Errorf("swapsim: %w", err)
	}

	// Funding: A needs P* Token_a (+ collateral), B needs 1 Token_b and
	// collateral in Token_a.
	r.fundAliceA = r.scale * (cfg.Strategy.PStar + cfg.Collateral)
	r.fundBobB = r.scale * 1
	r.fundBobA = r.scale * cfg.Collateral

	r.src = lazyrng.New(cfg.Seed)
	r.rng = rand.New(r.src)
	r.secrets = lazyrng.NewSplitMix(cfg.Seed ^ secretStreamSalt)
	// Pseudo mode hands the feed the raw *rand.Rand — the exact source the
	// goldens pin — while the variance-reduced modes interpose the
	// sampler-aware wrapper.
	var feedSrc gbm.NormalSource = r.rng
	if mode.VarianceReduced() {
		r.norm = &pathNormals{rng: r.rng}
		feedSrc = r.norm
	}
	if mode == qmc.ModeSobol {
		for i := range r.sobols {
			if r.sobols[i], err = qmc.NewSobol(qmc.MaxDim, sweep.Seed(cfg.Seed, sobolScrambleShard+i)); err != nil {
				return nil, fmt.Errorf("swapsim: %w", err)
			}
		}
	}
	if r.feed, err = agent.NewPriceFeed(cfg.Params.Price, cfg.Params.P0, feedSrc); err != nil {
		return nil, fmt.Errorf("swapsim: %w", err)
	}
	env := agent.Env{Sched: r.sched, ChainA: r.chainA, ChainB: r.chainB, Feed: r.feed, Timeline: r.tl}
	if r.alice, err = agent.NewAlice(env, AliceAccount, BobAccount, cfg.Strategy, 1, r.secrets); err != nil {
		return nil, fmt.Errorf("swapsim: %w", err)
	}
	if r.bob, err = agent.NewBob(env, BobAccount, AliceAccount, cfg.Strategy, 1); err != nil {
		return nil, fmt.Errorf("swapsim: %w", err)
	}
	if cfg.Collateral > 0 {
		if r.orc, err = oracle.New(r.sched, r.chainA, r.chainB, r.tl, cfg.Collateral, AliceAccount, BobAccount); err != nil {
			return nil, fmt.Errorf("swapsim: %w", err)
		}
		// The engine never reads the settlement log; formatting it would
		// re-enter the per-path allocation budget.
		r.orc.SetLogging(false)
	}
	return r, nil
}

// RunOutcome executes one path seeded with seed, resetting the
// preallocated stack first, and classifies the outcome. It is the
// index-0 case of RunOutcomeIndexed — identical to it in pseudo mode,
// where the index is immaterial.
func (r *Runner) RunOutcome(seed int64) (Outcome, error) {
	return r.RunOutcomeIndexed(0, seed)
}

// RunOutcomeIndexed executes the path at global stream index with the
// given seed, applying the runner's sampler mode: antithetic odd members
// negate every price increment of their (even-seeded) pair base, and
// sobol paths draw the leading increments from point SobolPoint(index)
// of replicate SobolReplicate(index)'s scrambled sequence, falling back
// to the seeded pseudo stream past qmc.MaxDim draws. In pseudo mode the
// index is ignored and the draw stream is byte-identical to the
// historical runner. The returned Outcome's decision logs alias scratch
// buffers that the next run overwrites; callers that keep a path's log
// must copy it.
func (r *Runner) RunOutcomeIndexed(index int, seed int64) (Outcome, error) {
	switch r.sampler {
	case qmc.ModeAntithetic:
		r.norm.neg = qmc.PairNegated(index)
		r.norm.slab, r.norm.k = nil, 0
	case qmc.ModeSobol:
		r.sobols[qmc.SobolReplicate(index)].Normals(qmc.SobolPoint(index), r.slab[:])
		r.norm.neg = false
		r.norm.slab, r.norm.k = r.slab[:], 0
	}
	// The reset sequence replays the construction order of a fresh stack:
	// scheduler and chains first, then halt windows, funding, price path,
	// agents, and the oracle's deposits — so every per-path observable
	// (balances, observers, pending events) matches a from-scratch run.
	r.sched.Reset()
	r.chainA.Reset()
	r.chainB.Reset()
	if err := armHalt(r.sched, r.chainA, r.cfg.HaltA); err != nil {
		return Outcome{}, fmt.Errorf("swapsim: %w", err)
	}
	if err := armHalt(r.sched, r.chainB, r.cfg.HaltB); err != nil {
		return Outcome{}, fmt.Errorf("swapsim: %w", err)
	}
	if err := r.chainA.Mint(AliceAccount, r.fundAliceA); err != nil {
		return Outcome{}, fmt.Errorf("swapsim: %w", err)
	}
	if err := r.chainB.Mint(BobAccount, r.fundBobB); err != nil {
		return Outcome{}, fmt.Errorf("swapsim: %w", err)
	}
	if r.fundBobA > 0 {
		if err := r.chainA.Mint(BobAccount, r.fundBobA); err != nil {
			return Outcome{}, fmt.Errorf("swapsim: %w", err)
		}
	}
	r.src.Seed(seed)
	r.secrets.Seed(seed ^ secretStreamSalt)
	if err := r.feed.Reset(r.cfg.Params.P0); err != nil {
		return Outcome{}, fmt.Errorf("swapsim: %w", err)
	}
	r.alice.Reset()
	r.bob.Reset()
	if r.orc != nil {
		r.orc.Reset()
		if err := r.orc.CollectDeposits(); err != nil {
			return Outcome{}, fmt.Errorf("swapsim: %w", err)
		}
	}

	balA0Alice := r.chainA.Balance(AliceAccount)
	balA0Bob := r.chainA.Balance(BobAccount)
	balB0Alice := r.chainB.Balance(AliceAccount)
	balB0Bob := r.chainB.Balance(BobAccount)

	if err := r.alice.Start(); err != nil {
		return Outcome{}, fmt.Errorf("swapsim: %w", err)
	}
	if err := r.bob.Start(); err != nil {
		return Outcome{}, fmt.Errorf("swapsim: %w", err)
	}
	r.sched.Run()

	r.aliceLog = r.alice.AppendDecisions(r.aliceLog[:0])
	r.bobLog = r.bob.AppendDecisions(r.bobLog[:0])
	out := Outcome{
		EndTime:        r.sched.Now(),
		PT2:            math.NaN(),
		PT3:            math.NaN(),
		AliceDecisions: r.aliceLog,
		BobDecisions:   r.bobLog,
	}
	out.AliceDeltaA = r.chainA.Balance(AliceAccount) - balA0Alice
	out.AliceDeltaB = r.chainB.Balance(AliceAccount) - balB0Alice
	out.BobDeltaA = r.chainA.Balance(BobAccount) - balA0Bob
	out.BobDeltaB = r.chainB.Balance(BobAccount) - balB0Bob
	if r.cfg.Collateral > 0 {
		// Everything paid out of the oracle escrow is collateral flow; net
		// it out of the chain-a deltas so Table I comparisons stay clean.
		// Deposits were debited before the balances were captured, so an
		// agent who recovers their deposit shows +Q in the raw delta.
		collA := escrowPaidTo(r.chainA, AliceAccount)
		collB := escrowPaidTo(r.chainA, BobAccount)
		out.CollateralDeltaAlice = collA - r.cfg.Collateral
		out.CollateralDeltaBob = collB - r.cfg.Collateral
		out.AliceDeltaA -= collA
		out.BobDeltaA -= collB
	}

	for _, d := range out.AliceDecisions {
		if d.Stage == "t3" && d.Price > 0 {
			out.PT3 = d.Price
		}
	}
	for _, d := range out.BobDecisions {
		if d.Stage == "t2" && d.Price > 0 {
			out.PT2 = d.Price
		}
	}

	out.Stage, out.Success, out.Atomic = classify(r.cfg, out)
	return out, nil
}

// RunPath implements mc.Runner: one reused-state path, reduced to the
// engine's streaming aggregate.
func (r *Runner) RunPath(seed int64) (mc.Path, error) {
	return r.RunPathIndexed(0, seed)
}

// RunPathIndexed implements mc.IndexedRunner, enabling the
// variance-reduced sampler modes of the streaming engine.
func (r *Runner) RunPathIndexed(index int, seed int64) (mc.Path, error) {
	out, err := r.RunOutcomeIndexed(index, seed)
	if err != nil {
		return mc.Path{}, err
	}
	return mc.Path{
		Success:  out.Success,
		Atomic:   out.Atomic,
		Stage:    string(out.Stage),
		Duration: out.EndTime,
	}, nil
}
