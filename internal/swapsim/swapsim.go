// Package swapsim executes complete atomic swaps on the simulated ledgers:
// it wires together the event scheduler, the two chains, the GBM price feed,
// the strategy-driven agents and (optionally) the collateral Oracle, runs
// the protocol to quiescence, and classifies the outcome. Its Monte Carlo
// driver estimates the empirical success rate, which the tests and
// EXPERIMENTS.md compare against the analytic SR of internal/core — the
// repository's end-to-end validation of the paper's central quantity.
package swapsim

import (
	"context"
	"errors"
	"fmt"
	"math"

	"repro/internal/agent"
	"repro/internal/chain"
	"repro/internal/core"
	"repro/internal/mc"
	"repro/internal/oracle"
	"repro/internal/qmc"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/utility"
)

// Errors returned by the simulator.
var (
	// ErrBadConfig reports invalid run configuration.
	ErrBadConfig = errors.New("swapsim: invalid configuration")
)

// Account names used by the simulator.
const (
	// AliceAccount is agent A's address on both chains.
	AliceAccount = "alice"
	// BobAccount is agent B's address on both chains.
	BobAccount = "bob"
)

// Stage classifies where the protocol ended.
type Stage string

// Protocol end stages.
const (
	// StageNotInitiated: A stopped at t1; nothing happened on-chain.
	StageNotInitiated Stage = "t1-stop"
	// StageBobStopped: B stopped at t2; A refunded at t8.
	StageBobStopped Stage = "t2-stop"
	// StageAliceStopped: A stopped at t3; both refunded.
	StageAliceStopped Stage = "t3-stop"
	// StageCompleted: both claims confirmed; assets swapped per Table I.
	StageCompleted Stage = "completed"
	// StageViolated: a non-atomic outcome (one side lost assets), possible
	// only under failure injection.
	StageViolated Stage = "atomicity-violated"
	// StageExpired: both sides unwound even though A revealed — a claim
	// missed its expiry (crash failures without a profiteering claimant).
	StageExpired Stage = "expired-unwound"
)

// Config parameterises a single protocol run.
type Config struct {
	// Params is the market/preference configuration (Table III defaults).
	Params utility.Params
	// Strategy holds the agents' thresholds (from internal/core solvers, or
	// the honest/adversarial presets in internal/agent).
	Strategy core.Strategy
	// Collateral is the per-agent deposit Q; zero plays the basic game.
	Collateral float64
	// Seed drives the price path (the only randomness in a run).
	Seed int64
	// HaltA and HaltB inject crash failures on the respective chain: from
	// HaltWindow.From, the chain confirms nothing until HaltWindow.Until.
	// A zero window means no failure.
	HaltA, HaltB HaltWindow
	// InitialBalanceScale sizes the agents' funding relative to what the
	// swap needs (default 2 when zero).
	InitialBalanceScale float64
	// Sampler selects how the price increments are drawn (see
	// internal/qmc). The zero value is pseudo — the historical stream every
	// committed golden pins byte-for-byte. The variance-reduced modes
	// (antithetic, sobol) change only the increments' joint distribution
	// across paths; each path's marginal law is unchanged.
	Sampler qmc.Mode
}

// Outcome reports a finished run.
type Outcome struct {
	// Stage classifies the end state.
	Stage Stage
	// Success reports a completed swap (Stage == StageCompleted).
	Success bool
	// Atomic reports whether the outcome was all-or-nothing.
	Atomic bool
	// AliceDeltaA/B and BobDeltaA/B are net balance changes per chain,
	// inclusive of escrows, exclusive of collateral.
	AliceDeltaA, AliceDeltaB, BobDeltaA, BobDeltaB float64
	// CollateralDeltaAlice/Bob are net collateral gains (+) or losses (−).
	CollateralDeltaAlice, CollateralDeltaBob float64
	// PT2 and PT3 are the prices observed at the decision points
	// (NaN when the stage was never reached).
	PT2, PT3 float64
	// EndTime is the simulated time when the last event fired.
	EndTime float64
	// AliceDecisions and BobDecisions are the agents' decision logs.
	AliceDecisions, BobDecisions []agent.Decision
}

// Run executes one swap and classifies the outcome. It builds a one-shot
// Runner, so a single run and a Monte Carlo path with the same seed are
// the same computation.
func Run(cfg Config) (Outcome, error) {
	r, err := NewRunner(cfg)
	if err != nil {
		return Outcome{}, err
	}
	return r.RunOutcome(cfg.Seed)
}

// HaltWindow describes a crash-failure injection: the chain stops
// confirming at From and recovers at Until.
type HaltWindow struct {
	// From is when the crash begins.
	From float64
	// Until is when the chain recovers. Zero disables the window.
	Until float64
}

// armHalt schedules a crash window on a chain.
func armHalt(sched *sim.Scheduler, c *chain.Chain, w HaltWindow) error {
	if w.Until <= 0 {
		return nil
	}
	if w.Until <= w.From {
		return fmt.Errorf("%w: halt window %+v", ErrBadConfig, w)
	}
	return sched.Schedule(w.From, c.Name()+"-halt", func() { c.Halt(w.Until) })
}

// escrowPaidTo sums confirmed escrow transfers to an account, iterating
// in place (this runs twice per collateral Monte Carlo path).
func escrowPaidTo(c *chain.Chain, account string) float64 {
	var sum float64
	c.EachTransaction(func(tx *chain.Tx) bool {
		if tx.Kind == chain.TxTransfer && tx.Status == chain.TxConfirmed {
			from, to, amt := tx.Parties()
			if from == oracle.EscrowAccount && to == account {
				sum += amt
			}
		}
		return true
	})
	return sum
}

// classify determines the end stage and atomicity from balance deltas.
func classify(cfg Config, out Outcome) (Stage, bool, bool) {
	pstar := cfg.Strategy.PStar
	eq := func(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

	swapped := eq(out.AliceDeltaA, -pstar) && eq(out.AliceDeltaB, 1) &&
		eq(out.BobDeltaA, pstar) && eq(out.BobDeltaB, -1)
	unwound := eq(out.AliceDeltaA, 0) && eq(out.AliceDeltaB, 0) &&
		eq(out.BobDeltaA, 0) && eq(out.BobDeltaB, 0)

	switch {
	case swapped:
		return StageCompleted, true, true
	case unwound:
		return failStage(out), false, true
	default:
		return StageViolated, false, false
	}
}

// failStage reads the decision logs to name the first stop.
func failStage(out Outcome) Stage {
	for _, d := range out.AliceDecisions {
		if d.Stage == "t1" && d.Action == core.Stop {
			return StageNotInitiated
		}
	}
	for _, d := range out.BobDecisions {
		if d.Stage == "t2" && d.Action == core.Stop {
			return StageBobStopped
		}
	}
	for _, d := range out.AliceDecisions {
		if d.Stage == "t3" && d.Action == core.Cont {
			// A revealed yet the swap unwound: claims expired under injected
			// failures without anyone profiting.
			return StageExpired
		}
	}
	return StageAliceStopped
}

// MCConfig parameterises a Monte Carlo estimate.
type MCConfig struct {
	// Config is the per-run configuration; run i is seeded with
	// sweep.Seed(Seed, i), a decorrelated stream per run.
	Config
	// Runs is the number of independent protocol executions in fixed-N
	// mode, and the default hard cap in adaptive mode.
	Runs int
	// Workers bounds concurrency; 0 uses all CPUs (see internal/sweep).
	// The worker count never affects the result.
	Workers int
	// CIWidth, when > 0, enables adaptive precision: sampling stops at the
	// first chunk boundary where the Wilson 95% half-width of the success
	// rate is <= CIWidth, capped at MaxPaths (or Runs).
	CIWidth float64
	// ChunkSize is the engine's chunk size (0 = mc.DefaultChunkSize). The
	// result is bit-reproducible per (Seed, ChunkSize) pair.
	ChunkSize int
	// MaxPaths overrides Runs as the adaptive hard cap when > 0.
	MaxPaths int
	// OnProgress, when non-nil, receives the engine's merged-prefix
	// snapshots in chunk order (see mc.Config.OnProgress) — the stream the
	// RPC daemon's swap.simulate subscription forwards to clients.
	OnProgress func(mc.Progress)
}

// MCResult aggregates a Monte Carlo estimate.
type MCResult struct {
	// SuccessRate is the empirical success proportion with its Wilson 95%
	// interval.
	SuccessRate stats.Proportion
	// Stages counts outcomes by end stage.
	Stages map[Stage]int
	// Violations counts non-atomic outcomes (expected zero without failure
	// injection).
	Violations int
	// MeanDurationHours averages the simulated completion time.
	MeanDurationHours float64
	// Paths is the number of protocol executions actually run — the cap
	// unless adaptive stopping ended sampling earlier.
	Paths int
	// Stopped reports an adaptive early stop (CIWidth hit before the cap).
	Stopped bool
	// Sampler is the sampling mode the estimate ran under (canonicalised).
	Sampler qmc.Mode
	// EstHalfWidth is the sampler-aware 95% half-width the adaptive
	// stopper compared against CIWidth: the Wilson half-width in pseudo
	// mode, the estimator interval in the variance-reduced modes (see
	// mc.Progress.EstHalfWidth).
	EstHalfWidth float64
}

// MonteCarlo estimates the success rate through the streaming engine of
// internal/mc: chunked execution over the sweep worker pool with reusable
// per-worker Runners, path i seeded with sweep.Seed(Seed, i), and chunk
// aggregates merged in chunk order — so the result, including the
// floating-point duration moments, is identical for every worker count.
// With CIWidth == 0 it runs exactly cfg.Runs paths, reproducing the
// legacy fixed-N driver's per-seed outcomes.
func MonteCarlo(cfg MCConfig) (MCResult, error) {
	return MonteCarloCtx(context.Background(), cfg)
}

// MonteCarloCtx is MonteCarlo under a caller context: cancelling ctx stops
// the engine between chunks with ctx's error — the cancellation path of
// the RPC daemon's streaming simulations and their per-request budgets.
func MonteCarloCtx(ctx context.Context, cfg MCConfig) (MCResult, error) {
	if cfg.Runs <= 0 {
		return MCResult{}, fmt.Errorf("%w: runs=%d", ErrBadConfig, cfg.Runs)
	}
	maxPaths := cfg.Runs
	// MaxPaths is the *adaptive* cap: in fixed-N mode the sample size is
	// exactly Runs, as documented, so the override must not shrink it.
	if cfg.CIWidth > 0 && cfg.MaxPaths > 0 {
		maxPaths = cfg.MaxPaths
	}
	res, err := mc.Run(ctx, mc.Config{
		Seed:       cfg.Seed,
		MaxPaths:   maxPaths,
		ChunkSize:  cfg.ChunkSize,
		CIWidth:    cfg.CIWidth,
		Workers:    cfg.Workers,
		NewRunner:  func() (mc.Runner, error) { return NewRunner(cfg.Config) },
		Sampler:    cfg.Sampler,
		OnProgress: cfg.OnProgress,
	})
	if err != nil {
		return MCResult{}, fmt.Errorf("swapsim: %w", err)
	}
	agg := MCResult{
		SuccessRate:       res.SuccessRate,
		Stages:            make(map[Stage]int, len(res.Stages)),
		Violations:        res.Violations,
		MeanDurationHours: res.Duration.Mean,
		Paths:             res.Paths,
		Stopped:           res.Stopped,
		Sampler:           res.Sampler,
		EstHalfWidth:      res.EstHalfWidth,
	}
	for s, n := range res.Stages {
		agg.Stages[Stage(s)] += n
	}
	return agg, nil
}
