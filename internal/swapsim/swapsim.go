// Package swapsim executes complete atomic swaps on the simulated ledgers:
// it wires together the event scheduler, the two chains, the GBM price feed,
// the strategy-driven agents and (optionally) the collateral Oracle, runs
// the protocol to quiescence, and classifies the outcome. Its Monte Carlo
// driver estimates the empirical success rate, which the tests and
// EXPERIMENTS.md compare against the analytic SR of internal/core — the
// repository's end-to-end validation of the paper's central quantity.
package swapsim

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"

	"repro/internal/agent"
	"repro/internal/chain"
	"repro/internal/core"
	"repro/internal/oracle"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/sweep"
	"repro/internal/timeline"
	"repro/internal/utility"
)

// Errors returned by the simulator.
var (
	// ErrBadConfig reports invalid run configuration.
	ErrBadConfig = errors.New("swapsim: invalid configuration")
)

// Account names used by the simulator.
const (
	// AliceAccount is agent A's address on both chains.
	AliceAccount = "alice"
	// BobAccount is agent B's address on both chains.
	BobAccount = "bob"
)

// Stage classifies where the protocol ended.
type Stage string

// Protocol end stages.
const (
	// StageNotInitiated: A stopped at t1; nothing happened on-chain.
	StageNotInitiated Stage = "t1-stop"
	// StageBobStopped: B stopped at t2; A refunded at t8.
	StageBobStopped Stage = "t2-stop"
	// StageAliceStopped: A stopped at t3; both refunded.
	StageAliceStopped Stage = "t3-stop"
	// StageCompleted: both claims confirmed; assets swapped per Table I.
	StageCompleted Stage = "completed"
	// StageViolated: a non-atomic outcome (one side lost assets), possible
	// only under failure injection.
	StageViolated Stage = "atomicity-violated"
	// StageExpired: both sides unwound even though A revealed — a claim
	// missed its expiry (crash failures without a profiteering claimant).
	StageExpired Stage = "expired-unwound"
)

// Config parameterises a single protocol run.
type Config struct {
	// Params is the market/preference configuration (Table III defaults).
	Params utility.Params
	// Strategy holds the agents' thresholds (from internal/core solvers, or
	// the honest/adversarial presets in internal/agent).
	Strategy core.Strategy
	// Collateral is the per-agent deposit Q; zero plays the basic game.
	Collateral float64
	// Seed drives the price path (the only randomness in a run).
	Seed int64
	// HaltA and HaltB inject crash failures on the respective chain: from
	// HaltWindow.From, the chain confirms nothing until HaltWindow.Until.
	// A zero window means no failure.
	HaltA, HaltB HaltWindow
	// InitialBalanceScale sizes the agents' funding relative to what the
	// swap needs (default 2 when zero).
	InitialBalanceScale float64
}

// Outcome reports a finished run.
type Outcome struct {
	// Stage classifies the end state.
	Stage Stage
	// Success reports a completed swap (Stage == StageCompleted).
	Success bool
	// Atomic reports whether the outcome was all-or-nothing.
	Atomic bool
	// AliceDeltaA/B and BobDeltaA/B are net balance changes per chain,
	// inclusive of escrows, exclusive of collateral.
	AliceDeltaA, AliceDeltaB, BobDeltaA, BobDeltaB float64
	// CollateralDeltaAlice/Bob are net collateral gains (+) or losses (−).
	CollateralDeltaAlice, CollateralDeltaBob float64
	// PT2 and PT3 are the prices observed at the decision points
	// (NaN when the stage was never reached).
	PT2, PT3 float64
	// EndTime is the simulated time when the last event fired.
	EndTime float64
	// AliceDecisions and BobDecisions are the agents' decision logs.
	AliceDecisions, BobDecisions []agent.Decision
}

// Run executes one swap and classifies the outcome.
func Run(cfg Config) (Outcome, error) {
	if err := cfg.Params.Validate(); err != nil {
		return Outcome{}, fmt.Errorf("swapsim: %w", err)
	}
	if cfg.Strategy.PStar <= 0 {
		return Outcome{}, fmt.Errorf("%w: strategy PStar=%g", ErrBadConfig, cfg.Strategy.PStar)
	}
	if cfg.Collateral < 0 || math.IsNaN(cfg.Collateral) {
		return Outcome{}, fmt.Errorf("%w: collateral %g", ErrBadConfig, cfg.Collateral)
	}
	scale := cfg.InitialBalanceScale
	if scale <= 0 {
		scale = 2
	}

	sched := sim.NewScheduler()
	tl, err := timeline.Idealized(cfg.Params.Chains)
	if err != nil {
		return Outcome{}, fmt.Errorf("swapsim: %w", err)
	}
	chainA, err := chain.New(chain.Config{
		Name: "chain_a", Asset: "TokenA",
		Tau: cfg.Params.Chains.TauA, Eps: 0,
	}, sched)
	if err != nil {
		return Outcome{}, fmt.Errorf("swapsim: %w", err)
	}
	chainB, err := chain.New(chain.Config{
		Name: "chain_b", Asset: "TokenB",
		Tau: cfg.Params.Chains.TauB, Eps: cfg.Params.Chains.EpsB,
	}, sched)
	if err != nil {
		return Outcome{}, fmt.Errorf("swapsim: %w", err)
	}
	if err := armHalt(sched, chainA, cfg.HaltA); err != nil {
		return Outcome{}, fmt.Errorf("swapsim: %w", err)
	}
	if err := armHalt(sched, chainB, cfg.HaltB); err != nil {
		return Outcome{}, fmt.Errorf("swapsim: %w", err)
	}

	// Funding: A needs P* Token_a (+ collateral), B needs 1 Token_b and
	// collateral in Token_a.
	fundAliceA := scale * (cfg.Strategy.PStar + cfg.Collateral)
	fundBobB := scale * 1
	fundBobA := scale * cfg.Collateral
	if err := chainA.Mint(AliceAccount, fundAliceA); err != nil {
		return Outcome{}, fmt.Errorf("swapsim: %w", err)
	}
	if err := chainB.Mint(BobAccount, fundBobB); err != nil {
		return Outcome{}, fmt.Errorf("swapsim: %w", err)
	}
	if fundBobA > 0 {
		if err := chainA.Mint(BobAccount, fundBobA); err != nil {
			return Outcome{}, fmt.Errorf("swapsim: %w", err)
		}
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	feed, err := agent.NewPriceFeed(cfg.Params.Price, cfg.Params.P0, rng)
	if err != nil {
		return Outcome{}, fmt.Errorf("swapsim: %w", err)
	}
	env := agent.Env{Sched: sched, ChainA: chainA, ChainB: chainB, Feed: feed, Timeline: tl}

	alice, err := agent.NewAlice(env, AliceAccount, BobAccount, cfg.Strategy, 1, nil)
	if err != nil {
		return Outcome{}, fmt.Errorf("swapsim: %w", err)
	}
	bob, err := agent.NewBob(env, BobAccount, AliceAccount, cfg.Strategy, 1)
	if err != nil {
		return Outcome{}, fmt.Errorf("swapsim: %w", err)
	}

	var orc *oracle.Oracle
	if cfg.Collateral > 0 {
		orc, err = oracle.New(sched, chainA, chainB, tl, cfg.Collateral, AliceAccount, BobAccount)
		if err != nil {
			return Outcome{}, fmt.Errorf("swapsim: %w", err)
		}
		if err := orc.CollectDeposits(); err != nil {
			return Outcome{}, fmt.Errorf("swapsim: %w", err)
		}
	}

	balA0 := map[string]float64{
		AliceAccount: chainA.Balance(AliceAccount),
		BobAccount:   chainA.Balance(BobAccount),
	}
	balB0 := map[string]float64{
		AliceAccount: chainB.Balance(AliceAccount),
		BobAccount:   chainB.Balance(BobAccount),
	}

	if err := alice.Start(); err != nil {
		return Outcome{}, fmt.Errorf("swapsim: %w", err)
	}
	if err := bob.Start(); err != nil {
		return Outcome{}, fmt.Errorf("swapsim: %w", err)
	}
	sched.Run()

	out := Outcome{
		EndTime:        sched.Now(),
		PT2:            math.NaN(),
		PT3:            math.NaN(),
		AliceDecisions: alice.Decisions(),
		BobDecisions:   bob.Decisions(),
	}
	out.AliceDeltaA = chainA.Balance(AliceAccount) - balA0[AliceAccount]
	out.AliceDeltaB = chainB.Balance(AliceAccount) - balB0[AliceAccount]
	out.BobDeltaA = chainA.Balance(BobAccount) - balA0[BobAccount]
	out.BobDeltaB = chainB.Balance(BobAccount) - balB0[BobAccount]
	if cfg.Collateral > 0 {
		// Everything paid out of the oracle escrow is collateral flow; net
		// it out of the chain-a deltas so Table I comparisons stay clean.
		// Deposits were debited before balA0 was captured, so an agent who
		// recovers their deposit shows +Q in the raw delta.
		collA := escrowPaidTo(chainA, AliceAccount)
		collB := escrowPaidTo(chainA, BobAccount)
		out.CollateralDeltaAlice = collA - cfg.Collateral
		out.CollateralDeltaBob = collB - cfg.Collateral
		out.AliceDeltaA -= collA
		out.BobDeltaA -= collB
	}

	for _, d := range out.AliceDecisions {
		if d.Stage == "t3" && d.Price > 0 {
			out.PT3 = d.Price
		}
	}
	for _, d := range out.BobDecisions {
		if d.Stage == "t2" && d.Price > 0 {
			out.PT2 = d.Price
		}
	}

	out.Stage, out.Success, out.Atomic = classify(cfg, out)
	return out, nil
}

// HaltWindow describes a crash-failure injection: the chain stops
// confirming at From and recovers at Until.
type HaltWindow struct {
	// From is when the crash begins.
	From float64
	// Until is when the chain recovers. Zero disables the window.
	Until float64
}

// armHalt schedules a crash window on a chain.
func armHalt(sched *sim.Scheduler, c *chain.Chain, w HaltWindow) error {
	if w.Until <= 0 {
		return nil
	}
	if w.Until <= w.From {
		return fmt.Errorf("%w: halt window %+v", ErrBadConfig, w)
	}
	return sched.Schedule(w.From, c.Name()+"-halt", func() { c.Halt(w.Until) })
}

// escrowPaidTo sums confirmed escrow transfers to an account.
func escrowPaidTo(c *chain.Chain, account string) float64 {
	var sum float64
	for _, tx := range c.Transactions() {
		if tx.Kind == chain.TxTransfer && tx.Status == chain.TxConfirmed {
			from, to, amt := tx.Parties()
			if from == oracle.EscrowAccount && to == account {
				sum += amt
			}
		}
	}
	return sum
}

// classify determines the end stage and atomicity from balance deltas.
func classify(cfg Config, out Outcome) (Stage, bool, bool) {
	pstar := cfg.Strategy.PStar
	eq := func(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

	swapped := eq(out.AliceDeltaA, -pstar) && eq(out.AliceDeltaB, 1) &&
		eq(out.BobDeltaA, pstar) && eq(out.BobDeltaB, -1)
	unwound := eq(out.AliceDeltaA, 0) && eq(out.AliceDeltaB, 0) &&
		eq(out.BobDeltaA, 0) && eq(out.BobDeltaB, 0)

	switch {
	case swapped:
		return StageCompleted, true, true
	case unwound:
		return failStage(out), false, true
	default:
		return StageViolated, false, false
	}
}

// failStage reads the decision logs to name the first stop.
func failStage(out Outcome) Stage {
	for _, d := range out.AliceDecisions {
		if d.Stage == "t1" && d.Action == core.Stop {
			return StageNotInitiated
		}
	}
	for _, d := range out.BobDecisions {
		if d.Stage == "t2" && d.Action == core.Stop {
			return StageBobStopped
		}
	}
	for _, d := range out.AliceDecisions {
		if d.Stage == "t3" && d.Action == core.Cont {
			// A revealed yet the swap unwound: claims expired under injected
			// failures without anyone profiting.
			return StageExpired
		}
	}
	return StageAliceStopped
}

// MCConfig parameterises a Monte Carlo estimate.
type MCConfig struct {
	// Config is the per-run configuration; run i is seeded with
	// sweep.Seed(Seed, i), a decorrelated stream per run.
	Config
	// Runs is the number of independent protocol executions.
	Runs int
	// Workers bounds concurrency; 0 uses all CPUs (see internal/sweep).
	Workers int
}

// MCResult aggregates a Monte Carlo estimate.
type MCResult struct {
	// SuccessRate is the empirical success proportion with its Wilson 95%
	// interval.
	SuccessRate stats.Proportion
	// Stages counts outcomes by end stage.
	Stages map[Stage]int
	// Violations counts non-atomic outcomes (expected zero without failure
	// injection).
	Violations int
	// MeanDurationHours averages the simulated completion time.
	MeanDurationHours float64
}

// MonteCarlo runs cfg.Runs independent executions on the sweep worker pool
// and aggregates. Run i draws its price path from the decorrelated stream
// sweep.Seed(Seed, i), and the outcomes are folded in run order, so the
// result — including the floating-point duration mean — is identical for
// every worker count.
func MonteCarlo(cfg MCConfig) (MCResult, error) {
	if cfg.Runs <= 0 {
		return MCResult{}, fmt.Errorf("%w: runs=%d", ErrBadConfig, cfg.Runs)
	}
	outcomes, err := sweep.Map(context.Background(), cfg.Runs, cfg.Workers, func(i int) (Outcome, error) {
		run := cfg.Config
		run.Seed = sweep.Seed(cfg.Seed, i)
		return Run(run)
	})
	if err != nil {
		return MCResult{}, err
	}

	agg := MCResult{Stages: make(map[Stage]int)}
	successes := 0
	var durSum float64
	for _, out := range outcomes {
		agg.Stages[out.Stage]++
		if out.Success {
			successes++
		}
		if !out.Atomic {
			agg.Violations++
		}
		durSum += out.EndTime
	}
	prop, err := stats.NewProportion(successes, len(outcomes))
	if err != nil {
		return MCResult{}, fmt.Errorf("swapsim: %w", err)
	}
	agg.SuccessRate = prop
	agg.MeanDurationHours = durSum / float64(len(outcomes))
	return agg, nil
}
