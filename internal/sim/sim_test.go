package sim

import (
	"errors"
	"math"
	"testing"
)

func TestSchedulerRunsInTimeOrder(t *testing.T) {
	s := NewScheduler()
	var got []string
	add := func(at float64, name string) {
		if err := s.Schedule(at, name, func() { got = append(got, name) }); err != nil {
			t.Fatalf("Schedule(%v, %s): %v", at, name, err)
		}
	}
	add(3, "c")
	add(1, "a")
	add(2, "b")
	if n := s.Run(); n != 3 {
		t.Fatalf("Run processed %d events, want 3", n)
	}
	want := []string{"a", "b", "c"}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("event[%d] = %s, want %s", i, got[i], want[i])
		}
	}
	if s.Now() != 3 {
		t.Errorf("Now() = %v, want 3", s.Now())
	}
}

func TestSchedulerTieBreaksBySubmissionOrder(t *testing.T) {
	s := NewScheduler()
	var got []string
	for _, name := range []string{"first", "second", "third"} {
		name := name
		if err := s.Schedule(5, name, func() { got = append(got, name) }); err != nil {
			t.Fatal(err)
		}
	}
	s.Run()
	want := []string{"first", "second", "third"}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("tie order[%d] = %s, want %s", i, got[i], want[i])
		}
	}
}

func TestScheduleValidation(t *testing.T) {
	s := NewScheduler()
	if err := s.Schedule(1, "ok", func() {}); err != nil {
		t.Fatalf("valid schedule failed: %v", err)
	}
	s.Run()
	if err := s.Schedule(0.5, "past", func() {}); !errors.Is(err, ErrPastEvent) {
		t.Errorf("past event err = %v, want ErrPastEvent", err)
	}
	if err := s.Schedule(math.NaN(), "nan", func() {}); !errors.Is(err, ErrBadTime) {
		t.Errorf("NaN err = %v, want ErrBadTime", err)
	}
	if err := s.Schedule(math.Inf(1), "inf", func() {}); !errors.Is(err, ErrBadTime) {
		t.Errorf("Inf err = %v, want ErrBadTime", err)
	}
	if err := s.Schedule(2, "nil", nil); !errors.Is(err, ErrBadTime) {
		t.Errorf("nil fn err = %v, want ErrBadTime", err)
	}
}

func TestEventsCanScheduleEvents(t *testing.T) {
	s := NewScheduler()
	var fired []float64
	if err := s.Schedule(1, "outer", func() {
		fired = append(fired, s.Now())
		if err := s.ScheduleAfter(2, "inner", func() {
			fired = append(fired, s.Now())
		}); err != nil {
			t.Errorf("inner schedule: %v", err)
		}
	}); err != nil {
		t.Fatal(err)
	}
	if n := s.Run(); n != 2 {
		t.Fatalf("processed %d, want 2", n)
	}
	if fired[0] != 1 || fired[1] != 3 {
		t.Errorf("fired at %v, want [1 3]", fired)
	}
}

func TestRunUntil(t *testing.T) {
	s := NewScheduler()
	var count int
	for _, at := range []float64{1, 2, 3, 4, 5} {
		if err := s.Schedule(at, "tick", func() { count++ }); err != nil {
			t.Fatal(err)
		}
	}
	if n := s.RunUntil(3); n != 3 {
		t.Errorf("RunUntil(3) processed %d, want 3", n)
	}
	if s.Now() != 3 {
		t.Errorf("Now() = %v, want 3", s.Now())
	}
	if s.Pending() != 2 {
		t.Errorf("Pending() = %d, want 2", s.Pending())
	}
	// Advancing beyond all events moves the clock to the requested time.
	if n := s.RunUntil(10); n != 2 {
		t.Errorf("RunUntil(10) processed %d, want 2", n)
	}
	if s.Now() != 10 {
		t.Errorf("Now() = %v, want 10", s.Now())
	}
	if count != 5 {
		t.Errorf("count = %d, want 5", count)
	}
}

func TestStopHaltsRun(t *testing.T) {
	s := NewScheduler()
	var count int
	for _, at := range []float64{1, 2, 3} {
		at := at
		if err := s.Schedule(at, "tick", func() {
			count++
			if at == 2 {
				s.Stop()
			}
		}); err != nil {
			t.Fatal(err)
		}
	}
	if n := s.Run(); n != 2 {
		t.Errorf("Run processed %d, want 2 (stopped)", n)
	}
	if count != 2 {
		t.Errorf("count = %d, want 2", count)
	}
	// A subsequent Run resumes.
	if n := s.Run(); n != 1 {
		t.Errorf("resumed Run processed %d, want 1", n)
	}
}

func TestHistoryRecordsLabels(t *testing.T) {
	s := NewScheduler()
	if err := s.Schedule(1.5, "alpha", func() {}); err != nil {
		t.Fatal(err)
	}
	s.Run()
	h := s.History()
	if len(h) != 1 || h[0] != "1.5000 alpha" {
		t.Errorf("History = %v", h)
	}
	// The returned slice is a copy.
	h[0] = "mutated"
	if s.History()[0] != "1.5000 alpha" {
		t.Error("History exposed internal state")
	}
}

func TestResetRewindsToFreshState(t *testing.T) {
	s := NewScheduler()
	fired := 0
	if err := s.Schedule(1, "a", func() { fired++ }); err != nil {
		t.Fatal(err)
	}
	if err := s.Schedule(5, "b", func() { fired++ }); err != nil {
		t.Fatal(err)
	}
	s.RunUntil(2)
	s.Reset()
	if s.Now() != 0 || s.Pending() != 0 || len(s.History()) != 0 {
		t.Errorf("after Reset: now=%g pending=%d history=%v", s.Now(), s.Pending(), s.History())
	}
	// The leftover event "b" must not fire after the reset.
	if n := s.Run(); n != 0 {
		t.Errorf("reset scheduler ran %d stale events", n)
	}
	// The scheduler is fully reusable: scheduling before the old clock
	// value is legal again and ordering restarts from scratch.
	if err := s.Schedule(0.5, "c", func() { fired++ }); err != nil {
		t.Fatalf("schedule after reset: %v", err)
	}
	if n := s.Run(); n != 1 || fired != 2 {
		t.Errorf("post-reset run processed %d events (fired=%d), want 1 (fired=2)", n, fired)
	}
}

func TestSetHistoryRecordingOffSkipsLabels(t *testing.T) {
	s := NewScheduler()
	s.SetHistoryRecording(false)
	if err := s.Schedule(1, "quiet", func() {}); err != nil {
		t.Fatal(err)
	}
	s.Run()
	if h := s.History(); len(h) != 0 {
		t.Errorf("history recorded %v with recording off", h)
	}
	s.SetHistoryRecording(true)
	if err := s.Schedule(2, "loud", func() {}); err != nil {
		t.Fatal(err)
	}
	s.Run()
	if h := s.History(); len(h) != 1 || h[0] != "2.0000 loud" {
		t.Errorf("history after re-enabling = %v", h)
	}
}
