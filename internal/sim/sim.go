// Package sim provides the discrete-event simulation kernel under the
// ledger simulator: a deterministic event scheduler with a simulated clock
// measured in hours (the paper's time unit). Events scheduled for the same
// instant fire in submission order, which keeps protocol races reproducible.
package sim

import (
	"errors"
	"fmt"
	"math"
)

// Errors returned by the scheduler.
var (
	// ErrPastEvent reports an attempt to schedule before the current time.
	ErrPastEvent = errors.New("sim: event scheduled in the past")
	// ErrBadTime reports a non-finite event time.
	ErrBadTime = errors.New("sim: invalid event time")
)

// Priority tiers for same-instant ordering: consensus-level state changes
// settle before observers act on them, mirroring "B does so only after
// verifying that its deployment has been confirmed" (§III-B) when the
// confirmation lands exactly at the decision instant.
const (
	// PriorityMempool orders mempool gossip first at an instant.
	PriorityMempool = 5
	// PriorityConsensus orders chain state transitions next.
	PriorityConsensus = 10
	// PriorityDefault orders ordinary (agent) events last.
	PriorityDefault = 100
)

// event is a pending callback. Exactly one of fn and call is set: fn is
// the closure form, call+a1+a2 the allocation-free form (a package-level
// function pointer with its receiver and argument passed as interfaces,
// which boxes nothing when both are pointers).
type event struct {
	at   float64
	prio int
	seq  uint64
	name string
	fn   func()
	call func(a1, a2 any)
	a1   any
	a2   any
}

// less orders events by time, then priority tier, then submission
// sequence — the same total order the original container/heap
// implementation used, so event execution order is unchanged.
func (e *event) less(o *event) bool {
	if e.at != o.at {
		return e.at < o.at
	}
	if e.prio != o.prio {
		return e.prio < o.prio
	}
	return e.seq < o.seq
}

// Scheduler is a deterministic discrete-event scheduler. The zero value is
// ready to use with the clock at time zero.
//
// The event queue is a binary min-heap of event values managed in place:
// pushing and popping move values within one backing array, so a reset
// scheduler schedules and runs without allocating (the Monte Carlo hot
// path; see Reset).
type Scheduler struct {
	now       float64
	seq       uint64
	events    []event
	stopped   bool
	history   []string
	noHistory bool
}

// NewScheduler returns a scheduler with the clock at zero.
func NewScheduler() *Scheduler { return &Scheduler{} }

// Reset rewinds the scheduler to a freshly constructed state — clock at
// zero, no pending events, empty history — while retaining the allocated
// event-heap and history capacity, so a reused scheduler schedules without
// reallocating. The history-recording setting survives the reset.
func (s *Scheduler) Reset() {
	s.now = 0
	s.seq = 0
	s.stopped = false
	for i := range s.events {
		s.events[i] = event{}
	}
	s.events = s.events[:0]
	s.history = s.history[:0]
}

// SetHistoryRecording toggles the execution-history log (on by default).
// Recording formats one label per event, which dominates the allocation
// cost of short runs; throughput-oriented callers (the Monte Carlo engine)
// turn it off. Disabling does not clear labels already recorded.
func (s *Scheduler) SetHistoryRecording(on bool) { s.noHistory = !on }

// Now returns the current simulated time in hours.
func (s *Scheduler) Now() float64 { return s.now }

// Pending returns the number of events waiting to fire.
func (s *Scheduler) Pending() int { return len(s.events) }

// Schedule registers fn to fire at absolute time at, in the default
// priority tier. The name labels the event in the execution history for
// debugging and tests.
func (s *Scheduler) Schedule(at float64, name string, fn func()) error {
	return s.ScheduleWithPriority(at, PriorityDefault, name, fn)
}

// ScheduleWithPriority registers fn to fire at absolute time at within the
// given priority tier (lower fires first among same-instant events).
func (s *Scheduler) ScheduleWithPriority(at float64, prio int, name string, fn func()) error {
	if fn == nil {
		return fmt.Errorf("%w: nil callback for %q", ErrBadTime, name)
	}
	return s.push(event{at: at, prio: prio, name: name, fn: fn})
}

// ScheduleCall registers fn(a1, a2) to fire at absolute time at within the
// given priority tier. It is the allocation-free form of
// ScheduleWithPriority: with fn a package-level function and a1/a2
// pointers, scheduling captures no closure and boxes nothing — the Monte
// Carlo hot path schedules every per-path event this way.
func (s *Scheduler) ScheduleCall(at float64, prio int, name string, fn func(a1, a2 any), a1, a2 any) error {
	if fn == nil {
		return fmt.Errorf("%w: nil callback for %q", ErrBadTime, name)
	}
	return s.push(event{at: at, prio: prio, name: name, call: fn, a1: a1, a2: a2})
}

// ScheduleAfter registers fn to fire delay hours from now.
func (s *Scheduler) ScheduleAfter(delay float64, name string, fn func()) error {
	return s.Schedule(s.now+delay, name, fn)
}

// push validates the event time and sifts the event into the heap.
func (s *Scheduler) push(ev event) error {
	if math.IsNaN(ev.at) || math.IsInf(ev.at, 0) {
		return fmt.Errorf("%w: %g", ErrBadTime, ev.at)
	}
	if ev.at < s.now {
		return fmt.Errorf("%w: at=%g < now=%g", ErrPastEvent, ev.at, s.now)
	}
	s.seq++
	ev.seq = s.seq
	s.events = append(s.events, ev)
	s.siftUp(len(s.events) - 1)
	return nil
}

// pop removes and returns the front event. The vacated slot is cleared so
// the backing array does not retain closures or arguments.
func (s *Scheduler) pop() event {
	ev := s.events[0]
	n := len(s.events) - 1
	s.events[0] = s.events[n]
	s.events[n] = event{}
	s.events = s.events[:n]
	if n > 0 {
		s.siftDown(0)
	}
	return ev
}

func (s *Scheduler) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !s.events[i].less(&s.events[parent]) {
			break
		}
		s.events[i], s.events[parent] = s.events[parent], s.events[i]
		i = parent
	}
}

func (s *Scheduler) siftDown(i int) {
	n := len(s.events)
	for {
		least := i
		if l := 2*i + 1; l < n && s.events[l].less(&s.events[least]) {
			least = l
		}
		if r := 2*i + 2; r < n && s.events[r].less(&s.events[least]) {
			least = r
		}
		if least == i {
			return
		}
		s.events[i], s.events[least] = s.events[least], s.events[i]
		i = least
	}
}

// fire dispatches one event.
func (s *Scheduler) fire(ev *event) {
	if ev.fn != nil {
		ev.fn()
		return
	}
	ev.call(ev.a1, ev.a2)
}

// Run processes events in time order until none remain or Stop is called.
// It returns the number of events processed. Callbacks may schedule further
// events.
func (s *Scheduler) Run() int {
	s.stopped = false
	n := 0
	for len(s.events) > 0 && !s.stopped {
		ev := s.pop()
		s.now = ev.at
		if !s.noHistory {
			s.history = append(s.history, fmt.Sprintf("%.4f %s", ev.at, ev.name))
		}
		s.fire(&ev)
		n++
	}
	return n
}

// RunUntil processes events with time <= t, then advances the clock to t
// (if it is ahead of the last event). It returns the number of events
// processed.
func (s *Scheduler) RunUntil(t float64) int {
	s.stopped = false
	n := 0
	for len(s.events) > 0 && !s.stopped && s.events[0].at <= t {
		ev := s.pop()
		s.now = ev.at
		if !s.noHistory {
			s.history = append(s.history, fmt.Sprintf("%.4f %s", ev.at, ev.name))
		}
		s.fire(&ev)
		n++
	}
	if !s.stopped && t > s.now {
		s.now = t
	}
	return n
}

// Stop halts Run/RunUntil after the current callback returns.
func (s *Scheduler) Stop() { s.stopped = true }

// History returns the labels of processed events in execution order
// (a copy; primarily for tests and debugging).
func (s *Scheduler) History() []string {
	out := make([]string, len(s.history))
	copy(out, s.history)
	return out
}
