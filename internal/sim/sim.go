// Package sim provides the discrete-event simulation kernel under the
// ledger simulator: a deterministic event scheduler with a simulated clock
// measured in hours (the paper's time unit). Events scheduled for the same
// instant fire in submission order, which keeps protocol races reproducible.
package sim

import (
	"container/heap"
	"errors"
	"fmt"
	"math"
)

// Errors returned by the scheduler.
var (
	// ErrPastEvent reports an attempt to schedule before the current time.
	ErrPastEvent = errors.New("sim: event scheduled in the past")
	// ErrBadTime reports a non-finite event time.
	ErrBadTime = errors.New("sim: invalid event time")
)

// Priority tiers for same-instant ordering: consensus-level state changes
// settle before observers act on them, mirroring "B does so only after
// verifying that its deployment has been confirmed" (§III-B) when the
// confirmation lands exactly at the decision instant.
const (
	// PriorityMempool orders mempool gossip first at an instant.
	PriorityMempool = 5
	// PriorityConsensus orders chain state transitions next.
	PriorityConsensus = 10
	// PriorityDefault orders ordinary (agent) events last.
	PriorityDefault = 100
)

// event is a pending callback.
type event struct {
	at   float64
	prio int
	seq  uint64
	name string
	fn   func()
}

// eventHeap orders events by time, then priority tier, then submission
// sequence.
type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	if h[i].prio != h[j].prio {
		return h[i].prio < h[j].prio
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}

// Scheduler is a deterministic discrete-event scheduler. The zero value is
// ready to use with the clock at time zero.
type Scheduler struct {
	now       float64
	seq       uint64
	events    eventHeap
	stopped   bool
	history   []string
	noHistory bool
}

// NewScheduler returns a scheduler with the clock at zero.
func NewScheduler() *Scheduler { return &Scheduler{} }

// Reset rewinds the scheduler to a freshly constructed state — clock at
// zero, no pending events, empty history — while retaining the allocated
// event-heap and history capacity, so a reused scheduler schedules without
// reallocating. The history-recording setting survives the reset.
func (s *Scheduler) Reset() {
	s.now = 0
	s.seq = 0
	s.stopped = false
	for i := range s.events {
		s.events[i] = nil
	}
	s.events = s.events[:0]
	s.history = s.history[:0]
}

// SetHistoryRecording toggles the execution-history log (on by default).
// Recording formats one label per event, which dominates the allocation
// cost of short runs; throughput-oriented callers (the Monte Carlo engine)
// turn it off. Disabling does not clear labels already recorded.
func (s *Scheduler) SetHistoryRecording(on bool) { s.noHistory = !on }

// Now returns the current simulated time in hours.
func (s *Scheduler) Now() float64 { return s.now }

// Pending returns the number of events waiting to fire.
func (s *Scheduler) Pending() int { return len(s.events) }

// Schedule registers fn to fire at absolute time at, in the default
// priority tier. The name labels the event in the execution history for
// debugging and tests.
func (s *Scheduler) Schedule(at float64, name string, fn func()) error {
	return s.ScheduleWithPriority(at, PriorityDefault, name, fn)
}

// ScheduleWithPriority registers fn to fire at absolute time at within the
// given priority tier (lower fires first among same-instant events).
func (s *Scheduler) ScheduleWithPriority(at float64, prio int, name string, fn func()) error {
	if math.IsNaN(at) || math.IsInf(at, 0) {
		return fmt.Errorf("%w: %g", ErrBadTime, at)
	}
	if at < s.now {
		return fmt.Errorf("%w: at=%g < now=%g", ErrPastEvent, at, s.now)
	}
	if fn == nil {
		return fmt.Errorf("%w: nil callback for %q", ErrBadTime, name)
	}
	s.seq++
	heap.Push(&s.events, &event{at: at, prio: prio, seq: s.seq, name: name, fn: fn})
	return nil
}

// ScheduleAfter registers fn to fire delay hours from now.
func (s *Scheduler) ScheduleAfter(delay float64, name string, fn func()) error {
	return s.Schedule(s.now+delay, name, fn)
}

// Run processes events in time order until none remain or Stop is called.
// It returns the number of events processed. Callbacks may schedule further
// events.
func (s *Scheduler) Run() int {
	s.stopped = false
	n := 0
	for len(s.events) > 0 && !s.stopped {
		ev := heap.Pop(&s.events).(*event)
		s.now = ev.at
		if !s.noHistory {
			s.history = append(s.history, fmt.Sprintf("%.4f %s", ev.at, ev.name))
		}
		ev.fn()
		n++
	}
	return n
}

// RunUntil processes events with time <= t, then advances the clock to t
// (if it is ahead of the last event). It returns the number of events
// processed.
func (s *Scheduler) RunUntil(t float64) int {
	s.stopped = false
	n := 0
	for len(s.events) > 0 && !s.stopped && s.events[0].at <= t {
		ev := heap.Pop(&s.events).(*event)
		s.now = ev.at
		if !s.noHistory {
			s.history = append(s.history, fmt.Sprintf("%.4f %s", ev.at, ev.name))
		}
		ev.fn()
		n++
	}
	if !s.stopped && t > s.now {
		s.now = t
	}
	return n
}

// Stop halts Run/RunUntil after the current callback returns.
func (s *Scheduler) Stop() { s.stopped = true }

// History returns the labels of processed events in execution order
// (a copy; primarily for tests and debugging).
func (s *Scheduler) History() []string {
	out := make([]string, len(s.history))
	copy(out, s.history)
	return out
}
