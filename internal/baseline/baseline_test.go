package baseline

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/utility"
)

func newModel(t *testing.T) *Model {
	t.Helper()
	m, err := New(utility.Default())
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestNewValidation(t *testing.T) {
	bad := utility.Default()
	bad.P0 = 0
	if _, err := New(bad); err == nil {
		t.Error("invalid params should fail")
	}
	m := newModel(t)
	if m.Params() != utility.Default() {
		t.Error("Params() mismatch")
	}
}

func TestCutoffMatchesFullGame(t *testing.T) {
	// A's t3 problem is the same in both models (Eq. 18).
	m := newModel(t)
	full, err := core.New(utility.Default())
	if err != nil {
		t.Fatal(err)
	}
	for _, pstar := range []float64{1.6, 2, 2.4} {
		got, err := m.CutoffT3(pstar)
		if err != nil {
			t.Fatal(err)
		}
		want, err := full.CutoffT3(pstar)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-want) > 1e-12 {
			t.Errorf("CutoffT3(%v) = %v, full game %v", pstar, got, want)
		}
	}
}

func TestOneSidedSRBoundsTwoSidedSR(t *testing.T) {
	// Removing B's withdrawal option can only raise the success rate; the
	// gap is the paper's headline observation.
	m := newModel(t)
	full, err := core.New(utility.Default())
	if err != nil {
		t.Fatal(err)
	}
	for _, pstar := range []float64{1.6, 1.8, 2.0, 2.2, 2.4} {
		one, err := m.SuccessRate(pstar)
		if err != nil {
			t.Fatal(err)
		}
		two, err := full.SuccessRate(pstar)
		if err != nil {
			t.Fatal(err)
		}
		if one < two-1e-9 {
			t.Errorf("P*=%v: one-sided SR %v < two-sided %v", pstar, one, two)
		}
		if one <= 0 || one > 1 {
			t.Errorf("SR(%v) = %v out of range", pstar, one)
		}
	}
	// The gap must be strictly positive somewhere (B's risk is real).
	one, _ := m.SuccessRate(2.4)
	two, _ := full.SuccessRate(2.4)
	if one-two < 0.01 {
		t.Errorf("expected a visible gap at P*=2.4, got %v vs %v", one, two)
	}
}

func TestSuccessRateDecreasesWithRate(t *testing.T) {
	// One-sided SR is monotonically decreasing in P*: a higher strike only
	// makes A's abandonment more likely.
	m := newModel(t)
	prev := math.Inf(1)
	for _, pstar := range []float64{0.5, 1, 1.5, 2, 2.5, 3} {
		sr, err := m.SuccessRate(pstar)
		if err != nil {
			t.Fatal(err)
		}
		if sr > prev {
			t.Errorf("SR(%v) = %v increased", pstar, sr)
		}
		prev = sr
	}
}

func TestOptionPremiumProperties(t *testing.T) {
	m := newModel(t)
	prem, err := m.OptionPremium(2)
	if err != nil {
		t.Fatal(err)
	}
	if prem < 0 {
		t.Errorf("option premium %v must be non-negative", prem)
	}
	// The premium grows with volatility (vega of the abandonment option).
	highVol, err := New(utility.Default().WithSigma(0.2))
	if err != nil {
		t.Fatal(err)
	}
	premHigh, err := highVol.OptionPremium(2)
	if err != nil {
		t.Fatal(err)
	}
	if premHigh <= prem {
		t.Errorf("premium at σ=0.2 (%v) should exceed σ=0.1 (%v)", premHigh, prem)
	}
	// Option value decomposes consistently.
	ov, err := m.OptionValue(2)
	if err != nil {
		t.Fatal(err)
	}
	fv, err := m.ForcedValue(2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ov-fv-prem) > 1e-12 {
		t.Errorf("decomposition mismatch: %v − %v != %v", ov, fv, prem)
	}
}

func TestArgumentValidation(t *testing.T) {
	m := newModel(t)
	calls := []func() (float64, error){
		func() (float64, error) { return m.CutoffT3(0) },
		func() (float64, error) { return m.SuccessRate(-1) },
		func() (float64, error) { return m.OptionValue(math.NaN()) },
		func() (float64, error) { return m.ForcedValue(math.Inf(1)) },
		func() (float64, error) { return m.OptionPremium(0) },
	}
	for i, f := range calls {
		if _, err := f(); !errors.Is(err, ErrBadParam) {
			t.Errorf("case %d: err = %v, want ErrBadParam", i, err)
		}
	}
}

func TestSimulateSRAgreesWithClosedForm(t *testing.T) {
	m := newModel(t)
	analytic, err := m.SuccessRate(2.0)
	if err != nil {
		t.Fatal(err)
	}
	prop, err := m.SimulateSR(2.0, 4000, 7)
	if err != nil {
		t.Fatal(err)
	}
	// The sampler and the tail probability share only the GBM law; the
	// Wilson interval (with the repository's customary slack) must cover
	// the closed form.
	if analytic < prop.Lo-0.01 || analytic > prop.Hi+0.01 {
		t.Errorf("closed-form SR %.4f outside sampled interval [%.4f, %.4f]", analytic, prop.Lo, prop.Hi)
	}
}

func TestSimulateSRDeterministicPerSeed(t *testing.T) {
	m := newModel(t)
	a, err := m.SimulateSR(2.0, 500, 11)
	if err != nil {
		t.Fatal(err)
	}
	b, err := m.SimulateSR(2.0, 500, 11)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("same seed drifted: %v vs %v", a, b)
	}
	c, err := m.SimulateSR(2.0, 500, 12)
	if err != nil {
		t.Fatal(err)
	}
	if a == c {
		t.Error("different seeds produced identical proportions")
	}
}

// TestSimulateSRMatchesScalarLoop pins the slab-batched sampler to the
// historical scalar loop: same rng stream, same success count, so the
// batching refactor is byte-invisible to every committed artifact.
func TestSimulateSRMatchesScalarLoop(t *testing.T) {
	m := newModel(t)
	const (
		pstar = 2.0
		seed  = 17
	)
	cut, err := m.CutoffT3(pstar)
	if err != nil {
		t.Fatal(err)
	}
	// Runs straddling the internal chunk size exercise the partial tail.
	for _, runs := range []int{1, 511, 512, 513, 2000} {
		rng := rand.New(rand.NewSource(seed))
		p := m.Params()
		want := 0
		for i := 0; i < runs; i++ {
			pT2 := p.Price.Step(rng, p.P0, p.Chains.TauA)
			if pT3 := p.Price.Step(rng, pT2, p.Chains.TauB); pT3 > cut {
				want++
			}
		}
		prop, err := m.SimulateSR(pstar, runs, seed)
		if err != nil {
			t.Fatal(err)
		}
		if got := int(math.Round(prop.P * float64(runs))); got != want {
			t.Errorf("runs=%d: batched successes %d, scalar reference %d", runs, got, want)
		}
	}
}

func TestSimulateSRRejectsBadArguments(t *testing.T) {
	m := newModel(t)
	if _, err := m.SimulateSR(0, 100, 1); !errors.Is(err, ErrBadParam) {
		t.Errorf("bad pstar err = %v, want ErrBadParam", err)
	}
	if _, err := m.SimulateSR(2.0, 0, 1); !errors.Is(err, ErrBadParam) {
		t.Errorf("zero runs err = %v, want ErrBadParam", err)
	}
}
