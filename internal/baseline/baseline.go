// Package baseline implements the related-work comparator the paper argues
// against (§II, §VI): the initiator-only optionality model in the spirit of
// Han, Lin and Yu's "atomic swaps as American options". There, only the
// swap initiator A behaves strategically — she holds a free option to
// complete or abandon at t3 — while the responder B is assumed to follow
// the protocol whenever the swap reaches him.
//
// The paper's contribution is precisely the relaxation of this assumption
// ("we show that the other agent, not only the swap initiator, may also
// leave the game midway"), so the baseline quantifies how much of the
// failure probability the two-sided analysis adds: SR_one-sided bounds
// SR_two-sided from above, and the gap is B's rational-withdrawal risk.
package baseline

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"repro/internal/gbm"
	"repro/internal/stats"
	"repro/internal/utility"
)

// ErrBadParam reports an invalid argument.
var ErrBadParam = errors.New("baseline: invalid parameter")

// Model is the initiator-only optionality model. Construct with New.
type Model struct {
	params utility.Params
}

// New validates the parameters and returns the baseline model.
func New(p utility.Params) (*Model, error) {
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("baseline: %w", err)
	}
	return &Model{params: p}, nil
}

// Params returns the model's parameter set.
func (m *Model) Params() utility.Params { return m.params }

// CutoffT3 is A's reveal cut-off — identical to the full game's Eq. 18,
// since A's t3 problem does not depend on B's rationality.
func (m *Model) CutoffT3(pstar float64) (float64, error) {
	if err := check(pstar); err != nil {
		return 0, err
	}
	a, c, pr := m.params.Alice, m.params.Chains, m.params.Price
	return math.Exp((a.R-pr.Mu)*c.TauB-a.R*(c.EpsB+2*c.TauA)) * pstar / (1 + a.Alpha), nil
}

// SuccessRate is the one-sided success rate: B always locks at t2, so the
// swap succeeds exactly when P_t3 > P̄_t3. By the tower property over the
// GBM this collapses to a single closed-form tail probability at horizon
// τa + τb from initiation.
func (m *Model) SuccessRate(pstar float64) (float64, error) {
	cut, err := m.CutoffT3(pstar)
	if err != nil {
		return 0, err
	}
	law, err := m.params.Price.Transition(m.params.P0, m.params.Chains.TauA+m.params.Chains.TauB)
	if err != nil {
		return 0, err
	}
	return law.TailProb(cut), nil
}

// OptionValue returns A's t1-discounted expected utility with the
// abandonment option (the "free American option" of the related work),
// assuming an honest B.
func (m *Model) OptionValue(pstar float64) (float64, error) {
	cut, err := m.CutoffT3(pstar)
	if err != nil {
		return 0, err
	}
	a, c, pr := m.params.Alice, m.params.Chains, m.params.Price
	horizon := c.TauA + c.TauB
	law, err := pr.Transition(m.params.P0, horizon)
	if err != nil {
		return 0, err
	}
	contCoef := (1 + a.Alpha) * math.Exp((pr.Mu-a.R)*c.TauB)
	stopVal := pstar * math.Exp(-a.R*(c.EpsB+2*c.TauA))
	expMax := contCoef*law.PartialExpectationAbove(cut) + law.CDF(cut)*stopVal
	return math.Exp(-a.R*horizon) * expMax, nil
}

// ForcedValue returns A's t1-discounted expected utility when she must
// complete (no option): the honest-honest benchmark.
func (m *Model) ForcedValue(pstar float64) (float64, error) {
	if err := check(pstar); err != nil {
		return 0, err
	}
	a, c, pr := m.params.Alice, m.params.Chains, m.params.Price
	horizon := c.TauA + c.TauB
	law, err := pr.Transition(m.params.P0, horizon)
	if err != nil {
		return 0, err
	}
	contCoef := (1 + a.Alpha) * math.Exp((pr.Mu-a.R)*c.TauB)
	return math.Exp(-a.R*horizon) * contCoef * law.Mean(), nil
}

// OptionPremium returns the value of A's abandonment option: OptionValue −
// ForcedValue. It is non-negative by construction (an option cannot hurt)
// and grows with volatility — the optionality risk the related work prices.
func (m *Model) OptionPremium(pstar float64) (float64, error) {
	ov, err := m.OptionValue(pstar)
	if err != nil {
		return 0, err
	}
	fv, err := m.ForcedValue(pstar)
	if err != nil {
		return 0, err
	}
	return ov - fv, nil
}

// SimulateSR estimates the one-sided success rate by direct Monte Carlo:
// B locks unconditionally at t2, the price walks the GBM through both
// confirmation legs, and the swap succeeds exactly when P_t3 clears A's
// reveal cut-off. It is the protocol-level validation of SuccessRate the
// variant layer runs per scenario — the sampled two-step transition and the
// closed-form tail probability share only the GBM law.
func (m *Model) SimulateSR(pstar float64, runs int, seed int64) (stats.Proportion, error) {
	cut, err := m.CutoffT3(pstar)
	if err != nil {
		return stats.Proportion{}, err
	}
	if runs < 1 {
		return stats.Proportion{}, fmt.Errorf("%w: runs=%d must be >= 1", ErrBadParam, runs)
	}
	rng := rand.New(rand.NewSource(seed))
	c, pr := m.params.Chains, m.params.Price
	successes := 0
	// Batched sampling: fill a slab of normals in one pass, then advance
	// all paths through each confirmation leg with one vector step. The
	// slab preserves the per-event draw order (z[2i] is path i's t2
	// increment, z[2i+1] its t3 increment) and StepBatch matches Step bit
	// for bit, so the estimate is byte-identical to the scalar loop.
	const chunk = 512
	var (
		z      [2 * chunk]float64
		zt     [2][chunk]float64
		prices [chunk]float64
	)
	for start := 0; start < runs; start += chunk {
		n := chunk
		if rem := runs - start; rem < n {
			n = rem
		}
		gbm.FillNormals(rng, z[:2*n])
		for i := 0; i < n; i++ {
			zt[0][i], zt[1][i] = z[2*i], z[2*i+1]
			prices[i] = m.params.P0
		}
		if err := pr.StepBatch(prices[:n], prices[:n], zt[0][:n], c.TauA); err != nil {
			return stats.Proportion{}, fmt.Errorf("baseline: %w", err)
		}
		if err := pr.StepBatch(prices[:n], prices[:n], zt[1][:n], c.TauB); err != nil {
			return stats.Proportion{}, fmt.Errorf("baseline: %w", err)
		}
		for _, pT3 := range prices[:n] {
			if pT3 > cut {
				successes++
			}
		}
	}
	prop, err := stats.NewProportion(successes, runs)
	if err != nil {
		return stats.Proportion{}, fmt.Errorf("baseline: %w", err)
	}
	return prop, nil
}

func check(pstar float64) error {
	if pstar <= 0 || math.IsNaN(pstar) || math.IsInf(pstar, 0) {
		return fmt.Errorf("%w: P*=%g must be > 0", ErrBadParam, pstar)
	}
	return nil
}
