package figures

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/utility"
)

// update regenerates the golden artifact files instead of diffing:
//
//	go test ./internal/figures -run TestGoldenArtifacts -update
var update = flag.Bool("update", false, "rewrite the golden artifact files under testdata/golden")

// goldenWidth/goldenHeight match cmd/figures' rendering defaults, so the
// pinned bytes are exactly what `figures -only <id>` prints.
const (
	goldenWidth  = 72
	goldenHeight = 18
)

// renderGroup renders one registry entry the way cmd/figures does.
func renderGroup(t *testing.T, id string) []byte {
	t.Helper()
	figs, err := Generate(utility.Default(), id, Opts{})
	if err != nil {
		t.Fatalf("Generate(%s): %v", id, err)
	}
	var buf bytes.Buffer
	for _, f := range figs {
		body, err := f.Render(goldenWidth, goldenHeight)
		if err != nil {
			t.Fatalf("Render(%s): %v", f.ID, err)
		}
		fmt.Fprintf(&buf, "==== %s ====\n%s\n", f.ID, body)
	}
	return buf.Bytes()
}

// TestGoldenArtifacts pins every registered artifact byte-for-byte against
// the canonical outputs under testdata/golden. Nothing else in the
// repository guards the 17+ generated artifacts against silent regressions:
// a solver change that shifts a threshold in the fourth decimal fails here
// first. Intentional changes are re-pinned with -update.
func TestGoldenArtifacts(t *testing.T) {
	for _, entry := range Registry() {
		t.Run(entry.ID, func(t *testing.T) {
			t.Parallel()
			got := renderGroup(t, entry.ID)
			path := filepath.Join("testdata", "golden", entry.ID+".golden")
			if *update {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, got, 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden file (run `go test ./internal/figures -run TestGoldenArtifacts -update`): %v", err)
			}
			if !bytes.Equal(got, want) {
				t.Errorf("%s: output differs from %s (%d vs %d bytes);\nfirst divergence at byte %d\nregenerate with -update if the change is intentional",
					entry.ID, path, len(got), len(want), firstDiff(got, want))
			}
		})
	}
}

// firstDiff locates the first differing byte offset.
func firstDiff(a, b []byte) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return i
		}
	}
	return n
}

// TestGoldenFilesCoverEveryArtifact fails when a registry entry gains or
// loses its golden file, so the suite cannot silently fall out of sync with
// the registry.
func TestGoldenFilesCoverEveryArtifact(t *testing.T) {
	entries, err := os.ReadDir(filepath.Join("testdata", "golden"))
	if err != nil {
		t.Fatalf("golden dir: %v", err)
	}
	onDisk := map[string]bool{}
	for _, e := range entries {
		onDisk[strings.TrimSuffix(e.Name(), ".golden")] = true
	}
	registered := map[string]bool{}
	for _, entry := range Registry() {
		registered[entry.ID] = true
		if !onDisk[entry.ID] {
			t.Errorf("registry entry %s has no golden file", entry.ID)
		}
	}
	for id := range onDisk {
		if !registered[id] {
			t.Errorf("stale golden file %s.golden has no registry entry", id)
		}
	}
}
