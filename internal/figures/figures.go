// Package figures regenerates every table and figure of the paper's
// evaluation from the solvers and simulators in this repository. Each
// generator returns structured Figure data (series for curves, rows for
// tables, notes for derived scalars such as thresholds and feasible
// ranges); rendering to ASCII or CSV is delegated to internal/plot.
//
// The experiment index in DESIGN.md maps each generator to its paper
// artifact; EXPERIMENTS.md records the measured values these generators
// produce against the paper's claims.
package figures

import (
	"errors"
	"fmt"
	"strings"

	"repro/internal/plot"
	"repro/internal/qmc"
	"repro/internal/scenario"
	"repro/internal/utility"
)

// ErrUnknownFigure reports a request for an unregistered figure ID.
var ErrUnknownFigure = errors.New("figures: unknown figure")

// Figure is one renderable artifact: either a chart (Series non-empty) or a
// table (TableHeader non-empty), with measured notes either way.
type Figure struct {
	// ID is the artifact identifier ("fig6-alphaA", "tableI").
	ID string
	// Title describes the artifact.
	Title string
	// XLabel and YLabel annotate chart axes.
	XLabel, YLabel string
	// Series holds chart curves (empty for tables).
	Series []plot.Series
	// TableHeader and TableRows hold tabular artifacts (empty for charts).
	TableHeader []string
	TableRows   [][]string
	// Notes records derived scalars (thresholds, ranges, viability flags).
	Notes []string
}

// Render produces the ASCII form of the figure (chart or table) followed by
// its notes.
func (f Figure) Render(w, h int) (string, error) {
	var body string
	var err error
	switch {
	case len(f.Series) > 0:
		body, err = plot.ASCII(f.Title, f.XLabel, f.YLabel, w, h, f.Series...)
	case len(f.TableHeader) > 0:
		body, err = plot.Table(f.TableHeader, f.TableRows)
		if err == nil {
			body = f.Title + "\n" + body
		}
	default:
		return "", fmt.Errorf("figures: %q has no content", f.ID)
	}
	if err != nil {
		return "", fmt.Errorf("figures: rendering %q: %w", f.ID, err)
	}
	if len(f.Notes) > 0 {
		body += "notes:\n"
		for _, n := range f.Notes {
			body += "  - " + n + "\n"
		}
	}
	return body, nil
}

// Opts configures artifact generation.
type Opts struct {
	// Workers bounds the concurrency of each grid scan (they run through
	// internal/sweep); 0 uses all CPUs. Output is identical for any value.
	Workers int
	// Scenario names a registered scenario (internal/scenario) whose
	// parameter set replaces the caller's params in Generate, so every
	// artifact can be regenerated under an alternative regime. Empty keeps
	// the caller's params.
	Scenario string
	// MCCIWidth, MCChunk and MCMaxPaths tune the Monte Carlo validation
	// artifact's streaming engine: a CI half-width target (> 0 enables
	// adaptive stopping), the chunk size (0 = engine default), and the
	// adaptive hard cap (0 = the artifact's run count). Other artifacts
	// ignore them.
	MCCIWidth  float64
	MCChunk    int
	MCMaxPaths int
	// Sampler selects the Monte Carlo validation artifact's sampling
	// mode (internal/qmc); the zero value keeps the pseudo default every
	// committed artifact pins.
	Sampler qmc.Mode
}

// Generator produces one or more figures from a parameter set.
type Generator func(p utility.Params, o Opts) ([]Figure, error)

// Registry maps artifact group IDs to generators, in the paper's order.
// MC validation scale and the §IV.B budget are fixed defaults here;
// cmd/figures exposes flags for heavier runs.
func Registry() []struct {
	ID  string
	Gen Generator
} {
	return []struct {
		ID  string
		Gen Generator
	}{
		{"tableI", TableI},
		{"tableIII", TableIII},
		{"fig2", Fig2},
		{"fig3", Fig3},
		{"fig4", Fig4},
		{"fig5", Fig5},
		{"fig6", Fig6},
		{"fig7", Fig7},
		{"fig8", Fig8},
		{"fig9", Fig9},
		{"fig10a", func(p utility.Params, o Opts) ([]Figure, error) { return Fig10a(p, DefaultBobBudget, o) }},
		{"fig10b", func(p utility.Params, o Opts) ([]Figure, error) { return Fig10b(p, DefaultBobBudget, o) }},
		{"fig11", func(p utility.Params, o Opts) ([]Figure, error) { return Fig11(p, DefaultBobBudget, o) }},
		{"montecarlo", func(p utility.Params, o Opts) ([]Figure, error) { return MCValidation(p, DefaultMCRuns, o) }},
		{"baseline", BaselineComparison},
		{"uncertainty", Uncertainty},
		{"reputation", Reputation},
		{"packetized", Packetized},
	}
}

// DefaultBobBudget is B's Token_b holdings used to reproduce Figs. 10–11
// (see DESIGN.md deviation 6: Fig. 10a's axis tops out at 5).
const DefaultBobBudget = 5.0

// DefaultMCRuns sizes the Monte Carlo validation in the registry.
const DefaultMCRuns = 20000

// Generate runs the registered generator(s). only filters by a
// comma-separated list of IDs; empty means all. o.Workers bounds the
// concurrency of every grid scan without affecting the output; o.Scenario,
// when set, swaps p for the named scenario's parameter set.
func Generate(p utility.Params, only string, o Opts) ([]Figure, error) {
	if o.Scenario != "" {
		sc, err := scenario.Lookup(o.Scenario)
		if err != nil {
			return nil, err
		}
		p = sc.Params
	}
	wanted := map[string]bool{}
	if only != "" {
		for _, id := range strings.Split(only, ",") {
			wanted[strings.TrimSpace(id)] = true
		}
	}
	var out []Figure
	matched := 0
	for _, entry := range Registry() {
		if len(wanted) > 0 && !wanted[entry.ID] {
			continue
		}
		matched++
		figs, err := entry.Gen(p, o)
		if err != nil {
			return nil, fmt.Errorf("figures: generating %s: %w", entry.ID, err)
		}
		out = append(out, figs...)
	}
	if len(wanted) > 0 && matched != len(wanted) {
		return nil, fmt.Errorf("%w: requested %q", ErrUnknownFigure, only)
	}
	return out, nil
}
