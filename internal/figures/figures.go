// Package figures regenerates every table and figure of the paper's
// evaluation from the solvers and simulators in this repository. Each
// generator returns structured Figure data (series for curves, rows for
// tables, notes for derived scalars such as thresholds and feasible
// ranges); rendering to ASCII or CSV is delegated to internal/plot.
//
// The experiment index in DESIGN.md maps each generator to its paper
// artifact; EXPERIMENTS.md records the measured values these generators
// produce against the paper's claims.
package figures

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/plot"
	"repro/internal/qmc"
	"repro/internal/scenario"
	"repro/internal/sweep"
	"repro/internal/utility"
)

// ErrUnknownFigure reports a request for an unregistered figure ID.
var ErrUnknownFigure = errors.New("figures: unknown figure")

// Figure is one renderable artifact: either a chart (Series non-empty) or a
// table (TableHeader non-empty), with measured notes either way.
type Figure struct {
	// ID is the artifact identifier ("fig6-alphaA", "tableI").
	ID string
	// Title describes the artifact.
	Title string
	// XLabel and YLabel annotate chart axes.
	XLabel, YLabel string
	// Series holds chart curves (empty for tables).
	Series []plot.Series
	// TableHeader and TableRows hold tabular artifacts (empty for charts).
	TableHeader []string
	TableRows   [][]string
	// Notes records derived scalars (thresholds, ranges, viability flags).
	Notes []string
}

// Render produces the ASCII form of the figure (chart or table) followed by
// its notes.
func (f Figure) Render(w, h int) (string, error) {
	var body string
	var err error
	switch {
	case len(f.Series) > 0:
		body, err = plot.ASCII(f.Title, f.XLabel, f.YLabel, w, h, f.Series...)
	case len(f.TableHeader) > 0:
		body, err = plot.Table(f.TableHeader, f.TableRows)
		if err == nil {
			body = f.Title + "\n" + body
		}
	default:
		return "", fmt.Errorf("figures: %q has no content", f.ID)
	}
	if err != nil {
		return "", fmt.Errorf("figures: rendering %q: %w", f.ID, err)
	}
	if len(f.Notes) > 0 {
		body += "notes:\n"
		for _, n := range f.Notes {
			body += "  - " + n + "\n"
		}
	}
	return body, nil
}

// Opts configures artifact generation.
type Opts struct {
	// Workers bounds the concurrency of each grid scan (they run through
	// internal/sweep); 0 uses all CPUs. Output is identical for any value.
	Workers int
	// Scenario names a registered scenario (internal/scenario) whose
	// parameter set replaces the caller's params in Generate, so every
	// artifact can be regenerated under an alternative regime. Empty keeps
	// the caller's params.
	Scenario string
	// MCCIWidth, MCChunk and MCMaxPaths tune the Monte Carlo validation
	// artifact's streaming engine: a CI half-width target (> 0 enables
	// adaptive stopping), the chunk size (0 = engine default), and the
	// adaptive hard cap (0 = the artifact's run count). Other artifacts
	// ignore them.
	MCCIWidth  float64
	MCChunk    int
	MCMaxPaths int
	// Sampler selects the sampling mode (internal/qmc) of the Monte Carlo
	// artifacts (montecarlo, packetized). The zero value keeps each
	// artifact's registry default — sobol for both, the mode their
	// committed goldens pin; an explicit ModePseudo restores the full
	// pseudo-stream run. Analytic artifacts ignore it.
	Sampler qmc.Mode
}

// Generator produces one or more figures from a parameter set.
type Generator func(p utility.Params, o Opts) ([]Figure, error)

// RegistryEntry binds an artifact group ID to its generator.
type RegistryEntry struct {
	ID  string
	Gen Generator
}

// Registry maps artifact group IDs to generators, in the paper's order.
// MC validation scale and the §IV.B budget are fixed defaults here;
// cmd/figures exposes flags for heavier runs.
func Registry() []RegistryEntry {
	return []RegistryEntry{
		{"tableI", TableI},
		{"tableIII", TableIII},
		{"fig2", Fig2},
		{"fig3", Fig3},
		{"fig4", Fig4},
		{"fig5", Fig5},
		{"fig6", Fig6},
		{"fig7", Fig7},
		{"fig8", Fig8},
		{"fig9", Fig9},
		{"fig10a", func(p utility.Params, o Opts) ([]Figure, error) { return Fig10a(p, DefaultBobBudget, o) }},
		{"fig10b", func(p utility.Params, o Opts) ([]Figure, error) { return Fig10b(p, DefaultBobBudget, o) }},
		{"fig11", func(p utility.Params, o Opts) ([]Figure, error) { return Fig11(p, DefaultBobBudget, o) }},
		{"montecarlo", func(p utility.Params, o Opts) ([]Figure, error) {
			// The validation artifact defaults to the sobol sampler with
			// adaptive stopping: the replicate-t estimator reaches a 0.01
			// half-width in a small fraction of DefaultMCRuns pseudo paths
			// (see DESIGN.md, "Sampling modes"). An explicit -sampler
			// pseudo restores the historical fixed-runs table.
			if o.Sampler == "" {
				o.Sampler = qmc.ModeSobol
				if o.MCCIWidth == 0 {
					o.MCCIWidth = 0.01
				}
			}
			return MCValidation(p, DefaultMCRuns, o)
		}},
		{"baseline", BaselineComparison},
		{"uncertainty", Uncertainty},
		{"reputation", Reputation},
		{"packetized", Packetized},
	}
}

// DefaultBobBudget is B's Token_b holdings used to reproduce Figs. 10–11
// (see DESIGN.md deviation 6: Fig. 10a's axis tops out at 5).
const DefaultBobBudget = 5.0

// DefaultMCRuns sizes the Monte Carlo validation in the registry.
const DefaultMCRuns = 20000

// parseOnly resolves a comma-separated ID filter against the registry.
// Empty IDs (trailing or doubled commas) are skipped and duplicates are
// deduplicated; IDs that match no registry entry fail with every offender
// named. A filter selecting nothing returns nil, meaning "all".
func parseOnly(only string, reg []RegistryEntry) (map[string]bool, error) {
	wanted := map[string]bool{}
	for _, id := range strings.Split(only, ",") {
		if id = strings.TrimSpace(id); id != "" {
			wanted[id] = true
		}
	}
	if len(wanted) == 0 {
		return nil, nil
	}
	known := map[string]bool{}
	for _, e := range reg {
		known[e.ID] = true
	}
	var unknown []string
	for id := range wanted {
		if !known[id] {
			unknown = append(unknown, id)
		}
	}
	if len(unknown) > 0 {
		sort.Strings(unknown)
		return nil, fmt.Errorf("%w: %s", ErrUnknownFigure, strings.Join(unknown, ", "))
	}
	return wanted, nil
}

// Timing is one artifact group's generation wall time, in registry order.
type Timing struct {
	ID      string
	Elapsed time.Duration
}

// Generate runs the registered generator(s). only filters by a
// comma-separated list of IDs; empty means all. o.Workers bounds the
// concurrency of every grid scan without affecting the output; o.Scenario,
// when set, swaps p for the named scenario's parameter set.
func Generate(p utility.Params, only string, o Opts) ([]Figure, error) {
	figs, _, err := GenerateTimed(p, only, o)
	return figs, err
}

// GenerateTimed is Generate with a per-group wall-time breakdown (the
// -timing flag on cmd/figures). Artifact groups fan out across the sweep
// pool — each group's scans already run through the same pool, so nested
// parallelism stays bounded — and results are collected in registry order,
// so the output is byte-identical to a sequential registry walk at any
// worker count. A failing group's error still names that group.
func GenerateTimed(p utility.Params, only string, o Opts) ([]Figure, []Timing, error) {
	if o.Scenario != "" {
		sc, err := scenario.Lookup(o.Scenario)
		if err != nil {
			return nil, nil, err
		}
		p = sc.Params
	}
	reg := Registry()
	wanted, err := parseOnly(only, reg)
	if err != nil {
		return nil, nil, err
	}
	entries := reg[:0:0]
	for _, entry := range reg {
		if wanted == nil || wanted[entry.ID] {
			entries = append(entries, entry)
		}
	}
	type group struct {
		figs    []Figure
		elapsed time.Duration
	}
	groups, err := sweep.Map(context.Background(), len(entries), o.Workers, func(i int) (group, error) {
		start := time.Now()
		figs, err := entries[i].Gen(p, o)
		if err != nil {
			return group{}, fmt.Errorf("figures: generating %s: %w", entries[i].ID, err)
		}
		return group{figs: figs, elapsed: time.Since(start)}, nil
	})
	if err != nil {
		// Strip sweep.Map's task-index wrapper: the group error already
		// names the failing artifact. Context errors unwrap to nil and
		// pass through unchanged.
		if inner := errors.Unwrap(err); inner != nil {
			err = inner
		}
		return nil, nil, err
	}
	var out []Figure
	timings := make([]Timing, len(entries))
	for i, g := range groups {
		out = append(out, g.figs...)
		timings[i] = Timing{ID: entries[i].ID, Elapsed: g.elapsed}
	}
	return out, timings, nil
}
