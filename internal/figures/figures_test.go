package figures

import (
	"errors"
	"math"
	"reflect"
	"strings"
	"testing"

	"repro/internal/scenario"
	"repro/internal/utility"
)

func TestRegistryCoversEveryPaperArtifact(t *testing.T) {
	want := []string{
		"tableI", "tableIII", "fig2", "fig3", "fig4", "fig5", "fig6",
		"fig7", "fig8", "fig9", "fig10a", "fig10b", "fig11",
		"montecarlo", "baseline", "uncertainty", "reputation", "packetized",
	}
	reg := Registry()
	if len(reg) != len(want) {
		t.Fatalf("registry has %d entries, want %d", len(reg), len(want))
	}
	for i, id := range want {
		if reg[i].ID != id {
			t.Errorf("registry[%d] = %s, want %s", i, reg[i].ID, id)
		}
	}
}

func TestTableIVerifiesSimulatedDeltas(t *testing.T) {
	figs, err := TableI(utility.Default(), Opts{})
	if err != nil {
		t.Fatalf("TableI: %v", err)
	}
	if len(figs) != 1 || len(figs[0].TableRows) != 2 {
		t.Fatalf("unexpected shape: %+v", figs)
	}
	out, err := figs[0].Render(80, 20)
	if err != nil {
		t.Fatalf("Render: %v", err)
	}
	for _, want := range []string{"Alice (A)", "Bob (B)", "-2.00 TokenA", "+2.00 TokenA", "completed"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
	// Expected and simulated columns must agree cell-by-cell.
	for _, row := range figs[0].TableRows {
		if row[1] != row[2] || row[3] != row[4] {
			t.Errorf("expected/simulated mismatch in row %v", row)
		}
	}
}

func TestTableIIIListsAllParameters(t *testing.T) {
	figs, err := TableIII(utility.Default(), Opts{})
	if err != nil {
		t.Fatal(err)
	}
	if len(figs[0].TableRows) != 10 {
		t.Errorf("got %d parameter rows, want 10", len(figs[0].TableRows))
	}
}

func TestFig2TimelineValues(t *testing.T) {
	figs, err := Fig2(utility.Default(), Opts{})
	if err != nil {
		t.Fatal(err)
	}
	out, err := figs[0].Render(80, 10)
	if err != nil {
		t.Fatal(err)
	}
	// Idealized Table III timeline: t3=7, t5=tb=11, t7=15, t8=14.
	for _, want := range []string{"7.0", "11.0", "15.0", "14.0"} {
		if !strings.Contains(out, want) {
			t.Errorf("timeline missing %q:\n%s", want, out)
		}
	}
}

func TestFig3PanelsAndCutoffs(t *testing.T) {
	figs, err := Fig3(utility.Default(), Opts{})
	if err != nil {
		t.Fatal(err)
	}
	if len(figs) != 3 {
		t.Fatalf("got %d panels, want 3", len(figs))
	}
	// Cut-offs increase with P* (Eq. 18) and the middle one is ≈ 1.481.
	if !strings.Contains(figs[1].Notes[0], "1.481") {
		t.Errorf("P*=2 cut-off note = %q, want ≈ 1.481", figs[1].Notes[0])
	}
	for _, f := range figs {
		if len(f.Series) != 2 {
			t.Errorf("%s: %d series, want 2", f.ID, len(f.Series))
		}
		if _, err := f.Render(70, 15); err != nil {
			t.Errorf("%s render: %v", f.ID, err)
		}
	}
}

func TestFig4PanelsHaveRanges(t *testing.T) {
	figs, err := Fig4(utility.Default(), Opts{})
	if err != nil {
		t.Fatal(err)
	}
	if len(figs) != 3 {
		t.Fatalf("got %d panels, want 3", len(figs))
	}
	for _, f := range figs {
		if !strings.Contains(f.Notes[0], "continuation range") {
			t.Errorf("%s: missing range note: %v", f.ID, f.Notes)
		}
	}
}

func TestFig5FeasibleRange(t *testing.T) {
	figs, err := Fig5(utility.Default(), Opts{})
	if err != nil {
		t.Fatal(err)
	}
	note := figs[0].Notes[0]
	if !strings.Contains(note, "feasible range") || !strings.Contains(note, "1.5") {
		t.Errorf("note = %q, want feasible range ≈ (1.5, 2.5)", note)
	}
}

func TestFig6AllPanels(t *testing.T) {
	figs, err := Fig6(utility.Default(), Opts{})
	if err != nil {
		t.Fatal(err)
	}
	if len(figs) != 8 {
		t.Fatalf("got %d panels, want 8", len(figs))
	}
	for _, f := range figs {
		if len(f.Series) != 4 {
			t.Errorf("%s: %d series, want 4", f.ID, len(f.Series))
		}
		if len(f.Notes) != 4 {
			t.Errorf("%s: %d notes, want 4", f.ID, len(f.Notes))
		}
		// SR values are probabilities.
		for _, s := range f.Series {
			for i, y := range s.Y {
				if y < 0 || y > 1 || math.IsNaN(y) {
					t.Fatalf("%s %s: SR[%d] = %v", f.ID, s.Name, i, y)
				}
			}
		}
	}
	// The σ panel must flag at least one non-viable value (σ=0.2).
	var sigmaNotes string
	for _, f := range figs {
		if f.ID == "fig6-sigma" {
			sigmaNotes = strings.Join(f.Notes, "\n")
		}
	}
	if !strings.Contains(sigmaNotes, "NON-VIABLE") {
		t.Errorf("σ panel should flag a non-viable value:\n%s", sigmaNotes)
	}
}

func TestFig7IndifferencePoints(t *testing.T) {
	figs, err := Fig7(utility.Default(), Opts{})
	if err != nil {
		t.Fatal(err)
	}
	if len(figs) != 6 {
		t.Fatalf("got %d panels, want 6", len(figs))
	}
	// Q=0.01, P*=2.0 exhibits three indifference points (Fig. 7 top row).
	found := false
	for _, f := range figs {
		if f.ID == "fig7-q0.01-pstar2.0" {
			found = true
			if !strings.Contains(f.Notes[0], "3 indifference point(s)") {
				t.Errorf("note = %q, want 3 indifference points", f.Notes[0])
			}
		}
	}
	if !found {
		t.Error("missing fig7-q0.01-pstar2.0 panel")
	}
}

func TestFig8EngagementSets(t *testing.T) {
	figs, err := Fig8(utility.Default(), Opts{})
	if err != nil {
		t.Fatal(err)
	}
	if len(figs) != 2 {
		t.Fatalf("got %d panels, want 2", len(figs))
	}
	for _, f := range figs {
		if len(f.Series) != 4 {
			t.Errorf("%s: %d series, want 4 (both agents, cont and stop)", f.ID, len(f.Series))
		}
		joined := strings.Join(f.Notes, "\n")
		if !strings.Contains(joined, "intersection") || !strings.Contains(joined, "union") {
			t.Errorf("%s: notes missing engagement sets:\n%s", f.ID, joined)
		}
	}
}

func TestFig9MonotoneInQ(t *testing.T) {
	figs, err := Fig9(utility.Default(), Opts{})
	if err != nil {
		t.Fatal(err)
	}
	f := figs[0]
	if len(f.Series) != 3 {
		t.Fatalf("got %d series, want 3", len(f.Series))
	}
	// At each grid point the SR ordering Q=0 <= Q=0.01 <= Q=0.1 holds.
	for i := range f.Series[0].X {
		if f.Series[1].Y[i] < f.Series[0].Y[i]-1e-9 || f.Series[2].Y[i] < f.Series[1].Y[i]-1e-9 {
			t.Errorf("x=%v: SR not monotone in Q: %v %v %v",
				f.Series[0].X[i], f.Series[0].Y[i], f.Series[1].Y[i], f.Series[2].Y[i])
		}
	}
}

func TestFig10aHumpShape(t *testing.T) {
	figs, err := Fig10a(utility.Default(), DefaultBobBudget, Opts{})
	if err != nil {
		t.Fatal(err)
	}
	f := figs[0]
	if len(f.Series) != 3 {
		t.Fatalf("got %d series, want 3", len(f.Series))
	}
	// The a=8.91 curve starts at zero, peaks within the budget, declines.
	var s *int
	for i := range f.Series {
		if f.Series[i].Name == "P*=8.91" {
			s = &i
			break
		}
	}
	if s == nil {
		t.Fatal("missing P*=8.91 series")
	}
	ys := f.Series[*s].Y
	if ys[0] != 0 {
		t.Errorf("X* at lowest price = %v, want 0", ys[0])
	}
	peak, peakIdx := 0.0, 0
	for i, y := range ys {
		if y > peak {
			peak, peakIdx = y, i
		}
	}
	if peak <= 1 || peak > DefaultBobBudget+1e-9 {
		t.Errorf("peak X* = %v, want in (1, budget]", peak)
	}
	if peakIdx == 0 || peakIdx == len(ys)-1 {
		t.Errorf("peak at boundary index %d; want interior hump", peakIdx)
	}
	if ys[len(ys)-1] >= peak {
		t.Error("no decline after the peak")
	}
}

func TestFig10bNotes(t *testing.T) {
	figs, err := Fig10b(utility.Default(), DefaultBobBudget, Opts{})
	if err != nil {
		t.Fatal(err)
	}
	joined := strings.Join(figs[0].Notes, "\n")
	if !strings.Contains(joined, "break-even") || !strings.Contains(joined, "optimal commitment") {
		t.Errorf("notes = %s", joined)
	}
}

func TestFig11Dominance(t *testing.T) {
	figs, err := Fig11(utility.Default(), DefaultBobBudget, Opts{})
	if err != nil {
		t.Fatal(err)
	}
	f := figs[0]
	if len(f.Series) != 3 {
		t.Fatalf("got %d series, want 3", len(f.Series))
	}
	// Uncertain exchange dominates the basic game on the shared grid
	// (§IV.B: "absence of pre-determined interest rate boosts the success
	// rate").
	for i := range f.Series[0].X {
		if f.Series[1].Y[i] < f.Series[0].Y[i]-1e-9 {
			t.Errorf("x=%v: uncertain SR %v below basic %v",
				f.Series[0].X[i], f.Series[1].Y[i], f.Series[0].Y[i])
		}
	}
}

func TestMCValidationAgrees(t *testing.T) {
	if testing.Short() {
		t.Skip("Monte Carlo validation is slow")
	}
	figs, err := MCValidation(utility.Default(), 8000, Opts{})
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range figs[0].TableRows {
		if row[4] != "true" {
			t.Errorf("configuration %q: analytic SR outside MC interval (%v)", row[0], row)
		}
	}
}

func TestBaselineComparisonGap(t *testing.T) {
	figs, err := BaselineComparison(utility.Default(), Opts{})
	if err != nil {
		t.Fatal(err)
	}
	f := figs[0]
	// One-sided SR dominates two-sided SR pointwise.
	for i := range f.Series[0].X {
		if f.Series[1].Y[i] < f.Series[0].Y[i]-1e-9 {
			t.Errorf("x=%v: baseline SR below two-sided SR", f.Series[0].X[i])
		}
	}
}

func TestUncertaintyMonotoneInSpreadNearFairRate(t *testing.T) {
	// Near the fair rate, wider mean-preserving spreads about αB lower SR:
	// the low type drops out and cannot be priced back in. (At rates far
	// below fair the effect reverses — SR is convex in αB there, so the
	// high type's wide region dominates the mixture; the figure shows both
	// regimes.)
	figs, err := Uncertainty(utility.Default(), Opts{})
	if err != nil {
		t.Fatal(err)
	}
	f := figs[0]
	if len(f.Series) != 4 {
		t.Fatalf("got %d series, want 4", len(f.Series))
	}
	for i, x := range f.Series[0].X {
		if x < 1.9 || x > 2.4 {
			continue
		}
		for s := 1; s < len(f.Series); s++ {
			narrow := f.Series[s-1].Y[i]
			wide := f.Series[s].Y[i]
			if narrow == 0 || wide == 0 {
				continue // initiation failed for one prior at this rate
			}
			if wide > narrow+1e-9 {
				t.Errorf("x=%v: spread %d SR %v exceeds narrower %v", x, s, wide, narrow)
			}
		}
	}
}

func TestReputationRegimes(t *testing.T) {
	figs, err := Reputation(utility.Default(), Opts{})
	if err != nil {
		t.Fatal(err)
	}
	f := figs[0]
	if len(f.Series) != 3 {
		t.Fatalf("got %d series, want 3", len(f.Series))
	}
	// Static regime keeps αA constant; fragile ends lower than it starts.
	static := f.Series[0].Y
	for i, v := range static {
		if v != static[0] {
			t.Fatalf("static αA moved at round %d: %v", i, v)
		}
	}
	fragile := f.Series[1].Y
	if fragile[len(fragile)-1] >= fragile[0] {
		t.Errorf("fragile αA should end below start: %v -> %v",
			fragile[0], fragile[len(fragile)-1])
	}
}

func TestPacketizedFigure(t *testing.T) {
	figs, err := Packetized(utility.Default(), Opts{})
	if err != nil {
		t.Fatal(err)
	}
	f := figs[0]
	if len(f.Series) != 4 {
		t.Fatalf("got %d series, want 4", len(f.Series))
	}
	// Expected fraction dominates full completion for the fixed-rate rows.
	frac, full := f.Series[0].Y, f.Series[1].Y
	for i := range frac {
		if frac[i] < full[i]-1e-9 {
			t.Errorf("n=%v: fraction %v below completion %v", f.Series[0].X[i], frac[i], full[i])
		}
	}
	// Full completion decays with n under a fixed rate.
	if full[len(full)-1] > full[0]+0.01 {
		t.Errorf("full completion should decay: %v -> %v", full[0], full[len(full)-1])
	}
	// Continue semantics hold the fraction near the stage optimum at n=16.
	contFrac := f.Series[3].Y
	if contFrac[len(contFrac)-1] < 0.65 {
		t.Errorf("continue fraction at n=16 = %v, want near the stage optimum", contFrac[len(contFrac)-1])
	}
}

func TestGenerateFiltering(t *testing.T) {
	figs, err := Generate(utility.Default(), "fig5,tableIII", Opts{})
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	if len(figs) != 2 {
		t.Errorf("got %d figures, want 2", len(figs))
	}
	if _, err := Generate(utility.Default(), "nope", Opts{}); !errors.Is(err, ErrUnknownFigure) {
		t.Errorf("unknown id err = %v", err)
	}
}

// TestParseOnlyEdgeCases pins the -only filter's parsing: stray commas must
// not manufacture an empty "wanted" ID (the former behaviour failed
// "fig5," with ErrUnknownFigure), duplicates collapse, and an error must
// name every unknown ID.
func TestParseOnlyEdgeCases(t *testing.T) {
	reg := Registry()
	cases := []struct {
		only string
		want []string // nil means "all" (parseOnly returns a nil map)
	}{
		{"", nil},
		{",", nil},
		{" , ,, ", nil},
		{"fig5,", []string{"fig5"}},
		{",fig5", []string{"fig5"}},
		{"fig5,,tableIII", []string{"fig5", "tableIII"}},
		{" fig5 , tableIII ", []string{"fig5", "tableIII"}},
		{"fig5,fig5,fig5", []string{"fig5"}},
	}
	for _, c := range cases {
		wanted, err := parseOnly(c.only, reg)
		if err != nil {
			t.Errorf("parseOnly(%q) error: %v", c.only, err)
			continue
		}
		if c.want == nil {
			if wanted != nil {
				t.Errorf("parseOnly(%q) = %v, want nil (all)", c.only, wanted)
			}
			continue
		}
		if len(wanted) != len(c.want) {
			t.Errorf("parseOnly(%q) = %v, want %v", c.only, wanted, c.want)
			continue
		}
		for _, id := range c.want {
			if !wanted[id] {
				t.Errorf("parseOnly(%q) missing %q", c.only, id)
			}
		}
	}

	// Unknown IDs: every offender named, sorted, known IDs not blamed.
	_, err := parseOnly("figY,fig5,figX", reg)
	if !errors.Is(err, ErrUnknownFigure) {
		t.Fatalf("parseOnly with unknown IDs err = %v, want ErrUnknownFigure", err)
	}
	if msg := err.Error(); !strings.HasSuffix(msg, "figX, figY") {
		t.Errorf("unknown-ID error = %q, want sorted offenders 'figX, figY' named", msg)
	}

	// End-to-end: a trailing comma on the CLI path selects exactly the named
	// artifacts instead of failing.
	figs, err := Generate(utility.Default(), "fig5,", Opts{})
	if err != nil {
		t.Fatalf("Generate(\"fig5,\"): %v", err)
	}
	if len(figs) != 1 || figs[0].ID != "fig5" {
		t.Errorf("Generate(\"fig5,\") = %d figures, want just fig5", len(figs))
	}
}

// sequentialGenerate is the pre-parallelism reference implementation: a
// plain in-order walk of the registry, against which the fan-out path must
// be byte-identical.
func sequentialGenerate(t *testing.T, p utility.Params, ids map[string]bool, o Opts) []Figure {
	t.Helper()
	var out []Figure
	for _, e := range Registry() {
		if ids != nil && !ids[e.ID] {
			continue
		}
		figs, err := e.Gen(p, o)
		if err != nil {
			t.Fatalf("sequential %s: %v", e.ID, err)
		}
		out = append(out, figs...)
	}
	return out
}

// TestGenerateMatchesSequentialRegistryWalk pins the parallel-registry
// contract: fanning the artifact groups across the sweep pool must yield
// exactly the figures a sequential registry walk produces — on the default
// parameters over the full registry, and on every scenario preset over a
// representative subset.
func TestGenerateMatchesSequentialRegistryWalk(t *testing.T) {
	got, err := Generate(utility.Default(), "", Opts{})
	if err != nil {
		t.Fatalf("Generate(all): %v", err)
	}
	want := sequentialGenerate(t, utility.Default(), nil, Opts{})
	if !reflect.DeepEqual(got, want) {
		t.Error("parallel Generate differs from sequential registry walk on the full registry")
	}

	const subset = "tableIII,fig2,fig5,fig7,fig9"
	ids, err := parseOnly(subset, Registry())
	if err != nil {
		t.Fatalf("parseOnly(%q): %v", subset, err)
	}
	for _, sc := range scenario.Registry() {
		got, err := Generate(utility.Default(), subset, Opts{Scenario: sc.Name})
		if err != nil {
			t.Fatalf("Generate(scenario=%s): %v", sc.Name, err)
		}
		want := sequentialGenerate(t, sc.Params, ids, Opts{})
		if !reflect.DeepEqual(got, want) {
			t.Errorf("scenario %s: parallel Generate differs from sequential walk", sc.Name)
		}
	}
}

// TestWorkerCountDoesNotChangeOutput pins the sweep engine's determinism
// contract at the artifact level: every figure — series, notes, tables —
// must be bit-identical whether its grid scans run on one worker or many.
func TestWorkerCountDoesNotChangeOutput(t *testing.T) {
	const ids = "fig3,fig6,fig9,fig10a,fig11,baseline,packetized"
	ref, err := Generate(utility.Default(), ids, Opts{Workers: 1})
	if err != nil {
		t.Fatalf("Generate(workers=1): %v", err)
	}
	for _, workers := range []int{4, 8, 16, 0} {
		got, err := Generate(utility.Default(), ids, Opts{Workers: workers})
		if err != nil {
			t.Fatalf("Generate(workers=%d): %v", workers, err)
		}
		if !reflect.DeepEqual(got, ref) {
			t.Errorf("workers=%d: artifacts differ from workers=1", workers)
		}
	}
}

func TestRenderEmptyFigureFails(t *testing.T) {
	if _, err := (Figure{ID: "empty"}).Render(70, 15); err == nil {
		t.Error("empty figure should fail to render")
	}
}
